// Command qfwbench regenerates the paper's evaluation: every figure and
// table, printed as aligned text series (and optionally CSV files). By
// default it uses laptop-scale "quick" sizes; pass -full for the paper's
// size lists, where configurations over the memory budget are reported as
// infeasible (the paper's red-X points).
//
// Usage:
//
//	qfwbench -exp all                      # quick sizes, every experiment
//	qfwbench -exp fig3a,fig3c -full        # paper sizes for two figures
//	qfwbench -exp fig4 -csv out/           # also write CSV series
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"qfw/internal/bench"
	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/cost"

	_ "qfw/internal/backends"
)

func main() {
	var (
		expList    = flag.String("exp", "all", "comma-separated experiments: table1,table2,fig3a,fig3b,fig3c,fig3c-strong,fig3d,fig3e,fig3f,fig4,fig5,ablation-batch,ablation-fusion,ablation-dist,ablation-grad,ablation-mps,ablation-kernel,ablation-route,ablation-serve,ablation-faults,ablation-obs or 'all'; fit-cost (explicit only) refits the cost calibration from recorded artifacts")
		full       = flag.Bool("full", false, "use the paper's full size lists (quick laptop sizes otherwise)")
		repeats    = flag.Int("repeats", 3, "repetitions per point (paper: 3)")
		shots      = flag.Int("shots", 256, "shots per circuit execution")
		nodes      = flag.Int("nodes", 4, "Frontier-model nodes for the SLURM job")
		memGiB     = flag.Int("mem", 1, "state-vector memory budget per execution (GiB)")
		csvDir     = flag.String("csv", "", "directory to write per-experiment CSV files")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		cloudLat   = flag.Duration("cloud-latency", 40*time.Millisecond, "simulated cloud network latency")
		sizes      = flag.String("sizes", "", "comma-separated size override for workload figures (e.g. 5,7,9,11)")
		fusionJSON = flag.String("fusion-json", "BENCH_fusion.json", "path for the ablation-fusion JSON record (empty disables)")
		distJSON   = flag.String("dist-json", "BENCH_dist.json", "path for the ablation-dist JSON record (empty disables)")
		gradJSON   = flag.String("grad-json", "BENCH_grad.json", "path for the ablation-grad JSON record (empty disables)")
		mpsJSON    = flag.String("mps-json", "BENCH_mps.json", "path for the ablation-mps JSON record (empty disables)")
		kernelJSON = flag.String("kernel-json", "BENCH_kernel.json", "path for the ablation-kernel JSON record (empty disables)")
		routeJSON  = flag.String("route-json", "BENCH_route.json", "path for the ablation-route JSON record (empty disables)")
		serveJSON  = flag.String("serve-json", "BENCH_serve.json", "path for the ablation-serve JSON record (empty disables)")
		faultsJSON = flag.String("faults-json", "BENCH_faults.json", "path for the ablation-faults JSON record (empty disables)")
		obsJSON    = flag.String("obs-json", "BENCH_obs.json", "path for the ablation-obs JSON record (empty disables)")
		costFrom   = flag.String("cost-from", "BENCH_kernel.json,BENCH_mps.json,BENCH_route.json", "comma-separated bench artifacts fit-cost regresses the calibration from")
		costOut    = flag.String("cost-out", "cost_fit.json", "path fit-cost writes the fitted calibration to (QFW_COST=<path> loads it)")
	)
	flag.Parse()

	session, err := core.Launch(core.Config{
		Machine:        cluster.Frontier(*nodes),
		MemBudgetBytes: int64(*memGiB) << 30,
		CloudLatency:   *cloudLat,
		Seed:           *seed,
	})
	if err != nil {
		fatal("launch: %v", err)
	}
	defer session.Teardown()

	h := bench.NewHarness(session)
	h.Quick = !*full
	h.Repeats = *repeats
	h.Shots = *shots
	h.Seed = *seed
	if *sizes != "" {
		for _, tok := range strings.Split(*sizes, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &n); err != nil || n <= 0 {
				fatal("bad -sizes entry %q", tok)
			}
			h.SizeOverride = append(h.SizeOverride, n)
		}
	}

	if args := flag.Args(); len(args) > 0 && args[0] == "route" {
		cases := bench.RouteMix
		if len(args) > 1 {
			var err error
			if cases, err = bench.ParseRouteCases(args[1:]); err != nil {
				fatal("%v", err)
			}
		}
		table, err := h.RouteDecisionTable(cases)
		if err != nil {
			fatal("route: %v", err)
		}
		fmt.Print(table)
		return
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]

	if wanted["fit-cost"] {
		cal, err := h.FitFromArtifacts(strings.Split(*costFrom, ",")...)
		if err != nil {
			fatal("fit-cost: %v", err)
		}
		if err := cost.Save(*costOut, cal); err != nil {
			fatal("fit-cost write: %v", err)
		}
		fmt.Printf("wrote %s (%d fitted curves)\n", *costOut, len(cal.Curves))
	}

	run := func(id string, f func() (*bench.Experiment, error)) {
		if !all && !wanted[id] {
			return
		}
		start := time.Now()
		exp, err := f()
		if err != nil {
			fatal("%s: %v", id, err)
		}
		fmt.Print(bench.Render(exp))
		fmt.Printf("(%s completed in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal("csv dir: %v", err)
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(bench.CSV(exp)), 0o644); err != nil {
				fatal("csv write: %v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	run("table1", h.RunCapabilityTable)
	run("table2", func() (*bench.Experiment, error) { return h.RunBenchmarkCatalog(), nil })
	run("fig3a", func() (*bench.Experiment, error) { return h.RunWorkloadFigure("fig3a", "ghz") })
	run("fig3b", func() (*bench.Experiment, error) { return h.RunWorkloadFigure("fig3b", "ham") })
	run("fig3c", func() (*bench.Experiment, error) { return h.RunWorkloadFigure("fig3c", "tfim") })
	run("fig3c-strong", func() (*bench.Experiment, error) {
		n := 12
		procs := []int{1, 2, 4, 8}
		if *full {
			n = 22 // TFIM-28 needs 4 GiB amplitudes; 22 fits the default budget
			procs = []int{1, 2, 4, 8, 16}
		}
		return h.RunStrongScaling(n, procs)
	})
	run("fig3d", func() (*bench.Experiment, error) { return h.RunWorkloadFigure("fig3d", "hhl") })
	if all || wanted["fig3e"] || wanted["fig3f"] {
		rt, fid, err := h.RunQAOAFigure()
		if err != nil {
			fatal("fig3e/f: %v", err)
		}
		if all || wanted["fig3e"] {
			fmt.Print(bench.Render(rt))
			writeCSV(*csvDir, rt)
		}
		if all || wanted["fig3f"] {
			fmt.Print(bench.Render(fid))
			writeCSV(*csvDir, fid)
		}
	}
	run("fig4", h.RunDQAOAFigure)
	run("ablation-batch", h.RunBatchAblation)
	run("ablation-fusion", func() (*bench.Experiment, error) {
		exp, err := h.RunFusionAblation()
		if err == nil {
			writeJSON(*fusionJSON, exp)
		}
		return exp, err
	})
	run("ablation-dist", func() (*bench.Experiment, error) {
		exp, err := h.RunDistAblation()
		if err == nil {
			writeJSON(*distJSON, exp)
		}
		return exp, err
	})
	run("ablation-grad", func() (*bench.Experiment, error) {
		exp, err := h.RunGradAblation()
		if err == nil {
			writeJSON(*gradJSON, exp)
		}
		return exp, err
	})
	run("ablation-mps", func() (*bench.Experiment, error) {
		exp, err := h.RunMPSAblation()
		if err == nil {
			writeJSON(*mpsJSON, exp)
		}
		return exp, err
	})
	run("ablation-kernel", func() (*bench.Experiment, error) {
		exp, err := h.RunKernelAblation()
		if err == nil {
			writeJSON(*kernelJSON, exp)
		}
		return exp, err
	})
	run("ablation-route", func() (*bench.Experiment, error) {
		exp, err := h.RunRouteAblation()
		if err == nil {
			writeJSON(*routeJSON, exp)
		}
		return exp, err
	})
	run("ablation-serve", func() (*bench.Experiment, error) {
		exp, err := h.RunServeAblation()
		if err == nil {
			writeJSON(*serveJSON, exp)
		}
		return exp, err
	})
	run("ablation-faults", func() (*bench.Experiment, error) {
		exp, err := h.RunFaultsAblation()
		if err == nil {
			writeJSON(*faultsJSON, exp)
		}
		return exp, err
	})
	run("ablation-obs", func() (*bench.Experiment, error) {
		exp, err := h.RunObsAblation()
		if err == nil {
			writeJSON(*obsJSON, exp)
		}
		return exp, err
	})
	if all || wanted["fig5"] {
		cfg := bench.DQAOAConfig{QUBOSize: 16, SubQSize: 6, NSubQ: 4}
		if *full {
			cfg = bench.DQAOAConfig{QUBOSize: 40, SubQSize: 12, NSubQ: 4}
		}
		exp, _, err := h.RunTimelineFigure(cfg)
		if err != nil {
			fatal("fig5: %v", err)
		}
		fmt.Print(bench.Render(exp))
		writeCSV(*csvDir, exp)
	}
}

func writeJSON(path string, exp *bench.Experiment) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(exp, "", "  ")
	if err != nil {
		fatal("%s json: %v", exp.ID, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal("%s json write: %v", exp.ID, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func writeCSV(dir string, exp *bench.Experiment) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal("csv dir: %v", err)
	}
	path := filepath.Join(dir, exp.ID+".csv")
	if err := os.WriteFile(path, []byte(bench.CSV(exp)), 0o644); err != nil {
		fatal("csv write: %v", err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qfwbench: "+format+"\n", args...)
	os.Exit(1)
}
