// Command ionqd runs the simulated IonQ cloud service standalone: a REST
// endpoint with job queueing, network latency injection, and a state-vector
// emulator — useful for exercising the remote-backend path from separate
// processes or with curl.
//
// Usage:
//
//	ionqd -latency 60ms -concurrency 1
//	curl -X POST http://<addr>/v0.3/jobs -d '{"shots":100,"input":{"format":"qasm","qasm":"..."}}'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qfw/internal/ionq"
)

func main() {
	var (
		latency     = flag.Duration("latency", 60*time.Millisecond, "mean network+service latency per API call")
		jitter      = flag.Duration("jitter", 30*time.Millisecond, "uniform latency jitter")
		queueDelay  = flag.Duration("queue", 100*time.Millisecond, "mean cloud queue wait per job")
		concurrency = flag.Int("concurrency", 1, "concurrent job executions")
		maxQubits   = flag.Int("max-qubits", 29, "device qubit cap")
		seed        = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	svc, err := ionq.Start(ionq.Config{
		Latency:     *latency,
		Jitter:      *jitter,
		QueueDelay:  *queueDelay,
		Concurrency: *concurrency,
		MaxQubits:   *maxQubits,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ionqd: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()
	fmt.Printf("ionqd: serving at %s (latency %v, jitter %v, queue %v, concurrency %d)\n",
		svc.URL(), *latency, *jitter, *queueDelay, *concurrency)
	fmt.Println("ionqd: Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nionqd: shutting down")
}
