// Command qfwd runs the QFw services as a long-lived daemon: it submits the
// SLURM heterogeneous job, boots the DVM and one QPM per backend, exposes
// the DEFw RPC endpoint over TCP, and serves until interrupted — the
// deployment mode where applications connect from separate processes.
//
// Usage:
//
//	qfwd -nodes 4 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/faults"
	"qfw/internal/serve"

	_ "qfw/internal/backends"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 4, "Frontier-model nodes for the SLURM job")
		appNodes   = flag.Int("app-nodes", 1, "hetgroup-0 (application) nodes")
		workers    = flag.Int("workers", 8, "QRC worker threads per QPM (paper: 8)")
		memGiB     = flag.Int("mem", 1, "state-vector memory budget (GiB)")
		walltime   = flag.Duration("walltime", 2*time.Hour, "SLURM walltime (paper cutoff: 2h)")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		cacheCap   = flag.Int("serve-cache", 4096, "serving-layer result cache entries per backend (negative disables caching)")
		window     = flag.Duration("serve-window", 2*time.Millisecond, "serving-layer coalescing admission window (0 disables the wait)")
		quota      = flag.Int("serve-quota", 0, "default per-tenant outstanding-element quota (0: the queue cap)")
		drainGrace = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline: stop admitting on SIGTERM and finish in-flight work up to this long")
	)
	flag.Parse()

	session, err := core.Launch(core.Config{
		Machine:        cluster.Frontier(*nodes),
		AppNodes:       *appNodes,
		Workers:        *workers,
		Walltime:       *walltime,
		UseTCP:         true,
		MemBudgetBytes: int64(*memGiB) << 30,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qfwd: launch: %v\n", err)
		os.Exit(1)
	}
	defer session.Teardown()

	fmt.Printf("qfwd: SLURM job %d running (hetgroup-0: %d nodes, hetgroup-1: %d nodes)\n",
		session.Job.ID, *appNodes, *nodes-*appNodes)
	fmt.Printf("qfwd: DVM %s\n", session.DVM.URI)
	fmt.Printf("qfwd: DEFw endpoint %s\n", session.Addr)
	fmt.Printf("qfwd: backends: %v\n", session.Backends())
	if sched := faults.FromEnv(); sched != nil {
		fmt.Printf("qfwd: FAULT INJECTION ARMED (%s=%s): every executor wrapped in the deterministic injector\n",
			faults.EnvVar, sched.String())
	}

	// One serving layer per backend, registered beside the raw qpm.<backend>
	// service: applications that want the cache/coalescing/fair-share path
	// talk to serve.<backend>, existing clients keep the raw queue.
	srvCfg := serve.Config{CacheCap: *cacheCap, Window: *window, Quota: *quota}
	var servers []*serve.Server
	for _, backend := range session.Backends() {
		srv := serve.New(session.QPM(backend), srvCfg, session.Rec)
		session.RegisterService(serve.ServiceName(backend), srv)
		servers = append(servers, srv)
	}
	fmt.Printf("qfwd: serving layer up (cache %d, window %s)\n", *cacheCap, *window)
	fmt.Println("qfwd: serving; Ctrl-C or SIGTERM to drain and tear down")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Printf("\nqfwd: signal received, draining (up to %s)\n", *drainGrace)
	case <-session.Job.Done():
		fmt.Printf("qfwd: SLURM job ended (%s)\n", session.Job.State())
	}

	// Graceful drain: the serving layers stop admitting and flush their
	// queues first (their dispatches need live QPMs), then the QPMs quiesce
	// and finish whatever is still in flight.
	deadline := time.Now().Add(*drainGrace)
	for _, srv := range servers {
		if !srv.Drain(time.Until(deadline)) {
			fmt.Printf("qfwd: serve[%s] did not drain before the deadline\n", srv.Backend())
		}
	}
	if !session.Drain(time.Until(deadline)) {
		fmt.Println("qfwd: QPMs did not drain before the deadline; tearing down anyway")
	}
	for _, srv := range servers {
		st := srv.Stats()
		fmt.Printf("qfwd: serve[%s]: served %d (cache hits %d, deduped %d, shed %d, peak queue %d)\n",
			st.Backend, st.Served, st.CacheHits, st.Deduped, st.Shed, st.PeakQueueDepth)
		srv.Close()
	}
	fmt.Println("qfwd: tearing down")
}
