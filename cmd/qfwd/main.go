// Command qfwd runs the QFw services as a long-lived daemon: it submits the
// SLURM heterogeneous job, boots the DVM and one QPM per backend, exposes
// the DEFw RPC endpoint over TCP, and serves until interrupted — the
// deployment mode where applications connect from separate processes.
//
// Observability: -metrics-addr exposes the telemetry registry as a
// Prometheus text endpoint (/metrics) and the span ring as Chrome
// trace-event JSON (/trace); SIGUSR1 snapshots the trace to
// -trace-snapshot without stopping the daemon.
//
// Usage:
//
//	qfwd -nodes 4 -workers 8 -metrics-addr 127.0.0.1:9167
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/faults"
	"qfw/internal/serve"
	"qfw/internal/trace"
	"qfw/internal/workloads"

	_ "qfw/internal/backends"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 4, "Frontier-model nodes for the SLURM job")
		appNodes    = flag.Int("app-nodes", 1, "hetgroup-0 (application) nodes")
		workers     = flag.Int("workers", 8, "QRC worker threads per QPM (paper: 8)")
		memGiB      = flag.Int("mem", 1, "state-vector memory budget (GiB)")
		walltime    = flag.Duration("walltime", 2*time.Hour, "SLURM walltime (paper cutoff: 2h)")
		seed        = flag.Int64("seed", 1, "base RNG seed")
		cacheCap    = flag.Int("serve-cache", 4096, "serving-layer result cache entries per backend (negative disables caching)")
		window      = flag.Duration("serve-window", 2*time.Millisecond, "serving-layer coalescing admission window (0 disables the wait)")
		quota       = flag.Int("serve-quota", 0, "default per-tenant outstanding-element quota (0: the queue cap)")
		drainGrace  = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline: stop admitting on SIGTERM and finish in-flight work up to this long")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics and Chrome-trace /trace on this address (empty disables)")
		traceCap    = flag.Int("trace-cap", trace.DefaultCapacity, "span-ring capacity (older spans overwritten once full)")
		utilWindow  = flag.Duration("util-window", time.Second, "device-utilization sampling window")
		traceSnap   = flag.String("trace-snapshot", "qfwd-trace.json", "Chrome trace-event snapshot written on SIGUSR1")
		selfcheck   = flag.Bool("selfcheck", false, "run one seeded workload twice through the serving layer at startup (miss then cache hit) and print its timings")
	)
	flag.Parse()

	session, err := core.Launch(core.Config{
		Machine:        cluster.Frontier(*nodes),
		AppNodes:       *appNodes,
		Workers:        *workers,
		Walltime:       *walltime,
		UseTCP:         true,
		MemBudgetBytes: int64(*memGiB) << 30,
		Seed:           *seed,
		TraceCap:       *traceCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qfwd: launch: %v\n", err)
		os.Exit(1)
	}
	defer session.Teardown()

	fmt.Printf("qfwd: SLURM job %d running (hetgroup-0: %d nodes, hetgroup-1: %d nodes)\n",
		session.Job.ID, *appNodes, *nodes-*appNodes)
	fmt.Printf("qfwd: DVM %s\n", session.DVM.URI)
	fmt.Printf("qfwd: DEFw endpoint %s\n", session.Addr)
	fmt.Printf("qfwd: backends: %v\n", session.Backends())
	if sched := faults.FromEnv(); sched != nil {
		fmt.Printf("qfwd: FAULT INJECTION ARMED (%s=%s): every executor wrapped in the deterministic injector\n",
			faults.EnvVar, sched.String())
	}

	// One serving layer per backend, registered beside the raw qpm.<backend>
	// service: applications that want the cache/coalescing/fair-share path
	// talk to serve.<backend>, existing clients keep the raw queue.
	srvCfg := serve.Config{CacheCap: *cacheCap, Window: *window, Quota: *quota}
	var servers []*serve.Server
	for _, backend := range session.Backends() {
		srv := serve.New(session.QPM(backend), srvCfg, session.Rec)
		session.RegisterService(serve.ServiceName(backend), srv)
		servers = append(servers, srv)
	}
	fmt.Printf("qfwd: serving layer up (cache %d, window %s)\n", *cacheCap, *window)

	// Utilization time series: QRC-worker busy fractions per backend plus
	// the serving layers' dispatch-slot busy fractions.
	sampler := session.StartUtilizationSampler(*utilWindow)
	for _, srv := range servers {
		srv := srv
		sampler.Watch(trace.LabeledName("qfw_serve_utilization", "backend", srv.Backend()), srv.Slots(), srv.BusyNS)
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qfwd: metrics listen: %v\n", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := session.Rec.Metrics().WritePrometheus(w); err != nil {
				fmt.Fprintf(os.Stderr, "qfwd: /metrics: %v\n", err)
			}
		})
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := session.Rec.WriteChromeTrace(w); err != nil {
				fmt.Fprintf(os.Stderr, "qfwd: /trace: %v\n", err)
			}
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("qfwd: telemetry endpoint http://%s/metrics (trace at /trace)\n", ln.Addr())
	}

	// SIGUSR1 dumps the span ring as a Chrome trace snapshot while the
	// daemon keeps serving — load the file in chrome://tracing or Perfetto.
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			if err := writeTraceSnapshot(session.Rec, *traceSnap); err != nil {
				fmt.Fprintf(os.Stderr, "qfwd: trace snapshot: %v\n", err)
				continue
			}
			st := session.Rec.Stats()
			fmt.Printf("qfwd: wrote %s (%d spans retained, %d dropped)\n", *traceSnap, st.Retained, st.Dropped)
		}
	}()

	if *selfcheck {
		if err := runSelfcheck(servers, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "qfwd: selfcheck: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Println("qfwd: serving; Ctrl-C or SIGTERM to drain and tear down")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Printf("\nqfwd: signal received, draining (up to %s)\n", *drainGrace)
	case <-session.Job.Done():
		fmt.Printf("qfwd: SLURM job ended (%s)\n", session.Job.State())
	}

	// Graceful drain: the serving layers stop admitting and flush their
	// queues first (their dispatches need live QPMs), then the QPMs quiesce
	// and finish whatever is still in flight.
	deadline := time.Now().Add(*drainGrace)
	for _, srv := range servers {
		if !srv.Drain(time.Until(deadline)) {
			fmt.Printf("qfwd: serve[%s] did not drain before the deadline\n", srv.Backend())
		}
	}
	if !session.Drain(time.Until(deadline)) {
		fmt.Println("qfwd: QPMs did not drain before the deadline; tearing down anyway")
	}
	for _, srv := range servers {
		st := srv.Stats()
		fmt.Printf("qfwd: serve[%s]: served %d (cache hits %d, deduped %d, shed %d, peak queue %d)\n",
			st.Backend, st.Served, st.CacheHits, st.Deduped, st.Shed, st.PeakQueueDepth)
		srv.Close()
	}
	fmt.Println("qfwd: tearing down")
}

// writeTraceSnapshot dumps the recorder's retained spans to path as Chrome
// trace-event JSON.
func writeTraceSnapshot(rec *trace.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSelfcheck pushes one seeded GHZ-8 through the first serving layer
// twice: the first run executes (populating the execution metrics), the
// second must replay from the result cache — together they light up every
// metric family the /metrics endpoint exports, so a scrape smoke test has
// real values to assert on.
func runSelfcheck(servers []*serve.Server, seed int64) error {
	if len(servers) == 0 {
		return fmt.Errorf("no serving layers")
	}
	srv := servers[0]
	circ := workloads.GHZ(8)
	spec, err := core.SpecFromCircuit(circ)
	if err != nil {
		return err
	}
	opts := core.RunOptions{Shots: 256, Seed: seed}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	for i, what := range []string{"miss", "hit"} {
		results, errs, info, err := srv.Exec("selfcheck", spec, nil, opts)
		if err != nil {
			return fmt.Errorf("run %d: %w", i+1, err)
		}
		if errs[0] != "" || results[0] == nil {
			return fmt.Errorf("run %d: %s", i+1, errs[0])
		}
		tm := results[0].Timings
		fmt.Printf("qfwd: selfcheck %s on %s: lookup %.3f ms | coalesce %.3f ms | queue %.3f ms | exec %.3f ms | total %.3f ms (cache hits %d)\n",
			what, srv.Backend(), tm.CacheLookupMS, tm.CoalesceWaitMS, tm.QueueMS, tm.ExecMS, tm.TotalMS, info.CacheHits)
		if i == 1 && !tm.CacheHit {
			return fmt.Errorf("second run was not served from the cache (timings %+v)", tm)
		}
	}
	return nil
}
