// Command qfwd runs the QFw services as a long-lived daemon: it submits the
// SLURM heterogeneous job, boots the DVM and one QPM per backend, exposes
// the DEFw RPC endpoint over TCP, and serves until interrupted — the
// deployment mode where applications connect from separate processes.
//
// Usage:
//
//	qfwd -nodes 4 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qfw/internal/cluster"
	"qfw/internal/core"

	_ "qfw/internal/backends"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "Frontier-model nodes for the SLURM job")
		appNodes = flag.Int("app-nodes", 1, "hetgroup-0 (application) nodes")
		workers  = flag.Int("workers", 8, "QRC worker threads per QPM (paper: 8)")
		memGiB   = flag.Int("mem", 1, "state-vector memory budget (GiB)")
		walltime = flag.Duration("walltime", 2*time.Hour, "SLURM walltime (paper cutoff: 2h)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	session, err := core.Launch(core.Config{
		Machine:        cluster.Frontier(*nodes),
		AppNodes:       *appNodes,
		Workers:        *workers,
		Walltime:       *walltime,
		UseTCP:         true,
		MemBudgetBytes: int64(*memGiB) << 30,
		Seed:           *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qfwd: launch: %v\n", err)
		os.Exit(1)
	}
	defer session.Teardown()

	fmt.Printf("qfwd: SLURM job %d running (hetgroup-0: %d nodes, hetgroup-1: %d nodes)\n",
		session.Job.ID, *appNodes, *nodes-*appNodes)
	fmt.Printf("qfwd: DVM %s\n", session.DVM.URI)
	fmt.Printf("qfwd: DEFw endpoint %s\n", session.Addr)
	fmt.Printf("qfwd: backends: %v\n", session.Backends())
	fmt.Println("qfwd: serving; Ctrl-C to tear down")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("\nqfwd: signal received, tearing down")
	case <-session.Job.Done():
		fmt.Printf("qfwd: SLURM job ended (%s)\n", session.Job.State())
	}
}
