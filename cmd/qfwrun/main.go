// Command qfwrun executes one Table-2 workload through the full QFw stack
// (SLURM het groups → DVM → QPM → backend) and prints the counts histogram
// with QFw's unified timing instrumentation.
//
// Usage:
//
//	qfwrun -workload ghz -n 12 -backend nwqsim -subbackend MPI
//	qfwrun -workload tfim -n 16 -backend aer -subbackend matrix_product_state
//	qfwrun -workload hhl -n 7 -backend ionq
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"qfw/internal/bench"
	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/workloads"

	_ "qfw/internal/backends"
)

func main() {
	var (
		workload   = flag.String("workload", "ghz", "ghz | ham | tfim | hhl")
		n          = flag.Int("n", 8, "qubit count (odd for hhl)")
		backend    = flag.String("backend", "aer", "nwqsim | aer | tnqvm | qtensor | ionq")
		subbackend = flag.String("subbackend", "", "backend-specific engine (empty = default)")
		shots      = flag.Int("shots", 1024, "measurement shots")
		nodes      = flag.Int("nodes", 0, "nodes for the execution placement (0 = schedule default)")
		procs      = flag.Int("procs", 0, "processes per node (0 = schedule default)")
		seed       = flag.Int64("seed", 1, "RNG seed")
		machNodes  = flag.Int("machine-nodes", 4, "Frontier-model nodes")
		top        = flag.Int("top", 8, "histogram rows to print")
		traceOut   = flag.String("trace", "", "write the run's spans as Chrome trace-event JSON to this file (load in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	circ, err := workloads.ByName(*workload, *n)
	if err != nil {
		fatal("%v", err)
	}
	pl := bench.PlacementFor(*n)
	if *nodes > 0 {
		pl.Nodes = *nodes
	}
	if *procs > 0 {
		pl.Procs = *procs
	}

	session, err := core.Launch(core.Config{
		Machine:  cluster.Frontier(*machNodes),
		Backends: []string{*backend},
		Seed:     *seed,
	})
	if err != nil {
		fatal("launch: %v", err)
	}
	defer session.Teardown()

	front, err := session.Frontend(core.Properties{Backend: *backend, Subbackend: *subbackend})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("workload %s-%d on %s/%s, placement (%d,%d), %d shots\n",
		*workload, *n, *backend, *subbackend, pl.Nodes, pl.Procs, *shots)
	fmt.Printf("circuit: %d gates, depth %d\n", len(circ.Gates), circ.Depth())

	start := time.Now()
	res, err := front.Run(circ, core.RunOptions{
		Shots: *shots, Seed: *seed, Nodes: pl.Nodes, ProcsPerNode: pl.Procs,
	})
	if err != nil {
		fatal("run: %v", err)
	}
	fmt.Printf("wall %s | queue %.2f ms | exec %.2f ms | total %.2f ms\n",
		time.Since(start).Round(time.Millisecond),
		res.Timings.QueueMS, res.Timings.ExecMS, res.Timings.TotalMS)
	if res.Timings.Attempts > 1 {
		fmt.Printf("retries: %d attempts, %.2f ms backoff\n",
			res.Timings.Attempts, res.Timings.RetryBackoffMS)
	}
	if res.TruncErr > 0 {
		fmt.Printf("MPS truncation error: %.3g\n", res.TruncErr)
	}
	if *traceOut != "" {
		if err := writeTrace(session, *traceOut); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Printf("trace: wrote %s\n", *traceOut)
	}

	type kv struct {
		key string
		n   int
	}
	var rows []kv
	for k, v := range res.Counts {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	if len(rows) > *top {
		rows = rows[:*top]
	}
	fmt.Println("counts:")
	for _, r := range rows {
		fmt.Printf("  %s  %6d  %5.1f%%\n", r.key, r.n, 100*float64(r.n)/float64(*shots))
	}
}

func writeTrace(session *core.Session, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := session.Rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qfwrun: "+format+"\n", args...)
	os.Exit(1)
}
