package qfw

import (
	"strings"
	"testing"
	"time"
)

// launchTest boots a small session on the Frontier model.
func launchTest(t *testing.T) *Session {
	t.Helper()
	s, err := Launch(Config{
		Machine:      Frontier(3),
		CloudLatency: time.Millisecond,
		CloudJitter:  time.Millisecond,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Teardown)
	return s
}

func TestPublicAPIQuickstart(t *testing.T) {
	s := launchTest(t)
	backend, err := s.Frontend(Properties{Backend: "aer", Subbackend: "automatic"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := backend.Run(GHZ(6), RunOptions{Shots: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for key, n := range res.Counts {
		if key != "000000" && key != "111111" {
			t.Fatalf("GHZ outcome %q", key)
		}
		total += n
	}
	if total != 512 {
		t.Fatalf("total %d", total)
	}
}

func TestPublicAPIBackendList(t *testing.T) {
	names := RegisteredBackends()
	if len(names) != 5 {
		t.Fatalf("backends %v", names)
	}
	// A live session additionally serves the workload-driven "auto" selector.
	s := launchTest(t)
	got := s.Backends()
	if len(got) != 6 || got[1] != "auto" {
		t.Fatalf("session backends %v", got)
	}
}

func TestAutoBackendRouting(t *testing.T) {
	s := launchTest(t)
	backend, err := s.Frontend(Properties{Backend: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	// Clifford GHZ must route to the stabilizer engine.
	res, err := backend.Run(GHZ(8), RunOptions{Shots: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Route, "aer/stabilizer") {
		t.Fatalf("GHZ routed to %q, want aer/stabilizer", res.Route)
	}
	// Nearest-neighbour TFIM at width >= 12 must route to MPS.
	res, err = backend.Run(TFIM(14, 4, 0.5, 1), RunOptions{Shots: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Route, "matrix_product_state") {
		t.Fatalf("TFIM routed to %q, want matrix_product_state", res.Route)
	}
	// HHL (dense controlled rotations, small) must route to a state vector.
	res, err = backend.Run(HHL(7), RunOptions{Shots: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Route, "statevector") && !strings.Contains(res.Route, "nwqsim") {
		t.Fatalf("HHL routed to %q", res.Route)
	}
}

func TestExactExpectationPath(t *testing.T) {
	s := launchTest(t)
	q := RandomQUBO(6, 0.6, 1, 8)
	for _, props := range []Properties{
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "aer", Subbackend: "matrix_product_state"},
		{Backend: "nwqsim", Subbackend: "MPI"},
	} {
		backend, err := s.Frontend(props)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveQAOA(q, backend, QAOAOptions{
			P: 1, Shots: 128, MaxEvals: 15, Seed: 4, ExactExpectation: true,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", props.Backend, props.Subbackend, err)
		}
		if len(res.Bits) != 6 {
			t.Fatalf("%s/%s: bits %v", props.Backend, props.Subbackend, res.Bits)
		}
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if GHZ(8).NQubits != 8 {
		t.Fatal("GHZ width")
	}
	if HamSim(6, 2).NQubits != 6 {
		t.Fatal("HamSim width")
	}
	if TFIM(6, 3, 0.5, 1).NQubits != 6 {
		t.Fatal("TFIM width")
	}
	if HHL(7).NQubits != 7 {
		t.Fatal("HHL width")
	}
}

func TestPublicAPICircuitBuilding(t *testing.T) {
	c := NewCircuit(2)
	c.H(0).CX(0, 1).RZ(1, Sym("g", 2)).MeasureAll()
	if c.IsBound() {
		t.Fatal("should have symbolic param")
	}
	b := c.Bind(map[string]float64{"g": 0.25})
	qasm, err := b.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseQASM(qasm)
	if err != nil {
		t.Fatal(err)
	}
	if back.NQubits != 2 {
		t.Fatal("round trip width")
	}
}

func TestPublicAPIBatch(t *testing.T) {
	// The batch path through the full stack: one parametric circuit, K
	// bindings, ordered results from a single submit_batch RPC.
	s := launchTest(t)
	backend, err := s.Frontend(Properties{Backend: "aer", Subbackend: "statevector"})
	if err != nil {
		t.Fatal(err)
	}
	ansatz := NewCircuit(2)
	ansatz.RY(0, Sym("theta", 1)).CX(0, 1).MeasureAll()
	bindings := []Bindings{{"theta": 0}, {"theta": 3.14159265}}
	results, err := backend.RunBatch(ansatz, bindings, RunOptions{Shots: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	// theta=0 leaves |00>; theta=pi flips to |11> — ordering is observable.
	if results[0].Counts["00"] < 390 || results[1].Counts["11"] < 390 {
		t.Fatalf("batch order broken: %v / %v", results[0].Counts, results[1].Counts)
	}
	// The async variant returns a handle first.
	pending, err := backend.RunBatchAsync(ansatz, bindings, RunOptions{Shots: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if pending.N != 2 || pending.BatchID == "" {
		t.Fatalf("pending %+v", pending)
	}
	if _, err := pending.Results(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIBatchAutoRouting(t *testing.T) {
	// Batches route through the workload-driven selector too: the route
	// annotation must appear on every element.
	s := launchTest(t)
	backend, err := s.Frontend(Properties{Backend: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	ansatz := NewCircuit(3)
	ansatz.H(0).RZ(1, Sym("g", 2)).CX(0, 1).MeasureAll()
	results, err := backend.RunBatch(ansatz, []Bindings{{"g": 0.2}, {"g": 0.9}}, RunOptions{Shots: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Route == "" {
			t.Fatalf("element %d missing route annotation: %+v", i, res)
		}
	}
}

func TestPublicAPIQAOA(t *testing.T) {
	s := launchTest(t)
	backend, err := s.Frontend(Properties{Backend: "aer", Subbackend: "statevector"})
	if err != nil {
		t.Fatal(err)
	}
	q := RandomQUBO(6, 0.6, 1, 3)
	res, err := SolveQAOA(q, backend, QAOAOptions{P: 1, Shots: 256, MaxEvals: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bits) != 6 {
		t.Fatalf("result %+v", res)
	}
}

func TestPublicAPIDQAOA(t *testing.T) {
	s := launchTest(t)
	backend, err := s.Frontend(Properties{Backend: "nwqsim", Subbackend: "openmp"})
	if err != nil {
		t.Fatal(err)
	}
	q := MetamaterialQUBO(14, 5)
	rec := NewRecorder()
	res, err := SolveDQAOA(q, backend, DQAOAConfig{
		SubQSize: 6, NSubQ: 3, MaxIter: 2, Seed: 6, Shots: 128, MaxEvals: 10,
		Async: true, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality <= 0 {
		t.Fatalf("quality %g", res.Quality)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder empty")
	}
	if !strings.Contains(rec.Timeline(40), "#") {
		t.Fatal("timeline empty")
	}
}

func TestPublicAPIVQLSThroughStack(t *testing.T) {
	// The variational linear solver runs through the full orchestration
	// stack using general-Pauli observables on a local simulator backend.
	s := launchTest(t)
	backend, err := s.Frontend(Properties{Backend: "aer", Subbackend: "statevector"})
	if err != nil {
		t.Fatal(err)
	}
	p := IsingVQLS(2, 0.3, 0.2, 1.0)
	res, err := SolveVQLS(p, backend, VQLSOptions{Layers: 1, MaxEvals: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 0.1 {
		t.Fatalf("VQLS cost %g did not converge through the stack", res.Cost)
	}
	// The cloud path must reject general-Pauli observables cleanly.
	cloud, err := s.Frontend(Properties{Backend: "ionq", Subbackend: "simulator"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveVQLS(p, cloud, VQLSOptions{Layers: 1, MaxEvals: 5, Seed: 2}); err == nil {
		t.Fatal("cloud backend accepted a general-Pauli observable")
	}
}

func TestMachineModels(t *testing.T) {
	if Frontier(2).TotalUsableCores() != 112 {
		t.Fatal("frontier cores")
	}
	if Laptop(1).TotalUsableCores() != 8 {
		t.Fatal("laptop cores")
	}
}
