package pauli

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qfw/internal/linalg"
)

func randomString(n int, rng *rand.Rand) String {
	ops := []Op{I, X, Y, Z}
	s := String{Coeff: rng.NormFloat64(), Ops: make([]Op, n)}
	for i := range s.Ops {
		s.Ops[i] = ops[rng.Intn(4)]
	}
	return s
}

// denseOf materializes a Pauli string as a matrix (qubit 0 = LSB).
func denseOf(s String) *linalg.Matrix {
	m := linalg.Identity(1)
	for q := len(s.Ops) - 1; q >= 0; q-- {
		m = linalg.Kron(m, opMatrix(s.Ops[q]))
	}
	return linalg.Scale(complex(s.Coeff, 0), m)
}

func TestQuickMulMatchesDense(t *testing.T) {
	// Property: symbolic Pauli multiplication agrees with dense matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := randomString(n, rng)
		b := randomString(n, rng)
		prod, phase := Mul(a, b)
		sym := linalg.Scale(phase, denseOf(prod))
		dense := linalg.MatMul(denseOf(a), denseOf(b))
		return linalg.MaxAbsDiff(sym, dense) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestMulOpsTable(t *testing.T) {
	cases := []struct {
		a, b  Op
		want  Op
		phase complex128
	}{
		{I, X, X, 1}, {X, I, X, 1}, {X, X, I, 1},
		{X, Y, Z, complex(0, 1)}, {Y, X, Z, complex(0, -1)},
		{Y, Z, X, complex(0, 1)}, {Z, Y, X, complex(0, -1)},
		{Z, X, Y, complex(0, 1)}, {X, Z, Y, complex(0, -1)},
	}
	for _, tc := range cases {
		got, ph := MulOps(tc.a, tc.b)
		if got != tc.want || cmplx.Abs(ph-tc.phase) > 1e-15 {
			t.Fatalf("%c*%c = %c phase %v, want %c phase %v", tc.a, tc.b, got, ph, tc.want, tc.phase)
		}
	}
}

func TestOpsKey(t *testing.T) {
	s := NewString(3, 1, map[int]Op{0: X, 2: Z})
	if s.OpsKey() != "XIZ" {
		t.Fatalf("key %q", s.OpsKey())
	}
}

func TestMulWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewString(2, 1, nil), NewString(3, 1, nil))
}
