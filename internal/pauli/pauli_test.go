package pauli

import (
	"math"
	"testing"
)

func TestTFIMTermCount(t *testing.T) {
	h := TFIM(5, 1.0, 0.7)
	if len(h.Terms) != 4+5 {
		t.Fatalf("TFIM(5) term count %d, want 9", len(h.Terms))
	}
	if h.IsDiagonal() {
		t.Fatal("TFIM with transverse field should not be diagonal")
	}
}

func TestIsingCostDiagonal(t *testing.T) {
	h := IsingCost([]float64{0.5, -0.25, 0}, map[[2]int]float64{{0, 1}: 1, {1, 2}: -2})
	if !h.IsDiagonal() {
		t.Fatal("Ising cost must be diagonal")
	}
	// Energy of |000>: 0.5 - 0.25 + 1 - 2 = -0.75
	if e := h.DiagonalEnergy([]int{0, 0, 0}); math.Abs(e-(-0.75)) > 1e-12 {
		t.Fatalf("energy(000) = %g, want -0.75", e)
	}
	// Energy of |110> (bits[0]=1, bits[1]=1): -0.5 +0.25*... compute:
	// h0*(-1) + h1*(-1) + J01*(+1) + J12*(-1) = -0.5 + 0.25 + 1 + 2 = 2.75
	if e := h.DiagonalEnergy([]int{1, 1, 0}); math.Abs(e-2.75) > 1e-12 {
		t.Fatalf("energy(110) = %g, want 2.75", e)
	}
}

func TestMatrixHermitian(t *testing.T) {
	h := TFIM(3, 0.9, 0.4)
	m := h.Matrix()
	if !m.IsHermitian(1e-12) {
		t.Fatal("TFIM matrix should be Hermitian")
	}
	if m.Rows != 8 {
		t.Fatalf("dim %d, want 8", m.Rows)
	}
	h2 := Heisenberg(3, 1, 1, 0.5)
	if !h2.Matrix().IsHermitian(1e-12) {
		t.Fatal("Heisenberg matrix should be Hermitian")
	}
}

func TestMatrixDiagonalMatchesDiagonalEnergy(t *testing.T) {
	h := IsingCost([]float64{0.3, -0.7}, map[[2]int]float64{{0, 1}: 0.5})
	m := h.Matrix()
	for idx := 0; idx < 4; idx++ {
		bits := []int{idx & 1, (idx >> 1) & 1}
		want := h.DiagonalEnergy(bits)
		got := real(m.At(idx, idx))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("idx %d: matrix diag %g vs DiagonalEnergy %g", idx, got, want)
		}
	}
}

func TestTrotterCircuitShape(t *testing.T) {
	h := TFIM(4, 1, 0.5)
	c := h.TrotterCircuit(1.0, 3)
	if c.NQubits != 4 {
		t.Fatalf("width %d", c.NQubits)
	}
	ops := c.CountOps()
	// 3 steps x (3 ZZ + 4 X) terms.
	if ops["rzz"] != 9 || ops["rx"] != 12 {
		t.Fatalf("op histogram %v", ops)
	}
}

func TestStringHelpers(t *testing.T) {
	s := NewString(4, -1.5, map[int]Op{1: X, 3: Z})
	if s.Weight() != 2 {
		t.Fatalf("weight %d", s.Weight())
	}
	sup := s.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("support %v", sup)
	}
	if s.String() == "" {
		t.Fatal("empty string form")
	}
}

func TestGeneralTermEvolutionGateSet(t *testing.T) {
	// A weight-3 mixed string must lower to basis changes + CX ladder + RZ.
	h := &Hamiltonian{NQubits: 3}
	h.Add(0.8, map[int]Op{0: X, 1: Y, 2: Z})
	c := h.TrotterCircuit(0.5, 1)
	ops := c.CountOps()
	if ops["cx"] != 4 || ops["rz"] != 1 {
		t.Fatalf("ladder structure wrong: %v", ops)
	}
}
