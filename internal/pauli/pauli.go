// Package pauli provides Pauli-string algebra and the spin Hamiltonians used
// by the paper's workloads: transverse-field Ising models (TFIM) for the HAM
// and TFIM benchmarks, Ising cost operators for QAOA, and first-order
// Trotterization into circuits.
package pauli

import (
	"fmt"
	"sort"
	"strings"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
)

// Op is a single-qubit Pauli operator.
type Op byte

// Pauli operators.
const (
	I Op = 'I'
	X Op = 'X'
	Y Op = 'Y'
	Z Op = 'Z'
)

// String is a Pauli string: one Op per qubit with a real coefficient.
type String struct {
	Coeff float64
	Ops   []Op
}

// NewString builds a Pauli string on n qubits from sparse (qubit, op) pairs.
func NewString(n int, coeff float64, terms map[int]Op) String {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = I
	}
	for q, op := range terms {
		if q < 0 || q >= n {
			panic(fmt.Sprintf("pauli: qubit %d out of range", q))
		}
		ops[q] = op
	}
	return String{Coeff: coeff, Ops: ops}
}

// Weight returns the number of non-identity operators.
func (s String) Weight() int {
	w := 0
	for _, op := range s.Ops {
		if op != I {
			w++
		}
	}
	return w
}

// Support returns the qubits with non-identity operators.
func (s String) Support() []int {
	var q []int
	for i, op := range s.Ops {
		if op != I {
			q = append(q, i)
		}
	}
	return q
}

func (s String) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%+.4g*", s.Coeff)
	for _, op := range s.Ops {
		b.WriteByte(byte(op))
	}
	return b.String()
}

// MulOps multiplies two single-qubit Pauli operators, returning the product
// operator and its phase (1, ±i, or -1... the phase is one of {1, i, -1, -i}).
func MulOps(a, b Op) (Op, complex128) {
	if a == I {
		return b, 1
	}
	if b == I {
		return a, 1
	}
	if a == b {
		return I, 1
	}
	// Cyclic rules: XY=iZ, YZ=iX, ZX=iY; reversed order negates.
	switch {
	case a == X && b == Y:
		return Z, complex(0, 1)
	case a == Y && b == X:
		return Z, complex(0, -1)
	case a == Y && b == Z:
		return X, complex(0, 1)
	case a == Z && b == Y:
		return X, complex(0, -1)
	case a == Z && b == X:
		return Y, complex(0, 1)
	case a == X && b == Z:
		return Y, complex(0, -1)
	}
	panic("pauli: unreachable op product")
}

// Mul multiplies two Pauli strings of equal width: a·b = phase · result,
// where result carries coefficient a.Coeff*b.Coeff and phase accumulates the
// per-qubit operator phases.
func Mul(a, b String) (String, complex128) {
	if len(a.Ops) != len(b.Ops) {
		panic("pauli: width mismatch in Mul")
	}
	out := String{Coeff: a.Coeff * b.Coeff, Ops: make([]Op, len(a.Ops))}
	phase := complex(1, 0)
	for i := range a.Ops {
		op, ph := MulOps(a.Ops[i], b.Ops[i])
		out.Ops[i] = op
		phase *= ph
	}
	return out, phase
}

// OpsKey renders the operator part as a comparable string ("IXZY...").
func (s String) OpsKey() string {
	b := make([]byte, len(s.Ops))
	for i, op := range s.Ops {
		b[i] = byte(op)
	}
	return string(b)
}

// Hamiltonian is a weighted sum of Pauli strings on NQubits qubits.
type Hamiltonian struct {
	NQubits int
	Terms   []String
}

// Add appends coeff * P(terms) to the Hamiltonian.
func (h *Hamiltonian) Add(coeff float64, terms map[int]Op) {
	h.Terms = append(h.Terms, NewString(h.NQubits, coeff, terms))
}

// TFIM returns the 1D transverse-field Ising Hamiltonian
// H = -J Σ Z_i Z_{i+1} - h Σ X_i (open boundary), the model behind both the
// TFIM and the SupermarQ Hamiltonian-simulation workloads.
func TFIM(n int, j, hx float64) *Hamiltonian {
	h := &Hamiltonian{NQubits: n}
	for i := 0; i+1 < n; i++ {
		h.Add(-j, map[int]Op{i: Z, i + 1: Z})
	}
	for i := 0; i < n; i++ {
		h.Add(-hx, map[int]Op{i: X})
	}
	return h
}

// Heisenberg returns the 1D XXZ Heisenberg Hamiltonian
// H = Σ (Jx X_i X_{i+1} + Jy Y_i Y_{i+1} + Jz Z_i Z_{i+1}).
func Heisenberg(n int, jx, jy, jz float64) *Hamiltonian {
	h := &Hamiltonian{NQubits: n}
	for i := 0; i+1 < n; i++ {
		h.Add(jx, map[int]Op{i: X, i + 1: X})
		h.Add(jy, map[int]Op{i: Y, i + 1: Y})
		h.Add(jz, map[int]Op{i: Z, i + 1: Z})
	}
	return h
}

// SortedPairs returns the keys of a coupling map in sorted order. Every
// consumer that flattens such a map into terms must use this order, never
// raw map iteration: term order decides floating-point summation order in
// expectation and gradient evaluations, and seeded determinism is a repo
// invariant.
func SortedPairs(js map[[2]int]float64) [][2]int {
	pairs := make([][2]int, 0, len(js))
	for pair := range js {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	return pairs
}

// IsingCost returns the diagonal Ising cost Hamiltonian
// H = Σ h_i Z_i + Σ_{i<j} J_ij Z_i Z_j + offset used by QAOA. Coupling
// terms are emitted in SortedPairs order (see there).
func IsingCost(hs []float64, js map[[2]int]float64) *Hamiltonian {
	n := len(hs)
	h := &Hamiltonian{NQubits: n}
	for i, hi := range hs {
		if hi != 0 {
			h.Add(hi, map[int]Op{i: Z})
		}
	}
	for _, pair := range SortedPairs(js) {
		if j := js[pair]; j != 0 {
			h.Add(j, map[int]Op{pair[0]: Z, pair[1]: Z})
		}
	}
	return h
}

// IsDiagonal reports whether every term uses only I/Z operators.
func (h *Hamiltonian) IsDiagonal() bool {
	for _, t := range h.Terms {
		for _, op := range t.Ops {
			if op == X || op == Y {
				return false
			}
		}
	}
	return true
}

// Matrix returns the dense 2^n x 2^n matrix of the Hamiltonian; only for
// small n (used to compute exact references).
func (h *Hamiltonian) Matrix() *linalg.Matrix {
	if h.NQubits > 12 {
		panic("pauli: dense Hamiltonian beyond 12 qubits")
	}
	dim := 1 << h.NQubits
	m := linalg.New(dim, dim)
	for _, t := range h.Terms {
		tm := linalg.Identity(1)
		for q := h.NQubits - 1; q >= 0; q-- {
			// Qubit 0 is the least-significant bit of the state index, so it
			// is the rightmost factor in the Kronecker product.
			tm = linalg.Kron(tm, opMatrix(t.Ops[q]))
		}
		m = linalg.Add(m, linalg.Scale(complex(t.Coeff, 0), tm))
	}
	return m
}

func opMatrix(op Op) *linalg.Matrix {
	switch op {
	case I:
		return linalg.Identity(2)
	case X:
		return linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	case Y:
		return linalg.FromRows([][]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}})
	case Z:
		return linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
	}
	panic("pauli: unknown op")
}

// DiagonalEnergy evaluates a diagonal Hamiltonian on a computational basis
// state given as bit values (bit[i] is qubit i; Z|0>=+|0>, Z|1>=-|1>).
func (h *Hamiltonian) DiagonalEnergy(bits []int) float64 {
	var e float64
	for _, t := range h.Terms {
		sign := 1.0
		for q, op := range t.Ops {
			switch op {
			case Z:
				if bits[q] == 1 {
					sign = -sign
				}
			case X, Y:
				panic("pauli: DiagonalEnergy on non-diagonal Hamiltonian")
			}
		}
		e += t.Coeff * sign
	}
	return e
}

// TrotterCircuit builds a first-order Trotter approximation of exp(-i H t)
// with the given number of steps. Each Pauli string of weight 1 becomes a
// single rotation; weight-2 ZZ/XX terms map to RZZ/RXX; general strings use
// the CNOT-ladder + basis-change construction. The result contains no
// measurements.
func (h *Hamiltonian) TrotterCircuit(t float64, steps int) *circuit.Circuit {
	if steps < 1 {
		panic("pauli: trotter steps must be >= 1")
	}
	c := circuit.New(h.NQubits)
	dt := t / float64(steps)
	for s := 0; s < steps; s++ {
		for _, term := range h.Terms {
			appendTermEvolution(c, term, dt)
		}
	}
	return c
}

// appendTermEvolution appends exp(-i coeff * dt * P) for one Pauli string.
func appendTermEvolution(c *circuit.Circuit, term String, dt float64) {
	theta := 2 * term.Coeff * dt // rotation convention: R_P(θ) = exp(-iθP/2)
	sup := term.Support()
	switch len(sup) {
	case 0:
		return // global phase
	case 1:
		q := sup[0]
		switch term.Ops[q] {
		case X:
			c.RX(q, circuit.Bound(theta))
		case Y:
			c.RY(q, circuit.Bound(theta))
		case Z:
			c.RZ(q, circuit.Bound(theta))
		}
		return
	case 2:
		a, b := sup[0], sup[1]
		if term.Ops[a] == Z && term.Ops[b] == Z {
			c.RZZ(a, b, circuit.Bound(theta))
			return
		}
		if term.Ops[a] == X && term.Ops[b] == X {
			c.RXX(a, b, circuit.Bound(theta))
			return
		}
	}
	// General case: rotate each qubit into the Z basis, apply a CNOT ladder,
	// RZ on the last qubit, then undo.
	var basis []func()
	for _, q := range sup {
		q := q
		switch term.Ops[q] {
		case X:
			c.H(q)
			basis = append(basis, func() { c.H(q) })
		case Y:
			// Y-basis change: S† then H going in, H then S coming out... use
			// the standard HS† / SH pair.
			c.Sdg(q)
			c.H(q)
			basis = append(basis, func() { c.H(q); c.S(q) })
		}
	}
	for i := 0; i+1 < len(sup); i++ {
		c.CX(sup[i], sup[i+1])
	}
	c.RZ(sup[len(sup)-1], circuit.Bound(theta))
	for i := len(sup) - 2; i >= 0; i-- {
		c.CX(sup[i], sup[i+1])
	}
	for i := len(basis) - 1; i >= 0; i-- {
		basis[i]()
	}
}
