// Package faults is the shared fault-tolerance vocabulary of the stack:
// a transient/permanent error classification, a retry policy with capped
// full-jitter exponential backoff, and a deterministic fault injector
// (inject.go) the tests and the ablation-faults bench drive executions
// through. The package is a leaf — it imports only the standard library —
// so every layer (core, backends, ionq, prte, serve) can share one policy
// type without import cycles.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// ErrTransient marks failures worth retrying: the operation failed for a
// reason expected to clear on its own (a cloud 5xx, an MPI slot race, an
// injected flake), as opposed to a permanent condition (bad circuit,
// infeasible size, expired deadline) where a retry can only lose time.
var ErrTransient = errors.New("transient fault")

// Transient wraps an error as retryable. A nil error stays nil and an
// already-transient error is returned unchanged.
func Transient(err error) error {
	if err == nil || IsTransient(err) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrTransient, err)
}

// IsTransient detects ErrTransient even after the error has crossed an RPC
// boundary and been flattened to a string.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	return strings.Contains(err.Error(), ErrTransient.Error())
}

// Policy is a bounded retry loop with capped full-jitter exponential
// backoff. The zero value retries transient failures up to three attempts
// with millisecond-scale delays; MaxAttempts of 1 disables retrying.
type Policy struct {
	// MaxAttempts bounds the total tries including the first (default 3).
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry (default
	// 1ms); the ceiling doubles per attempt up to MaxDelay (default 50ms),
	// and the actual wait is uniform in [0, ceiling] (full jitter).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed makes the jitter stream deterministic (default 1).
	Seed int64
	// Classify decides whether a failure is worth another attempt
	// (default IsTransient).
	Classify func(error) bool
	// Hint extracts a server-provided wait (e.g. an HTTP Retry-After)
	// from a retryable error; when it returns ok the backoff waits at
	// least that long.
	Hint func(error) (time.Duration, bool)
	// Sleep replaces time.Sleep (test hook).
	Sleep func(time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Classify == nil {
		p.Classify = IsTransient
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// RetryStats summarizes one pass through the retry envelope: how many
// attempts ran (>= 1) and the total backoff slept between them. The
// timing instrumentation separates backoff from execution time with it.
type RetryStats struct {
	Attempts int
	Backoff  time.Duration
}

// Do runs op until it succeeds, fails permanently, or exhausts the
// attempt budget; op receives the zero-based attempt number. The error of
// the final attempt is returned unwrapped, so typed classification (e.g.
// core.IsDeadlineExceeded) still works on the result.
func (p Policy) Do(op func(attempt int) error) error {
	_, err := p.DoStats(op)
	return err
}

// DoStats is Do returning the attempt/backoff accounting alongside the
// final error. Backoff counts the delays handed to Sleep, so a stubbed
// Sleep (tests) still yields the schedule the policy computed.
func (p Policy) DoStats(op func(attempt int) error) (RetryStats, error) {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var stats RetryStats
	for attempt := 0; ; attempt++ {
		stats.Attempts++
		err := op(attempt)
		if err == nil {
			return stats, nil
		}
		if attempt+1 >= p.MaxAttempts || !p.Classify(err) {
			return stats, err
		}
		ceiling := p.BaseDelay << uint(attempt)
		if ceiling > p.MaxDelay || ceiling <= 0 {
			ceiling = p.MaxDelay
		}
		delay := time.Duration(rng.Int63n(int64(ceiling) + 1))
		if p.Hint != nil {
			if h, ok := p.Hint(err); ok && h > delay {
				delay = h
			}
		}
		stats.Backoff += delay
		p.Sleep(delay)
	}
}
