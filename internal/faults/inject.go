package faults

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment knob holding a fault schedule; when set at
// Launch time every backend executor is wrapped in an injector built from
// it (see core.NewFaultyExecutor).
const EnvVar = "QFW_FAULTS"

// Schedule describes a deterministic failure pattern. Exactly one of the
// two selection mechanisms applies: Nth > 0 fails every Nth call
// regardless of key; otherwise each distinct call key is marked faulty
// with probability Rate by a seeded hash, so the same keys fail on every
// run with the same seed, independent of call order.
type Schedule struct {
	// Rate is the fraction of call keys marked faulty (0..1).
	Rate float64
	// Times bounds the injected failures per marked key before it
	// succeeds — the transient-then-recover pattern (default 1; -1 fails
	// the key forever).
	Times int
	// Mode is the failure shape: "error" (a transient error return,
	// default), "panic" (the executor panics), or "hang" (the call blocks
	// until the injector is closed, exercising deadlines).
	Mode string
	// Nth, when positive, fails every Nth call counted across all keys.
	Nth int64
	// Seed drives the key-marking hash (default 1).
	Seed int64
}

func (s Schedule) withDefaults() Schedule {
	if s.Times == 0 {
		s.Times = 1
	}
	if s.Mode == "" {
		s.Mode = "error"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// String renders the schedule in ParseSchedule's format.
func (s Schedule) String() string {
	s = s.withDefaults()
	parts := []string{}
	if s.Nth > 0 {
		parts = append(parts, fmt.Sprintf("nth=%d", s.Nth))
	} else {
		parts = append(parts, fmt.Sprintf("rate=%g", s.Rate))
	}
	parts = append(parts, fmt.Sprintf("times=%d", s.Times), "mode="+s.Mode, fmt.Sprintf("seed=%d", s.Seed))
	return strings.Join(parts, ",")
}

// ParseSchedule decodes a comma-separated schedule spec, e.g.
// "rate=0.2,times=1,mode=error,seed=7" or "nth=3,mode=panic".
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Schedule{}, fmt.Errorf("faults: bad schedule field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "rate":
			s.Rate, err = strconv.ParseFloat(val, 64)
			if err == nil && (s.Rate < 0 || s.Rate > 1) {
				err = fmt.Errorf("rate %g out of [0,1]", s.Rate)
			}
		case "times":
			s.Times, err = strconv.Atoi(val)
		case "mode":
			switch val {
			case "error", "panic", "hang":
				s.Mode = val
			default:
				err = fmt.Errorf("unknown mode %q", val)
			}
		case "nth":
			s.Nth, err = strconv.ParseInt(val, 10, 64)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: bad schedule field %q: %v", field, err)
		}
	}
	if s.Rate == 0 && s.Nth == 0 {
		return Schedule{}, fmt.Errorf("faults: schedule %q selects nothing (set rate= or nth=)", spec)
	}
	return s.withDefaults(), nil
}

// FromEnv reads the QFW_FAULTS schedule; nil when unset. A malformed
// value is reported on stderr and ignored rather than silently arming a
// wrong schedule.
func FromEnv() *Schedule {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	s, err := ParseSchedule(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faults: ignoring %s=%q: %v\n", EnvVar, spec, err)
		return nil
	}
	return &s
}

// Injector applies a Schedule to keyed call sites. Marking is a pure
// function of (key, seed), so which elements fail is independent of
// worker interleaving — the property that lets tests assert bit-identical
// recovery against a clean run.
type Injector struct {
	sched    Schedule
	calls    atomic.Int64
	injected atomic.Int64

	mu   sync.Mutex
	seen map[string]int

	stop     chan struct{}
	stopOnce sync.Once
}

// NewInjector builds an injector for the schedule.
func NewInjector(s Schedule) *Injector {
	return &Injector{sched: s.withDefaults(), seen: make(map[string]int), stop: make(chan struct{})}
}

// Schedule returns the armed schedule.
func (inj *Injector) Schedule() Schedule { return inj.sched }

// Calls reports how many Before probes ran; Injected how many faulted.
func (inj *Injector) Calls() int64    { return inj.calls.Load() }
func (inj *Injector) Injected() int64 { return inj.injected.Load() }

// Marked reports whether a key is on the failure schedule (before Times
// accounting). Rate-based marking hashes key and seed into a uniform
// variate, so it is stable across runs and call orders.
func (inj *Injector) Marked(key string) bool {
	if inj.sched.Nth > 0 || inj.sched.Rate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d", key, inj.sched.Seed)
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return u < inj.sched.Rate
}

// Before is the injection point: call it with a stable key before the
// real operation. When the schedule selects this call it consumes one of
// the key's Times failures and applies the mode — returning a transient
// error, panicking, or blocking until Close. Otherwise it returns nil.
func (inj *Injector) Before(key string) error {
	n := inj.calls.Add(1)
	fault := false
	if inj.sched.Nth > 0 {
		fault = n%inj.sched.Nth == 0
	} else if inj.Marked(key) {
		inj.mu.Lock()
		if inj.sched.Times < 0 || inj.seen[key] < inj.sched.Times {
			inj.seen[key]++
			fault = true
		}
		inj.mu.Unlock()
	}
	if !fault {
		return nil
	}
	inj.injected.Add(1)
	switch inj.sched.Mode {
	case "panic":
		panic(fmt.Sprintf("faults: injected panic (key %s)", key))
	case "hang":
		<-inj.stop
		return Transient(fmt.Errorf("injected hang released (key %s)", key))
	default:
		return Transient(fmt.Errorf("injected fault (key %s, call %d)", key, n))
	}
}

// Close releases hung calls; idempotent.
func (inj *Injector) Close() {
	inj.stopOnce.Do(func() { close(inj.stop) })
}
