package faults

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	base := errors.New("socket reset")
	tr := Transient(base)
	if !IsTransient(tr) {
		t.Fatalf("wrapped error not transient: %v", tr)
	}
	if IsTransient(base) {
		t.Fatal("plain error classified transient")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	if got := Transient(tr); got != tr {
		t.Fatalf("double wrap: %v", got)
	}
	// The RPC layer flattens errors to strings; classification must survive.
	flat := fmt.Errorf("%s", tr.Error())
	if !IsTransient(flat) {
		t.Fatalf("flattened error lost classification: %v", flat)
	}
}

func TestPolicyRetriesTransient(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 4, Seed: 7, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return Transient(fmt.Errorf("flake %d", calls))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times", len(slept))
	}
	for i, d := range slept {
		ceiling := time.Millisecond << uint(i)
		if d < 0 || d > ceiling {
			t.Fatalf("sleep %d = %s over ceiling %s", i, d, ceiling)
		}
	}
}

func TestPolicyDeterministicBackoff(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		p := Policy{MaxAttempts: 5, Seed: 3, Sleep: func(d time.Duration) { slept = append(slept, d) }}
		p.Do(func(int) error { return Transient(errors.New("always")) })
		return slept
	}
	a, b := run(), run()
	if len(a) != 4 {
		t.Fatalf("want 4 sleeps, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
	}
}

func TestDoStatsAccountsAttemptsAndBackoff(t *testing.T) {
	var slept time.Duration
	p := Policy{MaxAttempts: 4, Seed: 9, Sleep: func(d time.Duration) { slept += d }}
	calls := 0
	stats, err := p.DoStats(func(int) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flake"))
		}
		return nil
	})
	if err != nil || stats.Attempts != 3 {
		t.Fatalf("err=%v stats=%+v", err, stats)
	}
	// Backoff must equal exactly what was handed to Sleep, even stubbed.
	if stats.Backoff != slept {
		t.Fatalf("stats backoff %s != slept %s", stats.Backoff, slept)
	}

	// Success on the first try: one attempt, zero backoff.
	stats, err = p.DoStats(func(int) error { return nil })
	if err != nil || stats.Attempts != 1 || stats.Backoff != 0 {
		t.Fatalf("clean run stats=%+v err=%v", stats, err)
	}

	// Permanent failure: no retry, no backoff, error surfaced.
	perm := errors.New("bad circuit")
	stats, err = p.DoStats(func(int) error { return perm })
	if !errors.Is(err, perm) || stats.Attempts != 1 || stats.Backoff != 0 {
		t.Fatalf("permanent stats=%+v err=%v", stats, err)
	}
}

func TestPolicyPermanentFailsFast(t *testing.T) {
	calls := 0
	perm := errors.New("bad circuit")
	err := Policy{MaxAttempts: 5, Sleep: func(time.Duration) {}}.Do(func(int) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestPolicyExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Policy{MaxAttempts: 3, Sleep: func(time.Duration) {}}.Do(func(int) error {
		calls++
		return Transient(errors.New("always"))
	})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if !IsTransient(err) {
		t.Fatalf("final error lost type: %v", err)
	}
}

type hinted struct{ after time.Duration }

func (h hinted) Error() string { return "throttled: " + ErrTransient.Error() }

func TestPolicyHonorsHint(t *testing.T) {
	var slept []time.Duration
	p := Policy{
		MaxAttempts: 2,
		Seed:        1,
		Hint: func(err error) (time.Duration, bool) {
			var h hinted
			if errors.As(err, &h) {
				return h.after, true
			}
			return 0, false
		},
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	p.Do(func(int) error { return hinted{after: 40 * time.Millisecond} })
	if len(slept) != 1 || slept[0] < 40*time.Millisecond {
		t.Fatalf("hint ignored: %v", slept)
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("rate=0.2,times=1,mode=error,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate != 0.2 || s.Times != 1 || s.Mode != "error" || s.Seed != 7 {
		t.Fatalf("parsed %+v", s)
	}
	s, err = ParseSchedule("nth=3,mode=panic")
	if err != nil {
		t.Fatal(err)
	}
	if s.Nth != 3 || s.Mode != "panic" || s.Times != 1 || s.Seed != 1 {
		t.Fatalf("parsed %+v", s)
	}
	if round, err := ParseSchedule(s.String()); err != nil || round != s {
		t.Fatalf("round trip %+v vs %+v (%v)", round, s, err)
	}
	for _, bad := range []string{"rate=2", "mode=explode", "rate", "times=1", "frob=1"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if FromEnv() != nil {
		t.Fatal("unset env produced a schedule")
	}
	t.Setenv(EnvVar, "rate=0.5,seed=9")
	s := FromEnv()
	if s == nil || s.Rate != 0.5 || s.Seed != 9 {
		t.Fatalf("got %+v", s)
	}
	t.Setenv(EnvVar, "garbage")
	if FromEnv() != nil {
		t.Fatal("malformed env produced a schedule")
	}
}

func TestInjectorMarkingDeterministic(t *testing.T) {
	a := NewInjector(Schedule{Rate: 0.3, Seed: 5})
	b := NewInjector(Schedule{Rate: 0.3, Seed: 5})
	marked := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("elem-%d", i)
		if a.Marked(key) != b.Marked(key) {
			t.Fatalf("marking differs for %s", key)
		}
		if a.Marked(key) {
			marked++
		}
	}
	if marked < 30 || marked > 90 {
		t.Fatalf("rate 0.3 marked %d/200", marked)
	}
	none := NewInjector(Schedule{Rate: 0, Nth: 1})
	all := NewInjector(Schedule{Rate: 1})
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		if none.Marked(key) {
			t.Fatal("rate 0 marked a key")
		}
		if !all.Marked(key) {
			t.Fatal("rate 1 missed a key")
		}
	}
}

func TestInjectorConsumesTimes(t *testing.T) {
	inj := NewInjector(Schedule{Rate: 1, Times: 2, Seed: 1})
	if err := inj.Before("x"); !IsTransient(err) {
		t.Fatalf("first call: %v", err)
	}
	if err := inj.Before("x"); !IsTransient(err) {
		t.Fatalf("second call: %v", err)
	}
	if err := inj.Before("x"); err != nil {
		t.Fatalf("exhausted key still fails: %v", err)
	}
	if inj.Injected() != 2 || inj.Calls() != 3 {
		t.Fatalf("injected=%d calls=%d", inj.Injected(), inj.Calls())
	}
	forever := NewInjector(Schedule{Rate: 1, Times: -1})
	for i := 0; i < 5; i++ {
		if err := forever.Before("y"); !IsTransient(err) {
			t.Fatalf("times=-1 recovered on call %d", i)
		}
	}
}

func TestInjectorNth(t *testing.T) {
	inj := NewInjector(Schedule{Nth: 3})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, inj.Before(fmt.Sprintf("k%d", i)) != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("nth=3 pattern %v", pattern)
		}
	}
}

func TestInjectorPanicMode(t *testing.T) {
	inj := NewInjector(Schedule{Rate: 1, Mode: "panic"})
	defer func() {
		p := recover()
		if p == nil || !strings.Contains(fmt.Sprint(p), "injected panic") {
			t.Fatalf("recover: %v", p)
		}
	}()
	inj.Before("boom")
	t.Fatal("no panic")
}

func TestInjectorHangMode(t *testing.T) {
	inj := NewInjector(Schedule{Rate: 1, Mode: "hang"})
	released := make(chan error, 1)
	go func() { released <- inj.Before("stall") }()
	select {
	case err := <-released:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	inj.Close()
	inj.Close() // idempotent
	select {
	case err := <-released:
		if !IsTransient(err) {
			t.Fatalf("released hang: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release the hang")
	}
}
