package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
	"qfw/internal/pauli"
)

func TestGHZState(t *testing.T) {
	c := circuit.New(3)
	c.H(0).CX(0, 1).CX(1, 2)
	s, _ := RunCircuit(c, 1, rand.New(rand.NewSource(1)))
	want := 1 / math.Sqrt2
	if cmplx.Abs(s.Amp[0]-complex(want, 0)) > 1e-12 {
		t.Fatalf("amp[000] = %v", s.Amp[0])
	}
	if cmplx.Abs(s.Amp[7]-complex(want, 0)) > 1e-12 {
		t.Fatalf("amp[111] = %v", s.Amp[7])
	}
	for i := 1; i < 7; i++ {
		if cmplx.Abs(s.Amp[i]) > 1e-12 {
			t.Fatalf("amp[%d] = %v, want 0", i, s.Amp[i])
		}
	}
}

func TestBellCounts(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CX(0, 1).MeasureAll()
	counts := Simulate(c, 4096, 1, rand.New(rand.NewSource(2)))
	if counts["01"] != 0 || counts["10"] != 0 {
		t.Fatalf("Bell state produced odd-parity outcomes: %v", counts)
	}
	total := counts["00"] + counts["11"]
	if total != 4096 {
		t.Fatalf("shot total %d", total)
	}
	if counts["00"] < 1700 || counts["11"] < 1700 {
		t.Fatalf("Bell counts too skewed: %v", counts)
	}
}

func randomCircuit(n, depth int, rng *rand.Rand) *circuit.Circuit {
	kinds := []circuit.Kind{circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindZ,
		circuit.KindS, circuit.KindT, circuit.KindSX, circuit.KindRX, circuit.KindRY,
		circuit.KindRZ, circuit.KindP, circuit.KindCX, circuit.KindCZ, circuit.KindCRZ,
		circuit.KindCP, circuit.KindSWAP, circuit.KindRZZ, circuit.KindRXX, circuit.KindCCX}
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		k := kinds[rng.Intn(len(kinds))]
		need := k.NumQubits()
		if need > n {
			continue
		}
		qs := rng.Perm(n)[:need]
		g := circuit.Gate{Kind: k, Qubits: qs}
		for j := 0; j < k.NumParams(); j++ {
			g.Params = append(g.Params, circuit.Bound(rng.NormFloat64()*2))
		}
		c.Append(g)
	}
	return c
}

func TestQuickNormPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(3+rng.Intn(4), 30, rng)
		s, _ := RunCircuit(c, 1, rng)
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseRoundTrip(t *testing.T) {
	// Property: running C then C† returns |0...0> (up to global phase).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(3+rng.Intn(3), 25, rng)
		full := c.Copy()
		full.Compose(c.Inverse())
		s, _ := RunCircuit(full, 1, rng)
		return cmplx.Abs(s.Amp[0])-1 > -1e-9 && math.Abs(cmplx.Abs(s.Amp[0])-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTranspileEquivalence(t *testing.T) {
	// Property: transpiling to the basic gate set preserves the final state
	// up to global phase (checked via fidelity of state overlap).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(3+rng.Intn(3), 20, rng)
		s1, _ := RunCircuit(c, 1, rand.New(rand.NewSource(0)))
		s2, _ := RunCircuit(circuit.Transpile(c, circuit.BasicGateSet()), 1, rand.New(rand.NewSource(0)))
		return math.Abs(cmplx.Abs(s1.InnerProduct(s2))-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := randomCircuit(12, 60, rng)
	s1, _ := RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	s4, _ := RunCircuit(c, 4, rand.New(rand.NewSource(0)))
	for i := range s1.Amp {
		if cmplx.Abs(s1.Amp[i]-s4.Amp[i]) > 1e-10 {
			t.Fatalf("parallel mismatch at %d: %v vs %v", i, s1.Amp[i], s4.Amp[i])
		}
	}
}

func TestRZZFastPathMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 4
		prep := randomCircuit(n, 10, rng)
		theta := rng.NormFloat64()
		a, b := rng.Intn(n), 0
		for b = rng.Intn(n); b == a; b = rng.Intn(n) {
		}
		s1, _ := RunCircuit(prep, 1, rand.New(rand.NewSource(0)))
		s2 := s1.Copy()
		s1.ApplyRZZ(a, b, theta)
		s2.Apply2QDense(circuit.Matrix2Q(circuit.KindRZZ, theta), a, b)
		for i := range s1.Amp {
			if cmplx.Abs(s1.Amp[i]-s2.Amp[i]) > 1e-12 {
				t.Fatalf("rzz mismatch at %d", i)
			}
		}
	}
}

func TestApplyUnitaryMatchesGateComposition(t *testing.T) {
	// A dense CX matrix applied via ApplyUnitary equals the native CX kernel.
	rng := rand.New(rand.NewSource(8))
	prep := randomCircuit(5, 15, rng)
	s1, _ := RunCircuit(prep, 1, rand.New(rand.NewSource(0)))
	s2 := s1.Copy()
	s1.ApplyControlled1Q(circuit.Matrix1Q(circuit.KindX, 0), []int{3}, 1)
	s2.ApplyUnitary(circuit.Matrix2Q(circuit.KindCX, 0), []int{3, 1})
	for i := range s1.Amp {
		if cmplx.Abs(s1.Amp[i]-s2.Amp[i]) > 1e-12 {
			t.Fatalf("unitary mismatch at index %d", i)
		}
	}
}

func TestMeasurementCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := circuit.New(2)
	c.H(0).CX(0, 1)
	s, _ := RunCircuit(c, 1, rng)
	out := s.MeasureQubit(0, rng)
	// After measuring qubit 0 of a Bell state, qubit 1 must be perfectly correlated.
	out2 := s.MeasureQubit(1, rng)
	if out != out2 {
		t.Fatalf("Bell correlation broken: %d vs %d", out, out2)
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Fatalf("collapsed state not normalized: %g", s.Norm())
	}
}

func TestResetGate(t *testing.T) {
	c := circuit.New(1)
	c.X(0).Reset(0)
	s, _ := RunCircuit(c, 1, rand.New(rand.NewSource(10)))
	if cmplx.Abs(s.Amp[0]-1) > 1e-12 {
		t.Fatalf("reset failed: %v", s.Amp)
	}
}

func TestMidCircuitMeasureRecordsCbit(t *testing.T) {
	c := circuit.New(2)
	c.X(0).Measure(0, 0).CX(0, 1).Measure(1, 1)
	_, cbits := RunCircuit(c, 1, rand.New(rand.NewSource(11)))
	if cbits[0] != 1 || cbits[1] != 1 {
		t.Fatalf("cbits %v, want [1 1]", cbits)
	}
}

func TestTrotterAgainstExactPropagator(t *testing.T) {
	// exp(-iHt) via dense eigendecomposition vs Trotterized circuit.
	h := pauli.TFIM(4, 1.0, 0.6)
	tEvolve := 0.4
	steps := 60
	c := h.TrotterCircuit(tEvolve, steps)
	// Prepare a nontrivial initial state with some H gates.
	prep := circuit.New(4)
	prep.H(0).H(2)
	full := prep.Copy()
	full.Compose(c)
	got, _ := RunCircuit(full, 1, rand.New(rand.NewSource(12)))

	sPrep, _ := RunCircuit(prep, 1, rand.New(rand.NewSource(12)))
	u := linalg.ExpIH(h.Matrix(), -tEvolve) // exp(-iHt)
	wantAmp := linalg.MatVec(u, sPrep.Amp)
	var fidelity complex128
	for i := range wantAmp {
		fidelity += cmplx.Conj(wantAmp[i]) * got.Amp[i]
	}
	if f := cmplx.Abs(fidelity); f < 0.999 {
		t.Fatalf("Trotter fidelity %g too low", f)
	}
}

func TestExpectationMatchesDense(t *testing.T) {
	h := pauli.TFIM(3, 0.8, 0.3)
	rng := rand.New(rand.NewSource(13))
	c := randomCircuit(3, 20, rng)
	s, _ := RunCircuit(c, 1, rng)
	got := s.ExpectationHamiltonian(h)
	m := h.Matrix()
	hv := linalg.MatVec(m, s.Amp)
	var want complex128
	for i := range hv {
		want += cmplx.Conj(s.Amp[i]) * hv[i]
	}
	if math.Abs(got-real(want)) > 1e-9 {
		t.Fatalf("expectation %g vs dense %g", got, real(want))
	}
}

func TestFormatParseBits(t *testing.T) {
	if FormatBits(5, 4) != "0101" {
		t.Fatalf("FormatBits(5,4) = %s", FormatBits(5, 4))
	}
	for i := 0; i < 16; i++ {
		if ParseBits(FormatBits(i, 4)) != i {
			t.Fatalf("round trip failed for %d", i)
		}
	}
}

func TestSampleCountsDistribution(t *testing.T) {
	c := circuit.New(1)
	c.RY(0, circuit.Bound(2*math.Asin(math.Sqrt(0.25)))) // P(1)=0.25
	s, _ := RunCircuit(c, 1, rand.New(rand.NewSource(14)))
	counts := s.SampleCounts(20000, rand.New(rand.NewSource(15)))
	frac := float64(counts["1"]) / 20000
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("sampled P(1)=%g, want 0.25", frac)
	}
}

func TestNewStateBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 qubits")
		}
	}()
	NewState(0)
}
