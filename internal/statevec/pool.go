package statevec

import (
	"runtime"
	"sync"
)

// Persistent kernel worker pool: gate kernels used to spawn fresh goroutines
// per gate, which at QAOA/TFIM gate counts means tens of thousands of
// short-lived goroutines per circuit. The pool starts GOMAXPROCS long-lived
// workers once (lazily) and feeds them contiguous index ranges over a
// channel; the submitting goroutine executes the final chunk itself, so a
// serial-sized kernel never pays a handoff.

type kernelTask struct {
	start, end int
	body       func(start, end int)
	wg         *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan kernelTask
	poolSize  int
)

func startKernelPool() {
	poolSize = runtime.GOMAXPROCS(0)
	poolTasks = make(chan kernelTask, 4*poolSize)
	for i := 0; i < poolSize; i++ {
		go func() {
			for t := range poolTasks {
				t.body(t.start, t.end)
				t.wg.Done()
			}
		}()
	}
}

// parallelThreshold is the amplitude count below which kernels run serially:
// chunk handoff costs more than the loop itself on small states.
const parallelThreshold = 1 << 12

// parallelFor splits [0, n) into contiguous chunks across the state's
// workers using the shared persistent pool. Kernels must be leaf work: a
// body must never submit pool work of its own.
func (s *State) parallelFor(n int, body func(start, end int)) {
	ParallelFor(s.Workers, n, parallelThreshold, body)
}

// ParallelFor splits [0, n) into contiguous chunks across the shared
// persistent kernel pool, running serially when workers <= 1 or n is below
// minParallel (callers pick the threshold: amplitude kernels use the
// amplitude-count default; the MPS engine parallelizes over bond rows,
// whose per-element cost is orders of magnitude higher). Bodies must be
// leaf work — never submit pool work of their own.
func ParallelFor(workers, n, minParallel int, body func(start, end int)) {
	w := workers
	if w <= 1 || n < minParallel || n < 2 {
		body(0, n)
		return
	}
	poolOnce.Do(startKernelPool)
	if w > poolSize {
		w = poolSize
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end >= n {
			end = n
			body(start, end) // run the last chunk on the caller
			break
		}
		wg.Add(1)
		poolTasks <- kernelTask{start: start, end: end, body: body, wg: &wg}
	}
	wg.Wait()
}

// Amplitude-buffer arena: batched execution allocates (and promptly
// discards) a 2^n complex128 vector per batch element, plus probability and
// alias tables per sampling call. The arenas recycle them across elements.
// Returning buffers is optional (sync.Pool tolerates leaks); Release and the
// sampler return them on the hot paths.

var (
	ampArena [31]sync.Pool
	f64Arena [31]sync.Pool
	intArena [31]sync.Pool
)

// getAmpBuf returns an uninitialized 2^n amplitude buffer. Large buffers
// are huge-page-backed where the platform supports it (hugepool_linux.go);
// those recycle through the huge free list, never through sync.Pool.
func getAmpBuf(n int) []complex128 {
	if v := ampArena[n].Get(); v != nil {
		return v.([]complex128)
	}
	if buf := hugeGetAmp(n); buf != nil {
		return buf
	}
	return make([]complex128, 1<<uint(n))
}

func putAmpBuf(n int, buf []complex128) {
	if len(buf) != 1<<uint(n) {
		return
	}
	if hugePutAmp(buf) {
		return
	}
	ampArena[n].Put(buf) //nolint:staticcheck // slice header allocation is amortized
}

func getF64Buf(n int) []float64 {
	if v := f64Arena[n].Get(); v != nil {
		return v.([]float64)
	}
	if buf := hugeGetF64(n); buf != nil {
		return buf
	}
	return make([]float64, 1<<uint(n))
}

func putF64Buf(n int, buf []float64) {
	if len(buf) != 1<<uint(n) {
		return
	}
	if hugePutF64(buf) {
		return
	}
	f64Arena[n].Put(buf) //nolint:staticcheck
}

func getIntBuf(n int) []int {
	if v := intArena[n].Get(); v != nil {
		return v.([]int)
	}
	return make([]int, 1<<uint(n))
}

func putIntBuf(n int, buf []int) {
	if len(buf) == 1<<uint(n) {
		intArena[n].Put(buf) //nolint:staticcheck
	}
}

// Release returns the state's amplitude buffer to the arena. The state is
// unusable afterwards; callers that hand the state out must not release it.
// Releasing is optional — unreleased buffers are garbage collected normally.
func (s *State) Release() {
	if s.Amp == nil {
		return
	}
	putAmpBuf(s.N, s.Amp)
	s.Amp = nil
}
