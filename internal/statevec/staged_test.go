package statevec

import (
	"math/rand"
	"testing"

	"qfw/internal/circuit"
)

// TestStagedEquivalenceRandom is the acceptance test of the cache-blocked
// engine: staged execution agrees amplitude-for-amplitude to 1e-12 with the
// per-op fused path on random circuits from the full gate set, across tile
// sizes small enough to force many stages and remap sweeps.
func TestStagedEquivalenceRandom(t *testing.T) {
	// tileBits >= 3 so three-qubit gates (CCX, CSWAP) fit in a tile; smaller
	// tiles are a planner refusal, pinned in the circuit package tests.
	for _, tileBits := range []int{3, 4, 6} {
		for trial := 0; trial < 12; trial++ {
			rng := rand.New(rand.NewSource(int64(100*tileBits + trial)))
			n := tileBits + 1 + rng.Intn(4)
			if n > 10 {
				n = 10
			}
			c := randomFullGateSetCircuit(n, 50+rng.Intn(70), rng)
			plan := circuit.PlanFusion(c)
			sched, err := circuit.PlanTileStages(plan, c, tileBits)
			if err != nil {
				t.Fatalf("tileBits=%d trial=%d n=%d: planning failed: %v", tileBits, trial, n, err)
			}
			ref, _ := RunProgram(plan.Compile(c), 1, rand.New(rand.NewSource(7)))
			got, _, ok := RunStaged(c, plan, sched, 1, rand.New(rand.NewSource(7)))
			if !ok {
				t.Fatalf("tileBits=%d trial=%d n=%d: staged path refused a measurement-free circuit", tileBits, trial, n)
			}
			if d := maxAmpDiff(ref, got); d > 1e-12 {
				t.Fatalf("tileBits=%d trial=%d n=%d (%d stages): staged/fused amplitude diff %g > 1e-12",
					tileBits, trial, n, len(sched.Stages), d)
			}
			got.Release()
			ref.Release()
		}
	}
}

// TestStagedEquivalenceDeepDiagonal pins the combined-diagonal tile path —
// in-tile tables, per-tile scalars, and cross tables — on a deep QAOA-style
// circuit whose couplings deliberately straddle the tile boundary.
func TestStagedEquivalenceDeepDiagonal(t *testing.T) {
	const n, tileBits = 12, 5
	rng := rand.New(rand.NewSource(17))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for layer := 0; layer < 4; layer++ {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b += 1 + rng.Intn(3) {
				c.RZZ(a, b, circuit.Bound(rng.Float64()))
			}
		}
		for q := 0; q < n; q++ {
			c.RZ(q, circuit.Bound(rng.Float64()))
			c.RX(q, circuit.Bound(rng.Float64()))
		}
	}
	plan := circuit.PlanFusion(c)
	sched, err := circuit.PlanTileStages(plan, c, tileBits)
	if err != nil {
		t.Fatalf("planning failed: %v", err)
	}
	ref, _ := RunProgram(plan.Compile(c), 1, rand.New(rand.NewSource(7)))
	got, _, ok := RunStaged(c, plan, sched, 1, rand.New(rand.NewSource(7)))
	if !ok {
		t.Fatal("staged path refused the circuit")
	}
	if d := maxAmpDiff(ref, got); d > 1e-12 {
		t.Fatalf("deep diagonal staged diff %g > 1e-12 (%d stages)", d, len(sched.Stages))
	}
	got.Release()
	ref.Release()
}

// TestStagedWorkersMatchSerial runs the staged engine chunked and checks
// agreement with its serial run (tile loop, remap sweeps, and final
// interleave all go through the worker pool).
func TestStagedWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := randomFullGateSetCircuit(13, 140, rng)
	plan := circuit.PlanFusion(c)
	sched, err := circuit.PlanTileStages(plan, c, 6)
	if err != nil {
		t.Fatalf("planning failed: %v", err)
	}
	serial, _, ok1 := RunStaged(c, plan, sched, 1, rand.New(rand.NewSource(1)))
	parallel, _, ok2 := RunStaged(c, plan, sched, 8, rand.New(rand.NewSource(1)))
	if !ok1 || !ok2 {
		t.Fatal("staged path refused the circuit")
	}
	if d := maxAmpDiff(serial, parallel); d > 1e-12 {
		t.Fatalf("chunked staged execution diverges from serial: %g", d)
	}
	serial.Release()
	parallel.Release()
}

// TestStagedRefusesMidCircuitMeasurement: collapse needs the per-op path;
// the staged engine must refuse (not mis-execute) and RunFusedStaged must
// fall back transparently.
func TestStagedRefusesMidCircuitMeasurement(t *testing.T) {
	c := circuit.New(4)
	c.H(0).CX(0, 1)
	c.Measure(1, 1)
	c.CX(1, 2).H(3)
	plan := circuit.PlanFusion(c)
	sched, err := circuit.PlanTileStages(plan, c, 2)
	if err != nil {
		t.Fatalf("planning failed: %v", err)
	}
	if _, _, ok := RunStaged(c, plan, sched, 1, rand.New(rand.NewSource(1))); ok {
		t.Fatal("staged path accepted a mid-circuit measurement")
	}
	// The wrapper falls back to per-op execution and still collapses.
	s, cbits := RunFusedStaged(c, plan, sched, 1, rand.New(rand.NewSource(1)))
	if s.N != 4 || len(cbits) != 4 {
		t.Fatalf("fallback execution malformed: n=%d cbits=%d", s.N, len(cbits))
	}
	s.Release()
}

// TestRunFusedStagedNilSched: a nil schedule (the cache's untileable
// marker) runs the per-op path and matches it exactly.
func TestRunFusedStagedNilSched(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := randomFullGateSetCircuit(6, 60, rng)
	plan := circuit.PlanFusion(c)
	ref, _ := RunProgram(plan.Compile(c), 1, rand.New(rand.NewSource(2)))
	got, _ := RunFusedStaged(c, plan, nil, 1, rand.New(rand.NewSource(2)))
	if d := maxAmpDiff(ref, got); d > 1e-12 {
		t.Fatalf("nil-sched path diverges from per-op: %g", d)
	}
	ref.Release()
	got.Release()
}

// TestCompileSeqMatchesPlan pins the staged compiler contract: one op per
// planned segment, so stage op indices address segments directly, and the
// sequential program executes identically to the paired one.
func TestCompileSeqMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := randomFullGateSetCircuit(7, 80, rng)
	plan := circuit.PlanFusion(c)
	seq := plan.CompileSeq(c)
	ref, _ := RunProgram(plan.Compile(c), 1, rand.New(rand.NewSource(3)))
	got, _ := RunProgram(seq, 1, rand.New(rand.NewSource(3)))
	if d := maxAmpDiff(ref, got); d > 1e-12 {
		t.Fatalf("CompileSeq program diverges from Compile: %g", d)
	}
	ref.Release()
	got.Release()
}

// TestTuningEnvOverride checks the QFW_TUNE parser without touching the
// process-wide tuning singleton.
func TestTuningEnvOverride(t *testing.T) {
	if tun, ok := parseTuneEnv("tile=11,workers=3,min=16"); !ok ||
		tun.TileBits != 11 || tun.Workers != 3 || tun.MinQubits != 16 {
		t.Fatalf("explicit override misparsed: %+v ok=%v", tun, ok)
	}
	if tun, ok := parseTuneEnv("off"); !ok || tun.MinQubits != tuneDisabled {
		t.Fatalf("off override misparsed: %+v ok=%v", tun, ok)
	}
	if tun, ok := parseTuneEnv("deterministic"); !ok || tun.TileBits != defaultTileBits {
		t.Fatalf("deterministic override misparsed: %+v ok=%v", tun, ok)
	}
	if _, ok := parseTuneEnv("garbage"); ok {
		t.Fatal("malformed override should fall through to normal resolution")
	}
	// Under `go test` the resolved tuning must be the deterministic default.
	if tun := CurrentTuning(); tun.Source != "test" && tun.Source != "env" && tun.Source != "env-off" {
		t.Fatalf("tuning under go test should be deterministic, got source %q", tun.Source)
	}
}
