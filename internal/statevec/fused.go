package statevec

import (
	"fmt"
	"math/rand"

	"qfw/internal/circuit"
)

// ApplyFusedOp dispatches one fused operation onto the state. Passthrough
// ops (measurement, reset, gates too wide to fuse) fall back to ApplyGate.
func (s *State) ApplyFusedOp(op *circuit.FusedOp, rng *rand.Rand, cbits []int) {
	switch op.Kind {
	case circuit.FusedGate:
		s.ApplyGate(*op.Gate, rng, cbits)
	case circuit.FusedDense1Q:
		s.Apply1Q(op.M1, op.Qubits[0])
	case circuit.FusedDiag1Q:
		s.ApplyDiag1Q(op.M1[0][0], op.M1[1][1], op.Qubits[0])
	case circuit.FusedPerm1Q:
		s.ApplyPerm1Q(op.M1[0][1], op.M1[1][0], op.Qubits[0])
	case circuit.FusedHadamard:
		s.ApplyH(op.Qubits[0])
	case circuit.FusedReal1Q:
		s.ApplyReal1Q(real(op.M1[0][0]), real(op.M1[0][1]), real(op.M1[1][0]), real(op.M1[1][1]), op.Qubits[0])
	case circuit.FusedRXLike:
		s.ApplyRXLike(real(op.M1[0][0]), imag(op.M1[0][1]), imag(op.M1[1][0]), real(op.M1[1][1]), op.Qubits[0])
	case circuit.FusedRXPair:
		s.ApplyRXPair(op.RXA, op.RXB, op.Qubits[0], op.Qubits[1])
	case circuit.FusedDense2Q:
		s.Apply2QDense(op.M, op.Qubits[0], op.Qubits[1])
	case circuit.FusedPerm2Q:
		s.ApplyPerm2Q(op.Perm, op.Phase, op.Qubits[0], op.Qubits[1])
	case circuit.FusedDenseKQ:
		s.ApplyUnitary(op.M, op.Qubits)
	case circuit.FusedDiagonal:
		s.ApplyDiagTerms(op.D1, op.D2)
	default:
		panic(fmt.Sprintf("statevec: unknown fused op kind %d", op.Kind))
	}
}

// RunProgram executes a compiled fused program on a fresh |0..0> state.
func RunProgram(prog *circuit.FusedProgram, workers int, rng *rand.Rand) (*State, []int) {
	s := NewState(prog.NQubits)
	if workers > 1 {
		s.Workers = workers
	}
	cbits := make([]int, prog.NQubits)
	for i := range prog.Ops {
		s.ApplyFusedOp(&prog.Ops[i], rng, cbits)
	}
	return s, cbits
}

// RunFused executes a bound circuit through the gate-fusion engine. A nil
// plan is built on the spot (planning is O(gates), negligible next to the
// kernels); batch callers pass the plan cached per ansatz so the whole batch
// fuses once. The plan must have been built from a circuit with the same
// structure as c (e.g. the unbound ansatz c was bound from).
//
// Above the tuner's qubit threshold the circuit runs on the cache-blocked
// staged engine (blocked.go): the fused program partitioned into
// tile-resident stages, amplitudes touched once per stage instead of once
// per op. The per-op path remains the fallback for programs the staged
// engine refuses (mid-circuit measurement) and for small states.
func RunFused(c *circuit.Circuit, plan *circuit.FusionPlan, workers int, rng *rand.Rand) (*State, []int) {
	if !c.IsBound() {
		panic("statevec: circuit has unbound parameters")
	}
	if plan == nil {
		plan = circuit.PlanFusion(c)
	}
	if tun := CurrentTuning(); c.NQubits >= tun.MinQubits {
		if sched, err := circuit.PlanTileStages(plan, c, tun.TileBitsFor(c.NQubits)); err == nil {
			if s, cbits, ok := RunStaged(c, plan, sched, workers, rng); ok {
				return s, cbits
			}
		}
	}
	return RunProgram(plan.Compile(c), workers, rng)
}

// RunFusedStaged is the batch-path entry of the staged engine: sched is the
// tile schedule cached beside the fusion plan (core.ParseCache.GetStaged),
// so a batch of bindings compiles its stages once. A nil sched — the cache's
// way of saying the structure is untileable or below the tuner threshold —
// runs the per-op fused path directly.
func RunFusedStaged(c *circuit.Circuit, plan *circuit.FusionPlan, sched *circuit.DistSchedule, workers int, rng *rand.Rand) (*State, []int) {
	if !c.IsBound() {
		panic("statevec: circuit has unbound parameters")
	}
	if plan == nil {
		plan = circuit.PlanFusion(c)
	}
	if sched != nil {
		if s, cbits, ok := RunStaged(c, plan, sched, workers, rng); ok {
			return s, cbits
		}
	}
	return RunProgram(plan.Compile(c), workers, rng)
}
