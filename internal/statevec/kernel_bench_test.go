package statevec

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
)

// Kernel microbenchmarks comparing the SoA tile kernels against the AoS
// per-op kernels they replace on the staged path, plus the end-to-end stage
// sweep. Run with:
//
//	go test ./internal/statevec/ -bench Kernel -benchmem -run xxx
//
// The SoA benches operate on a single L2-resident tile (2^13 amplitudes,
// 128 KiB) — the regime the blocked executor keeps them in.

const benchTileBits = 13

func benchSoABufs(b *testing.B) (re, im []float64) {
	b.Helper()
	n := 1 << benchTileBits
	re = make([]float64, n)
	im = make([]float64, n)
	rng := rand.New(rand.NewSource(5))
	for i := range re {
		re[i] = rng.Float64()
		im[i] = rng.Float64()
	}
	return re, im
}

func benchState(b *testing.B, n int) *State {
	b.Helper()
	s := NewState(n)
	rng := rand.New(rand.NewSource(5))
	for i := range s.Amp {
		s.Amp[i] = complex(rng.Float64(), rng.Float64())
	}
	return s
}

var benchM1 = [2][2]complex128{
	{complex(0.8, 0.1), complex(0.2, -0.55)},
	{complex(-0.2, -0.55), complex(0.8, -0.1)},
}

func BenchmarkKernel1QDenseSoA(b *testing.B) {
	re, im := benchSoABufs(b)
	b.SetBytes(int64(16 << benchTileBits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		soa1Q(re, im, benchM1, 1<<6)
	}
}

func BenchmarkKernel1QDenseAoS(b *testing.B) {
	s := benchState(b, benchTileBits)
	defer s.Release()
	b.SetBytes(int64(16 << benchTileBits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply1Q(benchM1, 6)
	}
}

func BenchmarkKernel2QBlockSoA(b *testing.B) {
	re, im := benchSoABufs(b)
	m := circuit.Matrix2Q(circuit.KindRXX, 0.37)
	b.SetBytes(int64(16 << benchTileBits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		soa2QDense(re, im, m, 1<<9, 1<<2)
	}
}

func BenchmarkKernel2QBlockAoS(b *testing.B) {
	s := benchState(b, benchTileBits)
	defer s.Release()
	m := circuit.Matrix2Q(circuit.KindRXX, 0.37)
	b.SetBytes(int64(16 << benchTileBits))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply2QDense(m, 9, 2)
	}
}

// BenchmarkKernelDiagLayer measures one combined diagonal layer (fields on
// every qubit plus a coupling ring) applied tile-at-a-time from the split
// low/high/cross tables versus the per-op diagonal evaluator.
func benchDiagTerms(n int) ([]circuit.DiagTerm1, []circuit.DiagTerm2) {
	rng := rand.New(rand.NewSource(11))
	d1 := make([]circuit.DiagTerm1, n)
	for q := 0; q < n; q++ {
		ph := complex(0, rng.Float64())
		d1[q] = circuit.DiagTerm1{Q: q, D: [2]complex128{1, cmplx.Exp(ph)}}
	}
	d2 := make([]circuit.DiagTerm2, n)
	for q := 0; q < n; q++ {
		ph := cmplx.Exp(complex(0, rng.Float64()))
		d2[q] = circuit.DiagTerm2{A: q, B: (q + 1) % n, D: [4]complex128{1, ph, ph, 1}}
	}
	return d1, d2
}

func BenchmarkKernelDiagLayerSoA(b *testing.B) {
	const n = 18
	re := make([]float64, 1<<n)
	im := make([]float64, 1<<n)
	for i := range re {
		re[i] = 1
	}
	d1, d2 := benchDiagTerms(n)
	layout := make([]int, n)
	for q := range layout {
		layout[q] = q
	}
	td := buildTileDiag(d1, d2, layout, benchTileBits, n)
	defer td.release()
	tiles := 1 << (n - benchTileBits)
	tileSize := 1 << benchTileBits
	var acts [][2][]float64
	b.SetBytes(int64(16 << n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < tiles; t++ {
			off := t * tileSize
			acts = td.apply(re[off:off+tileSize], im[off:off+tileSize], t, acts)
		}
	}
}

func BenchmarkKernelDiagLayerAoS(b *testing.B) {
	const n = 18
	s := benchState(b, n)
	defer s.Release()
	d1, d2 := benchDiagTerms(n)
	b.SetBytes(int64(16 << n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ApplyDiagTerms(d1, d2)
	}
}

// BenchmarkStageSweep runs a full deep-circuit execution through the staged
// engine versus the per-op fused engine, single worker — the end-to-end
// number behind the ablation's blocked-vs-fused series.
func benchDeepCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for layer := 0; layer < 6; layer++ {
		for q := 0; q < n; q++ {
			c.RZZ(q, (q+1)%n, circuit.Bound(0.3+0.01*float64(layer)))
		}
		for q := 0; q < n; q++ {
			c.RX(q, circuit.Bound(0.7))
		}
	}
	return c
}

func BenchmarkStageSweepBlocked(b *testing.B) {
	c := benchDeepCircuit(18)
	plan := circuit.PlanFusion(c)
	sched, err := circuit.PlanTileStages(plan, c, benchTileBits)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, ok := RunStaged(c, plan, sched, 1, rng)
		if !ok {
			b.Fatal("staged path refused")
		}
		s.Release()
	}
}

func BenchmarkStageSweepFused(b *testing.B) {
	c := benchDeepCircuit(18)
	plan := circuit.PlanFusion(c)
	prog := plan.Compile(c)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := RunProgram(prog, 1, rng)
		s.Release()
	}
}
