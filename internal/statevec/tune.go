package statevec

// Adaptive tuning of the cache-blocked staged engine: tile size (log2
// amplitudes per tile) and worker count are machine properties — they track
// L2 capacity and core count, not the workload — so they are measured once
// per machine by a short microbenchmark and persisted to the user cache
// directory. Resolution order:
//
//  1. QFW_TUNE environment override:
//     "off"            — disable the staged path entirely,
//     "deterministic"  — fixed defaults, no disk, no benchmark (CI mode),
//     "tile=T,workers=W,min=M" — explicit values (any subset).
//  2. Under `go test`: deterministic defaults, so unit tests never depend
//     on machine speed or write outside the build sandbox.
//  3. The on-disk cache (os.UserCacheDir()/qfw/tune.json), if its machine
//     signature matches.
//  4. A one-shot microbenchmark: a deep staged workload timed per candidate
//     tile size; the winner is persisted best-effort.
//
// Inspect with TuneCachePath(); delete the file to re-measure.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"qfw/internal/circuit"
)

// Tuning is the staged engine's machine-dependent configuration.
type Tuning struct {
	// TileBits is log2 amplitudes per cache tile. A tile occupies
	// 2^TileBits * 16 bytes across the split re/im buffers; the default
	// (14, 256 KiB) keeps two tiles plus the diagonal tables resident in a
	// modern 1-2 MiB L2. Use TileBitsFor for a concrete state size — large
	// states grow the tile beyond the base.
	TileBits int `json:"tile_bits"`
	// Workers is the recommended kernel worker count for callers that do
	// not pin their own.
	Workers int `json:"workers"`
	// MinQubits gates the staged path: below it the whole statevector is
	// cache-resident anyway and the per-op fused path wins on overhead.
	MinQubits int `json:"min_qubits"`
	// Source records where the tuning came from: "env", "env-off", "test",
	// "disk", "bench", or "default".
	Source string `json:"source"`
}

const (
	defaultTileBits  = 14
	defaultMinQubits = 18
	tuneDisabled     = 1 << 30
)

var (
	tuneOnce sync.Once
	tuneVal  Tuning
)

// CurrentTuning resolves (once per process) and returns the staged-engine
// tuning.
func CurrentTuning() Tuning {
	tuneOnce.Do(func() { tuneVal = resolveTuning() })
	return tuneVal
}

// TileBitsFor returns the tile size for an n-qubit state. The base TileBits
// is measured at a moderate state size; for larger states the tile grows so
// the tile count stays at most 2^9 — every tile costs one pass of scattered
// gather chunks at a remap, and on a multi-hundred-MB state each chunk is a
// TLB walk, so fewer, longer chunks win. Growth is capped two doublings
// above the base and at 16: a 2^17 tile is 2 MiB across the split re/im
// buffers, which evicts the whole L2 on every contemporary part (measured
// regression on deep workloads at n=26), so growth never passes 16 even
// when the base would allow it.
func (t Tuning) TileBitsFor(n int) int {
	tb := t.TileBits
	if scaled := n - 9; scaled > tb {
		lim := t.TileBits + 2
		if lim > 16 {
			lim = 16
			if t.TileBits > lim {
				lim = t.TileBits
			}
		}
		tb = scaled
		if tb > lim {
			tb = lim
		}
	}
	if tb > n {
		tb = n
	}
	return tb
}

func deterministicTuning(source string) Tuning {
	return Tuning{
		TileBits:  defaultTileBits,
		Workers:   runtime.GOMAXPROCS(0),
		MinQubits: defaultMinQubits,
		Source:    source,
	}
}

func resolveTuning() Tuning {
	if env := strings.TrimSpace(os.Getenv("QFW_TUNE")); env != "" {
		if t, ok := parseTuneEnv(env); ok {
			return t
		}
	}
	if underGoTest() {
		return deterministicTuning("test")
	}
	if t, ok := loadTuning(); ok {
		return t
	}
	t := benchTuning()
	saveTuning(t)
	return t
}

// parseTuneEnv interprets the QFW_TUNE override. Malformed values fall
// through to normal resolution rather than failing the run.
func parseTuneEnv(env string) (Tuning, bool) {
	switch strings.ToLower(env) {
	case "off":
		t := deterministicTuning("env-off")
		t.MinQubits = tuneDisabled
		return t, true
	case "deterministic":
		return deterministicTuning("env"), true
	}
	t := deterministicTuning("env")
	any := false
	for _, part := range strings.Split(env, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			continue
		}
		iv, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			continue
		}
		switch strings.ToLower(strings.TrimSpace(k)) {
		case "tile":
			if iv >= 4 && iv <= 24 {
				t.TileBits = iv
				any = true
			}
		case "workers":
			if iv >= 1 {
				t.Workers = iv
				any = true
			}
		case "min":
			if iv >= 1 {
				t.MinQubits = iv
				any = true
			}
		}
	}
	return t, any
}

// underGoTest detects the `go test` harness: the testing package registers
// its flags at init, and test binaries carry the .test suffix.
func underGoTest() bool {
	if flag.Lookup("test.v") != nil {
		return true
	}
	exe := os.Args[0]
	return strings.HasSuffix(exe, ".test") || strings.HasSuffix(exe, ".test.exe")
}

// machineSignature keys the disk cache: a tuning measured on one
// core-count/arch combination is not transferable.
func machineSignature() string {
	return fmt.Sprintf("%s-%s-cpu%d-v2", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

type tuneFile struct {
	Signature string `json:"signature"`
	Tuning    Tuning `json:"tuning"`
}

// TuneCachePath returns the on-disk location of the persisted tuning.
func TuneCachePath() (string, error) {
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "qfw", "tune.json"), nil
}

func loadTuning() (Tuning, bool) {
	path, err := TuneCachePath()
	if err != nil {
		return Tuning{}, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Tuning{}, false
	}
	var tf tuneFile
	if json.Unmarshal(data, &tf) != nil || tf.Signature != machineSignature() {
		return Tuning{}, false
	}
	t := tf.Tuning
	if t.TileBits < 4 || t.TileBits > 24 || t.Workers < 1 || t.MinQubits < 1 {
		return Tuning{}, false
	}
	t.Source = "disk"
	return t, true
}

// saveTuning persists best-effort: an unwritable cache dir never fails a run.
func saveTuning(t Tuning) {
	path, err := TuneCachePath()
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(tuneFile{Signature: machineSignature(), Tuning: t}, "", "  ")
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// tuneWorkload builds the microbenchmark circuit: a deep TFIM-style layer
// stack (diagonal coupling layer + RX layer) — the access pattern the
// staged engine exists for.
func tuneWorkload(n, depth int) *circuit.Circuit {
	c := circuit.New(n)
	for d := 0; d < depth; d++ {
		for q := 0; q < n; q++ {
			c.RZZ(q, (q+1)%n, circuit.Bound(0.3))
		}
		for q := 0; q < n; q++ {
			c.RX(q, circuit.Bound(0.7))
		}
	}
	return c
}

// benchTuning times the staged engine per candidate tile size on a
// medium-deep workload and keeps the fastest. One-shot per machine (a few
// seconds); the result is persisted by the caller.
//
// The probe size must put the state in the regime the tile size actually
// matters for: at 2^20 amplitudes the whole state is L3-resident on server
// parts and tiny tiles win by a hair, but that choice is wrong once the
// state spills to DRAM and the inter-stage gather turns TLB-bound. 2^22
// (64 MiB interleaved) is past that knee while keeping the probe short.
// The first run is a discarded warmup: a cold heap pays first-touch page
// faults that would otherwise be charged to whichever candidate runs first.
func benchTuning() Tuning {
	t := deterministicTuning("bench")
	const n, depth = 22, 4
	c := tuneWorkload(n, depth)
	plan := circuit.PlanFusion(c)
	best := time.Duration(1<<62 - 1)
	warm := false
	for _, tb := range []int{12, 13, 14, 15, 16} {
		sched, err := circuit.PlanTileStages(plan, c, tb)
		if err != nil {
			continue
		}
		if !warm {
			if s, _, ok := RunStaged(c, plan, sched, 1, rand.New(rand.NewSource(1))); ok {
				s.Release()
			}
			warm = true
		}
		var elapsed time.Duration
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			s, _, ok := RunStaged(c, plan, sched, 1, rand.New(rand.NewSource(1)))
			d := time.Since(start)
			if !ok {
				elapsed = best
				break
			}
			s.Release()
			if rep == 0 || d < elapsed {
				elapsed = d
			}
		}
		if elapsed < best {
			best = elapsed
			t.TileBits = tb
		}
	}
	return t
}
