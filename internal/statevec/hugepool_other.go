//go:build !linux

package statevec

// Huge-page buffer backing is Linux-only (see hugepool_linux.go); elsewhere
// the arena allocates from the Go heap.

func hugeGetF64(n int) []float64       { return nil }
func hugePutF64(buf []float64) bool    { return false }
func hugeGetAmp(n int) []complex128    { return nil }
func hugePutAmp(buf []complex128) bool { return false }
