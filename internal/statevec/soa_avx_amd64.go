//go:build amd64

package statevec

import "os"

// AVX2+FMA tile kernels. The gc compiler emits scalar FP code for the SoA
// loops in soa.go, which leaves the staged executor ALU-bound: a deep
// QAOA/TFIM sweep spends most of its time in 6-flop/amplitude butterflies.
// These hand-written kernels process four amplitudes per instruction and are
// selected at runtime when the CPU reports AVX2+FMA (and the OS enables YMM
// state); everything falls back to the portable Go loops otherwise, or when
// QFW_SIMD=off.
//
// Layout contract: callers pass tile sub-slices whose lengths are powers of
// two, so a length >= 4 is always a multiple of 4 and the kernels need no
// scalar tail. Strided kernels additionally require the block length (the
// target bit's value) to be >= 4 for aligned 4-lane groups; bits 0 and 1 go
// through the pair-shuffle kernels that permute partners inside a YMM
// register instead.

var useAVX = os.Getenv("QFW_SIMD") != "off" && detectAVX2()

// detectAVX2 reports AVX2+FMA with OS-enabled YMM state: CPUID leaf 1 ECX
// must show OSXSAVE+AVX+FMA, XCR0 must enable XMM+YMM saving, and leaf 7
// EBX must show AVX2.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	_, _, c1, _ := cpuidex(1, 0)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidex(7, 0)
	return b7&(1<<5) != 0
}

func cpuidex(leaf, sub uint32) (ax, bx, cx, dx uint32)

func xgetbv0() (lo, hi uint32)

// rxStrideAVX applies [[c0, i*v0], [i*v1, c1]] across the whole tile:
// for every block pair (low half at base, high half at base+blk),
// r0' = c0*r0 - v0*i1, i0' = c0*i0 + v0*r1, r1' = c1*r1 - v1*i0,
// i1' = c1*i1 + v1*r0. blk must be a multiple of 4, total a multiple
// of 2*blk.
//
//go:noescape
func rxStrideAVX(re, im *float64, total, blk int, c0, v0, v1, c1 float64)

// hStrideAVX applies the Hadamard butterfly r0' = inv*(r0+r1),
// r1' = inv*(r0-r1) (same on im) across the tile.
//
//go:noescape
func hStrideAVX(re, im *float64, total, blk int, inv float64)

// u1StrideAVX applies a generic complex 2x2 across the tile.
// m = [m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i].
//
//go:noescape
func u1StrideAVX(re, im *float64, total, blk int, m *[8]float64)

// diag1StrideAVX multiplies low halves by d0 and high halves by d1.
// d = [d0r, d0i, d1r, d1i].
//
//go:noescape
func diag1StrideAVX(re, im *float64, total, blk int, d *[4]float64)

// u1PairAAVX applies a 2x2 on bit 0: partners are adjacent lanes
// (VSHUFPD). coef = Ar[4], Ai[4], Br[4], Bi[4] lane vectors encoding the
// per-lane diagonal (A) and off-diagonal (B) matrix entries:
// r' = Ar*r - Ai*i + Br*P(r) - Bi*P(i), i' = Ar*i + Ai*r + Br*P(i) + Bi*P(r)
// with P the partner permutation. n must be a multiple of 4.
//
//go:noescape
func u1PairAAVX(re, im *float64, n int, coef *[16]float64)

// u1PairBAVX is u1PairAAVX for bit 1: partners are the opposite 128-bit
// half (VPERM2F128).
//
//go:noescape
func u1PairBAVX(re, im *float64, n int, coef *[16]float64)

// cmulVecAVX multiplies (re, im) elementwise by the complex table (fr, fi):
// r' = r*fr - i*fi, i' = r*fi + i*fr. n must be a multiple of 4.
//
//go:noescape
func cmulVecAVX(re, im, fr, fi *float64, n int)

// cmulScalarAVX multiplies (re, im) by the complex scalar (sr, si).
// n must be a multiple of 4.
//
//go:noescape
func cmulScalarAVX(re, im *float64, n int, sr, si float64)

// pairCoef builds the u1Pair lane-coefficient vectors for a 2x2
// [[m00, m01], [m10, m11]] on bit value blk (1 or 2): lanes in role 0
// (bit clear) carry A=m00, B=m01; lanes in role 1 carry A=m11, B=m10.
func pairCoef(coef *[16]float64, blk int, m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i float64) {
	for l := 0; l < 4; l++ {
		if l&blk == 0 {
			coef[l] = m00r
			coef[4+l] = m00i
			coef[8+l] = m01r
			coef[12+l] = m01i
		} else {
			coef[l] = m11r
			coef[4+l] = m11i
			coef[8+l] = m10r
			coef[12+l] = m10i
		}
	}
}

// soa1QAVX dispatches a generic complex 2x2 to the AVX kernels. Returns
// false when the geometry is out of range (tiny tiles) and the caller must
// run the scalar loop.
func soa1QAVX(re, im []float64, m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i float64, blk int) bool {
	if len(re) < 4 {
		return false
	}
	if blk >= 4 {
		m := [8]float64{m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i}
		u1StrideAVX(&re[0], &im[0], len(re), blk, &m)
		return true
	}
	var coef [16]float64
	pairCoef(&coef, blk, m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i)
	if blk == 1 {
		u1PairAAVX(&re[0], &im[0], len(re), &coef)
	} else {
		u1PairBAVX(&re[0], &im[0], len(re), &coef)
	}
	return true
}
