// AVX2+FMA kernels for the SoA tile layout. See soa_avx_amd64.go for the
// per-function contracts. All kernels are leaf NOSPLIT functions over
// caller-validated lengths (powers of two, multiples of 4), so there are no
// scalar tails. Go assembly operand order: VFMADD231PD Y3, Y2, Y1 computes
// Y1 = Y2*Y3 + Y1.

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (ax, bx, cx, dx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, ax+8(FP)
	MOVL BX, bx+12(FP)
	MOVL CX, cx+16(FP)
	MOVL DX, dx+20(FP)
	RET

// func xgetbv0() (lo, hi uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET

// func rxStrideAVX(re, im *float64, total, blk int, c0, v0, v1, c1 float64)
TEXT ·rxStrideAVX(SB), NOSPLIT, $0-64
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ total+16(FP), AX
	MOVQ blk+24(FP), R8
	VBROADCASTSD c0+32(FP), Y8
	VBROADCASTSD v0+40(FP), Y9
	VBROADCASTSD v1+48(FP), Y10
	VBROADCASTSD c1+56(FP), Y11
	XORQ BX, BX               // base of current block pair

rxouter:
	MOVQ BX, CX               // low-half index
	LEAQ (BX)(R8*1), DX       // high-half index
	LEAQ (BX)(R8*1), R9       // low-half end

rxinner:
	VMOVUPD (DI)(CX*8), Y0    // r0
	VMOVUPD (SI)(CX*8), Y1    // i0
	VMOVUPD (DI)(DX*8), Y2    // r1
	VMOVUPD (SI)(DX*8), Y3    // i1

	// r0' = c0*r0 - v0*i1
	VMULPD       Y0, Y8, Y4
	VFNMADD231PD Y3, Y9, Y4

	// i0' = c0*i0 + v0*r1
	VMULPD      Y1, Y8, Y5
	VFMADD231PD Y2, Y9, Y5

	// r1' = c1*r1 - v1*i0
	VMULPD       Y2, Y11, Y6
	VFNMADD231PD Y1, Y10, Y6

	// i1' = c1*i1 + v1*r0
	VMULPD      Y3, Y11, Y7
	VFMADD231PD Y0, Y10, Y7

	VMOVUPD Y4, (DI)(CX*8)
	VMOVUPD Y5, (SI)(CX*8)
	VMOVUPD Y6, (DI)(DX*8)
	VMOVUPD Y7, (SI)(DX*8)
	ADDQ    $4, CX
	ADDQ    $4, DX
	CMPQ    CX, R9
	JL      rxinner

	LEAQ (BX)(R8*2), BX       // base += 2*blk
	CMPQ BX, AX
	JL   rxouter
	VZEROUPPER
	RET

// func hStrideAVX(re, im *float64, total, blk int, inv float64)
TEXT ·hStrideAVX(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ total+16(FP), AX
	MOVQ blk+24(FP), R8
	VBROADCASTSD inv+32(FP), Y8
	XORQ BX, BX

houter:
	MOVQ BX, CX
	LEAQ (BX)(R8*1), DX
	LEAQ (BX)(R8*1), R9

hinner:
	VMOVUPD (DI)(CX*8), Y0    // r0
	VMOVUPD (SI)(CX*8), Y1    // i0
	VMOVUPD (DI)(DX*8), Y2    // r1
	VMOVUPD (SI)(DX*8), Y3    // i1
	VADDPD  Y2, Y0, Y4        // r0+r1
	VSUBPD  Y2, Y0, Y6        // r0-r1
	VADDPD  Y3, Y1, Y5        // i0+i1
	VSUBPD  Y3, Y1, Y7        // i0-i1
	VMULPD  Y4, Y8, Y4
	VMULPD  Y5, Y8, Y5
	VMULPD  Y6, Y8, Y6
	VMULPD  Y7, Y8, Y7
	VMOVUPD Y4, (DI)(CX*8)
	VMOVUPD Y5, (SI)(CX*8)
	VMOVUPD Y6, (DI)(DX*8)
	VMOVUPD Y7, (SI)(DX*8)
	ADDQ    $4, CX
	ADDQ    $4, DX
	CMPQ    CX, R9
	JL      hinner

	LEAQ (BX)(R8*2), BX
	CMPQ BX, AX
	JL   houter
	VZEROUPPER
	RET

// func u1StrideAVX(re, im *float64, total, blk int, m *[8]float64)
TEXT ·u1StrideAVX(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ total+16(FP), AX
	MOVQ blk+24(FP), R8
	MOVQ m+32(FP), R10
	VBROADCASTSD 0(R10), Y8   // m00r
	VBROADCASTSD 8(R10), Y9   // m00i
	VBROADCASTSD 16(R10), Y10 // m01r
	VBROADCASTSD 24(R10), Y11 // m01i
	VBROADCASTSD 32(R10), Y12 // m10r
	VBROADCASTSD 40(R10), Y13 // m10i
	VBROADCASTSD 48(R10), Y14 // m11r
	VBROADCASTSD 56(R10), Y15 // m11i
	XORQ BX, BX

u1outer:
	MOVQ BX, CX
	LEAQ (BX)(R8*1), DX
	LEAQ (BX)(R8*1), R9

u1inner:
	VMOVUPD (DI)(CX*8), Y0    // r0
	VMOVUPD (SI)(CX*8), Y1    // i0
	VMOVUPD (DI)(DX*8), Y2    // r1
	VMOVUPD (SI)(DX*8), Y3    // i1

	// r0' = m00r*r0 - m00i*i0 + m01r*r1 - m01i*i1
	VMULPD       Y0, Y8, Y4
	VFNMADD231PD Y1, Y9, Y4
	VFMADD231PD  Y2, Y10, Y4
	VFNMADD231PD Y3, Y11, Y4

	// i0' = m00r*i0 + m00i*r0 + m01r*i1 + m01i*r1
	VMULPD      Y1, Y8, Y5
	VFMADD231PD Y0, Y9, Y5
	VFMADD231PD Y3, Y10, Y5
	VFMADD231PD Y2, Y11, Y5

	// r1' = m10r*r0 - m10i*i0 + m11r*r1 - m11i*i1
	VMULPD       Y0, Y12, Y6
	VFNMADD231PD Y1, Y13, Y6
	VFMADD231PD  Y2, Y14, Y6
	VFNMADD231PD Y3, Y15, Y6

	// i1' = m10r*i0 + m10i*r0 + m11r*i1 + m11i*r1
	VMULPD      Y1, Y12, Y7
	VFMADD231PD Y0, Y13, Y7
	VFMADD231PD Y3, Y14, Y7
	VFMADD231PD Y2, Y15, Y7

	VMOVUPD Y4, (DI)(CX*8)
	VMOVUPD Y5, (SI)(CX*8)
	VMOVUPD Y6, (DI)(DX*8)
	VMOVUPD Y7, (SI)(DX*8)
	ADDQ    $4, CX
	ADDQ    $4, DX
	CMPQ    CX, R9
	JL      u1inner

	LEAQ (BX)(R8*2), BX
	CMPQ BX, AX
	JL   u1outer
	VZEROUPPER
	RET

// func diag1StrideAVX(re, im *float64, total, blk int, d *[4]float64)
TEXT ·diag1StrideAVX(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ total+16(FP), AX
	MOVQ blk+24(FP), R8
	MOVQ d+32(FP), R10
	VBROADCASTSD 0(R10), Y8   // d0r
	VBROADCASTSD 8(R10), Y9   // d0i
	VBROADCASTSD 16(R10), Y10 // d1r
	VBROADCASTSD 24(R10), Y11 // d1i
	XORQ BX, BX

d1outer:
	MOVQ BX, CX
	LEAQ (BX)(R8*1), DX
	LEAQ (BX)(R8*1), R9

d1inner:
	VMOVUPD (DI)(CX*8), Y0    // r0
	VMOVUPD (SI)(CX*8), Y1    // i0
	VMOVUPD (DI)(DX*8), Y2    // r1
	VMOVUPD (SI)(DX*8), Y3    // i1

	// low half *= d0
	VMULPD       Y0, Y8, Y4
	VFNMADD231PD Y1, Y9, Y4
	VMULPD       Y1, Y8, Y5
	VFMADD231PD  Y0, Y9, Y5

	// high half *= d1
	VMULPD       Y2, Y10, Y6
	VFNMADD231PD Y3, Y11, Y6
	VMULPD       Y3, Y10, Y7
	VFMADD231PD  Y2, Y11, Y7

	VMOVUPD Y4, (DI)(CX*8)
	VMOVUPD Y5, (SI)(CX*8)
	VMOVUPD Y6, (DI)(DX*8)
	VMOVUPD Y7, (SI)(DX*8)
	ADDQ    $4, CX
	ADDQ    $4, DX
	CMPQ    CX, R9
	JL      d1inner

	LEAQ (BX)(R8*2), BX
	CMPQ BX, AX
	JL   d1outer
	VZEROUPPER
	RET

// func u1PairAAVX(re, im *float64, n int, coef *[16]float64)
//
// Bit-0 pair kernel: the partner of lane l is lane l^1, materialized with
// VSHUFPD $5 (swap adjacent doubles in each 128-bit half).
TEXT ·u1PairAAVX(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	MOVQ coef+24(FP), R10
	VMOVUPD 0(R10), Y8        // Ar
	VMOVUPD 32(R10), Y9       // Ai
	VMOVUPD 64(R10), Y10      // Br
	VMOVUPD 96(R10), Y11      // Bi
	XORQ BX, BX

pAloop:
	VMOVUPD (DI)(BX*8), Y0    // r
	VMOVUPD (SI)(BX*8), Y1    // i
	VSHUFPD $5, Y0, Y0, Y2    // P(r)
	VSHUFPD $5, Y1, Y1, Y3    // P(i)

	// r' = Ar*r - Ai*i + Br*P(r) - Bi*P(i)
	VMULPD       Y0, Y8, Y4
	VFNMADD231PD Y1, Y9, Y4
	VFMADD231PD  Y2, Y10, Y4
	VFNMADD231PD Y3, Y11, Y4

	// i' = Ar*i + Ai*r + Br*P(i) + Bi*P(r)
	VMULPD      Y1, Y8, Y5
	VFMADD231PD Y0, Y9, Y5
	VFMADD231PD Y3, Y10, Y5
	VFMADD231PD Y2, Y11, Y5

	VMOVUPD Y4, (DI)(BX*8)
	VMOVUPD Y5, (SI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, AX
	JL      pAloop
	VZEROUPPER
	RET

// func u1PairBAVX(re, im *float64, n int, coef *[16]float64)
//
// Bit-1 pair kernel: the partner of lane l is lane l^2, materialized with
// VPERM2F128 $1 (swap the 128-bit halves).
TEXT ·u1PairBAVX(SB), NOSPLIT, $0-32
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	MOVQ coef+24(FP), R10
	VMOVUPD 0(R10), Y8        // Ar
	VMOVUPD 32(R10), Y9       // Ai
	VMOVUPD 64(R10), Y10      // Br
	VMOVUPD 96(R10), Y11      // Bi
	XORQ BX, BX

pBloop:
	VMOVUPD (DI)(BX*8), Y0    // r
	VMOVUPD (SI)(BX*8), Y1    // i
	VPERM2F128 $1, Y0, Y0, Y2 // P(r)
	VPERM2F128 $1, Y1, Y1, Y3 // P(i)

	VMULPD       Y0, Y8, Y4
	VFNMADD231PD Y1, Y9, Y4
	VFMADD231PD  Y2, Y10, Y4
	VFNMADD231PD Y3, Y11, Y4

	VMULPD      Y1, Y8, Y5
	VFMADD231PD Y0, Y9, Y5
	VFMADD231PD Y3, Y10, Y5
	VFMADD231PD Y2, Y11, Y5

	VMOVUPD Y4, (DI)(BX*8)
	VMOVUPD Y5, (SI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, AX
	JL      pBloop
	VZEROUPPER
	RET

// func cmulVecAVX(re, im, fr, fi *float64, n int)
TEXT ·cmulVecAVX(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ fr+16(FP), DX
	MOVQ fi+24(FP), CX
	MOVQ n+32(FP), AX
	XORQ BX, BX

cvloop:
	VMOVUPD (DI)(BX*8), Y0    // r
	VMOVUPD (SI)(BX*8), Y1    // i
	VMOVUPD (DX)(BX*8), Y2    // fr
	VMOVUPD (CX)(BX*8), Y3    // fi

	// r' = r*fr - i*fi
	VMULPD       Y2, Y0, Y4
	VFNMADD231PD Y3, Y1, Y4

	// i' = r*fi + i*fr
	VMULPD      Y3, Y0, Y5
	VFMADD231PD Y2, Y1, Y5

	VMOVUPD Y4, (DI)(BX*8)
	VMOVUPD Y5, (SI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, AX
	JL      cvloop
	VZEROUPPER
	RET

// func cmulScalarAVX(re, im *float64, n int, sr, si float64)
TEXT ·cmulScalarAVX(SB), NOSPLIT, $0-40
	MOVQ re+0(FP), DI
	MOVQ im+8(FP), SI
	MOVQ n+16(FP), AX
	VBROADCASTSD sr+24(FP), Y8
	VBROADCASTSD si+32(FP), Y9
	XORQ BX, BX

csloop:
	VMOVUPD (DI)(BX*8), Y0
	VMOVUPD (SI)(BX*8), Y1

	VMULPD       Y0, Y8, Y4
	VFNMADD231PD Y1, Y9, Y4

	VMULPD      Y1, Y8, Y5
	VFMADD231PD Y0, Y9, Y5

	VMOVUPD Y4, (DI)(BX*8)
	VMOVUPD Y5, (SI)(BX*8)
	ADDQ    $4, BX
	CMPQ    BX, AX
	JL      csloop
	VZEROUPPER
	RET
