package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/mpi"
)

func TestParseQASMU2U3Semantics(t *testing.T) {
	// u3(θ,φ,λ) must act like RZ(φ)·RY(θ)·RZ(λ) up to global phase.
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
u3(0.7,0.3,-0.4) q[0];
`
	parsed, err := circuit.ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	ref := circuit.New(1)
	ref.RZ(0, circuit.Bound(-0.4)).RY(0, circuit.Bound(0.7)).RZ(0, circuit.Bound(0.3))
	a, _ := RunCircuit(parsed, 1, rand.New(rand.NewSource(0)))
	b, _ := RunCircuit(ref, 1, rand.New(rand.NewSource(0)))
	if math.Abs(cmplx.Abs(a.InnerProduct(b))-1) > 1e-10 {
		t.Fatal("u3 semantics wrong")
	}
	// u2(φ,λ) = u3(π/2, φ, λ).
	src2 := `OPENQASM 2.0;
qreg q[1];
u2(0.3,-0.4) q[0];
`
	parsed2, err := circuit.ParseQASM(src2)
	if err != nil {
		t.Fatal(err)
	}
	ref2 := circuit.New(1)
	ref2.RZ(0, circuit.Bound(-0.4)).RY(0, circuit.Bound(math.Pi/2)).RZ(0, circuit.Bound(0.3))
	a2, _ := RunCircuit(parsed2, 1, rand.New(rand.NewSource(0)))
	b2, _ := RunCircuit(ref2, 1, rand.New(rand.NewSource(0)))
	if math.Abs(cmplx.Abs(a2.InnerProduct(b2))-1) > 1e-10 {
		t.Fatal("u2 semantics wrong")
	}
}

func TestExpectationDiagonal(t *testing.T) {
	// <Z0> on RY(0.8)|0> is cos(0.8).
	c := circuit.New(2)
	c.RY(0, circuit.Bound(0.8))
	s, _ := RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	got := s.ExpectationDiagonal(func(idx int) float64 {
		if idx&1 == 1 {
			return -1
		}
		return 1
	})
	if math.Abs(got-math.Cos(0.8)) > 1e-12 {
		t.Fatalf("<Z0> = %g, want %g", got, math.Cos(0.8))
	}
}

func TestCSwapGate(t *testing.T) {
	// CSWAP with control set swaps targets.
	c := circuit.New(3)
	c.X(0).X(1).CSWAP(0, 1, 2) // |011> -> control q0=1, swap q1,q2 -> |101>
	s, _ := RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	want := 1<<0 | 1<<2 // q0=1, q2=1
	if cmplx.Abs(s.Amp[want]-1) > 1e-12 {
		t.Fatalf("cswap wrong state: %v", s.Amp)
	}
	// Control clear: no swap.
	c2 := circuit.New(3)
	c2.X(1).CSWAP(0, 1, 2)
	s2, _ := RunCircuit(c2, 1, rand.New(rand.NewSource(0)))
	if cmplx.Abs(s2.Amp[2]-1) > 1e-12 {
		t.Fatalf("cswap fired without control: %v", s2.Amp)
	}
}

func TestChunkedLargeState(t *testing.T) {
	// Chunked workers handle a state big enough to actually split (>= 2^12).
	c := circuit.New(14)
	for q := 0; q < 14; q++ {
		c.H(q)
	}
	c.RZZ(0, 13, circuit.Bound(0.5))
	s1, _ := RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	s8, _ := RunCircuit(c, 8, rand.New(rand.NewSource(0)))
	for i := 0; i < len(s1.Amp); i += 997 {
		if cmplx.Abs(s1.Amp[i]-s8.Amp[i]) > 1e-12 {
			t.Fatalf("chunked mismatch at %d", i)
		}
	}
}

func TestDistributedObservable(t *testing.T) {
	// Distributed diagonal expectation equals the serial one.
	rng := rand.New(rand.NewSource(21))
	c := randomCircuit(6, 30, rng)
	diag := func(idx int) float64 {
		e := 0.0
		for q := 0; q < 6; q++ {
			if idx&(1<<uint(q)) != 0 {
				e -= float64(q + 1)
			} else {
				e += float64(q + 1)
			}
		}
		return e
	}
	sSerial, _ := RunCircuit(circuit.Transpile(c, circuit.BasicGateSet()), 1, rand.New(rand.NewSource(0)))
	want := sSerial.ExpectationDiagonal(diag)
	w := mpi.NewWorld(4)
	err := w.Run(func(comm *mpi.Comm) error {
		_, ev, err := RunDistributedObs(comm, c, 16, 3, diag)
		if err != nil {
			return err
		}
		if ev == nil {
			t.Error("nil expectation")
			return nil
		}
		if math.Abs(*ev-want) > 1e-9 {
			t.Errorf("rank %d: <H> = %g, want %g", comm.Rank(), *ev, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
