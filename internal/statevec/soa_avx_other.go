//go:build !amd64

package statevec

// Non-amd64 builds run the portable SoA loops in soa.go. useAVX is a
// compile-time false so every AVX branch and these unreachable stubs are
// eliminated by the linker.

const useAVX = false

func rxStrideAVX(re, im *float64, total, blk int, c0, v0, v1, c1 float64) {
	panic("statevec: AVX kernel on non-amd64")
}

func hStrideAVX(re, im *float64, total, blk int, inv float64) {
	panic("statevec: AVX kernel on non-amd64")
}

func u1StrideAVX(re, im *float64, total, blk int, m *[8]float64) {
	panic("statevec: AVX kernel on non-amd64")
}

func diag1StrideAVX(re, im *float64, total, blk int, d *[4]float64) {
	panic("statevec: AVX kernel on non-amd64")
}

func u1PairAAVX(re, im *float64, n int, coef *[16]float64) {
	panic("statevec: AVX kernel on non-amd64")
}

func u1PairBAVX(re, im *float64, n int, coef *[16]float64) {
	panic("statevec: AVX kernel on non-amd64")
}

func cmulVecAVX(re, im, fr, fi *float64, n int) {
	panic("statevec: AVX kernel on non-amd64")
}

func cmulScalarAVX(re, im *float64, n int, sr, si float64) {
	panic("statevec: AVX kernel on non-amd64")
}

func soa1QAVX(re, im []float64, m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i float64, blk int) bool {
	return false
}
