package statevec

import (
	"fmt"
	"math/rand"
	"sort"

	"qfw/internal/circuit"
	"qfw/internal/mpi"
)

// Distributed state-vector simulation (the NWQ-Sim / SV-Sim analog): the
// 2^n amplitudes are partitioned across P = 2^g MPI ranks; each rank owns
// the contiguous block whose top g index bits equal its rank. Gates on
// "local" qubits (low n-g bits) run without communication; gates on
// "global" qubits exchange the whole local block with a partner rank via
// Sendrecv, exactly like PGAS-style amplitude-pair swapping in SV-Sim.

// distState is one rank's shard of the global state vector.
type distState struct {
	n      int // total qubits
	nLocal int // qubits stored in the local index
	comm   *mpi.Comm
	amp    []complex128
}

// RunDistributed executes a bound circuit on the communicator's ranks and
// returns the sampled counts on rank 0 (nil on other ranks). The world size
// must be a power of two not exceeding 2^n.
func RunDistributed(comm *mpi.Comm, c *circuit.Circuit, shots int, seed int64) (map[string]int, error) {
	counts, _, err := RunDistributedObs(comm, c, shots, seed, nil)
	return counts, err
}

// RunDistributedObs is RunDistributed plus an optional diagonal observable:
// each rank reduces its local probability-weighted energy and the global
// expectation is Allreduced (valid on every rank).
func RunDistributedObs(comm *mpi.Comm, c *circuit.Circuit, shots int, seed int64, diag func(idx int) float64) (map[string]int, *float64, error) {
	p := comm.Size()
	if p&(p-1) != 0 {
		return nil, nil, fmt.Errorf("statevec: world size %d is not a power of two", p)
	}
	g := 0
	for 1<<uint(g) < p {
		g++
	}
	if g > c.NQubits {
		return nil, nil, fmt.Errorf("statevec: %d ranks exceed 2^%d amplitudes", p, c.NQubits)
	}
	if !c.IsBound() {
		return nil, nil, fmt.Errorf("statevec: circuit has unbound parameters")
	}
	ds := &distState{
		n:      c.NQubits,
		nLocal: c.NQubits - g,
		comm:   comm,
		amp:    make([]complex128, 1<<uint(c.NQubits-g)),
	}
	if comm.Rank() == 0 {
		ds.amp[0] = 1
	}
	tc := circuit.Transpile(c.StripMeasurements(), circuit.BasicGateSet())
	for _, gate := range tc.Gates {
		if err := ds.apply(gate); err != nil {
			return nil, nil, err
		}
	}
	if shots <= 0 {
		shots = 1024
	}
	var expVal *float64
	if diag != nil {
		base := comm.Rank() << uint(ds.nLocal)
		var local float64
		for i, a := range ds.amp {
			pr := real(a)*real(a) + imag(a)*imag(a)
			if pr > 0 {
				local += pr * diag(base|i)
			}
		}
		v := comm.AllreduceSum(local)
		expVal = &v
	}
	return ds.sample(shots, seed), expVal, nil
}

// rankBit returns the value of global qubit q encoded in the rank id.
func (d *distState) rankBit(q int) int {
	return (d.comm.Rank() >> uint(q-d.nLocal)) & 1
}

func (d *distState) apply(g circuit.Gate) error {
	switch g.Kind {
	case circuit.KindBarrier, circuit.KindI, circuit.KindMeasure, circuit.KindReset:
		return nil
	}
	var theta float64
	if g.Kind.NumParams() == 1 {
		theta = g.Angle()
	}
	if g.Kind.NumQubits() == 1 {
		d.apply1Q(circuit.Matrix1Q(g.Kind, theta), g.Qubits[0])
		return nil
	}
	if m, ok := circuit.ControlledTarget(g.Kind, theta); ok && g.Kind.NumQubits() == 2 {
		d.applyControlled(m, g.Qubits[0], g.Qubits[1])
		return nil
	}
	return fmt.Errorf("statevec: distributed engine cannot execute %s (transpile bug)", g.Kind.Name())
}

func (d *distState) apply1Q(m [2][2]complex128, q int) {
	if q < d.nLocal {
		d.local1Q(m, q, -1, false)
		return
	}
	d.global1Q(m, q, -1, false)
}

func (d *distState) applyControlled(m [2][2]complex128, ctrl, tgt int) {
	// A global control that is 0 on this rank means no work anywhere the
	// rank owns — and the Sendrecv partner for a global target shares the
	// control bit, so skipping is globally consistent.
	if ctrl >= d.nLocal {
		if d.rankBit(ctrl) == 0 {
			return
		}
		if tgt < d.nLocal {
			d.local1Q(m, tgt, -1, false)
		} else {
			d.global1Q(m, tgt, -1, false)
		}
		return
	}
	if tgt < d.nLocal {
		d.local1Q(m, tgt, ctrl, true)
		return
	}
	d.global1Q(m, tgt, ctrl, true)
}

// local1Q applies the matrix to a local qubit, optionally gated on a local
// control bit.
func (d *distState) local1Q(m [2][2]complex128, q, ctrl int, hasCtrl bool) {
	bit := 1 << uint(q)
	var cmask int
	if hasCtrl {
		cmask = 1 << uint(ctrl)
	}
	half := len(d.amp) >> 1
	for j := 0; j < half; j++ {
		i0 := insertZeroBit(j, q)
		if hasCtrl && i0&cmask == 0 {
			continue
		}
		i1 := i0 | bit
		a0, a1 := d.amp[i0], d.amp[i1]
		d.amp[i0] = m[0][0]*a0 + m[0][1]*a1
		d.amp[i1] = m[1][0]*a0 + m[1][1]*a1
	}
}

// global1Q applies the matrix to a qubit stored in the rank bits: exchange
// the local block with the partner rank, then combine elementwise.
func (d *distState) global1Q(m [2][2]complex128, q, ctrl int, hasCtrl bool) {
	partner := d.comm.Rank() ^ (1 << uint(q-d.nLocal))
	// Hand our buffer to the partner; we receive theirs.
	theirs := d.comm.Sendrecv(partner, int(q), d.amp).([]complex128)
	myBit := d.rankBit(q)
	var cmask int
	if hasCtrl {
		cmask = 1 << uint(ctrl)
	}
	next := make([]complex128, len(d.amp))
	for i := range next {
		if hasCtrl && i&cmask == 0 {
			next[i] = d.amp[i]
			continue
		}
		if myBit == 0 {
			next[i] = m[0][0]*d.amp[i] + m[0][1]*theirs[i]
		} else {
			next[i] = m[1][0]*theirs[i] + m[1][1]*d.amp[i]
		}
	}
	d.amp = next
}

// sample draws shots bitstrings from the distributed distribution. Rank 0
// assigns shots to ranks by their probability mass, each rank samples its
// local block, and rank 0 merges the results.
func (d *distState) sample(shots int, seed int64) map[string]int {
	var localMass float64
	cum := make([]float64, len(d.amp))
	for i, a := range d.amp {
		localMass += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = localMass
	}
	masses := d.comm.Allgather(localMass)
	// Deterministic shot split: every rank computes the same assignment.
	rng := rand.New(rand.NewSource(seed))
	perRank := make([]int, d.comm.Size())
	var total float64
	rankCum := make([]float64, d.comm.Size())
	for r, m := range masses {
		total += m.(float64)
		rankCum[r] = total
	}
	for s := 0; s < shots; s++ {
		x := rng.Float64() * total
		r := sort.SearchFloat64s(rankCum, x)
		if r >= len(perRank) {
			r = len(perRank) - 1
		}
		perRank[r]++
	}
	// Each rank samples its share locally.
	localRng := rand.New(rand.NewSource(seed + int64(d.comm.Rank()) + 1))
	localCounts := make(map[string]int)
	base := d.comm.Rank() << uint(d.nLocal)
	for s := 0; s < perRank[d.comm.Rank()]; s++ {
		x := localRng.Float64() * localMass
		i := sort.SearchFloat64s(cum, x)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		localCounts[FormatBits(base|i, d.n)]++
	}
	gathered := d.comm.Gather(0, localCounts)
	if d.comm.Rank() != 0 {
		return nil
	}
	merged := make(map[string]int)
	for _, g := range gathered {
		for k, v := range g.(map[string]int) {
			merged[k] += v
		}
	}
	return merged
}
