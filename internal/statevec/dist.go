package statevec

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"sort"

	"qfw/internal/circuit"
	"qfw/internal/mpi"
	"qfw/internal/pauli"
)

// Distributed state-vector simulation (the NWQ-Sim / SV-Sim analog): the
// 2^n amplitudes are partitioned across P = 2^g MPI ranks; each rank owns
// the contiguous block whose top g physical index bits equal its rank.
//
// The engine executes *fused programs* under a communication-aware stage
// schedule (circuit.PlanDistStages): each stage's non-diagonal kernels act
// only on qubits resident in the local shard — running through the exact
// same classified kernels, worker pool, and buffer arena as the single-node
// engine — while stage boundaries perform one bit-permutation remap of the
// global index (an all-to-all shard shuffle) that brings the next run of
// "global" qubits local in a single exchange. Combined diagonal layers
// never communicate: factors on global qubits collapse to per-rank scalars
// read off the rank id. The pre-fusion path that exchanges a whole shard
// per global-qubit gate is kept as RunDistributedPerGate — the ablation
// baseline.

// distState is one rank's shard of the global state vector.
type distState struct {
	n       int // total qubits
	nLocal  int // qubits stored in the local index
	workers int
	comm    *mpi.Comm
	amp     []complex128
	pos     []int // pos[q] = physical bit position of program qubit q
	tag     int   // lock-step exchange tag counter (same sequence on every rank)
}

// DistObs selects the observable evaluated over the final distributed
// state: a diagonal basis-index energy function, or a general Pauli-sum
// Hamiltonian (basis-changed locally, energy Allreduced). Ham wins when
// both are set.
type DistObs struct {
	Diag func(idx int) float64
	Ham  *pauli.Hamiltonian
}

// DistResult is one element's outcome of a distributed (batch) execution.
// Counts are populated on rank 0 only; ExpVal is valid on every rank.
type DistResult struct {
	Counts map[string]int
	ExpVal *float64
}

// DistBatch describes a batched distributed execution: one parametric
// ansatz, K parameter bindings, and per-element seeds, all run inside a
// single persistent world (one rank-goroutine spawn, one fused plan).
type DistBatch struct {
	Circuit  *circuit.Circuit
	Plan     *circuit.FusionPlan // optional: cached plan of Circuit.StripMeasurements()
	Bindings []map[string]float64
	Shots    int
	Seeds    []int64 // per-element RNG seeds; element i defaults to i+1 when nil
	Workers  int     // kernel workers per rank shard (<=0 means 1)
	Obs      DistObs
}

// distGeometry validates the (world size, qubit count) pairing and returns
// the number of global qubits g (world size = 2^g).
func distGeometry(size, nqubits int) (int, error) {
	if size < 1 {
		return 0, fmt.Errorf("statevec: distributed world needs at least one rank, got %d", size)
	}
	if size&(size-1) != 0 {
		return 0, fmt.Errorf("statevec: distributed world size %d is not a power of two — amplitude sharding encodes the rank in the top g index bits, so launch 2^g ranks", size)
	}
	g := 0
	for 1<<uint(g) < size {
		g++
	}
	if g > nqubits {
		return 0, fmt.Errorf("statevec: %d ranks exceed the 2^%d amplitudes of a %d-qubit state — use at most %d ranks", size, nqubits, nqubits, 1<<uint(nqubits))
	}
	if nqubits-g > 30 {
		return 0, fmt.Errorf("statevec: a %d-qubit shard per rank exceeds the 2^30 amplitude arena — distribute %d qubits over at least %d ranks", nqubits-g, nqubits, 1<<uint(nqubits-30))
	}
	return g, nil
}

// checkBound rejects circuits with unbound parameters with an actionable
// message naming the missing bindings.
func checkBound(c *circuit.Circuit) error {
	if !c.IsBound() {
		return fmt.Errorf("statevec: circuit %q has unbound parameters %v — bind them first or submit through the distributed batch path with per-element bindings", c.Name, c.ParamNames())
	}
	return nil
}

// newDistState allocates a rank shard from the amplitude arena, initialized
// to the rank's slice of |0...0> under the identity layout.
func newDistState(comm *mpi.Comm, n, g, workers int) *distState {
	if workers < 1 {
		workers = 1
	}
	d := &distState{
		n:       n,
		nLocal:  n - g,
		workers: workers,
		comm:    comm,
		amp:     getAmpBuf(n - g),
		pos:     make([]int, n),
		tag:     1 << 20, // clear of the per-gate path's qubit-indexed tags
	}
	clear(d.amp)
	if comm.Rank() == 0 {
		d.amp[0] = 1
	}
	for q := 0; q < n; q++ {
		d.pos[q] = q
	}
	return d
}

// release returns the shard buffer to the arena; the state is unusable
// afterwards.
func (d *distState) release() {
	if d.amp != nil {
		putAmpBuf(d.nLocal, d.amp)
		d.amp = nil
	}
}

// shard wraps the local amplitude block as a State so fused kernels, the
// persistent worker pool, and the specialized unfused paths apply verbatim.
func (d *distState) shard() *State {
	return &State{N: d.nLocal, Amp: d.amp, Workers: d.workers}
}

// rankBit returns the value of the qubit stored at physical position p
// (p >= nLocal), read off the rank id.
func (d *distState) rankBit(p int) int {
	return (d.comm.Rank() >> uint(p-d.nLocal)) & 1
}

// nextTag returns a fresh point-to-point tag; every rank executes the same
// exchange sequence, so the counters stay aligned.
func (d *distState) nextTag() int {
	d.tag++
	return d.tag
}

// progIndex translates a physical global index into the program basis index
// under the current layout.
func (d *distState) progIndex(gPhys int) int {
	out := 0
	for q := 0; q < d.n; q++ {
		if gPhys&(1<<uint(d.pos[q])) != 0 {
			out |= 1 << uint(q)
		}
	}
	return out
}

// indexTranslator returns the physical-to-program index map, short-circuited
// to the identity when the layout never left it (always true on the per-gate
// path and on fused runs without remap points) so the hot per-amplitude
// loops skip the O(n) bit translation.
func (d *distState) indexTranslator() func(int) int {
	for q, p := range d.pos {
		if p != q {
			return d.progIndex
		}
	}
	return func(g int) int { return g }
}

// localQubits maps program qubits to shard positions; the stage partitioner
// guarantees residency, so a global position here is a scheduler bug.
func (d *distState) localQubits(qs []int) []int {
	out := make([]int, len(qs))
	for i, q := range qs {
		p := d.pos[q]
		if p >= d.nLocal {
			panic(fmt.Sprintf("statevec: qubit %d scheduled local but resides at global position %d", q, p))
		}
		out[i] = p
	}
	return out
}

// permuteBits moves bit p of g to position move[p] for every position.
func permuteBits(g int, move []int) int {
	out := 0
	for p := 0; p < len(move); p++ {
		if g&(1<<uint(p)) != 0 {
			out |= 1 << uint(move[p])
		}
	}
	return out
}

// remap transitions the shard to a new qubit layout: one logical
// bit-permutation of the global index, realized as a single all-to-all
// shuffle. Each rank buckets its amplitudes by destination rank ordered by
// destination-local index; the receiver reconstructs placement from the
// inverse permutation, so only raw amplitudes travel (no index payload).
func (d *distState) remap(newPos []int) {
	same := true
	for q, p := range newPos {
		if d.pos[q] != p {
			same = false
			break
		}
	}
	if same {
		return
	}
	nL := d.nLocal
	P := d.comm.Size()
	move := make([]int, d.n) // move[oldPhysicalPos] = newPhysicalPos
	for q := 0; q < d.n; q++ {
		move[d.pos[q]] = newPos[q]
	}
	base := d.comm.Rank() << uint(nL)
	mask := (1 << uint(nL)) - 1
	type slot struct {
		local int // destination-local index
		amp   complex128
	}
	buckets := make([][]slot, P)
	for i, a := range d.amp {
		g := permuteBits(base|i, move)
		r := g >> uint(nL)
		buckets[r] = append(buckets[r], slot{local: g & mask, amp: a})
	}
	payloads := make([]any, P)
	for r, b := range buckets {
		sort.Slice(b, func(x, y int) bool { return b[x].local < b[y].local })
		amps := make([]complex128, len(b))
		for x, s := range b {
			amps[x] = s.amp
		}
		payloads[r] = amps
	}
	recv := d.comm.Alltoall(payloads)
	inv := make([]int, d.n)
	for p, np := range move {
		inv[np] = p
	}
	next := getAmpBuf(nL)
	cursors := make([]int, P)
	for i := range next {
		gOld := permuteBits(base|i, inv)
		src := gOld >> uint(nL)
		buf := recv[src].([]complex128)
		next[i] = buf[cursors[src]]
		cursors[src]++
	}
	putAmpBuf(nL, d.amp)
	d.amp = next
	copy(d.pos, newPos)
}

// applyDiagTerms executes a combined diagonal layer rank-locally: factors on
// shard-resident qubits run through the table-driven diagonal kernel; factors
// on rank-encoded qubits collapse to a per-rank scalar (their bit value is
// fixed across the whole shard), folded into the first local factor or swept
// once when the layer is entirely global.
func (d *distState) applyDiagTerms(d1 []circuit.DiagTerm1, d2 []circuit.DiagTerm2) {
	nL := d.nLocal
	var l1 []circuit.DiagTerm1
	var l2 []circuit.DiagTerm2
	scalar := complex(1, 0)
	for _, t := range d1 {
		if p := d.pos[t.Q]; p < nL {
			l1 = append(l1, circuit.DiagTerm1{Q: p, D: t.D})
		} else {
			scalar *= t.D[d.rankBit(p)]
		}
	}
	for _, t := range d2 {
		pa, pb := d.pos[t.A], d.pos[t.B]
		switch {
		case pa < nL && pb < nL:
			l2 = append(l2, circuit.DiagTerm2{A: pa, B: pb, D: t.D})
		case pa < nL: // B's value fixed by the rank
			bb := d.rankBit(pb)
			l1 = append(l1, circuit.DiagTerm1{Q: pa, D: [2]complex128{t.D[bb], t.D[2|bb]}})
		case pb < nL: // A's value fixed by the rank
			ab := d.rankBit(pa)
			l1 = append(l1, circuit.DiagTerm1{Q: pb, D: [2]complex128{t.D[ab<<1], t.D[ab<<1|1]}})
		default:
			scalar *= t.D[d.rankBit(pa)<<1|d.rankBit(pb)]
		}
	}
	if len(l1)+len(l2) == 0 {
		if scalar != 1 {
			for i := range d.amp {
				d.amp[i] *= scalar
			}
		}
		return
	}
	if scalar != 1 {
		if len(l1) > 0 {
			l1[0].D[0] *= scalar
			l1[0].D[1] *= scalar
		} else {
			for v := 0; v < 4; v++ {
				l2[0].D[v] *= scalar
			}
		}
	}
	d.shard().ApplyDiagTerms(l1, l2)
}

// applyFused executes one fused op of the current stage on the shard.
func (d *distState) applyFused(op *circuit.FusedOp) {
	switch op.Kind {
	case circuit.FusedDiagonal:
		d.applyDiagTerms(op.D1, op.D2)
	case circuit.FusedDiag1Q:
		d.applyDiagTerms([]circuit.DiagTerm1{{Q: op.Qubits[0], D: [2]complex128{op.M1[0][0], op.M1[1][1]}}}, nil)
	case circuit.FusedGate:
		g := *op.Gate
		switch g.Kind {
		case circuit.KindBarrier, circuit.KindI, circuit.KindMeasure, circuit.KindReset:
			return
		}
		g.Qubits = d.localQubits(g.Qubits)
		d.shard().ApplyGate(g, nil, nil)
	default:
		o := *op
		o.Qubits = d.localQubits(op.Qubits)
		d.shard().ApplyFusedOp(&o, nil, nil)
	}
}

// runProgram executes a fused program under its distributed stage schedule.
func (d *distState) runProgram(prog *circuit.FusedProgram, sched *circuit.DistSchedule) {
	for si := range sched.Stages {
		st := &sched.Stages[si]
		if si > 0 {
			d.remap(st.Layout)
		}
		for _, oi := range st.Ops {
			d.applyFused(&prog.Ops[oi])
		}
	}
}

// distExec is one element's executable form: a staged fused program, or —
// when the shard is too small to host the circuit's gates (more ranks than
// the gate arities allow) — a transpiled circuit for the per-gate fallback.
type distExec struct {
	prog     *circuit.FusedProgram
	sched    *circuit.DistSchedule
	fallback *circuit.Circuit
}

// compileDist builds the executable form of a bound circuit for
// nLocal-qubit shards. When a passthrough gate is too wide for the shard
// (e.g. CCX with many ranks), it retries once after decomposing to the
// basic gate set; if even 2-qubit gates cannot become shard-resident
// (nLocal < 2), it degrades to the per-gate exchange engine so every world
// size up to 2^n stays executable.
func compileDist(c *circuit.Circuit, plan *circuit.FusionPlan, nLocal int) distExec {
	stripped := c.StripMeasurements()
	if plan == nil {
		plan = circuit.PlanFusion(stripped)
	}
	prog := plan.Compile(stripped)
	if sched, err := circuit.PlanDistStages(prog, nLocal); err == nil {
		return distExec{prog: prog, sched: sched}
	}
	tc := circuit.Transpile(stripped, circuit.BasicGateSet())
	prog = circuit.FuseBound(tc)
	if sched, err := circuit.PlanDistStages(prog, nLocal); err == nil {
		return distExec{prog: prog, sched: sched}
	}
	return distExec{fallback: tc}
}

// sameProgramShape reports whether two compiled programs share the op
// structure the stage partitioner reads (kinds and qubit lists), so one
// distributed schedule serves both.
func sameProgramShape(a, b *circuit.FusedProgram) bool {
	if len(a.Ops) != len(b.Ops) {
		return false
	}
	equal := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for i := range a.Ops {
		oa, ob := &a.Ops[i], &b.Ops[i]
		if oa.Kind != ob.Kind || !equal(oa.Qubits, ob.Qubits) {
			return false
		}
		if oa.Kind == circuit.FusedGate &&
			(oa.Gate.Kind != ob.Gate.Kind || !equal(oa.Gate.Qubits, ob.Gate.Qubits)) {
			return false
		}
	}
	return true
}

// run executes the element on a fresh rank shard.
func (e *distExec) run(d *distState) error {
	if e.sched != nil {
		d.runProgram(e.prog, e.sched)
		return nil
	}
	for _, g := range e.fallback.Gates {
		if err := d.applyPerGate(g); err != nil {
			return err
		}
	}
	return nil
}

// RunDistributed executes a bound circuit on the communicator's ranks
// through the fused stage engine and returns the sampled counts on rank 0
// (nil on other ranks). The world size must be a power of two not exceeding
// 2^n.
func RunDistributed(comm *mpi.Comm, c *circuit.Circuit, shots int, seed int64) (map[string]int, error) {
	counts, _, err := RunDistributedCircuit(comm, c, nil, shots, seed, DistObs{}, 1)
	return counts, err
}

// RunDistributedObs is RunDistributed plus an optional diagonal observable
// (kept for the pre-Pauli callers); the expectation is valid on every rank.
func RunDistributedObs(comm *mpi.Comm, c *circuit.Circuit, shots int, seed int64, diag func(idx int) float64) (map[string]int, *float64, error) {
	return RunDistributedCircuit(comm, c, nil, shots, seed, DistObs{Diag: diag}, 1)
}

// RunDistributedCircuit is the full-featured distributed entry point: fused
// stage execution with an optional cached fusion plan, diagonal or general
// Pauli observables, and per-rank kernel workers.
func RunDistributedCircuit(comm *mpi.Comm, c *circuit.Circuit, plan *circuit.FusionPlan, shots int, seed int64, obs DistObs, workers int) (map[string]int, *float64, error) {
	g, err := distGeometry(comm.Size(), c.NQubits)
	if err != nil {
		return nil, nil, err
	}
	if err := checkBound(c); err != nil {
		return nil, nil, err
	}
	exec := compileDist(c, plan, c.NQubits-g)
	d := newDistState(comm, c.NQubits, g, workers)
	defer d.release()
	if err := exec.run(d); err != nil {
		return nil, nil, err
	}
	var expVal *float64
	switch {
	case obs.Ham != nil:
		v := d.expectationHamiltonian(obs.Ham)
		expVal = &v
	case obs.Diag != nil:
		v := d.expectationDiagonal(obs.Diag)
		expVal = &v
	}
	if shots <= 0 {
		shots = 1024
	}
	return d.sample(shots, seed), expVal, nil
}

// RunDistributedState executes a bound circuit through the fused stage
// engine and gathers the final program-ordered amplitudes on rank 0 (nil on
// other ranks) — the equivalence-test and debugging entry point.
func RunDistributedState(comm *mpi.Comm, c *circuit.Circuit, plan *circuit.FusionPlan) ([]complex128, error) {
	g, err := distGeometry(comm.Size(), c.NQubits)
	if err != nil {
		return nil, err
	}
	if err := checkBound(c); err != nil {
		return nil, err
	}
	exec := compileDist(c, plan, c.NQubits-g)
	d := newDistState(comm, c.NQubits, g, 1)
	defer d.release()
	if err := exec.run(d); err != nil {
		return nil, err
	}
	return d.gatherProgram(), nil
}

// RunDistributedBatch executes K bindings of one parametric ansatz inside a
// single persistent world: ranks spawn once, the fusion plan is shared (and
// typically comes from the spec-hash ParseCache), and shard buffers recycle
// through the arena between elements. Results are ordered by element;
// counts live on rank 0's view.
func RunDistributedBatch(w *mpi.World, req DistBatch) ([]DistResult, error) {
	if req.Circuit == nil {
		return nil, fmt.Errorf("statevec: distributed batch needs a circuit")
	}
	g, err := distGeometry(w.Size, req.Circuit.NQubits)
	if err != nil {
		return nil, err
	}
	k := len(req.Bindings)
	if k == 0 {
		return nil, nil
	}
	if req.Seeds != nil && len(req.Seeds) != k {
		return nil, fmt.Errorf("statevec: distributed batch has %d seeds for %d bindings", len(req.Seeds), k)
	}
	plan := req.Plan
	if plan == nil {
		plan = circuit.PlanFusion(req.Circuit.StripMeasurements())
	}
	nLocal := req.Circuit.NQubits - g
	execs := make([]distExec, k)
	for i, b := range req.Bindings {
		bc := req.Circuit.Bind(b)
		if !bc.IsBound() {
			return nil, fmt.Errorf("statevec: batch element %d leaves parameters %v unbound", i, bc.ParamNames())
		}
		// The stage schedule depends only on op structure, which is shared
		// by every binding of one ansatz in the common case — reuse element
		// 0's schedule unless a binding-dependent kernel classification
		// (e.g. an angle collapsing a dense block to a diagonal) changed
		// the compiled shape.
		if i > 0 && execs[0].sched != nil {
			prog := plan.Compile(bc.StripMeasurements())
			if sameProgramShape(prog, execs[0].prog) {
				execs[i] = distExec{prog: prog, sched: execs[0].sched}
				continue
			}
		}
		execs[i] = compileDist(bc, plan, nLocal)
	}
	shots := req.Shots
	if shots <= 0 {
		shots = 1024
	}
	results := make([]DistResult, k)
	runErr := w.Run(func(comm *mpi.Comm) error {
		for i := range execs {
			d := newDistState(comm, req.Circuit.NQubits, g, req.Workers)
			if err := execs[i].run(d); err != nil {
				d.release()
				return fmt.Errorf("batch element %d: %w", i, err)
			}
			var expVal *float64
			switch {
			case req.Obs.Ham != nil:
				v := d.expectationHamiltonian(req.Obs.Ham)
				expVal = &v
			case req.Obs.Diag != nil:
				v := d.expectationDiagonal(req.Obs.Diag)
				expVal = &v
			}
			seed := int64(i + 1)
			if req.Seeds != nil {
				seed = req.Seeds[i]
			}
			counts := d.sample(shots, seed)
			if comm.Rank() == 0 {
				results[i] = DistResult{Counts: counts, ExpVal: expVal}
			}
			d.release()
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}
	return results, nil
}

// expectationDiagonal reduces the probability-weighted energy of a diagonal
// observable; the result is valid on every rank.
func (d *distState) expectationDiagonal(f func(idx int) float64) float64 {
	base := d.comm.Rank() << uint(d.nLocal)
	trans := d.indexTranslator()
	var local float64
	for i, a := range d.amp {
		pr := real(a)*real(a) + imag(a)*imag(a)
		if pr > 0 {
			local += pr * f(trans(base|i))
		}
	}
	return d.comm.AllreduceSum(local)
}

// expectationHamiltonian evaluates a general Pauli sum over the distributed
// state: each term basis-changes a scratch shard through the specialized
// permutation/diagonal kernels — Z on a rank-encoded qubit is a per-rank
// sign, X/Y swap whole shards with the partner rank — and the per-rank
// energies are Allreduced once. Valid on every rank.
func (d *distState) expectationHamiltonian(h *pauli.Hamiltonian) float64 {
	if len(h.Terms) == 0 {
		return 0
	}
	nL := d.nLocal
	t := &State{N: nL, Amp: getAmpBuf(nL), Workers: d.workers}
	im := complex(0, 1)
	var local float64
	for _, term := range h.Terms {
		copy(t.Amp, d.amp)
		phase := complex(1, 0)
		for q, op := range term.Ops {
			if op == pauli.I {
				continue
			}
			p := d.pos[q]
			if p < nL {
				switch op {
				case pauli.X:
					t.ApplyPerm1Q(1, 1, p)
				case pauli.Y:
					t.ApplyPerm1Q(-im, im, p)
				case pauli.Z:
					t.ApplyDiag1Q(1, -1, p)
				}
				continue
			}
			bit := d.rankBit(p)
			switch op {
			case pauli.Z:
				if bit == 1 {
					phase = -phase
				}
			case pauli.X, pauli.Y:
				partner := d.comm.Rank() ^ (1 << uint(p-nL))
				t.Amp = d.comm.Sendrecv(partner, d.nextTag(), t.Amp).([]complex128)
				if op == pauli.Y {
					if bit == 1 {
						phase *= im
					} else {
						phase *= -im
					}
				}
			}
		}
		var acc complex128
		for i, a := range d.amp {
			acc += cmplx.Conj(a) * t.Amp[i]
		}
		local += term.Coeff * real(phase*acc)
	}
	putAmpBuf(nL, t.Amp)
	return d.comm.AllreduceSum(local)
}

// gatherProgram collects the full program-ordered state on rank 0.
func (d *distState) gatherProgram() []complex128 {
	shard := append([]complex128(nil), d.amp...)
	gathered := d.comm.Gather(0, shard)
	if d.comm.Rank() != 0 {
		return nil
	}
	out := make([]complex128, 1<<uint(d.n))
	trans := d.indexTranslator()
	for r, g := range gathered {
		buf := g.([]complex128)
		base := r << uint(d.nLocal)
		for i, a := range buf {
			out[trans(base|i)] = a
		}
	}
	return out
}

// sample draws shots bitstrings from the distributed distribution. Rank 0
// assigns shots to ranks by their probability mass, each rank samples its
// local block, and rank 0 merges the results — deterministic run-to-run
// for a fixed seed, rank count, and layout (the split is drawn against
// physical per-rank masses, so different P or a different final layout
// yields a different — equally valid — histogram).
func (d *distState) sample(shots int, seed int64) map[string]int {
	var localMass float64
	prob := getF64Buf(d.nLocal)
	for i, a := range d.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		prob[i] = p
		localMass += p
	}
	masses := d.comm.Allgather(localMass)
	// Deterministic shot split: every rank computes the same assignment.
	rng := rand.New(rand.NewSource(seed))
	perRank := make([]int, d.comm.Size())
	var total float64
	rankCum := make([]float64, d.comm.Size())
	for r, m := range masses {
		total += m.(float64)
		rankCum[r] = total
	}
	for s := 0; s < shots; s++ {
		x := rng.Float64() * total
		r := sort.SearchFloat64s(rankCum, x)
		if r >= len(perRank) {
			r = len(perRank) - 1
		}
		perRank[r]++
	}
	// Each rank draws its share through the shared alias sampler.
	localRng := rand.New(rand.NewSource(seed + int64(d.comm.Rank()) + 1))
	idxCounts := aliasDraw(prob, d.nLocal, perRank[d.comm.Rank()], localMass, localRng)
	putF64Buf(d.nLocal, prob)
	localCounts := make(map[string]int, len(idxCounts))
	base := d.comm.Rank() << uint(d.nLocal)
	trans := d.indexTranslator()
	for i, c := range idxCounts {
		localCounts[FormatBits(trans(base|i), d.n)] = c
	}
	gathered := d.comm.Gather(0, localCounts)
	if d.comm.Rank() != 0 {
		return nil
	}
	merged := make(map[string]int)
	for _, g := range gathered {
		for k, v := range g.(map[string]int) {
			merged[k] += v
		}
	}
	return merged
}

// --- Per-gate reference path -------------------------------------------------
//
// RunDistributedPerGate is the pre-fusion distributed engine: one kernel
// pass per transpiled gate, and one whole-shard Sendrecv per gate touching a
// rank-encoded qubit. It is retained as the ablation baseline the fused
// stage engine is measured against, and as an independent reference
// implementation for the equivalence tests.

// RunDistributedPerGate executes a bound circuit gate-by-gate and returns
// the sampled counts on rank 0 (nil on other ranks).
func RunDistributedPerGate(comm *mpi.Comm, c *circuit.Circuit, shots int, seed int64) (map[string]int, error) {
	g, err := distGeometry(comm.Size(), c.NQubits)
	if err != nil {
		return nil, err
	}
	if err := checkBound(c); err != nil {
		return nil, err
	}
	d := newDistState(comm, c.NQubits, g, 1)
	defer d.release()
	tc := circuit.Transpile(c.StripMeasurements(), circuit.BasicGateSet())
	for _, gate := range tc.Gates {
		if err := d.applyPerGate(gate); err != nil {
			return nil, err
		}
	}
	if shots <= 0 {
		shots = 1024
	}
	return d.sample(shots, seed), nil
}

func (d *distState) applyPerGate(g circuit.Gate) error {
	// Bump the exchange tag once per gate on every rank — ranks whose global
	// control bit is 0 skip the exchange entirely, so deriving the tag inside
	// global1Q would let the counters drift apart.
	d.tag++
	switch g.Kind {
	case circuit.KindBarrier, circuit.KindI, circuit.KindMeasure, circuit.KindReset:
		return nil
	}
	var theta float64
	if g.Kind.NumParams() == 1 {
		theta = g.Angle()
	}
	if g.Kind.NumQubits() == 1 {
		d.perGate1Q(circuit.Matrix1Q(g.Kind, theta), g.Qubits[0])
		return nil
	}
	if m, ok := circuit.ControlledTarget(g.Kind, theta); ok && g.Kind.NumQubits() == 2 {
		d.perGateControlled(m, g.Qubits[0], g.Qubits[1])
		return nil
	}
	return fmt.Errorf("statevec: per-gate distributed engine cannot execute %s (transpile bug)", g.Kind.Name())
}

func (d *distState) perGate1Q(m [2][2]complex128, q int) {
	if q < d.nLocal {
		d.local1Q(m, q, -1, false)
		return
	}
	d.global1Q(m, q, -1, false)
}

func (d *distState) perGateControlled(m [2][2]complex128, ctrl, tgt int) {
	// A global control that is 0 on this rank means no work anywhere the
	// rank owns — and the Sendrecv partner for a global target shares the
	// control bit, so skipping is globally consistent.
	if ctrl >= d.nLocal {
		if d.rankBit(ctrl) == 0 {
			return
		}
		if tgt < d.nLocal {
			d.local1Q(m, tgt, -1, false)
		} else {
			d.global1Q(m, tgt, -1, false)
		}
		return
	}
	if tgt < d.nLocal {
		d.local1Q(m, tgt, ctrl, true)
		return
	}
	d.global1Q(m, tgt, ctrl, true)
}

// local1Q applies the matrix to a shard-resident qubit, optionally gated on
// a shard-resident control bit.
func (d *distState) local1Q(m [2][2]complex128, q, ctrl int, hasCtrl bool) {
	bit := 1 << uint(q)
	var cmask int
	if hasCtrl {
		cmask = 1 << uint(ctrl)
	}
	half := len(d.amp) >> 1
	for j := 0; j < half; j++ {
		i0 := insertZeroBit(j, q)
		if hasCtrl && i0&cmask == 0 {
			continue
		}
		i1 := i0 | bit
		a0, a1 := d.amp[i0], d.amp[i1]
		d.amp[i0] = m[0][0]*a0 + m[0][1]*a1
		d.amp[i1] = m[1][0]*a0 + m[1][1]*a1
	}
}

// global1Q applies the matrix to a rank-encoded qubit: ship a copy of the
// local block to the partner rank, then combine elementwise in place. The
// outbound copy comes from the arena and the inbound block returns to it, so
// repeated exchanges recycle instead of allocating.
func (d *distState) global1Q(m [2][2]complex128, q, ctrl int, hasCtrl bool) {
	partner := d.comm.Rank() ^ (1 << uint(q-d.nLocal))
	out := getAmpBuf(d.nLocal)
	copy(out, d.amp)
	theirs := d.comm.Sendrecv(partner, d.tag, out).([]complex128)
	myBit := d.rankBit(q)
	var cmask int
	if hasCtrl {
		cmask = 1 << uint(ctrl)
	}
	for i := range d.amp {
		if hasCtrl && i&cmask == 0 {
			continue
		}
		if myBit == 0 {
			d.amp[i] = m[0][0]*d.amp[i] + m[0][1]*theirs[i]
		} else {
			d.amp[i] = m[1][0]*theirs[i] + m[1][1]*d.amp[i]
		}
	}
	putAmpBuf(d.nLocal, theirs)
}
