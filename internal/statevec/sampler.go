package statevec

import "math/rand"

// SampleCounts draws shots samples from the final state distribution and
// returns a histogram keyed by bitstring (qubit 0 is the rightmost char).
//
// Sampling uses Vose's alias method: one O(2^n) table build (the same
// asymptotic cost the old cumulative array paid) followed by O(1) per shot,
// replacing the per-shot O(n) binary search. All working buffers come from
// the arena, so batched executions sample without reallocating.
func (s *State) SampleCounts(shots int, rng *rand.Rand) map[string]int {
	prob := getF64Buf(s.N)
	total := fillProbs(prob, s.Amp, s.Workers)
	if total <= 0 {
		// Degenerate all-zero state: report |0...0> like a fresh register.
		putF64Buf(s.N, prob)
		return map[string]int{FormatBits(0, s.N): shots}
	}
	idxCounts := aliasDraw(prob, s.N, shots, total, rng)
	putF64Buf(s.N, prob)
	counts := make(map[string]int, len(idxCounts))
	for i, c := range idxCounts {
		counts[FormatBits(i, s.N)] = c
	}
	return counts
}

// fillProbs writes the squared magnitudes of amp into prob and returns
// their sum. The fill is the sampler's only full-state sweep, so it chunks
// across the worker pool like the kernels; each chunk accumulates a partial
// sum locally (one cache line per worker, no sharing) before the serial
// reduce.
func fillProbs(prob []float64, amp []complex128, workers int) float64 {
	if workers <= 1 || len(amp) < parallelThreshold {
		var total float64
		for i, a := range amp {
			p := real(a)*real(a) + imag(a)*imag(a)
			prob[i] = p
			total += p
		}
		return total
	}
	chunk := (len(amp) + workers - 1) / workers
	partial := make([]float64, workers)
	ParallelFor(workers, workers, 1, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			start := w * chunk
			end := start + chunk
			if end > len(amp) {
				end = len(amp)
			}
			var acc float64
			for i := start; i < end; i++ {
				a := amp[i]
				p := real(a)*real(a) + imag(a)*imag(a)
				prob[i] = p
				acc += p
			}
			partial[w] = acc
		}
	})
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// aliasDraw builds a Vose alias table over prob (a 2^nbits arena-sized
// buffer of unnormalized probabilities summing to total, rescaled in place)
// and draws shots basis indices — the sampling core shared by the
// single-node and distributed engines. Returns an index histogram; nil when
// there is nothing to draw.
func aliasDraw(prob []float64, nbits, shots int, total float64, rng *rand.Rand) map[int]int {
	if shots <= 0 || total <= 0 {
		return nil
	}
	n := len(prob)
	alias := getIntBuf(nbits)
	small := getIntBuf(nbits)
	large := getIntBuf(nbits)
	scale := float64(n) / total
	ns, nl := 0, 0
	for i := 0; i < n; i++ {
		prob[i] *= scale
		alias[i] = i
		if prob[i] < 1 {
			small[ns] = i
			ns++
		} else {
			large[nl] = i
			nl++
		}
	}
	for ns > 0 && nl > 0 {
		sm := small[ns-1]
		lg := large[nl-1]
		ns--
		nl--
		alias[sm] = lg
		prob[lg] += prob[sm] - 1
		if prob[lg] < 1 {
			small[ns] = lg
			ns++
		} else {
			large[nl] = lg
			nl++
		}
	}
	for ; nl > 0; nl-- {
		prob[large[nl-1]] = 1
	}
	for ; ns > 0; ns-- {
		prob[small[ns-1]] = 1
	}

	// One uniform per shot: the integer part picks the column, the
	// fractional part decides column vs alias.
	idxCounts := make(map[int]int)
	for k := 0; k < shots; k++ {
		u := rng.Float64() * float64(n)
		i := int(u)
		if i >= n {
			i = n - 1
		}
		if u-float64(i) >= prob[i] {
			i = alias[i]
		}
		idxCounts[i]++
	}
	putIntBuf(nbits, alias)
	putIntBuf(nbits, small)
	putIntBuf(nbits, large)
	return idxCounts
}
