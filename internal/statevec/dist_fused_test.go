package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/mpi"
	"qfw/internal/pauli"
)

// distStateOn runs the fused distributed engine over p ranks and returns the
// program-ordered amplitudes gathered on rank 0.
func distStateOn(t *testing.T, c *circuit.Circuit, p int) []complex128 {
	t.Helper()
	w := mpi.NewWorld(p)
	var amps []complex128
	err := w.Run(func(comm *mpi.Comm) error {
		got, err := RunDistributedState(comm, c, nil)
		if comm.Rank() == 0 {
			amps = got
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return amps
}

// TestDistributedFusedMatchesSerialAmplitudes is the acceptance criterion:
// fused-distributed execution agrees with single-rank fused amplitudes to
// 1e-12 across the full random gate set for P in {1, 2, 4, 8}.
func TestDistributedFusedMatchesSerialAmplitudes(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(6, 50, rng)
		ref, _ := RunFused(c, nil, 1, rand.New(rand.NewSource(0)))
		for _, p := range []int{1, 2, 4, 8} {
			amps := distStateOn(t, c, p)
			if len(amps) != len(ref.Amp) {
				t.Fatalf("seed %d p=%d: %d amplitudes, want %d", seed, p, len(amps), len(ref.Amp))
			}
			for i := range amps {
				if cmplx.Abs(amps[i]-ref.Amp[i]) > 1e-12 {
					t.Fatalf("seed %d p=%d amp[%d]: dist %v vs serial %v", seed, p, i, amps[i], ref.Amp[i])
				}
			}
		}
		ref.Release()
	}
}

// TestDistributedFusedWideGateFallback forces a passthrough gate wider than
// the shard (CCX with nLocal=2): the engine must decompose and still match.
func TestDistributedFusedWideGateFallback(t *testing.T) {
	c := circuit.New(5)
	c.H(0).H(1).H(4).CCX(4, 1, 0).CX(3, 4)
	ref, _ := RunFused(c, nil, 1, rand.New(rand.NewSource(0)))
	defer ref.Release()
	amps := distStateOn(t, c, 8) // nLocal = 2 < CCX arity 3
	for i := range amps {
		if cmplx.Abs(amps[i]-ref.Amp[i]) > 1e-12 {
			t.Fatalf("amp[%d]: dist %v vs serial %v", i, amps[i], ref.Amp[i])
		}
	}
}

// TestDistributedExpectations checks both observable paths against the
// serial engine: general Pauli sums (basis-change + Allreduce) and diagonal
// basis-index energies, on every rank.
func TestDistributedExpectations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomCircuit(6, 40, rng)
	ham := &pauli.Hamiltonian{NQubits: 6}
	ham.Add(0.7, map[int]pauli.Op{0: pauli.X, 5: pauli.X})
	ham.Add(-1.3, map[int]pauli.Op{1: pauli.Y, 4: pauli.Z})
	ham.Add(0.4, map[int]pauli.Op{2: pauli.Z, 3: pauli.Y, 5: pauli.Y})
	ham.Add(2.1, map[int]pauli.Op{4: pauli.X})
	ham.Add(-0.5, map[int]pauli.Op{0: pauli.Z})
	diag := func(idx int) float64 { return float64(idx%7) - 3 }

	ref, _ := RunFused(c, nil, 1, rand.New(rand.NewSource(0)))
	wantHam := ref.ExpectationHamiltonian(ham)
	wantDiag := ref.ExpectationDiagonal(diag)
	ref.Release()

	for _, p := range []int{1, 2, 4, 8} {
		w := mpi.NewWorld(p)
		err := w.Run(func(comm *mpi.Comm) error {
			_, ev, err := RunDistributedCircuit(comm, c, nil, 16, 9, DistObs{Ham: ham}, 1)
			if err != nil {
				return err
			}
			if ev == nil || math.Abs(*ev-wantHam) > 1e-12 {
				t.Errorf("p=%d rank %d: <H> = %v, want %g", p, comm.Rank(), ev, wantHam)
			}
			_, ev, err = RunDistributedCircuit(comm, c, nil, 16, 9, DistObs{Diag: diag}, 1)
			if err != nil {
				return err
			}
			if ev == nil || math.Abs(*ev-wantDiag) > 1e-12 {
				t.Errorf("p=%d rank %d: diag <H> = %v, want %g", p, comm.Rank(), ev, wantDiag)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedBatchMatchesPerElement runs K bindings through the
// persistent-world batch path and checks each element against an
// independent single execution with the same seed.
func TestDistributedBatchMatchesPerElement(t *testing.T) {
	ansatz := circuit.New(5)
	for q := 0; q < 5; q++ {
		ansatz.H(q)
	}
	for q := 0; q+1 < 5; q++ {
		ansatz.RZZ(q, q+1, circuit.Sym("gamma", 1))
	}
	for q := 0; q < 5; q++ {
		ansatz.RX(q, circuit.Sym("beta", 1))
	}
	bindings := []map[string]float64{
		{"gamma": 0.3, "beta": 0.9},
		{"gamma": 1.1, "beta": 0.2},
		{"gamma": -0.4, "beta": 1.7},
	}
	seeds := []int64{101, 102, 103}
	diag := func(idx int) float64 { return float64(idx & 3) }

	w := mpi.NewWorld(4)
	batch, err := RunDistributedBatch(w, DistBatch{
		Circuit:  ansatz,
		Bindings: bindings,
		Shots:    500,
		Seeds:    seeds,
		Obs:      DistObs{Diag: diag},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(bindings) {
		t.Fatalf("got %d results, want %d", len(batch), len(bindings))
	}
	for i, b := range bindings {
		bound := ansatz.Bind(b)
		w2 := mpi.NewWorld(4)
		var counts map[string]int
		var ev *float64
		err := w2.Run(func(comm *mpi.Comm) error {
			got, e, err := RunDistributedCircuit(comm, bound, nil, 500, seeds[i], DistObs{Diag: diag}, 1)
			if comm.Rank() == 0 {
				counts, ev = got, e
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Counts, counts) {
			t.Fatalf("element %d counts differ: batch %v vs single %v", i, batch[i].Counts, counts)
		}
		if batch[i].ExpVal == nil || ev == nil || math.Abs(*batch[i].ExpVal-*ev) > 1e-12 {
			t.Fatalf("element %d expval: batch %v vs single %v", i, batch[i].ExpVal, ev)
		}
	}
}

// TestDistributedSamplingDeterministic: identical seeds give identical
// rank-0 histograms run-to-run, and non-root ranks return nil counts.
func TestDistributedSamplingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := randomCircuit(6, 30, rng)
	sample := func() map[string]int {
		w := mpi.NewWorld(4)
		var counts map[string]int
		err := w.Run(func(comm *mpi.Comm) error {
			got, err := RunDistributed(comm, c, 800, 77)
			if comm.Rank() == 0 {
				counts = got
			} else if got != nil {
				t.Errorf("rank %d returned counts", comm.Rank())
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}
	a, b := sample(), sample()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sampling not deterministic: %v vs %v", a, b)
	}
}

// TestDistributedValidationErrors exercises each rejection path of the
// distributed entry points with its dedicated message.
func TestDistributedValidationErrors(t *testing.T) {
	bound := circuit.New(2)
	bound.H(0)

	t.Run("non-power-of-two world", func(t *testing.T) {
		w := mpi.NewWorld(3)
		err := w.Run(func(comm *mpi.Comm) error {
			_, err := RunDistributed(comm, bound, 16, 1)
			if err == nil || !strings.Contains(err.Error(), "not a power of two") {
				t.Errorf("got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ranks exceed amplitudes", func(t *testing.T) {
		w := mpi.NewWorld(8)
		err := w.Run(func(comm *mpi.Comm) error {
			_, err := RunDistributed(comm, bound, 16, 1)
			if err == nil || !strings.Contains(err.Error(), "exceed the 2^2 amplitudes") {
				t.Errorf("got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("unbound parameters", func(t *testing.T) {
		c := circuit.New(3)
		c.RX(0, circuit.Sym("theta", 1))
		w := mpi.NewWorld(2)
		err := w.Run(func(comm *mpi.Comm) error {
			_, err := RunDistributed(comm, c, 16, 1)
			if err == nil || !strings.Contains(err.Error(), "unbound parameters [theta]") {
				t.Errorf("got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("shard exceeds amplitude arena", func(t *testing.T) {
		c := circuit.New(33)
		c.H(0)
		w := mpi.NewWorld(2) // nLocal = 32 > the 30-qubit arena bound
		err := w.Run(func(comm *mpi.Comm) error {
			_, err := RunDistributed(comm, c, 16, 1)
			if err == nil || !strings.Contains(err.Error(), "amplitude arena") {
				t.Errorf("got %v", err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("batch seed mismatch", func(t *testing.T) {
		w := mpi.NewWorld(2)
		_, err := RunDistributedBatch(w, DistBatch{
			Circuit:  bound,
			Bindings: []map[string]float64{{}, {}},
			Seeds:    []int64{1},
		})
		if err == nil || !strings.Contains(err.Error(), "seeds for") {
			t.Errorf("got %v", err)
		}
	})

	t.Run("batch unbound element", func(t *testing.T) {
		c := circuit.New(3)
		c.RX(0, circuit.Sym("theta", 1)).RY(1, circuit.Sym("phi", 1))
		w := mpi.NewWorld(2)
		_, err := RunDistributedBatch(w, DistBatch{
			Circuit:  c,
			Bindings: []map[string]float64{{"theta": 0.5}},
		})
		if err == nil || !strings.Contains(err.Error(), "unbound") {
			t.Errorf("got %v", err)
		}
	})
}

// TestDistributedMaxRankDegradation: with as many ranks as amplitudes
// (nLocal = 0) no dense gate can become shard-resident, so the engine must
// degrade to the per-gate exchange path and still match the serial state.
func TestDistributedMaxRankDegradation(t *testing.T) {
	c := circuit.New(3)
	c.H(0).CX(0, 1).RX(2, circuit.Bound(0.7)).CZ(1, 2)
	ref, _ := RunFused(c, nil, 1, rand.New(rand.NewSource(0)))
	defer ref.Release()
	for _, p := range []int{4, 8} {
		amps := distStateOn(t, c, p)
		for i := range amps {
			if cmplx.Abs(amps[i]-ref.Amp[i]) > 1e-12 {
				t.Fatalf("p=%d amp[%d]: dist %v vs serial %v", p, i, amps[i], ref.Amp[i])
			}
		}
	}
}

// TestDistributedPerGateStillAgrees keeps the retained per-gate baseline
// honest: its sampled frequencies match the serial engine.
func TestDistributedPerGateStillAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := randomCircuit(6, 35, rng)
	shots := 6000
	serial := Simulate(c, shots, 1, rand.New(rand.NewSource(1)))
	for _, p := range []int{2, 4} {
		w := mpi.NewWorld(p)
		var counts map[string]int
		err := w.Run(func(comm *mpi.Comm) error {
			got, err := RunDistributedPerGate(comm, c, shots, 55)
			if comm.Rank() == 0 {
				counts = got
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := range serial {
			fa := float64(serial[k]) / float64(shots)
			fb := float64(counts[k]) / float64(shots)
			if math.Abs(fa-fb) > 0.05 {
				t.Fatalf("p=%d key %s: serial %.3f vs per-gate %.3f", p, k, fa, fb)
			}
		}
	}
}

// TestDistributedFusedFewerBytes verifies the communication-avoidance claim
// at engine level: the fused stage engine moves fewer modelled bytes than
// the per-gate baseline on a mixer-heavy circuit.
func TestDistributedFusedFewerBytes(t *testing.T) {
	c := circuit.New(8)
	for q := 0; q < 8; q++ {
		c.H(q)
	}
	for rep := 0; rep < 2; rep++ {
		for q := 0; q+1 < 8; q++ {
			c.RZZ(q, q+1, circuit.Bound(0.4))
		}
		for q := 0; q < 8; q++ {
			c.RX(q, circuit.Bound(0.8))
		}
	}
	run := func(perGate bool) int64 {
		w := mpi.NewWorld(4)
		err := w.Run(func(comm *mpi.Comm) error {
			var err error
			if perGate {
				_, err = RunDistributedPerGate(comm, c, 32, 1)
			} else {
				_, err = RunDistributed(comm, c, 32, 1)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.BytesSent()
	}
	fused, gate := run(false), run(true)
	if fused >= gate {
		t.Fatalf("fused path sent %d bytes, per-gate %d — fusion should communicate less", fused, gate)
	}
	t.Logf("bytes: fused=%d per-gate=%d (%.1fx less)", fused, gate, float64(gate)/float64(fused))
}
