// Package statevec implements a full state-vector quantum circuit simulator
// with three execution modes used by different backends in the framework:
//
//   - serial: one goroutine (Qiskit-Aer-statevector single-core analog),
//   - chunked: the amplitude loops are split across worker goroutines
//     (Aer "chunking" / NWQ-Sim OpenMP analog),
//   - distributed (see dist.go): amplitudes partitioned across MPI-style
//     ranks with pair exchange for high-order qubits (NWQ-Sim MPI analog).
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"sync"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
	"qfw/internal/pauli"
)

// State is a dense state vector on N qubits. Qubit q maps to bit q of the
// amplitude index (qubit 0 = least-significant bit). Workers controls how
// many goroutines the gate kernels use (<=1 means serial).
type State struct {
	N       int
	Amp     []complex128
	Workers int
}

// NewState returns |0...0> on n qubits.
func NewState(n int) *State {
	if n < 1 || n > 30 {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n)), Workers: 1}
	s.Amp[0] = 1
	return s
}

// Copy returns a deep copy of the state.
func (s *State) Copy() *State {
	out := &State{N: s.N, Amp: make([]complex128, len(s.Amp)), Workers: s.Workers}
	copy(out.Amp, s.Amp)
	return out
}

// Norm returns the 2-norm of the state (should be 1 for valid states).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// InnerProduct returns <s|o>.
func (s *State) InnerProduct(o *State) complex128 {
	if s.N != o.N {
		panic("statevec: inner product dimension mismatch")
	}
	var acc complex128
	for i, a := range s.Amp {
		acc += cmplx.Conj(a) * o.Amp[i]
	}
	return acc
}

// parallelFor splits [0, n) into contiguous chunks across the state's workers.
func (s *State) parallelFor(n int, body func(start, end int)) {
	w := s.Workers
	if w <= 1 || n < 1<<12 {
		body(0, n)
		return
	}
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			body(a, b)
		}(start, end)
	}
	wg.Wait()
}

// insertZeroBit expands compressed index j by inserting a 0 at bit position q.
func insertZeroBit(j, q int) int {
	mask := (1 << uint(q)) - 1
	return ((j &^ mask) << 1) | (j & mask)
}

// Apply1Q applies a 2x2 matrix to qubit q.
func (s *State) Apply1Q(m [2][2]complex128, q int) {
	half := len(s.Amp) >> 1
	bit := 1 << uint(q)
	s.parallelFor(half, func(start, end int) {
		for j := start; j < end; j++ {
			i0 := insertZeroBit(j, q)
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = m[0][0]*a0 + m[0][1]*a1
			s.Amp[i1] = m[1][0]*a0 + m[1][1]*a1
		}
	})
}

// ApplyControlled1Q applies a 2x2 matrix to the target qubit when every
// control qubit is 1.
func (s *State) ApplyControlled1Q(m [2][2]complex128, controls []int, target int) {
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	bit := 1 << uint(target)
	half := len(s.Amp) >> 1
	s.parallelFor(half, func(start, end int) {
		for j := start; j < end; j++ {
			i0 := insertZeroBit(j, target)
			if i0&cmask != cmask {
				continue
			}
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = m[0][0]*a0 + m[0][1]*a1
			s.Amp[i1] = m[1][0]*a0 + m[1][1]*a1
		}
	})
}

// ApplySwap exchanges qubits a and b, optionally under controls.
func (s *State) ApplySwap(a, b int, controls []int) {
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	abit, bbit := 1<<uint(a), 1<<uint(b)
	n := len(s.Amp)
	s.parallelFor(n, func(start, end int) {
		for i := start; i < end; i++ {
			// Act once per (0,1) pair: pick representatives with a-bit=0, b-bit=1.
			if i&abit != 0 || i&bbit == 0 {
				continue
			}
			if i&cmask != cmask {
				continue
			}
			jj := (i | abit) &^ bbit
			s.Amp[i], s.Amp[jj] = s.Amp[jj], s.Amp[i]
		}
	})
}

// ApplyRZZ multiplies amplitudes by exp(∓iθ/2) according to the parity of
// qubits a and b — a fast diagonal path used heavily by TFIM/QAOA circuits.
func (s *State) ApplyRZZ(a, b int, theta float64) {
	em := cmplx.Exp(complex(0, -theta/2))
	ep := cmplx.Exp(complex(0, theta/2))
	abit, bbit := 1<<uint(a), 1<<uint(b)
	s.parallelFor(len(s.Amp), func(start, end int) {
		for i := start; i < end; i++ {
			if ((i&abit != 0) != (i&bbit != 0)) == false {
				s.Amp[i] *= em // even parity
			} else {
				s.Amp[i] *= ep // odd parity
			}
		}
	})
}

// Apply2QDense applies a 4x4 matrix to qubits (hi, lo), where hi is the more
// significant qubit in the matrix basis |hi lo>.
func (s *State) Apply2QDense(m *linalg.Matrix, hi, lo int) {
	if m.Rows != 4 || m.Cols != 4 {
		panic("statevec: Apply2QDense needs a 4x4 matrix")
	}
	hbit, lbit := 1<<uint(hi), 1<<uint(lo)
	quarter := len(s.Amp) >> 2
	qa, qb := hi, lo
	if qa < qb {
		qa, qb = qb, qa // qa is the higher bit position
	}
	s.parallelFor(quarter, func(start, end int) {
		var idx [4]int
		var amp [4]complex128
		for j := start; j < end; j++ {
			base := insertZeroBit(insertZeroBit(j, qb), qa)
			idx[0] = base
			idx[1] = base | lbit
			idx[2] = base | hbit
			idx[3] = base | hbit | lbit
			for k := 0; k < 4; k++ {
				amp[k] = s.Amp[idx[k]]
			}
			for r := 0; r < 4; r++ {
				var acc complex128
				for c := 0; c < 4; c++ {
					acc += m.At(r, c) * amp[c]
				}
				s.Amp[idx[r]] = acc
			}
		}
	})
}

// ApplyUnitary applies a dense 2^k x 2^k unitary to the listed qubits, where
// qs[0] is the most significant qubit of the matrix basis.
func (s *State) ApplyUnitary(m *linalg.Matrix, qs []int) {
	k := len(qs)
	dim := 1 << uint(k)
	if m.Rows != dim || m.Cols != dim {
		panic("statevec: ApplyUnitary dimension mismatch")
	}
	// Sorted copy for compressed-index expansion.
	sorted := append([]int(nil), qs...)
	sort.Ints(sorted)
	outer := len(s.Amp) >> uint(k)
	s.parallelFor(outer, func(start, end int) {
		idx := make([]int, dim)
		amp := make([]complex128, dim)
		for j := start; j < end; j++ {
			base := j
			for _, q := range sorted {
				base = insertZeroBit(base, q)
			}
			for v := 0; v < dim; v++ {
				// Bit (k-1-t) of v corresponds to qs[t] (qs[0] most significant).
				off := 0
				for t := 0; t < k; t++ {
					if v&(1<<uint(k-1-t)) != 0 {
						off |= 1 << uint(qs[t])
					}
				}
				idx[v] = base | off
				amp[v] = s.Amp[idx[v]]
			}
			for r := 0; r < dim; r++ {
				var acc complex128
				row := m.Data[r*dim : (r+1)*dim]
				for c := 0; c < dim; c++ {
					acc += row[c] * amp[c]
				}
				s.Amp[idx[r]] = acc
			}
		}
	})
}

// Probabilities returns |amp|^2 for every basis state.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.Amp))
	for i, a := range s.Amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// MeasureQubit performs a projective measurement of qubit q, collapsing the
// state, and returns the outcome.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	bit := 1 << uint(q)
	var p1 float64
	for i, a := range s.Amp {
		if i&bit != 0 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	var norm float64
	if outcome == 1 {
		norm = math.Sqrt(p1)
	} else {
		norm = math.Sqrt(1 - p1)
	}
	if norm == 0 {
		norm = 1
	}
	inv := complex(1/norm, 0)
	for i := range s.Amp {
		if (i&bit != 0) == (outcome == 1) {
			s.Amp[i] *= inv
		} else {
			s.Amp[i] = 0
		}
	}
	return outcome
}

// SampleCounts draws shots samples from the final state distribution and
// returns a histogram keyed by bitstring (qubit 0 is the rightmost char).
func (s *State) SampleCounts(shots int, rng *rand.Rand) map[string]int {
	cum := make([]float64, len(s.Amp))
	var acc float64
	for i, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = acc
	}
	counts := make(map[string]int)
	for k := 0; k < shots; k++ {
		r := rng.Float64() * acc
		idx := sort.SearchFloat64s(cum, r)
		if idx >= len(cum) {
			idx = len(cum) - 1
		}
		counts[FormatBits(idx, s.N)]++
	}
	return counts
}

// FormatBits renders basis index i on n qubits with qubit 0 rightmost,
// matching Qiskit's bitstring convention.
func FormatBits(i, n int) string {
	b := make([]byte, n)
	for q := 0; q < n; q++ {
		if i&(1<<uint(q)) != 0 {
			b[n-1-q] = '1'
		} else {
			b[n-1-q] = '0'
		}
	}
	return string(b)
}

// ParseBits inverts FormatBits.
func ParseBits(s string) int {
	idx := 0
	n := len(s)
	for q := 0; q < n; q++ {
		if s[n-1-q] == '1' {
			idx |= 1 << uint(q)
		}
	}
	return idx
}

// ExpectationDiagonal returns sum_i |amp_i|^2 f(i) for a diagonal
// observable given as a basis-index energy function — the fast path QAOA
// uses for Ising cost operators.
func (s *State) ExpectationDiagonal(f func(idx int) float64) float64 {
	var acc float64
	for i, a := range s.Amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			acc += p * f(i)
		}
	}
	return acc
}

// ExpectationPauliString returns <s| P |s> for one Pauli string.
func (s *State) ExpectationPauliString(p pauli.String) float64 {
	// Apply P to a copy and take the inner product.
	t := s.Copy()
	t.Workers = 1
	for q, op := range p.Ops {
		switch op {
		case pauli.X:
			t.Apply1Q(circuit.Matrix1Q(circuit.KindX, 0), q)
		case pauli.Y:
			t.Apply1Q(circuit.Matrix1Q(circuit.KindY, 0), q)
		case pauli.Z:
			t.Apply1Q(circuit.Matrix1Q(circuit.KindZ, 0), q)
		}
	}
	return p.Coeff * real(s.InnerProduct(t))
}

// ExpectationHamiltonian returns <s| H |s>.
func (s *State) ExpectationHamiltonian(h *pauli.Hamiltonian) float64 {
	var e float64
	for _, t := range h.Terms {
		e += s.ExpectationPauliString(t)
	}
	return e
}
