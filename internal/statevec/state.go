// Package statevec implements a full state-vector quantum circuit simulator
// with three execution modes used by different backends in the framework:
//
//   - serial: one goroutine (Qiskit-Aer-statevector single-core analog),
//   - chunked: the amplitude loops are split across worker goroutines
//     (Aer "chunking" / NWQ-Sim OpenMP analog),
//   - distributed (see dist.go): amplitudes partitioned across MPI-style
//     ranks with pair exchange for high-order qubits (NWQ-Sim MPI analog).
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
	"qfw/internal/pauli"
)

// State is a dense state vector on N qubits. Qubit q maps to bit q of the
// amplitude index (qubit 0 = least-significant bit). Workers controls how
// many goroutines the gate kernels use (<=1 means serial).
type State struct {
	N       int
	Amp     []complex128
	Workers int
}

// NewState returns |0...0> on n qubits. The amplitude buffer comes from the
// shared arena; call Release when the state is no longer needed to recycle
// it (optional — see Release).
func NewState(n int) *State {
	if n < 1 || n > 30 {
		panic(fmt.Sprintf("statevec: unsupported qubit count %d", n))
	}
	buf := getAmpBuf(n)
	clear(buf)
	buf[0] = 1
	return &State{N: n, Amp: buf, Workers: 1}
}

// Copy returns a deep copy of the state.
func (s *State) Copy() *State {
	out := &State{N: s.N, Amp: make([]complex128, len(s.Amp)), Workers: s.Workers}
	copy(out.Amp, s.Amp)
	return out
}

// Norm returns the 2-norm of the state (should be 1 for valid states).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// InnerProduct returns <s|o>.
func (s *State) InnerProduct(o *State) complex128 {
	if s.N != o.N {
		panic("statevec: inner product dimension mismatch")
	}
	var acc complex128
	for i, a := range s.Amp {
		acc += cmplx.Conj(a) * o.Amp[i]
	}
	return acc
}

// insertZeroBit expands compressed index j by inserting a 0 at bit position q.
func insertZeroBit(j, q int) int {
	mask := (1 << uint(q)) - 1
	return ((j &^ mask) << 1) | (j & mask)
}

// Apply1Q applies a 2x2 matrix to qubit q.
func (s *State) Apply1Q(m [2][2]complex128, q int) {
	half := len(s.Amp) >> 1
	bit := 1 << uint(q)
	s.parallelFor(half, func(start, end int) {
		for j := start; j < end; j++ {
			i0 := insertZeroBit(j, q)
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = m[0][0]*a0 + m[0][1]*a1
			s.Amp[i1] = m[1][0]*a0 + m[1][1]*a1
		}
	})
}

// ApplyControlled1Q applies a 2x2 matrix to the target qubit when every
// control qubit is 1. The iteration is compressed: only the 2^(n-1-#controls)
// amplitude pairs whose controls are satisfied are enumerated, instead of
// scanning the full range and skipping non-matching indices.
func (s *State) ApplyControlled1Q(m [2][2]complex128, controls []int, target int) {
	ps := make([]int, 0, len(controls)+1)
	ps = append(ps, controls...)
	ps = append(ps, target)
	sort.Ints(ps)
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	bit := 1 << uint(target)
	outer := len(s.Amp) >> uint(len(ps))
	s.parallelFor(outer, func(start, end int) {
		for j := start; j < end; j++ {
			base := j
			for _, p := range ps {
				base = insertZeroBit(base, p)
			}
			i0 := base | cmask
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = m[0][0]*a0 + m[0][1]*a1
			s.Amp[i1] = m[1][0]*a0 + m[1][1]*a1
		}
	})
}

// ApplySwap exchanges qubits a and b, optionally under controls. Like
// ApplyControlled1Q, the iteration enumerates exactly the amplitude pairs
// that move: 2^(n-2-#controls) swaps, no skipped indices.
func (s *State) ApplySwap(a, b int, controls []int) {
	ps := make([]int, 0, len(controls)+2)
	ps = append(ps, a, b)
	ps = append(ps, controls...)
	sort.Ints(ps)
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	abit, bbit := 1<<uint(a), 1<<uint(b)
	outer := len(s.Amp) >> uint(len(ps))
	s.parallelFor(outer, func(start, end int) {
		for j := start; j < end; j++ {
			base := j
			for _, p := range ps {
				base = insertZeroBit(base, p)
			}
			// Representatives: a-bit=0 b-bit=1 swaps with a-bit=1 b-bit=0.
			i := base | bbit | cmask
			jj := base | abit | cmask
			s.Amp[i], s.Amp[jj] = s.Amp[jj], s.Amp[i]
		}
	})
}

// ApplyDiag1Q multiplies amplitudes by d0 or d1 according to the value of
// qubit q — the branch-free diagonal path (Z, S, T, RZ, P and fused
// diagonal blocks).
func (s *State) ApplyDiag1Q(d0, d1 complex128, q int) {
	d := [2]complex128{d0, d1}
	s.parallelFor(len(s.Amp), func(start, end int) {
		for i := start; i < end; i++ {
			s.Amp[i] *= d[(i>>uint(q))&1]
		}
	})
}

// ApplyPerm1Q applies an antidiagonal 2x2 [[0, m01], [m10, 0]] to qubit q —
// the phased pair-swap path (X, Y and fused antidiagonal blocks).
func (s *State) ApplyPerm1Q(m01, m10 complex128, q int) {
	half := len(s.Amp) >> 1
	bit := 1 << uint(q)
	s.parallelFor(half, func(start, end int) {
		for j := start; j < end; j++ {
			i0 := insertZeroBit(j, q)
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = m01 * a1
			s.Amp[i1] = m10 * a0
		}
	})
}

// ApplyH applies a Hadamard to qubit q with the dedicated add/sub kernel.
func (s *State) ApplyH(q int) {
	const inv = complex(1/math.Sqrt2, 0)
	half := len(s.Amp) >> 1
	bit := 1 << uint(q)
	s.parallelFor(half, func(start, end int) {
		for j := start; j < end; j++ {
			i0 := insertZeroBit(j, q)
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = inv * (a0 + a1)
			s.Amp[i1] = inv * (a0 - a1)
		}
	})
}

// spanTerm is a two-qubit diagonal factor crossing the low/high table split
// that could not be decomposed into table entries (degenerate zero factor).
type spanTerm struct {
	a, b uint8 // shift amounts; a >= split > b
	d    [4]complex128
}

// ApplyRXPair applies two independent RX-form rotations — a = (aC0, aV0,
// aV1, aC1) on qubit qa and b likewise on qubit qb — in a single sweep of
// in-register two-stage butterflies: the same floating-point work as two
// ApplyRXLike passes with half the memory traffic.
func (s *State) ApplyRXPair(a, b [4]float64, qa, qb int) {
	aC0, aV0, aV1, aC1 := a[0], a[1], a[2], a[3]
	bC0, bV0, bV1, bC1 := b[0], b[1], b[2], b[3]
	abit, bbit := 1<<uint(qa), 1<<uint(qb)
	hi, lo := qa, qb
	if hi < lo {
		hi, lo = lo, hi
	}
	quarter := len(s.Amp) >> 2
	s.parallelFor(quarter, func(start, end int) {
		for j := start; j < end; j++ {
			base := insertZeroBit(insertZeroBit(j, lo), hi)
			i1 := base | bbit
			i2 := base | abit
			i3 := base | abit | bbit
			a0, a1, a2, a3 := s.Amp[base], s.Amp[i1], s.Amp[i2], s.Amp[i3]
			// Stage 1: rotation b within each qa-half.
			t0 := complex(bC0*real(a0)-bV0*imag(a1), bC0*imag(a0)+bV0*real(a1))
			t1 := complex(bC1*real(a1)-bV1*imag(a0), bC1*imag(a1)+bV1*real(a0))
			t2 := complex(bC0*real(a2)-bV0*imag(a3), bC0*imag(a2)+bV0*real(a3))
			t3 := complex(bC1*real(a3)-bV1*imag(a2), bC1*imag(a3)+bV1*real(a2))
			// Stage 2: rotation a across the halves.
			s.Amp[base] = complex(aC0*real(t0)-aV0*imag(t2), aC0*imag(t0)+aV0*real(t2))
			s.Amp[i2] = complex(aC1*real(t2)-aV1*imag(t0), aC1*imag(t2)+aV1*real(t0))
			s.Amp[i1] = complex(aC0*real(t1)-aV0*imag(t3), aC0*imag(t1)+aV0*real(t3))
			s.Amp[i3] = complex(aC1*real(t3)-aV1*imag(t1), aC1*imag(t3)+aV1*real(t1))
		}
	})
}

// ApplyDiagTerms applies a combined diagonal run — the product of every
// single-qubit and two-qubit diagonal factor — in one pass over the
// amplitudes. A QAOA/TFIM cost layer of E RZZ gates costs one memory sweep
// instead of E.
//
// The factor function f(i) is evaluated through precomputed tables. Qubits
// are cut into low/high halves; terms entirely inside a half fold into that
// half's table. A term crossing the cut with factors D(a,b) decomposes as
// S·H^a·L^b·C^(a·b): the separable parts join the tables and only the cross
// factor survives, folded into a per-high-qubit table T_a[low] applied only
// on blocks whose high bit a is set. The sweep then costs 2 + (set high
// span bits) multiplies per amplitude, all from contiguous tables — far
// under the one-multiply-per-gate-per-amplitude of unfused execution.
func (s *State) ApplyDiagTerms(d1 []circuit.DiagTerm1, d2 []circuit.DiagTerm2) {
	if len(d1) == 0 && len(d2) == 0 {
		return
	}
	n := s.N
	split := n - 6
	if split < 1 {
		split = 1
	}
	if split > 14 {
		split = 14
	}
	lowBits := split
	highBits := n - split
	lowTab := getAmpBuf(lowBits)
	highTab := getAmpBuf(highBits)
	for i := range lowTab {
		lowTab[i] = 1
	}
	for i := range highTab {
		highTab[i] = 1
	}
	cross := make([][]complex128, highBits) // per-high-qubit C^(low bit) tables
	var direct []spanTerm
	for _, t := range d1 {
		if t.Q < split {
			for j := range lowTab {
				lowTab[j] *= t.D[(j>>uint(t.Q))&1]
			}
		} else {
			q := t.Q - split
			for j := range highTab {
				highTab[j] *= t.D[(j>>uint(q))&1]
			}
		}
	}
	for _, t := range d2 {
		a, b := t.A, t.B
		if a < b {
			// Normalize to a > b; swapping the qubits swaps the mixed entries.
			a, b = b, a
			t.D[1], t.D[2] = t.D[2], t.D[1]
		}
		switch {
		case a < split:
			for j := range lowTab {
				lowTab[j] *= t.D[((j>>uint(a))&1)<<1|((j>>uint(b))&1)]
			}
		case b >= split:
			ah, bh := a-split, b-split
			for j := range highTab {
				highTab[j] *= t.D[((j>>uint(ah))&1)<<1|((j>>uint(bh))&1)]
			}
		default:
			d00, d01, d10, d11 := t.D[0], t.D[1], t.D[2], t.D[3]
			if d00 == 0 || d01 == 0 || d10 == 0 {
				// Non-invertible factor (never produced by unitary gates):
				// keep the raw per-amplitude form.
				direct = append(direct, spanTerm{a: uint8(a), b: uint8(b), d: t.D})
				continue
			}
			lo := d01 / d00 // low separable part, on bit b
			hi := d10 / d00 // high separable part (scaled by d00), on bit a
			cf := (d00 * d11) / (d01 * d10)
			for j := range lowTab {
				if (j>>uint(b))&1 == 1 {
					lowTab[j] *= lo
				}
			}
			ah := a - split
			for j := range highTab {
				if (j>>uint(ah))&1 == 1 {
					highTab[j] *= d00 * hi
				} else {
					highTab[j] *= d00
				}
			}
			if cross[ah] == nil {
				cross[ah] = getAmpBuf(lowBits)
				for j := range cross[ah] {
					cross[ah][j] = 1
				}
			}
			for j := range cross[ah] {
				if (j>>uint(b))&1 == 1 {
					cross[ah][j] *= cf
				}
			}
		}
	}
	lmask := (1 << uint(lowBits)) - 1
	s.parallelFor(len(s.Amp), func(start, end int) {
		acts := make([][]complex128, 0, highBits)
		for i := start; i < end; {
			h := i >> uint(lowBits)
			blockEnd := (h + 1) << uint(lowBits)
			if blockEnd > end {
				blockEnd = end
			}
			fh := highTab[h]
			acts = acts[:0]
			for a := 0; a < highBits; a++ {
				if cross[a] != nil && (h>>uint(a))&1 == 1 {
					acts = append(acts, cross[a])
				}
			}
			j := i & lmask
			switch len(acts) {
			case 0:
				for ; i < blockEnd; i, j = i+1, j+1 {
					s.Amp[i] *= fh * lowTab[j]
				}
			case 1:
				t0 := acts[0]
				for ; i < blockEnd; i, j = i+1, j+1 {
					s.Amp[i] *= fh * (lowTab[j] * t0[j])
				}
			case 2:
				t0, t1 := acts[0], acts[1]
				for ; i < blockEnd; i, j = i+1, j+1 {
					s.Amp[i] *= (fh * (lowTab[j] * t0[j])) * t1[j]
				}
			default:
				for ; i < blockEnd; i, j = i+1, j+1 {
					f := fh * lowTab[j]
					for _, t := range acts {
						f *= t[j]
					}
					s.Amp[i] *= f
				}
			}
		}
	})
	if len(direct) > 0 {
		s.parallelFor(len(s.Amp), func(start, end int) {
			for i := start; i < end; i++ {
				f := complex(1, 0)
				for t := range direct {
					st := &direct[t]
					f *= st.d[((i>>st.a)&1)<<1|((i>>st.b)&1)]
				}
				s.Amp[i] *= f
			}
		})
	}
	for _, c := range cross {
		if c != nil {
			putAmpBuf(lowBits, c)
		}
	}
	putAmpBuf(lowBits, lowTab)
	putAmpBuf(highBits, highTab)
}

// ApplyPerm2Q applies a phased permutation 4x4 (fused CX/SWAP-style blocks)
// to qubits (hi, lo) without a matmul: each quad is gathered, permuted, and
// phased.
func (s *State) ApplyPerm2Q(perm [4]uint8, phase [4]complex128, hi, lo int) {
	hbit, lbit := 1<<uint(hi), 1<<uint(lo)
	quarter := len(s.Amp) >> 2
	qa, qb := hi, lo
	if qa < qb {
		qa, qb = qb, qa
	}
	s.parallelFor(quarter, func(start, end int) {
		var idx [4]int
		var amp [4]complex128
		for j := start; j < end; j++ {
			base := insertZeroBit(insertZeroBit(j, qb), qa)
			idx[0] = base
			idx[1] = base | lbit
			idx[2] = base | hbit
			idx[3] = base | hbit | lbit
			for k := 0; k < 4; k++ {
				amp[k] = s.Amp[idx[k]]
			}
			for r := 0; r < 4; r++ {
				s.Amp[idx[r]] = phase[r] * amp[perm[r]]
			}
		}
	})
}

// ApplyRZZ multiplies amplitudes by exp(∓iθ/2) according to the parity of
// qubits a and b — a fast diagonal path used heavily by TFIM/QAOA circuits.
func (s *State) ApplyRZZ(a, b int, theta float64) {
	em := cmplx.Exp(complex(0, -theta/2))
	ep := cmplx.Exp(complex(0, theta/2))
	abit, bbit := 1<<uint(a), 1<<uint(b)
	s.parallelFor(len(s.Amp), func(start, end int) {
		for i := start; i < end; i++ {
			if ((i&abit != 0) != (i&bbit != 0)) == false {
				s.Amp[i] *= em // even parity
			} else {
				s.Amp[i] *= ep // odd parity
			}
		}
	})
}

// Apply2QDense applies a 4x4 matrix to qubits (hi, lo), where hi is the more
// significant qubit in the matrix basis |hi lo>. The matrix is hoisted into
// locals and the 4x4 product fully unrolled, so the inner loop carries no
// bounds checks or indirect loads.
func (s *State) Apply2QDense(m *linalg.Matrix, hi, lo int) {
	if m.Rows != 4 || m.Cols != 4 {
		panic("statevec: Apply2QDense needs a 4x4 matrix")
	}
	m00, m01, m02, m03 := m.Data[0], m.Data[1], m.Data[2], m.Data[3]
	m10, m11, m12, m13 := m.Data[4], m.Data[5], m.Data[6], m.Data[7]
	m20, m21, m22, m23 := m.Data[8], m.Data[9], m.Data[10], m.Data[11]
	m30, m31, m32, m33 := m.Data[12], m.Data[13], m.Data[14], m.Data[15]
	hbit, lbit := 1<<uint(hi), 1<<uint(lo)
	quarter := len(s.Amp) >> 2
	qa, qb := hi, lo
	if qa < qb {
		qa, qb = qb, qa // qa is the higher bit position
	}
	s.parallelFor(quarter, func(start, end int) {
		for j := start; j < end; j++ {
			base := insertZeroBit(insertZeroBit(j, qb), qa)
			i1 := base | lbit
			i2 := base | hbit
			i3 := i2 | lbit
			a0, a1, a2, a3 := s.Amp[base], s.Amp[i1], s.Amp[i2], s.Amp[i3]
			s.Amp[base] = m00*a0 + m01*a1 + m02*a2 + m03*a3
			s.Amp[i1] = m10*a0 + m11*a1 + m12*a2 + m13*a3
			s.Amp[i2] = m20*a0 + m21*a1 + m22*a2 + m23*a3
			s.Amp[i3] = m30*a0 + m31*a1 + m32*a2 + m33*a3
		}
	})
}

// ApplyReal1Q applies a 2x2 matrix with all-real entries (RY, H-like fused
// blocks) using half the floating-point work of the generic complex kernel.
func (s *State) ApplyReal1Q(r00, r01, r10, r11 float64, q int) {
	half := len(s.Amp) >> 1
	bit := 1 << uint(q)
	s.parallelFor(half, func(start, end int) {
		for j := start; j < end; j++ {
			i0 := insertZeroBit(j, q)
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = complex(r00*real(a0)+r01*real(a1), r00*imag(a0)+r01*imag(a1))
			s.Amp[i1] = complex(r10*real(a0)+r11*real(a1), r10*imag(a0)+r11*imag(a1))
		}
	})
}

// ApplyRXLike applies a matrix of the form [[c0, i·v0], [i·v1, c1]] with
// real c, v (RX rotations, SX, and fused blocks that keep the real-diagonal
// imaginary-offdiagonal form) — again half the floating-point work of the
// generic path.
func (s *State) ApplyRXLike(c0, v0, v1, c1 float64, q int) {
	half := len(s.Amp) >> 1
	bit := 1 << uint(q)
	s.parallelFor(half, func(start, end int) {
		for j := start; j < end; j++ {
			i0 := insertZeroBit(j, q)
			i1 := i0 | bit
			a0, a1 := s.Amp[i0], s.Amp[i1]
			s.Amp[i0] = complex(c0*real(a0)-v0*imag(a1), c0*imag(a0)+v0*real(a1))
			s.Amp[i1] = complex(c1*real(a1)-v1*imag(a0), c1*imag(a1)+v1*real(a0))
		}
	})
}

// ApplyUnitary applies a dense 2^k x 2^k unitary to the listed qubits, where
// qs[0] is the most significant qubit of the matrix basis.
func (s *State) ApplyUnitary(m *linalg.Matrix, qs []int) {
	k := len(qs)
	dim := 1 << uint(k)
	if m.Rows != dim || m.Cols != dim {
		panic("statevec: ApplyUnitary dimension mismatch")
	}
	// Sorted copy for compressed-index expansion.
	sorted := append([]int(nil), qs...)
	sort.Ints(sorted)
	outer := len(s.Amp) >> uint(k)
	s.parallelFor(outer, func(start, end int) {
		idx := make([]int, dim)
		amp := make([]complex128, dim)
		for j := start; j < end; j++ {
			base := j
			for _, q := range sorted {
				base = insertZeroBit(base, q)
			}
			for v := 0; v < dim; v++ {
				// Bit (k-1-t) of v corresponds to qs[t] (qs[0] most significant).
				off := 0
				for t := 0; t < k; t++ {
					if v&(1<<uint(k-1-t)) != 0 {
						off |= 1 << uint(qs[t])
					}
				}
				idx[v] = base | off
				amp[v] = s.Amp[idx[v]]
			}
			for r := 0; r < dim; r++ {
				var acc complex128
				row := m.Data[r*dim : (r+1)*dim]
				for c := 0; c < dim; c++ {
					acc += row[c] * amp[c]
				}
				s.Amp[idx[r]] = acc
			}
		}
	})
}

// Probabilities returns |amp|^2 for every basis state.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.Amp))
	for i, a := range s.Amp {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// MeasureQubit performs a projective measurement of qubit q, collapsing the
// state, and returns the outcome.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	bit := 1 << uint(q)
	var p1 float64
	for i, a := range s.Amp {
		if i&bit != 0 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	var norm float64
	if outcome == 1 {
		norm = math.Sqrt(p1)
	} else {
		norm = math.Sqrt(1 - p1)
	}
	if norm == 0 {
		norm = 1
	}
	inv := complex(1/norm, 0)
	for i := range s.Amp {
		if (i&bit != 0) == (outcome == 1) {
			s.Amp[i] *= inv
		} else {
			s.Amp[i] = 0
		}
	}
	return outcome
}

// FormatBits renders basis index i on n qubits with qubit 0 rightmost,
// matching Qiskit's bitstring convention.
func FormatBits(i, n int) string {
	b := make([]byte, n)
	for q := 0; q < n; q++ {
		if i&(1<<uint(q)) != 0 {
			b[n-1-q] = '1'
		} else {
			b[n-1-q] = '0'
		}
	}
	return string(b)
}

// ParseBits inverts FormatBits.
func ParseBits(s string) int {
	idx := 0
	n := len(s)
	for q := 0; q < n; q++ {
		if s[n-1-q] == '1' {
			idx |= 1 << uint(q)
		}
	}
	return idx
}

// ExpectationDiagonal returns sum_i |amp_i|^2 f(i) for a diagonal
// observable given as a basis-index energy function — the fast path QAOA
// uses for Ising cost operators.
func (s *State) ExpectationDiagonal(f func(idx int) float64) float64 {
	var acc float64
	for i, a := range s.Amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			acc += p * f(i)
		}
	}
	return acc
}

// applyPauliOps applies each non-identity operator of a Pauli string to the
// scratch state through the specialized permutation/diagonal kernels.
func applyPauliOps(t *State, ops []pauli.Op) {
	i := complex(0, 1)
	for q, op := range ops {
		switch op {
		case pauli.X:
			t.ApplyPerm1Q(1, 1, q)
		case pauli.Y:
			t.ApplyPerm1Q(-i, i, q)
		case pauli.Z:
			t.ApplyDiag1Q(1, -1, q)
		}
	}
}

// ExpectationPauliString returns <s| P |s> for one Pauli string.
func (s *State) ExpectationPauliString(p pauli.String) float64 {
	scratch := getAmpBuf(s.N)
	t := &State{N: s.N, Amp: scratch, Workers: s.Workers}
	copy(t.Amp, s.Amp)
	applyPauliOps(t, p.Ops)
	e := p.Coeff * real(s.InnerProduct(t))
	putAmpBuf(s.N, scratch)
	return e
}

// ExpectationHamiltonian returns <s| H |s>. One arena-backed scratch buffer
// is reused across every Pauli term, and the term application honors the
// state's worker count — the old path deep-copied the full state per term
// and forced the copy serial.
func (s *State) ExpectationHamiltonian(h *pauli.Hamiltonian) float64 {
	if len(h.Terms) == 0 {
		return 0
	}
	scratch := getAmpBuf(s.N)
	t := &State{N: s.N, Amp: scratch, Workers: s.Workers}
	var e float64
	for _, term := range h.Terms {
		copy(t.Amp, s.Amp)
		applyPauliOps(t, term.Ops)
		e += term.Coeff * real(s.InnerProduct(t))
	}
	putAmpBuf(s.N, scratch)
	return e
}
