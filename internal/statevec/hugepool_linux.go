//go:build linux

package statevec

// Huge-page backing for the large amplitude buffers. The inter-stage gather
// of the cache-blocked engine copies short scattered chunks across
// multi-hundred-MB arrays; with 4 KiB pages every chunk is a TLB miss and
// the copy is page-walk-bound, not bandwidth-bound (hardware prefetchers
// drop the line on a TLB miss, so software prefetch cannot hide it either).
// Linux in the default `madvise` THP mode only hands out 2 MiB pages to
// regions that ask, and the Go runtime does not ask — so buffers at or
// above hugeMinBytes are carved from dedicated anonymous mappings advised
// MADV_HUGEPAGE, turning a 64 MiB sweep from ~16k TLB entries into 32.
//
// Mappings are recycled through an explicit free list instead of sync.Pool:
// a dropped sync.Pool entry is garbage-collected, but a dropped mmap would
// stay mapped forever. The list keeps a few buffers per size class and
// munmaps the rest. QFW_HUGEPAGES=off disables the path (plain make()).

import (
	"os"
	"sync"
	"syscall"
	"unsafe"
)

const (
	hugePageBytes = 2 << 20
	hugeMinBytes  = 32 << 20
	hugeKeepPer   = 6 // free buffers retained per size class
)

var hugeOff = os.Getenv("QFW_HUGEPAGES") == "off"

type hugeMapping struct {
	raw   []byte         // the full mmap, munmap target
	data  unsafe.Pointer // 2 MiB-aligned start handed to callers
	bytes int            // usable (rounded-up) size at data
}

var (
	hugeMu   sync.Mutex
	hugeFree = map[int][]hugeMapping{} // by rounded byte size
	hugeLive = map[unsafe.Pointer]hugeMapping{}
)

// hugeAlloc returns a 2 MiB-aligned, MADV_HUGEPAGE-advised allocation of at
// least bytes, or nil when the path is disabled, the request is small, or
// mmap fails (callers fall back to make()). Recycled buffers hold stale
// data, exactly like sync.Pool buffers.
func hugeAlloc(bytes int) unsafe.Pointer {
	if hugeOff || bytes < hugeMinBytes {
		return nil
	}
	sz := (bytes + hugePageBytes - 1) &^ (hugePageBytes - 1)
	hugeMu.Lock()
	if lst := hugeFree[sz]; len(lst) > 0 {
		m := lst[len(lst)-1]
		hugeFree[sz] = lst[:len(lst)-1]
		hugeLive[m.data] = m
		hugeMu.Unlock()
		return m.data
	}
	hugeMu.Unlock()
	raw, err := syscall.Mmap(-1, 0, sz+hugePageBytes,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil
	}
	base := unsafe.Pointer(&raw[0])
	pad := (hugePageBytes - uintptr(base)%hugePageBytes) % hugePageBytes
	aligned := unsafe.Add(base, pad)
	// Best-effort: a kernel without THP just ignores the advice.
	_ = syscall.Madvise(unsafe.Slice((*byte)(aligned), sz), syscall.MADV_HUGEPAGE)
	m := hugeMapping{raw: raw, data: aligned, bytes: sz}
	hugeMu.Lock()
	hugeLive[aligned] = m
	hugeMu.Unlock()
	return aligned
}

// hugeRelease returns an allocation obtained from hugeAlloc to the free
// list (or unmaps it past the per-class cap). Reports whether p was a live
// huge allocation; false means the buffer belongs to the Go heap and the
// caller should pool it normally.
func hugeRelease(p unsafe.Pointer) bool {
	hugeMu.Lock()
	m, ok := hugeLive[p]
	if !ok {
		hugeMu.Unlock()
		return false
	}
	delete(hugeLive, p)
	if len(hugeFree[m.bytes]) < hugeKeepPer {
		hugeFree[m.bytes] = append(hugeFree[m.bytes], m)
		hugeMu.Unlock()
		return true
	}
	hugeMu.Unlock()
	_ = syscall.Munmap(m.raw)
	return true
}

// hugeGetF64 returns a huge-page-backed uninitialized []float64 of 2^n
// elements, or nil when unavailable.
func hugeGetF64(n int) []float64 {
	count := 1 << uint(n)
	if p := hugeAlloc(count * 8); p != nil {
		return unsafe.Slice((*float64)(p), count)
	}
	return nil
}

// hugePutF64 recycles a buffer if it came from hugeGetF64.
func hugePutF64(buf []float64) bool {
	if len(buf) == 0 {
		return false
	}
	return hugeRelease(unsafe.Pointer(&buf[0]))
}

// hugeGetAmp returns a huge-page-backed uninitialized []complex128 of 2^n
// elements, or nil when unavailable.
func hugeGetAmp(n int) []complex128 {
	count := 1 << uint(n)
	if p := hugeAlloc(count * 16); p != nil {
		return unsafe.Slice((*complex128)(p), count)
	}
	return nil
}

// hugePutAmp recycles a buffer if it came from hugeGetAmp.
func hugePutAmp(buf []complex128) bool {
	if len(buf) == 0 {
		return false
	}
	return hugeRelease(unsafe.Pointer(&buf[0]))
}
