package statevec

// Structure-of-arrays tile kernels for the cache-blocked staged executor
// (blocked.go). Amplitudes live as split re/im []float64 slices and every
// kernel operates on one cache-resident tile: the slices passed in are one
// tile's sub-range, bit positions are *physical* positions below the tile
// size, and the inner loops run over contiguous runs with the matrix
// entries hoisted into scalar locals — the layout the compiler turns into
// straight-line FP code with unit-stride loads (SIMD-friendly under
// GOAMD64=v3). The complex128 kernels in state.go remain the per-op path;
// these are their split-layout mirrors, exact to the operation order.

import "qfw/internal/linalg"

// soaScale multiplies the whole tile by the scalar fr+i*fi — the path a
// diagonal factor on a tile-index bit takes (the factor is constant across
// the tile, the analog of the distributed engine folding global-qubit
// factors into a per-rank scalar).
func soaScale(re, im []float64, fr, fi float64) {
	if fr == 1 && fi == 0 {
		return
	}
	if useAVX && len(re) >= 4 {
		cmulScalarAVX(&re[0], &im[0], len(re), fr, fi)
		return
	}
	im = im[:len(re)]
	for k := range re {
		ar, ai := re[k], im[k]
		re[k] = ar*fr - ai*fi
		im[k] = ar*fi + ai*fr
	}
}

// soaDiag1 multiplies amplitudes by d0 or d1 according to the tile bit.
func soaDiag1(re, im []float64, d0, d1 complex128, bit int) {
	d0r, d0i := real(d0), imag(d0)
	d1r, d1i := real(d1), imag(d1)
	if useAVX {
		if bit >= 4 {
			d := [4]float64{d0r, d0i, d1r, d1i}
			diag1StrideAVX(&re[0], &im[0], len(re), bit, &d)
			return
		}
		if soa1QAVX(re, im, d0r, d0i, 0, 0, 0, 0, d1r, d1i, bit) {
			return
		}
	}
	for base := 0; base < len(re); base += 2 * bit {
		r0 := re[base : base+bit]
		i0 := im[base : base+bit]
		r1 := re[base+bit : base+2*bit]
		i1 := im[base+bit : base+2*bit]
		for k := range r0 {
			ar, ai := r0[k], i0[k]
			r0[k] = ar*d0r - ai*d0i
			i0[k] = ar*d0i + ai*d0r
			br, bi := r1[k], i1[k]
			r1[k] = br*d1r - bi*d1i
			i1[k] = br*d1i + bi*d1r
		}
	}
}

// soa1Q applies a generic 2x2 to the tile bit.
func soa1Q(re, im []float64, m [2][2]complex128, bit int) {
	m00r, m00i := real(m[0][0]), imag(m[0][0])
	m01r, m01i := real(m[0][1]), imag(m[0][1])
	m10r, m10i := real(m[1][0]), imag(m[1][0])
	m11r, m11i := real(m[1][1]), imag(m[1][1])
	if useAVX && soa1QAVX(re, im, m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i, bit) {
		return
	}
	for base := 0; base < len(re); base += 2 * bit {
		r0 := re[base : base+bit]
		i0 := im[base : base+bit]
		r1 := re[base+bit : base+2*bit]
		i1 := im[base+bit : base+2*bit]
		for k := range r0 {
			a0r, a0i := r0[k], i0[k]
			a1r, a1i := r1[k], i1[k]
			r0[k] = m00r*a0r - m00i*a0i + m01r*a1r - m01i*a1i
			i0[k] = m00r*a0i + m00i*a0r + m01r*a1i + m01i*a1r
			r1[k] = m10r*a0r - m10i*a0i + m11r*a1r - m11i*a1i
			i1[k] = m10r*a0i + m10i*a0r + m11r*a1i + m11i*a1r
		}
	}
}

// soaPerm1 applies an antidiagonal 2x2 [[0, m01], [m10, 0]].
func soaPerm1(re, im []float64, m01, m10 complex128, bit int) {
	p01r, p01i := real(m01), imag(m01)
	p10r, p10i := real(m10), imag(m10)
	if useAVX && soa1QAVX(re, im, 0, 0, p01r, p01i, p10r, p10i, 0, 0, bit) {
		return
	}
	for base := 0; base < len(re); base += 2 * bit {
		r0 := re[base : base+bit]
		i0 := im[base : base+bit]
		r1 := re[base+bit : base+2*bit]
		i1 := im[base+bit : base+2*bit]
		for k := range r0 {
			a0r, a0i := r0[k], i0[k]
			a1r, a1i := r1[k], i1[k]
			r0[k] = p01r*a1r - p01i*a1i
			i0[k] = p01r*a1i + p01i*a1r
			r1[k] = p10r*a0r - p10i*a0i
			i1[k] = p10r*a0i + p10i*a0r
		}
	}
}

// soaH applies a Hadamard with the add/sub kernel.
func soaH(re, im []float64, bit int) {
	const inv = 0.7071067811865476 // 1/sqrt(2)
	if useAVX {
		if bit >= 4 {
			hStrideAVX(&re[0], &im[0], len(re), bit, inv)
			return
		}
		if soa1QAVX(re, im, inv, 0, inv, 0, inv, 0, -inv, 0, bit) {
			return
		}
	}
	for base := 0; base < len(re); base += 2 * bit {
		r0 := re[base : base+bit]
		i0 := im[base : base+bit]
		r1 := re[base+bit : base+2*bit]
		i1 := im[base+bit : base+2*bit]
		for k := range r0 {
			a0r, a0i := r0[k], i0[k]
			a1r, a1i := r1[k], i1[k]
			r0[k] = inv * (a0r + a1r)
			i0[k] = inv * (a0i + a1i)
			r1[k] = inv * (a0r - a1r)
			i1[k] = inv * (a0i - a1i)
		}
	}
}

// soaReal1 applies an all-real 2x2 (RY-form): re and im transform
// independently, half the floating-point work of the generic kernel.
func soaReal1(re, im []float64, r00, r01, r10, r11 float64, bit int) {
	if useAVX && soa1QAVX(re, im, r00, 0, r01, 0, r10, 0, r11, 0, bit) {
		return
	}
	for base := 0; base < len(re); base += 2 * bit {
		r0 := re[base : base+bit]
		i0 := im[base : base+bit]
		r1 := re[base+bit : base+2*bit]
		i1 := im[base+bit : base+2*bit]
		for k := range r0 {
			a0r, a0i := r0[k], i0[k]
			a1r, a1i := r1[k], i1[k]
			r0[k] = r00*a0r + r01*a1r
			i0[k] = r00*a0i + r01*a1i
			r1[k] = r10*a0r + r11*a1r
			i1[k] = r10*a0i + r11*a1i
		}
	}
}

// soaRX applies [[c0, i*v0], [i*v1, c1]] with real c, v (RX-form).
func soaRX(re, im []float64, c0, v0, v1, c1 float64, bit int) {
	if useAVX {
		if bit >= 4 {
			rxStrideAVX(&re[0], &im[0], len(re), bit, c0, v0, v1, c1)
			return
		}
		if soa1QAVX(re, im, c0, 0, 0, v0, 0, v1, c1, 0, bit) {
			return
		}
	}
	for base := 0; base < len(re); base += 2 * bit {
		r0 := re[base : base+bit]
		i0 := im[base : base+bit]
		r1 := re[base+bit : base+2*bit]
		i1 := im[base+bit : base+2*bit]
		for k := range r0 {
			a0r, a0i := r0[k], i0[k]
			a1r, a1i := r1[k], i1[k]
			r0[k] = c0*a0r - v0*a1i
			i0[k] = c0*a0i + v0*a1r
			r1[k] = c1*a1r - v1*a0i
			i1[k] = c1*a1i + v1*a0r
		}
	}
}

// soa2QDense applies a 4x4 to the tile bits (hbit, lbit), hbit the more
// significant qubit of the matrix basis. Complex locals are rebuilt from
// the split slices; the 4x4 product is fully unrolled like Apply2QDense.
func soa2QDense(re, im []float64, m *linalg.Matrix, hbit, lbit int) {
	m00, m01, m02, m03 := m.Data[0], m.Data[1], m.Data[2], m.Data[3]
	m10, m11, m12, m13 := m.Data[4], m.Data[5], m.Data[6], m.Data[7]
	m20, m21, m22, m23 := m.Data[8], m.Data[9], m.Data[10], m.Data[11]
	m30, m31, m32, m33 := m.Data[12], m.Data[13], m.Data[14], m.Data[15]
	hi, lo := hbit, lbit
	if hi < lo {
		hi, lo = lo, hi
	}
	for b2 := 0; b2 < len(re); b2 += 2 * hi {
		for b1 := b2; b1 < b2+hi; b1 += 2 * lo {
			for base := b1; base < b1+lo; base++ {
				i1 := base | lbit
				i2 := base | hbit
				i3 := i2 | lbit
				a0 := complex(re[base], im[base])
				a1 := complex(re[i1], im[i1])
				a2 := complex(re[i2], im[i2])
				a3 := complex(re[i3], im[i3])
				b0 := m00*a0 + m01*a1 + m02*a2 + m03*a3
				c1 := m10*a0 + m11*a1 + m12*a2 + m13*a3
				c2 := m20*a0 + m21*a1 + m22*a2 + m23*a3
				c3 := m30*a0 + m31*a1 + m32*a2 + m33*a3
				re[base], im[base] = real(b0), imag(b0)
				re[i1], im[i1] = real(c1), imag(c1)
				re[i2], im[i2] = real(c2), imag(c2)
				re[i3], im[i3] = real(c3), imag(c3)
			}
		}
	}
}

// soaPerm2 applies a phased 4x4 permutation to the tile bits (hbit, lbit).
func soaPerm2(re, im []float64, perm [4]uint8, phase [4]complex128, hbit, lbit int) {
	hi, lo := hbit, lbit
	if hi < lo {
		hi, lo = lo, hi
	}
	var idx [4]int
	var amp [4]complex128
	for b2 := 0; b2 < len(re); b2 += 2 * hi {
		for b1 := b2; b1 < b2+hi; b1 += 2 * lo {
			for base := b1; base < b1+lo; base++ {
				idx[0] = base
				idx[1] = base | lbit
				idx[2] = base | hbit
				idx[3] = base | hbit | lbit
				for k := 0; k < 4; k++ {
					amp[k] = complex(re[idx[k]], im[idx[k]])
				}
				for r := 0; r < 4; r++ {
					v := phase[r] * amp[perm[r]]
					re[idx[r]], im[idx[r]] = real(v), imag(v)
				}
			}
		}
	}
}

// soaKQ applies a dense 2^k x 2^k unitary. off[v] is the precomputed bit
// offset of matrix-basis index v (lowered once per op, not per tile);
// sortedPos is the ascending physical position list for compressed-index
// expansion.
func soaKQ(re, im []float64, m *linalg.Matrix, off, sortedPos []int) {
	k := len(sortedPos)
	dim := len(off)
	var idxArr [64]int
	var ampArr [64]complex128
	idx, amp := idxArr[:], ampArr[:]
	if dim > len(idxArr) {
		idx = make([]int, dim)
		amp = make([]complex128, dim)
	}
	outer := len(re) >> uint(k)
	for j := 0; j < outer; j++ {
		base := j
		for _, p := range sortedPos {
			base = insertZeroBit(base, p)
		}
		for v := 0; v < dim; v++ {
			i := base | off[v]
			idx[v] = i
			amp[v] = complex(re[i], im[i])
		}
		for r := 0; r < dim; r++ {
			var acc complex128
			row := m.Data[r*dim : (r+1)*dim]
			for c := 0; c < dim; c++ {
				acc += row[c] * amp[c]
			}
			i := idx[r]
			re[i], im[i] = real(acc), imag(acc)
		}
	}
}

// soaDiagTab multiplies the tile by s * tab[k] with up to two active cross
// tables folded in — the per-tile evaluation of a combined diagonal layer.
// tab and the cross tables span exactly one tile and are shared read-only
// across every tile (they stay cache-hot); s carries the tile's global-bit
// factor. acts holds the cross tables active for this tile.
func soaDiagTab(re, im, tabRe, tabIm []float64, sr, si float64, acts [][2][]float64) {
	tabRe = tabRe[:len(re)]
	tabIm = tabIm[:len(re)]
	im = im[:len(re)]
	if useAVX && len(re) >= 4 {
		// The product is applied factor-by-factor (tab, crosses, then the
		// global scalar) instead of pre-combining into f — same complex
		// product up to reassociation rounding, each pass a 4-wide cmul.
		cmulVecAVX(&re[0], &im[0], &tabRe[0], &tabIm[0], len(re))
		for _, ct := range acts {
			cmulVecAVX(&re[0], &im[0], &ct[0][0], &ct[1][0], len(re))
		}
		if sr != 1 || si != 0 {
			cmulScalarAVX(&re[0], &im[0], len(re), sr, si)
		}
		return
	}
	switch len(acts) {
	case 0:
		for k := range re {
			tr, ti := tabRe[k], tabIm[k]
			fr := sr*tr - si*ti
			fi := sr*ti + si*tr
			ar, ai := re[k], im[k]
			re[k] = ar*fr - ai*fi
			im[k] = ar*fi + ai*fr
		}
	case 1:
		cr := acts[0][0][:len(re)]
		ci := acts[0][1][:len(re)]
		for k := range re {
			tr, ti := tabRe[k], tabIm[k]
			fr := sr*tr - si*ti
			fi := sr*ti + si*tr
			xr, xi := cr[k], ci[k]
			gr := fr*xr - fi*xi
			gi := fr*xi + fi*xr
			ar, ai := re[k], im[k]
			re[k] = ar*gr - ai*gi
			im[k] = ar*gi + ai*gr
		}
	default:
		s := complex(sr, si)
		for k := range re {
			f := s * complex(tabRe[k], tabIm[k])
			for _, ct := range acts {
				f *= complex(ct[0][k], ct[1][k])
			}
			a := complex(re[k], im[k]) * f
			re[k], im[k] = real(a), imag(a)
		}
	}
}

// foldDiag1 multiplies table entries by d0 or d1 according to the bit —
// the table-build primitive of the combined diagonal lowering.
func foldDiag1(re, im []float64, d0, d1 complex128, bit int) {
	for j := range re {
		f := d0
		if j&bit != 0 {
			f = d1
		}
		v := complex(re[j], im[j]) * f
		re[j], im[j] = real(v), imag(v)
	}
}

// foldDiag2 multiplies table entries by d[va<<1|vb] for bit pair (abit,
// bbit), abit the more significant factor qubit.
func foldDiag2(re, im []float64, d [4]complex128, abit, bbit int) {
	for j := range re {
		v := 0
		if j&abit != 0 {
			v = 2
		}
		if j&bbit != 0 {
			v |= 1
		}
		a := complex(re[j], im[j]) * d[v]
		re[j], im[j] = real(a), imag(a)
	}
}
