package statevec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/pauli"
)

// randomHam builds a small random Pauli-sum observable.
func randomHam(n int, rng *rand.Rand) *pauli.Hamiltonian {
	h := &pauli.Hamiltonian{NQubits: n}
	ops := []pauli.Op{pauli.X, pauli.Y, pauli.Z}
	for t := 0; t < 4; t++ {
		terms := map[int]pauli.Op{}
		for q := 0; q < n; q++ {
			if rng.Float64() < 0.6 {
				terms[q] = ops[rng.Intn(3)]
			}
		}
		h.Add(rng.NormFloat64(), terms)
	}
	return h
}

// expectation evaluates <H> of the bound circuit exactly.
func expectation(c *circuit.Circuit, binding map[string]float64, h *pauli.Hamiltonian) float64 {
	bound := c.Bind(binding)
	s, _ := RunFused(bound.StripMeasurements(), nil, 1, rand.New(rand.NewSource(1)))
	defer s.Release()
	return s.ExpectationHamiltonian(h)
}

// finiteDiff computes the central finite-difference gradient over the
// circuit's sorted parameter names.
func finiteDiff(c *circuit.Circuit, binding map[string]float64, h *pauli.Hamiltonian, eps float64) []float64 {
	names := c.ParamNames()
	grad := make([]float64, len(names))
	for i, name := range names {
		plus := map[string]float64{}
		minus := map[string]float64{}
		for k, v := range binding {
			plus[k], minus[k] = v, v
		}
		plus[name] += eps
		minus[name] -= eps
		grad[i] = (expectation(c, plus, h) - expectation(c, minus, h)) / (2 * eps)
	}
	return grad
}

// fullGateSetCircuit exercises every parametric kind plus a spread of
// non-parametric gates between the boundaries.
func fullGateSetCircuit() *circuit.Circuit {
	c := circuit.New(3)
	c.H(0).H(1).H(2)
	c.RX(0, circuit.Sym("a", 1))
	c.T(1).SX(2)
	c.RY(1, circuit.Sym("b", 0.7))
	c.CX(0, 1)
	c.RZ(2, circuit.Sym("c", -1.3))
	c.P(0, circuit.Sym("a", 0.5)) // shared parameter, different coefficient
	c.SWAP(1, 2)
	c.CRX(0, 1, circuit.Sym("d", 1))
	c.CRY(1, 2, circuit.Sym("e", 1))
	c.Sdg(0)
	c.CRZ(2, 0, circuit.Sym("f", 2))
	c.CP(0, 2, circuit.Sym("g", 1))
	c.RZZ(0, 1, circuit.Sym("h", -0.8))
	c.RXX(1, 2, circuit.Sym("k", 1))
	c.CCX(0, 1, 2)
	c.Y(1)
	return c
}

func bindingFor(c *circuit.Circuit, rng *rand.Rand) map[string]float64 {
	b := map[string]float64{}
	for _, name := range c.ParamNames() {
		b[name] = -1.5 + 3*rng.Float64()
	}
	return b
}

func TestAdjointGradientFullGateSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := fullGateSetCircuit()
	h := randomHam(3, rng)
	binding := bindingFor(c, rng)
	plan := circuit.PlanFusionGrad(c)
	val, grad, err := GradientAdjoint(plan, binding, GradObs{Ham: h}, 1)
	if err != nil {
		t.Fatalf("adjoint: %v", err)
	}
	if want := expectation(c, binding, h); math.Abs(val-want) > 1e-12 {
		t.Fatalf("adjoint value %.15g, want %.15g", val, want)
	}
	fd := finiteDiff(c, binding, h, 1e-5)
	for i, name := range plan.Params() {
		if math.Abs(grad[i]-fd[i]) > 1e-7 {
			t.Errorf("param %s: adjoint %.12g vs finite diff %.12g", name, grad[i], fd[i])
		}
	}
}

func TestParamShiftGradientFullGateSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := fullGateSetCircuit()
	h := randomHam(3, rng)
	binding := bindingFor(c, rng)
	splan, err := circuit.PlanParamShift(c)
	if err != nil {
		t.Fatalf("shift plan: %v", err)
	}
	val, grad, err := GradientParamShift(splan, binding, GradObs{Ham: h}, 1)
	if err != nil {
		t.Fatalf("param shift: %v", err)
	}
	if want := expectation(c, binding, h); math.Abs(val-want) > 1e-12 {
		t.Fatalf("shift value %.15g, want %.15g", val, want)
	}
	fd := finiteDiff(c, binding, h, 1e-5)
	for i, name := range splan.Params() {
		if math.Abs(grad[i]-fd[i]) > 1e-7 {
			t.Errorf("param %s: shift %.12g vs finite diff %.12g", name, grad[i], fd[i])
		}
	}
}

// randomParametricCircuit mixes random parametric and non-parametric gates.
func randomParametricCircuit(n, gates int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	pkinds := []func(q, r int, p circuit.Param){
		func(q, r int, p circuit.Param) { c.RX(q, p) },
		func(q, r int, p circuit.Param) { c.RY(q, p) },
		func(q, r int, p circuit.Param) { c.RZ(q, p) },
		func(q, r int, p circuit.Param) { c.P(q, p) },
		func(q, r int, p circuit.Param) { c.CRX(q, r, p) },
		func(q, r int, p circuit.Param) { c.CRY(q, r, p) },
		func(q, r int, p circuit.Param) { c.CRZ(q, r, p) },
		func(q, r int, p circuit.Param) { c.CP(q, r, p) },
		func(q, r int, p circuit.Param) { c.RZZ(q, r, p) },
		func(q, r int, p circuit.Param) { c.RXX(q, r, p) },
	}
	nparams := 0
	for g := 0; g < gates; g++ {
		q := rng.Intn(n)
		r := (q + 1 + rng.Intn(n-1)) % n
		switch rng.Intn(4) {
		case 0: // non-parametric 1q
			switch rng.Intn(4) {
			case 0:
				c.H(q)
			case 1:
				c.T(q)
			case 2:
				c.SX(q)
			case 3:
				c.Z(q)
			}
		case 1: // non-parametric 2q
			switch rng.Intn(3) {
			case 0:
				c.CX(q, r)
			case 1:
				c.CZ(q, r)
			case 2:
				c.SWAP(q, r)
			}
		default: // parametric, sometimes sharing an earlier name
			name := fmt.Sprintf("p%d", nparams)
			coeff := 0.5 + rng.Float64()
			if nparams > 2 && rng.Float64() < 0.3 {
				name = fmt.Sprintf("p%d", rng.Intn(nparams))
			} else {
				nparams++
			}
			pkinds[rng.Intn(len(pkinds))](q, r, circuit.Sym(name, coeff))
		}
	}
	return c
}

func TestGradientsRandomCircuits(t *testing.T) {
	for n := 2; n <= 10; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + n)))
			c := randomParametricCircuit(n, 4+3*n, rng)
			h := randomHam(n, rng)
			binding := bindingFor(c, rng)
			obs := GradObs{Ham: h}
			plan := circuit.PlanFusionGrad(c)
			aval, agrad, err := GradientAdjoint(plan, binding, obs, 2)
			if err != nil {
				t.Fatalf("adjoint: %v", err)
			}
			splan, err := circuit.PlanParamShift(c)
			if err != nil {
				t.Fatalf("shift plan: %v", err)
			}
			sval, sgrad, err := GradientParamShift(splan, binding, obs, 1)
			if err != nil {
				t.Fatalf("param shift: %v", err)
			}
			// Adjoint and parameter-shift are both analytic: they must agree
			// far below finite-difference accuracy.
			if math.Abs(aval-sval) > 1e-9 {
				t.Fatalf("value: adjoint %.15g vs shift %.15g", aval, sval)
			}
			for i, name := range plan.Params() {
				if math.Abs(agrad[i]-sgrad[i]) > 1e-9 {
					t.Errorf("param %s: adjoint %.15g vs shift %.15g", name, agrad[i], sgrad[i])
				}
			}
			fd := finiteDiff(c, binding, h, 1e-5)
			for i, name := range plan.Params() {
				if math.Abs(agrad[i]-fd[i]) > 1e-7 {
					t.Errorf("param %s: adjoint %.12g vs finite diff %.12g", name, agrad[i], fd[i])
				}
			}
		})
	}
}

func TestAdjointGradientDiagonalFastPath(t *testing.T) {
	// A QAOA-style diagonal observable must give identical results through
	// the diagonal fast path and the generic Pauli path.
	rng := rand.New(rand.NewSource(5))
	n := 6
	c := randomParametricCircuit(n, 20, rng)
	binding := bindingFor(c, rng)
	fields := make([]float64, n)
	js := map[[2]int]float64{}
	for q := 0; q < n; q++ {
		fields[q] = rng.NormFloat64()
	}
	for q := 0; q+1 < n; q++ {
		js[[2]int{q, q + 1}] = rng.NormFloat64()
	}
	h := pauli.IsingCost(fields, js)
	diag := func(idx int) float64 {
		bits := make([]int, n)
		for q := 0; q < n; q++ {
			bits[q] = (idx >> uint(q)) & 1
		}
		return h.DiagonalEnergy(bits)
	}
	plan := circuit.PlanFusionGrad(c)
	dval, dgrad, err := GradientAdjoint(plan, binding, GradObs{Diag: diag}, 1)
	if err != nil {
		t.Fatalf("diag: %v", err)
	}
	hval, hgrad, err := GradientAdjoint(plan, binding, GradObs{Ham: h}, 1)
	if err != nil {
		t.Fatalf("ham: %v", err)
	}
	if math.Abs(dval-hval) > 1e-10 {
		t.Fatalf("value: diag %.15g vs ham %.15g", dval, hval)
	}
	for i := range dgrad {
		if math.Abs(dgrad[i]-hgrad[i]) > 1e-10 {
			t.Errorf("grad[%d]: diag %.15g vs ham %.15g", i, dgrad[i], hgrad[i])
		}
	}
}

func TestGradientErrors(t *testing.T) {
	c := circuit.New(2)
	c.RX(0, circuit.Sym("a", 1))
	plan := circuit.PlanFusionGrad(c)
	if _, _, err := GradientAdjoint(plan, map[string]float64{}, GradObs{Ham: &pauli.Hamiltonian{NQubits: 2}}, 1); err == nil {
		t.Fatal("expected unbound-parameter error")
	}
	if _, _, err := GradientAdjoint(plan, map[string]float64{"a": 0.3}, GradObs{}, 1); err == nil {
		t.Fatal("expected missing-observable error")
	}
}
