package statevec

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/pauli"
)

// randomState returns a normalized random state on n qubits.
func randomState(n int, rng *rand.Rand) *State {
	s := NewState(n)
	var norm float64
	for i := range s.Amp {
		s.Amp[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(s.Amp[i])*real(s.Amp[i]) + imag(s.Amp[i])*imag(s.Amp[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range s.Amp {
		s.Amp[i] *= inv
	}
	return s
}

// refControlled1Q is the old full-scan reference kernel.
func refControlled1Q(s *State, m [2][2]complex128, controls []int, target int) {
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	bit := 1 << uint(target)
	for i := 0; i < len(s.Amp); i++ {
		if i&bit != 0 || i&cmask != cmask {
			continue
		}
		i1 := i | bit
		a0, a1 := s.Amp[i], s.Amp[i1]
		s.Amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.Amp[i1] = m[1][0]*a0 + m[1][1]*a1
	}
}

// refSwap is the old full-scan swap kernel.
func refSwap(s *State, a, b int, controls []int) {
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	abit, bbit := 1<<uint(a), 1<<uint(b)
	for i := 0; i < len(s.Amp); i++ {
		if i&abit != 0 || i&bbit == 0 || i&cmask != cmask {
			continue
		}
		jj := (i | abit) &^ bbit
		s.Amp[i], s.Amp[jj] = s.Amp[jj], s.Amp[i]
	}
}

func TestCompressedControlled1Q(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		controls []int
		target   int
	}{
		{nil, 3},
		{[]int{0}, 4},
		{[]int{5}, 0},
		{[]int{1, 4}, 2}, // CCX-style: two controls
		{[]int{0, 2, 5}, 3},
	}
	for _, tc := range cases {
		m := circuit.Matrix1Q(circuit.KindRY, 1.234)
		got := randomState(6, rng)
		want := got.Copy()
		got.ApplyControlled1Q(m, tc.controls, tc.target)
		refControlled1Q(want, m, tc.controls, tc.target)
		for i := range want.Amp {
			if cmplx.Abs(got.Amp[i]-want.Amp[i]) > 1e-13 {
				t.Fatalf("controls=%v target=%d: amp %d mismatch %v vs %v",
					tc.controls, tc.target, i, got.Amp[i], want.Amp[i])
			}
		}
		got.Release()
		want.Release()
	}
}

func TestCompressedSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []struct {
		a, b     int
		controls []int
	}{
		{0, 5, nil},
		{4, 1, nil},
		{2, 3, []int{0}},    // CSWAP
		{1, 5, []int{3, 0}}, // doubly-controlled swap
	}
	for _, tc := range cases {
		got := randomState(6, rng)
		want := got.Copy()
		got.ApplySwap(tc.a, tc.b, tc.controls)
		refSwap(want, tc.a, tc.b, tc.controls)
		for i := range want.Amp {
			if got.Amp[i] != want.Amp[i] {
				t.Fatalf("swap(%d,%d) controls=%v: amp %d mismatch", tc.a, tc.b, tc.controls, i)
			}
		}
		got.Release()
		want.Release()
	}
}

func TestDiagTermsMatchSequentialGates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := randomState(5, rng)
	ref := s.Copy()
	// Combined run: RZ(0, .7) Z(2) RZZ(1,3,.9) CZ(4,0) CP(3, 2, .4)
	s.ApplyDiagTerms(
		[]circuit.DiagTerm1{
			{Q: 0, D: diag1(circuit.KindRZ, 0.7)},
			{Q: 2, D: diag1(circuit.KindZ, 0)},
		},
		[]circuit.DiagTerm2{
			{A: 3, B: 1, D: diag2(circuit.KindRZZ, 0.9)},
			{A: 4, B: 0, D: diag2(circuit.KindCZ, 0)},
			{A: 3, B: 2, D: diag2(circuit.KindCP, 0.4)},
		},
	)
	ref.Apply1Q(circuit.Matrix1Q(circuit.KindRZ, 0.7), 0)
	ref.Apply1Q(circuit.Matrix1Q(circuit.KindZ, 0), 2)
	ref.ApplyRZZ(3, 1, 0.9)
	ref.ApplyControlled1Q(circuit.Matrix1Q(circuit.KindZ, 0), []int{4}, 0)
	ref.ApplyControlled1Q(circuit.Matrix1Q(circuit.KindP, 0.4), []int{3}, 2)
	for i := range ref.Amp {
		if cmplx.Abs(s.Amp[i]-ref.Amp[i]) > 1e-13 {
			t.Fatalf("diag run mismatch at %d: %v vs %v", i, s.Amp[i], ref.Amp[i])
		}
	}
	s.Release()
	ref.Release()
}

func diag1(k circuit.Kind, theta float64) [2]complex128 {
	m := circuit.Matrix1Q(k, theta)
	return [2]complex128{m[0][0], m[1][1]}
}

func diag2(k circuit.Kind, theta float64) [4]complex128 {
	m := circuit.Matrix2Q(k, theta)
	return [4]complex128{m.At(0, 0), m.At(1, 1), m.At(2, 2), m.At(3, 3)}
}

func TestAliasSamplerDistribution(t *testing.T) {
	// Biased two-qubit state: p(00)=0.5, p(01)=0.25, p(10)=0.25.
	s := NewState(2)
	s.Amp[0] = complex(math.Sqrt(0.5), 0)
	s.Amp[1] = complex(0.5, 0)
	s.Amp[2] = complex(0, 0.5)
	shots := 40000
	counts := s.SampleCounts(shots, rand.New(rand.NewSource(23)))
	if counts["11"] != 0 {
		t.Fatalf("sampled zero-probability outcome: %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != shots {
		t.Fatalf("lost shots: %d != %d", total, shots)
	}
	check := func(key string, want float64) {
		frac := float64(counts[key]) / float64(shots)
		if math.Abs(frac-want) > 0.02 {
			t.Fatalf("p(%s) = %.3f, want %.2f (counts %v)", key, frac, want, counts)
		}
	}
	check("00", 0.5)
	check("01", 0.25)
	check("10", 0.25)
	s.Release()
}

func TestAliasSamplerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randomState(6, rng)
	a := s.SampleCounts(512, rand.New(rand.NewSource(77)))
	b := s.SampleCounts(512, rand.New(rand.NewSource(77)))
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sampling: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("non-deterministic sampling at %s: %d vs %d", k, v, b[k])
		}
	}
	s.Release()
}

func TestExpectationHamiltonianScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	s := randomState(5, rng)
	s.Workers = 4
	h := &pauli.Hamiltonian{NQubits: 5}
	h.Add(0.8, map[int]pauli.Op{0: pauli.X, 2: pauli.Z})
	h.Add(-1.3, map[int]pauli.Op{1: pauli.Y, 3: pauli.Y, 4: pauli.Z})
	h.Add(0.5, map[int]pauli.Op{2: pauli.Z})
	h.Add(0.25, map[int]pauli.Op{0: pauli.X, 1: pauli.X, 2: pauli.X, 3: pauli.X, 4: pauli.X})

	// Reference: apply each term through the generic dense kernels.
	var want float64
	for _, term := range h.Terms {
		tCopy := s.Copy()
		for q, op := range term.Ops {
			switch op {
			case pauli.X:
				tCopy.Apply1Q(circuit.Matrix1Q(circuit.KindX, 0), q)
			case pauli.Y:
				tCopy.Apply1Q(circuit.Matrix1Q(circuit.KindY, 0), q)
			case pauli.Z:
				tCopy.Apply1Q(circuit.Matrix1Q(circuit.KindZ, 0), q)
			}
		}
		want += term.Coeff * real(s.InnerProduct(tCopy))
		tCopy.Release()
	}
	got := s.ExpectationHamiltonian(h)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectationHamiltonian = %g, want %g", got, want)
	}
	s.Release()
}
