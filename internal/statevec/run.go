package statevec

import (
	"fmt"
	"math/rand"

	"qfw/internal/circuit"
)

// ApplyGate dispatches one bound circuit gate onto the state. Measurement
// gates collapse the state and record the outcome in cbits (which must have
// room for the classical index).
func (s *State) ApplyGate(g circuit.Gate, rng *rand.Rand, cbits []int) {
	switch g.Kind {
	case circuit.KindBarrier, circuit.KindI:
		return
	case circuit.KindMeasure:
		out := s.MeasureQubit(g.Qubits[0], rng)
		if g.Cbit >= 0 && g.Cbit < len(cbits) {
			cbits[g.Cbit] = out
		}
		return
	case circuit.KindReset:
		if s.MeasureQubit(g.Qubits[0], rng) == 1 {
			s.Apply1Q(circuit.Matrix1Q(circuit.KindX, 0), g.Qubits[0])
		}
		return
	case circuit.KindUnitary:
		if len(g.Qubits) == 1 {
			m := g.Matrix
			s.Apply1Q([2][2]complex128{{m.At(0, 0), m.At(0, 1)}, {m.At(1, 0), m.At(1, 1)}}, g.Qubits[0])
			return
		}
		s.ApplyUnitary(g.Matrix, g.Qubits)
		return
	case circuit.KindSWAP:
		s.ApplySwap(g.Qubits[0], g.Qubits[1], nil)
		return
	case circuit.KindCSWAP:
		s.ApplySwap(g.Qubits[1], g.Qubits[2], g.Qubits[:1])
		return
	case circuit.KindRZZ:
		s.ApplyRZZ(g.Qubits[0], g.Qubits[1], g.Angle())
		return
	case circuit.KindRXX:
		s.Apply2QDense(circuit.Matrix2Q(circuit.KindRXX, g.Angle()), g.Qubits[0], g.Qubits[1])
		return
	case circuit.KindCCX:
		s.ApplyControlled1Q(circuit.Matrix1Q(circuit.KindX, 0), g.Qubits[:2], g.Qubits[2])
		return
	}
	// Single-qubit and singly-controlled single-qubit gates.
	var theta float64
	if g.Kind.NumParams() == 1 {
		theta = g.Angle()
	}
	if m, ok := circuit.ControlledTarget(g.Kind, theta); ok && g.Kind.NumQubits() == 2 {
		s.ApplyControlled1Q(m, g.Qubits[:1], g.Qubits[1])
		return
	}
	if g.Kind.NumQubits() == 1 {
		s.Apply1Q(circuit.Matrix1Q(g.Kind, theta), g.Qubits[0])
		return
	}
	panic(fmt.Sprintf("statevec: unhandled gate %s", g.Kind.Name()))
}

// RunCircuit executes a bound circuit on a fresh |0..0> state. Measurements
// collapse; the final classical bits are returned alongside the state.
func RunCircuit(c *circuit.Circuit, workers int, rng *rand.Rand) (*State, []int) {
	if !c.IsBound() {
		panic("statevec: circuit has unbound parameters")
	}
	s := NewState(c.NQubits)
	if workers > 1 {
		s.Workers = workers
	}
	cbits := make([]int, c.NQubits)
	for _, g := range c.Gates {
		s.ApplyGate(g, rng, cbits)
	}
	return s, cbits
}

// Simulate runs the circuit ignoring terminal measurements and samples the
// requested number of shots from the final distribution. This is the
// standard execution path used by the backends: terminal measurement is
// replaced by sampling, which is exact and far cheaper than per-shot
// collapse. Execution goes through the gate-fusion engine; RunCircuit
// remains the unfused reference path.
func Simulate(c *circuit.Circuit, shots, workers int, rng *rand.Rand) map[string]int {
	if workers <= 0 {
		workers = CurrentTuning().Workers
	}
	s, _ := RunFused(c.StripMeasurements(), nil, workers, rng)
	if shots <= 0 {
		shots = 1024
	}
	counts := s.SampleCounts(shots, rng)
	s.Release()
	return counts
}
