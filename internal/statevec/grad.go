package statevec

import (
	"fmt"
	"runtime"
	"sync"

	"qfw/internal/circuit"
	"qfw/internal/pauli"
)

// Adjoint-mode analytic gradients (Jones & Gacon): for an ansatz of G fused
// operations and P parameters, one forward sweep plus one reverse sweep
// computes the exact expectation value and all P partial derivatives in
// O(G) gate applications total — against O(P·G) for parameter-shift and the
// many full re-executions per optimizer step of derivative-free methods.
// The engine keeps three states alive (|ψ⟩, |λ⟩ = H|ψ⟩, and a generator
// scratch |μ⟩), all drawn from the shared amplitude arena and driven
// through the persistent kernel worker pool.

// GradObs is the observable a gradient evaluation differentiates: either a
// computational-basis diagonal energy function (the QAOA fast path — one
// multiply per amplitude) or a general Pauli-sum Hamiltonian.
type GradObs struct {
	Diag func(idx int) float64
	Ham  *pauli.Hamiltonian
}

// applyObs writes H|ψ⟩ into lam using scratch for the Pauli-term basis
// changes.
func applyObs(psi, lam, scratch *State, obs GradObs) error {
	if obs.Diag != nil {
		psi.parallelFor(len(psi.Amp), func(start, end int) {
			for i := start; i < end; i++ {
				lam.Amp[i] = complex(obs.Diag(i), 0) * psi.Amp[i]
			}
		})
		return nil
	}
	if obs.Ham == nil {
		return fmt.Errorf("statevec: gradient evaluation needs an observable")
	}
	clear(lam.Amp)
	for _, term := range obs.Ham.Terms {
		copy(scratch.Amp, psi.Amp)
		applyPauliOps(scratch, term.Ops)
		coeff := complex(term.Coeff, 0)
		lam.parallelFor(len(lam.Amp), func(start, end int) {
			for i := start; i < end; i++ {
				lam.Amp[i] += coeff * scratch.Amp[i]
			}
		})
	}
	return nil
}

// applyGenerator applies the (unscaled) generator factors to the state; the
// complex Scale is folded into the inner-product accumulation instead of a
// separate pass.
func applyGenerator(s *State, gen *circuit.Generator) {
	i := complex(0, 1)
	for _, op := range gen.Ops {
		switch op.Kind {
		case circuit.GenX:
			s.ApplyPerm1Q(1, 1, op.Q)
		case circuit.GenY:
			s.ApplyPerm1Q(-i, i, op.Q)
		case circuit.GenZ:
			s.ApplyDiag1Q(1, -1, op.Q)
		case circuit.GenP1:
			s.ApplyDiag1Q(0, 1, op.Q)
		default:
			panic(fmt.Sprintf("statevec: unknown generator op %d", op.Kind))
		}
	}
}

// GradientAdjoint evaluates ⟨H⟩ and its exact gradient over the plan's
// sorted parameter names at one binding. The forward sweep runs the fused
// program; the reverse sweep walks it backwards through the precompiled
// inverse kernels, emitting one generator inner product per parametric
// boundary:
//
//	value  = ⟨ψ|H|ψ⟩
//	∂value/∂angle_k = 2·Re ⟨λ_k| G_k |ψ_k⟩,  λ_k = U_{k+1}†…U_G† H ψ
//
// with the affine chain rule folding gate angles onto shared named
// parameters. Cost: one forward execution plus two inverse applications and
// one generator scratch per op — about three circuit-equivalents,
// independent of the parameter count.
func GradientAdjoint(plan *circuit.GradPlan, binding map[string]float64, obs GradObs, workers int) (float64, []float64, error) {
	prog, err := plan.Bind(binding)
	if err != nil {
		return 0, nil, err
	}
	n := prog.NQubits
	if workers < 1 {
		workers = 1
	}
	psi := NewState(n)
	psi.Workers = workers
	defer psi.Release()
	for i := range prog.Ops {
		psi.ApplyFusedOp(&prog.Ops[i].Op, nil, nil)
	}
	lam := &State{N: n, Amp: getAmpBuf(n), Workers: workers}
	mu := &State{N: n, Amp: getAmpBuf(n), Workers: workers}
	defer putAmpBuf(n, lam.Amp)
	defer putAmpBuf(n, mu.Amp)
	if err := applyObs(psi, lam, mu, obs); err != nil {
		return 0, nil, err
	}
	value := real(psi.InnerProduct(lam))
	grad := make([]float64, len(plan.Params()))
	for k := len(prog.Ops) - 1; k >= 0; k-- {
		op := &prog.Ops[k]
		if op.Gen != nil {
			copy(mu.Amp, psi.Amp)
			applyGenerator(mu, op.Gen)
			grad[op.Param] += op.Coeff * 2 * real(op.Gen.Scale*lam.InnerProduct(mu))
		}
		psi.ApplyFusedOp(&op.Inv, nil, nil)
		if k > 0 {
			lam.ApplyFusedOp(&op.Inv, nil, nil)
		}
	}
	return value, grad, nil
}

// GradEval is one element of a gradient batch: the exact expectation value
// and its partial derivatives over the plan's sorted parameter names.
type GradEval struct {
	Value float64
	Grad  []float64
}

// GradientAdjointBatch evaluates a whole binding batch through the adjoint
// engine: up to min(GOMAXPROCS, K) sweeps run concurrently and the kernel
// parallelism divides totalWorkers across them, so a gradient batch uses
// the node fully without oversubscribing it. This is the single fan-out
// shared by the local runner and the backend executors.
func GradientAdjointBatch(plan *circuit.GradPlan, bindings []map[string]float64, obs GradObs, totalWorkers int) ([]GradEval, error) {
	if len(bindings) == 0 {
		return nil, nil
	}
	if totalWorkers < 1 {
		totalWorkers = 1
	}
	pool := runtime.GOMAXPROCS(0)
	if pool > len(bindings) {
		pool = len(bindings)
	}
	if pool < 1 {
		pool = 1
	}
	kernelWorkers := totalWorkers / pool
	if kernelWorkers < 1 {
		kernelWorkers = 1
	}
	out := make([]GradEval, len(bindings))
	errs := make([]error, len(bindings))
	sem := make(chan struct{}, pool)
	var wg sync.WaitGroup
	for i := range bindings {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			val, grad, err := GradientAdjoint(plan, bindings[i], obs, kernelWorkers)
			if err != nil {
				errs[i] = fmt.Errorf("gradient element %d: %w", i, err)
				return
			}
			out[i] = GradEval{Value: val, Grad: grad}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// GradientParamShift evaluates the same value and gradient through the
// parameter-shift rule on the local fused engine: the shift plan's binding
// batch (1 base + 2 per shift term per parametric occurrence) runs through
// one cached fusion plan, and the shifted expectations recombine per rule.
// This is the execution-only reference path — backends that cannot reach
// into their simulator state (shot-based or cloud) fan the same bindings
// through RunBatch instead.
func GradientParamShift(plan *circuit.ShiftPlan, binding map[string]float64, obs GradObs, workers int) (float64, []float64, error) {
	if obs.Diag == nil && obs.Ham == nil {
		return 0, nil, fmt.Errorf("statevec: gradient evaluation needs an observable")
	}
	fplan := circuit.PlanFusion(plan.Circuit)
	bindings := plan.Bindings(binding)
	vals := make([]float64, len(bindings))
	for i, b := range bindings {
		bound := plan.Circuit.Bind(b)
		if !bound.IsBound() {
			return 0, nil, fmt.Errorf("statevec: shift binding leaves params %v unbound", bound.ParamNames())
		}
		s, _ := RunFused(bound, fplan, workers, nil)
		if obs.Diag != nil {
			vals[i] = s.ExpectationDiagonal(obs.Diag)
		} else {
			vals[i] = s.ExpectationHamiltonian(obs.Ham)
		}
		s.Release()
	}
	return plan.Assemble(vals)
}
