package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
)

// randomFullGateSetCircuit draws gates uniformly from the entire supported
// gate set (every 1q/2q/3q kind plus dense unitaries) on random qubits.
func randomFullGateSetCircuit(n, gates int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	pick := func(k int) []int {
		qs := rng.Perm(n)[:k]
		return qs
	}
	angle := func() circuit.Param { return circuit.Bound(rng.Float64()*4*math.Pi - 2*math.Pi) }
	for g := 0; g < gates; g++ {
		switch rng.Intn(28) {
		case 0:
			c.H(pick(1)[0])
		case 1:
			c.X(pick(1)[0])
		case 2:
			c.Y(pick(1)[0])
		case 3:
			c.Z(pick(1)[0])
		case 4:
			c.S(pick(1)[0])
		case 5:
			c.Sdg(pick(1)[0])
		case 6:
			c.T(pick(1)[0])
		case 7:
			c.Tdg(pick(1)[0])
		case 8:
			c.SX(pick(1)[0])
		case 9:
			c.RX(pick(1)[0], angle())
		case 10:
			c.RY(pick(1)[0], angle())
		case 11:
			c.RZ(pick(1)[0], angle())
		case 12:
			c.P(pick(1)[0], angle())
		case 13:
			qs := pick(2)
			c.CX(qs[0], qs[1])
		case 14:
			qs := pick(2)
			c.CY(qs[0], qs[1])
		case 15:
			qs := pick(2)
			c.CZ(qs[0], qs[1])
		case 16:
			qs := pick(2)
			c.CRX(qs[0], qs[1], angle())
		case 17:
			qs := pick(2)
			c.CRY(qs[0], qs[1], angle())
		case 18:
			qs := pick(2)
			c.CRZ(qs[0], qs[1], angle())
		case 19:
			qs := pick(2)
			c.CP(qs[0], qs[1], angle())
		case 20:
			qs := pick(2)
			c.SWAP(qs[0], qs[1])
		case 21:
			qs := pick(2)
			c.RZZ(qs[0], qs[1], angle())
		case 22:
			qs := pick(2)
			c.RXX(qs[0], qs[1], angle())
		case 23:
			qs := pick(3)
			c.CCX(qs[0], qs[1], qs[2])
		case 24:
			qs := pick(3)
			c.CSWAP(qs[0], qs[1], qs[2])
		case 25:
			c.Unitary(linalg.RandomUnitary(2, rng), pick(1)[0])
		case 26:
			qs := pick(2)
			c.Unitary(linalg.RandomUnitary(4, rng), qs[0], qs[1])
		case 27:
			c.I(pick(1)[0])
		}
	}
	return c
}

// maxAmpDiff returns the largest |a_i - b_i| between two states.
func maxAmpDiff(a, b *State) float64 {
	var mx float64
	for i := range a.Amp {
		if d := cmplx.Abs(a.Amp[i] - b.Amp[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// TestFusionEquivalenceRandom is the acceptance test of the fused engine:
// fused and unfused execution agree amplitude-for-amplitude to 1e-12 on
// random circuits drawn from the full gate set, across fusion widths.
func TestFusionEquivalenceRandom(t *testing.T) {
	for _, maxK := range []int{1, 2, 3, 4} {
		for trial := 0; trial < 12; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*maxK + trial)))
			n := 3 + rng.Intn(4) // 3..6 qubits
			if trial >= 10 {
				// Large-n cases exercise the diagonal low/high table split
				// and per-high-qubit cross tables (active only for n >= 8).
				n = 9 + rng.Intn(3)
			}
			c := randomFullGateSetCircuit(n, 40+rng.Intn(60), rng)
			ref, _ := RunCircuit(c, 1, rand.New(rand.NewSource(7)))
			plan := circuit.PlanFusionK(c, maxK)
			got, _ := RunProgram(plan.Compile(c), 1, rand.New(rand.NewSource(7)))
			if d := maxAmpDiff(ref, got); d > 1e-12 {
				t.Fatalf("maxK=%d trial=%d n=%d: fused/unfused amplitude diff %g > 1e-12\n%s",
					maxK, trial, n, d, c.String())
			}
			got.Release()
			ref.Release()
		}
	}
}

// TestFusionEquivalenceParametricRebind checks the batch contract: one plan
// built from the symbolic ansatz serves every binding.
func TestFusionEquivalenceParametricRebind(t *testing.T) {
	c := circuit.New(4)
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	for layer := 0; layer < 2; layer++ {
		g := circuit.Sym(fmt.Sprintf("gamma%d", layer), 2)
		b := circuit.Sym(fmt.Sprintf("beta%d", layer), 2)
		for q := 0; q+1 < 4; q++ {
			c.RZZ(q, q+1, g)
		}
		for q := 0; q < 4; q++ {
			c.RX(q, b)
		}
	}
	plan := circuit.PlanFusion(c)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		binding := map[string]float64{
			"gamma0": rng.Float64(), "gamma1": rng.Float64(),
			"beta0": rng.Float64(), "beta1": rng.Float64(),
		}
		bound := c.Bind(binding)
		ref, _ := RunCircuit(bound, 1, rand.New(rand.NewSource(3)))
		got, _ := RunProgram(plan.Compile(bound), 1, rand.New(rand.NewSource(3)))
		if d := maxAmpDiff(ref, got); d > 1e-12 {
			t.Fatalf("trial %d: rebound fused diff %g > 1e-12", trial, d)
		}
		got.Release()
		ref.Release()
	}
}

// TestFusedWorkersMatchSerial runs a fused circuit with chunked workers and
// checks agreement with the serial path (exercises the persistent pool).
func TestFusedWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomFullGateSetCircuit(13, 120, rng) // 8192 amps: above the parallel threshold
	serial, _ := RunFused(c, nil, 1, rand.New(rand.NewSource(1)))
	parallel, _ := RunFused(c, nil, 8, rand.New(rand.NewSource(1)))
	if d := maxAmpDiff(serial, parallel); d > 1e-12 {
		t.Fatalf("worker-pool execution diverges from serial: %g", d)
	}
	serial.Release()
	parallel.Release()
}

// TestSimulateFusedMatchesMeasurement checks that the fused Simulate path
// still produces the expected distribution on a GHZ circuit.
func TestSimulateFusedMatchesMeasurement(t *testing.T) {
	c := circuit.New(5)
	c.H(0)
	for q := 0; q+1 < 5; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	counts := Simulate(c, 4000, 1, rand.New(rand.NewSource(9)))
	if len(counts) != 2 {
		t.Fatalf("GHZ support should be 2 strings, got %v", counts)
	}
	if counts["00000"]+counts["11111"] != 4000 {
		t.Fatalf("GHZ counts leak off support: %v", counts)
	}
	if counts["00000"] < 1700 || counts["11111"] < 1700 {
		t.Fatalf("GHZ counts unbalanced: %v", counts)
	}
}
