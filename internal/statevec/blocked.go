package statevec

// Cache-blocked staged execution: the memory-bandwidth half of the engine.
//
// The per-op fused path (fused.go) streams all 2^n amplitudes through cache
// once per fused op, so a deep circuit is bandwidth-bound: every op is a
// full-statevector sweep. This file executes the same program *stage by
// stage* instead. The distributed stage partitioner (circuit.PlanDistStages,
// reused through circuit.PlanTileStages with "rank shard" = L2-resident
// tile) groups consecutive ops whose non-diagonal support fits the low
// tileBits bit positions of the current layout; the executor then walks the
// statevector one 2^tileBits tile at a time, applying the *whole stage* to
// each tile while it sits in cache. Amplitudes cross the memory bus once
// per stage, not once per op, and a stage boundary is a single bit
// permutation sweep — the in-memory analog of the distributed engine's
// all-to-all shard shuffle.
//
// On the stage path amplitudes live in split re/im []float64 form
// (structure-of-arrays, soa.go) so the tile kernels run unit-stride float
// loops the compiler can keep in registers and vectorize. Combined diagonal
// layers evaluate per tile from factor tables spanning one tile (shared
// read-only across tiles, so they stay cache-hot) with global-bit factors
// folded into a per-tile scalar — diagonal ops never constrain the layout,
// exactly as in the distributed scheme. Execution order per amplitude is
// identical to the per-op path, so staged and fused runs agree to
// floating-point rounding (see the randomized equivalence tests).

import (
	"fmt"
	"math/rand"
	"sort"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
)

// tileKind selects the SoA kernel of a lowered tile op.
type tileKind int

const (
	tk1Q     tileKind = iota // generic 2x2 on an in-tile bit
	tkDiag1                  // diagonal 2x2 on an in-tile bit
	tkDiag1G                 // diagonal 2x2 on a tile-index bit (per-tile scalar)
	tkPerm1                  // antidiagonal 2x2
	tkH                      // Hadamard
	tkReal1                  // all-real 2x2
	tkRX                     // RX-form 2x2
	tk2Q                     // dense 4x4
	tkPerm2                  // phased 4x4 permutation
	tkKQ                     // dense 2^k unitary
	tkDiag                   // combined diagonal layer (table evaluation)
)

// tileOp is one stage operation lowered onto the tile coordinate system:
// qubits are replaced by physical bit masks under the stage layout, matrix
// entries are unpacked into the form the SoA kernel wants, and combined
// diagonal layers carry their prebuilt factor tables.
type tileOp struct {
	kind      tileKind
	bit, bit2 int // physical bit masks (bit = matrix-high for 2q)
	gbit      int // tkDiag1G: tile-index bit mask
	m1        [2][2]complex128
	f         [4]float64 // tkReal1: r00,r01,r10,r11; tkRX: c0,v0,v1,c1
	m         *linalg.Matrix
	perm      [4]uint8
	phase     [4]complex128
	off       []int // tkKQ: matrix-basis index -> bit offset
	sortedPos []int // tkKQ: ascending physical positions
	diag      *tileDiag
}

// tileSpan is a degenerate (zero-factor) cross term of a diagonal layer:
// per tile it collapses to a plain diagonal 1q on the in-tile bit, selected
// by the tile-index bit.
type tileSpan struct {
	gbit, bit int
	d         [4]complex128
}

// crossTab is the cross-factor table of one tile-index bit: active on
// tiles whose bit is set, folded into the sweep beside the main table.
type crossTab struct {
	gbit   int
	re, im []float64
}

// tileDiag is a combined diagonal layer lowered for per-tile evaluation:
// in-tile factors fold into tab, tile-index factors into the per-tile
// scalar table high, and factors crossing the boundary decompose into
// separable parts plus a cross table (the in-tile mirror of
// ApplyDiagTerms' low/high split).
type tileDiag struct {
	tabRe, tabIm   []float64
	highRe, highIm []float64
	cross          []crossTab
	spans          []tileSpan
	tb, gb         int // buffer log-sizes for arena return
}

func (td *tileDiag) release() {
	putF64Buf(td.tb, td.tabRe)
	putF64Buf(td.tb, td.tabIm)
	putF64Buf(td.gb, td.highRe)
	putF64Buf(td.gb, td.highIm)
	for _, ct := range td.cross {
		putF64Buf(td.tb, ct.re)
		putF64Buf(td.tb, ct.im)
	}
}

func onesF64(buf []float64) {
	for i := range buf {
		buf[i] = 1
	}
}

// buildTileDiag lowers a combined diagonal run onto the tile coordinate
// system of a stage: term qubits map through the layout, then split by
// whether their physical position is inside the tile.
func buildTileDiag(d1 []circuit.DiagTerm1, d2 []circuit.DiagTerm2, layout []int, tb, n int) *tileDiag {
	gb := n - tb
	td := &tileDiag{
		tabRe: getF64Buf(tb), tabIm: getF64Buf(tb),
		highRe: getF64Buf(gb), highIm: getF64Buf(gb),
		tb: tb, gb: gb,
	}
	onesF64(td.tabRe)
	clear(td.tabIm)
	onesF64(td.highRe)
	clear(td.highIm)
	crossOf := make(map[int]int) // tile-index bit mask -> index in td.cross
	crossFor := func(gbit int) crossTab {
		if i, ok := crossOf[gbit]; ok {
			return td.cross[i]
		}
		ct := crossTab{gbit: gbit, re: getF64Buf(tb), im: getF64Buf(tb)}
		onesF64(ct.re)
		clear(ct.im)
		crossOf[gbit] = len(td.cross)
		td.cross = append(td.cross, ct)
		return ct
	}
	for _, t := range d1 {
		p := layout[t.Q]
		if p < tb {
			foldDiag1(td.tabRe, td.tabIm, t.D[0], t.D[1], 1<<uint(p))
		} else {
			foldDiag1(td.highRe, td.highIm, t.D[0], t.D[1], 1<<uint(p-tb))
		}
	}
	for _, t := range d2 {
		pa, pb := layout[t.A], layout[t.B]
		d := t.D
		if pa < pb {
			// Normalize to pa > pb; swapping the qubits swaps the mixed entries.
			pa, pb = pb, pa
			d[1], d[2] = d[2], d[1]
		}
		switch {
		case pa < tb:
			foldDiag2(td.tabRe, td.tabIm, d, 1<<uint(pa), 1<<uint(pb))
		case pb >= tb:
			foldDiag2(td.highRe, td.highIm, d, 1<<uint(pa-tb), 1<<uint(pb-tb))
		default:
			gbit := 1 << uint(pa-tb)
			if d[0] == 0 || d[1] == 0 || d[2] == 0 {
				// Non-invertible factor (never produced by unitary gates):
				// per tile it is a plain diagonal 1q selected by the tile bit.
				td.spans = append(td.spans, tileSpan{gbit: gbit, bit: 1 << uint(pb), d: d})
				continue
			}
			// D(a,b) = S·H^a·L^b·C^(a·b): separable parts join the tables,
			// the cross factor survives in a per-tile-bit table.
			lo := d[1] / d[0]
			hi := d[2] / d[0]
			cf := (d[0] * d[3]) / (d[1] * d[2])
			foldDiag1(td.tabRe, td.tabIm, 1, lo, 1<<uint(pb))
			foldDiag1(td.highRe, td.highIm, d[0], d[0]*hi, gbit)
			ct := crossFor(gbit)
			foldDiag1(ct.re, ct.im, 1, cf, 1<<uint(pb))
		}
	}
	return td
}

// apply evaluates the diagonal layer on tile t. acts is caller-owned
// scratch for the active cross tables (reused across the caller's tiles).
func (td *tileDiag) apply(re, im []float64, t int, acts [][2][]float64) [][2][]float64 {
	acts = acts[:0]
	for _, ct := range td.cross {
		if t&ct.gbit != 0 {
			acts = append(acts, [2][]float64{ct.re, ct.im})
		}
	}
	soaDiagTab(re, im, td.tabRe, td.tabIm, td.highRe[t], td.highIm[t], acts)
	for _, sp := range td.spans {
		v := 0
		if t&sp.gbit != 0 {
			v = 2
		}
		soaDiag1(re, im, sp.d[v], sp.d[v|1], sp.bit)
	}
	return acts
}

// lowerOp lowers one fused op of a stage onto the tile coordinate system.
// Passthrough gates classify into the cheapest exact tile kernel through
// the fusion compiler's own classifier. Barriers and identities vanish;
// measurement and reset cannot run on the staged path (callers pre-scan
// and fall back, see stagedCompatible).
func lowerOp(dst []tileOp, op *circuit.FusedOp, layout []int, tb, n int) []tileOp {
	pos := func(q int) int { return layout[q] }
	switch op.Kind {
	case circuit.FusedGate:
		g := op.Gate
		switch g.Kind {
		case circuit.KindBarrier, circuit.KindI:
			return dst
		case circuit.KindMeasure, circuit.KindReset:
			panic("statevec: measurement on the staged path (pre-scan missed it)")
		}
		cop := circuit.ClassifyUnitary(circuit.GateMatrix(*g), g.Qubits)
		return lowerOp(dst, &cop, layout, tb, n)
	case circuit.FusedDense1Q:
		return append(dst, tileOp{kind: tk1Q, bit: 1 << uint(pos(op.Qubits[0])), m1: op.M1})
	case circuit.FusedDiag1Q:
		// Unconstrained: the qubit may sit at a tile-index position, where
		// the factor is constant per tile.
		p := pos(op.Qubits[0])
		if p < tb {
			return append(dst, tileOp{kind: tkDiag1, bit: 1 << uint(p), m1: op.M1})
		}
		return append(dst, tileOp{kind: tkDiag1G, gbit: 1 << uint(p-tb), m1: op.M1})
	case circuit.FusedPerm1Q:
		return append(dst, tileOp{kind: tkPerm1, bit: 1 << uint(pos(op.Qubits[0])), m1: op.M1})
	case circuit.FusedHadamard:
		return append(dst, tileOp{kind: tkH, bit: 1 << uint(pos(op.Qubits[0]))})
	case circuit.FusedReal1Q:
		return append(dst, tileOp{kind: tkReal1, bit: 1 << uint(pos(op.Qubits[0])),
			f: [4]float64{real(op.M1[0][0]), real(op.M1[0][1]), real(op.M1[1][0]), real(op.M1[1][1])}})
	case circuit.FusedRXLike:
		return append(dst, tileOp{kind: tkRX, bit: 1 << uint(pos(op.Qubits[0])),
			f: [4]float64{real(op.M1[0][0]), imag(op.M1[0][1]), imag(op.M1[1][0]), real(op.M1[1][1])}})
	case circuit.FusedRXPair:
		// CompileSeq never pairs, but lower defensively as two passes: the
		// tile is cache-resident, the pairing win is already banked.
		dst = append(dst, tileOp{kind: tkRX, bit: 1 << uint(pos(op.Qubits[1])), f: op.RXB})
		return append(dst, tileOp{kind: tkRX, bit: 1 << uint(pos(op.Qubits[0])), f: op.RXA})
	case circuit.FusedDense2Q:
		return append(dst, tileOp{kind: tk2Q, m: op.M,
			bit: 1 << uint(pos(op.Qubits[0])), bit2: 1 << uint(pos(op.Qubits[1]))})
	case circuit.FusedPerm2Q:
		return append(dst, tileOp{kind: tkPerm2, perm: op.Perm, phase: op.Phase,
			bit: 1 << uint(pos(op.Qubits[0])), bit2: 1 << uint(pos(op.Qubits[1]))})
	case circuit.FusedDenseKQ:
		k := len(op.Qubits)
		ps := make([]int, k)
		for i, q := range op.Qubits {
			ps[i] = pos(q)
		}
		sorted := append([]int(nil), ps...)
		sort.Ints(sorted)
		off := make([]int, 1<<uint(k))
		for v := range off {
			o := 0
			for t := 0; t < k; t++ {
				if v&(1<<uint(k-1-t)) != 0 {
					o |= 1 << uint(ps[t])
				}
			}
			off[v] = o
		}
		return append(dst, tileOp{kind: tkKQ, m: op.M, off: off, sortedPos: sorted})
	case circuit.FusedDiagonal:
		return append(dst, tileOp{kind: tkDiag, diag: buildTileDiag(op.D1, op.D2, layout, tb, n)})
	}
	panic(fmt.Sprintf("statevec: unknown fused op kind %d", op.Kind))
}

// stagedCompatible reports whether the program can run on the staged path:
// mid-circuit measurement and reset need collapse on the logical state and
// fall back to per-op execution.
func stagedCompatible(prog *circuit.FusedProgram) bool {
	for i := range prog.Ops {
		op := &prog.Ops[i]
		if op.Kind == circuit.FusedGate {
			switch op.Gate.Kind {
			case circuit.KindMeasure, circuit.KindReset:
				return false
			}
		}
	}
	return true
}

// bitShift is one group of a bit permutation whose bits move by the same
// amount: the gather OR-folds (j & mask) shifted by sh.
type bitShift struct {
	mask, sh int
	left     bool
}

// bitPerm is a physical bit permutation compiled into grouped shifts: the
// source index of destination index j is keep|shift terms, a handful of
// mask-shift ops instead of one test per qubit.
type bitPerm struct {
	keep   int
	shifts []bitShift
}

// buildBitPerm compiles the permutation taking bit srcPos[q] of the source
// index to bit dstPos[q] of the destination index.
func buildBitPerm(srcPos, dstPos []int) bitPerm {
	var p bitPerm
	byDelta := map[int]int{}
	for q := range srcPos {
		d := srcPos[q] - dstPos[q]
		if d == 0 {
			p.keep |= 1 << uint(dstPos[q])
		} else {
			byDelta[d] |= 1 << uint(dstPos[q])
		}
	}
	deltas := make([]int, 0, len(byDelta))
	for d := range byDelta {
		deltas = append(deltas, d)
	}
	sort.Ints(deltas)
	for _, d := range deltas {
		if d > 0 {
			p.shifts = append(p.shifts, bitShift{mask: byDelta[d], sh: d, left: true})
		} else {
			p.shifts = append(p.shifts, bitShift{mask: byDelta[d], sh: -d})
		}
	}
	return p
}

func (p *bitPerm) src(j int) int {
	i := j & p.keep
	for _, s := range p.shifts {
		if s.left {
			i |= (j & s.mask) << uint(s.sh)
		} else {
			i |= (j & s.mask) >> uint(s.sh)
		}
	}
	return i
}

func layoutsEqual(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gatherRun returns the length of the contiguous source runs of the
// permutation from srcLayout to dstLayout: 2^r where r is the lowest
// position whose occupying qubit changes. Canonicalized schedules move only
// boundary-crossing qubits, so r is typically several bits and the
// stage-boundary gather proceeds in multi-cacheline copy chunks.
func gatherRun(srcLayout, dstLayout []int, n int) int {
	occSrc := make([]int, n)
	occDst := make([]int, n)
	for q := 0; q < n; q++ {
		occSrc[srcLayout[q]] = q
		occDst[dstLayout[q]] = q
	}
	r := 0
	for r < n && occSrc[r] == occDst[r] {
		r++
	}
	return 1 << uint(r)
}

// gatherTile fills one destination tile from the source buffers under the
// bit permutation p, copying run-length contiguous chunks. The caller
// guarantees run is a power of two dividing the tile size (or larger, in
// which case the whole tile is one contiguous block).
func gatherTile(dstRe, dstIm, re, im []float64, p *bitPerm, off, run int) {
	ts := len(dstRe)
	if run >= ts {
		src := p.src(off)
		copy(dstRe, re[src:src+ts])
		copy(dstIm, im[src:src+ts])
		return
	}
	if run >= 4 {
		for j := 0; j < ts; j += run {
			src := p.src(off + j)
			copy(dstRe[j:j+run], re[src:src+run])
			copy(dstIm[j:j+run], im[src:src+run])
		}
		return
	}
	// Degenerate short runs: plain destination-sequential gather.
	for j := 0; j < ts; j++ {
		src := p.src(off + j)
		dstRe[j] = re[src]
		dstIm[j] = im[src]
	}
}

// execTileOps applies a lowered stage to one tile.
func execTileOps(ops []tileOp, re, im []float64, t int, acts [][2][]float64) [][2][]float64 {
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case tk1Q:
			soa1Q(re, im, op.m1, op.bit)
		case tkDiag1:
			soaDiag1(re, im, op.m1[0][0], op.m1[1][1], op.bit)
		case tkDiag1G:
			d := op.m1[0][0]
			if t&op.gbit != 0 {
				d = op.m1[1][1]
			}
			soaScale(re, im, real(d), imag(d))
		case tkPerm1:
			soaPerm1(re, im, op.m1[0][1], op.m1[1][0], op.bit)
		case tkH:
			soaH(re, im, op.bit)
		case tkReal1:
			soaReal1(re, im, op.f[0], op.f[1], op.f[2], op.f[3], op.bit)
		case tkRX:
			soaRX(re, im, op.f[0], op.f[1], op.f[2], op.f[3], op.bit)
		case tk2Q:
			soa2QDense(re, im, op.m, op.bit, op.bit2)
		case tkPerm2:
			soaPerm2(re, im, op.perm, op.phase, op.bit, op.bit2)
		case tkKQ:
			soaKQ(re, im, op.m, op.off, op.sortedPos)
		case tkDiag:
			acts = op.diag.apply(re, im, t, acts)
		}
	}
	return acts
}

// RunStaged executes a bound circuit through the cache-blocked staged
// engine: the program compiled one-op-per-segment (CompileSeq), the
// schedule's stages applied tile by tile in split re/im layout, stage
// boundaries as bit-permutation sweeps. sched must come from
// circuit.PlanTileStages on the same plan. Returns ok=false (without
// touching any state) when the program needs per-op execution
// (mid-circuit measurement or reset); callers fall back to RunProgram.
func RunStaged(c *circuit.Circuit, plan *circuit.FusionPlan, sched *circuit.DistSchedule, workers int, rng *rand.Rand) (*State, []int, bool) {
	if !c.IsBound() {
		panic("statevec: circuit has unbound parameters")
	}
	if plan == nil {
		plan = circuit.PlanFusion(c)
	}
	prog := plan.CompileSeq(c)
	if !stagedCompatible(prog) {
		return nil, nil, false
	}
	n := prog.NQubits
	tb := sched.NLocal
	if sched.NQubits != n || tb > n {
		panic("statevec: tile schedule does not match the circuit")
	}
	tileSize := 1 << uint(tb)
	numTiles := 1 << uint(n-tb)
	re := getF64Buf(n)
	im := getF64Buf(n)
	clear(re)
	clear(im)
	re[0] = 1
	cur := make([]int, n)
	for q := range cur {
		cur[q] = q // PlanDistStages starts from the identity layout
	}
	// Stage boundaries do not run as separate permutation sweeps: when the
	// layout changes, each destination tile is gathered from the old buffers
	// (contiguous run copies under the canonicalized layouts) and the whole
	// stage executes on it while it is cache-hot, so a remap costs scattered
	// reads inside the one sweep the stage pays anyway.
	var spareRe, spareIm []float64
	ops := make([]tileOp, 0, 16)
	minPar := parallelThreshold >> uint(tb)
	if minPar < 1 {
		minPar = 1
	}
	for _, st := range sched.Stages {
		ops = ops[:0]
		for _, oi := range st.Ops {
			ops = lowerOp(ops, &prog.Ops[oi], st.Layout, tb, n)
		}
		stageOps := ops
		if !layoutsEqual(cur, st.Layout) {
			if spareRe == nil {
				spareRe = getF64Buf(n)
				spareIm = getF64Buf(n)
			}
			p := buildBitPerm(cur, st.Layout)
			run := gatherRun(cur, st.Layout, n)
			dstRe, dstIm, srcRe, srcIm := spareRe, spareIm, re, im
			ParallelFor(workers, numTiles, minPar, func(start, end int) {
				var acts [][2][]float64
				for t := start; t < end; t++ {
					off := t * tileSize
					tr := dstRe[off : off+tileSize]
					ti := dstIm[off : off+tileSize]
					gatherTile(tr, ti, srcRe, srcIm, &p, off, run)
					acts = execTileOps(stageOps, tr, ti, t, acts)
				}
			})
			re, im, spareRe, spareIm = dstRe, dstIm, srcRe, srcIm
			copy(cur, st.Layout)
		} else if len(ops) > 0 {
			tgtRe, tgtIm := re, im
			ParallelFor(workers, numTiles, minPar, func(start, end int) {
				var acts [][2][]float64
				for t := start; t < end; t++ {
					off := t * tileSize
					acts = execTileOps(stageOps, tgtRe[off:off+tileSize], tgtIm[off:off+tileSize], t, acts)
				}
			})
		}
		for i := range ops {
			if ops[i].diag != nil {
				ops[i].diag.release()
			}
		}
	}
	if spareRe != nil {
		putF64Buf(n, spareRe)
		putF64Buf(n, spareIm)
	}
	// Interleave back to logical-order complex128, undoing the final layout.
	s := NewState(n)
	if workers > 1 {
		s.Workers = workers
	}
	amp := s.Amp
	ident := true
	for q := range cur {
		if cur[q] != q {
			ident = false
			break
		}
	}
	if ident {
		ParallelFor(workers, len(amp), parallelThreshold, func(start, end int) {
			for i := start; i < end; i++ {
				amp[i] = complex(re[i], im[i])
			}
		})
	} else {
		id := make([]int, n)
		for q := range id {
			id[q] = q
		}
		p := buildBitPerm(cur, id) // logical bit q reads physical bit cur[q]
		run := gatherRun(cur, id, n)
		if run >= 4 {
			// The canonicalized schedules pin a low-bit index prefix, so the
			// interleave reads contiguous source runs exactly like the
			// stage-boundary gather instead of single scattered elements.
			blocks := len(amp) / run
			minBlocks := parallelThreshold / run
			if minBlocks < 1 {
				minBlocks = 1
			}
			ParallelFor(workers, blocks, minBlocks, func(start, end int) {
				for b := start; b < end; b++ {
					l := b * run
					i := p.src(l)
					for k := 0; k < run; k++ {
						amp[l+k] = complex(re[i+k], im[i+k])
					}
				}
			})
		} else {
			ParallelFor(workers, len(amp), parallelThreshold, func(start, end int) {
				for l := start; l < end; l++ {
					i := p.src(l)
					amp[l] = complex(re[i], im[i])
				}
			})
		}
	}
	putF64Buf(n, re)
	putF64Buf(n, im)
	return s, make([]int, n), true
}

// StageStats summarizes a tile schedule for diagnostics and the bench
// harness: how many full-statevector sweeps the staged path performs
// (stages plus remaps) against the per-op count it replaces.
func StageStats(sched *circuit.DistSchedule, nOps int) (stages, remaps int, sweepRatio float64) {
	stages = len(sched.Stages)
	remaps = sched.Remaps()
	if nOps > 0 {
		sweepRatio = float64(stages+remaps) / float64(nOps)
	}
	return
}
