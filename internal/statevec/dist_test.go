package statevec

import (
	"math"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/mpi"
)

// runDist executes a circuit over p ranks and returns the rank-0 counts.
func runDist(t *testing.T, c *circuit.Circuit, p, shots int, seed int64) map[string]int {
	t.Helper()
	w := mpi.NewWorld(p)
	var counts map[string]int
	err := w.Run(func(comm *mpi.Comm) error {
		got, err := RunDistributed(comm, c, shots, seed)
		if comm.Rank() == 0 {
			counts = got
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestDistributedGHZ(t *testing.T) {
	c := circuit.New(5)
	c.H(0)
	for i := 0; i+1 < 5; i++ {
		c.CX(i, i+1)
	}
	for _, p := range []int{1, 2, 4, 8} {
		counts := runDist(t, c, p, 2000, 42)
		total := 0
		for key, n := range counts {
			if key != "00000" && key != "11111" {
				t.Fatalf("p=%d: unexpected GHZ outcome %q", p, key)
			}
			total += n
		}
		if total != 2000 {
			t.Fatalf("p=%d: total %d", p, total)
		}
		if counts["00000"] < 800 || counts["11111"] < 800 {
			t.Fatalf("p=%d: skewed %v", p, counts)
		}
	}
}

func TestDistributedMatchesSerialDistribution(t *testing.T) {
	// Compare sampled frequencies between the serial engine and distributed
	// runs with several rank counts on a random circuit.
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(6, 40, rng)
	c.Name = "dist-check"
	shots := 6000
	serial := Simulate(c, shots, 1, rand.New(rand.NewSource(1)))
	for _, p := range []int{2, 4, 8} {
		dist := runDist(t, c, p, shots, 99)
		keys := map[string]bool{}
		for k := range serial {
			keys[k] = true
		}
		for k := range dist {
			keys[k] = true
		}
		for k := range keys {
			fa := float64(serial[k]) / float64(shots)
			fb := float64(dist[k]) / float64(shots)
			if math.Abs(fa-fb) > 0.05 {
				t.Fatalf("p=%d key %s: serial %.3f vs dist %.3f", p, k, fa, fb)
			}
		}
	}
}

func TestDistributedGlobalControlGate(t *testing.T) {
	// Entangle the top qubit (global for p>1) as control of a local target.
	c := circuit.New(4)
	c.X(3).CX(3, 0) // |1001>
	counts := runDist(t, c, 4, 100, 5)
	if counts["1001"] != 100 {
		t.Fatalf("counts %v, want all 1001", counts)
	}
	// Control not satisfied: nothing happens.
	c2 := circuit.New(4)
	c2.CX(3, 0)
	counts2 := runDist(t, c2, 4, 100, 5)
	if counts2["0000"] != 100 {
		t.Fatalf("counts %v, want all 0000", counts2)
	}
}

func TestDistributedGlobalTargetWithLocalControl(t *testing.T) {
	c := circuit.New(4)
	c.X(0).CX(0, 3) // |1001>
	counts := runDist(t, c, 4, 100, 6)
	if counts["1001"] != 100 {
		t.Fatalf("counts %v", counts)
	}
}

func TestDistributedErrors(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	w := mpi.NewWorld(3) // not a power of two
	err := w.Run(func(comm *mpi.Comm) error {
		_, err := RunDistributed(comm, c, 16, 1)
		if err == nil {
			t.Error("expected power-of-two error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w8 := mpi.NewWorld(8) // more ranks than amplitudes
	err = w8.Run(func(comm *mpi.Comm) error {
		_, err := RunDistributed(comm, c, 16, 1)
		if err == nil {
			t.Error("expected too-many-ranks error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedShotConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := randomCircuit(5, 25, rng)
	counts := runDist(t, c, 4, 1234, 11)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 1234 {
		t.Fatalf("shot total %d, want 1234", total)
	}
}
