package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"sync"

	"qfw/internal/core"
)

// cacheKey builds the content address of one execution: spec hash, the
// element's parameter binding, and every engine-relevant run option. Any
// option that can change the returned counts, expectation value, or
// truncation profile — shots, seed, sub-backend/engine, placement, MPS
// bond/cutoff knobs, the observable — is part of the key, so two requests
// share an entry only when a replay is guaranteed bit-identical.
//
// Analytic (shots=0) expectation queries normalize the seed to zero: no
// sampling consumes randomness, so every seed maps to the same exact value
// and the memoization spans seeds.
func cacheKey(spec core.CircuitSpec, binding core.Bindings, opts core.RunOptions, analytic bool) string {
	var b strings.Builder
	b.WriteString(spec.Hash())
	b.WriteByte('\x00')
	writeBinding(&b, binding)
	b.WriteByte('\x00')
	norm := opts
	if analytic {
		norm.Seed = 0
	}
	// RunOptions marshals with a fixed field order, so the JSON form is a
	// canonical serialization of every engine-relevant knob — including
	// fields added later, which then become part of the key automatically.
	oj, _ := json.Marshal(norm)
	b.Write(oj)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// writeBinding appends a canonical (sorted, exact hex-float) rendering of a
// parameter binding.
func writeBinding(b *strings.Builder, binding core.Bindings) {
	if len(binding) == 0 {
		return
	}
	names := make([]string, 0, len(binding))
	for name := range binding {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(binding[name], 'x', -1, 64))
		b.WriteByte(';')
	}
}

// resultCache is a bounded LRU of finished execution results keyed by
// content address. Values are treated as immutable: hits hand back a
// shallow copy with zeroed timings so the stored entry never aliases a
// caller-visible mutable struct.
type resultCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru list.List // front = most recently used
}

type cacheEntry struct {
	key string
	res *core.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, m: make(map[string]*list.Element, capacity)}
}

// Get returns a replay copy of the cached result of key, if present.
func (c *resultCache) Get(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	cp := *el.Value.(*cacheEntry).res
	// A replay costs no queue or execution time: the breakdown resets to a
	// cache-hit marker and the serving layer fills in the lookup cost.
	cp.Timings = core.Timings{CacheHit: true}
	return &cp, true
}

// Put stores a finished result, evicting the least recently used entry when
// the cache is full.
func (c *resultCache) Put(key string, res *core.Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	for len(c.m) >= c.cap && c.lru.Len() > 0 {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
	c.m[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
}

// Len returns the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
