// Package serve is the multi-tenant serving layer between the DEFw RPC
// surface and a backend QPM: the piece that turns the single-job demo
// daemon into a traffic-bearing service. Three cooperating mechanisms make
// repeated and concurrent traffic fast and keep tenants isolated:
//
//   - a content-addressed result cache (exact-hit replay of deterministic
//     seeded runs, expectation-value memoization for analytic queries) with
//     single-flight deduplication, so N concurrent identical submissions
//     trigger one execution and repeats are served from memory;
//   - session-affine batch coalescing: a short admission window merges many
//     small submissions sharing a spec hash into one QPM batch, riding the
//     compile-once-per-batch machinery of the execution engines;
//   - a weighted fair-share scheduler (stride scheduling over per-tenant
//     FIFO queues) with per-tenant quotas and bounded queues that shed load
//     with a typed ErrOverloaded instead of growing without bound.
//
// Queue-depth and utilization telemetry rides the session's trace.Recorder
// next to the execution spans.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qfw/internal/core"
	"qfw/internal/trace"
)

// ErrOverloaded is the typed load-shedding error: the submission was
// rejected because a queue bound or tenant quota was hit. Clients back off
// and retry instead of growing the server's queues without bound.
var ErrOverloaded = errors.New("serve: overloaded")

// IsOverloaded detects ErrOverloaded even after the error has crossed an
// RPC boundary and been flattened to a string.
func IsOverloaded(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOverloaded) {
		return true
	}
	return strings.Contains(err.Error(), ErrOverloaded.Error())
}

// retryAfterFor sizes the backoff hint a shed carries: deeper queues mean
// longer waits before capacity frees, capped at a quarter second.
func retryAfterFor(depth int) time.Duration {
	d := time.Duration(1+depth) * time.Millisecond
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	return d
}

// RetryAfterHint extracts the retry_after_ms hint a shed error carries.
// It works on flattened client-side errors (the hint rides in the message
// exactly so it survives the RPC boundary).
func RetryAfterHint(err error) (time.Duration, bool) {
	if err == nil {
		return 0, false
	}
	msg := err.Error()
	i := strings.Index(msg, "retry_after_ms=")
	if i < 0 {
		return 0, false
	}
	var ms int64
	if _, serr := fmt.Sscanf(msg[i:], "retry_after_ms=%d", &ms); serr != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// ServiceName returns the DEFw service a backend's serving layer registers
// under (beside the raw "qpm.<backend>" service).
func ServiceName(backend string) string { return "serve." + backend }

// Config tunes one serving layer instance. The zero value gets sensible
// production defaults; tests shrink the bounds to exercise the shedding and
// eviction paths.
type Config struct {
	// CacheCap bounds the result cache (entries). 0 means the default
	// (4096); negative disables caching and single-flight deduplication.
	CacheCap int
	// Window is the coalescing admission window: a queued submission waits
	// this long for same-spec friends before dispatch. 0 disables the
	// wait (bursts still coalesce while dispatch slots are busy).
	Window time.Duration
	// MaxBatch caps the elements of one coalesced dispatch (default 64).
	MaxBatch int
	// QueueCap bounds the total queued elements across tenants; submissions
	// over the bound shed with ErrOverloaded (default 1024).
	QueueCap int
	// Quota is the default per-tenant bound on outstanding (queued +
	// dispatched) elements (default QueueCap). SetTenant overrides it.
	Quota int
	// Inflight bounds concurrently dispatched QPM batches (default: the
	// QPM's worker count).
	Inflight int
}

func (c Config) withDefaults(workers int) Config {
	if c.CacheCap == 0 {
		c.CacheCap = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Quota <= 0 {
		c.Quota = c.QueueCap
	}
	if c.Inflight <= 0 {
		c.Inflight = workers
	}
	return c
}

// elem is one schedulable circuit execution owned by a submission.
type elem struct {
	sub      *submission
	idx      int
	binding  core.Bindings
	key      string // cache key; "" when the element is not cacheable
	leader   bool   // owns the single-flight entry for key
	enq      time.Time
	lookupMS float64 // cache-lookup cost carried into the result's Timings
}

// submission tracks one Exec call's elements until all resolve.
type submission struct {
	mu        sync.Mutex
	settled   []bool
	results   []*core.Result
	errs      []string
	remaining int
	done      chan struct{}
}

func newSubmission(n int) *submission {
	return &submission{
		settled:   make([]bool, n),
		results:   make([]*core.Result, n),
		errs:      make([]string, n),
		remaining: n,
		done:      make(chan struct{}),
	}
}

// resolve records one element outcome; it is idempotent so a cache hit
// resolved early is not double-counted when its batch also recomputes it.
func (s *submission) resolve(i int, res *core.Result, errStr string) {
	s.mu.Lock()
	if s.settled[i] {
		s.mu.Unlock()
		return
	}
	s.settled[i] = true
	s.results[i] = res
	s.errs[i] = errStr
	s.remaining--
	last := s.remaining == 0
	s.mu.Unlock()
	if last {
		close(s.done)
	}
}

// unit is one dispatchable group: a spec plus ordered elements that will
// travel as a single QPM SubmitBatch. Mergeable units (analytic queries and
// unseeded singles, where per-element seeds carry no replay contract) keep
// absorbing same-group arrivals until dispatch.
type unit struct {
	tenant   string
	groupKey string // "" = never merged (seed schedule is load-bearing)
	spec     core.CircuitSpec
	opts     core.RunOptions
	elems    []*elem
	enq      time.Time
}

// flight is one in-progress execution other submissions can ride instead of
// recomputing (single-flight deduplication).
type flight struct {
	mu      sync.Mutex
	done    bool
	res     *core.Result
	errStr  string
	waiters []*elem
}

type tenantQueue struct {
	name        string
	weight      int
	quota       int
	pass        float64 // stride-scheduling virtual time
	units       []*unit
	open        map[string]*unit // queued mergeable units by group key
	outstanding int              // queued + dispatched elements
	served      int64
	shed        int64
}

// Server is the serving layer of one backend QPM.
type Server struct {
	backend string
	qpm     *core.QPM
	caps    core.Capabilities
	cfg     Config
	cache   *resultCache // nil when disabled
	rec     *trace.Recorder

	mu        sync.Mutex
	tenants   map[string]*tenantQueue
	flights   map[string]*flight
	queued    int // queued elements across tenants
	peakDepth int
	vtime     float64 // virtual time: pass of the last dispatched tenant
	draining  bool
	closed    bool

	wake  chan struct{}
	stopc chan struct{}
	sem   chan struct{} // bounds concurrent dispatched batches
	wg    sync.WaitGroup

	start    time.Time
	hits     atomic.Int64
	misses   atomic.Int64
	deduped  atomic.Int64
	shedded  atomic.Int64
	served   atomic.Int64
	groups   atomic.Int64
	grpElems atomic.Int64
	busyNS   atomic.Int64

	// Resolved metric handles (shared registry, labeled by backend).
	mHits, mMisses, mDeduped, mShed, mServed *trace.Counter
	hReq                                     *trace.Histogram
	gDepth                                   *trace.Gauge
}

// New builds and starts the serving layer over a QPM. rec may be nil.
func New(qpm *core.QPM, cfg Config, rec *trace.Recorder) *Server {
	if rec == nil {
		rec = qpm.Recorder()
	}
	cfg = cfg.withDefaults(qpm.Workers())
	s := &Server{
		backend: qpm.Backend(),
		qpm:     qpm,
		caps:    qpm.Capabilities(),
		cfg:     cfg,
		rec:     rec,
		tenants: make(map[string]*tenantQueue),
		flights: make(map[string]*flight),
		wake:    make(chan struct{}, 1),
		stopc:   make(chan struct{}),
		sem:     make(chan struct{}, cfg.Inflight),
		start:   time.Now(),
	}
	if cfg.CacheCap > 0 {
		s.cache = newResultCache(cfg.CacheCap)
	}
	met := rec.Metrics()
	s.mHits = met.Counter(trace.LabeledName("qfw_serve_cache_hits_total", "backend", s.backend))
	s.mMisses = met.Counter(trace.LabeledName("qfw_serve_cache_misses_total", "backend", s.backend))
	s.mDeduped = met.Counter(trace.LabeledName("qfw_serve_deduped_total", "backend", s.backend))
	s.mShed = met.Counter(trace.LabeledName("qfw_serve_shed_total", "backend", s.backend))
	s.mServed = met.Counter(trace.LabeledName("qfw_serve_served_total", "backend", s.backend))
	s.hReq = met.Histogram(trace.LabeledName("qfw_serve_request_ms", "backend", s.backend))
	s.gDepth = met.Gauge(trace.LabeledName("qfw_serve_queue_depth", "backend", s.backend))
	s.wg.Add(1)
	go s.dispatcher()
	return s
}

// Backend returns the backend this serving layer fronts.
func (s *Server) Backend() string { return s.backend }

// BusyNS returns the cumulative busy nanoseconds across the dispatch
// slots — the source a trace.UtilSampler turns into the serving layer's
// utilization time series.
func (s *Server) BusyNS() int64 { return s.busyNS.Load() }

// Slots returns the number of concurrent dispatch slots (the denominator
// of the utilization fraction).
func (s *Server) Slots() int { return s.cfg.Inflight }

// SetTenant configures a tenant's fair-share weight and outstanding-element
// quota (zero values keep the defaults).
func (s *Server) SetTenant(name string, weight, quota int) {
	s.mu.Lock()
	t := s.tenantLocked(name)
	if weight > 0 {
		t.weight = weight
	}
	if quota > 0 {
		t.quota = quota
	}
	s.mu.Unlock()
}

func (s *Server) tenantLocked(name string) *tenantQueue {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantQueue{name: name, weight: 1, quota: s.cfg.Quota, open: make(map[string]*unit)}
		s.tenants[name] = t
	}
	return t
}

// ExecInfo summarizes how a submission was served.
type ExecInfo struct {
	CacheHits int `json:"cache_hits"`
	Deduped   int `json:"deduped"`
}

// Exec runs one submission — a spec plus zero or more bindings — on behalf
// of a tenant and blocks until every element resolves. Results come back
// ordered with parallel per-element error strings ("" for success). The
// top-level error is non-nil only when the whole submission was rejected
// (draining, closed, bad spec, or shed with ErrOverloaded).
func (s *Server) Exec(tenant string, spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, []string, ExecInfo, error) {
	var info ExecInfo
	if spec.QASM == "" {
		return nil, nil, info, fmt.Errorf("serve[%s]: empty circuit spec", s.backend)
	}
	if tenant == "" {
		tenant = "default"
	}
	reqStart := time.Now()
	single := len(bindings) <= 1
	if len(bindings) == 0 {
		bindings = []core.Bindings{nil}
	}
	k := len(bindings)

	clientSeeded := opts.Seed != 0
	analytic := opts.Shots == 0 && opts.Observable != nil
	replayable := s.caps.DeterministicSeeded
	// Mergeable elements carry no per-element seed contract: analytic
	// queries (no sampling) and unseeded singles (caller accepted arbitrary
	// sampling). Everything else keeps its submission's seed schedule and
	// travels as one intact group.
	mergeable := analytic || (single && !clientSeeded)

	sub := newSubmission(k)
	eopts := make([]core.RunOptions, k)
	elems := make([]*elem, k)
	for i := range bindings {
		eo := opts
		if !single {
			// Element seeds follow the QPM batch schedule so serving a batch
			// is bit-identical to submitting it to the QPM directly.
			eo = opts.ForElement(i)
		}
		eopts[i] = eo
		e := &elem{sub: sub, idx: i, binding: bindings[i]}
		if replayable && (analytic || clientSeeded) && s.cache != nil {
			e.key = cacheKey(spec, bindings[i], eo, analytic)
		}
		elems[i] = e
	}

	var groupKey string
	if mergeable {
		norm := opts
		norm.Seed = 0
		class := "u"
		if analytic {
			class = "a"
		}
		groupKey = class + "|" + cacheKey(spec, nil, norm, analytic)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, info, fmt.Errorf("serve[%s]: closed", s.backend)
	}
	if s.draining {
		s.mu.Unlock()
		return nil, nil, info, fmt.Errorf("serve[%s]: %w", s.backend, core.ErrDraining)
	}
	t := s.tenantLocked(tenant)

	// Resolve what never needs the queue: cache hits and rides on in-flight
	// identical executions.
	var need []*elem
	for _, e := range elems {
		if e.key != "" {
			lookStart := time.Now()
			res, ok := s.cache.Get(e.key)
			lookMS := float64(time.Since(lookStart)) / float64(time.Millisecond)
			if ok {
				s.hits.Add(1)
				s.mHits.Inc()
				info.CacheHits++
				// A hit's entire cost is the lookup: report it instead of a
				// zeroed breakdown so clients can still reconcile TotalMS.
				res.Timings.CacheLookupMS = lookMS
				res.Timings.TotalMS = res.Timings.Sum()
				e.sub.resolve(e.idx, res, "")
				continue
			}
			e.lookupMS = lookMS
			s.misses.Add(1)
			s.mMisses.Inc()
			if single {
				if fl, ok := s.flights[e.key]; ok {
					s.deduped.Add(1)
					s.mDeduped.Inc()
					info.Deduped++
					attachFollower(fl, e)
					continue
				}
			}
		}
		need = append(need, e)
	}

	if len(need) > 0 && !mergeable && len(need) < k {
		// A seed-scheduled batch recomputes whole or not at all: partial
		// replay would shift the remaining elements' dispatch indices (and
		// thus seeds). Hits already resolved above stay resolved — resolve
		// is idempotent, so recomputed duplicates are dropped.
		need = elems
	}

	if len(need) > 0 {
		if t.outstanding+len(need) > t.quota || s.queued+len(need) > s.cfg.QueueCap {
			t.shed += int64(len(need))
			s.shedded.Add(int64(len(need)))
			s.mShed.Add(int64(len(need)))
			depth := s.queued
			s.mu.Unlock()
			err := fmt.Errorf("serve[%s]: %w: tenant %q has %d outstanding (quota %d), %d queued (cap %d); retry_after_ms=%d",
				s.backend, ErrOverloaded, tenant, t.outstanding, t.quota, depth, s.cfg.QueueCap,
				retryAfterFor(depth)/time.Millisecond)
			for _, e := range need {
				e.sub.resolve(e.idx, nil, err.Error())
			}
			<-sub.done
			s.hReq.Observe(float64(time.Since(reqStart)) / float64(time.Millisecond))
			return sub.results, sub.errs, info, err
		}
		s.admitLocked(t, groupKey, spec, opts, eopts[0], need, single, clientSeeded)
	}
	s.mu.Unlock()
	s.signal()

	<-sub.done
	s.hReq.Observe(float64(time.Since(reqStart)) / float64(time.Millisecond))
	return sub.results, sub.errs, info, nil
}

// admitLocked queues the elements that must execute. Mergeable elements
// join an open same-group unit of their tenant when one is waiting;
// everything else forms a new unit. Callers hold s.mu.
func (s *Server) admitLocked(t *tenantQueue, groupKey string, spec core.CircuitSpec, opts, headOpts core.RunOptions, need []*elem, single, clientSeeded bool) {
	if len(t.units) == 0 && t.outstanding == 0 {
		// (Re)activation: start at the global virtual time so an idle tenant
		// cannot bank credit and starve the others when it returns.
		if t.pass < s.vtime {
			t.pass = s.vtime
		}
	}
	if groupKey != "" {
		for _, e := range need {
			u := t.open[groupKey]
			if u == nil || len(u.elems) >= s.cfg.MaxBatch {
				u = &unit{tenant: t.name, groupKey: groupKey, spec: spec, opts: headOpts, enq: time.Now()}
				t.open[groupKey] = u
				t.units = append(t.units, u)
			}
			u.elems = append(u.elems, e)
			if single && e.key != "" {
				e.leader = true
				s.flights[e.key] = &flight{}
			}
		}
	} else {
		dispatchOpts := opts
		if single {
			dispatchOpts = headOpts
		}
		u := &unit{tenant: t.name, spec: spec, opts: dispatchOpts, elems: need, enq: time.Now()}
		t.units = append(t.units, u)
		if single && clientSeeded && need[0].key != "" {
			need[0].leader = true
			s.flights[need[0].key] = &flight{}
		}
	}
	now := time.Now()
	for _, e := range need {
		e.enq = now
	}
	t.outstanding += len(need)
	s.queued += len(need)
	if s.queued > s.peakDepth {
		s.peakDepth = s.queued
	}
	s.gDepth.Record(float64(s.queued))
}

func attachFollower(fl *flight, e *elem) {
	fl.mu.Lock()
	if fl.done {
		fl.mu.Unlock()
		e.sub.resolve(e.idx, replayOf(fl.res), fl.errStr)
		return
	}
	fl.waiters = append(fl.waiters, e)
	fl.mu.Unlock()
}

// replayOf copies a result for a second consumer. Like a cache hit, the
// replay costs no queue or execution time, so the breakdown resets to a
// bare cache-hit marker.
func replayOf(res *core.Result) *core.Result {
	if res == nil {
		return nil
	}
	cp := *res
	cp.Timings = core.Timings{CacheHit: true}
	return &cp
}

func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatcher is the scheduling loop: it waits for a free dispatch slot,
// then picks the ready unit of the minimum-pass tenant (weighted stride
// scheduling), charges the tenant's virtual time, and dispatches it.
// Acquiring the slot before choosing keeps every queued unit eligible until
// the moment one can actually run, so scheduling decisions always see the
// full backlog.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	for {
		select {
		case s.sem <- struct{}{}:
		case <-s.stopc:
			return
		}
		for {
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			u, wait := s.nextUnitLocked(time.Now())
			s.mu.Unlock()
			if u != nil {
				s.wg.Add(1)
				go s.dispatch(u)
				break
			}
			if wait <= 0 {
				wait = time.Hour
			}
			timer := time.NewTimer(wait)
			select {
			case <-s.wake:
				timer.Stop()
			case <-timer.C:
			case <-s.stopc:
				timer.Stop()
				return
			}
		}
	}
}

// nextUnitLocked removes and returns the next dispatchable unit, or the
// time to wait until one matures. A unit is ready when its admission window
// elapsed, it is full, or the server is draining.
func (s *Server) nextUnitLocked(now time.Time) (*unit, time.Duration) {
	var best *tenantQueue
	wait := time.Duration(-1)
	for _, t := range s.tenants {
		if len(t.units) == 0 {
			continue
		}
		u := t.units[0]
		ready := s.draining || s.cfg.Window <= 0 ||
			now.Sub(u.enq) >= s.cfg.Window || len(u.elems) >= s.cfg.MaxBatch
		if !ready {
			if d := u.enq.Add(s.cfg.Window).Sub(now); wait < 0 || d < wait {
				wait = d
			}
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
			best = t
		}
	}
	if best == nil {
		return nil, wait
	}
	u := best.units[0]
	best.units = best.units[1:]
	if u.groupKey != "" && best.open[u.groupKey] == u {
		delete(best.open, u.groupKey)
	}
	s.vtime = best.pass
	best.pass += float64(len(u.elems)) / float64(best.weight)
	s.queued -= len(u.elems)
	s.gDepth.Record(float64(s.queued))
	return u, 0
}

// dispatch runs one unit through the QPM as a single batch and resolves its
// elements, populating the cache and completing single-flight followers.
func (s *Server) dispatch(u *unit) {
	defer s.wg.Done()
	defer func() { <-s.sem; s.signal() }()
	start := time.Now()
	finish := s.rec.Span("serve:dispatch:"+u.spec.Name, "serve/"+s.backend+"/"+u.tenant)
	bindings := make([]core.Bindings, len(u.elems))
	for i, e := range u.elems {
		bindings[i] = e.binding
	}
	var results []*core.Result
	var errs []string
	id, err := s.qpm.SubmitBatch(u.spec, bindings, u.opts)
	if err == nil {
		results, errs, err = s.qpm.WaitBatch(id)
		if err == nil {
			// The serving layer owns the task lifecycle: reap the finished
			// batch so a long-lived daemon's task table stays bounded.
			_ = s.qpm.Delete(id)
		}
	}
	finish()
	s.busyNS.Add(int64(time.Since(start)))
	s.groups.Add(1)
	s.grpElems.Add(int64(len(u.elems)))

	s.mu.Lock()
	t := s.tenantLocked(u.tenant)
	t.outstanding -= len(u.elems)
	t.served += int64(len(u.elems))
	s.mu.Unlock()
	s.served.Add(int64(len(u.elems)))
	s.mServed.Add(int64(len(u.elems)))

	for i, e := range u.elems {
		var res *core.Result
		errStr := ""
		switch {
		case err != nil:
			errStr = err.Error()
		case errs != nil && errs[i] != "":
			errStr = errs[i]
		default:
			res = results[i]
		}
		if res != nil {
			// Complete the breakdown with the serving-layer components the
			// QPM cannot see; TotalMS stays the exact component sum.
			res.Timings.CacheLookupMS = e.lookupMS
			res.Timings.CoalesceWaitMS = float64(start.Sub(e.enq)) / float64(time.Millisecond)
			res.Timings.TotalMS = res.Timings.Sum()
		}
		if errStr == "" && e.key != "" && res != nil {
			s.cache.Put(e.key, res)
		}
		if e.leader {
			s.completeFlight(e.key, res, errStr)
		}
		e.sub.resolve(e.idx, res, errStr)
	}
}

func (s *Server) completeFlight(key string, res *core.Result, errStr string) {
	s.mu.Lock()
	fl, ok := s.flights[key]
	if ok {
		delete(s.flights, key)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	fl.mu.Lock()
	fl.done = true
	fl.res = res
	fl.errStr = errStr
	waiters := fl.waiters
	fl.waiters = nil
	fl.mu.Unlock()
	for _, e := range waiters {
		e.sub.resolve(e.idx, replayOf(res), errStr)
	}
}

func (s *Server) failUnit(u *unit, msg string) {
	for _, e := range u.elems {
		if e.leader {
			s.completeFlight(e.key, nil, msg)
		}
		e.sub.resolve(e.idx, nil, msg)
	}
	s.mu.Lock()
	t := s.tenantLocked(u.tenant)
	t.outstanding -= len(u.elems)
	s.mu.Unlock()
}

// Drain closes admission and waits up to timeout for every queued and
// dispatched element to resolve, reporting whether the layer fully drained.
// The admission window stops applying so queued work flushes immediately.
func (s *Server) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.signal()
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		idle := s.queued == 0
		for _, t := range s.tenants {
			idle = idle && t.outstanding == 0
		}
		s.mu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the scheduler, failing still-queued units. In-flight QPM
// batches are awaited so no dispatch goroutine outlives the server.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var orphans []*unit
	for _, t := range s.tenants {
		orphans = append(orphans, t.units...)
		t.units = nil
		t.open = make(map[string]*unit)
	}
	s.queued = 0
	s.mu.Unlock()
	close(s.stopc)
	for _, u := range orphans {
		s.failUnit(u, fmt.Sprintf("serve[%s]: closed", s.backend))
	}
	s.wg.Wait()
}

// TenantStats is one tenant's accounting snapshot.
type TenantStats struct {
	Weight      int   `json:"weight"`
	Quota       int   `json:"quota"`
	Served      int64 `json:"served"`
	Shed        int64 `json:"shed"`
	Outstanding int   `json:"outstanding"`
}

// Stats is the serving layer's observable state: cache effectiveness,
// dedup/coalescing activity, shedding, queue depths, and utilization of the
// dispatch slots since startup.
type Stats struct {
	Backend        string                 `json:"backend"`
	CacheHits      int64                  `json:"cache_hits"`
	CacheMisses    int64                  `json:"cache_misses"`
	CacheLen       int                    `json:"cache_len"`
	Deduped        int64                  `json:"deduped"`
	Served         int64                  `json:"served"`
	Shed           int64                  `json:"shed"`
	DispatchGroups int64                  `json:"dispatch_groups"`
	DispatchElems  int64                  `json:"dispatch_elems"`
	QueueDepth     int                    `json:"queue_depth"`
	PeakQueueDepth int                    `json:"peak_queue_depth"`
	UtilizationPct float64                `json:"utilization_pct"`
	Tenants        map[string]TenantStats `json:"tenants,omitempty"`
}

// Stats snapshots the serving layer counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Backend:        s.backend,
		CacheHits:      s.hits.Load(),
		CacheMisses:    s.misses.Load(),
		Deduped:        s.deduped.Load(),
		Served:         s.served.Load(),
		Shed:           s.shedded.Load(),
		DispatchGroups: s.groups.Load(),
		DispatchElems:  s.grpElems.Load(),
		Tenants:        make(map[string]TenantStats),
	}
	if s.cache != nil {
		st.CacheLen = s.cache.Len()
	}
	wall := time.Since(s.start)
	if wall > 0 {
		st.UtilizationPct = 100 * float64(s.busyNS.Load()) / (float64(wall) * float64(s.cfg.Inflight))
	}
	s.mu.Lock()
	st.QueueDepth = s.queued
	st.PeakQueueDepth = s.peakDepth
	for name, t := range s.tenants {
		st.Tenants[name] = TenantStats{
			Weight: t.weight, Quota: t.quota,
			Served: t.served, Shed: t.shed, Outstanding: t.outstanding,
		}
	}
	s.mu.Unlock()
	return st
}

// ---- DEFw RPC surface -------------------------------------------------

// ExecReq is the payload of the "exec" method: one tenant-tagged
// submission. Single runs ship an empty binding list.
type ExecReq struct {
	Tenant   string           `json:"tenant"`
	Spec     core.CircuitSpec `json:"spec"`
	Bindings []core.Bindings  `json:"bindings,omitempty"`
	Opts     core.RunOptions  `json:"opts"`
}

// ExecResp is the "exec" reply: ordered results with parallel per-element
// error strings, plus how the submission was served.
type ExecResp struct {
	Results []*core.Result `json:"results"`
	Errs    []string       `json:"errs,omitempty"`
	Info    ExecInfo       `json:"info"`
}

// tenantReq is the payload of "set_tenant".
type tenantReq struct {
	Name   string `json:"name"`
	Weight int    `json:"weight,omitempty"`
	Quota  int    `json:"quota,omitempty"`
}

// Handle implements defw.Handler: exec, stats, set_tenant. Each request
// carries its tenant token, so one connection can serve many sessions.
func (s *Server) Handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "exec":
		var req ExecReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("serve[%s]: bad payload: %w", s.backend, err)
		}
		results, errs, info, err := s.Exec(req.Tenant, req.Spec, req.Bindings, req.Opts)
		if err != nil {
			return nil, err
		}
		return json.Marshal(ExecResp{Results: results, Errs: errs, Info: info})
	case "stats":
		return json.Marshal(s.Stats())
	case "set_tenant":
		var req tenantReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("serve[%s]: bad payload: %w", s.backend, err)
		}
		if req.Name == "" {
			return nil, fmt.Errorf("serve[%s]: tenant name required", s.backend)
		}
		s.SetTenant(req.Name, req.Weight, req.Quota)
		return json.Marshal(struct{}{})
	default:
		return nil, fmt.Errorf("serve[%s]: unknown method %q", s.backend, method)
	}
}
