package serve

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"qfw/internal/core"
)

// fakeExec is a deterministic batch-native executor that records every
// dispatch, so tests can observe coalescing, dedup, and scheduling order.
// Its results are pure functions of (spec, binding, effective options), and
// analytic (shots=0, observable) queries ignore the seed — mirroring the
// contract real simulators provide.
type fakeExec struct {
	deterministic bool
	gate          chan struct{} // non-nil: executions block until opened
	once          sync.Once

	mu      sync.Mutex
	batches []int    // size of every ExecuteBatch call, in dispatch order
	order   []string // spec names in dispatch order
}

// open releases gated executions; safe to call more than once, and cleanup
// calls it so a failing test cannot wedge Close behind a blocked executor.
func (f *fakeExec) open() {
	f.once.Do(func() {
		if f.gate != nil {
			close(f.gate)
		}
	})
}

func (f *fakeExec) Name() string { return "fake" }

func (f *fakeExec) Capabilities() core.Capabilities {
	return core.Capabilities{Backend: "fake", CPU: true, DeterministicSeeded: f.deterministic}
}

func (f *fakeExec) record(spec core.CircuitSpec, n int) {
	f.mu.Lock()
	f.batches = append(f.batches, n)
	f.order = append(f.order, spec.Name)
	f.mu.Unlock()
	if f.gate != nil {
		<-f.gate
	}
}

func (f *fakeExec) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.batches)
}

func (f *fakeExec) dispatchOrder() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

func fakeRun(spec core.CircuitSpec, b core.Bindings, o core.RunOptions) core.ExecResult {
	analytic := o.Shots == 0 && o.Observable != nil
	v := float64(o.Shots) + 7*float64(o.MaxBond) + 13*float64(o.Nodes) + 1e6*o.Cutoff
	v += 17 * float64(len(o.Subbackend))
	v += float64(len(spec.QASM))
	if o.Observable != nil {
		v += 0.5
	}
	if !analytic {
		v += 1000 * float64(o.Seed)
	}
	for k, x := range b {
		v += float64(len(k)) * x * 31
	}
	key := "analytic"
	if !analytic {
		key = "s" + strconv.FormatInt(o.Seed, 10)
	}
	shots := o.Shots
	if shots <= 0 {
		shots = 1
	}
	return core.ExecResult{Counts: map[string]int{key: shots}, ExpVal: &v}
}

func (f *fakeExec) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	f.record(spec, 1)
	return fakeRun(spec, nil, opts), nil
}

func (f *fakeExec) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	f.record(spec, len(bindings))
	out := make([]core.ExecResult, len(bindings))
	for i, b := range bindings {
		out[i] = fakeRun(spec, b, opts.ForElement(i))
	}
	return out, nil
}

func testSpec(name string) core.CircuitSpec {
	return core.CircuitSpec{Name: name, NQubits: 2, QASM: "OPENQASM 2.0; // " + name}
}

func newServe(t *testing.T, f *fakeExec, workers int, cfg Config) *Server {
	t.Helper()
	q := core.NewQPM(f, workers, nil)
	s := New(q, cfg, nil)
	t.Cleanup(func() {
		f.open()
		s.Close()
		q.Close()
	})
	return s
}

func mustExec(t *testing.T, s *Server, tenant string, spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) []*core.Result {
	t.Helper()
	results, errs, _, err := s.Exec(tenant, spec, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != "" {
			t.Fatalf("element %d: %s", i, e)
		}
	}
	return results
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// ---- cache behavior ---------------------------------------------------

func TestSeededRunReplaysFromCache(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{})
	sp := testSpec("ghz")
	opts := core.RunOptions{Shots: 128, Seed: 7}

	r1 := mustExec(t, s, "alice", sp, nil, opts)
	r2 := mustExec(t, s, "alice", sp, nil, opts)
	if f.calls() != 1 {
		t.Fatalf("executor ran %d times, want 1 (second run should replay)", f.calls())
	}
	if got, want := fmt.Sprint(r2[0].Counts), fmt.Sprint(r1[0].Counts); got != want {
		t.Fatalf("replay counts %s != original %s", got, want)
	}
	if *r2[0].ExpVal != *r1[0].ExpVal {
		t.Fatalf("replay expval %v != original %v", *r2[0].ExpVal, *r1[0].ExpVal)
	}
	tm := r2[0].Timings
	if !tm.CacheHit {
		t.Fatalf("replay should be marked as a cache hit, got %+v", tm)
	}
	if tm.ExecMS != 0 || tm.QueueMS != 0 {
		t.Fatalf("replay should report zero queue/exec timings, got %+v", tm)
	}
	if tm.TotalMS != tm.Sum() {
		t.Fatalf("replay TotalMS %v != component sum %v", tm.TotalMS, tm.Sum())
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

func TestUnseededSampledNeverCached(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{})
	sp := testSpec("sampler")
	opts := core.RunOptions{Shots: 64} // Seed 0: caller accepted fresh sampling

	mustExec(t, s, "a", sp, nil, opts)
	mustExec(t, s, "a", sp, nil, opts)
	if f.calls() != 2 {
		t.Fatalf("executor ran %d times, want 2 (unseeded runs must never replay)", f.calls())
	}
	if st := s.Stats(); st.CacheHits != 0 {
		t.Fatalf("unseeded run hit the cache: %+v", st)
	}
}

func TestAnalyticMemoizationSpansSeeds(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{})
	sp := testSpec("expval")
	obs := &core.Observable{Fields: []float64{1, -1}}

	r1 := mustExec(t, s, "a", sp, nil, core.RunOptions{Observable: obs, Seed: 3})
	r2 := mustExec(t, s, "a", sp, nil, core.RunOptions{Observable: obs, Seed: 9})
	if f.calls() != 1 {
		t.Fatalf("executor ran %d times, want 1 (analytic value is seed-independent)", f.calls())
	}
	if *r1[0].ExpVal != *r2[0].ExpVal {
		t.Fatalf("analytic memo returned %v then %v", *r1[0].ExpVal, *r2[0].ExpVal)
	}
}

func TestNonDeterministicBackendNeverCached(t *testing.T) {
	f := &fakeExec{deterministic: false} // e.g. the cloud path: replay unsound
	s := newServe(t, f, 2, Config{})
	sp := testSpec("cloudish")
	opts := core.RunOptions{Shots: 32, Seed: 5}

	mustExec(t, s, "a", sp, nil, opts)
	mustExec(t, s, "a", sp, nil, opts)
	if f.calls() != 2 {
		t.Fatalf("executor ran %d times, want 2 (non-replayable backend must not cache)", f.calls())
	}
	if st := s.Stats(); st.CacheHits != 0 || st.CacheLen != 0 {
		t.Fatalf("non-deterministic backend populated the cache: %+v", st)
	}
}

// TestCacheKeyCoversResultChangingOptions is the adversarial key test: any
// option that can change the returned distribution must produce a distinct
// cache entry. A false hit here would silently serve wrong physics.
func TestCacheKeyCoversResultChangingOptions(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{})
	base := core.RunOptions{Shots: 100, Seed: 7}
	sp := testSpec("key-sensitivity")
	mustExec(t, s, "a", sp, nil, base)

	variants := map[string]struct {
		spec core.CircuitSpec
		bind []core.Bindings
		opts func(core.RunOptions) core.RunOptions
	}{
		"seed":       {sp, nil, func(o core.RunOptions) core.RunOptions { o.Seed = 8; return o }},
		"shots":      {sp, nil, func(o core.RunOptions) core.RunOptions { o.Shots = 200; return o }},
		"subbackend": {sp, nil, func(o core.RunOptions) core.RunOptions { o.Subbackend = "mps"; return o }},
		"max_bond":   {sp, nil, func(o core.RunOptions) core.RunOptions { o.MaxBond = 16; return o }},
		"cutoff":     {sp, nil, func(o core.RunOptions) core.RunOptions { o.Cutoff = 1e-9; return o }},
		"nodes":      {sp, nil, func(o core.RunOptions) core.RunOptions { o.Nodes = 2; return o }},
		"observable": {sp, nil, func(o core.RunOptions) core.RunOptions {
			o.Observable = &core.Observable{Fields: []float64{1, 1}}
			return o
		}},
		"circuit": {testSpec("key-sensitivity-2"), nil, func(o core.RunOptions) core.RunOptions { return o }},
		"binding": {sp, []core.Bindings{{"theta": 0.25}}, func(o core.RunOptions) core.RunOptions { return o }},
	}
	want := 1
	for name, v := range variants {
		want++
		mustExec(t, s, "a", v.spec, v.bind, v.opts(base))
		if got := f.calls(); got != want {
			t.Fatalf("variant %q: executor ran %d times, want %d (false cache hit)", name, got, want)
		}
	}
	if st := s.Stats(); st.CacheHits != 0 {
		t.Fatalf("adversarial variants produced %d false hits", st.CacheHits)
	}

	// Sanity: the exact base request does replay.
	mustExec(t, s, "a", sp, nil, base)
	if f.calls() != want {
		t.Fatalf("exact repeat recomputed (calls %d, want %d)", f.calls(), want)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{CacheCap: 2})
	sp := testSpec("lru")
	for seed := int64(1); seed <= 3; seed++ {
		mustExec(t, s, "a", sp, nil, core.RunOptions{Shots: 10, Seed: seed})
	}
	if st := s.Stats(); st.CacheLen != 2 {
		t.Fatalf("cache len %d, want 2 (bounded)", st.CacheLen)
	}
	mustExec(t, s, "a", sp, nil, core.RunOptions{Shots: 10, Seed: 1}) // evicted -> recompute
	if f.calls() != 4 {
		t.Fatalf("executor ran %d times, want 4 (seed 1 was evicted)", f.calls())
	}
	mustExec(t, s, "a", sp, nil, core.RunOptions{Shots: 10, Seed: 3}) // still resident
	if f.calls() != 4 {
		t.Fatalf("executor ran %d times, want 4 (seed 3 should replay)", f.calls())
	}
}

// ---- single-flight and coalescing ------------------------------------

func TestSingleFlightDeduplicatesConcurrentIdenticalRuns(t *testing.T) {
	f := &fakeExec{deterministic: true, gate: make(chan struct{})}
	s := newServe(t, f, 2, Config{})
	sp := testSpec("dedup")
	opts := core.RunOptions{Shots: 50, Seed: 11}

	const n = 8
	var wg sync.WaitGroup
	results := make([]*core.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, errs, _, err := s.Exec("a", sp, nil, opts)
			if err == nil && errs[0] == "" {
				results[i] = res[0]
			}
		}(i)
	}
	waitFor(t, "dispatch", func() bool { return f.calls() == 1 })
	// Every other submission must already be riding the in-flight execution
	// (none queued a duplicate) before we release it.
	waitFor(t, "followers", func() bool { return s.Stats().Deduped == n-1 })
	f.open()
	wg.Wait()

	if f.calls() != 1 {
		t.Fatalf("executor ran %d times for %d identical submissions", f.calls(), n)
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("submission %d failed", i)
		}
		if *r.ExpVal != *results[0].ExpVal {
			t.Fatalf("submission %d diverged", i)
		}
	}
}

func TestAdmissionWindowCoalescesAnalyticSubmissions(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{Window: 150 * time.Millisecond})
	sp := testSpec("coalesce")
	obs := &core.Observable{Fields: []float64{1, -1}}

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bind := []core.Bindings{{"theta": float64(i) * 0.1}}
			res, errs, _, err := s.Exec("a", sp, bind, core.RunOptions{Observable: obs})
			if err != nil || errs[0] != "" || res[0].ExpVal == nil {
				t.Errorf("submission %d: %v %v", i, err, errs)
			}
		}(i)
	}
	wg.Wait()

	st := s.Stats()
	if st.DispatchGroups != 1 || st.DispatchElems != n {
		t.Fatalf("dispatched %d groups / %d elems, want 1 coalesced group of %d (batches %v)",
			st.DispatchGroups, st.DispatchElems, n, f.batches)
	}
}

func TestCoalescedUnitCapsAtMaxBatch(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{Window: 150 * time.Millisecond, MaxBatch: 4})
	sp := testSpec("maxbatch")
	obs := &core.Observable{Fields: []float64{1, -1}}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bind := []core.Bindings{{"theta": float64(i) * 0.1}}
			_, _, _, err := s.Exec("a", sp, bind, core.RunOptions{Observable: obs})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.batches {
		if n > 4 {
			t.Fatalf("dispatch of %d elements exceeds MaxBatch=4 (batches %v)", n, f.batches)
		}
	}
}

// ---- seed schedule and batch correctness ------------------------------

// TestServedBatchMatchesDirectQPM pins the bit-identical contract: a
// multi-element seeded batch served through the scheduler must equal the
// same batch submitted straight to a QPM, element by element.
func TestServedBatchMatchesDirectQPM(t *testing.T) {
	sp := testSpec("vqe-sweep")
	bindings := []core.Bindings{{"t": 0.1}, {"t": 0.2}, {"t": 0.3}, {"t": 0.4}, {"t": 0.5}}
	opts := core.RunOptions{Shots: 64, Seed: 42}

	fServe := &fakeExec{deterministic: true}
	s := newServe(t, fServe, 2, Config{})
	served := mustExec(t, s, "a", sp, bindings, opts)

	fDirect := &fakeExec{deterministic: true}
	q := core.NewQPM(fDirect, 2, nil)
	defer q.Close()
	id, err := q.SubmitBatch(sp, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, errs, err := q.WaitBatch(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bindings {
		if errs[i] != "" {
			t.Fatalf("direct element %d: %s", i, errs[i])
		}
		if *served[i].ExpVal != *direct[i].ExpVal {
			t.Fatalf("element %d: served %v != direct %v", i, *served[i].ExpVal, *direct[i].ExpVal)
		}
		if fmt.Sprint(served[i].Counts) != fmt.Sprint(direct[i].Counts) {
			t.Fatalf("element %d: served counts %v != direct %v", i, served[i].Counts, direct[i].Counts)
		}
	}

	// The whole batch replays from cache, element-identical.
	replay := mustExec(t, s, "a", sp, bindings, opts)
	if fServe.calls() != 1 {
		t.Fatalf("cached batch recomputed (executor calls %d)", fServe.calls())
	}
	for i := range bindings {
		if *replay[i].ExpVal != *served[i].ExpVal {
			t.Fatalf("replay element %d diverged", i)
		}
	}
}

// TestPartiallyCachedSeededBatchRecomputesWhole pins the rule that a
// seed-scheduled batch never splits: replaying only some elements would
// shift the dispatch indices (and thus seeds) of the rest.
func TestPartiallyCachedSeededBatchRecomputesWhole(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{})
	sp := testSpec("partial")
	bindings := []core.Bindings{{"t": 0.1}, {"t": 0.2}, {"t": 0.3}}
	opts := core.RunOptions{Shots: 32, Seed: 5}

	// Prime the cache with exactly element 0's effective execution (a solo
	// run with the batch base seed and the first binding).
	solo := mustExec(t, s, "a", sp, bindings[:1], opts)
	batch := mustExec(t, s, "a", sp, bindings, opts)

	f.mu.Lock()
	last := f.batches[len(f.batches)-1]
	f.mu.Unlock()
	if last != len(bindings) {
		t.Fatalf("partially cached batch dispatched %d elements, want all %d", last, len(bindings))
	}
	if *batch[0].ExpVal != *solo[0].ExpVal {
		t.Fatalf("element 0 of batch (%v) != solo run with base seed (%v)", *batch[0].ExpVal, *solo[0].ExpVal)
	}
}

// ---- fair share, quotas, backpressure ---------------------------------

func TestWeightedFairShareInterleavesTenants(t *testing.T) {
	f := &fakeExec{deterministic: true, gate: make(chan struct{})}
	s := newServe(t, f, 1, Config{Inflight: 1})
	s.SetTenant("alice", 3, 0)
	s.SetTenant("bob", 1, 0)

	// Occupy the single dispatch slot so everything below queues up and the
	// scheduler chooses an order among a full backlog.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustExec(t, s, "warm", testSpec("warm"), nil, core.RunOptions{Shots: 1, Seed: 100})
	}()
	waitFor(t, "warmup dispatch", func() bool { return f.calls() == 1 })

	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mustExec(t, s, "alice", testSpec("alice"), nil, core.RunOptions{Shots: 1, Seed: int64(i + 1)})
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mustExec(t, s, "bob", testSpec("bob"), nil, core.RunOptions{Shots: 1, Seed: int64(i + 201)})
		}(i)
	}
	waitFor(t, "backlog", func() bool { return s.Stats().QueueDepth == 12 })
	f.open()
	wg.Wait()

	order := f.dispatchOrder()[1:] // drop the warmup
	if len(order) != 12 {
		t.Fatalf("dispatched %d units, want 12", len(order))
	}
	aliceFirst8, bobFirst := 0, -1
	for i, name := range order {
		if name == "alice" && i < 8 {
			aliceFirst8++
		}
		if name == "bob" && bobFirst < 0 {
			bobFirst = i
		}
	}
	// Weight 3:1 means alice should take ~6 of the first 8 slots while bob
	// still lands early — weighted sharing, not strict priority.
	if aliceFirst8 < 5 {
		t.Fatalf("alice got %d of first 8 dispatch slots, want >=5 under 3:1 weights (order %v)", aliceFirst8, order)
	}
	if bobFirst < 0 || bobFirst > 5 {
		t.Fatalf("bob's first dispatch at position %d, want early interleave (order %v)", bobFirst, order)
	}
}

func TestTenantQuotaShedsWithTypedError(t *testing.T) {
	f := &fakeExec{deterministic: true, gate: make(chan struct{})}
	s := newServe(t, f, 1, Config{Inflight: 1})
	s.SetTenant("t", 0, 2)
	sp := testSpec("quota")

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mustExec(t, s, "t", sp, nil, core.RunOptions{Shots: 1, Seed: int64(i + 1)})
		}(i)
	}
	waitFor(t, "quota fill", func() bool {
		st := s.Stats()
		return st.Tenants["t"].Outstanding == 2
	})

	_, _, _, err := s.Exec("t", sp, nil, core.RunOptions{Shots: 1, Seed: 99})
	if !IsOverloaded(err) {
		t.Fatalf("over-quota submission returned %v, want ErrOverloaded", err)
	}
	if d, ok := RetryAfterHint(err); !ok || d <= 0 {
		t.Fatalf("shed error carries no retry hint: %v", err)
	}
	// The hint rides in the message, so it survives RPC flattening.
	if d, ok := RetryAfterHint(fmt.Errorf("%s", err.Error())); !ok || d <= 0 {
		t.Fatal("flattened shed error lost the retry hint")
	}
	// Another tenant is unaffected by t's quota.
	var other error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _, other = s.Exec("u", sp, nil, core.RunOptions{Shots: 1, Seed: 7})
	}()
	time.Sleep(5 * time.Millisecond)
	f.open()
	wg.Wait()
	if other != nil {
		t.Fatalf("tenant u shed by tenant t's quota: %v", other)
	}
	if st := s.Stats(); st.Shed != 1 || st.Tenants["t"].Shed != 1 {
		t.Fatalf("shed accounting %+v", st)
	}
}

func TestGlobalQueueCapShedsWithTypedError(t *testing.T) {
	f := &fakeExec{deterministic: true, gate: make(chan struct{})}
	s := newServe(t, f, 1, Config{Inflight: 1, QueueCap: 1})
	sp := testSpec("cap")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustExec(t, s, "a", sp, nil, core.RunOptions{Shots: 1, Seed: 1})
	}()
	waitFor(t, "first dispatch", func() bool { return f.calls() == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustExec(t, s, "b", sp, nil, core.RunOptions{Shots: 1, Seed: 2})
	}()
	waitFor(t, "queued element", func() bool { return s.Stats().QueueDepth == 1 })

	_, _, _, err := s.Exec("c", sp, nil, core.RunOptions{Shots: 1, Seed: 3})
	if !IsOverloaded(err) {
		t.Fatalf("over-cap submission returned %v, want ErrOverloaded", err)
	}
	f.open()
	wg.Wait()
}

// ---- lifecycle --------------------------------------------------------

func TestDrainFlushesWindowAndClosesAdmission(t *testing.T) {
	f := &fakeExec{deterministic: true}
	// An hour-long window: only draining can flush the queued unit in time.
	s := newServe(t, f, 2, Config{Window: time.Hour})
	sp := testSpec("drain")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mustExec(t, s, "a", sp, nil, core.RunOptions{Shots: 8})
	}()
	waitFor(t, "queued unit", func() bool { return s.Stats().QueueDepth == 1 })

	if !s.Drain(5 * time.Second) {
		t.Fatal("drain timed out with an idle executor")
	}
	wg.Wait()
	if f.calls() != 1 {
		t.Fatalf("queued unit not flushed by drain (calls %d)", f.calls())
	}

	_, _, _, err := s.Exec("a", sp, nil, core.RunOptions{Shots: 8})
	if !core.IsDraining(err) {
		t.Fatalf("post-drain submission returned %v, want ErrDraining", err)
	}
}

func TestQueueDepthTelemetryRecorded(t *testing.T) {
	f := &fakeExec{deterministic: true}
	q := core.NewQPM(f, 2, nil)
	defer q.Close()
	s := New(q, Config{}, nil)
	defer s.Close()
	sp := testSpec("telemetry")
	results, errs, _, err := s.Exec("a", sp, nil, core.RunOptions{Shots: 4, Seed: 1})
	if err != nil || errs[0] != "" || results[0] == nil {
		t.Fatalf("exec: %v %v", err, errs)
	}
	if series := q.Recorder().GaugeSeries(`qfw_serve_queue_depth{backend="fake"}`); len(series) == 0 {
		t.Fatal("no queue-depth gauge recorded")
	}
	if st := s.Stats(); st.PeakQueueDepth < 1 {
		t.Fatalf("peak queue depth %d, want >=1", st.PeakQueueDepth)
	}
}
