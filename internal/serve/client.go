package serve

import (
	"encoding/json"
	"fmt"

	"qfw/internal/core"
	"qfw/internal/defw"
)

// Client is the tenant-side handle to a backend's serving layer: a thin
// typed wrapper over the DEFw "serve.<backend>" service. Every request
// carries the client's tenant token, so many Clients (or many sessions of
// one Client) can share a single daemon connection while the scheduler
// keeps their traffic fairly apportioned.
type Client struct {
	rpc     *defw.Client
	service string
	tenant  string
}

// NewClient wraps a DEFw connection as tenant's handle to backend's
// serving layer. An empty tenant maps to the shared "default" queue.
func NewClient(rpc *defw.Client, backend, tenant string) *Client {
	return &Client{rpc: rpc, service: ServiceName(backend), tenant: tenant}
}

// Tenant returns the tenant token requests are tagged with.
func (c *Client) Tenant() string { return c.tenant }

// Run executes a single circuit through the serving layer and returns its
// result (cache hits return without touching the execution queue).
func (c *Client) Run(spec core.CircuitSpec, opts core.RunOptions) (*core.Result, ExecInfo, error) {
	results, errs, info, err := c.exec(spec, nil, opts)
	if err != nil {
		return nil, info, err
	}
	if len(errs) > 0 && errs[0] != "" {
		return nil, info, fmt.Errorf("%s", errs[0])
	}
	return results[0], info, nil
}

// RunBatch executes one spec under many bindings through the serving
// layer, preserving the QPM batch seed schedule. Per-element failures come
// back in the parallel errs slice ("" for success).
func (c *Client) RunBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, []string, ExecInfo, error) {
	return c.exec(spec, bindings, opts)
}

func (c *Client) exec(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, []string, ExecInfo, error) {
	req := ExecReq{Tenant: c.tenant, Spec: spec, Bindings: bindings, Opts: opts}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, nil, ExecInfo{}, err
	}
	raw, err := c.rpc.Call(c.service, "exec", payload)
	if err != nil {
		return nil, nil, ExecInfo{}, err
	}
	var resp ExecResp
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, nil, ExecInfo{}, fmt.Errorf("serve client: bad reply: %w", err)
	}
	if resp.Errs == nil {
		resp.Errs = make([]string, len(resp.Results))
	}
	return resp.Results, resp.Errs, resp.Info, nil
}

// Stats fetches the serving layer's counters.
func (c *Client) Stats() (Stats, error) {
	raw, err := c.rpc.Call(c.service, "stats", []byte("{}"))
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		return Stats{}, fmt.Errorf("serve client: bad stats reply: %w", err)
	}
	return st, nil
}

// SetTenant configures a tenant's fair-share weight and quota on the
// server (an admin operation; any connection may issue it).
func (c *Client) SetTenant(name string, weight, quota int) error {
	payload, err := json.Marshal(tenantReq{Name: name, Weight: weight, Quota: quota})
	if err != nil {
		return err
	}
	_, err = c.rpc.Call(c.service, "set_tenant", payload)
	return err
}
