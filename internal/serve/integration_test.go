package serve

import (
	"fmt"
	"testing"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/defw"

	_ "qfw/internal/backends" // register real executors
)

// TestServeOverSessionRPC drives the serving layer exactly as cmd/qfwd
// wires it: registered beside the raw QPM service on a live session's DEFw
// endpoint, exercised through the typed client, against the real aer
// executor. It pins the acceptance property that a cached replay is
// bit-identical to a recompute.
func TestServeOverSessionRPC(t *testing.T) {
	sess, err := core.Launch(core.Config{
		Machine:  cluster.Frontier(2),
		Backends: []string{"aer"},
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Teardown()
	qpm := sess.QPM("aer")
	srv := New(qpm, Config{Window: 2 * time.Millisecond}, sess.Rec)
	defer srv.Close()
	sess.RegisterService(ServiceName("aer"), srv)

	conn, err := sess.Connect()
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn, "aer", "alice")

	c := circuit.New(3)
	c.H(0).CX(0, 1).CX(1, 2)
	c.MeasureAll()
	c.Name = "ghz"
	spec, err := core.SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.RunOptions{Shots: 200, Seed: 9}

	r1, info1, err := cl.Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info1.CacheHits != 0 {
		t.Fatalf("first run reported %d cache hits", info1.CacheHits)
	}
	r2, info2, err := cl.Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info2.CacheHits != 1 {
		t.Fatalf("repeat run reported %d cache hits, want 1", info2.CacheHits)
	}
	if fmt.Sprint(r1.Counts) != fmt.Sprint(r2.Counts) {
		t.Fatalf("cached replay %v != original %v", r2.Counts, r1.Counts)
	}

	// Bit-identical to a recompute on the raw QPM service with the same
	// seed — the cache must be invisible in the physics.
	id, err := qpm.Submit(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := qpm.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(direct.Counts) != fmt.Sprint(r1.Counts) {
		t.Fatalf("served counts %v != direct QPM counts %v", r1.Counts, direct.Counts)
	}

	// A parametric sweep through the serving layer matches the direct batch
	// submission element-for-element.
	p := circuit.New(2)
	p.H(0).RZ(0, circuit.Sym("theta", 1)).CX(0, 1)
	p.MeasureAll()
	p.Name = "sweep"
	pspec, err := core.SpecFromParametric(p)
	if err != nil {
		t.Fatal(err)
	}
	bindings := []core.Bindings{{"theta": 0.1}, {"theta": 0.7}, {"theta": 1.3}}
	bopts := core.RunOptions{Shots: 100, Seed: 21}
	served, errs, _, err := cl.RunBatch(pspec, bindings, bopts)
	if err != nil {
		t.Fatal(err)
	}
	bid, err := qpm.SubmitBatch(pspec, bindings, bopts)
	if err != nil {
		t.Fatal(err)
	}
	directRes, directErrs, err := qpm.WaitBatch(bid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bindings {
		if errs[i] != "" || directErrs[i] != "" {
			t.Fatalf("element %d errors: served=%q direct=%q", i, errs[i], directErrs[i])
		}
		if fmt.Sprint(served[i].Counts) != fmt.Sprint(directRes[i].Counts) {
			t.Fatalf("element %d: served %v != direct %v", i, served[i].Counts, directRes[i].Counts)
		}
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits < 1 || st.Served < 4 {
		t.Fatalf("stats over RPC: %+v", st)
	}
	if err := cl.SetTenant("alice", 4, 100); err != nil {
		t.Fatal(err)
	}
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ten := st.Tenants["alice"]; ten.Weight != 4 || ten.Quota != 100 {
		t.Fatalf("set_tenant not applied: %+v", ten)
	}
}

// TestOverloadErrorSurvivesRPC pins that load shedding stays typed across
// the wire: the flattened error string still satisfies IsOverloaded.
func TestOverloadErrorSurvivesRPC(t *testing.T) {
	f := &fakeExec{deterministic: true, gate: make(chan struct{})}
	q := core.NewQPM(f, 1, nil)
	defer q.Close()
	defer f.open()
	srv := New(q, Config{Inflight: 1, QueueCap: 1, Quota: 100}, nil)
	defer srv.Close()

	rpc := defw.NewServer()
	rpc.Register(ServiceName("fake"), srv)
	defer rpc.Close()
	cl := NewClient(defw.NewPipeClient(rpc), "fake", "t")

	sp := testSpec("shed-rpc")
	// Fill the dispatch slot, then the one queue slot.
	go func() {
		_, _, _, _ = srv.Exec("t", sp, nil, core.RunOptions{Shots: 1, Seed: 1})
	}()
	waitFor(t, "first dispatch", func() bool { return f.calls() == 1 })
	go func() {
		_, _, _, _ = srv.Exec("t", sp, nil, core.RunOptions{Shots: 1, Seed: 2})
	}()
	waitFor(t, "saturation", func() bool { return srv.Stats().QueueDepth == 1 })

	_, _, err := cl.Run(sp, core.RunOptions{Shots: 1, Seed: 99})
	if err == nil {
		t.Fatal("over-cap RPC submission succeeded")
	}
	if !IsOverloaded(err) {
		t.Fatalf("RPC-flattened shed error %v does not satisfy IsOverloaded", err)
	}
	if d, ok := RetryAfterHint(err); !ok || d <= 0 {
		t.Fatalf("client-side shed error carries no retry hint: %v", err)
	}
	f.open()
}
