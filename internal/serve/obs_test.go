package serve

import (
	"testing"

	"qfw/internal/core"
	"qfw/internal/trace"
)

// TestServeTimingsBreakdownSumsToTotal pins the end-to-end Timings
// contract through the serving layer: every reported component is
// non-negative and TotalMS is exactly the component sum, for both the
// executed (miss) and replayed (hit) paths.
func TestServeTimingsBreakdownSumsToTotal(t *testing.T) {
	f := &fakeExec{deterministic: true}
	s := newServe(t, f, 2, Config{})
	sp := testSpec("breakdown")
	opts := core.RunOptions{Shots: 16, Seed: 3}

	miss := mustExec(t, s, "a", sp, nil, opts)[0].Timings
	if miss.CacheHit {
		t.Fatalf("first run reported a cache hit: %+v", miss)
	}
	if miss.CacheLookupMS < 0 || miss.CoalesceWaitMS < 0 || miss.QueueMS < 0 ||
		miss.ExecMS < 0 || miss.RetryBackoffMS < 0 {
		t.Fatalf("negative timing component: %+v", miss)
	}
	if miss.Attempts != 1 {
		t.Fatalf("clean execution reported %d attempts, want 1", miss.Attempts)
	}
	if miss.TotalMS != miss.Sum() {
		t.Fatalf("TotalMS %v != component sum %v (%+v)", miss.TotalMS, miss.Sum(), miss)
	}

	hit := mustExec(t, s, "a", sp, nil, opts)[0].Timings
	if !hit.CacheHit {
		t.Fatalf("replay not marked as cache hit: %+v", hit)
	}
	if hit.ExecMS != 0 || hit.QueueMS != 0 || hit.CoalesceWaitMS != 0 || hit.Attempts != 0 {
		t.Fatalf("replay carries execution timings: %+v", hit)
	}
	if hit.CacheLookupMS < 0 || hit.TotalMS != hit.Sum() {
		t.Fatalf("replay timing accounting broken: %+v", hit)
	}
}

// TestServeMetricsCountHitsMissesAndRequests checks that the serving
// layer's typed metrics agree exactly with its Stats counters after a
// miss/hit pair: one miss, one hit, one dispatched element, two request
// latencies observed, and one QPM task executed.
func TestServeMetricsCountHitsMissesAndRequests(t *testing.T) {
	f := &fakeExec{deterministic: true}
	q := core.NewQPM(f, 2, nil)
	defer q.Close()
	s := New(q, Config{}, nil)
	defer s.Close()
	met := q.Recorder().Metrics()
	sp := testSpec("obs-metrics")
	opts := core.RunOptions{Shots: 8, Seed: 2}

	for i := 0; i < 2; i++ {
		results, errs, _, err := s.Exec("a", sp, nil, opts)
		if err != nil || errs[0] != "" || results[0] == nil {
			t.Fatalf("exec %d: %v %v", i, err, errs)
		}
	}

	counter := func(base string) int64 {
		return met.Counter(trace.LabeledName(base, "backend", "fake")).Value()
	}
	if got := counter("qfw_serve_cache_misses_total"); got != 1 {
		t.Fatalf("misses counter %d, want 1", got)
	}
	if got := counter("qfw_serve_cache_hits_total"); got != 1 {
		t.Fatalf("hits counter %d, want 1", got)
	}
	if got := counter("qfw_serve_served_total"); got != 1 {
		t.Fatalf("served counter %d, want 1 (only the miss dispatched)", got)
	}
	if got := counter("qfw_qpm_tasks_total"); got != 1 {
		t.Fatalf("qpm task counter %d, want 1", got)
	}
	hReq := met.Histogram(trace.LabeledName("qfw_serve_request_ms", "backend", "fake"))
	if hReq.Count() != 2 {
		t.Fatalf("request histogram observed %d, want 2 (hit and miss)", hReq.Count())
	}
	hExec := met.Histogram(trace.LabeledName("qfw_qpm_exec_ms", "backend", "fake"))
	if hExec.Count() != 1 {
		t.Fatalf("exec histogram observed %d, want 1", hExec.Count())
	}
}

// TestServeSoakKeepsRecorderBounded pushes hundreds of uncacheable
// requests through a serving layer wired to a tiny span ring and checks
// the ring honors its bound while the drop accounting stays consistent —
// the daemon-lifetime memory guarantee, at test scale.
func TestServeSoakKeepsRecorderBounded(t *testing.T) {
	const cap = 64
	rec := trace.NewRecorderCap(cap)
	f := &fakeExec{deterministic: true}
	q := core.NewQPM(f, 2, rec)
	defer q.Close()
	s := New(q, Config{CacheCap: -1}, rec)
	defer s.Close()
	sp := testSpec("soak")

	for i := 0; i < 300; i++ {
		results, errs, _, err := s.Exec("a", sp, nil, core.RunOptions{Shots: 4})
		if err != nil || errs[0] != "" || results[0] == nil {
			t.Fatalf("soak request %d: %v %v", i, err, errs)
		}
	}
	st := rec.Stats()
	if st.Retained > cap {
		t.Fatalf("ring retained %d spans over cap %d", st.Retained, cap)
	}
	if st.Recorded < 300 {
		t.Fatalf("recorded %d spans for 300 executed requests", st.Recorded)
	}
	if st.Recorded != st.Dropped+int64(st.Retained) {
		t.Fatalf("drop accounting inconsistent: %+v", st)
	}
}
