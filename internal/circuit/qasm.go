package circuit

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// ToQASM serializes a bound circuit as OpenQASM 2.0 using the extended
// qelib1 gate vocabulary. Dense unitary gates have no QASM form and must be
// transpiled away first.
func (c *Circuit) ToQASM() (string, error) {
	if !c.IsBound() {
		return "", fmt.Errorf("circuit: cannot serialize unbound circuit (params %v); use ToSymbolicQASM for the parametric wire form", c.ParamNames())
	}
	return c.serialize()
}

// ToSymbolicQASM serializes a circuit keeping unbound parameters symbolic:
// a gate angle Coeff*θ(name)+Const is written as the affine expression
// "Coeff*name+Const" that ParseQASM round-trips back into a symbolic Param.
// This is the parametric wire format of batched execution: the ansatz is
// transmitted once and each batch element carries only its binding values.
// Parameter names must fit the wire grammar [A-Za-z_][A-Za-z0-9_]* and must
// not be "pi" (the QASM constant): anything else would reparse as a
// different expression on the receiving side and silently ignore or
// misroute its bindings.
func (c *Circuit) ToSymbolicQASM() (string, error) {
	for _, name := range c.ParamNames() {
		if name == "pi" {
			return "", fmt.Errorf("circuit: parameter name %q collides with the QASM constant and cannot round-trip symbolically", name)
		}
		if !symNameRe.MatchString(name) {
			return "", fmt.Errorf("circuit: parameter name %q is not a valid symbolic identifier ([A-Za-z_][A-Za-z0-9_]*)", name)
		}
	}
	return c.serialize()
}

// symNameRe is the identifier grammar of the symbolic wire form.
var symNameRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

func (c *Circuit) serialize() (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\ncreg c[%d];\n", c.NQubits, c.NQubits)
	for _, g := range c.Gates {
		switch g.Kind {
		case KindMeasure:
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.Cbit)
			continue
		case KindBarrier:
			if len(g.Qubits) == 0 {
				b.WriteString("barrier q;\n")
			} else {
				b.WriteString("barrier ")
				writeQubits(&b, g.Qubits)
				b.WriteString(";\n")
			}
			continue
		case KindReset:
			fmt.Fprintf(&b, "reset q[%d];\n", g.Qubits[0])
			continue
		case KindUnitary:
			return "", fmt.Errorf("circuit: dense unitary gate has no QASM 2.0 form; transpile first")
		case KindI:
			fmt.Fprintf(&b, "id q[%d];\n", g.Qubits[0])
			continue
		case KindP:
			fmt.Fprintf(&b, "u1(%s) q[%d];\n", fmtParam(g.Params[0]), g.Qubits[0])
			continue
		case KindCP:
			fmt.Fprintf(&b, "cu1(%s) q[%d],q[%d];\n", fmtParam(g.Params[0]), g.Qubits[0], g.Qubits[1])
			continue
		}
		b.WriteString(g.Kind.Name())
		if len(g.Params) > 0 {
			b.WriteString("(")
			for i, p := range g.Params {
				if i > 0 {
					b.WriteString(",")
				}
				b.WriteString(fmtParam(p))
			}
			b.WriteString(")")
		}
		b.WriteString(" ")
		writeQubits(&b, g.Qubits)
		b.WriteString(";\n")
	}
	return b.String(), nil
}

func writeQubits(b *strings.Builder, qs []int) {
	for i, q := range qs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(b, "q[%d]", q)
	}
}

func fmtAngle(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

// fmtParam renders a parameter: bound values as plain numbers, symbolic ones
// in the canonical affine form "coeff*name" or "coeff*name±const".
func fmtParam(p Param) string {
	if p.IsBound() {
		return fmtAngle(p.Const)
	}
	s := fmtAngle(p.Coeff) + "*" + p.Name
	if p.Const != 0 {
		if p.Const > 0 {
			s += "+"
		}
		s += fmtAngle(p.Const)
	}
	return s
}

// symParamRe matches the canonical symbolic form emitted by fmtParam.
var symParamRe = regexp.MustCompile(
	`^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*\*\s*([A-Za-z_][A-Za-z0-9_]*)\s*([-+][0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)?\s*$`)

// parseParamExpr parses one gate parameter: constant arithmetic expressions
// become bound parameters; the affine symbolic form "coeff*name±const"
// becomes a symbolic one. Numeric evaluation is tried first so constant
// expressions containing "pi" never shadow a symbol.
func parseParamExpr(s string) (Param, error) {
	s = strings.TrimSpace(s)
	if v, err := evalExpr(s); err == nil {
		return Bound(v), nil
	}
	m := symParamRe.FindStringSubmatch(s)
	if m == nil || m[2] == "pi" {
		return Param{}, fmt.Errorf("qasm: cannot evaluate parameter %q", s)
	}
	coeff, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return Param{}, fmt.Errorf("qasm: bad coefficient in %q", s)
	}
	p := Param{Name: m[2], Coeff: coeff}
	if m[3] != "" {
		c, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return Param{}, fmt.Errorf("qasm: bad constant in %q", s)
		}
		p.Const = c
	}
	return p, nil
}

var qasmGateKinds = map[string]Kind{
	"id": KindI, "h": KindH, "x": KindX, "y": KindY, "z": KindZ,
	"s": KindS, "sdg": KindSdg, "t": KindT, "tdg": KindTdg, "sx": KindSX,
	"rx": KindRX, "ry": KindRY, "rz": KindRZ, "p": KindP, "u1": KindP,
	"cx": KindCX, "CX": KindCX, "cy": KindCY, "cz": KindCZ,
	"crx": KindCRX, "cry": KindCRY, "crz": KindCRZ, "cp": KindCP, "cu1": KindCP,
	"swap": KindSWAP, "rzz": KindRZZ, "rxx": KindRXX,
	"ccx": KindCCX, "cswap": KindCSWAP,
}

// ParseQASM parses the OpenQASM 2.0 subset produced by ToQASM (plus u2/u3,
// which are lowered to rotation sequences). It supports a single quantum and
// a single classical register.
func ParseQASM(src string) (*Circuit, error) {
	// Strip comments, normalize whitespace, split on ';' and '{'/'}' is not
	// supported (no gate definitions in the accepted subset).
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		clean.WriteString(line)
		clean.WriteString("\n")
	}
	stmts := strings.Split(clean.String(), ";")
	var c *Circuit
	qreg, creg := "", ""
	ncbits := 0
	pending := []func() error{} // applied once the circuit exists
	for _, raw := range stmts {
		stmt := strings.TrimSpace(raw)
		if stmt == "" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "OPENQASM"):
			if !strings.Contains(stmt, "2.0") {
				return nil, fmt.Errorf("qasm: unsupported version in %q", stmt)
			}
		case strings.HasPrefix(stmt, "include"):
			// qelib1.inc is implicit.
		case strings.HasPrefix(stmt, "qreg"):
			name, n, err := parseReg(stmt[4:])
			if err != nil {
				return nil, err
			}
			if c != nil {
				return nil, fmt.Errorf("qasm: multiple qregs are not supported")
			}
			qreg = name
			c = New(n)
			for _, f := range pending {
				if err := f(); err != nil {
					return nil, err
				}
			}
			pending = nil
		case strings.HasPrefix(stmt, "creg"):
			name, n, err := parseReg(stmt[4:])
			if err != nil {
				return nil, err
			}
			creg, ncbits = name, n
			_ = ncbits
		default:
			stmt := stmt // capture
			apply := func() error { return applyQASMStmt(c, qreg, creg, stmt) }
			if c == nil {
				pending = append(pending, apply)
				continue
			}
			if err := apply(); err != nil {
				return nil, err
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	return c, nil
}

func parseReg(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	lb := strings.Index(s, "[")
	rb := strings.Index(s, "]")
	if lb < 0 || rb < lb {
		return "", 0, fmt.Errorf("qasm: malformed register %q", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(s[lb+1 : rb]))
	if err != nil || n <= 0 {
		return "", 0, fmt.Errorf("qasm: bad register size in %q", s)
	}
	return strings.TrimSpace(s[:lb]), n, nil
}

func applyQASMStmt(c *Circuit, qreg, creg, stmt string) error {
	if strings.HasPrefix(stmt, "measure") {
		rest := strings.TrimSpace(stmt[len("measure"):])
		parts := strings.Split(rest, "->")
		if len(parts) != 2 {
			return fmt.Errorf("qasm: malformed measure %q", stmt)
		}
		qs, err := parseOperand(strings.TrimSpace(parts[0]), qreg, c.NQubits)
		if err != nil {
			return err
		}
		cs, err := parseOperand(strings.TrimSpace(parts[1]), creg, c.NQubits)
		if err != nil {
			return err
		}
		if len(qs) != len(cs) {
			return fmt.Errorf("qasm: measure width mismatch in %q", stmt)
		}
		for i := range qs {
			c.Measure(qs[i], cs[i])
		}
		return nil
	}
	if strings.HasPrefix(stmt, "barrier") {
		rest := strings.TrimSpace(stmt[len("barrier"):])
		if rest == qreg || rest == "" {
			c.Barrier()
			return nil
		}
		var all []int
		for _, op := range strings.Split(rest, ",") {
			qs, err := parseOperand(strings.TrimSpace(op), qreg, c.NQubits)
			if err != nil {
				return err
			}
			all = append(all, qs...)
		}
		c.Barrier(all...)
		return nil
	}
	if strings.HasPrefix(stmt, "reset") {
		qs, err := parseOperand(strings.TrimSpace(stmt[len("reset"):]), qreg, c.NQubits)
		if err != nil {
			return err
		}
		for _, q := range qs {
			c.Reset(q)
		}
		return nil
	}
	// Gate application: name(params)? operands
	name := stmt
	paramsStr := ""
	operandStr := ""
	if lp := strings.Index(stmt, "("); lp >= 0 {
		rp := strings.Index(stmt, ")")
		if rp < lp {
			return fmt.Errorf("qasm: malformed gate %q", stmt)
		}
		name = strings.TrimSpace(stmt[:lp])
		paramsStr = stmt[lp+1 : rp]
		operandStr = strings.TrimSpace(stmt[rp+1:])
	} else {
		fields := strings.Fields(stmt)
		if len(fields) < 2 {
			return fmt.Errorf("qasm: malformed statement %q", stmt)
		}
		name = fields[0]
		operandStr = strings.TrimSpace(strings.Join(fields[1:], " "))
	}
	var params []Param
	if paramsStr != "" {
		for _, ps := range splitTopLevel(paramsStr) {
			p, err := parseParamExpr(ps)
			if err != nil {
				return fmt.Errorf("qasm: bad parameter %q: %w", ps, err)
			}
			params = append(params, p)
		}
	}
	var qubits []int
	for _, op := range strings.Split(operandStr, ",") {
		qs, err := parseOperand(strings.TrimSpace(op), qreg, c.NQubits)
		if err != nil {
			return err
		}
		if len(qs) != 1 {
			return fmt.Errorf("qasm: whole-register gate operands are not supported in %q", stmt)
		}
		qubits = append(qubits, qs[0])
	}
	switch name {
	case "u2":
		if len(params) != 2 {
			return fmt.Errorf("qasm: u2 needs 2 params")
		}
		for _, p := range params {
			if !p.IsBound() {
				return fmt.Errorf("qasm: symbolic parameters are not supported on u2")
			}
		}
		// u2(φ,λ) = rz(φ) ry(π/2) rz(λ) up to global phase.
		c.RZ(qubits[0], Bound(params[1].Const))
		c.RY(qubits[0], Bound(math.Pi/2))
		c.RZ(qubits[0], Bound(params[0].Const))
		return nil
	case "u3", "u", "U":
		if len(params) != 3 {
			return fmt.Errorf("qasm: u3 needs 3 params")
		}
		for _, p := range params {
			if !p.IsBound() {
				return fmt.Errorf("qasm: symbolic parameters are not supported on u3")
			}
		}
		c.RZ(qubits[0], Bound(params[2].Const))
		c.RY(qubits[0], Bound(params[0].Const))
		c.RZ(qubits[0], Bound(params[1].Const))
		return nil
	}
	kind, ok := qasmGateKinds[name]
	if !ok {
		return fmt.Errorf("qasm: unknown gate %q", name)
	}
	g := Gate{Kind: kind, Qubits: qubits, Params: params}
	if kind.NumParams() != len(params) {
		return fmt.Errorf("qasm: gate %s got %d params, wants %d", name, len(params), kind.NumParams())
	}
	c.Append(g)
	return nil
}

// parseOperand parses "q[3]" into {3} and a bare register name into all indices.
func parseOperand(s, reg string, width int) ([]int, error) {
	if s == reg {
		all := make([]int, width)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	lb := strings.Index(s, "[")
	rb := strings.Index(s, "]")
	if lb < 0 || rb < lb {
		return nil, fmt.Errorf("qasm: malformed operand %q", s)
	}
	name := strings.TrimSpace(s[:lb])
	if reg != "" && name != reg {
		return nil, fmt.Errorf("qasm: unknown register %q", name)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(s[lb+1 : rb]))
	if err != nil {
		return nil, fmt.Errorf("qasm: bad index in %q", s)
	}
	return []int{idx}, nil
}

func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// evalExpr evaluates a constant arithmetic expression with +,-,*,/, parens
// and the constant pi — the expression language of OpenQASM 2.0 parameters.
func evalExpr(s string) (float64, error) {
	p := &exprParser{src: s}
	v, err := p.parseAddSub()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing input at %d in %q", p.pos, s)
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) parseAddSub() (float64, error) {
	v, err := p.parseMulDiv()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseMulDiv()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseMulDiv()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseMulDiv() (float64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseUnary() (float64, error) {
	p.skipSpace()
	if p.peek() == '-' {
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	}
	if p.peek() == '+' {
		p.pos++
		return p.parseUnary()
	}
	return p.parseAtom()
}

func (p *exprParser) parseAtom() (float64, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		v, err := p.parseAddSub()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')' in %q", p.src)
		}
		p.pos++
		return v, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' ||
			(ch >= 'a' && ch <= 'z' && ch != 'e') || ch == '_' ||
			((ch == '+' || ch == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E')) {
			p.pos++
			continue
		}
		break
	}
	tok := p.src[start:p.pos]
	if tok == "" {
		return 0, fmt.Errorf("empty token at %d in %q", p.pos, p.src)
	}
	if tok == "pi" {
		return math.Pi, nil
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", tok)
	}
	return v, nil
}
