// Package circuit defines the quantum circuit intermediate representation
// shared by every frontend and backend in the framework: gate set, parameter
// binding for variational ansätze, circuit construction and analysis, and
// OpenQASM 2.0 serialization (the wire format QFw QPMs exchange).
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"

	"qfw/internal/linalg"
)

// Kind enumerates the supported gate operations.
type Kind int

// Gate kinds. The set covers the needs of every workload in the paper:
// Clifford generators, parameterized rotations for variational circuits,
// controlled rotations for QPE/HHL, and measurement.
const (
	KindI Kind = iota
	KindH
	KindX
	KindY
	KindZ
	KindS
	KindSdg
	KindT
	KindTdg
	KindSX
	KindRX
	KindRY
	KindRZ
	KindP // phase gate: diag(1, e^{iθ})
	KindCX
	KindCY
	KindCZ
	KindCRX
	KindCRY
	KindCRZ
	KindCP
	KindSWAP
	KindRZZ
	KindRXX
	KindCCX
	KindCSWAP
	KindUnitary // dense unitary on Qubits (matrix attached)
	KindMeasure
	KindBarrier
	KindReset
)

var kindNames = map[Kind]string{
	KindI: "id", KindH: "h", KindX: "x", KindY: "y", KindZ: "z",
	KindS: "s", KindSdg: "sdg", KindT: "t", KindTdg: "tdg", KindSX: "sx",
	KindRX: "rx", KindRY: "ry", KindRZ: "rz", KindP: "p",
	KindCX: "cx", KindCY: "cy", KindCZ: "cz",
	KindCRX: "crx", KindCRY: "cry", KindCRZ: "crz", KindCP: "cp",
	KindSWAP: "swap", KindRZZ: "rzz", KindRXX: "rxx",
	KindCCX: "ccx", KindCSWAP: "cswap", KindUnitary: "unitary",
	KindMeasure: "measure", KindBarrier: "barrier", KindReset: "reset",
}

// Name returns the lowercase OpenQASM-style mnemonic for the kind.
func (k Kind) Name() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NumParams returns how many angle parameters a gate kind takes.
func (k Kind) NumParams() int {
	switch k {
	case KindRX, KindRY, KindRZ, KindP, KindCRX, KindCRY, KindCRZ, KindCP, KindRZZ, KindRXX:
		return 1
	default:
		return 0
	}
}

// NumQubits returns the arity of the gate kind (0 means variable, e.g. barrier).
func (k Kind) NumQubits() int {
	switch k {
	case KindCX, KindCY, KindCZ, KindCRX, KindCRY, KindCRZ, KindCP, KindSWAP, KindRZZ, KindRXX:
		return 2
	case KindCCX, KindCSWAP:
		return 3
	case KindBarrier, KindUnitary:
		return 0
	default:
		return 1
	}
}

// IsClifford reports whether the gate kind is a Clifford operation for all
// parameter values (rotations are not, even at special angles; the automatic
// backend selector treats them conservatively).
func (k Kind) IsClifford() bool {
	switch k {
	case KindI, KindH, KindX, KindY, KindZ, KindS, KindSdg, KindCX, KindCY, KindCZ, KindSWAP, KindMeasure, KindBarrier, KindReset:
		return true
	default:
		return false
	}
}

// Param is a (possibly symbolic) gate angle: Value = Coeff*θ(Name) + Const.
// A Param with empty Name is fully bound.
type Param struct {
	Name  string  `json:"name,omitempty"`
	Coeff float64 `json:"coeff,omitempty"`
	Const float64 `json:"const"`
}

// Bound returns a fully bound parameter with the given value.
func Bound(v float64) Param { return Param{Const: v} }

// Sym returns the symbolic parameter coeff*θ(name).
func Sym(name string, coeff float64) Param { return Param{Name: name, Coeff: coeff} }

// IsBound reports whether the parameter has a concrete value.
func (p Param) IsBound() bool { return p.Name == "" }

// Value resolves the parameter against a binding map; it panics on unbound
// symbols so that backends never silently execute half-bound circuits.
func (p Param) Value(binding map[string]float64) float64 {
	if p.Name == "" {
		return p.Const
	}
	v, ok := binding[p.Name]
	if !ok {
		panic(fmt.Sprintf("circuit: unbound parameter %q", p.Name))
	}
	return p.Coeff*v + p.Const
}

// Gate is one operation in a circuit. Qubits holds control qubits before
// target qubits for controlled kinds (e.g. CX: [control, target]).
type Gate struct {
	Kind   Kind           `json:"kind"`
	Qubits []int          `json:"qubits"`
	Params []Param        `json:"params,omitempty"`
	Matrix *linalg.Matrix `json:"matrix,omitempty"` // only for KindUnitary
	Cbit   int            `json:"cbit,omitempty"`   // classical bit for KindMeasure
}

// Angle returns the single bound angle of the gate (panics if symbolic).
func (g Gate) Angle() float64 {
	if len(g.Params) != 1 {
		panic("circuit: Angle on gate without exactly one parameter")
	}
	return g.Params[0].Value(nil)
}

// IsBound reports whether all parameters of the gate are bound.
func (g Gate) IsBound() bool {
	for _, p := range g.Params {
		if !p.IsBound() {
			return false
		}
	}
	return true
}

// Matrix1Q returns the 2x2 matrix of a bound single-qubit gate kind.
func Matrix1Q(k Kind, theta float64) [2][2]complex128 {
	i := complex(0, 1)
	switch k {
	case KindI:
		return [2][2]complex128{{1, 0}, {0, 1}}
	case KindH:
		s := complex(1/math.Sqrt2, 0)
		return [2][2]complex128{{s, s}, {s, -s}}
	case KindX:
		return [2][2]complex128{{0, 1}, {1, 0}}
	case KindY:
		return [2][2]complex128{{0, -i}, {i, 0}}
	case KindZ:
		return [2][2]complex128{{1, 0}, {0, -1}}
	case KindS:
		return [2][2]complex128{{1, 0}, {0, i}}
	case KindSdg:
		return [2][2]complex128{{1, 0}, {0, -i}}
	case KindT:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(i * math.Pi / 4)}}
	case KindTdg:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(-i * math.Pi / 4)}}
	case KindSX:
		return [2][2]complex128{{0.5 + 0.5*i, 0.5 - 0.5*i}, {0.5 - 0.5*i, 0.5 + 0.5*i}}
	case KindRX:
		c, s := complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))
		return [2][2]complex128{{c, s}, {s, c}}
	case KindRY:
		c, s := math.Cos(theta/2), math.Sin(theta/2)
		return [2][2]complex128{{complex(c, 0), complex(-s, 0)}, {complex(s, 0), complex(c, 0)}}
	case KindRZ:
		return [2][2]complex128{{cmplx.Exp(complex(0, -theta/2)), 0}, {0, cmplx.Exp(complex(0, theta/2))}}
	case KindP:
		return [2][2]complex128{{1, 0}, {0, cmplx.Exp(complex(0, theta))}}
	default:
		panic(fmt.Sprintf("circuit: Matrix1Q on non-1q kind %s", k.Name()))
	}
}

// baseOf maps a controlled kind to its target single-qubit kind.
func baseOf(k Kind) (Kind, bool) {
	switch k {
	case KindCX:
		return KindX, true
	case KindCY:
		return KindY, true
	case KindCZ:
		return KindZ, true
	case KindCRX:
		return KindRX, true
	case KindCRY:
		return KindRY, true
	case KindCRZ:
		return KindRZ, true
	case KindCP:
		return KindP, true
	}
	return KindI, false
}

// ControlledTarget returns the 2x2 matrix applied to the target when the
// controls of a controlled gate are satisfied.
func ControlledTarget(k Kind, theta float64) ([2][2]complex128, bool) {
	if b, ok := baseOf(k); ok {
		return Matrix1Q(b, theta), true
	}
	if k == KindCCX {
		return Matrix1Q(KindX, 0), true
	}
	return [2][2]complex128{}, false
}

// Matrix2Q returns the 4x4 matrix (basis |q0 q1> with q0 the first listed
// qubit as the most significant bit) of a bound two-qubit gate.
func Matrix2Q(k Kind, theta float64) *linalg.Matrix {
	m := linalg.New(4, 4)
	set := func(vals [16]complex128) {
		copy(m.Data, vals[:])
	}
	i := complex(0, 1)
	switch k {
	case KindCX:
		set([16]complex128{
			1, 0, 0, 0,
			0, 1, 0, 0,
			0, 0, 0, 1,
			0, 0, 1, 0})
	case KindCY:
		set([16]complex128{
			1, 0, 0, 0,
			0, 1, 0, 0,
			0, 0, 0, -i,
			0, 0, i, 0})
	case KindCZ:
		set([16]complex128{
			1, 0, 0, 0,
			0, 1, 0, 0,
			0, 0, 1, 0,
			0, 0, 0, -1})
	case KindSWAP:
		set([16]complex128{
			1, 0, 0, 0,
			0, 0, 1, 0,
			0, 1, 0, 0,
			0, 0, 0, 1})
	case KindCRX, KindCRY, KindCRZ, KindCP:
		b, _ := baseOf(k)
		t := Matrix1Q(b, theta)
		set([16]complex128{
			1, 0, 0, 0,
			0, 1, 0, 0,
			0, 0, t[0][0], t[0][1],
			0, 0, t[1][0], t[1][1]})
	case KindRZZ:
		e0 := cmplx.Exp(complex(0, -theta/2))
		e1 := cmplx.Exp(complex(0, theta/2))
		set([16]complex128{
			e0, 0, 0, 0,
			0, e1, 0, 0,
			0, 0, e1, 0,
			0, 0, 0, e0})
	case KindRXX:
		c := complex(math.Cos(theta/2), 0)
		s := complex(0, -math.Sin(theta/2))
		set([16]complex128{
			c, 0, 0, s,
			0, c, s, 0,
			0, s, c, 0,
			s, 0, 0, c})
	default:
		panic(fmt.Sprintf("circuit: Matrix2Q on kind %s", k.Name()))
	}
	return m
}

// FromMat2 converts a 2x2 gate matrix into a dense linalg.Matrix.
func FromMat2(m [2][2]complex128) *linalg.Matrix {
	out := linalg.New(2, 2)
	out.Set(0, 0, m[0][0])
	out.Set(0, 1, m[0][1])
	out.Set(1, 0, m[1][0])
	out.Set(1, 1, m[1][1])
	return out
}

// DaggerKind returns the kind and angle transform implementing the adjoint of
// a gate; rotations negate their angle, S/T swap with their daggers.
func DaggerKind(k Kind) (Kind, bool /*negate angle*/) {
	switch k {
	case KindS:
		return KindSdg, false
	case KindSdg:
		return KindS, false
	case KindT:
		return KindTdg, false
	case KindTdg:
		return KindT, false
	case KindRX, KindRY, KindRZ, KindP, KindCRX, KindCRY, KindCRZ, KindCP, KindRZZ, KindRXX:
		return k, true
	case KindSX:
		return KindUnitary, false // handled specially in Inverse
	default:
		return k, false
	}
}
