package circuit

import (
	"strings"
	"testing"
)

// schedOf fuses a bound circuit and partitions it for nLocal-qubit shards.
func schedOf(t *testing.T, c *Circuit, nLocal int) (*FusedProgram, *DistSchedule) {
	t.Helper()
	prog := FuseBound(c)
	sched, err := PlanDistStages(prog, nLocal)
	if err != nil {
		t.Fatal(err)
	}
	return prog, sched
}

func TestPlanDistStagesDiagonalNeverRemaps(t *testing.T) {
	// A pure diagonal layer (QAOA cost sweep) must schedule in one stage
	// regardless of how few qubits are shard-resident: diagonal factors on
	// rank-encoded qubits are per-rank scalars, not communication.
	c := New(8)
	for q := 0; q+1 < 8; q++ {
		c.RZZ(q, q+1, Bound(0.3))
	}
	for q := 0; q < 8; q++ {
		c.RZ(q, Bound(0.7))
	}
	_, sched := schedOf(t, c, 1)
	if sched.Remaps() != 0 {
		t.Fatalf("diagonal circuit scheduled %d remaps, want 0", sched.Remaps())
	}
}

func TestPlanDistStagesCollapsesGlobalRuns(t *testing.T) {
	// An H+RX sweep over every qubit with 4 of 8 qubits shard-resident: the
	// per-gate engine would exchange once per global-qubit gate (8
	// exchanges); the look-ahead partitioner must collapse the global run
	// into far fewer remap points, and every scheduled op must be resident
	// in its stage.
	c := New(8)
	for q := 0; q < 8; q++ {
		c.H(q).RX(q, Bound(0.8))
	}
	prog, sched := schedOf(t, c, 4)
	if got := sched.Remaps(); got == 0 || got >= 8 {
		t.Fatalf("remaps = %d, want in [1, 8)", got)
	}
	total := 0
	for _, st := range sched.Stages {
		total += len(st.Ops)
		for _, oi := range st.Ops {
			qs, constrained := distSupport(&prog.Ops[oi])
			if !constrained {
				continue
			}
			for _, q := range qs {
				if st.Layout[q] >= sched.NLocal {
					t.Fatalf("op %d qubit %d at global position %d in its own stage", oi, q, st.Layout[q])
				}
			}
		}
	}
	if total != len(prog.Ops) {
		t.Fatalf("schedule covers %d ops, program has %d", total, len(prog.Ops))
	}
}

func TestPlanDistStagesLayoutIsPermutation(t *testing.T) {
	c := New(6)
	for q := 0; q < 6; q++ {
		c.H(q).RX(q, Bound(0.2))
	}
	c.CX(0, 5).CX(5, 1).RZZ(2, 4, Bound(1.1))
	_, sched := schedOf(t, c, 3)
	for si, st := range sched.Stages {
		seen := make([]bool, sched.NQubits)
		for q, p := range st.Layout {
			if p < 0 || p >= sched.NQubits || seen[p] {
				t.Fatalf("stage %d: layout %v is not a permutation (qubit %d -> %d)", si, st.Layout, q, p)
			}
			seen[p] = true
		}
	}
	if ident := sched.Stages[0].Layout; ident[0] != 0 || ident[sched.NQubits-1] != sched.NQubits-1 {
		t.Fatalf("first stage layout must be identity, got %v", ident)
	}
}

func TestPlanDistStagesTooWide(t *testing.T) {
	c := New(4)
	c.CCX(0, 1, 2)
	prog := FuseBound(c)
	_, err := PlanDistStages(prog, 2)
	if err == nil || !strings.Contains(err.Error(), "resident qubits") {
		t.Fatalf("got %v, want resident-qubits error", err)
	}
}
