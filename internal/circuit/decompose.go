package circuit

// GateSet describes the gate kinds a backend natively executes. Transpile
// rewrites a circuit into an equivalent one using only supported kinds.
type GateSet map[Kind]bool

// BasicGateSet is the lowest common denominator used by the distributed
// state-vector engine: single-qubit gates plus singly-controlled ones.
func BasicGateSet() GateSet {
	return GateSet{
		KindI: true, KindH: true, KindX: true, KindY: true, KindZ: true,
		KindS: true, KindSdg: true, KindT: true, KindTdg: true, KindSX: true,
		KindRX: true, KindRY: true, KindRZ: true, KindP: true,
		KindCX: true, KindCY: true, KindCZ: true,
		KindCRX: true, KindCRY: true, KindCRZ: true, KindCP: true,
		KindMeasure: true, KindBarrier: true, KindReset: true,
	}
}

// CliffordGateSet is what the stabilizer engine executes natively.
func CliffordGateSet() GateSet {
	return GateSet{
		KindI: true, KindH: true, KindX: true, KindY: true, KindZ: true,
		KindS: true, KindSdg: true, KindCX: true, KindCZ: true,
		KindMeasure: true, KindBarrier: true, KindReset: true,
	}
}

// Transpile returns an equivalent circuit using only gates in the set.
// Unsupported gates are expanded by textbook identities; gates with no
// expansion rule (e.g. dense unitaries on an engine without dense support)
// cause a panic, surfacing an integration bug rather than silent corruption.
func Transpile(c *Circuit, set GateSet) *Circuit {
	out := New(c.NQubits)
	out.Name = c.Name
	for _, g := range c.Gates {
		emit(out, g, set, 0)
	}
	return out
}

const maxExpandDepth = 16

func emit(out *Circuit, g Gate, set GateSet, depth int) {
	if depth > maxExpandDepth {
		panic("circuit: transpile recursion limit (missing rule?)")
	}
	if set[g.Kind] {
		out.Append(g)
		return
	}
	q := g.Qubits
	p := g.Params
	sub := func(gs ...Gate) {
		for _, s := range gs {
			emit(out, s, set, depth+1)
		}
	}
	neg := func(pp Param) Param { return Param{Name: pp.Name, Coeff: -pp.Coeff, Const: -pp.Const} }
	half := func(pp Param) Param { return Param{Name: pp.Name, Coeff: pp.Coeff / 2, Const: pp.Const / 2} }
	switch g.Kind {
	case KindSWAP:
		sub(Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindCX, Qubits: []int{q[1], q[0]}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}})
	case KindRZZ:
		sub(Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindRZ, Qubits: []int{q[1]}, Params: []Param{p[0]}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}})
	case KindRXX:
		sub(Gate{Kind: KindH, Qubits: []int{q[0]}},
			Gate{Kind: KindH, Qubits: []int{q[1]}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindRZ, Qubits: []int{q[1]}, Params: []Param{p[0]}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindH, Qubits: []int{q[0]}},
			Gate{Kind: KindH, Qubits: []int{q[1]}})
	case KindCY:
		sub(Gate{Kind: KindSdg, Qubits: []int{q[1]}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindS, Qubits: []int{q[1]}})
	case KindCZ:
		sub(Gate{Kind: KindH, Qubits: []int{q[1]}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindH, Qubits: []int{q[1]}})
	case KindCRZ:
		sub(Gate{Kind: KindRZ, Qubits: []int{q[1]}, Params: []Param{half(p[0])}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindRZ, Qubits: []int{q[1]}, Params: []Param{neg(half(p[0]))}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}})
	case KindCRY:
		sub(Gate{Kind: KindRY, Qubits: []int{q[1]}, Params: []Param{half(p[0])}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindRY, Qubits: []int{q[1]}, Params: []Param{neg(half(p[0]))}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}})
	case KindCRX:
		// X = H Z H, so CRX = (I⊗H) CRZ (I⊗H).
		sub(Gate{Kind: KindH, Qubits: []int{q[1]}},
			Gate{Kind: KindCRZ, Qubits: []int{q[0], q[1]}, Params: []Param{p[0]}},
			Gate{Kind: KindH, Qubits: []int{q[1]}})
	case KindCP:
		sub(Gate{Kind: KindP, Qubits: []int{q[0]}, Params: []Param{half(p[0])}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindP, Qubits: []int{q[1]}, Params: []Param{neg(half(p[0]))}},
			Gate{Kind: KindCX, Qubits: []int{q[0], q[1]}},
			Gate{Kind: KindP, Qubits: []int{q[1]}, Params: []Param{half(p[0])}})
	case KindCCX:
		a, b, t := q[0], q[1], q[2]
		sub(Gate{Kind: KindH, Qubits: []int{t}},
			Gate{Kind: KindCX, Qubits: []int{b, t}},
			Gate{Kind: KindTdg, Qubits: []int{t}},
			Gate{Kind: KindCX, Qubits: []int{a, t}},
			Gate{Kind: KindT, Qubits: []int{t}},
			Gate{Kind: KindCX, Qubits: []int{b, t}},
			Gate{Kind: KindTdg, Qubits: []int{t}},
			Gate{Kind: KindCX, Qubits: []int{a, t}},
			Gate{Kind: KindT, Qubits: []int{b}},
			Gate{Kind: KindT, Qubits: []int{t}},
			Gate{Kind: KindH, Qubits: []int{t}},
			Gate{Kind: KindCX, Qubits: []int{a, b}},
			Gate{Kind: KindT, Qubits: []int{a}},
			Gate{Kind: KindTdg, Qubits: []int{b}},
			Gate{Kind: KindCX, Qubits: []int{a, b}})
	case KindCSWAP:
		c1, x, y := q[0], q[1], q[2]
		sub(Gate{Kind: KindCX, Qubits: []int{y, x}},
			Gate{Kind: KindCCX, Qubits: []int{c1, x, y}},
			Gate{Kind: KindCX, Qubits: []int{y, x}})
	case KindSX:
		// SX = e^{iπ/4} RX(π/2); global phase is irrelevant for simulation.
		sub(Gate{Kind: KindRX, Qubits: []int{q[0]}, Params: []Param{Bound(1.5707963267948966)}})
	case KindI, KindBarrier:
		// Droppable when unsupported.
	default:
		panic("circuit: no transpile rule for " + g.Kind.Name())
	}
}
