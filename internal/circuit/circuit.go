package circuit

import (
	"fmt"
	"sort"

	"qfw/internal/linalg"
)

// Circuit is an ordered list of gates over n qubits and n classical bits.
// The zero value is unusable; construct with New.
type Circuit struct {
	NQubits int    `json:"nqubits"`
	Name    string `json:"name,omitempty"`
	Gates   []Gate `json:"gates"`
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: invalid qubit count %d", n))
	}
	return &Circuit{NQubits: n}
}

// Copy returns a deep copy of the circuit.
func (c *Circuit) Copy() *Circuit {
	out := &Circuit{NQubits: c.NQubits, Name: c.Name, Gates: make([]Gate, len(c.Gates))}
	for i, g := range c.Gates {
		ng := g
		ng.Qubits = append([]int(nil), g.Qubits...)
		ng.Params = append([]Param(nil), g.Params...)
		if g.Matrix != nil {
			ng.Matrix = g.Matrix.Copy()
		}
		out.Gates[i] = ng
	}
	return out
}

func (c *Circuit) checkQubits(qs ...int) {
	seen := map[int]bool{}
	for _, q := range qs {
		if q < 0 || q >= c.NQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NQubits))
		}
		if seen[q] {
			panic(fmt.Sprintf("circuit: duplicate qubit %d in one gate", q))
		}
		seen[q] = true
	}
}

// Append adds a gate, validating qubit indices and arity.
func (c *Circuit) Append(g Gate) *Circuit {
	c.checkQubits(g.Qubits...)
	if want := g.Kind.NumQubits(); want != 0 && want != len(g.Qubits) {
		panic(fmt.Sprintf("circuit: %s expects %d qubits, got %d", g.Kind.Name(), want, len(g.Qubits)))
	}
	if want := g.Kind.NumParams(); want != len(g.Params) {
		panic(fmt.Sprintf("circuit: %s expects %d params, got %d", g.Kind.Name(), want, len(g.Params)))
	}
	if g.Kind == KindUnitary {
		if g.Matrix == nil {
			panic("circuit: unitary gate without matrix")
		}
		if dim := 1 << len(g.Qubits); g.Matrix.Rows != dim || g.Matrix.Cols != dim {
			panic(fmt.Sprintf("circuit: unitary matrix %dx%d does not match %d qubits", g.Matrix.Rows, g.Matrix.Cols, len(g.Qubits)))
		}
	}
	c.Gates = append(c.Gates, g)
	return c
}

// Fluent single-gate builders. Controlled gates list controls first.

func (c *Circuit) I(q int) *Circuit { return c.Append(Gate{Kind: KindI, Qubits: []int{q}}) }
func (c *Circuit) H(q int) *Circuit { return c.Append(Gate{Kind: KindH, Qubits: []int{q}}) }
func (c *Circuit) X(q int) *Circuit { return c.Append(Gate{Kind: KindX, Qubits: []int{q}}) }
func (c *Circuit) Y(q int) *Circuit { return c.Append(Gate{Kind: KindY, Qubits: []int{q}}) }
func (c *Circuit) Z(q int) *Circuit { return c.Append(Gate{Kind: KindZ, Qubits: []int{q}}) }
func (c *Circuit) S(q int) *Circuit { return c.Append(Gate{Kind: KindS, Qubits: []int{q}}) }
func (c *Circuit) Sdg(q int) *Circuit {
	return c.Append(Gate{Kind: KindSdg, Qubits: []int{q}})
}
func (c *Circuit) T(q int) *Circuit { return c.Append(Gate{Kind: KindT, Qubits: []int{q}}) }
func (c *Circuit) Tdg(q int) *Circuit {
	return c.Append(Gate{Kind: KindTdg, Qubits: []int{q}})
}
func (c *Circuit) SX(q int) *Circuit { return c.Append(Gate{Kind: KindSX, Qubits: []int{q}}) }
func (c *Circuit) RX(q int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindRX, Qubits: []int{q}, Params: []Param{theta}})
}
func (c *Circuit) RY(q int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindRY, Qubits: []int{q}, Params: []Param{theta}})
}
func (c *Circuit) RZ(q int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindRZ, Qubits: []int{q}, Params: []Param{theta}})
}
func (c *Circuit) P(q int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindP, Qubits: []int{q}, Params: []Param{theta}})
}
func (c *Circuit) CX(ctrl, tgt int) *Circuit {
	return c.Append(Gate{Kind: KindCX, Qubits: []int{ctrl, tgt}})
}
func (c *Circuit) CY(ctrl, tgt int) *Circuit {
	return c.Append(Gate{Kind: KindCY, Qubits: []int{ctrl, tgt}})
}
func (c *Circuit) CZ(ctrl, tgt int) *Circuit {
	return c.Append(Gate{Kind: KindCZ, Qubits: []int{ctrl, tgt}})
}
func (c *Circuit) CRX(ctrl, tgt int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindCRX, Qubits: []int{ctrl, tgt}, Params: []Param{theta}})
}
func (c *Circuit) CRY(ctrl, tgt int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindCRY, Qubits: []int{ctrl, tgt}, Params: []Param{theta}})
}
func (c *Circuit) CRZ(ctrl, tgt int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindCRZ, Qubits: []int{ctrl, tgt}, Params: []Param{theta}})
}
func (c *Circuit) CP(ctrl, tgt int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindCP, Qubits: []int{ctrl, tgt}, Params: []Param{theta}})
}
func (c *Circuit) SWAP(a, b int) *Circuit {
	return c.Append(Gate{Kind: KindSWAP, Qubits: []int{a, b}})
}
func (c *Circuit) RZZ(a, b int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindRZZ, Qubits: []int{a, b}, Params: []Param{theta}})
}
func (c *Circuit) RXX(a, b int, theta Param) *Circuit {
	return c.Append(Gate{Kind: KindRXX, Qubits: []int{a, b}, Params: []Param{theta}})
}
func (c *Circuit) CCX(c1, c2, tgt int) *Circuit {
	return c.Append(Gate{Kind: KindCCX, Qubits: []int{c1, c2, tgt}})
}
func (c *Circuit) CSWAP(ctrl, a, b int) *Circuit {
	return c.Append(Gate{Kind: KindCSWAP, Qubits: []int{ctrl, a, b}})
}
func (c *Circuit) Unitary(m *linalg.Matrix, qs ...int) *Circuit {
	return c.Append(Gate{Kind: KindUnitary, Qubits: qs, Matrix: m})
}
func (c *Circuit) Measure(q, cbit int) *Circuit {
	return c.Append(Gate{Kind: KindMeasure, Qubits: []int{q}, Cbit: cbit})
}
func (c *Circuit) MeasureAll() *Circuit {
	for q := 0; q < c.NQubits; q++ {
		c.Measure(q, q)
	}
	return c
}
func (c *Circuit) Barrier(qs ...int) *Circuit {
	return c.Append(Gate{Kind: KindBarrier, Qubits: qs})
}
func (c *Circuit) Reset(q int) *Circuit {
	return c.Append(Gate{Kind: KindReset, Qubits: []int{q}})
}

// Compose appends all gates of other (same width) to c.
func (c *Circuit) Compose(other *Circuit) *Circuit {
	if other.NQubits > c.NQubits {
		panic("circuit: compose width mismatch")
	}
	for _, g := range other.Copy().Gates {
		c.Append(g)
	}
	return c
}

// Bind returns a copy with every symbolic parameter resolved against
// binding. Parameters whose name is absent from the binding stay symbolic
// (check IsBound afterwards), so a partial binding arriving over RPC is a
// detectable error instead of a worker panic.
func (c *Circuit) Bind(binding map[string]float64) *Circuit {
	out := c.Copy()
	for i := range out.Gates {
		for j, p := range out.Gates[i].Params {
			if !p.IsBound() {
				if _, ok := binding[p.Name]; ok {
					out.Gates[i].Params[j] = Bound(p.Value(binding))
				}
			}
		}
	}
	return out
}

// ParamNames returns the sorted set of unbound parameter names.
func (c *Circuit) ParamNames() []string {
	set := map[string]bool{}
	for _, g := range c.Gates {
		for _, p := range g.Params {
			if !p.IsBound() {
				set[p.Name] = true
			}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsBound reports whether the circuit has no unbound parameters.
func (c *Circuit) IsBound() bool { return len(c.ParamNames()) == 0 }

// Inverse returns the adjoint circuit (gates reversed and daggered).
// Measure/Reset gates cannot be inverted and cause a panic.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NQubits)
	out.Name = c.Name + "_dg"
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		switch g.Kind {
		case KindMeasure, KindReset:
			panic("circuit: cannot invert measurement/reset")
		case KindBarrier:
			out.Append(g)
			continue
		case KindUnitary:
			out.Append(Gate{Kind: KindUnitary, Qubits: append([]int(nil), g.Qubits...), Matrix: g.Matrix.Dagger()})
			continue
		case KindSX:
			// SX† = SX·X·Z up to phase; use the dense adjoint for exactness.
			m := linalg.New(2, 2)
			t := Matrix1Q(KindSX, 0)
			m.Set(0, 0, t[0][0])
			m.Set(0, 1, t[0][1])
			m.Set(1, 0, t[1][0])
			m.Set(1, 1, t[1][1])
			out.Append(Gate{Kind: KindUnitary, Qubits: append([]int(nil), g.Qubits...), Matrix: m.Dagger()})
			continue
		}
		nk, negate := DaggerKind(g.Kind)
		ng := Gate{Kind: nk, Qubits: append([]int(nil), g.Qubits...)}
		for _, p := range g.Params {
			if negate {
				ng.Params = append(ng.Params, Param{Name: p.Name, Coeff: -p.Coeff, Const: -p.Const})
			} else {
				ng.Params = append(ng.Params, p)
			}
		}
		out.Append(ng)
	}
	return out
}

// Depth returns the circuit depth using greedy ASAP layering (barriers
// synchronize all listed qubits, or all qubits when none listed).
func (c *Circuit) Depth() int {
	level := make([]int, c.NQubits)
	depth := 0
	for _, g := range c.Gates {
		qs := g.Qubits
		if g.Kind == KindBarrier && len(qs) == 0 {
			qs = make([]int, c.NQubits)
			for i := range qs {
				qs[i] = i
			}
		}
		mx := 0
		for _, q := range qs {
			if level[q] > mx {
				mx = level[q]
			}
		}
		if g.Kind != KindBarrier {
			mx++
		}
		for _, q := range qs {
			level[q] = mx
		}
		if mx > depth {
			depth = mx
		}
	}
	return depth
}

// CountOps returns a histogram of gate mnemonics.
func (c *Circuit) CountOps() map[string]int {
	h := map[string]int{}
	for _, g := range c.Gates {
		h[g.Kind.Name()]++
	}
	return h
}

// NumTwoQubitGates counts gates acting on two or more qubits (excluding barriers).
func (c *Circuit) NumTwoQubitGates() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind != KindBarrier && len(g.Qubits) >= 2 {
			n++
		}
	}
	return n
}

// IsClifford reports whether every gate is a Clifford operation.
func (c *Circuit) IsClifford() bool {
	for _, g := range c.Gates {
		if !g.Kind.IsClifford() {
			return false
		}
	}
	return true
}

// HasMeasurements reports whether the circuit contains measure gates.
func (c *Circuit) HasMeasurements() bool {
	for _, g := range c.Gates {
		if g.Kind == KindMeasure {
			return true
		}
	}
	return true && c.countMeasure() > 0
}

func (c *Circuit) countMeasure() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == KindMeasure {
			n++
		}
	}
	return n
}

// StripMeasurements returns a copy without measure/barrier/reset gates,
// used by simulators that sample from the final state directly.
func (c *Circuit) StripMeasurements() *Circuit {
	out := New(c.NQubits)
	out.Name = c.Name
	for _, g := range c.Gates {
		switch g.Kind {
		case KindMeasure, KindBarrier, KindReset:
			continue
		}
		out.Append(g)
	}
	return out
}

// InteractionDistance returns the maximum |i-j| over two-qubit interactions,
// a cheap proxy for entanglement spread used by the automatic backend
// selector (nearest-neighbour circuits suit MPS).
func (c *Circuit) InteractionDistance() int {
	mx := 0
	for _, g := range c.Gates {
		if g.Kind == KindBarrier {
			continue
		}
		for i := 0; i < len(g.Qubits); i++ {
			for j := i + 1; j < len(g.Qubits); j++ {
				d := g.Qubits[i] - g.Qubits[j]
				if d < 0 {
					d = -d
				}
				if d > mx {
					mx = d
				}
			}
		}
	}
	return mx
}

// String gives a compact human-readable listing.
func (c *Circuit) String() string {
	s := fmt.Sprintf("circuit %q: %d qubits, %d gates, depth %d\n", c.Name, c.NQubits, len(c.Gates), c.Depth())
	for _, g := range c.Gates {
		s += fmt.Sprintf("  %-8s %v", g.Kind.Name(), g.Qubits)
		if len(g.Params) > 0 {
			s += " ("
			for i, p := range g.Params {
				if i > 0 {
					s += ", "
				}
				if p.IsBound() {
					s += fmt.Sprintf("%.6g", p.Const)
				} else {
					s += fmt.Sprintf("%g*%s%+g", p.Coeff, p.Name, p.Const)
				}
			}
			s += ")"
		}
		s += "\n"
	}
	return s
}
