package circuit

import (
	"math/rand"
	"strings"
	"testing"
)

// planTiled is the test-side shorthand: fusion-plan a circuit and partition
// it into tile stages at the given granularity.
func planTiled(t *testing.T, c *Circuit, tileBits int) (*DistSchedule, error) {
	t.Helper()
	return PlanTileStages(PlanFusion(c), c, tileBits)
}

// TestPlanTileStagesDiagonalOnly: a program that fuses to nothing but
// diagonal layers is unconstrained — one stage, zero remaps, at any tile
// granularity including zero local bits.
func TestPlanTileStagesDiagonalOnly(t *testing.T) {
	c := New(8)
	for q := 0; q < 8; q++ {
		c.RZ(q, Bound(0.1*float64(q+1)))
	}
	for q := 0; q < 7; q++ {
		c.RZZ(q, q+1, Bound(0.3))
	}
	for _, tb := range []int{0, 1, 4} {
		sched, err := planTiled(t, c, tb)
		if err != nil {
			t.Fatalf("tileBits=%d: diagonal-only program should always tile: %v", tb, err)
		}
		if len(sched.Stages) != 1 || sched.Remaps() != 0 {
			t.Fatalf("tileBits=%d: want one stage and zero remaps, got %d stages / %d remaps",
				tb, len(sched.Stages), sched.Remaps())
		}
	}
}

// TestPlanTileStagesTinyTiles: with one local bit, any single-qubit dense
// circuit tiles (each op needs one resident qubit) and gates on distinct
// qubits land in distinct stages; with zero local bits the partitioner must
// refuse dense ops rather than emit an unexecutable schedule.
func TestPlanTileStagesTinyTiles(t *testing.T) {
	c := New(5)
	for q := 0; q < 5; q++ {
		c.H(q).RX(q, Bound(0.4))
	}
	sched, err := planTiled(t, c, 1)
	if err != nil {
		t.Fatalf("1q-only circuit should tile at tileBits=1: %v", err)
	}
	if len(sched.Stages) < 2 {
		t.Fatalf("five 1q supports cannot share one 2-amplitude tile, got %d stages", len(sched.Stages))
	}
	if _, err := planTiled(t, c, 0); err == nil {
		t.Fatal("tileBits=0 must refuse dense ops")
	}
}

// TestPlanTileStagesWideOpRefused: an op wider than the tile is a planning
// error naming the offending support, and the caller-facing contract is
// "refuse, then fall back to per-op execution" — never a silent mis-plan.
func TestPlanTileStagesWideOpRefused(t *testing.T) {
	c := New(6)
	c.H(0)
	c.CCX(1, 3, 5)
	_, err := planTiled(t, c, 2)
	if err == nil {
		t.Fatal("CCX needs 3 resident qubits; tileBits=2 must refuse")
	}
	if !strings.Contains(err.Error(), "3 resident qubits") {
		t.Fatalf("refusal should name the resident-qubit need, got: %v", err)
	}
	if _, err := planTiled(t, c, 3); err != nil {
		t.Fatalf("tileBits=3 fits the CCX: %v", err)
	}
}

// TestPlanTileStagesAllGlobalOps: every dense op acts above the tile
// boundary, so each stage's layout must pull its supports down into local
// positions — the schedule stays executable and every staged op is resident.
func TestPlanTileStagesAllGlobalOps(t *testing.T) {
	const n, tb = 10, 3
	c := New(n)
	for q := tb; q < n-1; q++ {
		c.CX(q, q+1)
	}
	plan := PlanFusion(c)
	sched, err := PlanTileStages(plan, c, tb)
	if err != nil {
		t.Fatalf("all-global circuit should tile via remaps: %v", err)
	}
	if sched.Remaps() == 0 {
		t.Fatal("ops above the tile boundary need at least one remap")
	}
	assertResident(t, plan, c, sched)
}

// TestPlanTileStagesResidencyRandom fuzzes the residency invariant that the
// blocked executor relies on: under each stage's layout, every non-diagonal
// staged op sits entirely below NLocal, every op appears exactly once, and
// program order is preserved within the schedule.
func TestPlanTileStagesResidencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(6)
		c := New(n)
		for g := 0; g < 40; g++ {
			switch rng.Intn(4) {
			case 0:
				c.H(rng.Intn(n))
			case 1:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CX(a, b)
			case 2:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.RZZ(a, b, Bound(rng.Float64()))
			default:
				c.RX(rng.Intn(n), Bound(rng.Float64()))
			}
		}
		tb := 2 + rng.Intn(n-2)
		plan := PlanFusion(c)
		sched, err := PlanTileStages(plan, c, tb)
		if err != nil {
			t.Fatalf("trial %d (n=%d tb=%d): %v", trial, n, tb, err)
		}
		assertResident(t, plan, c, sched)
	}
}

// assertResident checks the schedule invariants against the compiled
// sequential program the blocked executor runs.
func assertResident(t *testing.T, plan *FusionPlan, c *Circuit, sched *DistSchedule) {
	t.Helper()
	prog := plan.CompileSeq(c)
	if sched.NQubits != prog.NQubits {
		t.Fatalf("schedule width %d != program width %d", sched.NQubits, prog.NQubits)
	}
	seen := make([]bool, len(prog.Ops))
	last := -1
	for si, st := range sched.Stages {
		if len(st.Layout) != prog.NQubits {
			t.Fatalf("stage %d: layout covers %d of %d qubits", si, len(st.Layout), prog.NQubits)
		}
		for _, oi := range st.Ops {
			if oi <= last {
				t.Fatalf("stage %d: op %d out of program order (prev %d)", si, oi, last)
			}
			last = oi
			if seen[oi] {
				t.Fatalf("op %d scheduled twice", oi)
			}
			seen[oi] = true
			op := &prog.Ops[oi]
			qs, constrained := distSupport(op)
			if !constrained {
				continue
			}
			for _, q := range qs {
				if st.Layout[q] >= sched.NLocal {
					t.Fatalf("stage %d: op %d qubit %d at global position %d (NLocal=%d)",
						si, oi, q, st.Layout[q], sched.NLocal)
				}
			}
		}
	}
	for oi, ok := range seen {
		if !ok {
			t.Fatalf("op %d never scheduled", oi)
		}
	}
}
