package circuit

import (
	"math"
	"math/cmplx"
	"testing"

	"qfw/internal/linalg"
)

// parametricKinds lists every differentiable gate kind with a sample qubit
// assignment on 2 qubits.
var parametricKinds = []struct {
	kind   Kind
	qubits []int
}{
	{KindRX, []int{0}},
	{KindRY, []int{0}},
	{KindRZ, []int{1}},
	{KindP, []int{0}},
	{KindCRX, []int{0, 1}},
	{KindCRY, []int{1, 0}},
	{KindCRZ, []int{0, 1}},
	{KindCP, []int{0, 1}},
	{KindRZZ, []int{0, 1}},
	{KindRXX, []int{1, 0}},
}

// gateMatrix expands a bound gate onto the full 2-qubit basis (qubit 1 most
// significant).
func gateMatrix(g Gate) *linalg.Matrix {
	return expandGate(g, []int{1, 0})
}

// genMatrix expands a generator onto the 2-qubit basis.
func genMatrix(gen Generator) *linalg.Matrix {
	i := complex(0, 1)
	m := linalg.Identity(4)
	for _, op := range gen.Ops {
		var f [2][2]complex128
		switch op.Kind {
		case GenX:
			f = [2][2]complex128{{0, 1}, {1, 0}}
		case GenY:
			f = [2][2]complex128{{0, -i}, {i, 0}}
		case GenZ:
			f = [2][2]complex128{{1, 0}, {0, -1}}
		case GenP1:
			f = [2][2]complex128{{0, 0}, {0, 1}}
		}
		g := Gate{Kind: KindUnitary, Qubits: []int{op.Q}, Matrix: FromMat2(f)}
		m = linalg.MatMul(expandGate(g, []int{1, 0}), m)
	}
	for idx := range m.Data {
		m.Data[idx] *= gen.Scale
	}
	return m
}

// TestGateGeneratorsMatchNumericDerivative checks dU/dθ = G·U(θ) for every
// parametric kind against a central numeric matrix derivative.
func TestGateGeneratorsMatchNumericDerivative(t *testing.T) {
	const eps = 1e-6
	for _, tc := range parametricKinds {
		theta := 0.83
		mk := func(a float64) Gate {
			return Gate{Kind: tc.kind, Qubits: tc.qubits, Params: []Param{Bound(a)}}
		}
		gen, ok := GateGenerator(&Gate{Kind: tc.kind, Qubits: tc.qubits})
		if !ok {
			t.Fatalf("%s: no generator", tc.kind.Name())
		}
		want := linalg.MatMul(genMatrix(gen), gateMatrix(mk(theta)))
		up := gateMatrix(mk(theta + eps))
		dn := gateMatrix(mk(theta - eps))
		for idx := range want.Data {
			num := (up.Data[idx] - dn.Data[idx]) / complex(2*eps, 0)
			if cmplx.Abs(num-want.Data[idx]) > 1e-8 {
				t.Errorf("%s entry %d: generator %.9g vs numeric %.9g", tc.kind.Name(), idx, want.Data[idx], num)
			}
		}
	}
}

// TestShiftRulesCoverParametricKinds checks every kind with a generator also
// has a shift rule and vice versa.
func TestShiftRulesCoverParametricKinds(t *testing.T) {
	for k := KindI; k <= KindReset; k++ {
		_, hasGen := GateGenerator(&Gate{Kind: k, Qubits: []int{0, 1}})
		_, hasRule := ShiftRule(k)
		if hasGen != hasRule {
			t.Errorf("%s: generator=%v shift rule=%v", k.Name(), hasGen, hasRule)
		}
		if hasGen != (k.NumParams() == 1) {
			t.Errorf("%s: generator=%v but NumParams=%d", k.Name(), hasGen, k.NumParams())
		}
	}
}

// opMatrixOnBasis materializes a fused op as a dense matrix by applying it
// to basis vectors through a scratch 3-qubit statevector emulation in the
// circuit package's own terms (via expandGate on an equivalent gate) — here
// we only exercise kinds representable as gates or dense matrices, so the
// dagger test runs the op against its dagger and checks the product is
// identity on the compiled program level instead.
func TestDaggerFusedOpRoundTrip(t *testing.T) {
	// Build a circuit whose fusion compiles to every fused-op kind:
	// Hadamards, dense blocks, diagonal runs, permutations, RX pairs, a
	// wide CCX passthrough, and a dense 3q unitary segment.
	c := New(3)
	c.H(0)
	c.RX(0, Bound(0.3)).RX(1, Bound(0.9))                   // RX pair
	c.T(0).RZ(1, Bound(0.4)).CZ(0, 1).RZZ(1, 2, Bound(0.7)) // diagonal run
	c.CX(0, 1).X(0)                                         // perm-ish dense block
	c.RY(2, Bound(1.1)).SX(2)
	c.CCX(0, 1, 2) // passthrough
	c.SWAP(0, 2)
	prog := FuseBound(c)
	// Apply op then dagger(op) to a random-ish state via the dense matrix
	// expansion of each op; product must be identity.
	for oi := range prog.Ops {
		op := prog.Ops[oi]
		inv := DaggerFusedOp(op)
		u := fusedOpMatrix(t, op, 3)
		v := fusedOpMatrix(t, inv, 3)
		prod := linalg.MatMul(v, u)
		for r := 0; r < prod.Rows; r++ {
			for cc := 0; cc < prod.Cols; cc++ {
				want := complex(0, 0)
				if r == cc {
					want = 1
				}
				if cmplx.Abs(prod.At(r, cc)-want) > 1e-12 {
					t.Fatalf("op %d kind %d: dagger product not identity at (%d,%d): %g", oi, op.Kind, r, cc, prod.At(r, cc))
				}
			}
		}
	}
}

// fusedOpMatrix expands a fused op into the dense n-qubit matrix via
// equivalent gates.
func fusedOpMatrix(t *testing.T, op FusedOp, n int) *linalg.Matrix {
	t.Helper()
	qs := make([]int, n)
	for i := range qs {
		qs[i] = n - 1 - i
	}
	asGate := func(g Gate) *linalg.Matrix { return expandGate(g, qs) }
	switch op.Kind {
	case FusedGate:
		return asGate(*op.Gate)
	case FusedDense1Q, FusedDiag1Q, FusedPerm1Q, FusedReal1Q, FusedRXLike:
		return asGate(Gate{Kind: KindUnitary, Qubits: op.Qubits, Matrix: FromMat2(op.M1)})
	case FusedHadamard:
		return asGate(Gate{Kind: KindH, Qubits: op.Qubits})
	case FusedRXPair:
		a := FromMat2([2][2]complex128{
			{complex(op.RXA[0], 0), complex(0, op.RXA[1])},
			{complex(0, op.RXA[2]), complex(op.RXA[3], 0)}})
		b := FromMat2([2][2]complex128{
			{complex(op.RXB[0], 0), complex(0, op.RXB[1])},
			{complex(0, op.RXB[2]), complex(op.RXB[3], 0)}})
		ma := asGate(Gate{Kind: KindUnitary, Qubits: op.Qubits[:1], Matrix: a})
		mb := asGate(Gate{Kind: KindUnitary, Qubits: op.Qubits[1:], Matrix: b})
		return linalg.MatMul(ma, mb)
	case FusedDense2Q, FusedPerm2Q:
		m := op.M
		if op.Kind == FusedPerm2Q {
			m = linalg.New(4, 4)
			for r := 0; r < 4; r++ {
				m.Set(r, int(op.Perm[r]), op.Phase[r])
			}
		}
		return asGate(Gate{Kind: KindUnitary, Qubits: op.Qubits, Matrix: m})
	case FusedDenseKQ:
		return asGate(Gate{Kind: KindUnitary, Qubits: op.Qubits, Matrix: op.M})
	case FusedDiagonal:
		out := linalg.Identity(1 << n)
		for _, t1 := range op.D1 {
			for i := 0; i < 1<<n; i++ {
				out.Set(i, i, out.At(i, i)*t1.D[(i>>t1.Q)&1])
			}
		}
		for _, t2 := range op.D2 {
			for i := 0; i < 1<<n; i++ {
				out.Set(i, i, out.At(i, i)*t2.D[((i>>t2.A)&1)<<1|((i>>t2.B)&1)])
			}
		}
		return out
	}
	t.Fatalf("unhandled fused op kind %d", op.Kind)
	return nil
}

func TestPlanFusionGradKeepsParametricBoundaries(t *testing.T) {
	// QAOA-shaped ansatz: symbolic cost layer + symbolic mixers between
	// bound Clifford structure.
	c := New(4)
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	c.RZZ(0, 1, Sym("g", 2)).RZZ(1, 2, Sym("g", 2)).RZZ(2, 3, Sym("g", 2))
	for q := 0; q < 4; q++ {
		c.RX(q, Sym("b", 2))
	}
	c.MeasureAll()
	plan := PlanFusionGrad(c)
	if got := plan.NumParamGates(); got != 7 {
		t.Fatalf("parametric gate count %d, want 7", got)
	}
	if got := plan.Params(); len(got) != 2 || got[0] != "b" || got[1] != "g" {
		t.Fatalf("params %v, want [b g]", got)
	}
	prog, err := plan.Bind(map[string]float64{"g": 0.3, "b": 0.8})
	if err != nil {
		t.Fatal(err)
	}
	nGen := 0
	for _, op := range prog.Ops {
		if op.Gen != nil {
			nGen++
			if op.Op.Kind != FusedGate {
				t.Fatalf("parametric boundary compiled to fused kind %d", op.Op.Kind)
			}
		}
	}
	if nGen != 7 {
		t.Fatalf("generator annotations %d, want 7", nGen)
	}
	if _, err := plan.Bind(map[string]float64{"g": 0.3}); err == nil {
		t.Fatal("expected unbound-parameter error")
	}
}

func TestPlanFusionGradStillFusesBoundRuns(t *testing.T) {
	// A run of bound gates between two parametric boundaries must still
	// fuse: the plan should hold far fewer ops than gates.
	c := New(2)
	c.RX(0, Sym("a", 1))
	for i := 0; i < 10; i++ {
		c.H(0).SX(0).H(1).RY(1, Bound(0.3)).CX(0, 1)
	}
	c.RY(1, Sym("b", 1))
	plan := PlanFusionGrad(c)
	prog, err := plan.Bind(map[string]float64{"a": 0.1, "b": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Ops) > 10 {
		t.Fatalf("bound run did not fuse: %d ops for 52 gates", len(prog.Ops))
	}
}

func TestShiftPlanStructure(t *testing.T) {
	c := New(2)
	c.RX(0, Sym("a", 2))
	c.CRZ(0, 1, Sym("a", 1)) // shared parameter, 4-term rule
	c.RY(1, Sym("b", 1))
	plan, err := PlanParamShift(c)
	if err != nil {
		t.Fatal(err)
	}
	// 1 base + RX(2) + CRZ(4) + RY(2) shifted evaluations.
	if got := plan.NumBindings(); got != 9 {
		t.Fatalf("bindings %d, want 9", got)
	}
	bindings := plan.Bindings(map[string]float64{"a": 0.5, "b": -0.2})
	if len(bindings) != 9 {
		t.Fatalf("expanded %d bindings, want 9", len(bindings))
	}
	// The re-parameterized circuit must be fully bindable by every element.
	for i, b := range bindings {
		if !plan.Circuit.Bind(b).IsBound() {
			t.Fatalf("binding %d leaves parameters unbound", i)
		}
	}
	if _, _, err := plan.Assemble(make([]float64, 3)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestShiftPlanFreshNamesAvoidCollisions(t *testing.T) {
	c := New(1)
	c.RX(0, Sym("gs0", 1)) // user parameter squatting on the fresh prefix
	plan, err := PlanParamShift(c)
	if err != nil {
		t.Fatal(err)
	}
	names := plan.Circuit.ParamNames()
	if len(names) != 1 || names[0] == "gs0" {
		t.Fatalf("fresh name collided: %v", names)
	}
}

func TestShiftRuleFourTermConstants(t *testing.T) {
	rule, ok := ShiftRule(KindCRX)
	if !ok || len(rule) != 2 {
		t.Fatalf("CRX rule %v", rule)
	}
	s2 := math.Sqrt2
	if math.Abs(rule[0].Coeff-(s2+1)/(4*s2)) > 1e-15 || math.Abs(rule[1].Coeff+(s2-1)/(4*s2)) > 1e-15 {
		t.Fatalf("CRX four-term coefficients wrong: %+v", rule)
	}
}
