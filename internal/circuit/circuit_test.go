package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderAndCounts(t *testing.T) {
	c := New(3)
	c.H(0).CX(0, 1).CX(1, 2).RZ(2, Bound(0.5)).MeasureAll()
	if len(c.Gates) != 7 {
		t.Fatalf("gate count %d, want 7", len(c.Gates))
	}
	ops := c.CountOps()
	if ops["h"] != 1 || ops["cx"] != 2 || ops["rz"] != 1 || ops["measure"] != 3 {
		t.Fatalf("unexpected op histogram %v", ops)
	}
	if c.NumTwoQubitGates() != 2 {
		t.Fatalf("two-qubit count %d", c.NumTwoQubitGates())
	}
}

func TestAppendValidation(t *testing.T) {
	c := New(2)
	mustPanic(t, func() { c.H(2) })
	mustPanic(t, func() { c.CX(0, 0) })
	mustPanic(t, func() { c.Append(Gate{Kind: KindRZ, Qubits: []int{0}}) }) // missing param
	mustPanic(t, func() { New(0) })
}

func TestDepth(t *testing.T) {
	c := New(3)
	c.H(0).H(1).H(2) // depth 1: parallel
	if d := c.Depth(); d != 1 {
		t.Fatalf("depth %d, want 1", d)
	}
	c.CX(0, 1) // depth 2
	c.CX(1, 2) // depth 3
	if d := c.Depth(); d != 3 {
		t.Fatalf("depth %d, want 3", d)
	}
	c.Barrier()
	c.X(0) // barrier forces level 4 on all
	if d := c.Depth(); d != 4 {
		t.Fatalf("depth with barrier %d, want 4", d)
	}
}

func TestParamBinding(t *testing.T) {
	c := New(1)
	c.RX(0, Sym("theta", 2)) // angle = 2θ
	if c.IsBound() {
		t.Fatal("circuit should be unbound")
	}
	if got := c.ParamNames(); len(got) != 1 || got[0] != "theta" {
		t.Fatalf("param names %v", got)
	}
	b := c.Bind(map[string]float64{"theta": 0.25})
	if !b.IsBound() {
		t.Fatal("bound circuit still unbound")
	}
	if a := b.Gates[0].Angle(); math.Abs(a-0.5) > 1e-15 {
		t.Fatalf("bound angle %g, want 0.5", a)
	}
	// Original is untouched.
	if c.IsBound() {
		t.Fatal("Bind mutated the original circuit")
	}
	mustPanic(t, func() { c.Gates[0].Params[0].Value(nil) })
}

func TestInverseStructure(t *testing.T) {
	c := New(2)
	c.H(0).S(0).T(1).RX(1, Bound(0.3)).CX(0, 1)
	inv := c.Inverse()
	if len(inv.Gates) != len(c.Gates) {
		t.Fatalf("inverse gate count %d", len(inv.Gates))
	}
	if inv.Gates[0].Kind != KindCX {
		t.Fatalf("inverse should start with cx, got %s", inv.Gates[0].Kind.Name())
	}
	if inv.Gates[1].Kind != KindRX || math.Abs(inv.Gates[1].Angle()+0.3) > 1e-15 {
		t.Fatalf("rx not negated: %v", inv.Gates[1])
	}
	if inv.Gates[2].Kind != KindTdg || inv.Gates[3].Kind != KindSdg {
		t.Fatalf("s/t not daggered")
	}
	mustPanic(t, func() { New(1).Measure(0, 0).Inverse() })
}

func TestIsCliffordAndInteractionDistance(t *testing.T) {
	c := New(4)
	c.H(0).CX(0, 1).CZ(1, 2).S(3)
	if !c.IsClifford() {
		t.Fatal("expected Clifford")
	}
	c.T(0)
	if c.IsClifford() {
		t.Fatal("T gate should break Clifford")
	}
	if d := c.InteractionDistance(); d != 1 {
		t.Fatalf("interaction distance %d, want 1", d)
	}
	c.CX(0, 3)
	if d := c.InteractionDistance(); d != 3 {
		t.Fatalf("interaction distance %d, want 3", d)
	}
}

func TestQASMRoundTripStructural(t *testing.T) {
	c := New(3)
	c.H(0).X(1).Y(2).Z(0).S(1).Sdg(2).T(0).Tdg(1).
		RX(0, Bound(0.1)).RY(1, Bound(-0.2)).RZ(2, Bound(math.Pi/3)).
		P(0, Bound(0.7)).CX(0, 1).CY(1, 2).CZ(0, 2).
		CRX(0, 1, Bound(0.3)).CRY(1, 2, Bound(0.4)).CRZ(0, 2, Bound(0.5)).
		CP(0, 1, Bound(0.6)).SWAP(1, 2).RZZ(0, 1, Bound(0.8)).RXX(1, 2, Bound(0.9)).
		CCX(0, 1, 2).CSWAP(0, 1, 2).Barrier().MeasureAll()
	src, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseQASM(src)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, src)
	}
	if back.NQubits != c.NQubits || len(back.Gates) != len(c.Gates) {
		t.Fatalf("round trip shape mismatch: %d gates vs %d", len(back.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		a, b := c.Gates[i], back.Gates[i]
		if a.Kind != b.Kind {
			t.Fatalf("gate %d kind %s vs %s", i, a.Kind.Name(), b.Kind.Name())
		}
		for j := range a.Qubits {
			if a.Qubits[j] != b.Qubits[j] {
				t.Fatalf("gate %d qubits %v vs %v", i, a.Qubits, b.Qubits)
			}
		}
		for j := range a.Params {
			if math.Abs(a.Params[j].Const-b.Params[j].Const) > 1e-15 {
				t.Fatalf("gate %d params %v vs %v", i, a.Params, b.Params)
			}
		}
	}
}

func TestQASMParseExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
rx(pi/2) q[0];
rz(-pi/4) q[1];
ry(2*pi/3 + 0.5) q[0];
u1(1e-3) q[1];
cx q[0],q[1];
measure q -> c;
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 7 {
		t.Fatalf("gate count %d, want 7 (incl. 2 measures)", len(c.Gates))
	}
	if a := c.Gates[0].Angle(); math.Abs(a-math.Pi/2) > 1e-12 {
		t.Fatalf("rx angle %g", a)
	}
	if a := c.Gates[1].Angle(); math.Abs(a+math.Pi/4) > 1e-12 {
		t.Fatalf("rz angle %g", a)
	}
	if a := c.Gates[2].Angle(); math.Abs(a-(2*math.Pi/3+0.5)) > 1e-12 {
		t.Fatalf("ry angle %g", a)
	}
}

func TestQASMErrors(t *testing.T) {
	cases := []string{
		"OPENQASM 3.0;\nqreg q[2];",
		"qreg q[0];",
		"qreg q[2];\nfoo q[0];",
		"qreg q[2];\nrx q[0];", // missing param
		"h q[0];",              // no qreg at all
	}
	for _, src := range cases {
		if _, err := ParseQASM(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestTranspileToBasic(t *testing.T) {
	c := New(3)
	c.SWAP(0, 1).RZZ(1, 2, Bound(0.4)).RXX(0, 2, Bound(0.2)).CCX(0, 1, 2).CSWAP(0, 1, 2).SX(1)
	out := Transpile(c, BasicGateSet())
	for _, g := range out.Gates {
		if !BasicGateSet()[g.Kind] {
			t.Fatalf("transpiled circuit still contains %s", g.Kind.Name())
		}
	}
	if len(out.Gates) <= len(c.Gates) {
		t.Fatalf("expected expansion, got %d gates", len(out.Gates))
	}
}

func TestTranspilePreservesSymbolicParams(t *testing.T) {
	c := New(2)
	c.RZZ(0, 1, Sym("gamma", 2))
	out := Transpile(c, BasicGateSet())
	names := out.ParamNames()
	if len(names) != 1 || names[0] != "gamma" {
		t.Fatalf("symbolic params lost: %v", names)
	}
	b := out.Bind(map[string]float64{"gamma": 0.5})
	if !b.IsBound() {
		t.Fatal("binding transpiled circuit failed")
	}
}

func TestStripMeasurements(t *testing.T) {
	c := New(2)
	c.H(0).Measure(0, 0).Barrier().CX(0, 1).Measure(1, 1)
	s := c.StripMeasurements()
	if len(s.Gates) != 2 {
		t.Fatalf("stripped gate count %d, want 2", len(s.Gates))
	}
	if !c.HasMeasurements() || s.HasMeasurements() {
		t.Fatal("measurement detection wrong")
	}
}

func TestCopyIsDeep(t *testing.T) {
	c := New(2)
	c.RX(0, Bound(1)).CX(0, 1)
	cp := c.Copy()
	cp.Gates[0].Params[0] = Bound(9)
	cp.Gates[1].Qubits[0] = 1
	cp.Gates[1].Qubits[1] = 0
	if c.Gates[0].Angle() != 1 || c.Gates[1].Qubits[0] != 0 {
		t.Fatal("Copy shares underlying storage")
	}
}

func TestQuickQASMRoundTripRandom(t *testing.T) {
	// Property: any random circuit over the QASM-expressible gate set round
	// trips through serialize+parse preserving structure.
	kinds := []Kind{KindH, KindX, KindY, KindZ, KindS, KindSdg, KindT, KindTdg,
		KindRX, KindRY, KindRZ, KindP, KindCX, KindCY, KindCZ, KindCRZ, KindCP,
		KindSWAP, KindRZZ, KindCCX}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		c := New(n)
		for i := 0; i < 20; i++ {
			k := kinds[rng.Intn(len(kinds))]
			qs := rng.Perm(n)[:max(1, k.NumQubits())]
			g := Gate{Kind: k, Qubits: qs}
			for j := 0; j < k.NumParams(); j++ {
				g.Params = append(g.Params, Bound(rng.NormFloat64()))
			}
			c.Append(g)
		}
		src, err := c.ToQASM()
		if err != nil {
			return false
		}
		back, err := ParseQASM(src)
		if err != nil {
			return false
		}
		if len(back.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			if back.Gates[i].Kind != c.Gates[i].Kind {
				return false
			}
			for j := range c.Gates[i].Params {
				if math.Abs(back.Gates[i].Params[j].Const-c.Gates[i].Params[j].Const) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicQASMRoundTrip(t *testing.T) {
	// A parametric circuit must round-trip through the symbolic wire form
	// with names, coefficients, and offsets intact.
	c := New(3)
	c.H(0)
	c.RX(0, Sym("beta0", 2))
	c.RZZ(0, 1, Sym("gamma0", -1.5))
	c.RY(2, Param{Name: "t0", Coeff: 0.5, Const: 0.25})
	c.P(1, Sym("phi", 1))
	c.CP(1, 2, Sym("phi", 3))
	c.RZ(2, Bound(0.75))
	c.MeasureAll()
	qasm, err := c.ToSymbolicQASM()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseQASM(qasm)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, qasm)
	}
	wantNames := []string{"beta0", "gamma0", "phi", "t0"}
	names := back.ParamNames()
	if len(names) != len(wantNames) {
		t.Fatalf("params %v, want %v", names, wantNames)
	}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Fatalf("params %v, want %v", names, wantNames)
		}
	}
	// Binding both circuits identically must give identical bound QASM.
	binding := map[string]float64{"beta0": 0.3, "gamma0": 0.7, "t0": -1.2, "phi": 2.1}
	origQASM, err := c.Bind(binding).ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	backQASM, err := back.Bind(binding).ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	if origQASM != backQASM {
		t.Fatalf("bound round trip mismatch:\n%s\nvs\n%s", origQASM, backQASM)
	}
}

func TestSymbolicQASMRejectsPiName(t *testing.T) {
	// "pi" is the QASM constant: a parameter with that name would parse
	// back as a bound number and silently ignore its bindings.
	c := New(1)
	c.RX(0, Sym("pi", 2))
	if _, err := c.ToSymbolicQASM(); err == nil {
		t.Fatal(`parameter named "pi" serialized symbolically`)
	}
	// Names outside the identifier grammar would reparse as a different
	// expression (e.g. "b+2" becomes parameter "b" plus a constant).
	c2 := New(1)
	c2.RX(0, Sym("b+2", 1))
	if _, err := c2.ToSymbolicQASM(); err == nil {
		t.Fatal(`parameter named "b+2" serialized symbolically`)
	}
}

func TestToQASMRejectsUnbound(t *testing.T) {
	c := New(1)
	c.RX(0, Sym("a", 1))
	if _, err := c.ToQASM(); err == nil {
		t.Fatal("unbound circuit serialized by ToQASM")
	}
}

func TestBindLeavesUnknownSymbolic(t *testing.T) {
	// Partial bindings must stay detectable, not panic.
	c := New(1)
	c.RX(0, Sym("a", 1)).RY(0, Sym("b", 1))
	half := c.Bind(map[string]float64{"a": 0.5})
	if half.IsBound() {
		t.Fatal("partial binding reported bound")
	}
	if names := half.ParamNames(); len(names) != 1 || names[0] != "b" {
		t.Fatalf("leftover params %v", names)
	}
}

func TestMatrix2QUnitarity(t *testing.T) {
	for _, k := range []Kind{KindCX, KindCY, KindCZ, KindSWAP, KindCRX, KindCRY, KindCRZ, KindCP, KindRZZ, KindRXX} {
		m := Matrix2Q(k, 0.37)
		if !m.IsUnitary(1e-12) {
			t.Fatalf("%s matrix not unitary", k.Name())
		}
	}
}

func TestMatrix1QUnitarity(t *testing.T) {
	for _, k := range []Kind{KindI, KindH, KindX, KindY, KindZ, KindS, KindSdg, KindT, KindTdg, KindSX, KindRX, KindRY, KindRZ, KindP} {
		m := Matrix1Q(k, 0.77)
		// Convert to linalg matrix for the unitarity check.
		mm := FromMat2(m)
		if !mm.IsUnitary(1e-12) {
			t.Fatalf("%s matrix not unitary", k.Name())
		}
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestDump(t *testing.T) {
	c := New(2)
	c.H(0).CRZ(0, 1, Sym("g", 1))
	s := c.String()
	if !strings.Contains(s, "crz") || !strings.Contains(s, "g") {
		t.Fatalf("String() output missing content:\n%s", s)
	}
}
