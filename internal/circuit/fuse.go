package circuit

import (
	"fmt"
	"sort"

	"qfw/internal/linalg"
)

// Gate fusion (the Aer "fusion" optimization): adjacent gates whose combined
// support stays small are collapsed into one dense unitary, and runs of
// diagonal gates (RZ/P/Z/CZ/CP/CRZ/RZZ — the QAOA/TFIM cost layers) are
// hoisted into a single combined diagonal kernel. The pass is split in two:
//
//   - PlanFusion inspects only the circuit *structure* (kinds and qubits,
//     never parameter values), so one plan serves every binding of a
//     parametric ansatz — the spec-hash ParseCache computes it once per
//     batch.
//   - FusionPlan.Compile takes a bound circuit with the same structure and
//     produces the numeric FusedProgram the state-vector engine executes.
//
// Fusion is exact: fused and unfused execution agree amplitude-for-amplitude
// up to floating-point rounding (see the randomized equivalence tests).

// FusedOpKind selects the kernel a fused operation runs on.
type FusedOpKind int

// Fused operation kinds, ordered roughly by kernel cost.
const (
	FusedGate     FusedOpKind = iota // passthrough: dispatch the original gate
	FusedDense1Q                     // generic 2x2 on Qubits[0]
	FusedDiag1Q                      // diagonal 2x2 (branch-free phase kernel)
	FusedPerm1Q                      // antidiagonal 2x2 (phased pair swap)
	FusedHadamard                    // exact Hadamard (add/sub kernel)
	FusedReal1Q                      // all-real 2x2 (RY-form, half the flops)
	FusedRXLike                      // real diagonal + imaginary offdiagonal 2x2 (RX-form)
	FusedRXPair                      // two independent RX-form rotations in one sweep
	FusedDense2Q                     // generic 4x4 on (Qubits[0] hi, Qubits[1] lo)
	FusedPerm2Q                      // phased permutation 4x4 (no matmul)
	FusedDenseKQ                     // dense 2^k unitary on Qubits
	FusedDiagonal                    // combined diagonal run (D1/D2 terms, one pass)
)

// DiagTerm1 is one single-qubit diagonal factor of a combined diagonal op:
// amplitudes with qubit Q equal to b are multiplied by D[b].
type DiagTerm1 struct {
	Q int
	D [2]complex128
}

// DiagTerm2 is one two-qubit diagonal factor: amplitudes are multiplied by
// D[a<<1|b] where a, b are the values of qubits A and B.
type DiagTerm2 struct {
	A, B int
	D    [4]complex128
}

// FusedOp is one executable operation of a fused program. Only the fields
// relevant to Kind are populated.
type FusedOp struct {
	Kind   FusedOpKind
	Qubits []int // dense ops: most-significant qubit first
	M1     [2][2]complex128
	M      *linalg.Matrix
	Perm   [4]uint8
	Phase  [4]complex128
	RXA    [4]float64 // RX-pair: (c0, v0, v1, c1) of the rotation on Qubits[0]
	RXB    [4]float64 // RX-pair: same for Qubits[1]
	D1     []DiagTerm1
	D2     []DiagTerm2
	Gate   *Gate
}

// FusedProgram is a compiled, bound, executable fused circuit.
type FusedProgram struct {
	NQubits int
	Ops     []FusedOp
}

// segKind classifies a planned segment before numeric compilation.
type segKind int

const (
	segDense segKind = iota
	segDiag
	segPass
)

type fusionSeg struct {
	kind   segKind
	qubits []int // dense segments: ascending qubit order
	gates  []int // indices into the source circuit's gate list, ascending
}

// FusionPlan is the binding-independent fusion structure of a circuit: which
// gates merge into which dense blocks, diagonal runs, and passthroughs.
type FusionPlan struct {
	nqubits int
	ngates  int
	maxK    int
	segs    []fusionSeg
}

// PlanFusion builds a fusion plan merging blocks of up to two qubits — the
// default used by every simulator backend.
func PlanFusion(c *Circuit) *FusionPlan { return PlanFusionK(c, 2) }

// PlanFusionK builds a fusion plan merging blocks of up to maxK qubits
// (clamped to [1, 6]; dense 2^k kernels beyond that lose to unfused
// application).
func PlanFusionK(c *Circuit, maxK int) *FusionPlan {
	return planFusion(c, maxK, nil)
}

// planFusion is the shared planner behind PlanFusionK and PlanFusionGrad.
// A non-nil boundary predicate marks gates that must survive as standalone
// passthrough operations: they neither join dense blocks nor diagonal runs,
// and they flush any open structure they touch — the mechanism the adjoint
// differentiation engine uses to keep parametric gates addressable while
// every non-parametric stretch between them still fuses.
func planFusion(c *Circuit, maxK int, boundary func(g *Gate) bool) *FusionPlan {
	if maxK < 1 {
		maxK = 1
	}
	if maxK > 6 {
		maxK = 6
	}
	p := &FusionPlan{nqubits: c.NQubits, ngates: len(c.Gates), maxK: maxK}

	type block struct {
		qubits []int
		gates  []int
	}
	var open []*block        // creation order
	last := map[int]*block{} // qubit -> owning open block
	closeBlock := func(b *block) {
		for i, ob := range open {
			if ob == b {
				open = append(open[:i], open[i+1:]...)
				break
			}
		}
		for _, q := range b.qubits {
			if last[q] == b {
				delete(last, q)
			}
		}
		p.segs = append(p.segs, fusionSeg{kind: segDense, qubits: b.qubits, gates: b.gates})
	}
	flushTouching := func(qs []int) {
		seen := map[*block]bool{}
		for _, q := range qs {
			if b := last[q]; b != nil {
				seen[b] = true
			}
		}
		// Close in creation order for a deterministic stream.
		var victims []*block
		for _, b := range open {
			if seen[b] {
				victims = append(victims, b)
			}
		}
		for _, b := range victims {
			closeBlock(b)
		}
	}
	flushAll := func() {
		for len(open) > 0 {
			closeBlock(open[0])
		}
	}

	// The open diagonal run: diagonal gates all commute, so a whole cost
	// layer (QAOA's RZZ+RZ sweep, TFIM's trotter coupling layer) accumulates
	// into one run regardless of the dense-block traffic on other qubits.
	// Invariant: the run's support is disjoint from every open dense block —
	// a diagonal gate flushes the dense blocks it touches before joining the
	// run, and a dense gate touching the run's support flushes the run.
	var runGates []int
	runQubits := map[int]bool{}
	flushRun := func() {
		if len(runGates) == 0 {
			return
		}
		p.segs = append(p.segs, fusionSeg{kind: segDiag, gates: runGates})
		runGates = nil
		runQubits = map[int]bool{}
	}
	runTouches := func(qs []int) bool {
		for _, q := range qs {
			if runQubits[q] {
				return true
			}
		}
		return false
	}

	for gi, g := range c.Gates {
		switch g.Kind {
		case KindI:
			continue // identity: no kernel, no fusion barrier
		case KindBarrier:
			if len(g.Qubits) == 0 {
				flushAll()
				flushRun()
			} else {
				flushTouching(g.Qubits)
				if runTouches(g.Qubits) {
					flushRun()
				}
			}
			continue // no kernel to run
		case KindMeasure, KindReset:
			flushTouching(g.Qubits)
			if runTouches(g.Qubits) {
				flushRun()
			}
			p.segs = append(p.segs, fusionSeg{kind: segPass, gates: []int{gi}})
			continue
		}
		if boundary != nil && boundary(&c.Gates[gi]) {
			flushTouching(g.Qubits)
			if runTouches(g.Qubits) {
				flushRun()
			}
			p.segs = append(p.segs, fusionSeg{kind: segPass, gates: []int{gi}})
			continue
		}
		if IsDiagonalKind(g.Kind) {
			// All diagonal gates accumulate into the run: even when one sits
			// inside an open dense block's support, the run absorbs it into
			// its precomputed tables for free, while folding it into the
			// block would downgrade a specialized kernel to a generic one.
			flushTouching(g.Qubits)
			for _, q := range g.Qubits {
				runQubits[q] = true
			}
			runGates = append(runGates, gi)
			continue
		}
		// Dense path: a dense gate on the run's support forces the run out
		// first, so the stream order respects non-commuting pairs.
		if runTouches(g.Qubits) {
			flushRun()
		}
		arity := len(g.Qubits)
		if arity > maxK {
			// Too wide to fuse (CCX/CSWAP at maxK=2, large unitaries):
			// run through the specialized unfused kernels.
			flushTouching(g.Qubits)
			p.segs = append(p.segs, fusionSeg{kind: segPass, gates: []int{gi}})
			continue
		}
		// Collect the open blocks this gate touches and the combined support.
		touched := map[*block]bool{}
		union := map[int]bool{}
		for _, q := range g.Qubits {
			union[q] = true
			if b := last[q]; b != nil {
				touched[b] = true
			}
		}
		for b := range touched {
			for _, q := range b.qubits {
				union[q] = true
			}
		}
		if len(union) > maxK {
			flushTouching(g.Qubits)
			touched = map[*block]bool{}
			union = map[int]bool{}
			for _, q := range g.Qubits {
				union[q] = true
			}
		}
		// Merge the touched blocks (disjoint supports commute, so gate order
		// within the merged block is the original program order).
		var dst *block
		for _, b := range open {
			if touched[b] {
				dst = b
				break
			}
		}
		if dst == nil {
			dst = &block{}
			open = append(open, dst)
		}
		for _, b := range open {
			if b != dst && touched[b] {
				dst.gates = append(dst.gates, b.gates...)
			}
		}
		var rest []*block
		for _, b := range open {
			if b == dst || !touched[b] {
				rest = append(rest, b)
			}
		}
		open = rest
		dst.gates = append(dst.gates, gi)
		sort.Ints(dst.gates)
		dst.qubits = dst.qubits[:0]
		for q := range union {
			dst.qubits = append(dst.qubits, q)
		}
		sort.Ints(dst.qubits)
		for _, q := range dst.qubits {
			last[q] = dst
		}
	}
	flushAll()
	flushRun()
	p.hoistDiagonals()
	p.mergeAdjacentDense()
	return p
}

// IsDiagonalKind reports whether the gate kind is diagonal in the
// computational basis for every parameter value.
func IsDiagonalKind(k Kind) bool {
	switch k {
	case KindI, KindZ, KindS, KindSdg, KindT, KindTdg, KindRZ, KindP,
		KindCZ, KindCRZ, KindCP, KindRZZ:
		return true
	}
	return false
}

// hoistDiagonals merges maximal runs of consecutive diagonal segments into
// one combined diagonal op — diagonal gates all commute, so runs separated
// only by a flush barrier still become a single pass over the amplitudes.
func (p *FusionPlan) hoistDiagonals() {
	var out []fusionSeg
	for _, s := range p.segs {
		if s.kind == segDiag && len(out) > 0 && out[len(out)-1].kind == segDiag {
			prev := &out[len(out)-1]
			prev.gates = append(prev.gates, s.gates...)
			continue
		}
		out = append(out, s)
	}
	p.segs = out
}

// mergeAdjacentDense absorbs a neighbouring dense segment into the previous
// one when the combined support does not grow beyond the larger of the two
// (e.g. a 1q rotation following a 2q block on one of its qubits). Adjacent
// segments have nothing between them in the stream, so merging preserves
// program order. Support-growing merges (two disjoint 1q gates into a 4x4)
// are deliberately not taken: on the serial kernels two cheap passes beat
// one generic 4x4 pass.
func (p *FusionPlan) mergeAdjacentDense() {
	var out []fusionSeg
	for _, s := range p.segs {
		if s.kind == segDense && len(out) > 0 {
			prev := &out[len(out)-1]
			if prev.kind == segDense {
				union := map[int]bool{}
				for _, q := range prev.qubits {
					union[q] = true
				}
				for _, q := range s.qubits {
					union[q] = true
				}
				limit := len(prev.qubits)
				if len(s.qubits) > limit {
					limit = len(s.qubits)
				}
				if len(union) <= limit && len(union) <= p.maxK {
					prev.gates = append(prev.gates, s.gates...)
					sort.Ints(prev.gates)
					prev.qubits = prev.qubits[:0]
					for q := range union {
						prev.qubits = append(prev.qubits, q)
					}
					sort.Ints(prev.qubits)
					continue
				}
			}
		}
		out = append(out, s)
	}
	p.segs = out
}

// NumOps returns the number of fused operations the plan compiles to.
func (p *FusionPlan) NumOps() int { return len(p.segs) }

// SegmentKind classifies an exported fusion segment.
type SegmentKind int

// Exported segment kinds.
const (
	SegDense SegmentKind = iota // gates merge into one dense unitary
	SegDiag                     // commuting diagonal run
	SegPass                     // standalone passthrough gate
)

// SegmentInfo is the exported structural view of one planned fusion segment:
// which source gates it covers and which qubits it touches, with no numeric
// content. Engines that cannot execute FusedPrograms directly (the MPS
// compiler) build their own schedules from this structure, so fusion
// planning stays a single shared pass.
type SegmentInfo struct {
	Kind   SegmentKind
	Qubits []int // merged support, ascending
	Gates  []int // indices into the source circuit's gate list, ascending
}

// Segments returns the plan's segment structure in stream order. The result
// depends only on circuit structure (like the plan itself), so one segment
// list serves every binding of a parametric ansatz.
func (p *FusionPlan) Segments(c *Circuit) []SegmentInfo {
	if c != nil && (c.NQubits != p.nqubits || len(c.Gates) != p.ngates) {
		panic(fmt.Sprintf("circuit: fusion plan built for %d gates on %d qubits, got %d gates on %d",
			p.ngates, p.nqubits, len(c.Gates), c.NQubits))
	}
	out := make([]SegmentInfo, len(p.segs))
	for i, s := range p.segs {
		info := SegmentInfo{Gates: append([]int(nil), s.gates...)}
		switch s.kind {
		case segDense:
			info.Kind = SegDense
			info.Qubits = append([]int(nil), s.qubits...)
		case segDiag:
			info.Kind = SegDiag
			if c != nil {
				support := map[int]bool{}
				for _, gi := range s.gates {
					for _, q := range c.Gates[gi].Qubits {
						support[q] = true
					}
				}
				for q := range support {
					info.Qubits = append(info.Qubits, q)
				}
				sort.Ints(info.Qubits)
			}
		case segPass:
			info.Kind = SegPass
			if c != nil {
				info.Qubits = append([]int(nil), c.Gates[s.gates[0]].Qubits...)
			}
		}
		out[i] = info
	}
	return out
}

// SegmentUnitary multiplies the bound gates of a dense segment into one
// unitary in the 2^k basis of the qubit list qs (most significant first).
// It is the numeric half of a SegDense segment, shared by FusionPlan.Compile
// and the MPS schedule compiler.
func SegmentUnitary(c *Circuit, gates []int, qs []int) *linalg.Matrix {
	dim := 1 << uint(len(qs))
	u := linalg.Identity(dim)
	for _, gi := range gates {
		g := c.Gates[gi]
		if g.Kind == KindI {
			continue
		}
		u = linalg.MatMul(expandGate(g, qs), u)
	}
	return u
}

// DiagLayout returns the coalesced per-qubit and per-pair supports of a
// diagonal run, in exactly the order SegmentDiagonal emits its factor
// tables (pairs normalized to A > B). The layout depends only on gate kinds
// and qubits, so a binding-independent schedule can allocate its slots from
// an unbound circuit.
func DiagLayout(c *Circuit, gates []int) (singles []int, pairs [][2]int) {
	idx1 := map[int]bool{}
	idx2 := map[[2]int]bool{}
	for _, gi := range gates {
		g := c.Gates[gi]
		switch g.Kind {
		case KindI:
		case KindZ, KindS, KindSdg, KindT, KindTdg, KindRZ, KindP:
			if !idx1[g.Qubits[0]] {
				idx1[g.Qubits[0]] = true
				singles = append(singles, g.Qubits[0])
			}
		case KindCZ, KindCRZ, KindCP, KindRZZ:
			a, b := g.Qubits[0], g.Qubits[1]
			if a < b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if !idx2[key] {
				idx2[key] = true
				pairs = append(pairs, key)
			}
		default:
			panic("circuit: DiagLayout on non-diagonal gate " + g.Kind.Name())
		}
	}
	return singles, pairs
}

// SegmentDiagonal folds the bound diagonal gates of a run into coalesced
// factor tables, in DiagLayout order (pairs normalized to A > B, D indexed
// by the higher qubit as the most significant bit).
func SegmentDiagonal(c *Circuit, gates []int) ([]DiagTerm1, []DiagTerm2) {
	op := compileDiagSeg(c, fusionSeg{kind: segDiag, gates: gates})
	return op.D1, op.D2
}

// Compile binds the plan against a fully bound circuit with the same
// structure (same gate kinds and qubits in the same order — any Bind of the
// circuit the plan was built from) and returns the executable program.
func (p *FusionPlan) Compile(c *Circuit) *FusedProgram {
	prog := p.CompileSeq(c)
	pairRXOps(prog)
	return prog
}

// CompileSeq compiles like Compile but keeps exactly one operation per
// planned segment: no cross-segment RX pairing, so op i of the program
// corresponds to segment i of the plan. This is the form the cache-blocked
// staged executor runs — its tile schedule (PlanTileStages) addresses ops by
// segment index, and pairing across a stage boundary would fuse two ops that
// execute under different layouts.
func (p *FusionPlan) CompileSeq(c *Circuit) *FusedProgram {
	if c.NQubits != p.nqubits || len(c.Gates) != p.ngates {
		panic(fmt.Sprintf("circuit: fusion plan built for %d gates on %d qubits, got %d gates on %d",
			p.ngates, p.nqubits, len(c.Gates), c.NQubits))
	}
	prog := &FusedProgram{NQubits: c.NQubits, Ops: make([]FusedOp, 0, len(p.segs))}
	for _, seg := range p.segs {
		switch seg.kind {
		case segPass:
			g := c.Gates[seg.gates[0]]
			prog.Ops = append(prog.Ops, FusedOp{Kind: FusedGate, Gate: &g})
		case segDiag:
			prog.Ops = append(prog.Ops, compileDiagSeg(c, seg))
		case segDense:
			prog.Ops = append(prog.Ops, compileDenseSeg(c, seg))
		}
	}
	return prog
}

// rxParams extracts the (c0, v0, v1, c1) parameters of an RX-form matrix.
func rxParams(m [2][2]complex128) [4]float64 {
	return [4]float64{real(m[0][0]), imag(m[0][1]), imag(m[1][0]), real(m[1][1])}
}

// pairRXOps merges adjacent RX-form ops on distinct qubits (the mixer layers
// of QAOA/TFIM) into one two-stage quad sweep — the same flops in half the
// memory passes. Adjacent ops have nothing between them in the stream, and
// rotations on distinct qubits commute, so the merge is order-preserving.
func pairRXOps(prog *FusedProgram) {
	out := prog.Ops[:0]
	for i := 0; i < len(prog.Ops); i++ {
		op := prog.Ops[i]
		if op.Kind == FusedRXLike && i+1 < len(prog.Ops) {
			next := &prog.Ops[i+1]
			if next.Kind == FusedRXLike && next.Qubits[0] != op.Qubits[0] {
				out = append(out, FusedOp{
					Kind:   FusedRXPair,
					Qubits: []int{op.Qubits[0], next.Qubits[0]},
					RXA:    rxParams(op.M1),
					RXB:    rxParams(next.M1),
				})
				i++
				continue
			}
		}
		out = append(out, op)
	}
	prog.Ops = out
}

// FuseBound is the convenience path for one-shot bound circuits:
// PlanFusion + Compile.
func FuseBound(c *Circuit) *FusedProgram { return PlanFusion(c).Compile(c) }

// diagFactors returns the diagonal factor table of a bound diagonal gate.
func diagFactors(g Gate) (one *DiagTerm1, two *DiagTerm2) {
	var theta float64
	if g.Kind.NumParams() == 1 {
		theta = g.Angle()
	}
	switch g.Kind {
	case KindZ, KindS, KindSdg, KindT, KindTdg, KindRZ, KindP:
		m := Matrix1Q(g.Kind, theta)
		return &DiagTerm1{Q: g.Qubits[0], D: [2]complex128{m[0][0], m[1][1]}}, nil
	case KindCZ, KindCRZ, KindCP, KindRZZ:
		m := Matrix2Q(g.Kind, theta)
		return nil, &DiagTerm2{
			A: g.Qubits[0], B: g.Qubits[1],
			D: [4]complex128{m.At(0, 0), m.At(1, 1), m.At(2, 2), m.At(3, 3)},
		}
	}
	panic("circuit: diagFactors on non-diagonal gate " + g.Kind.Name())
}

// compileDiagSeg folds every diagonal gate of the run into per-qubit and
// per-pair factor tables, coalescing repeated supports.
func compileDiagSeg(c *Circuit, seg fusionSeg) FusedOp {
	op := FusedOp{Kind: FusedDiagonal}
	idx1 := map[int]int{}
	idx2 := map[[2]int]int{}
	for _, gi := range seg.gates {
		g := c.Gates[gi]
		if g.Kind == KindI {
			continue
		}
		t1, t2 := diagFactors(g)
		if t1 != nil {
			if i, ok := idx1[t1.Q]; ok {
				op.D1[i].D[0] *= t1.D[0]
				op.D1[i].D[1] *= t1.D[1]
			} else {
				idx1[t1.Q] = len(op.D1)
				op.D1 = append(op.D1, *t1)
			}
			continue
		}
		// Normalize pair orientation to A > B.
		if t2.A < t2.B {
			t2.A, t2.B = t2.B, t2.A
			t2.D[1], t2.D[2] = t2.D[2], t2.D[1]
		}
		key := [2]int{t2.A, t2.B}
		if i, ok := idx2[key]; ok {
			for v := 0; v < 4; v++ {
				op.D2[i].D[v] *= t2.D[v]
			}
		} else {
			idx2[key] = len(op.D2)
			op.D2 = append(op.D2, *t2)
		}
	}
	return op
}

// boundMatrix returns the dense matrix of a bound gate in the basis with
// g.Qubits[0] as the most significant bit.
func boundMatrix(g Gate) *linalg.Matrix {
	var theta float64
	if g.Kind.NumParams() == 1 {
		theta = g.Angle()
	}
	switch {
	case g.Kind == KindUnitary:
		return g.Matrix
	case g.Kind == KindCCX:
		m := linalg.Identity(8)
		m.Set(6, 6, 0)
		m.Set(7, 7, 0)
		m.Set(6, 7, 1)
		m.Set(7, 6, 1)
		return m
	case g.Kind == KindCSWAP:
		m := linalg.Identity(8)
		m.Set(5, 5, 0)
		m.Set(6, 6, 0)
		m.Set(5, 6, 1)
		m.Set(6, 5, 1)
		return m
	case g.Kind.NumQubits() == 2:
		return Matrix2Q(g.Kind, theta)
	case g.Kind.NumQubits() == 1:
		return FromMat2(Matrix1Q(g.Kind, theta))
	}
	panic("circuit: boundMatrix on " + g.Kind.Name())
}

// expandGate lifts a gate matrix into the 2^k basis of the segment qubit
// list qs (most significant first).
func expandGate(g Gate, qs []int) *linalg.Matrix {
	k := len(qs)
	dim := 1 << uint(k)
	bitOf := map[int]int{}
	for t, q := range qs {
		bitOf[q] = k - 1 - t
	}
	m := boundMatrix(g)
	gm := len(g.Qubits)
	var gmask int
	for _, q := range g.Qubits {
		gmask |= 1 << uint(bitOf[q])
	}
	sub := func(full int) int {
		v := 0
		for t, q := range g.Qubits {
			if full&(1<<uint(bitOf[q])) != 0 {
				v |= 1 << uint(gm-1-t)
			}
		}
		return v
	}
	out := linalg.New(dim, dim)
	for r := 0; r < dim; r++ {
		rOut := r &^ gmask
		rSub := sub(r)
		for cs := 0; cs < (1 << uint(gm)); cs++ {
			v := m.At(rSub, cs)
			if v == 0 {
				continue
			}
			// Rebuild the full column index: fixed bits from r, gate bits cs.
			col := rOut
			for t, q := range g.Qubits {
				if cs&(1<<uint(gm-1-t)) != 0 {
					col |= 1 << uint(bitOf[q])
				}
			}
			out.Set(r, col, v)
		}
	}
	return out
}

// compileDenseSeg multiplies the segment's gates into one unitary and picks
// the cheapest kernel that implements it exactly.
func compileDenseSeg(c *Circuit, seg fusionSeg) FusedOp {
	if len(seg.gates) == 1 && len(c.Gates[seg.gates[0]].Qubits) > 1 {
		// A lone multi-qubit gate runs faster through its specialized
		// unfused kernel (compressed-index controlled / swap paths).
		g := c.Gates[seg.gates[0]]
		return FusedOp{Kind: FusedGate, Gate: &g}
	}
	// Segment basis: most significant qubit first.
	qs := make([]int, len(seg.qubits))
	for i, q := range seg.qubits {
		qs[len(qs)-1-i] = q
	}
	return classifyDense(SegmentUnitary(c, seg.gates, qs), qs)
}

// GateMatrix returns the dense matrix of a bound gate in the basis with
// g.Qubits[0] as the most significant bit — the exported form of the
// compiler's internal lowering, used by the staged executor to turn
// passthrough gates into tile-local kernels.
func GateMatrix(g Gate) *linalg.Matrix { return boundMatrix(g) }

// ClassifyUnitary picks the cheapest exact kernel for a dense unitary over
// the qubit list qs (most significant first) — the exported form of the
// fusion compiler's kernel classification. Structure is detected with exact
// zero tests, so a misdetection is impossible: at worst a generic kernel is
// selected.
func ClassifyUnitary(u *linalg.Matrix, qs []int) FusedOp { return classifyDense(u, qs) }

// classifyDense selects the kernel for a fused dense unitary: diagonal and
// (phased) permutation structure is detected with exact zero tests, so a
// misdetection is impossible — at worst a generic kernel runs.
func classifyDense(u *linalg.Matrix, qs []int) FusedOp {
	k := len(qs)
	dim := 1 << uint(k)
	if k == 1 {
		m1 := [2][2]complex128{{u.At(0, 0), u.At(0, 1)}, {u.At(1, 0), u.At(1, 1)}}
		switch {
		case m1[0][1] == 0 && m1[1][0] == 0:
			return FusedOp{Kind: FusedDiag1Q, Qubits: qs, M1: m1}
		case m1[0][0] == 0 && m1[1][1] == 0:
			return FusedOp{Kind: FusedPerm1Q, Qubits: qs, M1: m1}
		}
		if m1 == Matrix1Q(KindH, 0) {
			return FusedOp{Kind: FusedHadamard, Qubits: qs}
		}
		allReal := true
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				if imag(m1[r][c]) != 0 {
					allReal = false
				}
			}
		}
		if allReal {
			return FusedOp{Kind: FusedReal1Q, Qubits: qs, M1: m1}
		}
		if imag(m1[0][0]) == 0 && imag(m1[1][1]) == 0 &&
			real(m1[0][1]) == 0 && real(m1[1][0]) == 0 {
			return FusedOp{Kind: FusedRXLike, Qubits: qs, M1: m1}
		}
		return FusedOp{Kind: FusedDense1Q, Qubits: qs, M1: m1}
	}
	// Phased permutation: exactly one nonzero per row and per column.
	perm := make([]int, dim)
	phase := make([]complex128, dim)
	isPerm := true
	colUsed := make([]bool, dim)
	for r := 0; r < dim && isPerm; r++ {
		nz := -1
		for c := 0; c < dim; c++ {
			if u.At(r, c) != 0 {
				if nz >= 0 {
					isPerm = false
					break
				}
				nz = c
			}
		}
		if nz < 0 || (nz >= 0 && colUsed[nz]) {
			isPerm = false
			break
		}
		colUsed[nz] = true
		perm[r] = nz
		phase[r] = u.At(r, nz)
	}
	if isPerm && k == 2 {
		diag := true
		for r := 0; r < dim; r++ {
			if perm[r] != r {
				diag = false
				break
			}
		}
		if diag {
			// Fused block collapsed to a diagonal (e.g. RZ·RZ across a CZ).
			return FusedOp{Kind: FusedDiagonal, D2: []DiagTerm2{{
				A: qs[0], B: qs[1],
				D: [4]complex128{phase[0], phase[1], phase[2], phase[3]},
			}}}
		}
		op := FusedOp{Kind: FusedPerm2Q, Qubits: qs}
		for r := 0; r < 4; r++ {
			op.Perm[r] = uint8(perm[r])
			op.Phase[r] = phase[r]
		}
		return op
	}
	if k == 2 {
		return FusedOp{Kind: FusedDense2Q, Qubits: qs, M: u}
	}
	return FusedOp{Kind: FusedDenseKQ, Qubits: qs, M: u}
}
