package circuit

import (
	"fmt"
	"math"

	"qfw/internal/linalg"
)

// Differentiation support: every parametric gate kind is annotated with its
// derivative generator (for adjoint-mode differentiation) and its
// parameter-shift rule (for execution-only backends). Both express the same
// fact — U(θ) = exp(θ·G) for a constant anti-Hermitian-up-to-scale G — in
// the two forms the gradient engines consume:
//
//   - adjoint mode applies G directly to a state between a forward and a
//     reverse sweep (one derivative per gate for the price of a few kernel
//     passes), and
//   - parameter-shift re-executes the circuit at shifted angles, which works
//     through any backend that can only run circuits.

// GenOpKind is one elementary factor of a derivative generator.
type GenOpKind int

// Generator factors. GenP1 is the |1><1| projector — the generator of phase
// gates and the control factor of controlled rotations.
const (
	GenX GenOpKind = iota
	GenY
	GenZ
	GenP1
)

// GenOp applies one generator factor to qubit Q.
type GenOp struct {
	Q    int
	Kind GenOpKind
}

// Generator is the derivative generator of a parametric gate:
// dU/dθ = Scale · (∏ Ops) · U(θ). Ops are diagonal/permutation factors on
// distinct qubits, so they commute and apply in any order.
type Generator struct {
	Scale complex128
	Ops   []GenOp
}

// GateGenerator returns the derivative generator of a parametric gate, or
// false for kinds without one (non-parametric kinds).
func GateGenerator(g *Gate) (Generator, bool) {
	mihalf := complex(0, -0.5)
	i := complex(0, 1)
	switch g.Kind {
	case KindRX:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenX}}}, true
	case KindRY:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenY}}}, true
	case KindRZ:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenZ}}}, true
	case KindP:
		return Generator{Scale: i, Ops: []GenOp{{g.Qubits[0], GenP1}}}, true
	case KindCRX:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenP1}, {g.Qubits[1], GenX}}}, true
	case KindCRY:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenP1}, {g.Qubits[1], GenY}}}, true
	case KindCRZ:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenP1}, {g.Qubits[1], GenZ}}}, true
	case KindCP:
		return Generator{Scale: i, Ops: []GenOp{{g.Qubits[0], GenP1}, {g.Qubits[1], GenP1}}}, true
	case KindRZZ:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenZ}, {g.Qubits[1], GenZ}}}, true
	case KindRXX:
		return Generator{Scale: mihalf, Ops: []GenOp{{g.Qubits[0], GenX}, {g.Qubits[1], GenX}}}, true
	}
	return Generator{}, false
}

// ShiftTerm is one term of a parameter-shift rule:
// the term contributes Coeff·(E(θ+Shift) − E(θ−Shift)) to dE/dθ.
type ShiftTerm struct {
	Shift float64
	Coeff float64
}

// ShiftRule returns the parameter-shift rule of a parametric gate kind.
// Plain rotations and phase gates (two-eigenvalue generators, gap 1) use the
// standard two-term ±π/2 rule; controlled rotations (generator eigenvalues
// {−1/2, 0, +1/2}) need the four-term rule with shifts π/2 and 3π/2.
func ShiftRule(k Kind) ([]ShiftTerm, bool) {
	switch k {
	case KindRX, KindRY, KindRZ, KindP, KindCP, KindRZZ, KindRXX:
		return []ShiftTerm{{Shift: math.Pi / 2, Coeff: 0.5}}, true
	case KindCRX, KindCRY, KindCRZ:
		s2 := math.Sqrt2
		d1 := (s2 + 1) / (4 * s2)
		d2 := (s2 - 1) / (4 * s2)
		return []ShiftTerm{
			{Shift: math.Pi / 2, Coeff: d1},
			{Shift: 3 * math.Pi / 2, Coeff: -d2},
		}, true
	}
	return nil, false
}

// DaggerFusedOp returns the adjoint of a compiled fused operation, staying
// on the same specialized kernel class wherever the form is closed under
// conjugate transposition (diagonal, permutation, RX-like, all-real). The
// reverse sweep of adjoint differentiation applies each inverse twice (once
// to |ψ⟩, once to |λ⟩), so daggers are computed once at compile time.
func DaggerFusedOp(op FusedOp) FusedOp {
	dag2 := func(m [2][2]complex128) [2][2]complex128 {
		return [2][2]complex128{
			{conj(m[0][0]), conj(m[1][0])},
			{conj(m[0][1]), conj(m[1][1])},
		}
	}
	out := op
	switch op.Kind {
	case FusedGate:
		out.Gate = daggerGate(op.Gate)
	case FusedDense1Q, FusedReal1Q, FusedRXLike, FusedDiag1Q:
		out.M1 = dag2(op.M1)
	case FusedPerm1Q:
		out.M1 = [2][2]complex128{{0, conj(op.M1[1][0])}, {conj(op.M1[0][1]), 0}}
	case FusedHadamard:
		// self-adjoint
	case FusedRXPair:
		// (c0, v0, v1, c1)† = (c0, −v1, −v0, c1); rotations on distinct
		// qubits commute, so the stage order needs no reversal.
		out.RXA = [4]float64{op.RXA[0], -op.RXA[2], -op.RXA[1], op.RXA[3]}
		out.RXB = [4]float64{op.RXB[0], -op.RXB[2], -op.RXB[1], op.RXB[3]}
	case FusedDense2Q, FusedDenseKQ:
		out.M = op.M.Dagger()
	case FusedPerm2Q:
		// U: out[r] = Phase[r]·in[Perm[r]]  ⇒  U†: out[Perm[r]] = conj(Phase[r])·in[r].
		var perm [4]uint8
		var phase [4]complex128
		for r := 0; r < 4; r++ {
			perm[op.Perm[r]] = uint8(r)
			phase[op.Perm[r]] = conj(op.Phase[r])
		}
		out.Perm = perm
		out.Phase = phase
	case FusedDiagonal:
		out.D1 = make([]DiagTerm1, len(op.D1))
		for i, t := range op.D1 {
			out.D1[i] = DiagTerm1{Q: t.Q, D: [2]complex128{conj(t.D[0]), conj(t.D[1])}}
		}
		out.D2 = make([]DiagTerm2, len(op.D2))
		for i, t := range op.D2 {
			out.D2[i] = DiagTerm2{A: t.A, B: t.B,
				D: [4]complex128{conj(t.D[0]), conj(t.D[1]), conj(t.D[2]), conj(t.D[3])}}
		}
	default:
		panic(fmt.Sprintf("circuit: DaggerFusedOp on kind %d", op.Kind))
	}
	return out
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// daggerGate adjoints one bound passthrough gate (the same transformation
// Circuit.Inverse applies gate-wise).
func daggerGate(g *Gate) *Gate {
	switch g.Kind {
	case KindMeasure, KindReset:
		panic("circuit: cannot dagger measurement/reset")
	case KindUnitary:
		return &Gate{Kind: KindUnitary, Qubits: g.Qubits, Matrix: g.Matrix.Dagger()}
	case KindSX:
		t := Matrix1Q(KindSX, 0)
		m := linalg.New(2, 2)
		m.Set(0, 0, conj(t[0][0]))
		m.Set(0, 1, conj(t[1][0]))
		m.Set(1, 0, conj(t[0][1]))
		m.Set(1, 1, conj(t[1][1]))
		return &Gate{Kind: KindUnitary, Qubits: g.Qubits, Matrix: m}
	}
	nk, negate := DaggerKind(g.Kind)
	ng := &Gate{Kind: nk, Qubits: g.Qubits, Cbit: g.Cbit}
	for _, p := range g.Params {
		if negate {
			ng.Params = append(ng.Params, Bound(-p.Value(nil)))
		} else {
			ng.Params = append(ng.Params, p)
		}
	}
	return ng
}

// GradOp is one executable operation of a gradient program: the forward
// fused op, its precomputed inverse, and — for parametric boundary ops —
// the derivative generator plus the affine chain-rule factor onto the named
// parameter.
type GradOp struct {
	Op    FusedOp
	Inv   FusedOp
	Gen   *Generator // non-nil exactly for parametric boundary ops
	Param int        // index into the plan's sorted parameter names
	Coeff float64    // d(angle)/d(θ_Param) of the gate's affine parameter
}

// GradProgram is a compiled, bound gradient program: the fused forward
// stream annotated for the adjoint reverse sweep.
type GradProgram struct {
	NQubits int
	Ops     []GradOp
}

// GradPlan is the binding-independent differentiation structure of a
// parametric ansatz: a fusion plan in which every gate carrying a symbolic
// parameter stays a standalone differentiable boundary while the
// non-parametric stretches between them fuse as usual. Like FusionPlan it
// is built once per ansatz (the spec-hash ParseCache keeps it beside the
// ordinary plan) and bound per batch element.
type GradPlan struct {
	src    *Circuit
	plan   *FusionPlan
	params []string
	nPGate int
}

// PlanFusionGrad builds the gradient plan of a (possibly symbolic) circuit.
// Measurements, barriers and resets are stripped: gradients are defined on
// the pre-measurement state.
func PlanFusionGrad(c *Circuit) *GradPlan {
	src := c.StripMeasurements()
	parametric := func(g *Gate) bool {
		for _, p := range g.Params {
			if !p.IsBound() {
				return true
			}
		}
		return false
	}
	nPGate := 0
	for i := range src.Gates {
		if parametric(&src.Gates[i]) {
			if _, ok := GateGenerator(&src.Gates[i]); !ok {
				panic(fmt.Sprintf("circuit: no derivative generator for parametric %s", src.Gates[i].Kind.Name()))
			}
			nPGate++
		}
	}
	return &GradPlan{
		src:    src,
		plan:   planFusion(src, 2, parametric),
		params: src.ParamNames(),
		nPGate: nPGate,
	}
}

// Params returns the sorted parameter names the gradient vector is indexed
// by.
func (p *GradPlan) Params() []string { return p.params }

// NumParamGates returns how many parametric gate occurrences the plan
// differentiates (the per-gate cost unit of the adjoint sweep).
func (p *GradPlan) NumParamGates() int { return p.nPGate }

// Bind resolves the plan's source circuit against a binding and compiles
// the executable gradient program: fused forward ops, precomputed inverses,
// and generator annotations at the parametric boundaries.
func (p *GradPlan) Bind(binding map[string]float64) (*GradProgram, error) {
	bound := p.src.Bind(binding)
	if !bound.IsBound() {
		return nil, fmt.Errorf("circuit: gradient binding leaves params %v unbound", bound.ParamNames())
	}
	idx := make(map[string]int, len(p.params))
	for i, name := range p.params {
		idx[name] = i
	}
	prog := &GradProgram{NQubits: bound.NQubits, Ops: make([]GradOp, 0, len(p.plan.segs))}
	for _, seg := range p.plan.segs {
		var op FusedOp
		var gop GradOp
		switch seg.kind {
		case segPass:
			gi := seg.gates[0]
			g := bound.Gates[gi]
			op = FusedOp{Kind: FusedGate, Gate: &g}
			if src := &p.src.Gates[gi]; len(src.Params) == 1 && !src.Params[0].IsBound() {
				gen, ok := GateGenerator(&g)
				if !ok {
					return nil, fmt.Errorf("circuit: no derivative generator for parametric %s", g.Kind.Name())
				}
				gop.Gen = &gen
				gop.Param = idx[src.Params[0].Name]
				gop.Coeff = src.Params[0].Coeff
			}
		case segDiag:
			op = compileDiagSeg(bound, seg)
		case segDense:
			op = compileDenseSeg(bound, seg)
		}
		gop.Op = op
		gop.Inv = DaggerFusedOp(op)
		prog.Ops = append(prog.Ops, gop)
	}
	return prog, nil
}

// ShiftPlan is the batched parameter-shift form of a parametric ansatz: a
// re-parameterized copy in which every parametric gate occurrence owns a
// fresh parameter name, so angle shifts of a single occurrence become plain
// parameter bindings. One value-plus-gradient evaluation then maps onto one
// batch of bindings of one circuit — exactly the shape RunBatch ships in a
// single round trip, which makes the shift rule usable through any
// execution-only (shot-based or cloud) backend.
type ShiftPlan struct {
	Circuit *Circuit // re-parameterized ansatz (fresh name per occurrence)
	params  []string // original sorted parameter names
	occs    []shiftOcc
	nBind   int
}

// shiftOcc is one parametric gate occurrence of the source ansatz.
type shiftOcc struct {
	fresh string      // fresh parameter name in the re-parameterized circuit
	orig  Param       // original affine parameter (Coeff·θ(Name)+Const)
	param int         // index of Name in params
	rule  []ShiftTerm // per-kind shift rule
	base  int         // index of the first shifted binding pair
}

// PlanParamShift builds the shift plan of a symbolic circuit. Gates with
// bound parameters are left untouched; every unbound occurrence is renamed.
func PlanParamShift(c *Circuit) (*ShiftPlan, error) {
	src := c.StripMeasurements()
	names := map[string]bool{}
	for _, n := range src.ParamNames() {
		names[n] = true
	}
	out := src.Copy()
	plan := &ShiftPlan{Circuit: out, params: src.ParamNames()}
	idx := make(map[string]int, len(plan.params))
	for i, n := range plan.params {
		idx[n] = i
	}
	next := 0
	pos := 1 // binding 0 is the unshifted base evaluation
	for gi := range out.Gates {
		g := &out.Gates[gi]
		if len(g.Params) != 1 || g.Params[0].IsBound() {
			continue
		}
		rule, ok := ShiftRule(g.Kind)
		if !ok {
			return nil, fmt.Errorf("circuit: no parameter-shift rule for %s", g.Kind.Name())
		}
		fresh := fmt.Sprintf("gs%d", next)
		for names[fresh] {
			next++
			fresh = fmt.Sprintf("gs%d", next)
		}
		next++
		plan.occs = append(plan.occs, shiftOcc{
			fresh: fresh,
			orig:  g.Params[0],
			param: idx[g.Params[0].Name],
			rule:  rule,
			base:  pos,
		})
		pos += 2 * len(rule)
		g.Params[0] = Sym(fresh, 1)
	}
	plan.nBind = pos
	return plan, nil
}

// Params returns the sorted original parameter names the assembled gradient
// is indexed by.
func (p *ShiftPlan) Params() []string { return p.params }

// NumBindings returns how many batch elements one value-plus-gradient
// evaluation costs: 1 base + 2 per shift term per parametric occurrence.
func (p *ShiftPlan) NumBindings() int { return p.nBind }

// Bindings expands one point of the original parameter space into the batch
// of re-parameterized bindings: element 0 is the unshifted evaluation, then
// (+,−) pairs per occurrence and shift term, in occurrence order.
func (p *ShiftPlan) Bindings(binding map[string]float64) []map[string]float64 {
	base := make(map[string]float64, len(p.occs))
	for _, o := range p.occs {
		base[o.fresh] = o.orig.Value(binding)
	}
	out := make([]map[string]float64, 0, p.nBind)
	out = append(out, base)
	for _, o := range p.occs {
		for _, t := range o.rule {
			for _, sign := range []float64{1, -1} {
				b := make(map[string]float64, len(base))
				for k, v := range base {
					b[k] = v
				}
				b[o.fresh] += sign * t.Shift
				out = append(out, b)
			}
		}
	}
	return out
}

// Assemble combines the per-binding expectation values (in Bindings order)
// into the objective value and its gradient over Params order, applying the
// affine chain rule of each occurrence.
func (p *ShiftPlan) Assemble(vals []float64) (float64, []float64, error) {
	if len(vals) != p.nBind {
		return 0, nil, fmt.Errorf("circuit: shift assembly got %d values, want %d", len(vals), p.nBind)
	}
	grad := make([]float64, len(p.params))
	for _, o := range p.occs {
		var d float64
		at := o.base
		for _, t := range o.rule {
			d += t.Coeff * (vals[at] - vals[at+1])
			at += 2
		}
		grad[o.param] += o.orig.Coeff * d
	}
	return vals[0], grad, nil
}
