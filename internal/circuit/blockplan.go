package circuit

// Cache-blocked stage planning: the distributed stage partitioner
// (PlanDistStages) is reused intra-node with "shard" = L2-resident tile.
// A schedule over 2^(n-tileBits) tiles of 2^tileBits amplitudes has exactly
// the locality structure a distributed schedule has over ranks: every
// non-diagonal op of a stage acts on bit positions below tileBits, so a
// whole stage executes tile-by-tile with the amplitudes resident in cache,
// and a stage boundary is one in-memory bit-permutation sweep (the
// single-node analog of the all-to-all shard shuffle). Combined diagonal
// layers never force a remap: factors on positions above the tile read
// their bits off the tile index, exactly like the distributed engine reads
// global factors off the rank id.

// PlanTileStages partitions the plan's segment structure into
// communication-free tile stages. The shape fed to the partitioner is
// binding-independent — dense segments are constrained on their merged
// support, diagonal runs are unconstrained, passthrough gates keep their
// own locality rule — so one schedule serves every binding of a parametric
// ansatz and the ParseCache stores it beside the fusion plan. Stage op
// indices are segment indices, matching CompileSeq's one-op-per-segment
// programs. The circuit must have the structure the plan was built from
// (any binding works; only kinds and qubits are read).
//
// An error means the structure cannot be tiled at this granularity (a block
// wider than a tile); callers fall back to per-op execution.
func PlanTileStages(p *FusionPlan, c *Circuit, tileBits int) (*DistSchedule, error) {
	if c.NQubits != p.nqubits || len(c.Gates) != p.ngates {
		panic("circuit: PlanTileStages circuit does not match the fusion plan structure")
	}
	shape := &FusedProgram{NQubits: c.NQubits, Ops: make([]FusedOp, 0, len(p.segs))}
	for _, seg := range p.segs {
		switch seg.kind {
		case segDiag:
			shape.Ops = append(shape.Ops, FusedOp{Kind: FusedDiagonal})
		case segPass:
			g := c.Gates[seg.gates[0]]
			shape.Ops = append(shape.Ops, FusedOp{Kind: FusedGate, Gate: &g})
		case segDense:
			// Conservative: a binding may collapse the block to a diagonal
			// (which would be layout-free), but constraining it for every
			// binding keeps the schedule shareable across the batch.
			shape.Ops = append(shape.Ops, FusedOp{Kind: FusedDenseKQ, Qubits: seg.qubits})
		}
	}
	// Reserve low bit positions for unwished residents: the wish lookahead
	// then cannot evict the low-position fillers, so consecutive remaps keep
	// a fixed low-bit prefix and the stage-boundary gather copies contiguous
	// runs of 2^reserve amplitudes instead of single elements. Measured
	// optimum: 512-byte runs (reserve 6) once the tile can spare the bits —
	// below that, a third of the tile — with longer runs the fewer-stages
	// tradeoff inverts and more remap passes cost more than the shorter
	// copies save.
	reserve := tileBits - 10
	if reserve > 6 {
		reserve = 6
	}
	if reserve < tileBits/3 {
		reserve = tileBits / 3
	}
	sched, err := planDistStagesReserve(shape, tileBits, reserve)
	if err != nil {
		return nil, err
	}
	canonicalizeStageLayouts(sched, shape)
	return sched, nil
}

// canonicalizeStageLayouts rewrites each stage's layout to move as few —
// and as high — bit positions as possible between consecutive stages. A
// stage only *requires* the supports of its constrained ops to sit below
// the tile boundary; everything else about the planner's layout is free.
// The canonical form keeps every staying qubit at its exact previous
// position and, where the planner's filler retention is arbitrary, retains
// the residents with the *lowest* positions so evictions vacate the highest
// slots. The stage-boundary permutation then fixes a maximal low-bit prefix
// of the index, which the executor turns into long contiguous gather runs
// (streaming copies) instead of a per-element bit shuffle. The distributed
// planner's own layouts are untouched; only tile schedules are
// canonicalized.
func canonicalizeStageLayouts(sched *DistSchedule, shape *FusedProgram) {
	n, tb := sched.NQubits, sched.NLocal
	prev := make([]int, n)
	for q := range prev {
		prev[q] = q
	}
	required := make([]bool, n)
	lay := make([]int, n)
	for si := range sched.Stages {
		st := &sched.Stages[si]
		for i := range required {
			required[i] = false
		}
		nReq := 0
		for _, oi := range st.Ops {
			if qs, constrained := distSupport(&shape.Ops[oi]); constrained {
				for _, q := range qs {
					if !required[q] {
						required[q] = true
						nReq++
					}
				}
			}
		}
		// Residents stay in place: required ones unconditionally, fillers by
		// ascending position until the incoming required qubits fit.
		fillerQuota := tb - nReq
		var incoming, evicted, vacLocal, vacGlobal []int
		byPos := make([]int, n) // position -> qubit under prev
		for q := 0; q < n; q++ {
			byPos[prev[q]] = q
		}
		for p := 0; p < tb; p++ {
			q := byPos[p]
			switch {
			case required[q]:
				lay[q] = p
			case fillerQuota > 0:
				lay[q] = p
				fillerQuota--
			default:
				evicted = append(evicted, q)
				vacLocal = append(vacLocal, p)
			}
		}
		for p := tb; p < n; p++ {
			q := byPos[p]
			if required[q] {
				incoming = append(incoming, q)
				vacGlobal = append(vacGlobal, p)
			} else {
				lay[q] = p
			}
		}
		for i, q := range incoming {
			lay[q] = vacLocal[i]
		}
		for i, q := range evicted {
			lay[q] = vacGlobal[i]
		}
		copy(st.Layout, lay)
		copy(prev, lay)
	}
}
