package circuit

import (
	"fmt"
	"sort"
)

// Distributed stage partitioning (the communication-avoiding half of the
// NWQ-Sim/SV-Sim distribution scheme): a fused program is cut into *stages*
// whose non-diagonal operations act only on the low nLocal qubit positions
// of the current layout, so every stage runs entirely rank-locally on the
// 2^nLocal amplitude shard. Between stages the layout changes at an explicit
// *remap point*: one logical bit-permutation of the global index, realized
// by the distributed engine as a single all-to-all shard shuffle. A run of
// gates on "global" qubits therefore costs one exchange instead of one
// whole-shard Sendrecv per gate, and combined diagonal layers never force a
// remap at all — a diagonal factor evaluates rank-locally under any layout,
// with the global qubit values read straight off the rank id.

// DistStage is one communication-free span of a distributed schedule.
type DistStage struct {
	// Layout[q] is the physical bit position of program qubit q during the
	// stage: positions < NLocal live in the local shard index, positions
	// >= NLocal are encoded in the rank id.
	Layout []int
	// Ops are indices into the source FusedProgram's op list, in program
	// order. Every non-diagonal op's qubits sit at local positions.
	Ops []int
}

// DistSchedule is a staged execution plan of a fused program over 2^g ranks
// holding 2^NLocal amplitudes each.
type DistSchedule struct {
	NQubits int
	NLocal  int
	Stages  []DistStage
}

// Remaps returns the number of exchange points the schedule needs — the
// communication count the ablation harness reports against the per-gate
// baseline.
func (s *DistSchedule) Remaps() int {
	if len(s.Stages) == 0 {
		return 0
	}
	return len(s.Stages) - 1
}

// distSupport returns the qubits a fused op needs resident in the local
// shard, and whether that locality constraint applies at all. Diagonal ops
// (combined diagonal layers, diagonal 1q blocks) evaluate rank-locally under
// any layout; barriers/identities/measure/reset passthroughs execute nowhere
// on the distributed sampling path.
func distSupport(op *FusedOp) ([]int, bool) {
	switch op.Kind {
	case FusedDiagonal, FusedDiag1Q:
		return nil, false
	case FusedGate:
		switch op.Gate.Kind {
		case KindBarrier, KindI, KindMeasure, KindReset:
			return nil, false
		}
		return op.Gate.Qubits, true
	}
	return op.Qubits, true
}

// PlanDistStages partitions a fused program into local stages for a world of
// 2^(NQubits-nLocal) ranks. The partitioner is greedy with look-ahead: when
// an op needs a qubit currently at a global position, it collects the wish
// set of qubits the upcoming constrained ops touch (up to the nLocal the
// shard can host) and brings them local in one remap, so consecutive
// global-qubit gates share a single exchange. It fails with a descriptive
// error when a single op needs more local qubits than a shard holds —
// callers retry after transpiling to narrower gates, or reduce the rank
// count.
func PlanDistStages(prog *FusedProgram, nLocal int) (*DistSchedule, error) {
	return planDistStagesReserve(prog, nLocal, 0)
}

// planDistStagesReserve is PlanDistStages with a filler reserve: the wish
// lookahead at a remap point stops growing once it would leave fewer than
// reserve local positions to unwished residents. The distributed engine
// plans with reserve 0 (every stage boundary is a full all-to-all, so
// maximal packing minimizes exchanges); the tile planner reserves a low-bit
// prefix so stage-boundary gathers keep contiguous runs (see
// PlanTileStages). The triggering op's own support always fits regardless
// of the reserve.
func planDistStagesReserve(prog *FusedProgram, nLocal, reserve int) (*DistSchedule, error) {
	n := prog.NQubits
	if nLocal > n {
		nLocal = n
	}
	if nLocal < 0 {
		return nil, fmt.Errorf("circuit: negative local qubit count %d", nLocal)
	}
	sched := &DistSchedule{NQubits: n, NLocal: nLocal}
	layout := make([]int, n) // layout[q] = physical position of qubit q
	occ := make([]int, n)    // occ[pos] = qubit at physical position pos
	for q := 0; q < n; q++ {
		layout[q] = q
		occ[q] = q
	}
	clone := func(v []int) []int { return append([]int(nil), v...) }
	allLocal := func(qs []int) bool {
		for _, q := range qs {
			if layout[q] >= nLocal {
				return false
			}
		}
		return true
	}
	cur := DistStage{Layout: clone(layout)}
	for oi := range prog.Ops {
		qs, constrained := distSupport(&prog.Ops[oi])
		if !constrained {
			cur.Ops = append(cur.Ops, oi)
			continue
		}
		if len(qs) > nLocal {
			return nil, fmt.Errorf(
				"circuit: distributed stage partitioner: op on qubits %v needs %d resident qubits but each of the 2^%d ranks holds only %d local qubits; use fewer ranks or decompose the gate",
				qs, len(qs), n-nLocal, nLocal)
		}
		if allLocal(qs) {
			cur.Ops = append(cur.Ops, oi)
			continue
		}
		// Remap point: gather the wish set of the upcoming constrained ops.
		cap := nLocal - reserve
		if cap < len(qs) {
			cap = len(qs)
		}
		wish := map[int]bool{}
		for _, q := range qs {
			wish[q] = true
		}
		for oj := oi + 1; oj < len(prog.Ops); oj++ {
			qs2, c2 := distSupport(&prog.Ops[oj])
			if !c2 {
				continue
			}
			fresh := 0
			for _, q := range qs2 {
				if !wish[q] {
					fresh++
				}
			}
			if len(wish)+fresh > cap {
				break
			}
			for _, q := range qs2 {
				wish[q] = true
			}
		}
		// Build the next layout: wished qubits already local stay put; each
		// wished qubit at a global position swaps with the highest local
		// position whose occupant is not wished. Evicting from the top keeps
		// unwished residents parked at the lowest positions, so consecutive
		// remaps leave a maximal low-bit prefix of the index untouched — the
		// distributed exchange volume is unchanged, and the cache-blocked
		// tile executor turns that fixed prefix into contiguous gather runs.
		// Deterministic (sorted qubit/position order) so every rank computes
		// the same layout.
		var incoming []int
		for q := range wish {
			if layout[q] >= nLocal {
				incoming = append(incoming, q)
			}
		}
		sort.Ints(incoming)
		var victims []int
		for p := nLocal - 1; p >= 0; p-- {
			if !wish[occ[p]] {
				victims = append(victims, p)
			}
		}
		for i, q := range incoming {
			pLocal := victims[i]
			v := occ[pLocal]
			pGlobal := layout[q]
			layout[q], layout[v] = pLocal, pGlobal
			occ[pLocal], occ[pGlobal] = q, v
		}
		sched.Stages = append(sched.Stages, cur)
		cur = DistStage{Layout: clone(layout), Ops: []int{oi}}
	}
	sched.Stages = append(sched.Stages, cur)
	return sched, nil
}
