package circuit

import (
	"math"
	"testing"
)

// countKinds compiles a bound circuit with the default plan and histograms
// the fused op kinds.
func countKinds(c *Circuit) map[FusedOpKind]int {
	prog := PlanFusion(c).Compile(c)
	h := map[FusedOpKind]int{}
	for i := range prog.Ops {
		h[prog.Ops[i].Kind]++
	}
	return h
}

func TestPlanHoistsDiagonalLayer(t *testing.T) {
	// A TFIM-style trotter step: a full RZZ coupling layer then an RX layer.
	// The whole coupling layer must collapse into exactly one diagonal op
	// per step, and the mixer into RX-pair sweeps.
	n := 8
	c := New(n)
	for step := 0; step < 3; step++ {
		for q := 0; q+1 < n; q++ {
			c.RZZ(q, q+1, Bound(0.3+float64(step)))
		}
		for q := 0; q < n; q++ {
			c.RX(q, Bound(0.7))
		}
	}
	prog := PlanFusion(c).Compile(c)
	diag, pairs := 0, 0
	for i := range prog.Ops {
		switch prog.Ops[i].Kind {
		case FusedDiagonal:
			diag++
			if got := len(prog.Ops[i].D2); got != n-1 {
				t.Fatalf("diagonal op %d carries %d terms, want %d (whole layer)", diag, got, n-1)
			}
		case FusedRXPair:
			pairs++
		}
	}
	if diag != 3 {
		t.Fatalf("want 3 per-layer diagonal ops, got %d (ops %d)", diag, len(prog.Ops))
	}
	if pairs != 3*n/2 {
		t.Fatalf("want %d RX-pair sweeps, got %d", 3*n/2, pairs)
	}
}

func TestPlanMergesSingleQubitRuns(t *testing.T) {
	// Consecutive 1q gates on one qubit fold into a single 2x2.
	c := New(2)
	c.H(0).X(0).RY(0, Bound(0.4)).H(0)
	prog := PlanFusion(c).Compile(c)
	if len(prog.Ops) != 1 {
		t.Fatalf("want 1 fused op for a 1q chain, got %d", len(prog.Ops))
	}
}

func TestPlanClassifiesKernels(t *testing.T) {
	cases := []struct {
		name  string
		build func(c *Circuit)
		want  FusedOpKind
	}{
		{"hadamard", func(c *Circuit) { c.H(0) }, FusedHadamard},
		{"x-perm", func(c *Circuit) { c.X(0) }, FusedPerm1Q},
		{"ry-real", func(c *Circuit) { c.RY(0, Bound(0.3)) }, FusedReal1Q},
		{"rx-form", func(c *Circuit) { c.RX(0, Bound(0.3)) }, FusedRXLike},
		{"z-diag", func(c *Circuit) { c.Z(0) }, FusedDiagonal},
		{"xy-chain", func(c *Circuit) { c.X(0).Y(0) }, FusedDiag1Q}, // X·Y is diagonal up to phase
	}
	for _, tc := range cases {
		c := New(2)
		tc.build(c)
		h := countKinds(c)
		if h[tc.want] != 1 || len(c.Gates) == 0 {
			t.Fatalf("%s: kinds %v, want one op of kind %d", tc.name, h, tc.want)
		}
	}
}

func TestPlanPassthroughTooWide(t *testing.T) {
	// CCX exceeds maxK=2 and must pass through to the compressed-index
	// kernel; with maxK=3 it fuses densely.
	c := New(3)
	c.CCX(0, 1, 2)
	h := countKinds(c)
	if h[FusedGate] != 1 {
		t.Fatalf("CCX at maxK=2 should pass through, got %v", h)
	}
	// A lone wide gate stays on its specialized kernel even at maxK=3, but a
	// multi-gate 3-qubit block fuses into one dense 8x8.
	c.H(2)
	c.CCX(0, 1, 2)
	p3 := PlanFusionK(c, 3).Compile(c)
	if len(p3.Ops) != 1 || p3.Ops[0].Kind != FusedDenseKQ {
		t.Fatalf("3q block at maxK=3 should fuse densely, got %d ops (first kind %d)", len(p3.Ops), p3.Ops[0].Kind)
	}
}

func TestPlanRespectsMeasurementBarrier(t *testing.T) {
	// Gates across a mid-circuit measurement must not fuse through it.
	c := New(1)
	c.H(0)
	c.Measure(0, 0)
	c.H(0)
	prog := PlanFusion(c).Compile(c)
	if len(prog.Ops) != 3 {
		t.Fatalf("want H | measure | H (3 ops), got %d", len(prog.Ops))
	}
	if prog.Ops[1].Kind != FusedGate || prog.Ops[1].Gate.Kind != KindMeasure {
		t.Fatalf("middle op should be the measurement, got %+v", prog.Ops[1])
	}
}

func TestCompileRejectsStructureMismatch(t *testing.T) {
	a := New(2)
	a.H(0).CX(0, 1)
	plan := PlanFusion(a)
	b := New(2)
	b.H(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Compile with mismatched structure should panic")
		}
	}()
	plan.Compile(b)
}

func TestPlanReusableAcrossBindings(t *testing.T) {
	// The plan must depend only on structure: compiling two bindings of the
	// same ansatz yields the same op skeleton with different numbers.
	c := New(3)
	c.H(0).RZZ(0, 1, Sym("g", 1)).RZZ(1, 2, Sym("g", 1)).RX(0, Sym("b", 1)).RX(1, Sym("b", 1))
	plan := PlanFusion(c)
	p1 := plan.Compile(c.Bind(map[string]float64{"g": 0.2, "b": 1.1}))
	p2 := plan.Compile(c.Bind(map[string]float64{"g": 1.9, "b": 0.4}))
	if len(p1.Ops) != len(p2.Ops) {
		t.Fatalf("op count differs across bindings: %d vs %d", len(p1.Ops), len(p2.Ops))
	}
	for i := range p1.Ops {
		if p1.Ops[i].Kind != p2.Ops[i].Kind {
			t.Fatalf("op %d kind differs across bindings: %d vs %d", i, p1.Ops[i].Kind, p2.Ops[i].Kind)
		}
	}
}

func TestDiagFactorsMatchMatrices(t *testing.T) {
	// The diagonal factor tables must reproduce the gate matrices exactly.
	for _, k := range []Kind{KindZ, KindS, KindSdg, KindT, KindTdg, KindRZ, KindP} {
		g := Gate{Kind: k, Qubits: []int{0}}
		if k.NumParams() == 1 {
			g.Params = []Param{Bound(0.37)}
		}
		t1, t2 := diagFactors(g)
		if t1 == nil || t2 != nil {
			t.Fatalf("%s should be a 1q diagonal", k.Name())
		}
		var theta float64
		if k.NumParams() == 1 {
			theta = 0.37
		}
		m := Matrix1Q(k, theta)
		if t1.D[0] != m[0][0] || t1.D[1] != m[1][1] {
			t.Fatalf("%s: factor table %v does not match matrix diag", k.Name(), t1.D)
		}
	}
	for _, k := range []Kind{KindCZ, KindCRZ, KindCP, KindRZZ} {
		g := Gate{Kind: k, Qubits: []int{1, 0}}
		if k.NumParams() == 1 {
			g.Params = []Param{Bound(-1.2)}
		}
		t1, t2 := diagFactors(g)
		if t2 == nil || t1 != nil {
			t.Fatalf("%s should be a 2q diagonal", k.Name())
		}
		var theta float64
		if k.NumParams() == 1 {
			theta = -1.2
		}
		m := Matrix2Q(k, theta)
		for v := 0; v < 4; v++ {
			if d := t2.D[v] - m.At(v, v); math.Abs(real(d))+math.Abs(imag(d)) != 0 {
				t.Fatalf("%s: factor %d mismatch", k.Name(), v)
			}
		}
	}
}

func TestSegmentsCoverEveryGate(t *testing.T) {
	c := New(5)
	c.H(0).CX(0, 1).RZ(2, Bound(0.3)).RZZ(2, 3, Bound(0.7)).Barrier()
	c.CCX(0, 1, 4).RX(3, Bound(0.2)).CZ(3, 4)
	plan := PlanFusion(c)
	segs := plan.Segments(c)
	seen := map[int]int{}
	for _, seg := range segs {
		for _, gi := range seg.Gates {
			seen[gi]++
		}
	}
	for gi, g := range c.Gates {
		switch g.Kind {
		case KindBarrier, KindI:
			continue // no kernel, no segment
		}
		if seen[gi] != 1 {
			t.Fatalf("gate %d (%s) appears in %d segments, want 1", gi, g.Kind.Name(), seen[gi])
		}
	}
	// The CCX is too wide to fuse and must survive as a passthrough.
	foundPass := false
	for _, seg := range segs {
		if seg.Kind == SegPass && c.Gates[seg.Gates[0]].Kind == KindCCX {
			foundPass = true
			if len(seg.Qubits) != 3 {
				t.Fatalf("pass segment qubits = %v", seg.Qubits)
			}
		}
	}
	if !foundPass {
		t.Fatalf("CCX should be a passthrough segment")
	}
}

func TestSegmentUnitaryMatchesCompile(t *testing.T) {
	// Per dense segment, SegmentUnitary over the reversed qubit list must be
	// exactly the unitary Compile classifies — the contract the MPS schedule
	// compiler depends on.
	c := New(3)
	c.H(0).RZ(0, Bound(0.4)).CX(0, 1).RY(1, Bound(1.1)).RXX(1, 2, Bound(0.9)).SX(2)
	plan := PlanFusion(c)
	prog := plan.Compile(c)
	segs := plan.Segments(c)
	if len(segs) != len(prog.Ops) {
		t.Fatalf("%d segments vs %d ops", len(segs), len(prog.Ops))
	}
	for si, seg := range segs {
		if seg.Kind != SegDense || len(seg.Qubits) != 2 {
			continue
		}
		qs := []int{seg.Qubits[1], seg.Qubits[0]}
		u := SegmentUnitary(c, seg.Gates, qs)
		op := prog.Ops[si]
		if op.Kind != FusedDense2Q {
			continue
		}
		// op.Qubits is MSB-first and equals qs here (ascending reversed).
		for r := 0; r < 4; r++ {
			for cc := 0; cc < 4; cc++ {
				if d := u.At(r, cc) - op.M.At(r, cc); math.Abs(real(d))+math.Abs(imag(d)) > 1e-12 {
					t.Fatalf("segment %d unitary mismatch at (%d,%d)", si, r, cc)
				}
			}
		}
	}
}

func TestDiagLayoutMatchesSegmentDiagonal(t *testing.T) {
	c := New(4)
	c.RZ(0, Bound(0.3)).RZZ(0, 1, Bound(0.5)).CZ(2, 1).RZ(0, Bound(0.2)).
		RZZ(1, 0, Bound(0.1)).CP(3, 2, Bound(0.8)).S(3)
	gates := make([]int, len(c.Gates))
	for i := range gates {
		gates[i] = i
	}
	singles, pairs := DiagLayout(c, gates)
	t1, t2 := SegmentDiagonal(c, gates)
	if len(singles) != len(t1) {
		t.Fatalf("%d layout singles vs %d factor tables", len(singles), len(t1))
	}
	for i, q := range singles {
		if t1[i].Q != q {
			t.Fatalf("single %d: layout qubit %d, factor qubit %d", i, q, t1[i].Q)
		}
	}
	if len(pairs) != len(t2) {
		t.Fatalf("%d layout pairs vs %d factor tables", len(pairs), len(t2))
	}
	for i, pr := range pairs {
		if pr[0] <= pr[1] {
			t.Fatalf("pair %d not normalized: %v", i, pr)
		}
		if t2[i].A != pr[0] || t2[i].B != pr[1] {
			t.Fatalf("pair %d: layout %v, factors (%d,%d)", i, pr, t2[i].A, t2[i].B)
		}
	}
	// RZZ(0,1) and RZZ(1,0) coalesce into one pair; RZ(0) twice into one single.
	if len(singles) != 2 || len(pairs) != 3 {
		t.Fatalf("coalescing wrong: singles %v pairs %v", singles, pairs)
	}
}

func TestSegmentsStructuralOnly(t *testing.T) {
	// Segments must be identical across bindings of a parametric circuit —
	// the property that lets one MPS schedule serve a whole batch.
	c := New(3)
	c.H(0).RZZ(0, 1, Sym("g", 2)).RX(1, Sym("b", 2)).CX(1, 2)
	plan := PlanFusion(c)
	sa := plan.Segments(c)
	bound := c.Bind(map[string]float64{"g": 0.7, "b": 0.2})
	sb := PlanFusion(bound).Segments(bound)
	if len(sa) != len(sb) {
		t.Fatalf("segment count differs across bindings: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Kind != sb[i].Kind || len(sa[i].Gates) != len(sb[i].Gates) {
			t.Fatalf("segment %d differs across bindings", i)
		}
	}
}
