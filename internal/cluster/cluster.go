// Package cluster models the compute platform of the paper's evaluation: a
// Frontier test system whose nodes have one 64-core EPYC CPU organized as 8
// last-level-cache (LLC) domains of 8 cores, 512 GiB of DRAM, 4 MI250X GPUs
// exposing 8 logical GCDs, and a Slingshot interconnect. The model carries
// exactly the structure the orchestration layer depends on: core counts,
// LLC domains with per-domain core reservation for OS noise isolation,
// memory budgets, and a three-tier communication cost hierarchy
// (intra-LLC < intra-node < inter-node).
package cluster

import (
	"fmt"
	"time"
)

// Node is one compute node of the machine model.
type Node struct {
	ID         int
	Cores      int
	LLCDomains int
	MemBytes   int64
	GPUs       int // logical GPUs (GCDs on Frontier)

	// ReservedPerLLC cores are held back for kernel/system processes —
	// the paper reserves one core per LLC domain, leaving 56 usable.
	ReservedPerLLC int
}

// UsableCores returns the cores available to applications after reservation.
func (n *Node) UsableCores() int {
	u := n.Cores - n.LLCDomains*n.ReservedPerLLC
	if u < 0 {
		return 0
	}
	return u
}

// CoresPerLLC returns the core count of each LLC domain.
func (n *Node) CoresPerLLC() int {
	if n.LLCDomains == 0 {
		return n.Cores
	}
	return n.Cores / n.LLCDomains
}

// CorePlace identifies a core slot on the machine: which node, which LLC
// domain, and which core within the domain.
type CorePlace struct {
	Node int
	LLC  int
	Core int
}

// PlaceProcs assigns p process slots on the node, round-robin across LLC
// domains (the placement QFw's QPM uses), skipping reserved cores. It
// returns an error if the node cannot host p processes.
func (n *Node) PlaceProcs(p int) ([]CorePlace, error) {
	usablePerLLC := n.CoresPerLLC() - n.ReservedPerLLC
	if usablePerLLC <= 0 {
		return nil, fmt.Errorf("cluster: node %d has no usable cores", n.ID)
	}
	if p > usablePerLLC*n.LLCDomains {
		return nil, fmt.Errorf("cluster: node %d cannot host %d procs (%d usable cores)", n.ID, p, n.UsableCores())
	}
	places := make([]CorePlace, 0, p)
	next := make([]int, n.LLCDomains)
	llc := 0
	for len(places) < p {
		if next[llc] < usablePerLLC {
			places = append(places, CorePlace{Node: n.ID, LLC: llc, Core: next[llc]})
			next[llc]++
		}
		llc = (llc + 1) % n.LLCDomains
	}
	return places, nil
}

// Interconnect is the three-tier communication cost model.
type Interconnect struct {
	IntraLLCLatency  time.Duration
	IntraNodeLatency time.Duration
	InterNodeLatency time.Duration
	// BandwidthBytesPerSec is the per-link injection bandwidth.
	BandwidthBytesPerSec float64
}

// Transfer returns the modelled time to move `bytes` between two core slots.
func (ic Interconnect) Transfer(a, b CorePlace, bytes int) time.Duration {
	var lat time.Duration
	switch {
	case a.Node != b.Node:
		lat = ic.InterNodeLatency
	case a.LLC != b.LLC:
		lat = ic.IntraNodeLatency
	default:
		lat = ic.IntraLLCLatency
	}
	if ic.BandwidthBytesPerSec > 0 && bytes > 0 {
		lat += time.Duration(float64(bytes) / ic.BandwidthBytesPerSec * float64(time.Second))
	}
	return lat
}

// Machine is a set of nodes plus the interconnect model.
type Machine struct {
	Name  string
	Nodes []*Node
	Net   Interconnect
}

// Frontier returns the paper's test platform with the requested node count:
// 64-core nodes, 8 LLC domains, 1 reserved core per domain (56 usable),
// 512 GiB of memory, 8 logical GPUs, Slingshot-200-class interconnect
// (800 Gbit/s aggregate node injection).
func Frontier(nodes int) *Machine {
	if nodes < 1 {
		panic("cluster: need at least one node")
	}
	m := &Machine{
		Name: "frontier-borg",
		Net: Interconnect{
			IntraLLCLatency:      200 * time.Nanosecond,
			IntraNodeLatency:     800 * time.Nanosecond,
			InterNodeLatency:     2 * time.Microsecond,
			BandwidthBytesPerSec: 100e9, // 800 Gbit/s
		},
	}
	for i := 0; i < nodes; i++ {
		m.Nodes = append(m.Nodes, &Node{
			ID:             i,
			Cores:          64,
			LLCDomains:     8,
			MemBytes:       512 << 30,
			GPUs:           8,
			ReservedPerLLC: 1,
		})
	}
	return m
}

// Laptop returns a small machine model used by tests and examples so that
// the full stack runs anywhere: 1+ nodes of 8 cores in 2 LLC domains.
func Laptop(nodes int) *Machine {
	if nodes < 1 {
		nodes = 1
	}
	m := &Machine{
		Name: "laptop",
		Net: Interconnect{
			IntraLLCLatency:  0,
			IntraNodeLatency: 0,
			InterNodeLatency: 0,
		},
	}
	for i := 0; i < nodes; i++ {
		m.Nodes = append(m.Nodes, &Node{
			ID:         i,
			Cores:      8,
			LLCDomains: 2,
			MemBytes:   8 << 30,
			GPUs:       0,
		})
	}
	return m
}

// TotalUsableCores sums usable cores over all nodes.
func (m *Machine) TotalUsableCores() int {
	total := 0
	for _, n := range m.Nodes {
		total += n.UsableCores()
	}
	return total
}

// String summarizes the machine.
func (m *Machine) String() string {
	if len(m.Nodes) == 0 {
		return m.Name + ": empty"
	}
	n := m.Nodes[0]
	return fmt.Sprintf("%s: %d nodes x (%d cores, %d LLC domains, %d GPUs, %d GiB)",
		m.Name, len(m.Nodes), n.Cores, n.LLCDomains, n.GPUs, n.MemBytes>>30)
}
