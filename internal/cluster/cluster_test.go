package cluster

import (
	"testing"
	"time"
)

func TestFrontierShape(t *testing.T) {
	m := Frontier(32)
	if len(m.Nodes) != 32 {
		t.Fatalf("nodes %d", len(m.Nodes))
	}
	n := m.Nodes[0]
	if n.Cores != 64 || n.LLCDomains != 8 || n.GPUs != 8 {
		t.Fatalf("node shape %+v", n)
	}
	// The paper: one core per LLC reserved -> 56 usable.
	if u := n.UsableCores(); u != 56 {
		t.Fatalf("usable cores %d, want 56", u)
	}
	if m.TotalUsableCores() != 32*56 {
		t.Fatalf("total usable %d", m.TotalUsableCores())
	}
}

func TestPlaceProcsRoundRobin(t *testing.T) {
	n := Frontier(1).Nodes[0]
	places, err := n.PlaceProcs(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(places) != 16 {
		t.Fatalf("placed %d", len(places))
	}
	// Round-robin: the first 8 procs land on 8 distinct LLC domains.
	seen := map[int]bool{}
	for _, p := range places[:8] {
		seen[p.LLC] = true
	}
	if len(seen) != 8 {
		t.Fatalf("first 8 procs on %d LLCs, want 8", len(seen))
	}
}

func TestPlaceProcsOverflow(t *testing.T) {
	n := Frontier(1).Nodes[0]
	if _, err := n.PlaceProcs(57); err == nil {
		t.Fatal("expected overflow error at 57 procs (56 usable cores)")
	}
	if _, err := n.PlaceProcs(56); err != nil {
		t.Fatalf("56 procs should fit: %v", err)
	}
}

func TestInterconnectTiers(t *testing.T) {
	m := Frontier(2)
	a := CorePlace{Node: 0, LLC: 0, Core: 0}
	sameLLC := CorePlace{Node: 0, LLC: 0, Core: 1}
	sameNode := CorePlace{Node: 0, LLC: 3, Core: 0}
	otherNode := CorePlace{Node: 1, LLC: 0, Core: 0}
	t1 := m.Net.Transfer(a, sameLLC, 0)
	t2 := m.Net.Transfer(a, sameNode, 0)
	t3 := m.Net.Transfer(a, otherNode, 0)
	if !(t1 < t2 && t2 < t3) {
		t.Fatalf("latency hierarchy violated: %v %v %v", t1, t2, t3)
	}
}

func TestTransferBandwidthTerm(t *testing.T) {
	net := Interconnect{InterNodeLatency: time.Microsecond, BandwidthBytesPerSec: 1e9}
	a := CorePlace{Node: 0}
	b := CorePlace{Node: 1}
	small := net.Transfer(a, b, 0)
	big := net.Transfer(a, b, 100<<20) // 100 MiB at 1 GB/s ~ 100 ms
	if big-small < 90*time.Millisecond {
		t.Fatalf("bandwidth term missing: %v vs %v", small, big)
	}
}

func TestLaptopModel(t *testing.T) {
	m := Laptop(2)
	if m.TotalUsableCores() != 16 {
		t.Fatalf("laptop usable cores %d", m.TotalUsableCores())
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}
