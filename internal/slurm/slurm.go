// Package slurm implements the subset of SLURM semantics the Quantum
// Framework deploys with: batch jobs composed of heterogeneous groups
// (hetgroup-0 for the application layer, hetgroup-1 for QFw services and
// simulator workers), FIFO scheduling over a machine model, allocation
// lifecycle, and walltime enforcement.
package slurm

import (
	"fmt"
	"sync"
	"time"

	"qfw/internal/cluster"
)

// GroupReq describes one heterogeneous group of a job request.
type GroupReq struct {
	Name  string
	Nodes int
}

// JobReq is a batch job request with one or more het groups.
type JobReq struct {
	Name      string
	HetGroups []GroupReq
	Walltime  time.Duration // 0 means no limit
}

// State is the lifecycle state of a job.
type State int

// Job states.
const (
	Pending State = iota
	Running
	Completed
	Cancelled
	TimedOut
)

func (s State) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Completed:
		return "COMPLETED"
	case Cancelled:
		return "CANCELLED"
	case TimedOut:
		return "TIMEOUT"
	}
	return "UNKNOWN"
}

// NodeSet is the node allocation of one het group.
type NodeSet struct {
	Group string
	Nodes []*cluster.Node
}

// Allocation holds the node sets of a running job, indexed by het group.
type Allocation struct {
	JobID  int
	Groups []NodeSet
}

// Group returns the node set of a het group by index (hetgroup-i).
func (a *Allocation) Group(i int) NodeSet {
	if i < 0 || i >= len(a.Groups) {
		panic(fmt.Sprintf("slurm: hetgroup-%d out of range", i))
	}
	return a.Groups[i]
}

// Job tracks one submitted job.
type Job struct {
	ID    int
	Req   JobReq
	sched *Scheduler

	mu       sync.Mutex
	state    State
	alloc    *Allocation
	started  chan struct{}
	finished chan struct{}
	timer    *time.Timer
	start    time.Time
	elapsed  time.Duration
}

// State returns the current job state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Elapsed returns the job's running time (live for running jobs).
func (j *Job) Elapsed() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Running {
		return time.Since(j.start)
	}
	return j.elapsed
}

// WaitStart blocks until the scheduler has allocated the job (or it reached
// a terminal state) and returns the allocation.
func (j *Job) WaitStart() (*Allocation, error) {
	<-j.started
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.alloc == nil {
		return nil, fmt.Errorf("slurm: job %d is %s", j.ID, j.state)
	}
	return j.alloc, nil
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.finished }

// Complete marks a running job finished and releases its nodes.
func (j *Job) Complete() { j.finish(Completed) }

// Cancel aborts the job, releasing nodes if it was running.
func (j *Job) Cancel() { j.finish(Cancelled) }

func (j *Job) finish(final State) {
	j.mu.Lock()
	if j.state != Running && j.state != Pending {
		j.mu.Unlock()
		return
	}
	wasPending := j.state == Pending
	if j.state == Running {
		j.elapsed = time.Since(j.start)
	}
	j.state = final
	alloc := j.alloc
	j.alloc = nil
	if j.timer != nil {
		j.timer.Stop()
	}
	j.mu.Unlock()
	// Release resources before signalling completion so that observers of
	// Done() see the nodes already freed.
	if alloc != nil {
		j.sched.release(alloc)
	}
	if wasPending {
		j.sched.dequeue(j)
		close(j.started)
	}
	close(j.finished)
	j.sched.pump()
}

// Scheduler is a FIFO batch scheduler over a machine model.
type Scheduler struct {
	machine *cluster.Machine

	mu     sync.Mutex
	free   map[int]*cluster.Node
	queue  []*Job
	nextID int
}

// NewScheduler creates a scheduler owning all nodes of the machine.
func NewScheduler(m *cluster.Machine) *Scheduler {
	s := &Scheduler{machine: m, free: make(map[int]*cluster.Node), nextID: 1}
	for _, n := range m.Nodes {
		s.free[n.ID] = n
	}
	return s
}

// Machine exposes the underlying machine model.
func (s *Scheduler) Machine() *cluster.Machine { return s.machine }

// FreeNodes returns how many nodes are currently unallocated.
func (s *Scheduler) FreeNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// Submit enqueues a job; allocation happens FIFO as nodes free up.
func (s *Scheduler) Submit(req JobReq) (*Job, error) {
	total := 0
	for _, g := range req.HetGroups {
		if g.Nodes < 1 {
			return nil, fmt.Errorf("slurm: group %q requests %d nodes", g.Name, g.Nodes)
		}
		total += g.Nodes
	}
	if total == 0 {
		return nil, fmt.Errorf("slurm: job %q requests no resources", req.Name)
	}
	if total > len(s.machine.Nodes) {
		return nil, fmt.Errorf("slurm: job %q requests %d nodes, machine has %d", req.Name, total, len(s.machine.Nodes))
	}
	s.mu.Lock()
	j := &Job{
		ID:       s.nextID,
		Req:      req,
		sched:    s,
		state:    Pending,
		started:  make(chan struct{}),
		finished: make(chan struct{}),
	}
	s.nextID++
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	s.pump()
	return j, nil
}

// pump tries to start queued jobs in FIFO order (no backfill: a blocked head
// of queue blocks later jobs, like a conservative FIFO SLURM partition).
func (s *Scheduler) pump() {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		total := 0
		for _, g := range j.Req.HetGroups {
			total += g.Nodes
		}
		if total > len(s.free) {
			s.mu.Unlock()
			return
		}
		// Allocate nodes in ascending ID order for determinism.
		ids := make([]int, 0, len(s.free))
		for id := range s.free {
			ids = append(ids, id)
		}
		sortInts(ids)
		alloc := &Allocation{JobID: j.ID}
		k := 0
		for _, g := range j.Req.HetGroups {
			set := NodeSet{Group: g.Name}
			for i := 0; i < g.Nodes; i++ {
				node := s.free[ids[k]]
				delete(s.free, ids[k])
				set.Nodes = append(set.Nodes, node)
				k++
			}
			alloc.Groups = append(alloc.Groups, set)
		}
		s.queue = s.queue[1:]
		s.mu.Unlock()

		j.mu.Lock()
		j.state = Running
		j.alloc = alloc
		j.start = time.Now()
		if j.Req.Walltime > 0 {
			j.timer = time.AfterFunc(j.Req.Walltime, func() { j.finish(TimedOut) })
		}
		close(j.started)
		j.mu.Unlock()
	}
}

func (s *Scheduler) release(a *Allocation) {
	s.mu.Lock()
	for _, g := range a.Groups {
		for _, n := range g.Nodes {
			s.free[n.ID] = n
		}
	}
	s.mu.Unlock()
}

func (s *Scheduler) dequeue(j *Job) {
	s.mu.Lock()
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k] < v[k-1]; k-- {
			v[k], v[k-1] = v[k-1], v[k]
		}
	}
}
