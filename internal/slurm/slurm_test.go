package slurm

import (
	"testing"
	"time"

	"qfw/internal/cluster"
)

func TestHetGroupAllocation(t *testing.T) {
	s := NewScheduler(cluster.Frontier(4))
	job, err := s.Submit(JobReq{
		Name: "qfw",
		HetGroups: []GroupReq{
			{Name: "hetgroup-0", Nodes: 1},
			{Name: "hetgroup-1", Nodes: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := job.WaitStart()
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Group(0).Nodes) != 1 || len(alloc.Group(1).Nodes) != 3 {
		t.Fatalf("group sizes %d/%d", len(alloc.Group(0).Nodes), len(alloc.Group(1).Nodes))
	}
	// Disjoint nodes.
	seen := map[int]bool{}
	for _, g := range alloc.Groups {
		for _, n := range g.Nodes {
			if seen[n.ID] {
				t.Fatalf("node %d allocated twice", n.ID)
			}
			seen[n.ID] = true
		}
	}
	if s.FreeNodes() != 0 {
		t.Fatalf("free nodes %d, want 0", s.FreeNodes())
	}
	job.Complete()
	if s.FreeNodes() != 4 {
		t.Fatalf("nodes not released: %d free", s.FreeNodes())
	}
	if job.State() != Completed {
		t.Fatalf("state %s", job.State())
	}
}

func TestFIFOQueueing(t *testing.T) {
	s := NewScheduler(cluster.Frontier(2))
	j1, err := s.Submit(JobReq{Name: "a", HetGroups: []GroupReq{{Name: "g", Nodes: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.WaitStart(); err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(JobReq{Name: "b", HetGroups: []GroupReq{{Name: "g", Nodes: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if j2.State() != Pending {
		t.Fatalf("j2 should be pending while j1 holds all nodes, got %s", j2.State())
	}
	j1.Complete()
	if _, err := j2.WaitStart(); err != nil {
		t.Fatal(err)
	}
	j2.Complete()
}

func TestOversizedJobRejected(t *testing.T) {
	s := NewScheduler(cluster.Frontier(2))
	if _, err := s.Submit(JobReq{Name: "big", HetGroups: []GroupReq{{Name: "g", Nodes: 3}}}); err == nil {
		t.Fatal("expected rejection")
	}
	if _, err := s.Submit(JobReq{Name: "zero", HetGroups: []GroupReq{{Name: "g", Nodes: 0}}}); err == nil {
		t.Fatal("expected rejection of zero-node group")
	}
}

func TestWalltimeEnforcement(t *testing.T) {
	s := NewScheduler(cluster.Frontier(1))
	job, err := s.Submit(JobReq{
		Name:      "short",
		HetGroups: []GroupReq{{Name: "g", Nodes: 1}},
		Walltime:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.WaitStart(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("walltime not enforced")
	}
	if job.State() != TimedOut {
		t.Fatalf("state %s, want TIMEOUT", job.State())
	}
	if s.FreeNodes() != 1 {
		t.Fatal("timed-out job did not release nodes")
	}
}

func TestCancelPendingJob(t *testing.T) {
	s := NewScheduler(cluster.Frontier(1))
	j1, _ := s.Submit(JobReq{Name: "hold", HetGroups: []GroupReq{{Name: "g", Nodes: 1}}})
	if _, err := j1.WaitStart(); err != nil {
		t.Fatal(err)
	}
	j2, _ := s.Submit(JobReq{Name: "waiting", HetGroups: []GroupReq{{Name: "g", Nodes: 1}}})
	j2.Cancel()
	if j2.State() != Cancelled {
		t.Fatalf("state %s", j2.State())
	}
	if _, err := j2.WaitStart(); err == nil {
		t.Fatal("cancelled job should report no allocation")
	}
	j1.Complete()
	// Queue must not be blocked by the cancelled entry.
	j3, _ := s.Submit(JobReq{Name: "next", HetGroups: []GroupReq{{Name: "g", Nodes: 1}}})
	if _, err := j3.WaitStart(); err != nil {
		t.Fatal(err)
	}
	j3.Complete()
}
