package dqaoa

import (
	"math/rand"
	"testing"

	"qfw/internal/qaoa"
	"qfw/internal/qubo"
)

func TestSyncSolveIsDeterministic(t *testing.T) {
	// With a fixed seed and synchronous dispatch, two solves must agree
	// bit-for-bit (reproducibility is a core claim of the framework).
	rng := rand.New(rand.NewSource(11))
	q := qubo.Metamaterial(14, rng)
	cfg := Config{
		SubQSize: 6, NSubQ: 3, MaxIter: 3, Patience: 3,
		Async: false, Seed: 7, Shots: 128, MaxEvals: 12,
	}
	a, err := Solve(q, qaoa.LocalRunner{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(q, qaoa.LocalRunner{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy {
		t.Fatalf("non-deterministic energies: %g vs %g", a.Energy, b.Energy)
	}
	for i := range a.Bits {
		if a.Bits[i] != b.Bits[i] {
			t.Fatalf("non-deterministic bits at %d", i)
		}
	}
	if a.Iterations != b.Iterations || a.SubSolves != b.SubSolves {
		t.Fatalf("non-deterministic loop structure: %d/%d vs %d/%d",
			a.Iterations, a.SubSolves, b.Iterations, b.SubSolves)
	}
}

func TestPatienceStopsEarly(t *testing.T) {
	// A trivially optimal QUBO (all-zero couplings, positive diagonal) is
	// solved immediately; patience must end the loop before MaxIter.
	q := qubo.New(8)
	for i := 0; i < 8; i++ {
		q.Q[i][i] = 1 // optimum is all zeros
	}
	res, err := Solve(q, qaoa.LocalRunner{}, Config{
		SubQSize: 4, NSubQ: 2, MaxIter: 50, Patience: 2,
		Seed: 3, Shots: 64, MaxEvals: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 50 {
		t.Fatalf("patience did not stop the loop: %d iterations", res.Iterations)
	}
	if res.Energy > 1e-9 {
		t.Fatalf("trivial QUBO not solved: %g", res.Energy)
	}
}
