// Package dqaoa implements the Distributed Quantum Approximate Optimization
// Algorithm of Kim et al. as integrated with QFw in the paper: a large QUBO
// is decomposed into sub-QUBOs needing far fewer qubits, the sub-problems
// are solved concurrently through asynchronous QFw submissions (the
// workload is I/O-bound, matching the paper's threading-based client), and
// accepted coordinate updates are aggregated into the global solution until
// convergence.
//
// Each sub-QAOA evaluates its per-iteration candidate sets through the
// batched execution path (qaoa.BatchRunner) when the runner supports it.
// Besides cutting RPC round trips, this is what makes the async dispatch
// genuinely overlap: every sub-solve blocks at its batch collect points
// instead of monopolizing the processor, so sibling sub-QAOAs interleave
// even on a single core — the "about four concurrent sub-QAOAs" shape of
// the paper's Fig. 5.
package dqaoa

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qfw/internal/optimize"
	"qfw/internal/qaoa"
	"qfw/internal/qubo"
	"qfw/internal/trace"
)

// Decomposer names the decomposition strategy.
type Decomposer string

// Decomposition strategies (Sec. 4.2: "random partitioning or decomposition
// methods directed by an impact factor").
const (
	DecomposeRandom Decomposer = "random"
	DecomposeImpact Decomposer = "impact"
)

// Config tunes a DQAOA solve. SubQSize and NSubQ follow Table 2's
// (subqsize, nsubq) notation.
type Config struct {
	SubQSize   int
	NSubQ      int
	MaxIter    int        // outer iterations, default 8
	Patience   int        // stop after this many non-improving iterations, default 2
	Decomposer Decomposer // default random
	Async      bool       // concurrent sub-problem dispatch (default true path)
	Seed       int64

	// QAOA settings per sub-problem.
	P        int
	Shots    int
	MaxEvals int

	// Recorder receives per-sub-QAOA spans for the Fig. 5 timeline.
	Recorder *trace.Recorder
}

func (c *Config) fill() error {
	if c.SubQSize < 2 {
		return fmt.Errorf("dqaoa: subqsize %d too small", c.SubQSize)
	}
	if c.NSubQ < 1 {
		return fmt.Errorf("dqaoa: nsubq %d too small", c.NSubQ)
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 8
	}
	if c.Patience <= 0 {
		c.Patience = 2
	}
	if c.Decomposer == "" {
		c.Decomposer = DecomposeRandom
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.P <= 0 {
		c.P = 1
	}
	if c.Shots <= 0 {
		c.Shots = 256
	}
	if c.MaxEvals <= 0 {
		c.MaxEvals = 30
	}
	return nil
}

// Result summarizes a DQAOA solve.
type Result struct {
	Bits       []int
	Energy     float64
	Iterations int
	SubSolves  int
	Quality    float64 // vs. the classical reference (1 = optimal)
	Elapsed    time.Duration
}

// Solve runs the decompose → concurrent sub-solve → aggregate loop against
// the given runner (a QFw frontend or a local engine).
func Solve(q *qubo.QUBO, runner qaoa.Runner, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()

	global := make([]int, q.N)
	for i := range global {
		global[i] = rng.Intn(2)
	}
	bestE := q.Energy(global)
	subSolves := 0
	stale := 0
	iters := 0
	for iter := 0; iter < cfg.MaxIter && stale < cfg.Patience; iter++ {
		iters++
		var groups qubo.Decomposition
		if cfg.Decomposer == DecomposeImpact {
			groups = q.ImpactDecomposition(cfg.SubQSize, cfg.NSubQ)
		} else {
			groups = qubo.RandomDecomposition(q.N, cfg.SubQSize, cfg.NSubQ, rng)
		}
		type subResult struct {
			vars []int
			bits []int
			err  error
		}
		results := make([]subResult, len(groups))
		solveOne := func(g int, vars []int, seed int64) subResult {
			var finish func()
			if cfg.Recorder != nil {
				finish = cfg.Recorder.Span(
					fmt.Sprintf("subqaoa-%d", g),
					fmt.Sprintf("worker-%d", g))
			}
			sub := q.SubQUBO(vars, global)
			res, err := qaoa.Solve(sub, runner, qaoa.Options{
				P:        cfg.P,
				Shots:    cfg.Shots,
				MaxEvals: cfg.MaxEvals,
				Seed:     seed,
			})
			if finish != nil {
				finish()
			}
			if err != nil {
				return subResult{vars: vars, err: err}
			}
			return subResult{vars: vars, bits: res.Bits}
		}
		if cfg.Async {
			// Concurrent dispatch: one goroutine per sub-QUBO, mirroring the
			// paper's threading-module client over async RPCs. Each sub-solve
			// issues batched submissions and blocks on their collection, so
			// the goroutines overlap regardless of core count.
			var wg sync.WaitGroup
			for g, vars := range groups {
				wg.Add(1)
				go func(g int, vars []int, seed int64) {
					defer wg.Done()
					results[g] = solveOne(g, vars, seed)
				}(g, vars, cfg.Seed+int64(iter*1000+g))
			}
			wg.Wait()
		} else {
			for g, vars := range groups {
				results[g] = solveOne(g, vars, cfg.Seed+int64(iter*1000+g))
			}
		}
		improved := false
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
			subSolves++
			// Aggregation: accept the coordinate update if it lowers the
			// global energy (greedy, evaluated against the live solution).
			candidate := append([]int(nil), global...)
			for k, v := range r.vars {
				candidate[v] = r.bits[k]
			}
			if e := q.Energy(candidate); e < bestE {
				bestE = e
				copy(global, candidate)
				improved = true
			}
		}
		if improved {
			stale = 0
		} else {
			stale++
		}
	}
	refBits, refE := optimize.Reference(q, rand.New(rand.NewSource(cfg.Seed+555)))
	_ = refBits
	// Worst energy for quality normalization: flip of the reference is a
	// cheap upper bound; use SA maximization for robustness.
	worst := worstEnergy(q, rng)
	return &Result{
		Bits:       global,
		Energy:     bestE,
		Iterations: iters,
		SubSolves:  subSolves,
		Quality:    optimize.SolutionQuality(bestE, refE, worst),
		Elapsed:    time.Since(start),
	}, nil
}

// worstEnergy estimates the maximum QUBO energy by annealing the negated
// problem.
func worstEnergy(q *qubo.QUBO, rng *rand.Rand) float64 {
	neg := qubo.New(q.N)
	for i := 0; i < q.N; i++ {
		for j := 0; j < q.N; j++ {
			neg.Q[i][j] = -q.Q[i][j]
		}
	}
	_, e := optimize.SimulatedAnnealing(neg, 120, rng)
	return -e
}
