package dqaoa

import (
	"math/rand"
	"testing"

	"qfw/internal/optimize"
	"qfw/internal/qaoa"
	"qfw/internal/qubo"
	"qfw/internal/trace"
)

func TestSolveTable2Config(t *testing.T) {
	// QUBO-20 with (subqsize=8, nsubq=3): unit-scale version of Fig. 4.
	rng := rand.New(rand.NewSource(1))
	q := qubo.Metamaterial(20, rng)
	res, err := Solve(q, qaoa.LocalRunner{}, Config{
		SubQSize: 8, NSubQ: 3, MaxIter: 6, Seed: 2,
		Shots: 256, MaxEvals: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bits) != 20 {
		t.Fatalf("solution width %d", len(res.Bits))
	}
	_, exact := optimize.BruteForce(q)
	fid := res.Quality
	if fid < 0.85 {
		t.Fatalf("DQAOA quality %.3f too low (E=%g exact=%g)", fid, res.Energy, exact)
	}
	if res.SubSolves < 3 {
		t.Fatalf("sub-solves %d", res.SubSolves)
	}
}

func TestAsyncMatchesSyncQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := qubo.Metamaterial(16, rng)
	syncRes, err := Solve(q, qaoa.LocalRunner{}, Config{
		SubQSize: 6, NSubQ: 3, MaxIter: 4, Seed: 5, Async: false, Shots: 200, MaxEvals: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := Solve(q, qaoa.LocalRunner{}, Config{
		SubQSize: 6, NSubQ: 3, MaxIter: 4, Seed: 5, Async: true, Shots: 200, MaxEvals: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if asyncRes.Quality < syncRes.Quality-0.15 {
		t.Fatalf("async quality %.3f much worse than sync %.3f", asyncRes.Quality, syncRes.Quality)
	}
}

func TestImpactDecomposerRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := qubo.Metamaterial(18, rng)
	res, err := Solve(q, qaoa.LocalRunner{}, Config{
		SubQSize: 6, NSubQ: 3, MaxIter: 4, Seed: 6,
		Decomposer: DecomposeImpact, Shots: 200, MaxEvals: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < 0.7 {
		t.Fatalf("impact decomposition quality %.3f", res.Quality)
	}
}

func TestRecorderCapturesConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := qubo.Metamaterial(16, rng)
	rec := trace.NewRecorder()
	_, err := Solve(q, qaoa.LocalRunner{}, Config{
		SubQSize: 5, NSubQ: 4, MaxIter: 2, Patience: 5, Seed: 8, Async: true,
		Shots: 128, MaxEvals: 12, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	// With async dispatch of 4 sub-QUBOs, concurrency must exceed 1 — the
	// Fig. 5 observation ("about four concurrently").
	if got := rec.MaxConcurrency("subqaoa"); got < 2 {
		t.Fatalf("max concurrency %d, want >= 2", got)
	}
}

func TestConfigValidation(t *testing.T) {
	q := qubo.New(4)
	if _, err := Solve(q, qaoa.LocalRunner{}, Config{SubQSize: 1, NSubQ: 2}); err == nil {
		t.Fatal("subqsize 1 accepted")
	}
	if _, err := Solve(q, qaoa.LocalRunner{}, Config{SubQSize: 2, NSubQ: 0}); err == nil {
		t.Fatal("nsubq 0 accepted")
	}
}

func TestAggregationNeverWorsens(t *testing.T) {
	// The greedy aggregation must end at an energy no worse than the
	// initial random assignment's energy.
	rng := rand.New(rand.NewSource(9))
	q := qubo.Random(14, 0.6, 1, rng)
	initRng := rand.New(rand.NewSource(10))
	initBits := make([]int, q.N)
	for i := range initBits {
		initBits[i] = initRng.Intn(2)
	}
	initE := q.Energy(initBits)
	res, err := Solve(q, qaoa.LocalRunner{}, Config{
		SubQSize: 6, NSubQ: 3, MaxIter: 3, Seed: 10, Shots: 128, MaxEvals: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > initE+1e-9 {
		t.Fatalf("final %g worse than initial %g", res.Energy, initE)
	}
}
