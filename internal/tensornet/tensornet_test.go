package tensornet

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qfw/internal/circuit"
	"qfw/internal/statevec"
)

func TestGHZAmplitudes(t *testing.T) {
	c := circuit.New(4)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3)
	net, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	amps, err := net.ContractAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt2
	if cmplx.Abs(amps[0]-complex(want, 0)) > 1e-10 {
		t.Fatalf("amp[0] = %v", amps[0])
	}
	if cmplx.Abs(amps[15]-complex(want, 0)) > 1e-10 {
		t.Fatalf("amp[15] = %v", amps[15])
	}
	for i := 1; i < 15; i++ {
		if cmplx.Abs(amps[i]) > 1e-10 {
			t.Fatalf("amp[%d] = %v, want 0", i, amps[i])
		}
	}
}

func randomCircuit(n, depth int, rng *rand.Rand) *circuit.Circuit {
	kinds := []circuit.Kind{circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindS,
		circuit.KindT, circuit.KindRX, circuit.KindRY, circuit.KindRZ,
		circuit.KindCX, circuit.KindCZ, circuit.KindCRZ, circuit.KindSWAP,
		circuit.KindRZZ, circuit.KindCCX}
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		k := kinds[rng.Intn(len(kinds))]
		if k.NumQubits() > n {
			continue
		}
		qs := rng.Perm(n)[:k.NumQubits()]
		g := circuit.Gate{Kind: k, Qubits: qs}
		for j := 0; j < k.NumParams(); j++ {
			g.Params = append(g.Params, circuit.Bound(rng.NormFloat64()*2))
		}
		c.Append(g)
	}
	return c
}

func TestQuickMatchesStatevector(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := randomCircuit(n, 20, rng)
		net, err := Build(c)
		if err != nil {
			return false
		}
		amps, err := net.ContractAll()
		if err != nil {
			return false
		}
		s, _ := statevec.RunCircuit(circuit.Transpile(c, circuit.BasicGateSet()), 1, rand.New(rand.NewSource(0)))
		for i := range amps {
			if cmplx.Abs(amps[i]-s.Amp[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestSlicingPartitionsOutputSpace(t *testing.T) {
	// Fixing the top output variable to 0 and 1 must reproduce the two
	// halves of the amplitude vector — the distribution mechanism for the
	// qtensor backend's MPI mode.
	rng := rand.New(rand.NewSource(2))
	c := randomCircuit(4, 15, rng)
	net, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	full, err := net.ContractAll()
	if err != nil {
		t.Fatal(err)
	}
	topVar := net.Out[3] // qubit 3 = most significant bit
	for bit := 0; bit < 2; bit++ {
		sliced := net.Slice(map[int]int{topVar: bit})
		sliced.Out[3] = -1 // no longer open
		amps, err := sliced.ContractAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(amps) != 8 {
			t.Fatalf("slice size %d, want 8", len(amps))
		}
		for i := 0; i < 8; i++ {
			want := full[bit*8+i]
			if cmplx.Abs(amps[i]-want) > 1e-9 {
				t.Fatalf("bit %d slice amp[%d] = %v, want %v", bit, i, amps[i], want)
			}
		}
	}
}

func TestSamplingGHZ(t *testing.T) {
	c := circuit.New(5)
	c.H(0)
	for i := 0; i+1 < 5; i++ {
		c.CX(i, i+1)
	}
	counts, err := Simulate(c, 1000, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for key := range counts {
		if key != "00000" && key != "11111" {
			t.Fatalf("unexpected GHZ outcome %q", key)
		}
	}
}

func TestOpenQubitCap(t *testing.T) {
	n := &Network{NQubits: MaxOpenQubits + 1}
	n.Out = make([]int, MaxOpenQubits+1)
	for i := range n.Out {
		n.Out[i] = i
	}
	if _, err := n.ContractAll(); err == nil {
		t.Fatal("expected cap error")
	}
}

func TestUnboundRejected(t *testing.T) {
	c := circuit.New(2)
	c.RX(0, circuit.Sym("x", 1))
	if _, err := Build(c); err == nil {
		t.Fatal("expected unbound error")
	}
}

func TestPeakRankGrowsWithEntanglement(t *testing.T) {
	// A dense all-to-all circuit should drive peak rank higher than a chain.
	chain := circuit.New(8)
	for i := 0; i+1 < 8; i++ {
		chain.H(i).CX(i, i+1)
	}
	netA, _ := Build(chain)
	if _, err := netA.ContractAll(); err != nil {
		t.Fatal(err)
	}

	dense := circuit.New(8)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		a, b := rng.Intn(8), rng.Intn(8)
		if a == b {
			continue
		}
		dense.H(a).CX(a, b).RZZ(a, b, circuit.Bound(0.3))
	}
	netB, _ := Build(dense)
	if _, err := netB.ContractAll(); err != nil {
		t.Fatal(err)
	}
	if netB.PeakRank < netA.PeakRank {
		t.Fatalf("dense circuit peak rank %d < chain %d", netB.PeakRank, netA.PeakRank)
	}
}

func TestSumOut(t *testing.T) {
	// T[a,b] summed over a gives marginal vector.
	tt := NewTensor([]int{7, 9})
	tt.Data[0b00] = 1
	tt.Data[0b01] = 2
	tt.Data[0b10] = 3
	tt.Data[0b11] = 4
	out := sumOut(tt, 7)
	if len(out.Labels) != 1 || out.Labels[0] != 9 {
		t.Fatalf("labels %v", out.Labels)
	}
	if out.Data[0] != 4 || out.Data[1] != 6 {
		t.Fatalf("data %v", out.Data)
	}
}
