// Package tensornet implements a gate-tensor-network circuit simulator in
// the style of QTensor/qtree: the circuit becomes a network of small tensors
// over wire variables, which is contracted by greedy bucket elimination.
// The framework uses it — as the paper does QTensor — for full-state
// contraction, where the final open indexes make the cost grow as 2^n; the
// engine is excellent for shallow, tree-like circuits and degrades sharply
// on deep or densely connected ones (visible past ~24 qubits in Fig. 3).
//
// Variable slicing (fixing a subset of the open output variables) provides
// the distribution mechanism used by the qtensor backend's MPI mode: each
// rank contracts a different slice of the output space.
package tensornet

import (
	"fmt"
	"math/rand"
	"sort"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
)

// Tensor is a dense tensor with one binary index per label.
type Tensor struct {
	Labels []int
	Data   []complex128
}

// NewTensor allocates a tensor over the given labels (dims all 2).
func NewTensor(labels []int) *Tensor {
	return &Tensor{Labels: append([]int(nil), labels...), Data: make([]complex128, 1<<uint(len(labels)))}
}

// Rank returns the number of indexes.
func (t *Tensor) Rank() int { return len(t.Labels) }

// Network is a tensor network built from a circuit. Out[i] is the open
// output variable of qubit i.
type Network struct {
	NQubits int
	Tensors []*Tensor
	Out     []int

	// PeakRank records the largest intermediate tensor rank seen during
	// contraction — the standard cost metric for TN simulators.
	PeakRank int

	nextVar int
}

// MaxOpenQubits caps full-state contraction (2^n amplitudes); beyond this the
// engine reports infeasibility, mirroring the walltime/memory cutoffs the
// paper marks as missing points.
const MaxOpenQubits = 26

// MaxIntermediateRank caps the rank of intermediate tensors produced during
// elimination. Deep or densely connected circuits drive the effective
// treewidth — and thus intermediate tensor sizes — exponentially high; real
// TN simulators hit the same wall (the paper: QTensor "slows sharply on
// deeper or densely connected topologies").
const MaxIntermediateRank = 24

// Build converts a bound circuit into a tensor network. Measurements and
// barriers are ignored (terminal sampling happens after contraction).
func Build(c *circuit.Circuit) (*Network, error) {
	if !c.IsBound() {
		return nil, fmt.Errorf("tensornet: circuit has unbound parameters")
	}
	net := &Network{NQubits: c.NQubits}
	wire := make([]int, c.NQubits)
	for q := range wire {
		v := net.fresh()
		wire[q] = v
		// |0> initial vector.
		t := NewTensor([]int{v})
		t.Data[0] = 1
		net.Tensors = append(net.Tensors, t)
	}
	tc := circuit.Transpile(c.StripMeasurements(), tnGateSet())
	for _, g := range tc.Gates {
		switch g.Kind.NumQubits() {
		case 1:
			if g.Kind == circuit.KindI {
				continue
			}
			var m [2][2]complex128
			if g.Kind == circuit.KindUnitary {
				m = [2][2]complex128{
					{g.Matrix.At(0, 0), g.Matrix.At(0, 1)},
					{g.Matrix.At(1, 0), g.Matrix.At(1, 1)}}
			} else {
				var theta float64
				if g.Kind.NumParams() == 1 {
					theta = g.Angle()
				}
				m = circuit.Matrix1Q(g.Kind, theta)
			}
			q := g.Qubits[0]
			in := wire[q]
			out := net.fresh()
			t := NewTensor([]int{out, in})
			for o := 0; o < 2; o++ {
				for i := 0; i < 2; i++ {
					t.Data[o*2+i] = m[o][i]
				}
			}
			net.Tensors = append(net.Tensors, t)
			wire[q] = out
		case 2:
			var m *linalg.Matrix
			if g.Kind == circuit.KindUnitary {
				m = g.Matrix
			} else {
				var theta float64
				if g.Kind.NumParams() == 1 {
					theta = g.Angle()
				}
				m = circuit.Matrix2Q(g.Kind, theta)
			}
			a, b := g.Qubits[0], g.Qubits[1]
			ina, inb := wire[a], wire[b]
			outa, outb := net.fresh(), net.fresh()
			t := NewTensor([]int{outa, outb, ina, inb})
			for oa := 0; oa < 2; oa++ {
				for ob := 0; ob < 2; ob++ {
					for ia := 0; ia < 2; ia++ {
						for ib := 0; ib < 2; ib++ {
							t.Data[((oa*2+ob)*2+ia)*2+ib] = m.At(oa*2+ob, ia*2+ib)
						}
					}
				}
			}
			net.Tensors = append(net.Tensors, t)
			wire[a], wire[b] = outa, outb
		default:
			return nil, fmt.Errorf("tensornet: gate %s survived transpile", g.Kind.Name())
		}
	}
	net.Out = wire
	return net, nil
}

func tnGateSet() circuit.GateSet {
	set := circuit.BasicGateSet()
	set[circuit.KindSWAP] = true
	set[circuit.KindRZZ] = true
	set[circuit.KindRXX] = true
	set[circuit.KindUnitary] = true
	return set
}

func (n *Network) fresh() int {
	v := n.nextVar
	n.nextVar++
	return v
}

// Slice returns a copy of the network with the given output variables fixed
// to bit values: tensors are projected, and the fixed variables disappear
// from the open set. This is the qtree-style slicing used for distribution.
func (n *Network) Slice(fixed map[int]int) *Network {
	out := &Network{NQubits: n.NQubits, Out: append([]int(nil), n.Out...), nextVar: n.nextVar}
	for _, t := range n.Tensors {
		out.Tensors = append(out.Tensors, project(t, fixed))
	}
	return out
}

// project fixes any labels of t present in fixed.
func project(t *Tensor, fixed map[int]int) *Tensor {
	var keep []int
	hit := false
	for _, l := range t.Labels {
		if _, ok := fixed[l]; ok {
			hit = true
		} else {
			keep = append(keep, l)
		}
	}
	if !hit {
		cp := NewTensor(t.Labels)
		copy(cp.Data, t.Data)
		return cp
	}
	out := NewTensor(keep)
	for idx := range out.Data {
		// Build the source index from kept assignment + fixed values.
		src := 0
		pos := len(keep) - 1
		assign := map[int]int{}
		tmp := idx
		for i := len(keep) - 1; i >= 0; i-- {
			assign[keep[i]] = tmp & 1
			tmp >>= 1
			_ = pos
		}
		for _, l := range t.Labels {
			src <<= 1
			if v, ok := fixed[l]; ok {
				src |= v
			} else {
				src |= assign[l]
			}
		}
		out.Data[idx] = t.Data[src]
	}
	return out
}

// contractPair contracts two tensors, summing over every shared label that
// is not in keepOpen. The inner loops avoid maps: for each operand, the
// contribution of every (output bit, sum bit) to its flat index is
// precomputed as a bitmask table.
func contractPair(a, b *Tensor, keepOpen map[int]bool) *Tensor {
	shared := map[int]bool{}
	inB := map[int]bool{}
	for _, l := range b.Labels {
		inB[l] = true
	}
	for _, l := range a.Labels {
		if inB[l] && !keepOpen[l] {
			shared[l] = true
		}
	}
	var outLabels, sumLabels []int
	seen := map[int]bool{}
	for _, l := range a.Labels {
		if shared[l] {
			continue
		}
		if !seen[l] {
			outLabels = append(outLabels, l)
			seen[l] = true
		}
	}
	for _, l := range b.Labels {
		if shared[l] || seen[l] {
			continue
		}
		outLabels = append(outLabels, l)
		seen[l] = true
	}
	for l := range shared {
		sumLabels = append(sumLabels, l)
	}
	sort.Ints(sumLabels)
	out := NewTensor(outLabels)
	nOut := len(outLabels)
	nSum := len(sumLabels)
	// maskFor[i] is the contribution to the operand's flat index when the
	// i-th loop bit is set (loop bit i of `oi` is outLabels[nOut-1-i] etc.).
	buildMasks := func(labels []int) (outMask, sumMask []int) {
		pos := map[int]int{}
		for i, l := range labels {
			pos[l] = i
		}
		n := len(labels)
		outMask = make([]int, nOut)
		for i, l := range outLabels {
			if p, ok := pos[l]; ok {
				outMask[i] = 1 << uint(n-1-p)
			}
		}
		sumMask = make([]int, nSum)
		for i, l := range sumLabels {
			if p, ok := pos[l]; ok {
				sumMask[i] = 1 << uint(n-1-p)
			}
		}
		return outMask, sumMask
	}
	aOut, aSum := buildMasks(a.Labels)
	bOut, bSum := buildMasks(b.Labels)
	// Precompute the sum-assignment index offsets once per operand.
	aSumIdx := make([]int, 1<<uint(nSum))
	bSumIdx := make([]int, 1<<uint(nSum))
	for si := range aSumIdx {
		ai, bi := 0, 0
		for i := 0; i < nSum; i++ {
			if si&(1<<uint(nSum-1-i)) != 0 {
				ai |= aSum[i]
				bi |= bSum[i]
			}
		}
		aSumIdx[si] = ai
		bSumIdx[si] = bi
	}
	for oi := 0; oi < 1<<uint(nOut); oi++ {
		aBase, bBase := 0, 0
		for i := 0; i < nOut; i++ {
			if oi&(1<<uint(nOut-1-i)) != 0 {
				aBase |= aOut[i]
				bBase |= bOut[i]
			}
		}
		var acc complex128
		for si := range aSumIdx {
			acc += a.Data[aBase|aSumIdx[si]] * b.Data[bBase|bSumIdx[si]]
		}
		out.Data[oi] = acc
	}
	return out
}

func labelPositions(labels []int) map[int]int {
	m := make(map[int]int, len(labels))
	for i, l := range labels {
		m[l] = i
	}
	return m
}

// ContractAll eliminates every non-open variable by greedy bucket
// elimination and returns the amplitudes of the open output variables,
// indexed with qubit 0 as the least-significant bit (matching statevec).
func (n *Network) ContractAll() ([]complex128, error) {
	open := map[int]bool{}
	openCount := 0
	for _, v := range n.Out {
		if v >= 0 {
			open[v] = true
			openCount++
		}
	}
	if openCount > MaxOpenQubits {
		return nil, fmt.Errorf("tensornet: %d open qubits exceeds full-state contraction cap %d", openCount, MaxOpenQubits)
	}
	tensors := append([]*Tensor(nil), n.Tensors...)
	// Index: var -> tensor list positions.
	for {
		// Collect remaining non-open vars.
		varTensors := map[int][]int{}
		for ti, t := range tensors {
			if t == nil {
				continue
			}
			for _, l := range t.Labels {
				if !open[l] {
					varTensors[l] = append(varTensors[l], ti)
				}
			}
		}
		if len(varTensors) == 0 {
			break
		}
		// Greedy: pick the variable whose elimination yields the smallest
		// intermediate tensor.
		bestVar, bestCost := -1, 1<<62
		for v, tis := range varTensors {
			union := map[int]bool{}
			for _, ti := range tis {
				for _, l := range tensors[ti].Labels {
					union[l] = true
				}
			}
			shared := 0
			if len(tis) == 2 {
				// Count shared non-open labels (all summed at once).
				cnt := map[int]int{}
				for _, ti := range tis {
					for _, l := range tensors[ti].Labels {
						cnt[l]++
					}
				}
				for l, c := range cnt {
					if c == 2 && !open[l] {
						shared++
					}
				}
			} else {
				shared = 1
			}
			cost := 1 << uint(len(union)-shared)
			if cost < bestCost {
				bestCost, bestVar = cost, v
			}
		}
		if bestCost > 1<<uint(MaxIntermediateRank) {
			return nil, fmt.Errorf("tensornet: intermediate tensor rank exceeds cap %d (circuit treewidth too high for contraction)", MaxIntermediateRank)
		}
		tis := varTensors[bestVar]
		var merged *Tensor
		switch len(tis) {
		case 1:
			// Sum the variable out of a single tensor.
			merged = sumOut(tensors[tis[0]], bestVar)
			tensors[tis[0]] = nil
		case 2:
			merged = contractPair(tensors[tis[0]], tensors[tis[1]], open)
			tensors[tis[0]] = nil
			tensors[tis[1]] = nil
		default:
			// Should not happen with two-occurrence wiring; contract pairwise.
			merged = tensors[tis[0]]
			tensors[tis[0]] = nil
			for _, ti := range tis[1:] {
				merged = contractPair(merged, tensors[ti], open)
				tensors[ti] = nil
			}
		}
		if merged.Rank() > n.PeakRank {
			n.PeakRank = merged.Rank()
		}
		tensors = append(tensors, merged)
	}
	// Outer-product the survivors and reorder to qubit bit order.
	var final *Tensor
	for _, t := range tensors {
		if t == nil {
			continue
		}
		if final == nil {
			final = t
			continue
		}
		final = contractPair(final, t, open)
		if final.Rank() > n.PeakRank {
			n.PeakRank = final.Rank()
		}
	}
	if final == nil {
		return nil, fmt.Errorf("tensornet: empty network")
	}
	// Reorder: we want index bit q to be Out[q] (qubit 0 least significant),
	// i.e. label order [Out[n-1], ..., Out[0]].
	want := make([]int, 0, openCount)
	for q := n.NQubits - 1; q >= 0; q-- {
		if n.Out[q] >= 0 && open[n.Out[q]] {
			want = append(want, n.Out[q])
		}
	}
	reordered := reorder(final, want)
	return reordered.Data, nil
}

// sumOut sums a single variable out of one tensor.
func sumOut(t *Tensor, v int) *Tensor {
	var keep []int
	vi := -1
	for i, l := range t.Labels {
		if l == v {
			vi = i
		} else {
			keep = append(keep, l)
		}
	}
	if vi < 0 {
		return t
	}
	out := NewTensor(keep)
	n := len(t.Labels)
	for idx := range t.Data {
		// Remove bit vi from idx.
		hiBits := idx >> uint(n-vi) // bits above vi (more significant)
		loMask := (1 << uint(n-1-vi)) - 1
		lo := idx & loMask
		oidx := hiBits<<uint(n-1-vi) | lo
		out.Data[oidx] += t.Data[idx]
	}
	return out
}

// reorder permutes tensor indexes into the desired label order.
func reorder(t *Tensor, want []int) *Tensor {
	if len(want) != len(t.Labels) {
		panic("tensornet: reorder label count mismatch")
	}
	same := true
	for i := range want {
		if t.Labels[i] != want[i] {
			same = false
			break
		}
	}
	if same {
		return t
	}
	out := NewTensor(want)
	n := len(want)
	srcPos := labelPositions(t.Labels)
	// Precompute the source-bit mask for each destination bit.
	mask := make([]int, n)
	for i := 0; i < n; i++ {
		mask[i] = 1 << uint(n-1-srcPos[want[i]])
	}
	for oi := range out.Data {
		src := 0
		for i := 0; i < n; i++ {
			if oi&(1<<uint(n-1-i)) != 0 {
				src |= mask[i]
			}
		}
		out.Data[oi] = t.Data[src]
	}
	return out
}

// Simulate builds, contracts, and samples counts from a circuit.
func Simulate(c *circuit.Circuit, shots int, rng *rand.Rand) (map[string]int, error) {
	net, err := Build(c)
	if err != nil {
		return nil, err
	}
	amps, err := net.ContractAll()
	if err != nil {
		return nil, err
	}
	if shots <= 0 {
		shots = 1024
	}
	return sampleAmplitudes(amps, c.NQubits, shots, rng), nil
}

func sampleAmplitudes(amps []complex128, n, shots int, rng *rand.Rand) map[string]int {
	cum := make([]float64, len(amps))
	var acc float64
	for i, a := range amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = acc
	}
	counts := make(map[string]int)
	for s := 0; s < shots; s++ {
		r := rng.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		key := make([]byte, n)
		for q := 0; q < n; q++ {
			if lo&(1<<uint(q)) != 0 {
				key[n-1-q] = '1'
			} else {
				key[n-1-q] = '0'
			}
		}
		counts[string(key)]++
	}
	return counts
}
