package bench

import (
	"strings"
	"testing"
	"time"

	_ "qfw/internal/backends" // register all backends
	"qfw/internal/cluster"
	"qfw/internal/core"
)

func quickHarness(t *testing.T) *Harness {
	t.Helper()
	s, err := core.Launch(core.Config{
		Machine:      cluster.Frontier(3),
		CloudLatency: time.Millisecond,
		CloudJitter:  time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Teardown)
	h := NewHarness(s)
	h.Quick = true
	h.Repeats = 1
	h.Shots = 64
	return h
}

func TestCatalogMatchesTable2(t *testing.T) {
	// The catalog must carry the paper's exact size lists.
	byName := map[string]WorkloadSpec{}
	for _, spec := range Catalog {
		byName[spec.Name] = spec
	}
	ghz := byName["ghz"]
	if len(ghz.Sizes) != 9 || ghz.Sizes[0] != 4 || ghz.Sizes[8] != 32 {
		t.Fatalf("ghz sizes %v", ghz.Sizes)
	}
	hhl := byName["hhl"]
	if len(hhl.Sizes) != 7 || hhl.Sizes[0] != 5 || hhl.Sizes[6] != 17 {
		t.Fatalf("hhl sizes %v", hhl.Sizes)
	}
	if len(DQAOAConfigs) != 5 {
		t.Fatalf("dqaoa configs %v", DQAOAConfigs)
	}
}

func TestPlacementSchedule(t *testing.T) {
	if p := PlacementFor(4); p.Nodes != 1 || p.Procs != 4 {
		t.Fatalf("placement(4) = %v", p)
	}
	if p := PlacementFor(24); p.Nodes != 2 {
		t.Fatalf("placement(24) = %v", p)
	}
	if p := PlacementFor(32); p.Procs != 16 {
		t.Fatalf("placement(32) = %v", p)
	}
}

func TestWorkloadFigureGHZ(t *testing.T) {
	h := quickHarness(t)
	exp, err := h.RunWorkloadFigure("fig3a", "ghz")
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != len(Figure3Backends) {
		t.Fatalf("series %d, want %d", len(exp.Series), len(Figure3Backends))
	}
	for _, s := range exp.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Err != "" && !p.Infeasible {
				t.Fatalf("%s size %d failed: %s", s.Label, p.X, p.Err)
			}
			if p.Err == "" && p.RuntimeMS <= 0 {
				t.Fatalf("%s size %d has zero runtime", s.Label, p.X)
			}
		}
	}
	out := Render(exp)
	if !strings.Contains(out, "NWQ-Sim") || !strings.Contains(out, "IonQ (Simulator)") {
		t.Fatalf("render missing series:\n%s", out)
	}
	if csv := CSV(exp); !strings.HasPrefix(csv, "series,") {
		t.Fatal("csv header missing")
	}
}

func TestStrongScalingShape(t *testing.T) {
	h := quickHarness(t)
	exp, err := h.RunStrongScaling(12, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 3 {
		t.Fatalf("series %d", len(exp.Series))
	}
	for _, s := range exp.Series {
		for _, p := range s.Points {
			if p.Err != "" {
				t.Fatalf("%s procs=%d: %s", s.Label, p.X, p.Err)
			}
		}
	}
}

func TestQAOAFigure(t *testing.T) {
	h := quickHarness(t)
	rt, fid, err := h.RunQAOAFigure()
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Series) != len(QAOABackends) || len(fid.Series) != len(QAOABackends) {
		t.Fatalf("series %d/%d", len(rt.Series), len(fid.Series))
	}
	for _, s := range fid.Series {
		for _, p := range s.Points {
			if p.Err != "" {
				t.Fatalf("%s size %d: %s", s.Label, p.X, p.Err)
			}
			if p.Fidelity < 90 {
				t.Fatalf("%s size %d fidelity %.1f%% — paper reports >=95%%", s.Label, p.X, p.Fidelity)
			}
		}
	}
}

func TestDQAOAFigureCloudSlower(t *testing.T) {
	h := quickHarness(t)
	exp, err := h.RunDQAOAFigure()
	if err != nil {
		t.Fatal(err)
	}
	local := SeriesByLabel(exp, "NWQ-Sim")
	cloud := SeriesByLabel(exp, "IonQ (Simulator)")
	if local == nil || cloud == nil {
		t.Fatalf("missing series in %v", exp.Series)
	}
	// Fig. 4 shape: the cloud path is slower for every configuration.
	for i := range local.Points {
		lp, cp := local.Points[i], cloud.Points[i]
		if lp.Err != "" || cp.Err != "" {
			t.Fatalf("errors: %q %q", lp.Err, cp.Err)
		}
		if cp.RuntimeMS <= lp.RuntimeMS {
			t.Fatalf("config %s: cloud %.1fms not slower than local %.1fms",
				lp.Placement, cp.RuntimeMS, lp.RuntimeMS)
		}
	}
}

func TestTimelineFigure(t *testing.T) {
	h := quickHarness(t)
	exp, recs, err := h.RunTimelineFigure(DQAOAConfig{QUBOSize: 14, SubQSize: 6, NSubQ: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "max concurrent") {
		t.Fatalf("timeline text missing:\n%s", exp.Text)
	}
	rec := recs["NWQ-Sim"]
	if rec == nil || rec.Len() == 0 {
		t.Fatal("no local recorder events")
	}
	// Fig. 5's concurrency observation: multiple sub-QAOAs in flight.
	if c := rec.MaxConcurrency("subqaoa"); c < 2 {
		t.Fatalf("local concurrency %d, want >= 2", c)
	}
}

func TestCapabilityAndCatalogTables(t *testing.T) {
	h := quickHarness(t)
	t1, err := h.RunCapabilityTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"nwqsim", "aer", "tnqvm", "qtensor", "ionq"} {
		if !strings.Contains(t1.Text, name) {
			t.Fatalf("table1 missing %s:\n%s", name, t1.Text)
		}
	}
	t2 := h.RunBenchmarkCatalog()
	if !strings.Contains(t2.Text, "dqaoa") || !strings.Contains(t2.Text, "30:(16,2)") {
		t.Fatalf("table2 wrong:\n%s", t2.Text)
	}
}

func TestWinnersAndXs(t *testing.T) {
	e := &Experiment{
		Series: []Series{
			{Label: "A", Points: []Point{{X: 4, RuntimeMS: 10}, {X: 8, RuntimeMS: 50}}},
			{Label: "B", Points: []Point{{X: 4, RuntimeMS: 20}, {X: 8, RuntimeMS: 30}}},
		},
	}
	w := Winners(e)
	if w[4] != "A" || w[8] != "B" {
		t.Fatalf("winners %v", w)
	}
	xs := SortedXs(e)
	if len(xs) != 2 || xs[0] != 4 || xs[1] != 8 {
		t.Fatalf("xs %v", xs)
	}
}
