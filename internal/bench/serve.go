package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"qfw/internal/core"
	"qfw/internal/qaoa"
	"qfw/internal/qubo"
	"qfw/internal/serve"
	"qfw/internal/workloads"
)

// serveRequest is one item of the load generator's hot set: a submission the
// clients keep re-issuing (the repeated-submission traffic the serving layer
// is built for).
type serveRequest struct {
	spec     core.CircuitSpec
	bindings []core.Bindings
	opts     core.RunOptions
}

// serveHotSet builds the request mix: analytic QAOA expectation queries
// (cacheable across seeds and coalescible into one batch) interleaved with
// seeded GHZ sampling runs (exact-hit cacheable, never coalesced — the seed
// schedule is load-bearing). Together they exercise both cache classes and
// the admission window.
func (h *Harness) serveHotSet() ([]serveRequest, error) {
	n := 10
	if h.Quick {
		n = 8
	}
	rng := rand.New(rand.NewSource(h.Seed + 83))
	q := qubo.Random(n, 0.5, 1.0, rng)
	ham, _ := q.CostHamiltonian()
	ansatz := qaoa.BuildAnsatz(ham, 2)
	pspec, err := core.SpecFromParametric(ansatz)
	if err != nil {
		return nil, err
	}
	obs := qaoa.ObservableFromQUBO(q)

	ghz, err := core.SpecFromCircuit(workloads.GHZ(n + 2))
	if err != nil {
		return nil, err
	}

	var hot []serveRequest
	prng := rand.New(rand.NewSource(h.Seed + 19))
	for i := 0; i < 4; i++ {
		params := make([]float64, 4) // p=2: two gammas, two betas
		for j := range params {
			params[j] = 0.1 + 0.8*prng.Float64()
		}
		hot = append(hot, serveRequest{
			spec:     pspec,
			bindings: []core.Bindings{qaoa.BindParams(params)},
			opts:     core.RunOptions{Subbackend: "statevector", Observable: obs},
		})
		hot = append(hot, serveRequest{
			spec: ghz,
			opts: core.RunOptions{Shots: h.Shots, Seed: h.Seed + int64(i), Subbackend: "statevector"},
		})
	}
	return hot, nil
}

// serveLoad drives one serving-layer configuration with `clients` concurrent
// clients, each cycling through the hot set `reqs` times, and reports the
// latency distribution and sustained throughput.
func serveLoad(srv *serve.Server, hot []serveRequest, clients, reqs int) (Point, error) {
	latencies := make([][]float64, clients)
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("client-%02d", c)
			lats := make([]float64, 0, reqs)
			for i := 0; i < reqs; i++ {
				// Clients start at staggered offsets so the instantaneous mix
				// stays heterogeneous.
				req := hot[(c+i)%len(hot)]
				t0 := time.Now()
				_, errs, _, err := srv.Exec(tenant, req.spec, req.bindings, req.opts)
				if err == nil {
					for _, e := range errs {
						if e != "" {
							err = fmt.Errorf("element error: %s", e)
							break
						}
					}
				}
				if err != nil {
					errc <- fmt.Errorf("client %d req %d: %w", c, i, err)
					return
				}
				lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errc:
		return Point{}, err
	default:
	}

	var all []float64
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Float64s(all)
	mean, std := meanStd(all)
	return Point{
		X:          clients,
		Placement:  fmt.Sprintf("c=%d", clients),
		RuntimeMS:  mean,
		StdMS:      std,
		MinMS:      all[0],
		P50MS:      percentile(all, 50),
		P99MS:      percentile(all, 99),
		Throughput: float64(len(all)) / wall.Seconds(),
	}, nil
}

// percentile returns the p-th percentile (nearest-rank) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// RunServeAblation measures the serving-layer ablation of the catalog: the
// same repeated-submission workload (analytic QAOA queries + seeded GHZ
// sampling, a hot set the clients cycle through) pushed through four serving
// configurations — cache+coalescing, cache only, coalescing only, and
// neither — at increasing concurrent client counts. Every configuration
// fronts the same aer QPM, so only the serving policy differs. A final
// bounded-queue probe overloads a deliberately tiny configuration and counts
// the typed load-shed rejections.
func (h *Harness) RunServeAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "serving-layer" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-serve",
		Title: "Multi-tenant serving layer: cache and coalescing toggled under concurrent load (" + spec.Describe + ")",
		Notes: "X axis is the concurrent client count; all series replay the identical hot-set workload against the same aer QPM.",
	}
	qpm := h.Session.QPM("aer")
	if qpm == nil {
		return nil, fmt.Errorf("bench: session has no aer QPM")
	}
	hot, err := h.serveHotSet()
	if err != nil {
		return nil, err
	}
	reqs := 128
	if h.Quick {
		reqs = 64
	}

	window := 2 * time.Millisecond
	configs := []struct {
		label string
		cfg   serve.Config
	}{
		{"cache+coalesce", serve.Config{Window: window}},
		{"cache only", serve.Config{}},
		{"coalesce only", serve.Config{CacheCap: -1, Window: window}},
		{"no cache", serve.Config{CacheCap: -1}},
	}
	tput := map[string]map[int]float64{}
	p99 := map[string]map[int]float64{}
	for _, c := range configs {
		series := Series{Label: c.label}
		tput[c.label] = map[int]float64{}
		p99[c.label] = map[int]float64{}
		for _, clients := range spec.Ks {
			srv := serve.New(qpm, c.cfg, h.Session.Rec)
			// Warm every path once before timing: fills the cache where
			// enabled and the compiled-spec caches everywhere, so the
			// configurations differ only in serving policy.
			for _, req := range hot {
				if _, _, _, err := srv.Exec("warmup", req.spec, req.bindings, req.opts); err != nil {
					srv.Close()
					return nil, fmt.Errorf("%s warmup: %w", c.label, err)
				}
			}
			pt, err := serveLoad(srv, hot, clients, reqs)
			srv.Close()
			if err != nil {
				return nil, fmt.Errorf("%s c=%d: %w", c.label, clients, err)
			}
			tput[c.label][clients] = pt.Throughput
			p99[c.label][clients] = pt.P99MS
			series.Points = append(series.Points, pt)
		}
		exp.Series = append(exp.Series, series)
	}

	shedPt, err := h.runShedProbe(qpm, hot)
	if err != nil {
		return nil, err
	}
	exp.Series = append(exp.Series, Series{Label: "load-shed probe", Points: []Point{shedPt}})

	maxC := spec.Ks[len(spec.Ks)-1]
	minC := spec.Ks[0]
	var notes string
	if off := tput["no cache"][maxC]; off > 0 {
		notes += fmt.Sprintf("cache+coalesce vs no-cache throughput at %d clients: %.1fx. ",
			maxC, tput["cache+coalesce"][maxC]/off)
	}
	if base := p99["cache+coalesce"][minC]; base > 0 {
		notes += fmt.Sprintf("cached-mix p99 at %d clients is %.2fx the %d-client p99. ",
			maxC, p99["cache+coalesce"][maxC]/base, minC)
	}
	notes += fmt.Sprintf("load-shed probe: %d of %d over-cap submissions rejected with typed ErrOverloaded.",
		shedPt.Shed, shedPt.Evals)
	exp.Notes += " " + notes
	return exp, nil
}

// runShedProbe verifies overload is shed with the typed error rather than
// queued without bound: it pins the single dispatch slot of a deliberately
// tiny configuration with a large circuit, fills the four-element queue, and
// then submits over the cap. The returned point records over-cap attempts
// (Evals) and typed rejections (Shed).
func (h *Harness) runShedProbe(qpm *core.QPM, hot []serveRequest) (Point, error) {
	const queueCap = 4
	srv := serve.New(qpm, serve.Config{CacheCap: -1, QueueCap: queueCap, Quota: 1 << 20, Inflight: 1}, h.Session.Rec)
	defer srv.Close()

	blockSpec, err := core.SpecFromCircuit(workloads.GHZ(20))
	if err != nil {
		return Point{}, err
	}
	unseeded := func(i int) (core.CircuitSpec, []core.Bindings, core.RunOptions) {
		req := hot[i%len(hot)]
		opts := req.opts
		opts.Seed = 0 // unseeded: uncacheable, so every accept executes
		return req.spec, req.bindings, opts
	}

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, queueCap+1)
	submit := func(tenant string, spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) {
		defer wg.Done()
		if _, _, _, err := srv.Exec(tenant, spec, bindings, opts); err != nil {
			errc <- fmt.Errorf("probe %s: %w", tenant, err)
		}
	}

	// Pin the only dispatch slot: a 20-qubit statevector run holds it for
	// tens of milliseconds, long enough to fill and overflow the queue.
	wg.Add(1)
	go submit("blocker", blockSpec, nil, core.RunOptions{Shots: 64, Subbackend: "statevector"})
	if err := waitStats(srv, "blocker dispatch", func(st serve.Stats) bool {
		return st.Tenants["blocker"].Outstanding == 1 && st.QueueDepth == 0
	}); err != nil {
		return Point{}, err
	}
	for i := 0; i < queueCap; i++ {
		spec, bindings, opts := unseeded(i)
		wg.Add(1)
		go submit(fmt.Sprintf("fill-%d", i), spec, bindings, opts)
	}
	if err := waitStats(srv, "queue fill", func(st serve.Stats) bool {
		return st.QueueDepth == queueCap
	}); err != nil {
		return Point{}, err
	}

	// The queue is at cap and the slot is held: every further submission
	// must shed, and the rejection must stay typed.
	attempts := 2 * queueCap
	shed := 0
	for i := 0; i < attempts; i++ {
		spec, bindings, opts := unseeded(i)
		_, _, _, err := srv.Exec("probe", spec, bindings, opts)
		switch {
		case err == nil:
			return Point{}, fmt.Errorf("bench: probe submission %d admitted over a full queue", i)
		case !serve.IsOverloaded(err):
			return Point{}, fmt.Errorf("bench: untyped overload error: %w", err)
		}
		shed++
	}
	wg.Wait()
	select {
	case err := <-errc:
		return Point{}, err
	default:
	}
	return Point{
		X:         attempts,
		Placement: fmt.Sprintf("cap=%d slot=held", queueCap),
		RuntimeMS: float64(time.Since(start)) / float64(time.Millisecond),
		Evals:     attempts,
		Shed:      shed,
	}, nil
}

// waitStats polls a serving layer's stats until cond holds.
func waitStats(srv *serve.Server, what string, cond func(serve.Stats) bool) error {
	deadline := time.Now().Add(5 * time.Second)
	for !cond(srv.Stats()) {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: %s never reached (stats %+v)", what, srv.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}
