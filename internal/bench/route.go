package bench

import (
	"fmt"
	"strconv"
	"strings"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/workloads"
)

// RouteCase is one workload of the routing ablation's heterogeneous mix.
type RouteCase struct {
	Name string
	N    int
}

// RouteMix is the heterogeneous workload mix of the routing ablation: small
// Clifford and dense circuits, the statevector sweet spot, the MPS regime
// (nearest-neighbour at scale, swap-routed ring), and a structured
// long-range circuit — one entry per routing regime, so a single pinned
// engine cannot win them all.
var RouteMix = []RouteCase{
	{Name: "ghz", N: 12},
	{Name: "ham", N: 12},
	{Name: "hhl", N: 7},
	{Name: "qaoa", N: 10},
	{Name: "tfim", N: 16},
	{Name: "tfim", N: 20},
	{Name: "qaoa-ring", N: 32},
	{Name: "tfim-xl", N: 48},
}

// routeWorkload builds one mix entry ("qaoa" is the bound p=2 random-QUBO
// ansatz the other ablations use; everything else comes from Table 2).
func (h *Harness) routeWorkload(rc RouteCase) (*circuit.Circuit, error) {
	if rc.Name == "qaoa" {
		return h.ablationWorkload("qaoa", rc.N)
	}
	return workloads.ByName(rc.Name, rc.N)
}

func routeKey(rc RouteCase) string { return fmt.Sprintf("%s-%d", rc.Name, rc.N) }

// ParseRouteCases parses qfwbench `route` arguments of the form
// "<workload>:<n>" (e.g. "tfim:20"); a bare workload name uses its
// RouteMix size, or the first quick catalog size otherwise.
func ParseRouteCases(args []string) ([]RouteCase, error) {
	var cases []RouteCase
	for _, arg := range args {
		name, nstr, hasN := strings.Cut(arg, ":")
		if hasN {
			n, err := strconv.Atoi(nstr)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bench: bad route case %q (want workload:n)", arg)
			}
			cases = append(cases, RouteCase{Name: name, N: n})
			continue
		}
		found := false
		for _, rc := range RouteMix {
			if rc.Name == name {
				cases = append(cases, rc)
				found = true
				break
			}
		}
		if found {
			continue
		}
		for _, spec := range Catalog {
			if spec.Name == name && len(spec.Quick) > 0 {
				cases = append(cases, RouteCase{Name: name, N: spec.Quick[0]})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("bench: unknown route workload %q", name)
		}
	}
	return cases, nil
}

// RouteDecisionTable renders the selector's verdict for a list of workloads:
// chosen engine, sized resources, predicted per-element cost, and the rule
// that made the call (cost model vs structural fallback). Used by the
// qfwbench `route` command and appended to the capability table.
func (h *Harness) RouteDecisionTable(cases []RouteCase) (string, error) {
	auto := h.Session.Auto()
	if auto == nil {
		return "", fmt.Errorf("bench: session has no auto selector (no local backends)")
	}
	text := fmt.Sprintf("%-14s %-28s %-10s %-22s %s\n", "Workload", "Route", "Rule", "Resources", "Predicted")
	for _, rc := range cases {
		c, err := h.routeWorkload(rc)
		if err != nil {
			return "", err
		}
		spec, err := core.SpecFromCircuit(c)
		if err != nil {
			return "", err
		}
		d, err := auto.Decide(spec, 1)
		if err != nil {
			return "", err
		}
		res := "-"
		if d.Res.Workers > 0 || d.Res.Ranks > 0 || d.Res.MaxBond > 0 {
			var parts []string
			if d.Res.Workers > 0 {
				parts = append(parts, fmt.Sprintf("workers=%d", d.Res.Workers))
			}
			if d.Res.Ranks > 0 {
				parts = append(parts, fmt.Sprintf("ranks=%d", d.Res.Ranks))
			}
			if d.Res.MaxBond > 0 {
				parts = append(parts, fmt.Sprintf("maxbond=%d", d.Res.MaxBond))
			}
			res = strings.Join(parts, " ")
		}
		pred := "-"
		if d.PredictedMS > 0 {
			pred = fmt.Sprintf("%.3fms", d.PredictedMS)
		}
		text += fmt.Sprintf("%-14s %-28s %-10s %-22s %s\n",
			routeKey(rc), d.Backend+"/"+d.Sub, d.Rule, res, pred)
	}
	return text, nil
}

// RunRouteAblation measures the routing ablation of the catalog: the
// heterogeneous RouteMix executed through the auto selector (cost-model
// routing) and through every pinned single-engine choice a user could have
// made instead. Sizes span the statevector and MPS regimes, so each pinned
// engine is either slow or infeasible somewhere; the routed series must
// aggregate at or below every pinned aggregate over that engine's feasible
// subset. Routed points carry the model's predicted cost next to the
// measured runtime — the predicted-vs-actual record of the calibration.
func (h *Harness) RunRouteAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "engine-routing" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-route",
		Title: "Cost-model routing vs pinned single-engine execution (" + spec.Describe + ")",
		Notes: "X axis is the qubit count; every series runs the identical workload mix with identical seeds. Pinned aggregates cover only that engine's feasible subset.",
	}
	pinned := []BackendSel{
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "aer", Subbackend: "matrix_product_state"},
		{Backend: "nwqsim", Subbackend: "openmp"},
	}
	mix := RouteMix
	opts := core.RunOptions{Shots: h.Shots, Seed: h.Seed}

	autoFront, err := h.Session.Frontend(core.Properties{Backend: "auto"})
	if err != nil {
		return nil, err
	}
	auto := h.Session.Auto()
	routed := Series{Label: "routed (auto)"}
	routedMS := map[string]float64{}
	circuits := map[string]*circuit.Circuit{}
	for _, rc := range mix {
		c, err := h.routeWorkload(rc)
		if err != nil {
			return nil, err
		}
		circuits[routeKey(rc)] = c
		var predicted float64
		if auto != nil {
			if cspec, err := core.SpecFromCircuit(c); err == nil {
				if d, err := auto.Decide(cspec, 1); err == nil {
					predicted = d.PredictedMS
				}
			}
		}
		mean, std, runErr := h.timedRun(BackendSel{}, func() (*core.Result, error) {
			return autoFront.Run(c, opts)
		})
		pt := Point{X: rc.N, Placement: routeKey(rc), RuntimeMS: mean, StdMS: std, PredictedMS: predicted}
		if runErr != nil {
			return nil, fmt.Errorf("bench: routed %s failed: %w", routeKey(rc), runErr)
		}
		routedMS[routeKey(rc)] = mean
		routed.Points = append(routed.Points, pt)
	}
	exp.Series = append(exp.Series, routed)

	for _, sel := range pinned {
		front, err := h.Session.Frontend(core.Properties{Backend: sel.Backend, Subbackend: sel.Subbackend})
		if err != nil {
			return nil, err
		}
		series := Series{Label: sel.Backend + "/" + sel.Subbackend + " pinned"}
		var pinnedTotal, routedTotal float64
		feasible := 0
		for _, rc := range mix {
			c := circuits[routeKey(rc)]
			mean, std, runErr := h.timedRun(sel, func() (*core.Result, error) {
				return front.Run(c, opts)
			})
			pt := Point{X: rc.N, Placement: routeKey(rc), RuntimeMS: mean, StdMS: std}
			if runErr != nil {
				pt.Infeasible = core.IsInfeasible(runErr)
				pt.Err = runErr.Error()
				pt.RuntimeMS, pt.StdMS = 0, 0
				if !pt.Infeasible {
					return nil, fmt.Errorf("bench: pinned %s on %s failed: %w", series.Label, routeKey(rc), runErr)
				}
			} else {
				feasible++
				pinnedTotal += mean
				routedTotal += routedMS[routeKey(rc)]
			}
			series.Points = append(series.Points, pt)
		}
		if pinnedTotal > 0 {
			exp.Notes += fmt.Sprintf(" routed %.1fms vs %s %.1fms over its %d/%d feasible workloads (%.2fx).",
				routedTotal, series.Label, pinnedTotal, feasible, len(mix), pinnedTotal/routedTotal)
		}
		exp.Series = append(exp.Series, series)
	}

	if table, err := h.RouteDecisionTable(mix); err == nil {
		exp.Text = "\nRouting decisions:\n" + table
	}
	return exp, nil
}
