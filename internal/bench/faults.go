package bench

import (
	"fmt"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/faults"
	"qfw/internal/workloads"
)

// faultsWorkload builds the fault-injection ablation's sweep: a k-element
// parametric batch on an entangled 4-qubit ansatz, seeded so every element
// has a deterministic derived seed (the bit-identical recovery check relies
// on it).
func (h *Harness) faultsWorkload(k int) (core.CircuitSpec, []core.Bindings, core.RunOptions, error) {
	ansatz := circuit.New(4)
	ansatz.Name = "faults-sweep"
	for q := 0; q < 4; q++ {
		ansatz.H(q)
	}
	for q := 0; q+1 < 4; q++ {
		ansatz.CX(q, q+1)
	}
	ansatz.RZ(3, circuit.Sym("theta", 1))
	ansatz.MeasureAll()
	spec, err := core.SpecFromParametric(ansatz)
	if err != nil {
		return core.CircuitSpec{}, nil, core.RunOptions{}, err
	}
	bindings := make([]core.Bindings, k)
	for i := range bindings {
		bindings[i] = core.Bindings{"theta": 0.05 * float64(i)}
	}
	opts := core.RunOptions{Shots: h.Shots, Seed: h.Seed + 7, Subbackend: "statevector"}
	return spec, bindings, opts, nil
}

// runFaultBatch pushes the sweep through one QPM configuration and reports
// goodput (elements recovered), failures, and wall-clock latency.
func runFaultBatch(q *core.QPM, spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, []string, time.Duration, error) {
	start := time.Now()
	id, err := q.SubmitBatch(spec, bindings, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	res, errs, err := q.WaitBatch(id)
	if err != nil {
		return nil, nil, 0, err
	}
	return res, errs, time.Since(start), nil
}

// RunFaultsAblation measures the fault-tolerant execution layer: the same
// 64-element parametric sweep pushed through a deliberately faulty executor
// (the seeded injector marks a fraction of elements for one transient
// failure each) with the recovery machinery toggled. With retries and
// chunk-degradation on, goodput must stay at 64/64 and the recovered
// results must be bit-identical to a clean run; with a single-attempt
// policy the marked elements surface as element errors. A final probe pins
// runtime fallback re-routing: the auto executor rescues submissions from a
// dead primary engine, and loses them with fallback disabled.
func (h *Harness) RunFaultsAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "fault-injection" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-faults",
		Title: "Fault-tolerant execution: retry + degrade-to-element toggled under injected transient faults (" + spec.Describe + ")",
		Notes: "X axis is the injected per-element fault rate in percent; goodput (throughput_rps) counts recovered elements per second, shed counts failed elements.",
	}
	inner := h.Session.Executor("aer")
	if inner == nil {
		return nil, fmt.Errorf("bench: session has no aer executor")
	}
	k := 64
	cspec, bindings, opts, err := h.faultsWorkload(k)
	if err != nil {
		return nil, err
	}

	// Clean reference for the bit-identical recovery check.
	refQ := core.NewQPM(inner, 4, h.Session.Rec)
	ref, refErrs, _, err := runFaultBatch(refQ, cspec, bindings, opts)
	refQ.Close()
	if err != nil {
		return nil, err
	}
	for i, e := range refErrs {
		if e != "" {
			return nil, fmt.Errorf("bench: clean reference element %d failed: %s", i, e)
		}
	}

	rates := []float64{0, 0.1, 0.2, 0.4}
	configs := []struct {
		label string
		retry bool
	}{
		{"retry+degrade", true},
		{"no retry", false},
	}
	identical := true
	for _, c := range configs {
		series := Series{Label: c.label}
		for _, rate := range rates {
			inj := faults.NewInjector(faults.Schedule{Rate: rate, Times: 1, Seed: h.Seed + 31})
			fx := core.NewFaultyExecutor(inner, inj)
			q := core.NewQPM(fx, 4, h.Session.Rec)
			if !c.retry {
				q.SetRetryPolicy(faults.Policy{MaxAttempts: 1})
			}
			res, errs, wall, err := runFaultBatch(q, cspec, bindings, opts)
			q.Close() // leaves the shared session executor open
			if err != nil {
				return nil, err
			}
			good, failed := 0, 0
			for i := range errs {
				if errs[i] == "" {
					good++
					if c.retry && rate == 0.2 && fmt.Sprint(res[i].Counts) != fmt.Sprint(ref[i].Counts) {
						identical = false
					}
				} else {
					failed++
				}
			}
			if c.retry && rate == 0.2 && good != k {
				identical = false
			}
			series.Points = append(series.Points, Point{
				X:          int(rate * 100),
				Placement:  fmt.Sprintf("rate=%g injected=%d", rate, inj.Injected()),
				RuntimeMS:  float64(wall) / float64(time.Millisecond),
				Evals:      good,
				Shed:       failed,
				Throughput: float64(good) / wall.Seconds(),
			})
		}
		exp.Series = append(exp.Series, series)
	}
	if identical {
		exp.Notes += " At rate=0.2 with recovery on, all 64 elements succeeded bit-identical to the clean run."
	} else {
		exp.Notes += " WARNING: rate=0.2 recovery was NOT bit-identical to the clean run."
	}

	// Fallback re-routing probe: a dead primary rescued (or not) by the
	// auto executor's runtime re-route, recorded as recovered vs lost runs.
	exp.Series = append(exp.Series, h.fallbackProbe()...)
	return exp, nil
}

// fallbackProbe runs a single bound circuit through two auto executors that
// share a dead "aer" primary — one with runtime fallback re-routing on, one
// with it off — and reports rescued vs lost submissions.
func (h *Harness) fallbackProbe() []Series {
	nwq := h.Session.Executor("nwqsim")
	if nwq == nil {
		return nil
	}
	spec, err := core.SpecFromCircuit(workloads.GHZ(4))
	if err != nil {
		return nil
	}
	ropts := core.RunOptions{Shots: h.Shots, Seed: h.Seed + 3}
	// A primary that always faults: every call through the injector fails,
	// so only runtime re-routing can rescue the submission.
	mkDead := func() core.Executor {
		return core.NewFaultyExecutor(h.Session.Executor("aer"),
			faults.NewInjector(faults.Schedule{Rate: 1, Times: -1, Seed: h.Seed + 47})).WithName("aer")
	}
	var out []Series
	for _, mode := range []struct {
		label string
		on    bool
	}{{"fallback on", true}, {"fallback off", false}} {
		auto := core.NewAutoExecutor(map[string]core.Executor{
			"aer":    mkDead(),
			"nwqsim": nwq,
		}).WithModel(nil).WithFallback(mode.on)
		start := time.Now()
		res, err := auto.Execute(spec, ropts)
		wall := time.Since(start)
		p := Point{X: 100, Placement: "dead primary", RuntimeMS: float64(wall) / float64(time.Millisecond)}
		if err != nil {
			p.Err = err.Error()
			p.Shed = 1
		} else {
			p.Evals = 1
			p.Placement = res.Route
		}
		out = append(out, Series{Label: mode.label, Points: []Point{p}})
	}
	return out
}
