package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"qfw/internal/qaoa"
	"qfw/internal/qubo"
	"qfw/internal/vqls"
)

// RunGradAblation measures the gradient-methods ablation of the catalog:
// the same QAOA p=2 and VQLS hybrid loops driven by (a) Nelder-Mead over
// exact expectations — the derivative-free baseline and budget anchor, (b)
// Adam over adjoint gradients, and (c) Adam over parameter-shift gradient
// batches (QAOA only; VQLS differentiates its two quadratic forms through
// the adjoint path). The Nelder-Mead run fixes the convergence target: the
// gradient methods stop as soon as they reach its final objective, so the
// reported circuit-equivalent evaluation counts and wall-clock compare
// equal-quality solutions. All methods share the runner, seed, and starting
// point.
func (h *Harness) RunGradAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "gradient-methods" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-grad",
		Title: "Gradient-driven vs derivative-free hybrid loops (" + spec.Describe + ")",
		Notes: "Evals are circuit-equivalent evaluations (adjoint gradient = 3, parameter-shift = 1 + 2 per shifted occurrence, plain evaluation = 1); every method starts from the identical point and the gradient methods stop at the Nelder-Mead objective.",
	}
	runner := qaoa.LocalRunner{Workers: runtime.GOMAXPROCS(0)}
	n := 10
	if len(spec.Sizes) > 0 {
		n = spec.Sizes[0]
	}

	// --- QAOA p=2 ---
	rng := rand.New(rand.NewSource(h.Seed + 71))
	q := qubo.Random(n, 0.5, 1.0, rng)
	qaoaBudget := 240
	type qaoaRun struct {
		label     string
		optimizer string
		gradient  string
		target    *float64
		maxEvals  int
	}
	var nmObjective float64
	qaoaSeries := func(r qaoaRun) (Point, error) {
		start := time.Now()
		res, err := qaoa.Solve(q, runner, qaoa.Options{
			P: 2, Shots: h.Shots, MaxEvals: r.maxEvals, Seed: h.Seed + 71,
			ExactExpectation: true,
			Optimizer:        r.optimizer,
			Gradient:         r.gradient,
			Target:           r.target,
		})
		if err != nil {
			return Point{}, fmt.Errorf("qaoa %s: %w", r.label, err)
		}
		return Point{
			X: n, Placement: r.label,
			RuntimeMS: float64(time.Since(start)) / float64(time.Millisecond),
			Evals:     res.Evals,
			Objective: res.Expectation,
		}, nil
	}
	nmPoint, err := qaoaSeries(qaoaRun{label: "neldermead", optimizer: "neldermead", maxEvals: qaoaBudget})
	if err != nil {
		return nil, err
	}
	nmObjective = nmPoint.Objective
	// The gradient runs chase the Nelder-Mead objective (minus the constant
	// offset Solve adds back) with a generous eval ceiling: reaching the
	// target early is the measurement.
	offsetFree := nmObjective - qaoaOffset(q)
	adjPoint, err := qaoaSeries(qaoaRun{label: "adjoint", optimizer: "adam", gradient: "adjoint", target: &offsetFree, maxEvals: 8 * qaoaBudget})
	if err != nil {
		return nil, err
	}
	psPoint, err := qaoaSeries(qaoaRun{label: "paramshift", optimizer: "adam", gradient: "paramshift", target: &offsetFree, maxEvals: 8 * qaoaBudget})
	if err != nil {
		return nil, err
	}
	exp.Series = append(exp.Series,
		Series{Label: "qaoa neldermead", Points: []Point{nmPoint}},
		Series{Label: "qaoa adjoint", Points: []Point{adjPoint}},
		Series{Label: "qaoa paramshift", Points: []Point{psPoint}},
	)
	if adjPoint.Evals > 0 && adjPoint.RuntimeMS > 0 {
		exp.Notes += fmt.Sprintf(" QAOA-%d to objective %.4f: adjoint spends %.1fx fewer circuit-equivalent evals (%d vs %d) and %.1fx less wall-clock than Nelder-Mead;",
			n, nmObjective,
			float64(nmPoint.Evals)/float64(adjPoint.Evals), adjPoint.Evals, nmPoint.Evals,
			nmPoint.RuntimeMS/adjPoint.RuntimeMS)
		exp.Notes += fmt.Sprintf(" parameter-shift spends %d evals and reaches %.4f — its per-gradient cost grows with the parametric gate count, the O(P) regime adjoint mode eliminates.",
			psPoint.Evals, psPoint.Objective)
	}

	// --- VQLS ---
	vn, layers := 5, 2
	prob := vqls.IsingA(vn, 0.35, 0.22, 1.0)
	vqlsBudget := 400
	vqlsRun := func(label, optimizer string, target *float64, maxEvals int) (Point, error) {
		start := time.Now()
		res, err := vqls.Solve(prob, runner, vqls.Options{
			Layers: layers, MaxEvals: maxEvals, Seed: h.Seed + 17, Shots: h.Shots,
			Optimizer: optimizer, Target: target,
		})
		if err != nil {
			return Point{}, fmt.Errorf("vqls %s: %w", label, err)
		}
		return Point{
			X: vn, Placement: label,
			RuntimeMS: float64(time.Since(start)) / float64(time.Millisecond),
			Evals:     res.Evals,
			Objective: res.Cost,
		}, nil
	}
	vnm, err := vqlsRun("neldermead", "neldermead", nil, vqlsBudget)
	if err != nil {
		return nil, err
	}
	vadj, err := vqlsRun("adjoint", "adam", &vnm.Objective, 4*vqlsBudget)
	if err != nil {
		return nil, err
	}
	exp.Series = append(exp.Series,
		Series{Label: "vqls neldermead", Points: []Point{vnm}},
		Series{Label: "vqls adjoint", Points: []Point{vadj}},
	)
	if vadj.Evals > 0 && vadj.RuntimeMS > 0 {
		exp.Notes += fmt.Sprintf(" VQLS-%d to cost %.4f: adjoint spends %.1fx fewer evals (%d vs %d) and %.1fx less wall-clock.",
			vn, vnm.Objective,
			float64(vnm.Evals)/float64(vadj.Evals), vadj.Evals, vnm.Evals,
			vnm.RuntimeMS/vadj.RuntimeMS)
	}
	return exp, nil
}

// qaoaOffset returns the constant the QUBO→Ising conversion adds to the
// reported expectation, so convergence targets compare like with like.
func qaoaOffset(q *qubo.QUBO) float64 {
	_, offset := q.CostHamiltonian()
	return offset
}
