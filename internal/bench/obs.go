package bench

import (
	"fmt"
	"runtime"

	"qfw/internal/core"
	"qfw/internal/serve"
	"qfw/internal/trace"
	"qfw/internal/workloads"
)

// obsHotSet builds the overhead-measurement workload: unseeded sampled
// TFIM evolutions deep enough that one request costs milliseconds of real
// simulation. The fixed per-request instrumentation cost (a handful of
// spans, counters, and histogram observations) is priced against realistic
// executions rather than against no-op requests where scheduler jitter
// swamps the measurement.
func (h *Harness) obsHotSet() ([]serveRequest, error) {
	n, depth := 14, 12
	if h.Quick {
		n, depth = 12, 8
	}
	var hot []serveRequest
	for i := 0; i < 4; i++ {
		circ := workloads.TFIM(n, depth, 0.4+0.1*float64(i), 1.0)
		spec, err := core.SpecFromCircuit(circ)
		if err != nil {
			return nil, err
		}
		hot = append(hot, serveRequest{
			spec: spec,
			opts: core.RunOptions{Shots: h.Shots, Subbackend: "statevector"},
		})
	}
	return hot, nil
}

// RunObsAblation measures the cost of the production observability layer:
// the serving-layer hot set is driven with the result cache disabled (so
// every request actually executes and every span/metric site fires) once
// with the telemetry core enabled and once with it switched off the way
// QFW_OBS=off does. Reps interleave on/off pairs so machine drift cancels
// instead of biasing one side, and the aggregate overhead lands in Notes
// (and the acceptance gate: instrumentation must stay within a few percent
// of the disabled path).
func (h *Harness) RunObsAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "observability" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-obs",
		Title: "Observability overhead: telemetry on vs QFW_OBS=off under uncached load (" + spec.Describe + ")",
		Notes: "X axis is the paired-rep index; both series replay the identical hot-set workload against the same aer QPM with caching disabled.",
	}
	qpm := h.Session.QPM("aer")
	if qpm == nil {
		return nil, fmt.Errorf("bench: session has no aer QPM")
	}
	hot, err := h.obsHotSet()
	if err != nil {
		return nil, err
	}
	clients := 1
	if len(spec.Ks) > 0 {
		clients = spec.Ks[0]
	}
	// The gate statistic is the per-side latency floor, so more paired reps
	// directly tighten it: each extra pair is another draw of the minimum on
	// both sides, and the floors converge toward the true per-request cost.
	reqs := 48
	pairs := 24
	if h.Quick {
		reqs = 24
		pairs = 12
	}

	// Cache off: a hit path would serve most requests from memory and hide
	// the per-execution instrumentation this ablation exists to price.
	srv := serve.New(qpm, serve.Config{CacheCap: -1}, h.Session.Rec)
	defer srv.Close()
	defer trace.SetEnabled(true)
	for _, req := range hot {
		if _, _, _, err := srv.Exec("warmup", req.spec, req.bindings, req.opts); err != nil {
			return nil, fmt.Errorf("obs warmup: %w", err)
		}
	}

	on := Series{Label: "instrumented"}
	off := Series{Label: "QFW_OBS=off"}
	var medsOn, medsOff []float64
	for rep := 0; rep < pairs; rep++ {
		// Alternate which side runs first within the pair so ordering
		// effects (cache warmth, frequency scaling) cancel across reps.
		order := []bool{true, false}
		if rep%2 == 1 {
			order = []bool{false, true}
		}
		for _, enabled := range order {
			// Equalize allocator state so a GC pause inherited from the
			// previous half-pair cannot masquerade as telemetry overhead.
			runtime.GC()
			trace.SetEnabled(enabled)
			pt, err := serveLoad(srv, hot, clients, reqs)
			trace.SetEnabled(true)
			if err != nil {
				return nil, fmt.Errorf("obs rep %d (enabled=%v): %w", rep, enabled, err)
			}
			pt.X = rep
			pt.Placement = fmt.Sprintf("rep=%d", rep)
			if enabled {
				medsOn = append(medsOn, pt.MinMS)
				on.Points = append(on.Points, pt)
			} else {
				medsOff = append(medsOff, pt.MinMS)
				off.Points = append(off.Points, pt)
			}
		}
	}
	exp.Series = append(exp.Series, on, off)

	// The overhead gate compares the latency floor (fastest request) of
	// each side. Scheduler and GC noise is strictly additive, so the floor
	// converges on each side's true per-request cost — a systematic
	// instrumentation cost would survive in the floor, while rep-to-rep
	// jitter (which flips sign between runs) does not.
	bestOn := minOf(medsOn)
	bestOff := minOf(medsOff)
	if bestOff > 0 {
		exp.Notes += fmt.Sprintf(" Floor request latency %.3f ms instrumented vs %.3f ms disabled: overhead_pct=%.2f.",
			bestOn, bestOff, 100*(bestOn-bestOff)/bestOff)
	}
	st := h.Session.Rec.Stats()
	exp.Notes += fmt.Sprintf(" Span ring after the run: %d recorded, %d retained, %d dropped (cap %d).",
		st.Recorded, st.Retained, st.Dropped, st.Capacity)
	return exp, nil
}

// minOf returns the smallest sample (0 for an empty slice).
func minOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0]
	for _, s := range samples[1:] {
		if s < m {
			m = s
		}
	}
	return m
}
