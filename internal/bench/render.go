package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Render formats an experiment as an aligned text report: one block per
// series, one row per point, with the (#N,#P) or (subqsize,nsubq) secondary
// label and the paper's red-X convention for infeasible configurations.
func Render(e *Experiment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if e.Notes != "" {
		fmt.Fprintf(&b, "   %s\n", e.Notes)
	}
	for _, s := range e.Series {
		fmt.Fprintf(&b, "\n%s\n", s.Label)
		for _, p := range s.Points {
			switch {
			case p.Infeasible:
				fmt.Fprintf(&b, "  %4d %-8s  X (infeasible: %s)\n", p.X, p.Placement, firstLine(p.Err))
			case p.Err != "":
				fmt.Fprintf(&b, "  %4d %-8s  ERROR: %s\n", p.X, p.Placement, firstLine(p.Err))
			case p.Fidelity != 0 && p.RuntimeMS == 0:
				fmt.Fprintf(&b, "  %4d %-8s  fidelity %.2f%%\n", p.X, p.Placement, p.Fidelity)
			case p.Fidelity != 0:
				fmt.Fprintf(&b, "  %4d %-8s  %10.2f ms ± %-8.2f fidelity %.2f%%\n", p.X, p.Placement, p.RuntimeMS, p.StdMS, p.Fidelity)
			case p.Bytes != 0:
				fmt.Fprintf(&b, "  %4d %-8s  %10.2f ms ± %-8.2f %9d B exchanged\n", p.X, p.Placement, p.RuntimeMS, p.StdMS, p.Bytes)
			case p.Evals != 0:
				fmt.Fprintf(&b, "  %4d %-12s %10.2f ms  %6d evals  objective %.6g\n", p.X, p.Placement, p.RuntimeMS, p.Evals, p.Objective)
			default:
				fmt.Fprintf(&b, "  %4d %-8s  %10.2f ms ± %.2f\n", p.X, p.Placement, p.RuntimeMS, p.StdMS)
			}
		}
	}
	if e.Text != "" {
		b.WriteString("\n")
		b.WriteString(e.Text)
	}
	b.WriteString("\n")
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// CSV renders an experiment as comma-separated rows:
// series,x,placement,runtime_ms,std_ms,fidelity,bytes,evals,objective,infeasible.
func CSV(e *Experiment) string {
	var b strings.Builder
	b.WriteString("series,x,placement,runtime_ms,std_ms,fidelity,bytes,evals,objective,infeasible\n")
	for _, s := range e.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%q,%d,%q,%.4f,%.4f,%.4f,%d,%d,%.6g,%v\n",
				s.Label, p.X, p.Placement, p.RuntimeMS, p.StdMS, p.Fidelity, p.Bytes, p.Evals, p.Objective, p.Infeasible)
		}
	}
	return b.String()
}

// Winners returns, per X value, the series with the lowest runtime —
// the "who wins where" summary used to check figure shapes against the
// paper's qualitative claims.
func Winners(e *Experiment) map[int]string {
	best := map[int]float64{}
	winner := map[int]string{}
	for _, s := range e.Series {
		for _, p := range s.Points {
			if p.Infeasible || p.Err != "" || p.RuntimeMS <= 0 {
				continue
			}
			if cur, ok := best[p.X]; !ok || p.RuntimeMS < cur {
				best[p.X] = p.RuntimeMS
				winner[p.X] = s.Label
			}
		}
	}
	return winner
}

// SeriesByLabel finds a series in an experiment.
func SeriesByLabel(e *Experiment, label string) *Series {
	for i := range e.Series {
		if e.Series[i].Label == label {
			return &e.Series[i]
		}
	}
	return nil
}

// SortedXs lists the distinct X values of an experiment in order.
func SortedXs(e *Experiment) []int {
	seen := map[int]bool{}
	var xs []int
	for _, s := range e.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Ints(xs)
	return xs
}
