//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; wall-clock
// speedup assertions are skipped under its instrumentation overhead.
const raceEnabled = true
