// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation: workload sweeps across all integrated
// backends (Figs. 3a-3d), the QAOA runtime/fidelity sweep (Figs. 3e-3f),
// the DQAOA configuration study (Fig. 4), the iteration-level timeline
// (Fig. 5), and the capability/benchmark catalogs (Tables 1-2).
package bench

import "fmt"

// Placement is the (#N, #P) pair shown on the secondary x-axis of every
// figure: number of nodes and processes per node.
type Placement struct {
	Nodes int
	Procs int
}

func (p Placement) String() string { return fmt.Sprintf("(%d,%d)", p.Nodes, p.Procs) }

// WorkloadSpec is one row of Table 2.
type WorkloadSpec struct {
	Name     string
	Variant  string // "non-variational" or "variational"
	Sizes    []int  // paper sizes
	Quick    []int  // laptop-scale sizes used by `go test -bench`
	Describe string
}

// DQAOAConfig is one Fig. 4 configuration: a QUBO size with (subqsize, nsubq).
type DQAOAConfig struct {
	QUBOSize int
	SubQSize int
	NSubQ    int
}

func (c DQAOAConfig) String() string {
	return fmt.Sprintf("%d:(%d,%d)", c.QUBOSize, c.SubQSize, c.NSubQ)
}

// Catalog is the paper's Table 2: benchmarks and problem sizes.
var Catalog = []WorkloadSpec{
	{
		Name: "ghz", Variant: "non-variational",
		Sizes:    []int{4, 8, 12, 16, 20, 24, 28, 30, 32},
		Quick:    []int{4, 8, 12},
		Describe: "SupermarQ GHZ state preparation (long-range entanglement, shallow)",
	},
	{
		Name: "ham", Variant: "non-variational",
		Sizes:    []int{4, 8, 12, 16, 20, 24, 28, 30, 32},
		Quick:    []int{4, 8, 12},
		Describe: "SupermarQ Hamiltonian simulation (critical TFIM Trotter evolution)",
	},
	{
		Name: "tfim", Variant: "non-variational",
		Sizes:    []int{4, 8, 12, 16, 20, 24, 28, 30, 32},
		Quick:    []int{4, 8, 12},
		Describe: "Transverse-field Ising model time evolution (nearest-neighbour)",
	},
	{
		Name: "hhl", Variant: "non-variational",
		Sizes:    []int{5, 7, 9, 11, 13, 15, 17},
		Quick:    []int{5, 7},
		Describe: "Harrow-Hassidim-Lloyd linear solver (QPE + controlled rotations)",
	},
	{
		Name: "tfim-xl", Variant: "non-variational",
		Sizes:    []int{48, 64, 96, 128},
		Quick:    []int{48, 64},
		Describe: "Large-n TFIM evolution (MPS regime: dense state vectors are infeasible past ~30 qubits)",
	},
	{
		Name: "qaoa-ring", Variant: "non-variational",
		Sizes:    []int{32, 64},
		Quick:    []int{32},
		Describe: "Bound ring-QAOA layers (one long-range closing edge per layer exercises MPS swap routing)",
	},
	{
		Name: "qaoa", Variant: "variational",
		Sizes:    []int{4, 8, 10, 16, 20, 30},
		Quick:    []int{4, 8},
		Describe: "QAOA on random QUBOs (reports QUBO size)",
	},
	{
		Name: "dqaoa", Variant: "variational",
		Sizes:    []int{30, 40},
		Quick:    []int{16},
		Describe: "Distributed QAOA on metamaterial QUBOs with (subqsize, nsubq) splits",
	},
}

// DQAOAConfigs are the Fig. 4 / Table 2 DQAOA configurations.
var DQAOAConfigs = []DQAOAConfig{
	{QUBOSize: 30, SubQSize: 16, NSubQ: 2},
	{QUBOSize: 30, SubQSize: 12, NSubQ: 3},
	{QUBOSize: 30, SubQSize: 8, NSubQ: 4},
	{QUBOSize: 40, SubQSize: 16, NSubQ: 4},
	{QUBOSize: 40, SubQSize: 12, NSubQ: 4},
}

// DQAOAQuickConfigs are the laptop-scale equivalents used by `go test -bench`.
var DQAOAQuickConfigs = []DQAOAConfig{
	{QUBOSize: 16, SubQSize: 8, NSubQ: 2},
	{QUBOSize: 16, SubQSize: 6, NSubQ: 3},
	{QUBOSize: 20, SubQSize: 8, NSubQ: 3},
}

// AblationSpec is one design-choice ablation tracked by the bench
// trajectory alongside the paper's tables and figures.
type AblationSpec struct {
	Name     string
	Ks       []int // batch sizes swept (batch ablation)
	Sizes    []int // qubit counts swept (kernel ablations)
	Ps       []int // rank counts swept (distributed ablations)
	Describe string
}

// AblationCatalog lists the tracked ablations. batch-vs-sequential is the
// batched-execution pipeline's speedup entry: the same p=2 QAOA parameter
// sweep (identical seeds both paths) evaluated once through per-circuit
// submission and once through a single submit_batch RPC. gate-fusion is the
// fused statevector engine's entry: identical QAOA/TFIM/GHZ circuits run
// through the unfused per-gate kernels and through the fused program
// (merged 1q/2q blocks, hoisted diagonal layers, specialized kernels).
var AblationCatalog = []AblationSpec{
	{
		Name:     "batch-vs-sequential",
		Ks:       []int{1, 2, 4, 8, 16},
		Describe: "p=2 QAOA parameter sweep: K bound submissions vs one parametric batch (same seeds both paths)",
	},
	{
		Name:     "gate-fusion",
		Sizes:    []int{12, 14, 16},
		Describe: "QAOA/TFIM/GHZ statevector execution: per-gate kernels vs fused program (same circuits, same seeds)",
	},
	{
		Name:     "distributed-fusion",
		Ps:       []int{1, 2, 4, 8},
		Describe: "QAOA p=2 / TFIM over P ranks: fused stage engine (remap exchanges) vs per-gate shard exchanges vs single-rank fused, bytes counted by the mpi payload model",
	},
	{
		Name:     "gradient-methods",
		Sizes:    []int{10},
		Describe: "QAOA p=2 / VQLS hybrid loops: adjoint-gradient Adam vs parameter-shift Adam vs Nelder-Mead, run to the Nelder-Mead objective as the shared convergence target, circuit-equivalent evaluations counted per method",
	},
	{
		Name:     "mps-engine",
		Ks:       []int{8},
		Sizes:    []int{16, 24, 48},
		Describe: "TFIM / ring-QAOA batches of K=8 on the MPS engine: compiled+batched schedule vs the per-gate seed path, with the fused statevector engine at the crossover sizes",
	},
	{
		Name:     "engine-routing",
		Sizes:    []int{7, 10, 12, 16, 20, 32, 48},
		Describe: "Heterogeneous workload mix (GHZ/HamSim/HHL/QAOA/TFIM/ring-QAOA across the SV and MPS regimes): cost-model routed execution vs every pinned single-engine choice (same circuits, same seeds)",
	},
	{
		Name:     "blocked-kernel",
		Sizes:    []int{16, 18, 20, 22, 24, 26},
		Describe: "Deep QAOA/TFIM statevector execution on one core: cache-blocked stage engine (SoA tiles, SIMD kernels) vs per-op fused vs per-gate seed kernels (same circuits, same seeds, depth sweep)",
	},
	{
		Name:     "serving-layer",
		Ks:       []int{1, 8, 32},
		Describe: "Repeated-submission hot set (analytic QAOA queries + seeded GHZ sampling) through the multi-tenant serving layer at K concurrent clients: content-addressed cache and admission-window coalescing toggled, plus a bounded-queue load-shed probe",
	},
	{
		Name:     "fault-injection",
		Ks:       []int{64},
		Describe: "64-element parametric sweep through a seeded fault injector at rising per-element transient-failure rates: retry + degrade-to-element recovery vs a single-attempt policy, plus a dead-primary fallback re-routing probe",
	},
	{
		Name:     "observability",
		Ks:       []int{1},
		Describe: "Deep-TFIM hot set with the result cache disabled (every request executes) from K serial clients: telemetry core on vs QFW_OBS=off in interleaved paired reps, measuring the span/metric instrumentation overhead at the request-latency floor",
	},
}

// PlacementFor reproduces the paper's (#N, #P) schedule: placements grow
// with problem size, crossing from one LLC domain to several and from one
// node to two (Fig. 3's secondary axes).
func PlacementFor(n int) Placement {
	switch {
	case n <= 16:
		return Placement{Nodes: 1, Procs: 4}
	case n <= 20:
		return Placement{Nodes: 1, Procs: 8}
	case n <= 24:
		return Placement{Nodes: 2, Procs: 8}
	case n <= 30:
		return Placement{Nodes: 2, Procs: 8}
	default:
		return Placement{Nodes: 2, Procs: 16}
	}
}

// BackendSel names a (backend, sub-backend) series in a figure.
type BackendSel struct {
	Backend    string
	Subbackend string
}

// Label renders the figure-legend name of the series.
func (b BackendSel) Label() string {
	switch {
	case b.Backend == "nwqsim":
		return "NWQ-Sim"
	case b.Backend == "aer" && b.Subbackend == "statevector":
		return "Qiskit-Aer (Statevector)"
	case b.Backend == "aer" && b.Subbackend == "matrix_product_state":
		return "Qiskit-Aer (MPS)"
	case b.Backend == "aer" && b.Subbackend == "automatic":
		return "Qiskit-Aer (Automatic)"
	case b.Backend == "qtensor":
		return "QTensor (NumPy)"
	case b.Backend == "tnqvm":
		return "TNQVM (ExaTN-MPS)"
	case b.Backend == "ionq":
		return "IonQ (Simulator)"
	}
	return b.Backend + "/" + b.Subbackend
}

// Figure3Backends is the full legend of Figs. 3a-3d.
var Figure3Backends = []BackendSel{
	{Backend: "nwqsim", Subbackend: "mpi"},
	{Backend: "aer", Subbackend: "statevector"},
	{Backend: "aer", Subbackend: "matrix_product_state"},
	{Backend: "aer", Subbackend: "automatic"},
	{Backend: "qtensor", Subbackend: "numpy"},
	{Backend: "tnqvm", Subbackend: "exatn-mps"},
	{Backend: "ionq", Subbackend: "simulator"},
}

// QAOABackends is the reduced backend set used for the variational sweep.
var QAOABackends = []BackendSel{
	{Backend: "nwqsim", Subbackend: "openmp"},
	{Backend: "aer", Subbackend: "statevector"},
	{Backend: "aer", Subbackend: "matrix_product_state"},
}
