package bench

// The bench records double as the cost model's calibration corpus: the
// blocked-kernel ablation is a single-core depth sweep of the production
// statevector engine, and the mps-engine ablation times the compiled MPS
// schedule per batch element. FitFromArtifacts rebuilds the exact circuits
// behind those series (same generators, same seeds), extracts their cost
// features, and regresses the per-engine curves — `qfwbench -exp fit-cost`
// wraps it to write a calibration file (and to regenerate the embedded
// seed calibration in internal/cost/seed_cost.json).

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"qfw/internal/cost"
	"qfw/internal/workloads"
)

var (
	kernelSeriesRE = regexp.MustCompile(`^(qaoa|tfim) d=(\d+) blocked$`)
	mpsSeriesRE    = regexp.MustCompile(`^(tfim|qaoa-ring) compiled\+batched mps$`)
	pinnedSeriesRE = regexp.MustCompile(`^([a-z]+)/([a-z_]+) pinned$`)
)

// FitFromArtifacts regresses a cost calibration from recorded bench
// experiments (BENCH_kernel.json, BENCH_mps.json), layered over the
// embedded seed so engines without measurements keep their seed curves.
// The harness seed must match the one the artifacts were recorded with
// (the qfwbench default of 1) or the rebuilt circuits will not be the
// measured ones.
func (h *Harness) FitFromArtifacts(paths ...string) (*cost.Calibration, error) {
	var samples []cost.Sample
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("bench: read artifact: %w", err)
		}
		var exp Experiment
		if err := json.Unmarshal(data, &exp); err != nil {
			return nil, fmt.Errorf("bench: bad artifact %s: %w", path, err)
		}
		var s []cost.Sample
		switch exp.ID {
		case "ablation-kernel":
			s, err = h.kernelSamples(&exp)
		case "ablation-mps":
			s, err = h.mpsSamples(&exp)
		case "ablation-route":
			s, err = h.routeSamples(&exp)
		default:
			err = fmt.Errorf("bench: artifact %s (%s) has no cost-sample mapping", path, exp.ID)
		}
		if err != nil {
			return nil, err
		}
		samples = append(samples, s...)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("bench: no usable samples in %d artifact(s)", len(paths))
	}
	return cost.Fit(samples, cost.Seed()), nil
}

// kernelSamples maps the blocked-kernel ablation's "<kind> d=<depth>
// blocked" series (single-core staged statevector runs) onto the dense
// statevector engine family. Every CPU statevector engine in this codebase
// bottoms out in the same staged kernels, so one measured series anchors
// all of them; their workLog2 terms (rank remaps, worker efficiency)
// differentiate the fits.
func (h *Harness) kernelSamples(exp *Experiment) ([]cost.Sample, error) {
	var samples []cost.Sample
	for _, series := range exp.Series {
		m := kernelSeriesRE.FindStringSubmatch(series.Label)
		if m == nil {
			continue
		}
		kind := m[1]
		depth, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		for _, pt := range series.Points {
			if pt.Infeasible || pt.RuntimeMS <= 0 {
				continue
			}
			c, err := h.ablationDeepWorkload(kind, pt.X, depth)
			if err != nil {
				return nil, err
			}
			f := cost.Extract(c, nil)
			for _, engine := range []string{cost.AerSV, cost.NWQOpenMP, cost.NWQCPU} {
				samples = append(samples, cost.Sample{
					Engine: engine, F: f, Res: cost.Resources{Workers: 1}, MS: pt.RuntimeMS,
				})
			}
			samples = append(samples, cost.Sample{
				Engine: cost.NWQMPI, F: f, Res: cost.Resources{Workers: 1, Ranks: 1}, MS: pt.RuntimeMS,
			})
		}
	}
	return samples, nil
}

// routeSamples maps the routing ablation's pinned single-engine series onto
// their engine families. The pinned points cover the small-circuit regime
// the kernel and MPS ablations never sample (the depth sweeps start at 16
// qubits), so folding a recorded BENCH_route.json back into the fit anchors
// the curves where extrapolation is least trustworthy — the calibration
// loop's record of its own decisions becomes its next training set.
func (h *Harness) routeSamples(exp *Experiment) ([]cost.Sample, error) {
	family := map[string][]string{
		"aer/statevector":          {cost.AerSV},
		"aer/matrix_product_state": {cost.AerMPS, cost.TNQVMMPS},
		"nwqsim/openmp":            {cost.NWQOpenMP, cost.NWQCPU, cost.NWQMPI},
	}
	var samples []cost.Sample
	for _, series := range exp.Series {
		m := pinnedSeriesRE.FindStringSubmatch(series.Label)
		if m == nil {
			continue
		}
		engines, ok := family[m[1]+"/"+m[2]]
		if !ok {
			continue
		}
		res := cost.Resources{Workers: 1}
		if m[2] == "matrix_product_state" {
			res = cost.Resources{} // engine-default bond cap, as the pinned run used
		}
		for _, pt := range series.Points {
			if pt.Infeasible || pt.RuntimeMS <= 0 {
				continue
			}
			name, ok := strings.CutSuffix(pt.Placement, fmt.Sprintf("-%d", pt.X))
			if !ok {
				continue
			}
			c, err := h.routeWorkload(RouteCase{Name: name, N: pt.X})
			if err != nil {
				return nil, err
			}
			f := cost.Extract(c.StripMeasurements(), nil)
			for _, engine := range engines {
				r := res
				if engine == cost.NWQMPI {
					r.Ranks = 1 // a single-rank shard is the openmp path plus dispatch
				}
				samples = append(samples, cost.Sample{Engine: engine, F: f, Res: r, MS: pt.RuntimeMS})
			}
		}
	}
	return samples, nil
}

// mpsSamples maps the mps-engine ablation's "<kind> compiled+batched mps"
// series (K-element batches of the compiled MPS schedule at the ablation's
// bond cap) onto the MPS engine family, dividing the batch wall time into a
// per-element cost.
func (h *Harness) mpsSamples(exp *Experiment) ([]cost.Sample, error) {
	const ablationMaxBond = 64
	var samples []cost.Sample
	for _, series := range exp.Series {
		m := mpsSeriesRE.FindStringSubmatch(series.Label)
		if m == nil {
			continue
		}
		kind := m[1]
		for _, pt := range series.Points {
			if pt.Infeasible || pt.RuntimeMS <= 0 {
				continue
			}
			k := 8
			if _, err := fmt.Sscanf(pt.Placement, "K=%d", &k); err != nil || k <= 0 {
				k = 8
			}
			c, err := workloads.ByName(kind, pt.X)
			if err != nil {
				return nil, err
			}
			f := cost.Extract(c.StripMeasurements(), nil)
			perElem := pt.RuntimeMS / float64(k)
			for _, engine := range []string{cost.AerMPS, cost.TNQVMMPS} {
				samples = append(samples, cost.Sample{
					Engine: engine, F: f, Res: cost.Resources{MaxBond: ablationMaxBond}, MS: perElem,
				})
			}
		}
	}
	return samples, nil
}
