package bench

import (
	"math"
	"strings"
	"testing"

	"qfw/internal/cost"
)

// TestRouteAblationOracleRegression is the acceptance check of the
// cost-model router: over the heterogeneous ablation mix, the routed
// execution must never be more than 2x slower than the best pinned engine
// measured on the same workload (plus an absolute slack that keeps sub-ms
// dispatch jitter from failing the build), and its aggregate must not lose
// to any single pinned choice over that engine's feasible subset.
func TestRouteAblationOracleRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock routing assertion skipped under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	h := quickHarness(t)
	exp, err := h.RunRouteAblation()
	if err != nil {
		t.Fatal(err)
	}
	routed := SeriesByLabel(exp, "routed (auto)")
	if routed == nil {
		t.Fatalf("no routed series in:\n%s", Render(exp))
	}
	const slackMS = 50.0
	anyPred := false
	for i, pt := range routed.Points {
		if pt.PredictedMS > 0 {
			anyPred = true
		}
		oracle := math.Inf(1)
		for _, s := range exp.Series {
			if !strings.HasSuffix(s.Label, " pinned") {
				continue
			}
			p := s.Points[i]
			if p.Infeasible || p.Err != "" || p.RuntimeMS <= 0 {
				continue
			}
			oracle = math.Min(oracle, p.RuntimeMS)
		}
		if math.IsInf(oracle, 1) {
			continue
		}
		if bound := math.Max(2*oracle, oracle+slackMS); pt.RuntimeMS > bound {
			t.Errorf("%s: routed %.2fms vs oracle %.2fms (bound %.2fms)",
				pt.Placement, pt.RuntimeMS, oracle, bound)
		}
	}
	if !anyPred {
		t.Error("no routed point carries the model's prediction")
	}
	for _, s := range exp.Series {
		if !strings.HasSuffix(s.Label, " pinned") {
			continue
		}
		var routedTotal, pinnedTotal float64
		for i, p := range s.Points {
			if p.Infeasible || p.RuntimeMS <= 0 {
				continue
			}
			pinnedTotal += p.RuntimeMS
			routedTotal += routed.Points[i].RuntimeMS
		}
		if pinnedTotal <= 0 {
			continue
		}
		if routedTotal > pinnedTotal*1.25+slackMS {
			t.Errorf("routed aggregate %.1fms loses to %s %.1fms", routedTotal, s.Label, pinnedTotal)
		}
	}
}

// TestRouteDecisionTableCoversMix checks the decision table the capability
// report and `qfwbench route` share: one row per mix entry, and the big MPS
// regime workloads must not land on a dense engine the budget cannot hold.
func TestRouteDecisionTableCoversMix(t *testing.T) {
	h := quickHarness(t)
	table, err := h.RouteDecisionTable(RouteMix)
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range RouteMix {
		if !strings.Contains(table, routeKey(rc)) {
			t.Errorf("decision table misses %s:\n%s", routeKey(rc), table)
		}
	}
	for _, ln := range strings.Split(table, "\n") {
		if strings.Contains(ln, "tfim-xl-48") || strings.Contains(ln, "qaoa-ring-32") {
			if !strings.Contains(ln, "matrix_product_state") && !strings.Contains(ln, "exatn-mps") {
				t.Errorf("MPS-regime workload routed to a dense engine: %s", ln)
			}
		}
	}
}

// TestParseRouteCases exercises the qfwbench `route` argument forms.
func TestParseRouteCases(t *testing.T) {
	cases, err := ParseRouteCases([]string{"tfim:20", "ghz", "hhl"})
	if err != nil {
		t.Fatal(err)
	}
	want := []RouteCase{{Name: "tfim", N: 20}, {Name: "ghz", N: 12}, {Name: "hhl", N: 7}}
	if len(cases) != len(want) {
		t.Fatalf("got %v", cases)
	}
	for i := range want {
		if cases[i] != want[i] {
			t.Fatalf("case %d: got %+v want %+v", i, cases[i], want[i])
		}
	}
	if _, err := ParseRouteCases([]string{"nope:4x"}); err == nil {
		t.Fatal("bad size accepted")
	}
	if _, err := ParseRouteCases([]string{"unknown-workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestFitFromArtifactsMatchesEmbeddedSeed regresses the calibration from
// the checked-in bench records and checks it reproduces the embedded seed:
// the seed is a build artifact of `qfwbench -exp fit-cost`, not a hand
// file, and this pins the two from drifting apart.
func TestFitFromArtifactsMatchesEmbeddedSeed(t *testing.T) {
	h := quickHarness(t)
	cal, err := h.FitFromArtifacts(
		"../../BENCH_kernel.json", "../../BENCH_mps.json", "../../BENCH_route.json")
	if err != nil {
		t.Fatal(err)
	}
	seed := cost.Seed()
	for key, want := range seed.Curves {
		got, ok := cal.Curves[key]
		if !ok {
			t.Errorf("fit lost curve %s", key)
			continue
		}
		if got.Pts != want.Pts ||
			math.Abs(got.Base-want.Base) > 1e-6 ||
			math.Abs(got.Slope-want.Slope) > 1e-6 ||
			math.Abs(got.Knee-want.Knee) > 1e-6 ||
			math.Abs(got.Slope2-want.Slope2) > 1e-6 {
			t.Errorf("%s: fitted %+v, embedded seed %+v — regenerate internal/cost/seed_cost.json with `qfwbench -exp fit-cost`", key, got, want)
		}
	}
	for _, key := range []string{cost.AerSV, cost.AerMPS, cost.NWQOpenMP, cost.NWQCPU, cost.NWQMPI, cost.TNQVMMPS} {
		if cal.Curves[key].Pts < 2 {
			t.Errorf("%s: expected a measured fit, got %+v", key, cal.Curves[key])
		}
	}
}
