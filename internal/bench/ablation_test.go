package bench

import (
	"strings"
	"testing"
)

func TestBatchAblationSpeedup(t *testing.T) {
	// The acceptance check of the batched pipeline: for K >= 8 the batched
	// QAOA parameter sweep must beat per-circuit submission on wall clock.
	// The cloud series is the robust witness — the sequential path pays a
	// simulated network round trip per submission while the batched path
	// maps the whole sweep onto one REST job array.
	h := quickHarness(t)
	exp, err := h.RunBatchAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 4 {
		t.Fatalf("series %d, want 4 (sequential+batched for two backends)", len(exp.Series))
	}
	var cloudSeq, cloudBat *Series
	for i := range exp.Series {
		s := &exp.Series[i]
		switch {
		case strings.Contains(s.Label, "IonQ") && strings.Contains(s.Label, "sequential"):
			cloudSeq = s
		case strings.Contains(s.Label, "IonQ") && strings.Contains(s.Label, "batched"):
			cloudBat = s
		}
	}
	if cloudSeq == nil || cloudBat == nil {
		t.Fatalf("missing cloud series in %+v", exp.Series)
	}
	for i, sp := range cloudSeq.Points {
		bp := cloudBat.Points[i]
		if sp.X != bp.X {
			t.Fatalf("point mismatch: %d vs %d", sp.X, bp.X)
		}
		if sp.X >= 8 && bp.RuntimeMS >= sp.RuntimeMS {
			t.Fatalf("K=%d: batched %.2fms not faster than sequential %.2fms", sp.X, bp.RuntimeMS, sp.RuntimeMS)
		}
	}
}

func TestAblationCatalogListed(t *testing.T) {
	h := quickHarness(t)
	t2 := h.RunBenchmarkCatalog()
	if !strings.Contains(t2.Text, "batch-vs-sequential") {
		t.Fatalf("ablation missing from catalog:\n%s", t2.Text)
	}
	if !strings.Contains(t2.Text, "gate-fusion") {
		t.Fatalf("gate-fusion ablation missing from catalog:\n%s", t2.Text)
	}
	if !strings.Contains(t2.Text, "distributed-fusion") {
		t.Fatalf("distributed-fusion ablation missing from catalog:\n%s", t2.Text)
	}
	if !strings.Contains(t2.Text, "gradient-methods") {
		t.Fatalf("gradient-methods ablation missing from catalog:\n%s", t2.Text)
	}
	if !strings.Contains(t2.Text, "blocked-kernel") {
		t.Fatalf("blocked-kernel ablation missing from catalog:\n%s", t2.Text)
	}
	if !strings.Contains(t2.Text, "engine-routing") {
		t.Fatalf("engine-routing ablation missing from catalog:\n%s", t2.Text)
	}
	if !strings.Contains(t2.Text, "serving-layer") {
		t.Fatalf("serving-layer ablation missing from catalog:\n%s", t2.Text)
	}
}

func TestServeAblationStructure(t *testing.T) {
	// Structure + loose-speedup check of the serving-layer ablation: four
	// policy series over the same client grid plus the load-shed probe, a
	// cached-vs-uncached throughput win at the top client count, and typed
	// shedding under the bounded-queue probe. The >=5x acceptance aggregate
	// is measured by the full-size qfwbench run recorded in BENCH_serve.json.
	h := quickHarness(t)
	exp, err := h.RunServeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 5 {
		t.Fatalf("series %d, want 5 (4 policies + shed probe)", len(exp.Series))
	}
	byLabel := map[string]*Series{}
	for i := range exp.Series {
		byLabel[exp.Series[i].Label] = &exp.Series[i]
	}
	full, none := byLabel["cache+coalesce"], byLabel["no cache"]
	if full == nil || none == nil {
		t.Fatalf("missing policy series in %+v", exp.Series)
	}
	for i, fp := range full.Points {
		np := none.Points[i]
		if fp.X != np.X {
			t.Fatalf("client grid mismatch: %d vs %d", fp.X, np.X)
		}
		if fp.P50MS > fp.P99MS {
			t.Fatalf("c=%d: p50 %.3fms above p99 %.3fms", fp.X, fp.P50MS, fp.P99MS)
		}
	}
	last := len(full.Points) - 1
	if full.Points[last].Throughput < 2*none.Points[last].Throughput {
		t.Fatalf("c=%d: cached throughput %.0f req/s not 2x uncached %.0f req/s",
			full.Points[last].X, full.Points[last].Throughput, none.Points[last].Throughput)
	}
	probe := byLabel["load-shed probe"]
	if probe == nil || len(probe.Points) != 1 {
		t.Fatalf("missing shed probe in %+v", exp.Series)
	}
	if probe.Points[0].Shed == 0 {
		t.Fatal("bounded-queue probe shed nothing: overload never triggered")
	}
	if !strings.Contains(exp.Notes, "ErrOverloaded") {
		t.Fatalf("notes missing shed summary: %s", exp.Notes)
	}
}

func TestKernelAblationStructure(t *testing.T) {
	// Structure check of the blocked-kernel ablation: three series (blocked /
	// per-op fused / per-gate) per workload x depth, identical size grids,
	// and per-gate points above the cap marked infeasible with an explaining
	// note rather than silently dropped. Runs in quick mode, so no timing
	// assertion — the >=2x acceptance aggregate is measured by the
	// full-size qfwbench run recorded in BENCH_kernel.json.
	h := quickHarness(t)
	h.Repeats = 1
	h.Shots = 32
	exp, err := h.RunKernelAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 12 {
		t.Fatalf("series %d, want 12 (3 engines x 2 workloads x 2 depths)", len(exp.Series))
	}
	for i := 0; i+2 < len(exp.Series); i += 3 {
		blocked, fused, perGate := exp.Series[i], exp.Series[i+1], exp.Series[i+2]
		if !strings.HasSuffix(blocked.Label, "blocked") ||
			!strings.HasSuffix(fused.Label, "fused per-op") ||
			!strings.HasSuffix(perGate.Label, "per-gate") {
			t.Fatalf("series ordering unexpected: %q, %q, %q", blocked.Label, fused.Label, perGate.Label)
		}
		if len(blocked.Points) != len(fused.Points) || len(blocked.Points) != len(perGate.Points) {
			t.Fatalf("%s: ragged point counts %d/%d/%d", blocked.Label, len(blocked.Points), len(fused.Points), len(perGate.Points))
		}
		for p := range blocked.Points {
			bp, fp, gp := blocked.Points[p], fused.Points[p], perGate.Points[p]
			if bp.X != fp.X || bp.X != gp.X {
				t.Fatalf("%s: size grid mismatch %d/%d/%d", blocked.Label, bp.X, fp.X, gp.X)
			}
			if bp.RuntimeMS <= 0 || fp.RuntimeMS <= 0 {
				t.Fatalf("%s n=%d: degenerate timings blocked %.3f fused %.3f", blocked.Label, bp.X, bp.RuntimeMS, fp.RuntimeMS)
			}
			if bp.X > 14 {
				if !gp.Infeasible || !strings.Contains(gp.Err, "per-gate baseline capped") {
					t.Fatalf("%s n=%d: per-gate point above cap not marked: %+v", perGate.Label, gp.X, gp)
				}
			} else if gp.RuntimeMS <= 0 {
				t.Fatalf("%s n=%d: degenerate per-gate timing %.3f", perGate.Label, gp.X, gp.RuntimeMS)
			}
		}
	}
}

func TestGradAblationAdjointWins(t *testing.T) {
	// The acceptance check of the gradient engine: the adjoint-driven loops
	// must reach the Nelder-Mead objective with fewer circuit-equivalent
	// evaluations on both workloads. The harness is fully seeded, so this is
	// deterministic.
	h := quickHarness(t)
	exp, err := h.RunGradAblation()
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) Point {
		s := SeriesByLabel(exp, label)
		if s == nil || len(s.Points) == 0 {
			t.Fatalf("missing series %q", label)
		}
		return s.Points[0]
	}
	for _, workload := range []string{"qaoa", "vqls"} {
		nm := get(workload + " neldermead")
		adj := get(workload + " adjoint")
		if adj.Evals >= nm.Evals {
			t.Errorf("%s: adjoint spent %d evals, Nelder-Mead %d — no win", workload, adj.Evals, nm.Evals)
		}
		if adj.Objective > nm.Objective+1e-9 {
			t.Errorf("%s: adjoint objective %.6f worse than Nelder-Mead %.6f", workload, adj.Objective, nm.Objective)
		}
	}
	if s := SeriesByLabel(exp, "qaoa paramshift"); s == nil {
		t.Error("missing qaoa paramshift series")
	}
}

func TestDistAblationFewerBytes(t *testing.T) {
	// The acceptance check of the fused distributed engine: on both QAOA
	// p=2 and TFIM, the staged engine must exchange fewer modelled bytes
	// than the per-gate baseline at every P > 1. Byte counts come from the
	// deterministic mpi payload model, so this holds on any machine.
	h := quickHarness(t)
	h.Repeats = 1
	h.Shots = 64
	exp, err := h.RunDistAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 6 {
		t.Fatalf("series %d, want 6 (fused/per-gate/single for two workloads)", len(exp.Series))
	}
	for _, kind := range []string{"qaoa", "tfim"} {
		fused := SeriesByLabel(exp, kind+" fused-dist")
		perGate := SeriesByLabel(exp, kind+" per-gate-dist")
		if fused == nil || perGate == nil {
			t.Fatalf("missing series for %s", kind)
		}
		for i, fp := range fused.Points {
			gp := perGate.Points[i]
			if fp.X != gp.X {
				t.Fatalf("%s point mismatch: P=%d vs P=%d", kind, fp.X, gp.X)
			}
			if fp.X == 1 {
				if fp.Bytes != 0 {
					t.Fatalf("%s P=1 fused exchanged %d bytes, want 0", kind, fp.Bytes)
				}
				continue
			}
			if fp.Bytes >= gp.Bytes {
				t.Fatalf("%s P=%d: fused %d bytes not below per-gate %d", kind, fp.X, fp.Bytes, gp.Bytes)
			}
		}
	}
	for _, kind := range []string{"qaoa", "tfim"} {
		if !strings.Contains(exp.Notes, kind+": fused stages exchange") {
			t.Fatalf("notes missing %s byte summary: %s", kind, exp.Notes)
		}
	}
}

func TestFusionAblationSpeedup(t *testing.T) {
	// The acceptance check of the fused engine: the aggregate across all
	// workloads must clear 1.5x (the measured laptop aggregate is well
	// above 2x; the bound leaves headroom for noisy CI machines). Timing
	// assertions are meaningless under race instrumentation or -short.
	if raceEnabled {
		t.Skip("wall-clock speedup assertion skipped under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	h := quickHarness(t)
	h.Repeats = 3
	// Wall-clock comparisons share the machine with concurrently running
	// package test binaries; take the best of a few attempts so transient
	// contention cannot fail the build.
	var lastSpeedup float64
	for attempt := 0; attempt < 3; attempt++ {
		exp, err := h.RunFusionAblation()
		if err != nil {
			t.Fatal(err)
		}
		if len(exp.Series) != 6 {
			t.Fatalf("series %d, want 6 (unfused+fused for three workloads)", len(exp.Series))
		}
		var unfusedTotal, fusedTotal float64
		for i := 0; i+1 < len(exp.Series); i += 2 {
			unf, fus := exp.Series[i], exp.Series[i+1]
			if !strings.Contains(unf.Label, "unfused") || !strings.HasSuffix(fus.Label, " fused") {
				t.Fatalf("series ordering unexpected: %q then %q", unf.Label, fus.Label)
			}
			for p := range unf.Points {
				unfusedTotal += unf.Points[p].RuntimeMS
				fusedTotal += fus.Points[p].RuntimeMS
			}
		}
		if fusedTotal <= 0 || unfusedTotal <= 0 {
			t.Fatalf("degenerate timings: unfused %.3f fused %.3f", unfusedTotal, fusedTotal)
		}
		lastSpeedup = unfusedTotal / fusedTotal
		if lastSpeedup >= 1.5 {
			return
		}
	}
	t.Fatalf("fused engine aggregate speedup %.2fx < 1.5x after 3 attempts", lastSpeedup)
}
