package bench

import (
	"strings"
	"testing"
)

func TestBatchAblationSpeedup(t *testing.T) {
	// The acceptance check of the batched pipeline: for K >= 8 the batched
	// QAOA parameter sweep must beat per-circuit submission on wall clock.
	// The cloud series is the robust witness — the sequential path pays a
	// simulated network round trip per submission while the batched path
	// maps the whole sweep onto one REST job array.
	h := quickHarness(t)
	exp, err := h.RunBatchAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Series) != 4 {
		t.Fatalf("series %d, want 4 (sequential+batched for two backends)", len(exp.Series))
	}
	var cloudSeq, cloudBat *Series
	for i := range exp.Series {
		s := &exp.Series[i]
		switch {
		case strings.Contains(s.Label, "IonQ") && strings.Contains(s.Label, "sequential"):
			cloudSeq = s
		case strings.Contains(s.Label, "IonQ") && strings.Contains(s.Label, "batched"):
			cloudBat = s
		}
	}
	if cloudSeq == nil || cloudBat == nil {
		t.Fatalf("missing cloud series in %+v", exp.Series)
	}
	for i, sp := range cloudSeq.Points {
		bp := cloudBat.Points[i]
		if sp.X != bp.X {
			t.Fatalf("point mismatch: %d vs %d", sp.X, bp.X)
		}
		if sp.X >= 8 && bp.RuntimeMS >= sp.RuntimeMS {
			t.Fatalf("K=%d: batched %.2fms not faster than sequential %.2fms", sp.X, bp.RuntimeMS, sp.RuntimeMS)
		}
	}
}

func TestAblationCatalogListed(t *testing.T) {
	h := quickHarness(t)
	t2 := h.RunBenchmarkCatalog()
	if !strings.Contains(t2.Text, "batch-vs-sequential") {
		t.Fatalf("ablation missing from catalog:\n%s", t2.Text)
	}
}
