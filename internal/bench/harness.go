package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/dqaoa"
	"qfw/internal/mpi"
	"qfw/internal/mps"
	"qfw/internal/optimize"
	"qfw/internal/qaoa"
	"qfw/internal/qubo"
	"qfw/internal/statevec"
	"qfw/internal/trace"
	"qfw/internal/workloads"
)

// Point is one measurement of a series.
type Point struct {
	X          int     `json:"x"` // qubits, QUBO size, or rank count
	Placement  string  `json:"placement"`
	RuntimeMS  float64 `json:"runtime_ms"`
	StdMS      float64 `json:"std_ms"`
	Fidelity   float64 `json:"fidelity,omitempty"`
	Bytes      int64   `json:"bytes,omitempty"`     // modelled cross-rank wire bytes
	Evals      int     `json:"evals,omitempty"`     // circuit-equivalent evaluations spent
	Objective  float64 `json:"objective,omitempty"` // final objective value reached
	Infeasible bool    `json:"infeasible,omitempty"`
	Err        string  `json:"err,omitempty"`

	// PredictedMS is the cost model's per-element runtime prediction for
	// the chosen route (routing ablation only): the predicted-vs-actual
	// record of the calibration.
	PredictedMS float64 `json:"predicted_ms,omitempty"`

	// Serving-layer ablation fields: per-request latency floor and
	// percentiles, sustained request throughput, and typed load-shed counts
	// under the multi-client load generator.
	MinMS      float64 `json:"min_ms,omitempty"`
	P50MS      float64 `json:"p50_ms,omitempty"`
	P99MS      float64 `json:"p99_ms,omitempty"`
	Throughput float64 `json:"throughput_rps,omitempty"`
	Shed       int     `json:"shed,omitempty"`
}

// Series is one backend line of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Experiment is a reproduced table or figure.
type Experiment struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Series []Series `json:"series"`
	Notes  string   `json:"notes,omitempty"`
	Text   string   `json:"text,omitempty"` // pre-rendered body (timelines, tables)
}

// Harness drives experiments against a running QFw session.
type Harness struct {
	Session *core.Session
	Repeats int // paper: 3
	Shots   int
	Seed    int64
	Quick   bool // laptop-scale size lists

	// SizeOverride, when non-empty, replaces the workload size list
	// (cmd/qfwbench -sizes) for partial paper-scale sweeps.
	SizeOverride []int
}

// NewHarness wraps a session with the paper's defaults.
func NewHarness(s *core.Session) *Harness {
	return &Harness{Session: s, Repeats: 3, Shots: 256, Seed: 1}
}

func (h *Harness) sizes(spec WorkloadSpec) []int {
	if len(h.SizeOverride) > 0 {
		return h.SizeOverride
	}
	if h.Quick {
		return spec.Quick
	}
	return spec.Sizes
}

func (h *Harness) specFor(name string) WorkloadSpec {
	for _, spec := range Catalog {
		if spec.Name == name {
			return spec
		}
	}
	panic("bench: unknown workload " + name)
}

// timedRun executes a circuit `repeats` times and returns mean/std in ms.
func (h *Harness) timedRun(sel BackendSel, build func() (*core.Result, error)) (mean, std float64, err error) {
	var samples []float64
	for r := 0; r < h.Repeats; r++ {
		start := time.Now()
		if _, err := build(); err != nil {
			return 0, 0, err
		}
		samples = append(samples, float64(time.Since(start))/float64(time.Millisecond))
	}
	mean, std = meanStd(samples)
	return mean, std, nil
}

// meanStd returns the mean and population standard deviation of samples.
func meanStd(samples []float64) (mean, std float64) {
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		std += (s - mean) * (s - mean)
	}
	return mean, math.Sqrt(std / float64(len(samples)))
}

// RunWorkloadFigure reproduces one of Figs. 3a-3d: runtime vs size for a
// non-variational workload across the full backend legend.
func (h *Harness) RunWorkloadFigure(figID, workload string) (*Experiment, error) {
	spec := h.specFor(workload)
	exp := &Experiment{
		ID:    figID,
		Title: fmt.Sprintf("%s runtime scaling (%s)", workload, spec.Describe),
		Notes: "Weak-scaling style sweep: size and (#N,#P) grow together, as in the paper.",
	}
	for _, sel := range Figure3Backends {
		front, err := h.Session.Frontend(core.Properties{Backend: sel.Backend, Subbackend: sel.Subbackend})
		if err != nil {
			return nil, err
		}
		series := Series{Label: sel.Label()}
		for _, n := range h.sizes(spec) {
			pl := PlacementFor(n)
			circ, err := workloads.ByName(workload, n)
			if err != nil {
				return nil, err
			}
			opts := core.RunOptions{
				Shots: h.Shots, Seed: h.Seed,
				Nodes: pl.Nodes, ProcsPerNode: pl.Procs,
			}
			mean, std, runErr := h.timedRun(sel, func() (*core.Result, error) {
				return front.Run(circ, opts)
			})
			pt := Point{X: n, Placement: pl.String(), RuntimeMS: mean, StdMS: std}
			if runErr != nil {
				pt.Infeasible = core.IsInfeasible(runErr)
				pt.Err = runErr.Error()
				pt.RuntimeMS, pt.StdMS = 0, 0
			}
			series.Points = append(series.Points, pt)
		}
		exp.Series = append(exp.Series, series)
	}
	return exp, nil
}

// RunStrongScaling reproduces the Fig. 3c inset: a fixed-size TFIM across
// growing process counts, contrasting state-vector engines (which improve)
// with MPS (which does not).
func (h *Harness) RunStrongScaling(n int, procCounts []int) (*Experiment, error) {
	if len(procCounts) == 0 {
		procCounts = []int{1, 2, 4, 8}
	}
	exp := &Experiment{
		ID:    "fig3c-strong",
		Title: fmt.Sprintf("TFIM-%d approximate strong scaling", n),
		Notes: "State-vector simulators benefit from added processes; MPS-based approaches do not scale as effectively (paper Sec. 6).",
	}
	sels := []BackendSel{
		{Backend: "nwqsim", Subbackend: "mpi"},
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "aer", Subbackend: "matrix_product_state"},
	}
	circ := workloads.TFIM(n, 4, 0.5, 1.0)
	for _, sel := range sels {
		front, err := h.Session.Frontend(core.Properties{Backend: sel.Backend, Subbackend: sel.Subbackend})
		if err != nil {
			return nil, err
		}
		series := Series{Label: sel.Label()}
		for _, p := range procCounts {
			nodes := 1
			if p > 8 {
				nodes = 2
			}
			opts := core.RunOptions{Shots: h.Shots, Seed: h.Seed, Nodes: nodes, ProcsPerNode: p / nodes}
			mean, std, runErr := h.timedRun(sel, func() (*core.Result, error) {
				return front.Run(circ, opts)
			})
			pt := Point{X: p, Placement: fmt.Sprintf("(%d,%d)", nodes, p/nodes), RuntimeMS: mean, StdMS: std}
			if runErr != nil {
				pt.Infeasible = core.IsInfeasible(runErr)
				pt.Err = runErr.Error()
			}
			series.Points = append(series.Points, pt)
		}
		exp.Series = append(exp.Series, series)
	}
	return exp, nil
}

// RunQAOAFigure reproduces Figs. 3e (runtime) and 3f (fidelity): QAOA over
// growing QUBO sizes. Infeasible sizes (over the memory budget) appear as
// the paper's red-X missing points.
func (h *Harness) RunQAOAFigure() (runtimeExp, fidelityExp *Experiment, err error) {
	spec := h.specFor("qaoa")
	runtimeExp = &Experiment{ID: "fig3e", Title: "QAOA runtime vs QUBO size"}
	fidelityExp = &Experiment{
		ID: "fig3f", Title: "QAOA solution fidelity vs QUBO size",
		Notes: "Fidelity vs the classical reference solver (exact/simulated annealing, the D-Wave stand-in); the paper reports >=95% throughout.",
	}
	for _, sel := range QAOABackends {
		front, ferr := h.Session.Frontend(core.Properties{Backend: sel.Backend, Subbackend: sel.Subbackend})
		if ferr != nil {
			return nil, nil, ferr
		}
		rt := Series{Label: sel.Label()}
		fid := Series{Label: sel.Label()}
		for _, n := range h.sizes(spec) {
			pl := PlacementFor(n)
			rng := rand.New(rand.NewSource(h.Seed + int64(n)))
			q := qubo.Random(n, 0.5, 1.0, rng)
			start := time.Now()
			res, qerr := qaoa.Solve(q, front, qaoa.Options{
				P: 1, Shots: h.Shots, MaxEvals: 30, Seed: h.Seed + int64(n),
				Run: core.RunOptions{Nodes: pl.Nodes, ProcsPerNode: pl.Procs},
			})
			elapsed := float64(time.Since(start)) / float64(time.Millisecond)
			rpt := Point{X: n, Placement: pl.String(), RuntimeMS: elapsed}
			fpt := Point{X: n, Placement: pl.String()}
			if qerr != nil {
				rpt.Infeasible = core.IsInfeasible(qerr)
				rpt.Err = qerr.Error()
				rpt.RuntimeMS = 0
				fpt.Infeasible = rpt.Infeasible
				fpt.Err = rpt.Err
			} else {
				_, best := optimize.Reference(q, rng)
				worst := -best
				if worst <= best {
					worst = best + 1
				}
				fpt.Fidelity = 100 * optimize.SolutionQuality(res.Energy, best, worst)
			}
			rt.Points = append(rt.Points, rpt)
			fid.Points = append(fid.Points, fpt)
		}
		runtimeExp.Series = append(runtimeExp.Series, rt)
		fidelityExp.Series = append(fidelityExp.Series, fid)
	}
	return runtimeExp, fidelityExp, nil
}

// RunDQAOAFigure reproduces Fig. 4: total DQAOA time per (QUBO size,
// subqsize, nsubq) configuration on the local MPI backend vs the cloud.
func (h *Harness) RunDQAOAFigure() (*Experiment, error) {
	configs := DQAOAConfigs
	if h.Quick {
		configs = DQAOAQuickConfigs
	}
	exp := &Experiment{
		ID:    "fig4",
		Title: "DQAOA total time per configuration (NWQ-Sim vs IonQ)",
		Notes: "X axis is QUBO size with (subqsize, nsubq) as the secondary label.",
	}
	sels := []BackendSel{
		{Backend: "nwqsim", Subbackend: "openmp"},
		{Backend: "ionq", Subbackend: "simulator"},
	}
	for _, sel := range sels {
		front, err := h.Session.Frontend(core.Properties{Backend: sel.Backend, Subbackend: sel.Subbackend})
		if err != nil {
			return nil, err
		}
		series := Series{Label: sel.Label()}
		for _, cfgSpec := range configs {
			rng := rand.New(rand.NewSource(h.Seed + int64(cfgSpec.QUBOSize)))
			q := qubo.Metamaterial(cfgSpec.QUBOSize, rng)
			res, err := dqaoa.Solve(q, front, dqaoa.Config{
				SubQSize: cfgSpec.SubQSize,
				NSubQ:    cfgSpec.NSubQ,
				MaxIter:  3,
				Patience: 3,
				Async:    true,
				Seed:     h.Seed + 31,
				Shots:    h.Shots,
				MaxEvals: 15,
			})
			pt := Point{
				X:         cfgSpec.QUBOSize,
				Placement: fmt.Sprintf("(%d,%d)", cfgSpec.SubQSize, cfgSpec.NSubQ),
			}
			if err != nil {
				pt.Infeasible = core.IsInfeasible(err)
				pt.Err = err.Error()
			} else {
				pt.RuntimeMS = float64(res.Elapsed) / float64(time.Millisecond)
				pt.Fidelity = 100 * res.Quality
			}
			series.Points = append(series.Points, pt)
		}
		exp.Series = append(exp.Series, series)
	}
	return exp, nil
}

// RunTimelineFigure reproduces Fig. 5: the iteration-level timing of one
// DQAOA configuration on both backends, rendered as an ASCII Gantt chart.
// It returns the experiment plus the two recorders for inspection.
func (h *Harness) RunTimelineFigure(cfgSpec DQAOAConfig) (*Experiment, map[string]*trace.Recorder, error) {
	exp := &Experiment{
		ID:    "fig5",
		Title: fmt.Sprintf("DQAOA-%d (subqsize=%d, nsubq=%d) sub-QAOA timeline", cfgSpec.QUBOSize, cfgSpec.SubQSize, cfgSpec.NSubQ),
		Notes: "Local MPI backend iterations are faster and more uniform; the cloud path adds internet latency and queue waits (paper Fig. 5).",
	}
	recorders := map[string]*trace.Recorder{}
	sels := []BackendSel{
		{Backend: "nwqsim", Subbackend: "openmp"},
		{Backend: "ionq", Subbackend: "simulator"},
	}
	text := ""
	for _, sel := range sels {
		front, err := h.Session.Frontend(core.Properties{Backend: sel.Backend, Subbackend: sel.Subbackend})
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(h.Seed + 99))
		q := qubo.Metamaterial(cfgSpec.QUBOSize, rng)
		rec := trace.NewRecorder()
		res, err := dqaoa.Solve(q, front, dqaoa.Config{
			SubQSize: cfgSpec.SubQSize,
			NSubQ:    cfgSpec.NSubQ,
			MaxIter:  2,
			Patience: 3,
			Async:    true,
			Seed:     h.Seed + 99,
			Shots:    h.Shots,
			MaxEvals: 10,
			Recorder: rec,
		})
		if err != nil {
			return nil, nil, err
		}
		recorders[sel.Label()] = rec
		series := Series{Label: sel.Label()}
		series.Points = append(series.Points, Point{
			X:         cfgSpec.QUBOSize,
			Placement: fmt.Sprintf("(%d,%d)", cfgSpec.SubQSize, cfgSpec.NSubQ),
			RuntimeMS: float64(res.Elapsed) / float64(time.Millisecond),
		})
		exp.Series = append(exp.Series, series)
		text += fmt.Sprintf("\n%s (max concurrent sub-QAOAs: %d)\n%s",
			sel.Label(), rec.MaxConcurrency("subqaoa"), rec.Timeline(72))
	}
	exp.Text = text
	return exp, recorders, nil
}

// RunBatchAblation measures the batch-vs-sequential ablation of the
// catalog: the same p=2 QAOA parameter sweep evaluated through K individual
// submit RPCs (one fully bound circuit each) and through one submit_batch
// RPC carrying the symbolic ansatz plus K bindings. Seeds are identical on
// both paths, so only the pipeline differs. The cloud series isolates the
// round-trip economics (the paper's Fig. 5 motivation); the local series
// isolates parse amortization.
func (h *Harness) RunBatchAblation() (*Experiment, error) {
	spec := AblationCatalog[0]
	exp := &Experiment{
		ID:    "ablation-batch",
		Title: "Batched vs per-circuit QAOA evaluation (" + spec.Describe + ")",
		Notes: "X axis is the batch size K; both series run the identical parameter sweep with identical seeds.",
	}
	rng := rand.New(rand.NewSource(h.Seed + 41))
	q := qubo.Random(8, 0.5, 1.0, rng)
	ham, _ := q.CostHamiltonian()
	ansatz := qaoa.BuildAnsatz(ham, 2)
	for _, sel := range []BackendSel{
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "ionq", Subbackend: "simulator"},
	} {
		front, err := h.Session.Frontend(core.Properties{Backend: sel.Backend, Subbackend: sel.Subbackend})
		if err != nil {
			return nil, err
		}
		seq := Series{Label: sel.Label() + " sequential"}
		bat := Series{Label: sel.Label() + " batched"}
		for _, k := range spec.Ks {
			prng := rand.New(rand.NewSource(h.Seed + int64(k)))
			bindings := make([]core.Bindings, k)
			for i := range bindings {
				params := make([]float64, 4) // p=2: two gammas, two betas
				for j := range params {
					params[j] = 0.1 + 0.8*prng.Float64()
				}
				bindings[i] = qaoa.BindParams(params)
			}
			opts := core.RunOptions{Shots: h.Shots, Seed: h.Seed}

			start := time.Now()
			for i, b := range bindings {
				if _, err := front.Run(ansatz.Bind(b), opts.ForElement(i)); err != nil {
					return nil, fmt.Errorf("sequential K=%d: %w", k, err)
				}
			}
			seqMS := float64(time.Since(start)) / float64(time.Millisecond)

			start = time.Now()
			if _, err := front.RunBatch(ansatz, bindings, opts); err != nil {
				return nil, fmt.Errorf("batched K=%d: %w", k, err)
			}
			batMS := float64(time.Since(start)) / float64(time.Millisecond)

			seq.Points = append(seq.Points, Point{X: k, Placement: fmt.Sprintf("K=%d", k), RuntimeMS: seqMS})
			bat.Points = append(bat.Points, Point{X: k, Placement: fmt.Sprintf("K=%d", k), RuntimeMS: batMS})
		}
		exp.Series = append(exp.Series, seq, bat)
	}
	return exp, nil
}

// pinGOMAXPROCS pins the scheduler width for the duration of one ablation
// and returns the restore function. Every timing ablation states its
// parallelism intent through this helper at entry — previously each
// experiment read whatever GOMAXPROCS the process happened to have, so a
// pinned single-core study leaked its setting into the multi-core studies
// that ran after it (and vice versa).
func pinGOMAXPROCS(n int) func() {
	prev := runtime.GOMAXPROCS(n)
	return func() { runtime.GOMAXPROCS(prev) }
}

// ablationWorkload builds the bound, measurement-stripped circuit of one
// kernel-ablation workload. The gate-fusion and distributed-fusion studies
// share these recipes so their numbers stay comparable.
func (h *Harness) ablationWorkload(kind string, n int) (*circuit.Circuit, error) {
	switch kind {
	case "qaoa":
		rng := rand.New(rand.NewSource(h.Seed + int64(n)))
		q := qubo.Random(n, 0.5, 1.0, rng)
		ham, _ := q.CostHamiltonian()
		ansatz := qaoa.BuildAnsatz(ham, 2)
		prng := rand.New(rand.NewSource(h.Seed + 7))
		params := make([]float64, 4)
		for j := range params {
			params[j] = 0.1 + 0.8*prng.Float64()
		}
		return ansatz.Bind(qaoa.BindParams(params)).StripMeasurements(), nil
	case "tfim":
		return workloads.TFIM(n, 4, 0.5, 1.0).StripMeasurements(), nil
	case "ghz":
		return workloads.GHZ(n).StripMeasurements(), nil
	}
	return nil, fmt.Errorf("bench: unknown ablation workload %q", kind)
}

// RunFusionAblation measures the gate-fusion ablation of the catalog: the
// same bound QAOA/TFIM/GHZ circuits executed through the unfused per-gate
// statevector kernels (statevec.RunCircuit — the seed engine's path) and
// through the fused program (statevec.RunFused: merged 1q/2q blocks, hoisted
// diagonal cost layers, specialized permutation/diagonal kernels, pooled
// buffers, alias sampling). Both paths use identical circuits, worker counts
// and RNG seeds, so only the execution engine differs.
func (h *Harness) RunFusionAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "gate-fusion" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-fusion",
		Title: "Fused vs per-gate statevector execution (" + spec.Describe + ")",
		Notes: "X axis is the qubit count; each pair of series runs the identical circuit and seed, unfused vs fused.",
	}
	workers := runtime.NumCPU()
	defer pinGOMAXPROCS(workers)()
	shots := h.Shots
	if shots <= 0 {
		shots = 256
	}
	var fusedTotal, unfusedTotal float64
	for _, kind := range []string{"qaoa", "tfim", "ghz"} {
		unfused := Series{Label: kind + " unfused"}
		fused := Series{Label: kind + " fused"}
		for _, n := range spec.Sizes {
			c, err := h.ablationWorkload(kind, n)
			if err != nil {
				return nil, err
			}
			plan := circuit.PlanFusion(c)
			um, us, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
				rng := rand.New(rand.NewSource(h.Seed))
				s, _ := statevec.RunCircuit(c, workers, rng)
				s.SampleCounts(shots, rng)
				s.Release()
				return nil, nil
			})
			if err != nil {
				return nil, err
			}
			fm, fs, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
				rng := rand.New(rand.NewSource(h.Seed))
				s, _ := statevec.RunFused(c, plan, workers, rng)
				s.SampleCounts(shots, rng)
				s.Release()
				return nil, nil
			})
			if err != nil {
				return nil, err
			}
			unfusedTotal += um
			fusedTotal += fm
			unfused.Points = append(unfused.Points, Point{X: n, Placement: fmt.Sprintf("(1,%d)", workers), RuntimeMS: um, StdMS: us})
			fused.Points = append(fused.Points, Point{X: n, Placement: fmt.Sprintf("(1,%d)", workers), RuntimeMS: fm, StdMS: fs})
		}
		exp.Series = append(exp.Series, unfused, fused)
	}
	if fusedTotal > 0 {
		exp.Notes += fmt.Sprintf(" Aggregate speedup: %.2fx.", unfusedTotal/fusedTotal)
	}
	return exp, nil
}

// ablationDeepWorkload builds the deep layer stacks of the blocked-kernel
// ablation: depth repetitions of (diagonal coupling layer + transverse
// rotation layer) — the stage structure the cache-blocked engine exists
// for. "qaoa" is a p=depth random-QUBO ansatz, "tfim" a depth-step Trotter
// evolution.
func (h *Harness) ablationDeepWorkload(kind string, n, depth int) (*circuit.Circuit, error) {
	switch kind {
	case "qaoa":
		rng := rand.New(rand.NewSource(h.Seed + int64(n)))
		q := qubo.Random(n, 0.5, 1.0, rng)
		ham, _ := q.CostHamiltonian()
		ansatz := qaoa.BuildAnsatz(ham, depth)
		prng := rand.New(rand.NewSource(h.Seed + 7))
		params := make([]float64, 2*depth)
		for j := range params {
			params[j] = 0.1 + 0.8*prng.Float64()
		}
		return ansatz.Bind(qaoa.BindParams(params)).StripMeasurements(), nil
	case "tfim":
		return workloads.TFIM(n, depth, 0.5, 1.0).StripMeasurements(), nil
	}
	return nil, fmt.Errorf("bench: unknown deep ablation workload %q", kind)
}

// RunKernelAblation measures the blocked-kernel ablation of the catalog:
// deep QAOA/TFIM circuits executed through the cache-blocked stage engine
// (statevec.RunStaged: tile-resident stages, SoA amplitude layout, SIMD
// kernels, fused boundary gathers), through the per-op fused program
// (statevec.RunProgram — the engine the staged path replaces above the
// tuner threshold), and through the per-gate seed kernels
// (statevec.RunCircuit). Strictly single-core: GOMAXPROCS and kernel
// workers are pinned to 1 for the duration, so the numbers isolate memory
// locality, not parallel speedup. Blocked and fused repetitions are
// interleaved in pairs so shared-machine noise lands on both sides of the
// ratio, and the timed region covers circuit execution only (sampling is
// engine-independent). The per-gate baseline is capped in size —
// at the paper's n=24+ a per-gate sweep takes minutes and adds nothing over
// the capped trend — and larger points carry an explanatory marker.
func (h *Harness) RunKernelAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "blocked-kernel" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-kernel",
		Title: "Cache-blocked stages vs per-op fused vs per-gate execution (" + spec.Describe + ")",
		Notes: "X axis is the qubit count; each series triplet runs the identical circuit and seed on one pinned core.",
	}
	defer pinGOMAXPROCS(1)()
	sizes := spec.Sizes
	depths := []int{4, 8}
	perGateCap := 20
	if h.Quick {
		sizes = []int{14, 16}
		depths = []int{2, 4}
		perGateCap = 14
	}
	var blockedDeep, fusedDeep float64 // the n>=20 acceptance aggregate
	for _, kind := range []string{"qaoa", "tfim"} {
		for _, depth := range depths {
			blocked := Series{Label: fmt.Sprintf("%s d=%d blocked", kind, depth)}
			fused := Series{Label: fmt.Sprintf("%s d=%d fused per-op", kind, depth)}
			perGate := Series{Label: fmt.Sprintf("%s d=%d per-gate", kind, depth)}
			for _, n := range sizes {
				c, err := h.ablationDeepWorkload(kind, n, depth)
				if err != nil {
					return nil, err
				}
				plan := circuit.PlanFusion(c)
				sched, err := circuit.PlanTileStages(plan, c, statevec.CurrentTuning().TileBitsFor(n))
				if err != nil {
					return nil, fmt.Errorf("bench: %s n=%d untileable: %w", kind, n, err)
				}
				runBlocked := func() error {
					rng := rand.New(rand.NewSource(h.Seed))
					s, _, ok := statevec.RunStaged(c, plan, sched, 1, rng)
					if !ok {
						return fmt.Errorf("bench: staged engine refused %s n=%d", kind, n)
					}
					s.Release()
					return nil
				}
				runFused := func() error {
					rng := rand.New(rand.NewSource(h.Seed))
					s, _ := statevec.RunProgram(plan.Compile(c), 1, rng)
					s.Release()
					return nil
				}
				// Untimed warmup of both engines: the first execution at a
				// new size pays first-touch page faults for every fresh
				// buffer (seconds at n >= 24), and whichever engine runs
				// first would absorb that allocator cost while the second
				// inherits pool-warmed memory. A locality study measures
				// steady-state kernels, not the page allocator.
				if err := runBlocked(); err != nil {
					return nil, err
				}
				if err := runFused(); err != nil {
					return nil, err
				}
				// Paired interleaved repetitions: the two engines alternate
				// within each repeat, so a slow machine window inflates the
				// same repeat on both sides instead of biasing whichever
				// engine it happened to land on. The timed region covers
				// circuit execution only — sampling cost is identical for
				// every engine and would only dilute the kernel ratio.
				reps := h.Repeats
				if reps < 1 {
					reps = 1
				}
				var bT, fT []float64
				for r := 0; r < reps; r++ {
					t0 := time.Now()
					if err := runBlocked(); err != nil {
						return nil, err
					}
					bT = append(bT, float64(time.Since(t0))/float64(time.Millisecond))
					t0 = time.Now()
					if err := runFused(); err != nil {
						return nil, err
					}
					fT = append(fT, float64(time.Since(t0))/float64(time.Millisecond))
				}
				bm, bs := meanStd(bT)
				fm, fs := meanStd(fT)
				blocked.Points = append(blocked.Points, Point{X: n, Placement: "(1,1)", RuntimeMS: bm, StdMS: bs})
				fused.Points = append(fused.Points, Point{X: n, Placement: "(1,1)", RuntimeMS: fm, StdMS: fs})
				if n >= 20 {
					blockedDeep += bm
					fusedDeep += fm
				}
				if n > perGateCap {
					perGate.Points = append(perGate.Points, Point{X: n, Placement: "(1,1)",
						Infeasible: true, Err: fmt.Sprintf("per-gate baseline capped at %d qubits", perGateCap)})
					continue
				}
				gm, gs, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
					rng := rand.New(rand.NewSource(h.Seed))
					s, _ := statevec.RunCircuit(c, 1, rng)
					s.Release()
					return nil, nil
				})
				if err != nil {
					return nil, err
				}
				perGate.Points = append(perGate.Points, Point{X: n, Placement: "(1,1)", RuntimeMS: gm, StdMS: gs})
			}
			exp.Series = append(exp.Series, blocked, fused, perGate)
		}
	}
	if blockedDeep > 0 {
		exp.Notes += fmt.Sprintf(" Aggregate blocked speedup over the per-op fused engine at n>=20: %.2fx.", fusedDeep/blockedDeep)
	}
	return exp, nil
}

// RunDistAblation measures the distributed-fusion ablation of the catalog:
// the same bound QAOA p=2 and TFIM circuits executed over P ranks through
// the fused stage engine (statevec.RunDistributed: staged fused kernels,
// bit-permutation remap exchanges, rank-local diagonal layers) and through
// the per-gate baseline (statevec.RunDistributedPerGate: one whole-shard
// Sendrecv per global-qubit gate), with a single-rank fused series as the
// no-communication reference. Both distributed paths run identical circuits
// and seeds; the Bytes column is the modelled cross-rank wire volume from
// the mpi payload model, which is deterministic per configuration.
func (h *Harness) RunDistAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "distributed-fusion" {
			spec = ab
		}
	}
	exp := &Experiment{
		ID:    "ablation-dist",
		Title: "Fused-stage vs per-gate distributed execution (" + spec.Describe + ")",
		Notes: "X axis is the rank count P; every series runs the identical circuit and seed.",
	}
	shots := h.Shots
	if shots <= 0 {
		shots = 256
	}
	const n = 10
	type distRunner func(comm *mpi.Comm, c *circuit.Circuit) error
	fusedRun := func(comm *mpi.Comm, c *circuit.Circuit) error {
		_, err := statevec.RunDistributed(comm, c, shots, h.Seed)
		return err
	}
	perGateRun := func(comm *mpi.Comm, c *circuit.Circuit) error {
		_, err := statevec.RunDistributedPerGate(comm, c, shots, h.Seed)
		return err
	}
	measure := func(c *circuit.Circuit, p int, run distRunner) (Point, error) {
		var bytes int64
		mean, std, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
			w := mpi.NewWorld(p)
			if err := w.Run(func(comm *mpi.Comm) error { return run(comm, c) }); err != nil {
				return nil, err
			}
			bytes = w.BytesSent()
			return nil, nil
		})
		if err != nil {
			return Point{}, err
		}
		return Point{X: p, Placement: fmt.Sprintf("P=%d", p), RuntimeMS: mean, StdMS: std, Bytes: bytes}, nil
	}
	for _, kind := range []string{"qaoa", "tfim"} {
		c, err := h.ablationWorkload(kind, n)
		if err != nil {
			return nil, err
		}
		fused := Series{Label: kind + " fused-dist"}
		perGate := Series{Label: kind + " per-gate-dist"}
		single := Series{Label: kind + " single-rank fused"}
		// The no-communication reference is independent of P: time it once
		// and repeat the point across the axis.
		sm, ss, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
			rng := rand.New(rand.NewSource(h.Seed))
			s, _ := statevec.RunFused(c, nil, 1, rng)
			s.SampleCounts(shots, rng)
			s.Release()
			return nil, nil
		})
		if err != nil {
			return nil, err
		}
		var fusedBytes, gateBytes int64
		for _, p := range spec.Ps {
			fp, err := measure(c, p, fusedRun)
			if err != nil {
				return nil, err
			}
			gp, err := measure(c, p, perGateRun)
			if err != nil {
				return nil, err
			}
			fusedBytes += fp.Bytes
			gateBytes += gp.Bytes
			fused.Points = append(fused.Points, fp)
			perGate.Points = append(perGate.Points, gp)
			single.Points = append(single.Points, Point{X: p, Placement: "P=1", RuntimeMS: sm, StdMS: ss})
		}
		if fusedBytes > 0 {
			exp.Notes += fmt.Sprintf(" %s: fused stages exchange %.1fx fewer bytes than per-gate.",
				kind, float64(gateBytes)/float64(fusedBytes))
		}
		exp.Series = append(exp.Series, fused, perGate, single)
	}
	return exp, nil
}

// RunMPSAblation measures the mps-engine ablation of the catalog: batches
// of K identical TFIM / ring-QAOA executions run through the per-gate seed
// path (one transpile + gate-by-gate MPS update with there-and-back swap
// routing per element, serially — exactly what the matrix_product_state
// sub-backend did before the compiled engine) and through the production
// path (one fusion-aware compiled schedule with a persistent-permutation
// swap route, elements fanned across cores). The fused statevector engine
// runs beside them at the sizes it can reach, locating the crossover where
// MPS takes over. Identical circuits and seeds everywhere.
func (h *Harness) RunMPSAblation() (*Experiment, error) {
	var spec AblationSpec
	for _, ab := range AblationCatalog {
		if ab.Name == "mps-engine" {
			spec = ab
		}
	}
	k := 8
	if len(spec.Ks) > 0 {
		k = spec.Ks[0]
	}
	exp := &Experiment{
		ID:    "ablation-mps",
		Title: "Compiled+batched vs per-gate MPS execution (" + spec.Describe + ")",
		Notes: fmt.Sprintf("X axis is the qubit count; every series runs the identical K=%d circuit batch with identical seeds.", k),
	}
	shots := h.Shots
	if shots <= 0 {
		shots = 256
	}
	const maxBond = 64
	svWorkers := runtime.GOMAXPROCS(0)
	var compiledTotal, perGateTotal float64
	for _, kind := range []string{"tfim", "qaoa-ring"} {
		perGate := Series{Label: kind + " per-gate mps"}
		compiled := Series{Label: kind + " compiled+batched mps"}
		sv := Series{Label: kind + " fused statevector"}
		for _, n := range spec.Sizes {
			circ, err := workloads.ByName(kind, n)
			if err != nil {
				return nil, err
			}
			circ = circ.StripMeasurements()
			pm, ps, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
				for i := 0; i < k; i++ {
					rng := rand.New(rand.NewSource(h.Seed + int64(i)))
					if _, _, err := mps.Simulate(circ, shots, maxBond, 0, rng); err != nil {
						return nil, err
					}
				}
				return nil, nil
			})
			if err != nil {
				return nil, err
			}
			cm, cs, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
				cc, err := mps.CompileCircuit(circ)
				if err != nil {
					return nil, err
				}
				states, err := cc.RunBatch(make([]map[string]float64, k), mps.Options{MaxBond: maxBond})
				if err != nil {
					return nil, err
				}
				for i, m := range states {
					rng := rand.New(rand.NewSource(h.Seed + int64(i)))
					m.Sample(shots, rng)
					m.Release()
				}
				return nil, nil
			})
			if err != nil {
				return nil, err
			}
			perGateTotal += pm
			compiledTotal += cm
			perGate.Points = append(perGate.Points, Point{X: n, Placement: fmt.Sprintf("K=%d", k), RuntimeMS: pm, StdMS: ps})
			compiled.Points = append(compiled.Points, Point{X: n, Placement: fmt.Sprintf("K=%d", k), RuntimeMS: cm, StdMS: cs})
			// Dense reference: a 2^n amplitude vector stops fitting past the
			// crossover — render those sizes as the paper's red-X points.
			if n > 26 {
				sv.Points = append(sv.Points, Point{X: n, Placement: fmt.Sprintf("K=%d", k),
					Infeasible: true, Err: fmt.Sprintf("state vector of %d qubits exceeds the ablation budget", n)})
				continue
			}
			sm, ss, err := h.timedRun(BackendSel{}, func() (*core.Result, error) {
				for i := 0; i < k; i++ {
					rng := rand.New(rand.NewSource(h.Seed + int64(i)))
					s, _ := statevec.RunFused(circ, nil, svWorkers, rng)
					s.SampleCounts(shots, rng)
					s.Release()
				}
				return nil, nil
			})
			if err != nil {
				return nil, err
			}
			sv.Points = append(sv.Points, Point{X: n, Placement: fmt.Sprintf("(1,%d)", svWorkers), RuntimeMS: sm, StdMS: ss})
		}
		exp.Series = append(exp.Series, perGate, compiled, sv)
	}
	if compiledTotal > 0 {
		exp.Notes += fmt.Sprintf(" Aggregate speedup over the per-gate path: %.2fx.", perGateTotal/compiledTotal)
	}
	return exp, nil
}

// RunCapabilityTable reproduces Table 1 from the live backend registry,
// extended with the auto selector's routing decisions over the ablation mix
// (chosen engine, rule, sized resources, predicted cost per workload).
func (h *Harness) RunCapabilityTable() (*Experiment, error) {
	exp := &Experiment{ID: "table1", Title: "Backends used with QFw"}
	text := fmt.Sprintf("%-10s %-42s %-4s %-4s %-10s %s\n", "Backend", "Sub-backends", "CPU", "GPU", "NativeMPI", "Notes")
	for _, backend := range h.Session.Backends() {
		front, err := h.Session.Frontend(core.Properties{Backend: backend})
		if err != nil {
			return nil, err
		}
		caps, err := front.Capabilities()
		if err != nil {
			return nil, err
		}
		text += fmt.Sprintf("%-10s %-42s %-4v %-4v %-10v %s\n",
			caps.Backend, fmt.Sprintf("%v", caps.Subbackends), caps.CPU, caps.GPU, caps.NativeMPI, caps.Notes)
	}
	if table, err := h.RouteDecisionTable(RouteMix); err == nil {
		text += "\nAuto-selector routing decisions (workload mix):\n" + table
	}
	exp.Text = text
	return exp, nil
}

// RunBenchmarkCatalog reproduces Table 2.
func (h *Harness) RunBenchmarkCatalog() *Experiment {
	exp := &Experiment{ID: "table2", Title: "Benchmarks and problem sizes grouped by category"}
	text := fmt.Sprintf("%-8s %-16s %-30s %s\n", "Name", "Category", "Sizes", "Description")
	for _, spec := range Catalog {
		text += fmt.Sprintf("%-8s %-16s %-30s %s\n", spec.Name, spec.Variant, fmt.Sprint(spec.Sizes), spec.Describe)
	}
	text += "\nDQAOA configurations (QUBO size : (subqsize, nsubq)):\n"
	for _, cfgSpec := range DQAOAConfigs {
		text += "  " + cfgSpec.String() + "\n"
	}
	text += "\nAblations (design-choice studies):\n"
	for _, ab := range AblationCatalog {
		sweep := fmt.Sprintf("K=%v", ab.Ks)
		switch {
		case len(ab.Ks) == 0 && len(ab.Ps) > 0:
			sweep = fmt.Sprintf("P=%v", ab.Ps)
		case len(ab.Ks) == 0:
			sweep = fmt.Sprintf("n=%v", ab.Sizes)
		}
		text += fmt.Sprintf("  %-20s %-16s %s\n", ab.Name, sweep, ab.Describe)
	}
	exp.Text = text
	return exp
}
