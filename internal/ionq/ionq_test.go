package ionq

import (
	"strings"
	"sync"
	"testing"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/faults"
)

func startService(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	if cfg.Latency == 0 {
		cfg.Latency = time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 3
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, NewClient(s.URL())
}

func bellQASM(t *testing.T) string {
	t.Helper()
	c := circuit.New(2)
	c.H(0).CX(0, 1).MeasureAll()
	qasm, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	return qasm
}

func TestSubmitWaitResults(t *testing.T) {
	_, cl := startService(t, Config{})
	id, err := cl.Submit("bell", bellQASM(t), 500)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "ionq-job-") {
		t.Fatalf("job id %q", id)
	}
	counts, err := cl.Wait(id, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for key, n := range counts {
		if key != "00" && key != "11" {
			t.Fatalf("bell outcome %q", key)
		}
		total += n
	}
	if total != 500 {
		t.Fatalf("total %d", total)
	}
}

func TestStatusTransitions(t *testing.T) {
	_, cl := startService(t, Config{QueueDelay: 50 * time.Millisecond})
	id, err := cl.Submit("bell", bellQASM(t), 100)
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusSubmitted && st != StatusRunning {
		t.Fatalf("early status %q", st)
	}
	// The retrying client would ride out the 409 until the job completes;
	// a single-attempt probe sees the raw "not finished" conflict.
	impatient := NewClient(cl.BaseURL)
	impatient.Retry.MaxAttempts = 1
	if _, err := impatient.Results(id); err == nil {
		t.Fatal("results before completion should fail")
	}
	if _, err := cl.Wait(id, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, _ = cl.Status(id)
	if st != StatusCompleted {
		t.Fatalf("final status %q", st)
	}
}

func TestRejectsBadInput(t *testing.T) {
	_, cl := startService(t, Config{MaxQubits: 4})
	if _, err := cl.Submit("bad", "not qasm at all", 10); err == nil {
		t.Fatal("accepted malformed qasm")
	}
	big := circuit.New(6)
	big.H(0)
	qasm, _ := big.ToQASM()
	if _, err := cl.Submit("big", qasm, 10); err == nil || !strings.Contains(err.Error(), "supports 4") {
		t.Fatalf("qubit cap not enforced: %v", err)
	}
	if _, err := cl.Status("ionq-job-999999"); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestQueueSerializesJobs(t *testing.T) {
	// Concurrency=1 with a queue delay means N jobs take at least N*delay.
	_, cl := startService(t, Config{QueueDelay: 30 * time.Millisecond, Concurrency: 1})
	qasm := bellQASM(t)
	const jobs = 4
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := cl.Submit("j", qasm, 50)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = cl.Wait(id, 5*time.Millisecond)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Each job waits >=15ms (QueueDelay/2) in queue, serialized.
	if el := time.Since(start); el < 4*15*time.Millisecond {
		t.Fatalf("queue did not serialize: %v", el)
	}
}

func TestLatencyInjection(t *testing.T) {
	_, cl := startService(t, Config{Latency: 40 * time.Millisecond})
	start := time.Now()
	if _, err := cl.Status("ionq-job-000000"); err == nil {
		t.Fatal("expected 404")
	}
	if el := time.Since(start); el < 35*time.Millisecond {
		t.Fatalf("network latency not injected: %v", el)
	}
}

func TestCloseRejectsNewJobs(t *testing.T) {
	s, cl := startService(t, Config{})
	s.Close()
	if _, err := cl.Submit("after", bellQASM(t), 10); err == nil {
		t.Fatal("accepted job after close")
	}
}

func TestBatchSubmitAndCollect(t *testing.T) {
	_, cl := startService(t, Config{})
	qasm := bellQASM(t)
	ids, err := cl.SubmitBatch("array", []string{qasm, qasm, qasm}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids %v", ids)
	}
	counts, err := cl.WaitBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		total := 0
		for _, n := range c {
			total += n
		}
		if total != 64 {
			t.Fatalf("job %d total %d", i, total)
		}
	}
}

func TestInjectedFaultsAreRetried(t *testing.T) {
	// Every third API interaction answers 503 with a Retry-After hint. The
	// retrying client must ride the faults out end-to-end on both the
	// single-job and the batch path, with correct physics.
	svc, cl := startService(t, Config{FaultEvery: 3})
	qasm := bellQASM(t)

	id, err := cl.Submit("bell", qasm, 100)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := cl.Wait(id, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for key, n := range counts {
		if key != "00" && key != "11" {
			t.Fatalf("bell outcome %q", key)
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}

	ids, err := cl.SubmitBatch("flaky-array", []string{qasm, qasm, qasm, qasm}, 32)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := cl.WaitBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range batch {
		total := 0
		for _, n := range c {
			total += n
		}
		if total != 32 {
			t.Fatalf("job %d total %d", i, total)
		}
	}
	if calls := svc.apiCalls.Load(); calls < int64(svc.cfg.FaultEvery) {
		t.Fatalf("only %d API interactions recorded; no fault can have fired", calls)
	}
}

func TestRetryAfterHintSurfaces(t *testing.T) {
	// A one-attempt client sees the raw injected 503: the error must be
	// transient, and RetryAfterOf must recover the server's hint.
	_, cl := startService(t, Config{FaultEvery: 1})
	cl.Retry.MaxAttempts = 1
	_, err := cl.Submit("bell", bellQASM(t), 10)
	if err == nil {
		t.Fatal("submit against an always-faulting service succeeded in one attempt")
	}
	if !faults.IsTransient(err) {
		t.Fatalf("injected 503 not classified transient: %v", err)
	}
	if d, ok := RetryAfterOf(err); !ok || d <= 0 {
		t.Fatalf("Retry-After hint lost: d=%v ok=%v err=%v", d, ok, err)
	}
}

func TestBatchRejectsWithoutOrphans(t *testing.T) {
	// A job array with one invalid element must enqueue nothing: the valid
	// circuits must not run as orphaned jobs the client has no IDs for.
	svc, cl := startService(t, Config{})
	qasm := bellQASM(t)
	if _, err := cl.SubmitBatch("bad", []string{qasm, "not qasm at all"}, 16); err == nil || !strings.Contains(err.Error(), "circuit 1") {
		t.Fatalf("err = %v, want circuit-1 rejection", err)
	}
	svc.mu.Lock()
	n := len(svc.jobs)
	svc.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d orphaned jobs registered after rejected batch", n)
	}
}
