// Package ionq provides a simulated IonQ quantum cloud: an HTTP REST
// service with job submission, queueing, status polling, and result
// retrieval, backed by the state-vector engine. Configurable network
// latency, jitter, and queue concurrency reproduce the behaviour that
// matters in the paper's Figs. 4-5: cloud execution is slower and less
// uniform than local MPI backends because every interaction crosses the
// internet and a shared queue (the paper runs against QCUP's shared queue).
//
// The wire format follows the spirit of IonQ's v0.3 REST API:
//
//	POST /v0.3/jobs                {name, shots, input:{format:"qasm", qasm}}
//	GET  /v0.3/jobs/{id}           -> {id, status}
//	GET  /v0.3/jobs/{id}/results   -> {counts}
package ionq

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/statevec"
)

// Config tunes the simulated cloud.
type Config struct {
	// Latency is the mean one-way network + service latency added to every
	// HTTP interaction; Jitter adds uniform noise in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// QueueDelay is the mean extra wait a job spends queued before a worker
	// picks it up (cloud queue pressure).
	QueueDelay time.Duration
	// Concurrency is how many jobs execute simultaneously (cloud simulators
	// serialize heavily; default 1).
	Concurrency int
	// MaxQubits rejects circuits beyond the device/emulator size (default 29).
	MaxQubits int
	Seed      int64
}

func (c *Config) fill() {
	if c.Latency <= 0 {
		c.Latency = 60 * time.Millisecond
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 29
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Job states reported by the REST API.
const (
	StatusSubmitted = "submitted"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

type job struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Shots  int    `json:"shots"`
	QASM   string `json:"-"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	counts map[string]int
}

// submitBody is the POST /v0.3/jobs request body.
type submitBody struct {
	Name  string `json:"name,omitempty"`
	Shots int    `json:"shots,omitempty"`
	Input struct {
		Format string `json:"format"`
		QASM   string `json:"qasm"`
	} `json:"input"`
}

// Service is a running simulated cloud endpoint.
type Service struct {
	cfg Config
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	rng    *rand.Rand
	queue  chan *job
	wg     sync.WaitGroup
	closed bool
}

// Start launches the service on an ephemeral loopback port.
func Start(cfg Config) (*Service, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		ln:    ln,
		jobs:  make(map[string]*job),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		queue: make(chan *job, 4096),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v0.3/jobs", s.handleJobs)
	mux.HandleFunc("/v0.3/jobs/", s.handleJob)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	for w := 0; w < cfg.Concurrency; w++ {
		s.wg.Add(1)
		go s.worker(int64(w))
	}
	return s, nil
}

// URL returns the service base URL.
func (s *Service) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops accepting requests and waits for workers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.srv.Close()
	s.wg.Wait()
}

// networkDelay sleeps for the configured latency + jitter, simulating the
// internet round trip in front of every API interaction.
func (s *Service) networkDelay() {
	s.mu.Lock()
	j := time.Duration(0)
	if s.cfg.Jitter > 0 {
		j = time.Duration(s.rng.Int63n(int64(s.cfg.Jitter)))
	}
	s.mu.Unlock()
	time.Sleep(s.cfg.Latency + j)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Input.Format != "qasm" {
		http.Error(w, fmt.Sprintf("unsupported input format %q", body.Input.Format), http.StatusBadRequest)
		return
	}
	c, err := circuit.ParseQASM(body.Input.QASM)
	if err != nil {
		http.Error(w, "invalid qasm: "+err.Error(), http.StatusBadRequest)
		return
	}
	if c.NQubits > s.cfg.MaxQubits {
		http.Error(w, fmt.Sprintf("circuit has %d qubits, device supports %d", c.NQubits, s.cfg.MaxQubits), http.StatusBadRequest)
		return
	}
	shots := body.Shots
	if shots <= 0 {
		shots = 1024
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "service shutting down", http.StatusServiceUnavailable)
		return
	}
	s.nextID++
	j := &job{
		ID:     fmt.Sprintf("ionq-job-%06d", s.nextID),
		Name:   body.Name,
		Shots:  shots,
		QASM:   body.Input.QASM,
		Status: StatusSubmitted,
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()
	s.queue <- j
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v0.3/jobs/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(parts) == 2 && parts[1] == "results" {
		s.mu.Lock()
		status := j.Status
		counts := j.counts
		errMsg := j.Error
		s.mu.Unlock()
		switch status {
		case StatusCompleted:
			json.NewEncoder(w).Encode(map[string]any{"counts": counts})
		case StatusFailed:
			http.Error(w, errMsg, http.StatusUnprocessableEntity)
		default:
			http.Error(w, "job not finished", http.StatusConflict)
		}
		return
	}
	s.mu.Lock()
	snapshot := *j
	s.mu.Unlock()
	json.NewEncoder(w).Encode(snapshot)
}

// worker drains the queue, simulating queue wait and executing circuits on
// the internal state-vector emulator.
func (s *Service) worker(id int64) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Seed*1000 + id))
	for j := range s.queue {
		if s.cfg.QueueDelay > 0 {
			d := s.cfg.QueueDelay/2 + time.Duration(rng.Int63n(int64(s.cfg.QueueDelay)))
			time.Sleep(d)
		}
		s.mu.Lock()
		j.Status = StatusRunning
		s.mu.Unlock()
		c, err := circuit.ParseQASM(j.QASM)
		if err != nil {
			s.finishJob(j, nil, err)
			continue
		}
		counts := func() (m map[string]int) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("execution panic: %v", p)
				}
			}()
			return statevec.Simulate(c, j.Shots, 1, rng)
		}()
		s.finishJob(j, counts, err)
	}
}

func (s *Service) finishJob(j *job, counts map[string]int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		j.Status = StatusFailed
		j.Error = err.Error()
		return
	}
	j.Status = StatusCompleted
	j.counts = counts
}

// ---- Client ------------------------------------------------------------

// Client is a minimal REST client for the service (what the IonQ backend
// QPM uses under the hood; IonQ's real Qiskit plugin hides the same calls).
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 120 * time.Second}}
}

// Submit posts a QASM job and returns the job ID.
func (c *Client) Submit(name, qasm string, shots int) (string, error) {
	var body submitBody
	body.Name = name
	body.Shots = shots
	body.Input.Format = "qasm"
	body.Input.QASM = qasm
	data, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v0.3/jobs", "application/json", strings.NewReader(string(data)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeHTTPError(resp)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return "", err
	}
	return j.ID, nil
}

// Status fetches the job status string.
func (c *Client) Status(id string) (string, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v0.3/jobs/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeHTTPError(resp)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return "", err
	}
	return j.Status, nil
}

// Results fetches the counts of a completed job.
func (c *Client) Results(id string) (map[string]int, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v0.3/jobs/" + id + "/results")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var out struct {
		Counts map[string]int `json:"counts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Counts, nil
}

// Wait polls until the job reaches a terminal state and returns counts.
func (c *Client) Wait(id string, poll time.Duration) (map[string]int, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return nil, err
		}
		switch st {
		case StatusCompleted:
			return c.Results(id)
		case StatusFailed:
			_, err := c.Results(id)
			if err == nil {
				err = fmt.Errorf("ionq: job %s failed", id)
			}
			return nil, err
		}
		time.Sleep(poll)
	}
}

func decodeHTTPError(resp *http.Response) error {
	buf := make([]byte, 512)
	n, _ := resp.Body.Read(buf)
	return fmt.Errorf("ionq: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(buf[:n])))
}
