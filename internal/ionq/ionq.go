// Package ionq provides a simulated IonQ quantum cloud: an HTTP REST
// service with job submission, queueing, status polling, and result
// retrieval, backed by the state-vector engine. Configurable network
// latency, jitter, and queue concurrency reproduce the behaviour that
// matters in the paper's Figs. 4-5: cloud execution is slower and less
// uniform than local MPI backends because every interaction crosses the
// internet and a shared queue (the paper runs against QCUP's shared queue).
//
// The wire format follows the spirit of IonQ's v0.3 REST API, extended
// with a job-array form for batched parametric workloads (one round trip
// submits and one round trip collects K circuit evaluations):
//
//	POST /v0.3/jobs                {name, shots, input:{format:"qasm", qasm}}
//	GET  /v0.3/jobs/{id}           -> {id, status}
//	GET  /v0.3/jobs/{id}/results   -> {counts}
//	POST /v0.3/jobs/batch          {name, shots, input:{format:"qasm", circuits:[qasm...]}} -> {jobs:[{id}...]}
//	POST /v0.3/jobs/results/batch  {ids:[...]} -> {results:[{id, counts, error}...]} (long-polls until all terminal)
package ionq

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/faults"
	"qfw/internal/statevec"
)

// Config tunes the simulated cloud.
type Config struct {
	// Latency is the mean one-way network + service latency added to every
	// HTTP interaction; Jitter adds uniform noise in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// QueueDelay is the mean extra wait a job spends queued before a worker
	// picks it up (cloud queue pressure).
	QueueDelay time.Duration
	// Concurrency is how many jobs execute simultaneously (cloud simulators
	// serialize heavily; default 1).
	Concurrency int
	// MaxQubits rejects circuits beyond the device/emulator size (default 29).
	MaxQubits int
	Seed      int64
	// FaultEvery, when positive, makes every Nth API interaction fail with
	// 503 + Retry-After — a deterministic stand-in for the throttling and
	// transient outages a real shared cloud queue produces, used to
	// exercise the client's retry path end to end.
	FaultEvery int
}

func (c *Config) fill() {
	if c.Latency <= 0 {
		c.Latency = 60 * time.Millisecond
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 29
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Job states reported by the REST API.
const (
	StatusSubmitted = "submitted"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

type job struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Shots  int    `json:"shots"`
	QASM   string `json:"-"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	counts map[string]int
}

// submitBody is the POST /v0.3/jobs request body.
type submitBody struct {
	Name  string `json:"name,omitempty"`
	Shots int    `json:"shots,omitempty"`
	Input struct {
		Format string `json:"format"`
		QASM   string `json:"qasm"`
	} `json:"input"`
}

// Service is a running simulated cloud endpoint.
type Service struct {
	cfg Config
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	rng    *rand.Rand
	queue  chan *job
	wg     sync.WaitGroup
	closed bool

	apiCalls atomic.Int64 // drives Config.FaultEvery
}

// Start launches the service on an ephemeral loopback port.
func Start(cfg Config) (*Service, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		ln:    ln,
		jobs:  make(map[string]*job),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		queue: make(chan *job, 4096),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v0.3/jobs", s.handleJobs)
	mux.HandleFunc("/v0.3/jobs/batch", s.handleJobsBatch)
	mux.HandleFunc("/v0.3/jobs/results/batch", s.handleResultsBatch)
	mux.HandleFunc("/v0.3/jobs/", s.handleJob)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	for w := 0; w < cfg.Concurrency; w++ {
		s.wg.Add(1)
		go s.worker(int64(w))
	}
	return s, nil
}

// URL returns the service base URL.
func (s *Service) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops accepting requests and waits for workers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.srv.Close()
	s.wg.Wait()
}

// maybeFault implements Config.FaultEvery: when this interaction is the
// Nth, it answers 503 with a short Retry-After and reports true so the
// handler returns without doing work.
func (s *Service) maybeFault(w http.ResponseWriter) bool {
	if s.cfg.FaultEvery <= 0 {
		return false
	}
	if s.apiCalls.Add(1)%int64(s.cfg.FaultEvery) != 0 {
		return false
	}
	w.Header().Set("Retry-After", "0.05")
	http.Error(w, "service temporarily unavailable (injected)", http.StatusServiceUnavailable)
	return true
}

// networkDelay sleeps for the configured latency + jitter, simulating the
// internet round trip in front of every API interaction.
func (s *Service) networkDelay() {
	s.mu.Lock()
	j := time.Duration(0)
	if s.cfg.Jitter > 0 {
		j = time.Duration(s.rng.Int63n(int64(s.cfg.Jitter)))
	}
	s.mu.Unlock()
	time.Sleep(s.cfg.Latency + j)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if s.maybeFault(w) {
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Input.Format != "qasm" {
		http.Error(w, fmt.Sprintf("unsupported input format %q", body.Input.Format), http.StatusBadRequest)
		return
	}
	j, err := s.createJob(body.Name, body.Input.QASM, body.Shots)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "shutting down") {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j)
}

// batchSubmitBody is the POST /v0.3/jobs/batch request body: a job array
// sharing one name and shot count over K circuits.
type batchSubmitBody struct {
	Name  string `json:"name,omitempty"`
	Shots int    `json:"shots,omitempty"`
	Input struct {
		Format   string   `json:"format"`
		Circuits []string `json:"circuits"`
	} `json:"input"`
}

// createJob validates one circuit and enqueues it; the caller holds no
// lock. It returns a snapshot taken before the job was handed to the
// workers — encoding the live *job would race with worker status writes.
func (s *Service) createJob(name, qasm string, shots int) (job, error) {
	c, err := circuit.ParseQASM(qasm)
	if err != nil {
		return job{}, fmt.Errorf("invalid qasm: %w", err)
	}
	if c.NQubits > s.cfg.MaxQubits {
		return job{}, fmt.Errorf("circuit has %d qubits, device supports %d", c.NQubits, s.cfg.MaxQubits)
	}
	if shots <= 0 {
		shots = 1024
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return job{}, fmt.Errorf("service shutting down")
	}
	s.nextID++
	j := &job{
		ID:     fmt.Sprintf("ionq-job-%06d", s.nextID),
		Name:   name,
		Shots:  shots,
		QASM:   qasm,
		Status: StatusSubmitted,
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()
	snap := *j
	s.queue <- j
	return snap, nil
}

// handleJobsBatch creates a job array from one request: the whole batch
// pays a single network round trip, the mechanism that makes batched
// variational submission beat per-circuit submission on the cloud path.
func (s *Service) handleJobsBatch(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if s.maybeFault(w) {
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body batchSubmitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Input.Format != "qasm" {
		http.Error(w, fmt.Sprintf("unsupported input format %q", body.Input.Format), http.StatusBadRequest)
		return
	}
	if len(body.Input.Circuits) == 0 {
		http.Error(w, "empty job array", http.StatusBadRequest)
		return
	}
	// Validate the whole array before registering anything: a bad element
	// must not leave orphaned jobs the client has no IDs for.
	for i, qasm := range body.Input.Circuits {
		c, err := circuit.ParseQASM(qasm)
		if err != nil {
			http.Error(w, fmt.Sprintf("circuit %d: invalid qasm: %v", i, err), http.StatusBadRequest)
			return
		}
		if c.NQubits > s.cfg.MaxQubits {
			http.Error(w, fmt.Sprintf("circuit %d: circuit has %d qubits, device supports %d", i, c.NQubits, s.cfg.MaxQubits), http.StatusBadRequest)
			return
		}
	}
	shots := body.Shots
	if shots <= 0 {
		shots = 1024
	}
	// Register the whole array atomically: one lock acquisition, one closed
	// check, all-or-nothing.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "service shutting down", http.StatusServiceUnavailable)
		return
	}
	jobs := make([]*job, 0, len(body.Input.Circuits))
	snaps := make([]job, 0, len(body.Input.Circuits))
	for _, qasm := range body.Input.Circuits {
		s.nextID++
		j := &job{
			ID:     fmt.Sprintf("ionq-job-%06d", s.nextID),
			Name:   body.Name,
			Shots:  shots,
			QASM:   qasm,
			Status: StatusSubmitted,
		}
		s.jobs[j.ID] = j
		jobs = append(jobs, j)
		// Snapshot before the workers can touch the job: encoding the live
		// *job after enqueue would race with worker status writes.
		snaps = append(snaps, *j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		s.queue <- j
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"jobs": snaps})
}

// batchResult is one entry of the batch results reply.
type batchResult struct {
	ID     string         `json:"id"`
	Status string         `json:"status"`
	Counts map[string]int `json:"counts,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// handleResultsBatch long-polls until every listed job is terminal and
// returns all results in one reply — one network round trip for the whole
// array instead of one polling loop per job.
func (s *Service) handleResultsBatch(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if s.maybeFault(w) {
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// One long-poll round is bounded well under the client's HTTP timeout;
	// a 409 tells the client to re-poll (Client.WaitBatch loops on it).
	deadline := time.Now().Add(25 * time.Second)
	for {
		s.mu.Lock()
		out := make([]batchResult, 0, len(body.IDs))
		ready := true
		for _, id := range body.IDs {
			j, ok := s.jobs[id]
			if !ok {
				s.mu.Unlock()
				http.Error(w, "unknown job "+id, http.StatusNotFound)
				return
			}
			switch j.Status {
			case StatusCompleted:
				out = append(out, batchResult{ID: id, Status: j.Status, Counts: j.counts})
			case StatusFailed:
				out = append(out, batchResult{ID: id, Status: j.Status, Error: j.Error})
			default:
				ready = false
			}
			if !ready {
				break
			}
		}
		s.mu.Unlock()
		if ready {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"results": out})
			return
		}
		if time.Now().After(deadline) {
			w.Header().Set("Retry-After", "0.02")
			http.Error(w, "job array not finished", http.StatusConflict)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if s.maybeFault(w) {
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v0.3/jobs/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(parts) == 2 && parts[1] == "results" {
		s.mu.Lock()
		status := j.Status
		counts := j.counts
		errMsg := j.Error
		s.mu.Unlock()
		switch status {
		case StatusCompleted:
			json.NewEncoder(w).Encode(map[string]any{"counts": counts})
		case StatusFailed:
			http.Error(w, errMsg, http.StatusUnprocessableEntity)
		default:
			w.Header().Set("Retry-After", "0.02")
			http.Error(w, "job not finished", http.StatusConflict)
		}
		return
	}
	s.mu.Lock()
	snapshot := *j
	s.mu.Unlock()
	json.NewEncoder(w).Encode(snapshot)
}

// worker drains the queue, simulating queue wait and executing circuits on
// the internal state-vector emulator.
func (s *Service) worker(id int64) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Seed*1000 + id))
	for j := range s.queue {
		if s.cfg.QueueDelay > 0 {
			d := s.cfg.QueueDelay/2 + time.Duration(rng.Int63n(int64(s.cfg.QueueDelay)))
			time.Sleep(d)
		}
		s.mu.Lock()
		j.Status = StatusRunning
		s.mu.Unlock()
		c, err := circuit.ParseQASM(j.QASM)
		if err != nil {
			s.finishJob(j, nil, err)
			continue
		}
		counts := func() (m map[string]int) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("execution panic: %v", p)
				}
			}()
			return statevec.Simulate(c, j.Shots, 1, rng)
		}()
		s.finishJob(j, counts, err)
	}
}

func (s *Service) finishJob(j *job, counts map[string]int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		j.Status = StatusFailed
		j.Error = err.Error()
		return
	}
	j.Status = StatusCompleted
	j.counts = counts
}

// ---- Client ------------------------------------------------------------

// httpError is a non-200 API answer with its HTTP code and any Retry-After
// hint. Codes that describe a shared-queue condition rather than a broken
// request — throttling, long-poll continuation, server-side trouble —
// unwrap to faults.ErrTransient so the generic retry policy classifies
// them without string matching.
type httpError struct {
	Code       int
	RetryAfter time.Duration
	Msg        string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("ionq: HTTP %d: %s", e.Code, e.Msg)
}

func (e *httpError) Unwrap() error {
	if e.Code == http.StatusTooManyRequests || e.Code == http.StatusConflict || e.Code >= 500 {
		return faults.ErrTransient
	}
	return nil
}

// RetryAfterOf extracts the server's Retry-After hint from an API error.
func RetryAfterOf(err error) (time.Duration, bool) {
	var he *httpError
	if errors.As(err, &he) && he.RetryAfter > 0 {
		return he.RetryAfter, true
	}
	return 0, false
}

// isConflict reports the long-poll continuation answer (409).
func isConflict(err error) bool {
	var he *httpError
	return errors.As(err, &he) && he.Code == http.StatusConflict
}

// Client is a minimal REST client for the service (what the IonQ backend
// QPM uses under the hood; IonQ's real Qiskit plugin hides the same calls).
// Every API call retries transient answers (429/409/5xx) under Retry with
// jittered backoff, honouring the server's Retry-After hint.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	Retry   faults.Policy
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 120 * time.Second},
		Retry:   faults.Policy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Hint: RetryAfterOf},
	}
}

// retryPolicy is Retry with the Retry-After hint always wired in (zero-value
// clients constructed without NewClient still honour the header).
func (c *Client) retryPolicy() faults.Policy {
	p := c.Retry
	if p.Hint == nil {
		p.Hint = RetryAfterOf
	}
	return p
}

// Submit posts a QASM job and returns the job ID.
func (c *Client) Submit(name, qasm string, shots int) (string, error) {
	var body submitBody
	body.Name = name
	body.Shots = shots
	body.Input.Format = "qasm"
	body.Input.QASM = qasm
	data, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	var j job
	err = c.retryPolicy().Do(func(int) error {
		resp, err := c.HTTP.Post(c.BaseURL+"/v0.3/jobs", "application/json", strings.NewReader(string(data)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeHTTPError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&j)
	})
	if err != nil {
		return "", err
	}
	return j.ID, nil
}

// SubmitBatch posts a job array of K QASM circuits in one request and
// returns the ordered job IDs.
func (c *Client) SubmitBatch(name string, qasms []string, shots int) ([]string, error) {
	var body batchSubmitBody
	body.Name = name
	body.Shots = shots
	body.Input.Format = "qasm"
	body.Input.Circuits = qasms
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	var out struct {
		Jobs []job `json:"jobs"`
	}
	err = c.retryPolicy().Do(func(int) error {
		resp, err := c.HTTP.Post(c.BaseURL+"/v0.3/jobs/batch", "application/json", strings.NewReader(string(data)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeHTTPError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&out)
	})
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(out.Jobs))
	for i, j := range out.Jobs {
		ids[i] = j.ID
	}
	return ids, nil
}

// WaitBatch long-polls the batch results endpoint until every job is
// terminal and returns ordered per-job counts; any failed job fails the
// whole call. The server's 409 "not finished" answer is the expected
// long-poll continuation — the loop re-polls indefinitely, honouring the
// Retry-After hint with jittered backoff instead of hammering the
// endpoint. Other transient answers (429/5xx) are bounded by the retry
// policy's attempt budget, counted consecutively.
func (c *Client) WaitBatch(ids []string) ([]map[string]int, error) {
	data, err := json.Marshal(map[string]any{"ids": ids})
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []batchResult `json:"results"`
	}
	policy := c.retryPolicy()
	maxAttempts := policy.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	backoff := newBackoff(policy, seedFor(strings.Join(ids, ",")))
	failures := 0
	for {
		err := func() error {
			resp, err := c.HTTP.Post(c.BaseURL+"/v0.3/jobs/results/batch", "application/json", strings.NewReader(string(data)))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return decodeHTTPError(resp)
			}
			return json.NewDecoder(resp.Body).Decode(&out)
		}()
		if err == nil {
			break
		}
		if isConflict(err) {
			failures = 0 // expected continuation, not a failure
		} else {
			if !faults.IsTransient(err) {
				return nil, err
			}
			failures++
			if failures >= maxAttempts {
				return nil, err
			}
		}
		backoff.sleep(err)
	}
	if len(out.Results) != len(ids) {
		return nil, fmt.Errorf("ionq: batch returned %d results for %d jobs", len(out.Results), len(ids))
	}
	counts := make([]map[string]int, len(ids))
	for i, r := range out.Results {
		if r.Status != StatusCompleted {
			return nil, fmt.Errorf("ionq: job %s failed: %s", r.ID, r.Error)
		}
		counts[i] = r.Counts
	}
	return counts, nil
}

// Status fetches the job status string.
func (c *Client) Status(id string) (string, error) {
	var j job
	err := c.retryPolicy().Do(func(int) error {
		resp, err := c.HTTP.Get(c.BaseURL + "/v0.3/jobs/" + id)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeHTTPError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&j)
	})
	if err != nil {
		return "", err
	}
	return j.Status, nil
}

// Results fetches the counts of a completed job.
func (c *Client) Results(id string) (map[string]int, error) {
	var out struct {
		Counts map[string]int `json:"counts"`
	}
	err := c.retryPolicy().Do(func(int) error {
		resp, err := c.HTTP.Get(c.BaseURL + "/v0.3/jobs/" + id + "/results")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeHTTPError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&out)
	})
	if err != nil {
		return nil, err
	}
	return out.Counts, nil
}

// Wait polls until the job reaches a terminal state and returns counts.
// The polling interval backs off exponentially with deterministic jitter
// (seeded from the job ID) up to 8× poll, so many concurrent waiters
// spread their status requests instead of arriving in lockstep.
func (c *Client) Wait(id string, poll time.Duration) (map[string]int, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	b := newBackoff(faults.Policy{BaseDelay: poll, MaxDelay: 8 * poll}, seedFor(id))
	for {
		st, err := c.Status(id)
		if err != nil {
			return nil, err
		}
		switch st {
		case StatusCompleted:
			return c.Results(id)
		case StatusFailed:
			_, err := c.Results(id)
			if err == nil {
				err = fmt.Errorf("ionq: job %s failed", id)
			}
			return nil, err
		}
		b.sleep(nil)
	}
}

// seedFor derives a deterministic jitter seed from an identifier (no
// time-based seeding — replays stay reproducible).
func seedFor(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64() & (1<<62 - 1))
}

// backoff produces capped exponential jittered delays for poll loops. Each
// delay is drawn from [ceiling/2, ceiling] and the ceiling doubles up to
// the policy's MaxDelay; a Retry-After hint on the triggering error floors
// the delay.
type backoff struct {
	base, max time.Duration
	rng       *rand.Rand
	n         uint
}

func newBackoff(p faults.Policy, seed int64) *backoff {
	base := p.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	max := p.MaxDelay
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

func (b *backoff) sleep(err error) {
	ceiling := b.base << b.n
	if ceiling >= b.max || ceiling <= 0 {
		ceiling = b.max
	} else {
		b.n++
	}
	d := ceiling/2 + time.Duration(b.rng.Int63n(int64(ceiling/2)+1))
	if h, ok := RetryAfterOf(err); ok && h > d {
		d = h
	}
	time.Sleep(d)
}

// decodeHTTPError turns a non-200 answer into a typed *httpError carrying
// the status code and any Retry-After hint (seconds, fractional allowed).
func decodeHTTPError(resp *http.Response) error {
	buf := make([]byte, 512)
	n, _ := resp.Body.Read(buf)
	he := &httpError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(buf[:n]))}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseFloat(ra, 64); err == nil && secs > 0 {
			he.RetryAfter = time.Duration(secs * float64(time.Second))
		}
	}
	return he
}
