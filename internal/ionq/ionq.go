// Package ionq provides a simulated IonQ quantum cloud: an HTTP REST
// service with job submission, queueing, status polling, and result
// retrieval, backed by the state-vector engine. Configurable network
// latency, jitter, and queue concurrency reproduce the behaviour that
// matters in the paper's Figs. 4-5: cloud execution is slower and less
// uniform than local MPI backends because every interaction crosses the
// internet and a shared queue (the paper runs against QCUP's shared queue).
//
// The wire format follows the spirit of IonQ's v0.3 REST API, extended
// with a job-array form for batched parametric workloads (one round trip
// submits and one round trip collects K circuit evaluations):
//
//	POST /v0.3/jobs                {name, shots, input:{format:"qasm", qasm}}
//	GET  /v0.3/jobs/{id}           -> {id, status}
//	GET  /v0.3/jobs/{id}/results   -> {counts}
//	POST /v0.3/jobs/batch          {name, shots, input:{format:"qasm", circuits:[qasm...]}} -> {jobs:[{id}...]}
//	POST /v0.3/jobs/results/batch  {ids:[...]} -> {results:[{id, counts, error}...]} (long-polls until all terminal)
package ionq

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/statevec"
)

// Config tunes the simulated cloud.
type Config struct {
	// Latency is the mean one-way network + service latency added to every
	// HTTP interaction; Jitter adds uniform noise in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// QueueDelay is the mean extra wait a job spends queued before a worker
	// picks it up (cloud queue pressure).
	QueueDelay time.Duration
	// Concurrency is how many jobs execute simultaneously (cloud simulators
	// serialize heavily; default 1).
	Concurrency int
	// MaxQubits rejects circuits beyond the device/emulator size (default 29).
	MaxQubits int
	Seed      int64
}

func (c *Config) fill() {
	if c.Latency <= 0 {
		c.Latency = 60 * time.Millisecond
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 29
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Job states reported by the REST API.
const (
	StatusSubmitted = "submitted"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
)

type job struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Shots  int    `json:"shots"`
	QASM   string `json:"-"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	counts map[string]int
}

// submitBody is the POST /v0.3/jobs request body.
type submitBody struct {
	Name  string `json:"name,omitempty"`
	Shots int    `json:"shots,omitempty"`
	Input struct {
		Format string `json:"format"`
		QASM   string `json:"qasm"`
	} `json:"input"`
}

// Service is a running simulated cloud endpoint.
type Service struct {
	cfg Config
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	rng    *rand.Rand
	queue  chan *job
	wg     sync.WaitGroup
	closed bool
}

// Start launches the service on an ephemeral loopback port.
func Start(cfg Config) (*Service, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		ln:    ln,
		jobs:  make(map[string]*job),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		queue: make(chan *job, 4096),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v0.3/jobs", s.handleJobs)
	mux.HandleFunc("/v0.3/jobs/batch", s.handleJobsBatch)
	mux.HandleFunc("/v0.3/jobs/results/batch", s.handleResultsBatch)
	mux.HandleFunc("/v0.3/jobs/", s.handleJob)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	for w := 0; w < cfg.Concurrency; w++ {
		s.wg.Add(1)
		go s.worker(int64(w))
	}
	return s, nil
}

// URL returns the service base URL.
func (s *Service) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops accepting requests and waits for workers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.srv.Close()
	s.wg.Wait()
}

// networkDelay sleeps for the configured latency + jitter, simulating the
// internet round trip in front of every API interaction.
func (s *Service) networkDelay() {
	s.mu.Lock()
	j := time.Duration(0)
	if s.cfg.Jitter > 0 {
		j = time.Duration(s.rng.Int63n(int64(s.cfg.Jitter)))
	}
	s.mu.Unlock()
	time.Sleep(s.cfg.Latency + j)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body submitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Input.Format != "qasm" {
		http.Error(w, fmt.Sprintf("unsupported input format %q", body.Input.Format), http.StatusBadRequest)
		return
	}
	j, err := s.createJob(body.Name, body.Input.QASM, body.Shots)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "shutting down") {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j)
}

// batchSubmitBody is the POST /v0.3/jobs/batch request body: a job array
// sharing one name and shot count over K circuits.
type batchSubmitBody struct {
	Name  string `json:"name,omitempty"`
	Shots int    `json:"shots,omitempty"`
	Input struct {
		Format   string   `json:"format"`
		Circuits []string `json:"circuits"`
	} `json:"input"`
}

// createJob validates one circuit and enqueues it; the caller holds no
// lock. It returns a snapshot taken before the job was handed to the
// workers — encoding the live *job would race with worker status writes.
func (s *Service) createJob(name, qasm string, shots int) (job, error) {
	c, err := circuit.ParseQASM(qasm)
	if err != nil {
		return job{}, fmt.Errorf("invalid qasm: %w", err)
	}
	if c.NQubits > s.cfg.MaxQubits {
		return job{}, fmt.Errorf("circuit has %d qubits, device supports %d", c.NQubits, s.cfg.MaxQubits)
	}
	if shots <= 0 {
		shots = 1024
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return job{}, fmt.Errorf("service shutting down")
	}
	s.nextID++
	j := &job{
		ID:     fmt.Sprintf("ionq-job-%06d", s.nextID),
		Name:   name,
		Shots:  shots,
		QASM:   qasm,
		Status: StatusSubmitted,
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()
	snap := *j
	s.queue <- j
	return snap, nil
}

// handleJobsBatch creates a job array from one request: the whole batch
// pays a single network round trip, the mechanism that makes batched
// variational submission beat per-circuit submission on the cloud path.
func (s *Service) handleJobsBatch(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body batchSubmitBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if body.Input.Format != "qasm" {
		http.Error(w, fmt.Sprintf("unsupported input format %q", body.Input.Format), http.StatusBadRequest)
		return
	}
	if len(body.Input.Circuits) == 0 {
		http.Error(w, "empty job array", http.StatusBadRequest)
		return
	}
	// Validate the whole array before registering anything: a bad element
	// must not leave orphaned jobs the client has no IDs for.
	for i, qasm := range body.Input.Circuits {
		c, err := circuit.ParseQASM(qasm)
		if err != nil {
			http.Error(w, fmt.Sprintf("circuit %d: invalid qasm: %v", i, err), http.StatusBadRequest)
			return
		}
		if c.NQubits > s.cfg.MaxQubits {
			http.Error(w, fmt.Sprintf("circuit %d: circuit has %d qubits, device supports %d", i, c.NQubits, s.cfg.MaxQubits), http.StatusBadRequest)
			return
		}
	}
	shots := body.Shots
	if shots <= 0 {
		shots = 1024
	}
	// Register the whole array atomically: one lock acquisition, one closed
	// check, all-or-nothing.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "service shutting down", http.StatusServiceUnavailable)
		return
	}
	jobs := make([]*job, 0, len(body.Input.Circuits))
	snaps := make([]job, 0, len(body.Input.Circuits))
	for _, qasm := range body.Input.Circuits {
		s.nextID++
		j := &job{
			ID:     fmt.Sprintf("ionq-job-%06d", s.nextID),
			Name:   body.Name,
			Shots:  shots,
			QASM:   qasm,
			Status: StatusSubmitted,
		}
		s.jobs[j.ID] = j
		jobs = append(jobs, j)
		// Snapshot before the workers can touch the job: encoding the live
		// *job after enqueue would race with worker status writes.
		snaps = append(snaps, *j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		s.queue <- j
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"jobs": snaps})
}

// batchResult is one entry of the batch results reply.
type batchResult struct {
	ID     string         `json:"id"`
	Status string         `json:"status"`
	Counts map[string]int `json:"counts,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// handleResultsBatch long-polls until every listed job is terminal and
// returns all results in one reply — one network round trip for the whole
// array instead of one polling loop per job.
func (s *Service) handleResultsBatch(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// One long-poll round is bounded well under the client's HTTP timeout;
	// a 409 tells the client to re-poll (Client.WaitBatch loops on it).
	deadline := time.Now().Add(25 * time.Second)
	for {
		s.mu.Lock()
		out := make([]batchResult, 0, len(body.IDs))
		ready := true
		for _, id := range body.IDs {
			j, ok := s.jobs[id]
			if !ok {
				s.mu.Unlock()
				http.Error(w, "unknown job "+id, http.StatusNotFound)
				return
			}
			switch j.Status {
			case StatusCompleted:
				out = append(out, batchResult{ID: id, Status: j.Status, Counts: j.counts})
			case StatusFailed:
				out = append(out, batchResult{ID: id, Status: j.Status, Error: j.Error})
			default:
				ready = false
			}
			if !ready {
				break
			}
		}
		s.mu.Unlock()
		if ready {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"results": out})
			return
		}
		if time.Now().After(deadline) {
			http.Error(w, "job array not finished", http.StatusConflict)
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	s.networkDelay()
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v0.3/jobs/")
	parts := strings.Split(rest, "/")
	id := parts[0]
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(parts) == 2 && parts[1] == "results" {
		s.mu.Lock()
		status := j.Status
		counts := j.counts
		errMsg := j.Error
		s.mu.Unlock()
		switch status {
		case StatusCompleted:
			json.NewEncoder(w).Encode(map[string]any{"counts": counts})
		case StatusFailed:
			http.Error(w, errMsg, http.StatusUnprocessableEntity)
		default:
			http.Error(w, "job not finished", http.StatusConflict)
		}
		return
	}
	s.mu.Lock()
	snapshot := *j
	s.mu.Unlock()
	json.NewEncoder(w).Encode(snapshot)
}

// worker drains the queue, simulating queue wait and executing circuits on
// the internal state-vector emulator.
func (s *Service) worker(id int64) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(s.cfg.Seed*1000 + id))
	for j := range s.queue {
		if s.cfg.QueueDelay > 0 {
			d := s.cfg.QueueDelay/2 + time.Duration(rng.Int63n(int64(s.cfg.QueueDelay)))
			time.Sleep(d)
		}
		s.mu.Lock()
		j.Status = StatusRunning
		s.mu.Unlock()
		c, err := circuit.ParseQASM(j.QASM)
		if err != nil {
			s.finishJob(j, nil, err)
			continue
		}
		counts := func() (m map[string]int) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("execution panic: %v", p)
				}
			}()
			return statevec.Simulate(c, j.Shots, 1, rng)
		}()
		s.finishJob(j, counts, err)
	}
}

func (s *Service) finishJob(j *job, counts map[string]int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		j.Status = StatusFailed
		j.Error = err.Error()
		return
	}
	j.Status = StatusCompleted
	j.counts = counts
}

// ---- Client ------------------------------------------------------------

// Client is a minimal REST client for the service (what the IonQ backend
// QPM uses under the hood; IonQ's real Qiskit plugin hides the same calls).
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 120 * time.Second}}
}

// Submit posts a QASM job and returns the job ID.
func (c *Client) Submit(name, qasm string, shots int) (string, error) {
	var body submitBody
	body.Name = name
	body.Shots = shots
	body.Input.Format = "qasm"
	body.Input.QASM = qasm
	data, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v0.3/jobs", "application/json", strings.NewReader(string(data)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeHTTPError(resp)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return "", err
	}
	return j.ID, nil
}

// SubmitBatch posts a job array of K QASM circuits in one request and
// returns the ordered job IDs.
func (c *Client) SubmitBatch(name string, qasms []string, shots int) ([]string, error) {
	var body batchSubmitBody
	body.Name = name
	body.Shots = shots
	body.Input.Format = "qasm"
	body.Input.Circuits = qasms
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v0.3/jobs/batch", "application/json", strings.NewReader(string(data)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var out struct {
		Jobs []job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	ids := make([]string, len(out.Jobs))
	for i, j := range out.Jobs {
		ids[i] = j.ID
	}
	return ids, nil
}

// WaitBatch long-polls the batch results endpoint until every job is
// terminal (re-polling on the server's 409 "not finished" answer, like the
// single-job Wait loop) and returns ordered per-job counts; any failed job
// fails the whole call.
func (c *Client) WaitBatch(ids []string) ([]map[string]int, error) {
	data, err := json.Marshal(map[string]any{"ids": ids})
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []batchResult `json:"results"`
	}
	for {
		resp, err := c.HTTP.Post(c.BaseURL+"/v0.3/jobs/results/batch", "application/json", strings.NewReader(string(data)))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusConflict {
			resp.Body.Close()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			return nil, decodeHTTPError(resp)
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		break
	}
	if len(out.Results) != len(ids) {
		return nil, fmt.Errorf("ionq: batch returned %d results for %d jobs", len(out.Results), len(ids))
	}
	counts := make([]map[string]int, len(ids))
	for i, r := range out.Results {
		if r.Status != StatusCompleted {
			return nil, fmt.Errorf("ionq: job %s failed: %s", r.ID, r.Error)
		}
		counts[i] = r.Counts
	}
	return counts, nil
}

// Status fetches the job status string.
func (c *Client) Status(id string) (string, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v0.3/jobs/" + id)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeHTTPError(resp)
	}
	var j job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return "", err
	}
	return j.Status, nil
}

// Results fetches the counts of a completed job.
func (c *Client) Results(id string) (map[string]int, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v0.3/jobs/" + id + "/results")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var out struct {
		Counts map[string]int `json:"counts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Counts, nil
}

// Wait polls until the job reaches a terminal state and returns counts.
func (c *Client) Wait(id string, poll time.Duration) (map[string]int, error) {
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return nil, err
		}
		switch st {
		case StatusCompleted:
			return c.Results(id)
		case StatusFailed:
			_, err := c.Results(id)
			if err == nil {
				err = fmt.Errorf("ionq: job %s failed", id)
			}
			return nil, err
		}
		time.Sleep(poll)
	}
}

func decodeHTTPError(resp *http.Response) error {
	buf := make([]byte, 512)
	n, _ := resp.Body.Read(buf)
	return fmt.Errorf("ionq: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(buf[:n])))
}
