package ionq

import (
	"sync"
	"testing"
	"time"
)

func TestConcurrentWorkersOverlap(t *testing.T) {
	// With concurrency 4, four jobs with a queue delay should finish much
	// faster than serialized execution.
	_, cl := startService(t, Config{QueueDelay: 60 * time.Millisecond, Concurrency: 4})
	qasm := bellQASM(t)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := cl.Submit("j", qasm, 20)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = cl.Wait(id, 5*time.Millisecond)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Serialized would be >= 4 * 30ms queue floor; overlapped should be
	// well under that plus polling overhead.
	if el := time.Since(start); el > 350*time.Millisecond {
		t.Fatalf("concurrency 4 did not overlap: %v", el)
	}
}

func TestJobsAreIndependent(t *testing.T) {
	_, cl := startService(t, Config{})
	qasm := bellQASM(t)
	idA, err := cl.Submit("a", qasm, 10)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := cl.Submit("b", qasm, 30)
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Fatal("job IDs collide")
	}
	ca, err := cl.Wait(idA, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := cl.Wait(idB, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := 0, 0
	for _, n := range ca {
		ta += n
	}
	for _, n := range cb {
		tb += n
	}
	if ta != 10 || tb != 30 {
		t.Fatalf("shot totals %d/%d", ta, tb)
	}
}
