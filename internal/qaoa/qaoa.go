// Package qaoa implements the Quantum Approximate Optimization Algorithm
// over QUBO problems: the layered cost-mixer ansatz, shot-based expectation
// estimation from backend counts, and the classical optimization loop
// driving any QFw backend through the frontend interface.
package qaoa

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/optimize"
	"qfw/internal/pauli"
	"qfw/internal/qubo"
	"qfw/internal/statevec"
)

// Runner abstracts circuit execution; *core.Frontend satisfies it, and
// tests can substitute local engines.
type Runner interface {
	Run(c *circuit.Circuit, opts core.RunOptions) (*core.Result, error)
}

// BatchRunner extends Runner with batched parametric execution: one
// (symbolic) circuit plus K bindings evaluated through a single submission.
// *core.Frontend satisfies it via RunBatch (one submit_batch RPC), and
// LocalRunner satisfies it with concurrent in-process evaluation. Solve
// prefers this path: each optimizer iteration ships its whole candidate
// set at once instead of one fully bound circuit per evaluation.
type BatchRunner interface {
	Runner
	RunBatch(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, error)
}

// BuildAnsatz constructs the depth-p QAOA circuit for a diagonal Ising cost
// Hamiltonian, with symbolic parameters gamma0..gamma{p-1} and
// beta0..beta{p-1}.
func BuildAnsatz(h *pauli.Hamiltonian, p int) *circuit.Circuit {
	if !h.IsDiagonal() {
		panic("qaoa: cost Hamiltonian must be diagonal")
	}
	if p < 1 {
		p = 1
	}
	c := circuit.New(h.NQubits)
	c.Name = fmt.Sprintf("qaoa-%d-p%d", h.NQubits, p)
	for q := 0; q < h.NQubits; q++ {
		c.H(q)
	}
	for layer := 0; layer < p; layer++ {
		gamma := fmt.Sprintf("gamma%d", layer)
		beta := fmt.Sprintf("beta%d", layer)
		for _, term := range h.Terms {
			sup := term.Support()
			switch len(sup) {
			case 1:
				c.RZ(sup[0], circuit.Sym(gamma, 2*term.Coeff))
			case 2:
				c.RZZ(sup[0], sup[1], circuit.Sym(gamma, 2*term.Coeff))
			}
		}
		for q := 0; q < h.NQubits; q++ {
			c.RX(q, circuit.Sym(beta, 2))
		}
	}
	c.MeasureAll()
	return c
}

// BindParams produces the binding map for a flat parameter vector
// [gamma0..gamma{p-1}, beta0..beta{p-1}].
func BindParams(params []float64) map[string]float64 {
	p := len(params) / 2
	m := make(map[string]float64, len(params))
	for i := 0; i < p; i++ {
		m[fmt.Sprintf("gamma%d", i)] = params[i]
		m[fmt.Sprintf("beta%d", i)] = params[p+i]
	}
	return m
}

// ExpectationFromCounts estimates <H> from measurement counts of a diagonal
// Hamiltonian (keys use the Qiskit convention: qubit 0 rightmost).
func ExpectationFromCounts(h *pauli.Hamiltonian, counts map[string]int) float64 {
	var total int
	var acc float64
	bits := make([]int, h.NQubits)
	for key, n := range counts {
		for q := 0; q < h.NQubits; q++ {
			if key[len(key)-1-q] == '1' {
				bits[q] = 1
			} else {
				bits[q] = 0
			}
		}
		acc += float64(n) * h.DiagonalEnergy(bits)
		total += n
	}
	if total == 0 {
		return 0
	}
	return acc / float64(total)
}

// Options tune a QAOA solve.
type Options struct {
	P        int   // ansatz depth, default 1
	Shots    int   // default 512
	MaxEvals int   // optimizer budget, default 60
	Seed     int64 // default 1
	Run      core.RunOptions

	// ExactExpectation attaches the cost operator as an Observable so local
	// simulator backends return the exact <H> instead of the shot estimate
	// (the noiseless optimization path; cloud backends still estimate from
	// counts). Subject of the expectation-path ablation benchmark.
	ExactExpectation bool
}

// ObservableFromQUBO converts a QUBO's Ising form into the wire-format
// diagonal observable (without the constant offset).
func ObservableFromQUBO(q *qubo.QUBO) *core.Observable {
	h, js, _ := q.ToIsing()
	obs := &core.Observable{Fields: h}
	for pair, v := range js {
		if v != 0 {
			obs.Couplings = append(obs.Couplings, core.Coupling{I: pair[0], J: pair[1], V: v})
		}
	}
	return obs
}

// Result summarizes a QAOA solve.
type Result struct {
	Bits        []int
	Energy      float64 // QUBO energy of the best sampled bitstring
	Expectation float64 // final <H> + offset
	Evals       int     // circuit evaluations used
	Params      []float64
}

// Solve runs the full hybrid loop: build ansatz, optimize (γ, β) with
// Nelder-Mead over shot-estimated expectations, then sample the optimum and
// return the best bitstring by true QUBO energy.
func Solve(q *qubo.QUBO, runner Runner, opts Options) (*Result, error) {
	if opts.P <= 0 {
		opts.P = 1
	}
	if opts.Shots <= 0 {
		opts.Shots = 512
	}
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 60
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	h, offset := q.CostHamiltonian()
	ansatz := BuildAnsatz(h, opts.P)
	rng := rand.New(rand.NewSource(opts.Seed))
	var obs *core.Observable
	if opts.ExactExpectation {
		obs = ObservableFromQUBO(q)
	}

	evals := 0
	var firstErr error
	x0 := make([]float64, 2*opts.P)
	for i := range x0 {
		x0[i] = 0.1 + 0.4*rng.Float64()
	}
	nmOpts := optimize.NMOptions{MaxEvals: opts.MaxEvals, InitStep: 0.4}
	var best []float64
	var bestF float64
	if br, ok := runner.(BatchRunner); ok {
		// Batched path: each candidate set becomes one RunBatch submission —
		// the ansatz ships once (symbolically) and element i inherits the
		// seed the serial loop would have used for evaluation evals+i.
		objective := func(paramSets [][]float64) []float64 {
			out := make([]float64, len(paramSets))
			seedBase := opts.Seed + int64(evals)
			evals += len(paramSets)
			if firstErr != nil {
				for i := range out {
					out[i] = math.Inf(1)
				}
				return out
			}
			bindings := make([]core.Bindings, len(paramSets))
			for i, ps := range paramSets {
				bindings[i] = BindParams(ps)
			}
			runOpts := opts.Run
			runOpts.Shots = opts.Shots
			runOpts.Seed = seedBase + 1
			runOpts.Observable = obs
			results, err := br.RunBatch(ansatz, bindings, runOpts)
			for i := range out {
				if err == nil && (i >= len(results) || results[i] == nil) {
					err = fmt.Errorf("qaoa: batch returned no result for element %d", i)
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					out[i] = math.Inf(1)
					continue
				}
				if results[i].ExpVal != nil {
					out[i] = *results[i].ExpVal
				} else {
					out[i] = ExpectationFromCounts(h, results[i].Counts)
				}
			}
			return out
		}
		best, bestF, _ = optimize.NelderMeadBatch(objective, x0, nmOpts)
	} else {
		objective := func(params []float64) float64 {
			if firstErr != nil {
				return math.Inf(1)
			}
			evals++
			bound := ansatz.Bind(BindParams(params))
			runOpts := opts.Run
			runOpts.Shots = opts.Shots
			runOpts.Seed = opts.Seed + int64(evals)
			runOpts.Observable = obs
			res, err := runner.Run(bound, runOpts)
			if err != nil {
				firstErr = err
				return math.Inf(1)
			}
			if res.ExpVal != nil {
				return *res.ExpVal
			}
			return ExpectationFromCounts(h, res.Counts)
		}
		best, bestF, _ = optimize.NelderMead(objective, x0, nmOpts)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Final sampling at the optimum; best observed bitstring wins.
	bound := ansatz.Bind(BindParams(best))
	runOpts := opts.Run
	runOpts.Shots = opts.Shots * 2
	runOpts.Seed = opts.Seed + 7777
	res, err := runner.Run(bound, runOpts)
	if err != nil {
		return nil, err
	}
	bits, energy := bestSampled(q, res.Counts)
	return &Result{
		Bits:        bits,
		Energy:      energy,
		Expectation: bestF + offset,
		Evals:       evals,
		Params:      best,
	}, nil
}

// bestSampled returns the sampled bitstring with the lowest QUBO energy.
func bestSampled(q *qubo.QUBO, counts map[string]int) ([]int, float64) {
	bestE := math.Inf(1)
	var best []int
	for key := range counts {
		bits := make([]int, q.N)
		for i := 0; i < q.N; i++ {
			if key[len(key)-1-i] == '1' {
				bits[i] = 1
			}
		}
		if e := q.Energy(bits); e < bestE {
			bestE = e
			best = bits
		}
	}
	return best, bestE
}

// LocalRunner executes circuits directly on the in-process state-vector
// engine, bypassing the orchestration stack — used by unit tests and as the
// zero-overhead baseline in the ablation benchmarks.
type LocalRunner struct {
	Workers int
}

// Run implements Runner.
func (l LocalRunner) Run(c *circuit.Circuit, opts core.RunOptions) (*core.Result, error) {
	w := l.Workers
	if w <= 0 {
		w = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s, _ := statevec.RunFused(c.StripMeasurements(), nil, w, rng)
	shots := opts.Shots
	if shots <= 0 {
		shots = 1024
	}
	res := &core.Result{Counts: s.SampleCounts(shots, rng), Backend: "local"}
	if opts.Observable != nil {
		var v float64
		if opts.Observable.IsDiagonal() {
			v = s.ExpectationDiagonal(opts.Observable.EnergyOfIndex)
		} else {
			v = s.ExpectationHamiltonian(hamiltonianFromObservable(opts.Observable, c.NQubits))
		}
		res.ExpVal = &v
	}
	s.Release()
	return res, nil
}

// RunBatch implements BatchRunner: elements are dispatched to concurrent
// goroutines and collected into ordered slots. Besides using the available
// cores, the blocking collect point matters on its own: a caller running
// many solves concurrently (DQAOA's async sub-QAOA client) yields the
// processor here, so sibling solves genuinely overlap even on one core.
func (l LocalRunner) RunBatch(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, error) {
	results := make([]*core.Result, len(bindings))
	errs := make([]error, len(bindings))
	var wg sync.WaitGroup
	for i, b := range bindings {
		wg.Add(1)
		go func(i int, b core.Bindings) {
			defer wg.Done()
			bound := c.Bind(b)
			if !bound.IsBound() {
				errs[i] = fmt.Errorf("qaoa: batch element %d leaves params %v unbound", i, bound.ParamNames())
				return
			}
			results[i], errs[i] = l.Run(bound, opts.ForElement(i))
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// hamiltonianFromObservable converts the wire-format observable into Pauli
// algebra for exact evaluation on local engines.
func hamiltonianFromObservable(o *core.Observable, n int) *pauli.Hamiltonian {
	fields := make([]float64, n)
	copy(fields, o.Fields)
	js := map[[2]int]float64{}
	for _, c := range o.Couplings {
		js[[2]int{c.I, c.J}] += c.V
	}
	h := pauli.IsingCost(fields, js)
	for _, t := range o.Paulis {
		terms := map[int]pauli.Op{}
		for q := 0; q < len(t.Ops) && q < n; q++ {
			switch t.Ops[q] {
			case 'X':
				terms[q] = pauli.X
			case 'Y':
				terms[q] = pauli.Y
			case 'Z':
				terms[q] = pauli.Z
			}
		}
		h.Add(t.Coeff, terms)
	}
	return h
}
