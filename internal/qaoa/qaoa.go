// Package qaoa implements the Quantum Approximate Optimization Algorithm
// over QUBO problems: the layered cost-mixer ansatz, shot-based expectation
// estimation from backend counts, and the classical optimization loop
// driving any QFw backend through the frontend interface.
package qaoa

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/mps"
	"qfw/internal/optimize"
	"qfw/internal/pauli"
	"qfw/internal/qubo"
	"qfw/internal/statevec"
)

// Runner abstracts circuit execution; *core.Frontend satisfies it, and
// tests can substitute local engines.
type Runner interface {
	Run(c *circuit.Circuit, opts core.RunOptions) (*core.Result, error)
}

// BatchRunner extends Runner with batched parametric execution: one
// (symbolic) circuit plus K bindings evaluated through a single submission.
// *core.Frontend satisfies it via RunBatch (one submit_batch RPC), and
// LocalRunner satisfies it with concurrent in-process evaluation. Solve
// prefers this path: each optimizer iteration ships its whole candidate
// set at once instead of one fully bound circuit per evaluation.
type BatchRunner interface {
	Runner
	RunBatch(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, error)
}

// GradientRunner extends Runner with analytic gradient evaluation: the
// observable in opts.Observable and its exact gradient, per binding, via
// one submission. *core.Frontend satisfies it via RunGradient (backends
// advertising the capability run the adjoint engine), and LocalRunner
// satisfies it in-process. Solve prefers this path whenever the backend
// supports exact expectations: every optimizer step costs O(1) gradient
// evaluations instead of a simplex of full re-executions.
type GradientRunner interface {
	Runner
	RunGradient(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]core.GradResult, error)
	SupportsGradients() bool
}

// adjointCostFactor is the circuit-equivalent price of one adjoint gradient
// evaluation — one forward sweep plus the two inverse applications of the
// reverse sweep — used to keep optimizer eval budgets comparable across
// methods.
const adjointCostFactor = 3

// BuildAnsatz constructs the depth-p QAOA circuit for a diagonal Ising cost
// Hamiltonian, with symbolic parameters gamma0..gamma{p-1} and
// beta0..beta{p-1}.
func BuildAnsatz(h *pauli.Hamiltonian, p int) *circuit.Circuit {
	if !h.IsDiagonal() {
		panic("qaoa: cost Hamiltonian must be diagonal")
	}
	if p < 1 {
		p = 1
	}
	c := circuit.New(h.NQubits)
	c.Name = fmt.Sprintf("qaoa-%d-p%d", h.NQubits, p)
	for q := 0; q < h.NQubits; q++ {
		c.H(q)
	}
	for layer := 0; layer < p; layer++ {
		gamma := fmt.Sprintf("gamma%d", layer)
		beta := fmt.Sprintf("beta%d", layer)
		for _, term := range h.Terms {
			sup := term.Support()
			switch len(sup) {
			case 1:
				c.RZ(sup[0], circuit.Sym(gamma, 2*term.Coeff))
			case 2:
				c.RZZ(sup[0], sup[1], circuit.Sym(gamma, 2*term.Coeff))
			}
		}
		for q := 0; q < h.NQubits; q++ {
			c.RX(q, circuit.Sym(beta, 2))
		}
	}
	c.MeasureAll()
	return c
}

// BindParams produces the binding map for a flat parameter vector
// [gamma0..gamma{p-1}, beta0..beta{p-1}].
func BindParams(params []float64) map[string]float64 {
	p := len(params) / 2
	m := make(map[string]float64, len(params))
	for i := 0; i < p; i++ {
		m[fmt.Sprintf("gamma%d", i)] = params[i]
		m[fmt.Sprintf("beta%d", i)] = params[p+i]
	}
	return m
}

// ExpectationFromCounts estimates <H> from measurement counts of a diagonal
// Hamiltonian (keys use the Qiskit convention: qubit 0 rightmost).
func ExpectationFromCounts(h *pauli.Hamiltonian, counts map[string]int) float64 {
	var total int
	var acc float64
	bits := make([]int, h.NQubits)
	for key, n := range counts {
		for q := 0; q < h.NQubits; q++ {
			if key[len(key)-1-q] == '1' {
				bits[q] = 1
			} else {
				bits[q] = 0
			}
		}
		acc += float64(n) * h.DiagonalEnergy(bits)
		total += n
	}
	if total == 0 {
		return 0
	}
	return acc / float64(total)
}

// Options tune a QAOA solve.
type Options struct {
	P        int   // ansatz depth, default 1
	Shots    int   // default 512
	MaxEvals int   // optimizer budget in circuit-equivalent evaluations, default 60
	Seed     int64 // default 1
	Run      core.RunOptions

	// ExactExpectation attaches the cost operator as an Observable so local
	// simulator backends return the exact <H> instead of the shot estimate
	// (the noiseless optimization path; cloud backends still estimate from
	// counts). Subject of the expectation-path ablation benchmark.
	ExactExpectation bool

	// Optimizer selects the classical update rule: "auto" (default — Adam
	// over analytic gradients when the runner supports them, Nelder-Mead
	// otherwise), "adam", "gd" (gradient descent with Armijo line search),
	// "neldermead", or "spsa".
	Optimizer string

	// Gradient selects the differentiation method for the gradient-based
	// optimizers: "auto" (default — adjoint through the runner's gradient
	// capability, parameter-shift batches otherwise), "adjoint", or
	// "paramshift". Parameter-shift fans the shifted bindings through the
	// ordinary RunBatch path, so it works on any batch-capable backend,
	// shot-based and cloud included.
	Gradient string

	// LR overrides the gradient optimizer's step size (default 0.1).
	LR float64

	// Population sizes the Adam gradient path's multi-start population
	// (default 4; 1 disables multi-start). Every member's gradient rides
	// the same batched submission, so extra starts cost evaluations but no
	// extra round trips — the insurance against a single descent trajectory
	// settling into a worse basin than Nelder-Mead's simplex search.
	Population int

	// Target, when non-nil, stops the optimization as soon as the objective
	// reaches the given value — the equal-convergence-target mode of the
	// gradient ablation benchmark. Honored by the adam, gd, and neldermead
	// paths; spsa has no early-stop hook and ignores it.
	Target *float64
}

// ObservableFromQUBO converts a QUBO's Ising form into the wire-format
// diagonal observable (without the constant offset). Couplings are emitted
// in pauli.SortedPairs order, never map order: their order decides
// floating-point summation order in expectation and gradient evaluations,
// and two solves with the same seed must agree bit for bit.
func ObservableFromQUBO(q *qubo.QUBO) *core.Observable {
	h, js, _ := q.ToIsing()
	obs := &core.Observable{Fields: h}
	for _, pair := range pauli.SortedPairs(js) {
		if v := js[pair]; v != 0 {
			obs.Couplings = append(obs.Couplings, core.Coupling{I: pair[0], J: pair[1], V: v})
		}
	}
	return obs
}

// Result summarizes a QAOA solve.
type Result struct {
	Bits        []int
	Energy      float64 // QUBO energy of the best sampled bitstring
	Expectation float64 // final <H> + offset
	Evals       int     // circuit-equivalent evaluations used (adjoint gradient = 3)
	Params      []float64
}

// resolveStrategy picks the optimizer and differentiation method from the
// options and the runner's capabilities: "auto" prefers Adam over adjoint
// gradients when the runner differentiates, parameter-shift batches when it
// only batches (and was asked for gradients explicitly), and Nelder-Mead
// otherwise. Explicit requests that the runner cannot satisfy fail loudly
// instead of silently degrading.
func resolveStrategy(runner Runner, opts *Options) (optName, gradMode string, err error) {
	optName = opts.Optimizer
	if optName == "" {
		optName = "auto"
	}
	gradMode = opts.Gradient
	if gradMode == "" {
		gradMode = "auto"
	}
	gr, hasGR := runner.(GradientRunner)
	grOK := hasGR && gr.SupportsGradients()
	_, brOK := runner.(BatchRunner)
	switch optName {
	case "neldermead", "nm":
		return "neldermead", "", nil
	case "spsa":
		if !brOK {
			return "", "", fmt.Errorf("qaoa: spsa optimizer needs a batch-capable runner")
		}
		return "spsa", "", nil
	case "adam", "gd":
		switch gradMode {
		case "auto":
			if grOK {
				return optName, "adjoint", nil
			}
			if brOK {
				return optName, "paramshift", nil
			}
			return "", "", fmt.Errorf("qaoa: optimizer %q needs a gradient- or batch-capable runner", optName)
		case "adjoint":
			if !grOK {
				return "", "", fmt.Errorf("qaoa: runner does not support adjoint gradients")
			}
			return optName, "adjoint", nil
		case "paramshift":
			if !brOK {
				return "", "", fmt.Errorf("qaoa: parameter-shift gradients need a batch-capable runner")
			}
			return optName, "paramshift", nil
		}
		return "", "", fmt.Errorf("qaoa: unknown gradient method %q", gradMode)
	case "auto":
		switch gradMode {
		case "off":
			return "neldermead", "", nil
		case "adjoint":
			if !grOK {
				return "", "", fmt.Errorf("qaoa: runner does not support adjoint gradients")
			}
			return "adam", "adjoint", nil
		case "paramshift":
			if !brOK {
				return "", "", fmt.Errorf("qaoa: parameter-shift gradients need a batch-capable runner")
			}
			return "adam", "paramshift", nil
		case "auto":
			if grOK {
				return "adam", "adjoint", nil
			}
			return "neldermead", "", nil
		}
		return "", "", fmt.Errorf("qaoa: unknown gradient method %q", gradMode)
	}
	return "", "", fmt.Errorf("qaoa: unknown optimizer %q", optName)
}

// flatGradIndex maps the flat [gamma0..γp-1, beta0..βp-1] parameter vector
// onto the sorted-name order gradient results come back in.
func flatGradIndex(p int, sorted []string) []int {
	pos := make(map[string]int, len(sorted))
	for i, n := range sorted {
		pos[n] = i
	}
	idx := make([]int, 2*p)
	for i := 0; i < p; i++ {
		idx[i] = pos[fmt.Sprintf("gamma%d", i)]
		idx[p+i] = pos[fmt.Sprintf("beta%d", i)]
	}
	return idx
}

// Solve runs the full hybrid loop: build ansatz, optimize (γ, β), then
// sample the optimum and return the best bitstring by true QUBO energy.
// The classical update rule follows Options.Optimizer: with a
// gradient-capable runner the loop defaults to Adam over exact adjoint
// gradients (O(1) gradient evaluations per step — the per-evaluation cost
// the paper's timeline analysis identifies as the scaling bottleneck),
// falling back to batched Nelder-Mead over expectation estimates otherwise.
func Solve(q *qubo.QUBO, runner Runner, opts Options) (*Result, error) {
	if opts.P <= 0 {
		opts.P = 1
	}
	if opts.Shots <= 0 {
		opts.Shots = 512
	}
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 60
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	optName, gradMode, err := resolveStrategy(runner, &opts)
	if err != nil {
		return nil, err
	}
	h, offset := q.CostHamiltonian()
	ansatz := BuildAnsatz(h, opts.P)
	rng := rand.New(rand.NewSource(opts.Seed))
	var obs *core.Observable
	if opts.ExactExpectation || gradMode != "" {
		// Gradient objectives differentiate the observable, so the gradient
		// paths always attach it regardless of the expectation option.
		obs = ObservableFromQUBO(q)
	}

	evals := 0
	var firstErr error
	x0 := make([]float64, 2*opts.P)
	for i := range x0 {
		x0[i] = 0.1 + 0.4*rng.Float64()
	}
	nmOpts := optimize.NMOptions{MaxEvals: opts.MaxEvals, InitStep: 0.4}
	if opts.Target != nil {
		nmOpts.Target = *opts.Target
		nmOpts.HasTarget = true
	}
	var best []float64
	var bestF float64
	switch {
	case gradMode != "":
		best, bestF = solveGradient(runner, ansatz, h, obs, x0, optName, gradMode, &opts, &evals, &firstErr)
	case optName == "spsa":
		br := runner.(BatchRunner)
		objective := batchObjective(br, ansatz, h, obs, &opts, &evals, &firstErr)
		const pairs = 2
		iters := opts.MaxEvals / (2*pairs + 1)
		if iters < 1 {
			iters = 1
		}
		best, bestF = optimize.SPSABatch(objective, x0, iters, pairs, rng)
	default:
		if br, ok := runner.(BatchRunner); ok {
			// Batched path: each candidate set becomes one RunBatch
			// submission — the ansatz ships once (symbolically) and element
			// i inherits the seed the serial loop would have used.
			objective := batchObjective(br, ansatz, h, obs, &opts, &evals, &firstErr)
			best, bestF, _ = optimize.NelderMeadBatch(objective, x0, nmOpts)
		} else {
			objective := func(params []float64) float64 {
				if firstErr != nil {
					return math.Inf(1)
				}
				evals++
				bound := ansatz.Bind(BindParams(params))
				runOpts := opts.Run
				runOpts.Shots = opts.Shots
				runOpts.Seed = opts.Seed + int64(evals)
				runOpts.Observable = obs
				res, err := runner.Run(bound, runOpts)
				if err != nil {
					firstErr = err
					return math.Inf(1)
				}
				if res.ExpVal != nil {
					return *res.ExpVal
				}
				return ExpectationFromCounts(h, res.Counts)
			}
			best, bestF, _ = optimize.NelderMead(objective, x0, nmOpts)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Final sampling at the optimum; best observed bitstring wins.
	bound := ansatz.Bind(BindParams(best))
	runOpts := opts.Run
	runOpts.Shots = opts.Shots * 2
	runOpts.Seed = opts.Seed + 7777
	res, err := runner.Run(bound, runOpts)
	if err != nil {
		return nil, err
	}
	bits, energy := bestSampled(q, res.Counts)
	return &Result{
		Bits:        bits,
		Energy:      energy,
		Expectation: bestF + offset,
		Evals:       evals,
		Params:      best,
	}, nil
}

// batchObjective builds the shared value-only batch objective: one RunBatch
// submission per candidate set, exact expectations when the observable is
// attached and the backend returns them, count estimates otherwise.
func batchObjective(br BatchRunner, ansatz *circuit.Circuit, h *pauli.Hamiltonian, obs *core.Observable,
	opts *Options, evals *int, firstErr *error) optimize.BatchObjective {
	return func(paramSets [][]float64) []float64 {
		out := make([]float64, len(paramSets))
		seedBase := opts.Seed + int64(*evals)
		*evals += len(paramSets)
		if *firstErr != nil {
			for i := range out {
				out[i] = math.Inf(1)
			}
			return out
		}
		bindings := make([]core.Bindings, len(paramSets))
		for i, ps := range paramSets {
			bindings[i] = BindParams(ps)
		}
		runOpts := opts.Run
		runOpts.Shots = opts.Shots
		runOpts.Seed = seedBase + 1
		runOpts.Observable = obs
		results, err := br.RunBatch(ansatz, bindings, runOpts)
		for i := range out {
			if err == nil && (i >= len(results) || results[i] == nil) {
				err = fmt.Errorf("qaoa: batch returned no result for element %d", i)
			}
			if err != nil {
				if *firstErr == nil {
					*firstErr = err
				}
				out[i] = math.Inf(1)
				continue
			}
			if results[i].ExpVal != nil {
				out[i] = *results[i].ExpVal
			} else {
				out[i] = ExpectationFromCounts(h, results[i].Counts)
			}
		}
		return out
	}
}

// solveGradient runs the gradient-driven optimization loop. The objective's
// value-and-gradient hook goes through the runner's adjoint capability (one
// RunGradient submission per candidate set, ~3 circuit-equivalents each) or
// through parameter-shift batches on the plain RunBatch path (1 + 2·shift
// terms circuit evaluations per point, all in one round trip). MaxEvals is
// spent as a circuit-equivalent budget so methods stay comparable.
func solveGradient(runner Runner, ansatz *circuit.Circuit, h *pauli.Hamiltonian, obs *core.Observable,
	x0 []float64, optName, gradMode string, opts *Options, evals *int, firstErr *error) ([]float64, float64) {
	p := opts.P
	fail := func(xs [][]float64, err error) ([]float64, [][]float64) {
		if *firstErr == nil && err != nil {
			*firstErr = err
		}
		vals := make([]float64, len(xs))
		grads := make([][]float64, len(xs))
		for i := range xs {
			vals[i] = math.Inf(1)
			grads[i] = make([]float64, 2*p)
		}
		return vals, grads
	}
	var gradObj optimize.BatchGradObjective
	var gradCost int // circuit-equivalents per gradient evaluation
	switch gradMode {
	case "adjoint":
		gr := runner.(GradientRunner)
		fidx := flatGradIndex(p, ansatz.ParamNames())
		gradCost = adjointCostFactor
		gradObj = func(xs [][]float64) ([]float64, [][]float64) {
			if *firstErr != nil {
				return fail(xs, nil)
			}
			*evals += gradCost * len(xs)
			bindings := make([]core.Bindings, len(xs))
			for i, x := range xs {
				bindings[i] = BindParams(x)
			}
			runOpts := opts.Run
			runOpts.Shots = opts.Shots
			runOpts.Seed = opts.Seed
			runOpts.Observable = obs
			results, err := gr.RunGradient(ansatz, bindings, runOpts)
			if err != nil {
				return fail(xs, err)
			}
			vals := make([]float64, len(xs))
			grads := make([][]float64, len(xs))
			for i, res := range results {
				vals[i] = res.Value
				g := make([]float64, 2*p)
				for j, at := range fidx {
					g[j] = res.Grad[at]
				}
				grads[i] = g
			}
			return vals, grads
		}
	case "paramshift":
		br := runner.(BatchRunner)
		splan, err := circuit.PlanParamShift(ansatz)
		if err != nil {
			*firstErr = err
			return x0, math.Inf(1)
		}
		fidx := flatGradIndex(p, splan.Params())
		gradCost = splan.NumBindings()
		gradObj = func(xs [][]float64) ([]float64, [][]float64) {
			if *firstErr != nil {
				return fail(xs, nil)
			}
			*evals += gradCost * len(xs)
			// All shifted bindings of every candidate ride one submission.
			all := make([]core.Bindings, 0, gradCost*len(xs))
			for _, x := range xs {
				for _, b := range splan.Bindings(BindParams(x)) {
					all = append(all, b)
				}
			}
			runOpts := opts.Run
			runOpts.Shots = opts.Shots
			runOpts.Seed = opts.Seed
			runOpts.Observable = obs
			results, err := br.RunBatch(splan.Circuit, all, runOpts)
			if err != nil {
				return fail(xs, err)
			}
			if len(results) != len(all) {
				return fail(xs, fmt.Errorf("qaoa: gradient batch returned %d results for %d bindings", len(results), len(all)))
			}
			vals := make([]float64, len(xs))
			grads := make([][]float64, len(xs))
			for i := range xs {
				chunk := results[i*gradCost : (i+1)*gradCost]
				es := make([]float64, gradCost)
				for j, res := range chunk {
					if res == nil {
						return fail(xs, fmt.Errorf("qaoa: gradient batch returned no result for element %d", i*gradCost+j))
					}
					if res.ExpVal != nil {
						es[j] = *res.ExpVal
					} else {
						es[j] = ExpectationFromCounts(h, res.Counts)
					}
				}
				val, grad, err := splan.Assemble(es)
				if err != nil {
					return fail(xs, err)
				}
				vals[i] = val
				g := make([]float64, 2*p)
				for j, at := range fidx {
					g[j] = grad[at]
				}
				grads[i] = g
			}
			return vals, grads
		}
	}
	gopts := optimize.GradOptions{LR: opts.LR}
	if gopts.LR == 0 {
		// QAOA angles move on the scale of radians; the literature Adam
		// default of 0.1 crawls on these landscapes.
		if optName == "gd" {
			gopts.LR = 0.5
		} else {
			gopts.LR = 0.3
		}
	}
	if opts.Target != nil {
		gopts.Target = *opts.Target
		gopts.HasTarget = true
	}
	switch optName {
	case "gd":
		// Per iteration: one gradient evaluation plus a four-point Armijo
		// ladder — value-only through the batch path when available, at
		// full gradient price otherwise (GradientDescent falls back to the
		// gradient hook for the ladder, so cost it honestly).
		perIter := gradCost + 4
		if br, ok := runner.(BatchRunner); ok {
			gopts.Line = batchObjective(br, ansatz, h, obs, opts, evals, firstErr)
		} else {
			perIter = gradCost + gradCost*4
		}
		gopts.MaxIters = opts.MaxEvals / perIter
		if gopts.MaxIters < 1 {
			gopts.MaxIters = 1
		}
		best, bestF, _ := optimize.GradientDescent(gradObj, x0, gopts)
		return best, bestF
	default: // adam
		pop := opts.Population
		if pop <= 0 {
			// Multi-start is near-free insurance when a gradient costs ~3
			// evaluations; at parameter-shift prices (2 per parametric gate
			// occurrence) the budget is better spent on iteration depth.
			if gradMode == "adjoint" {
				pop = 4
			} else {
				pop = 1
			}
		}
		starts := make([][]float64, pop)
		starts[0] = x0
		srng := rand.New(rand.NewSource(opts.Seed + 999))
		for s := 1; s < pop; s++ {
			x := make([]float64, len(x0))
			for i := range x {
				x[i] = 0.1 + 0.4*srng.Float64()
			}
			starts[s] = x
		}
		gopts.MaxIters = opts.MaxEvals / (gradCost * pop)
		if gopts.MaxIters < 1 {
			gopts.MaxIters = 1
		}
		best, bestF, _ := optimize.AdamPopulation(gradObj, starts, gopts)
		return best, bestF
	}
}

// bestSampled returns the sampled bitstring with the lowest QUBO energy.
func bestSampled(q *qubo.QUBO, counts map[string]int) ([]int, float64) {
	bestE := math.Inf(1)
	var best []int
	for key := range counts {
		bits := make([]int, q.N)
		for i := 0; i < q.N; i++ {
			if key[len(key)-1-i] == '1' {
				bits[i] = 1
			}
		}
		if e := q.Energy(bits); e < bestE {
			bestE = e
			best = bits
		}
	}
	return best, bestE
}

// LocalRunner executes circuits directly on the in-process simulation
// engines, bypassing the orchestration stack — used by unit tests and as
// the zero-overhead baseline in the ablation benchmarks.
type LocalRunner struct {
	Workers int

	// Engine selects the simulator: "" or "statevector" (default) runs the
	// fused state-vector engine; "mps" runs the compiled matrix-product-state
	// schedule (MaxBond and Cutoff tune its truncation), which opens qubit
	// counts the dense engine cannot reach. The MPS engine has no adjoint
	// gradients, so solves over it fall back to batched Nelder-Mead.
	Engine  string
	MaxBond int
	Cutoff  float64
}

// Run implements Runner.
func (l LocalRunner) Run(c *circuit.Circuit, opts core.RunOptions) (*core.Result, error) {
	w := l.Workers
	if w <= 0 {
		w = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	shots := opts.Shots
	if shots <= 0 {
		shots = 1024
	}
	if l.Engine == "mps" {
		cc, err := mps.CompileCircuit(c)
		if err != nil {
			return nil, fmt.Errorf("qaoa: %w", err)
		}
		return l.mpsResult(cc, nil, shots, rng, opts.Observable, w)
	}
	s, _ := statevec.RunFused(c.StripMeasurements(), nil, w, rng)
	res := &core.Result{Counts: s.SampleCounts(shots, rng), Backend: "local"}
	if opts.Observable != nil {
		var v float64
		if opts.Observable.IsDiagonal() {
			v = s.ExpectationDiagonal(opts.Observable.EnergyOfIndex)
		} else {
			v = s.ExpectationHamiltonian(hamiltonianFromObservable(opts.Observable, c.NQubits))
		}
		res.ExpVal = &v
	}
	s.Release()
	return res, nil
}

// mpsResult executes one binding of a compiled MPS schedule and marshals a
// local Result (exact <H> through the transfer contraction, truncation
// telemetry in TruncErr/Extra).
func (l LocalRunner) mpsResult(cc *mps.Compiled, binding map[string]float64, shots int, rng *rand.Rand, obs *core.Observable, workers int) (*core.Result, error) {
	m, err := cc.Execute(binding, mps.Options{MaxBond: l.MaxBond, Cutoff: l.Cutoff, Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("qaoa: %w", err)
	}
	defer m.Release()
	res := &core.Result{Backend: "local", Subbackend: "mps", TruncErr: m.TruncErr}
	if obs != nil {
		v := m.ExpectationHamiltonian(hamiltonianFromObservable(obs, cc.N))
		res.ExpVal = &v
	}
	res.Counts = m.Sample(shots, rng)
	res.Extra = map[string]float64{"mps_fidelity": m.Fidelity(), "mps_peak_bond": float64(m.PeakBond())}
	return res, nil
}

// RunBatch implements BatchRunner: elements are dispatched to concurrent
// goroutines bounded by a core-sized semaphore and collected into ordered
// slots — a K-element batch costs at most GOMAXPROCS live executions (and
// their 2^n amplitude arenas) instead of K. On the MPS engine the schedule
// compiles once per call and every element replays it. The blocking collect
// point matters on its own: a caller running many solves concurrently
// (DQAOA's async sub-QAOA client) yields the processor here, so sibling
// solves genuinely overlap even on one core.
func (l LocalRunner) RunBatch(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, error) {
	results := make([]*core.Result, len(bindings))
	errs := make([]error, len(bindings))
	var cc *mps.Compiled
	if l.Engine == "mps" {
		var err error
		if cc, err = mps.CompileCircuit(c); err != nil {
			return nil, fmt.Errorf("qaoa: %w", err)
		}
	}
	core.FanOut(len(bindings), runtime.GOMAXPROCS(0), func(i int) {
		elemOpts := opts.ForElement(i)
		if cc != nil {
			seed := elemOpts.Seed
			if seed == 0 {
				seed = 1
			}
			shots := elemOpts.Shots
			if shots <= 0 {
				shots = 1024
			}
			results[i], errs[i] = l.mpsResult(cc, bindings[i], shots, rand.New(rand.NewSource(seed)), elemOpts.Observable, 1)
			return
		}
		bound := c.Bind(bindings[i])
		if !bound.IsBound() {
			errs[i] = fmt.Errorf("qaoa: batch element %d leaves params %v unbound", i, bound.ParamNames())
			return
		}
		results[i], errs[i] = l.Run(bound, elemOpts)
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// SupportsGradients implements GradientRunner: the state-vector engine
// always differentiates; the MPS engine has no dense amplitude access, so
// gradient-based optimizers fall back to derivative-free search over it.
func (l LocalRunner) SupportsGradients() bool { return l.Engine != "mps" }

// RunGradient implements GradientRunner on the in-process adjoint engine:
// the gradient plan is built once per call and shared by every binding,
// which fan out through the shared adjoint batch (kernel parallelism
// divides by the in-flight sweep count, so a gradient batch never
// oversubscribes the node).
func (l LocalRunner) RunGradient(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]core.GradResult, error) {
	if l.Engine == "mps" {
		return nil, fmt.Errorf("qaoa: the mps engine does not support adjoint gradients")
	}
	if opts.Observable == nil {
		return nil, fmt.Errorf("qaoa: gradient execution requires an observable")
	}
	w := l.Workers
	if w <= 0 {
		w = 1
	}
	plan := circuit.PlanFusionGrad(c)
	var obs statevec.GradObs
	if opts.Observable.IsDiagonal() {
		obs = statevec.GradObs{Diag: opts.Observable.EnergyOfIndex}
	} else {
		obs = statevec.GradObs{Ham: hamiltonianFromObservable(opts.Observable, c.NQubits)}
	}
	maps := make([]map[string]float64, len(bindings))
	for i, b := range bindings {
		maps[i] = b
	}
	evals, err := statevec.GradientAdjointBatch(plan, maps, obs, w)
	// Yield before returning: a K=1 gradient submission parks its single
	// element goroutine in the scheduler's run-next slot, so without an
	// explicit yield a fast optimizer loop would monopolize the processor
	// on a single core. The yield preserves RunBatch's documented property
	// that sibling solves (DQAOA's async sub-QAOA client) genuinely overlap.
	runtime.Gosched()
	if err != nil {
		return nil, fmt.Errorf("qaoa: %w", err)
	}
	results := make([]core.GradResult, len(evals))
	for i, e := range evals {
		results[i] = core.GradResult{Value: e.Value, Grad: e.Grad}
	}
	return results, nil
}

// hamiltonianFromObservable converts the wire-format observable into Pauli
// algebra for exact evaluation on local engines.
func hamiltonianFromObservable(o *core.Observable, n int) *pauli.Hamiltonian {
	fields := make([]float64, n)
	copy(fields, o.Fields)
	js := map[[2]int]float64{}
	for _, c := range o.Couplings {
		js[[2]int{c.I, c.J}] += c.V
	}
	h := pauli.IsingCost(fields, js)
	for _, t := range o.Paulis {
		terms := map[int]pauli.Op{}
		for q := 0; q < len(t.Ops) && q < n; q++ {
			switch t.Ops[q] {
			case 'X':
				terms[q] = pauli.X
			case 'Y':
				terms[q] = pauli.Y
			case 'Z':
				terms[q] = pauli.Z
			}
		}
		h.Add(t.Coeff, terms)
	}
	return h
}
