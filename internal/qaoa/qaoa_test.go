package qaoa

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/optimize"
	"qfw/internal/pauli"
	"qfw/internal/qubo"
)

func TestBuildAnsatzStructure(t *testing.T) {
	q := qubo.New(4)
	q.Q[0][0] = 1
	q.Set(0, 1, -1)
	q.Set(2, 3, 0.5)
	h, _ := q.CostHamiltonian()
	c := BuildAnsatz(h, 2)
	names := c.ParamNames()
	want := []string{"beta0", "beta1", "gamma0", "gamma1"}
	if len(names) != 4 {
		t.Fatalf("params %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("params %v, want %v", names, want)
		}
	}
	ops := c.CountOps()
	if ops["h"] != 4 || ops["rx"] != 8 || ops["measure"] != 4 {
		t.Fatalf("ops %v", ops)
	}
	bound := c.Bind(BindParams([]float64{0.1, 0.2, 0.3, 0.4}))
	if !bound.IsBound() {
		t.Fatal("binding incomplete")
	}
}

func TestExpectationFromCounts(t *testing.T) {
	h := pauli.IsingCost([]float64{1, -1}, nil)
	counts := map[string]int{
		"00": 50, // z=(+1,+1): E = 1 - 1 = 0
		"01": 25, // q0=1: z0=-1: E = -1 -1 = -2
		"10": 25, // q1=1: E = 1 + 1 = 2
	}
	got := ExpectationFromCounts(h, counts)
	want := (50*0.0 + 25*(-2.0) + 25*2.0) / 100
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("expectation %g, want %g", got, want)
	}
}

func TestSolveSmallQUBOFindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := qubo.Random(6, 0.7, 1, rng)
	_, exact := optimize.BruteForce(q)
	res, err := Solve(q, LocalRunner{}, Options{P: 2, Shots: 512, MaxEvals: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Best *sampled* bitstring is nearly always optimal for n=6 with p=2.
	quality := optimize.SolutionQuality(res.Energy, exact, 0)
	if res.Energy > exact+1e-9 && quality < 0.9 {
		t.Fatalf("QAOA energy %g vs exact %g (quality %g)", res.Energy, exact, quality)
	}
	if res.Evals == 0 || len(res.Bits) != 6 {
		t.Fatalf("result %+v", res)
	}
}

func TestSolveFidelityAbove95(t *testing.T) {
	// The Fig. 3f check at unit-test scale: across several random QUBOs the
	// best-sampled solution quality stays above 95%.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4; trial++ {
		q := qubo.Random(8, 0.6, 1, rng)
		bits, exact := optimize.BruteForce(q)
		_ = bits
		res, err := Solve(q, LocalRunner{}, Options{P: 2, Shots: 768, MaxEvals: 50, Seed: int64(trial + 10)})
		if err != nil {
			t.Fatal(err)
		}
		worst := -exact
		if worst < exact {
			worst = exact + 1
		}
		fid := optimize.SolutionQuality(res.Energy, exact, worst)
		if fid < 0.95 {
			t.Fatalf("trial %d: fidelity %.3f < 0.95 (E=%g exact=%g)", trial, fid, res.Energy, exact)
		}
	}
}

func TestSolvePropagatesRunnerError(t *testing.T) {
	q := qubo.Random(4, 0.5, 1, rand.New(rand.NewSource(3)))
	_, err := Solve(q, failingRunner{}, Options{Seed: 1})
	if err == nil {
		t.Fatal("runner error swallowed")
	}
}

type failingRunner struct{}

func (failingRunner) Run(_ *circuit.Circuit, _ core.RunOptions) (*core.Result, error) {
	return nil, errors.New("backend unavailable")
}
