package qaoa

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"qfw/internal/core"
	"qfw/internal/optimize"
	"qfw/internal/qubo"
)

// TestSolveOnMPSEngine runs the full hybrid loop with the compiled MPS
// engine behind LocalRunner: the solve must fall back to derivative-free
// optimization (no adjoint on MPS) and still reach the optimum of a small
// QUBO.
func TestSolveOnMPSEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := qubo.Random(6, 0.7, 1, rng)
	_, exact := optimize.BruteForce(q)
	runner := LocalRunner{Engine: "mps"}
	if runner.SupportsGradients() {
		t.Fatalf("the MPS engine must not advertise adjoint gradients")
	}
	res, err := Solve(q, runner, Options{P: 2, Shots: 512, MaxEvals: 60, Seed: 3, ExactExpectation: true})
	if err != nil {
		t.Fatal(err)
	}
	quality := optimize.SolutionQuality(res.Energy, exact, 0)
	if res.Energy > exact+1e-9 && quality < 0.9 {
		t.Fatalf("MPS-engine QAOA energy %g vs exact %g (quality %g)", res.Energy, exact, quality)
	}
	if len(res.Bits) != 6 {
		t.Fatalf("result %+v", res)
	}
}

// TestMPSEngineMatchesStatevectorExpectation pins engine agreement at the
// runner level: exact <H> of one bound ansatz must agree between the MPS
// and state-vector engines to simulator precision.
func TestMPSEngineMatchesStatevectorExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := qubo.Random(7, 0.6, 1, rng)
	h, _ := q.CostHamiltonian()
	ansatz := BuildAnsatz(h, 2)
	obs := ObservableFromQUBO(q)
	bindings := []core.Bindings{
		BindParams([]float64{0.3, 0.8, 0.5, 0.2}),
		BindParams([]float64{0.7, 0.1, 0.9, 0.4}),
	}
	opts := core.RunOptions{Shots: 128, Seed: 9, Observable: obs}
	sv, err := LocalRunner{}.RunBatch(ansatz, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := LocalRunner{Engine: "mps"}.RunBatch(ansatz, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bindings {
		if sv[i].ExpVal == nil || mp[i].ExpVal == nil {
			t.Fatalf("element %d missing exact expectation", i)
		}
		if d := math.Abs(*sv[i].ExpVal - *mp[i].ExpVal); d > 1e-9 {
			t.Fatalf("element %d: statevector <H> %g vs mps <H> %g (diff %g)", i, *sv[i].ExpVal, *mp[i].ExpVal, d)
		}
		if mp[i].TruncErr > 1e-9 {
			t.Fatalf("element %d truncated (%g) at n=7 under the default bond cap", i, mp[i].TruncErr)
		}
	}
}

// TestMPSEngineBatchDeterminism pins seeded batch determinism at the
// runner level: two identical RunBatch calls must agree bit for bit.
func TestMPSEngineBatchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := qubo.Random(6, 0.5, 1, rng)
	h, _ := q.CostHamiltonian()
	ansatz := BuildAnsatz(h, 1)
	bindings := []core.Bindings{
		BindParams([]float64{0.4, 0.6}),
		BindParams([]float64{0.2, 0.9}),
		BindParams([]float64{0.8, 0.1}),
	}
	opts := core.RunOptions{Shots: 256, Seed: 21}
	runner := LocalRunner{Engine: "mps"}
	a, err := runner.RunBatch(ansatz, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner.RunBatch(ansatz, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Counts, b[i].Counts) {
			t.Fatalf("element %d counts differ across identical batch runs", i)
		}
	}
	// The MPS runner rejects gradient requests instead of silently failing.
	if _, err := runner.RunGradient(ansatz, bindings, core.RunOptions{Observable: ObservableFromQUBO(q)}); err == nil {
		t.Fatalf("RunGradient on the MPS engine should fail loudly")
	}
}
