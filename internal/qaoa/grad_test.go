package qaoa

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/qubo"
	"qfw/internal/statevec"
)

// TestQAOAAnsatzAdjointVsParamShift checks the two analytic methods agree
// to 1e-9 on the real QAOA ansatz (shared gamma/beta parameters with
// per-gate affine coefficients) and match finite differences to 1e-7.
func TestQAOAAnsatzAdjointVsParamShift(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := qubo.Random(7, 0.6, 1.0, rng)
	h, _ := q.CostHamiltonian()
	ansatz := BuildAnsatz(h, 2)
	obs := statevec.GradObs{Diag: ObservableFromQUBO(q).EnergyOfIndex}
	binding := BindParams([]float64{0.4, -0.7, 0.9, 0.15})

	plan := circuit.PlanFusionGrad(ansatz)
	aval, agrad, err := statevec.GradientAdjoint(plan, binding, obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	splan, err := circuit.PlanParamShift(ansatz)
	if err != nil {
		t.Fatal(err)
	}
	sval, sgrad, err := statevec.GradientParamShift(splan, binding, obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aval-sval) > 1e-9 {
		t.Fatalf("value: adjoint %.15g vs shift %.15g", aval, sval)
	}
	for i, name := range plan.Params() {
		if math.Abs(agrad[i]-sgrad[i]) > 1e-9 {
			t.Errorf("param %s: adjoint %.15g vs shift %.15g", name, agrad[i], sgrad[i])
		}
	}
	// Finite differences against the full Solve-path expectation.
	value := func(b map[string]float64) float64 {
		s, _ := statevec.RunFused(ansatz.Bind(b).StripMeasurements(), nil, 1, rand.New(rand.NewSource(1)))
		defer s.Release()
		return s.ExpectationDiagonal(obs.Diag)
	}
	const eps = 1e-5
	for i, name := range plan.Params() {
		up := BindParams([]float64{0.4, -0.7, 0.9, 0.15})
		dn := BindParams([]float64{0.4, -0.7, 0.9, 0.15})
		up[name] += eps
		dn[name] -= eps
		fd := (value(up) - value(dn)) / (2 * eps)
		if math.Abs(agrad[i]-fd) > 1e-7 {
			t.Errorf("param %s: adjoint %.12g vs finite diff %.12g", name, agrad[i], fd)
		}
	}
}

// TestLocalRunnerRunGradient checks the runner-level gradient API ordering
// and the diagonal fast path.
func TestLocalRunnerRunGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := qubo.Random(5, 0.5, 1.0, rng)
	h, _ := q.CostHamiltonian()
	ansatz := BuildAnsatz(h, 1)
	obs := ObservableFromQUBO(q)
	runner := LocalRunner{}
	if !runner.SupportsGradients() {
		t.Fatal("LocalRunner must support gradients")
	}
	bindings := []core.Bindings{
		BindParams([]float64{0.3, 0.7}),
		BindParams([]float64{-0.2, 1.4}),
		BindParams([]float64{0.9, -0.5}),
	}
	results, err := runner.RunGradient(ansatz, bindings, core.RunOptions{Observable: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results %d", len(results))
	}
	// Cross-check element 1 against the direct engine call.
	plan := circuit.PlanFusionGrad(ansatz)
	val, grad, err := statevec.GradientAdjoint(plan, bindings[1], statevec.GradObs{Diag: obs.EnergyOfIndex}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[1].Value-val) > 1e-12 {
		t.Fatalf("value mismatch: %.15g vs %.15g", results[1].Value, val)
	}
	for j := range grad {
		if math.Abs(results[1].Grad[j]-grad[j]) > 1e-12 {
			t.Fatalf("grad[%d] mismatch", j)
		}
	}
	if _, err := runner.RunGradient(ansatz, bindings, core.RunOptions{}); err == nil {
		t.Fatal("expected observable-required error")
	}
}

// TestSolveGradientPathsConverge runs the full hybrid loop under every
// optimizer/differentiation combination and checks each reaches a good
// solution with a sane eval account.
func TestSolveGradientPathsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := qubo.Random(6, 0.6, 1.0, rng)
	_, bestE := solveExact(q)
	cases := []struct {
		name string
		opts Options
	}{
		{"adam-adjoint", Options{P: 2, MaxEvals: 120, Seed: 3, Optimizer: "adam", Gradient: "adjoint"}},
		{"gd-adjoint", Options{P: 2, MaxEvals: 120, Seed: 3, Optimizer: "gd", Gradient: "adjoint"}},
		{"adam-paramshift", Options{P: 2, MaxEvals: 400, Seed: 3, Optimizer: "adam", Gradient: "paramshift"}},
		{"auto", Options{P: 2, MaxEvals: 120, Seed: 3}},
		{"spsa", Options{P: 2, MaxEvals: 200, Seed: 3, Optimizer: "spsa"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Solve(q, LocalRunner{}, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Evals == 0 {
				t.Fatal("no evaluations accounted")
			}
			if res.Evals > 3*tc.opts.MaxEvals/2+1 {
				t.Fatalf("eval budget blown: %d for MaxEvals %d", res.Evals, tc.opts.MaxEvals)
			}
			// The sampled solution should be near the optimum on this tiny
			// instance for every method.
			if res.Energy > bestE+1e-9 && res.Energy-bestE > 0.6*math.Abs(bestE) {
				t.Fatalf("energy %.4f far from optimum %.4f", res.Energy, bestE)
			}
		})
	}
}

func solveExact(q *qubo.QUBO) ([]int, float64) {
	best := math.Inf(1)
	var bits []int
	cur := make([]int, q.N)
	for mask := 0; mask < 1<<uint(q.N); mask++ {
		for i := 0; i < q.N; i++ {
			cur[i] = (mask >> uint(i)) & 1
		}
		if e := q.Energy(cur); e < best {
			best = e
			bits = append([]int(nil), cur...)
		}
	}
	return bits, best
}

// TestSolveAutoUsesGradients asserts the auto strategy picks the adjoint
// path on a gradient-capable runner (observable attached, gradient-shaped
// eval count) and Nelder-Mead on a plain runner.
func TestSolveAutoUsesGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := qubo.Random(5, 0.5, 1.0, rng)
	grad := &probeRunner{inner: LocalRunner{}, gradients: true}
	if _, err := Solve(q, grad, Options{P: 1, MaxEvals: 60, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if grad.gradCalls == 0 {
		t.Fatal("auto strategy did not use the gradient path")
	}
	plain := &probeRunner{inner: LocalRunner{}, gradients: false}
	if _, err := Solve(q, plain, Options{P: 1, MaxEvals: 60, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if plain.gradCalls != 0 {
		t.Fatal("gradient path used despite the capability being off")
	}
	if _, err := Solve(q, plain, Options{P: 1, MaxEvals: 60, Seed: 2, Optimizer: "adam", Gradient: "adjoint"}); err == nil {
		t.Fatal("explicit adjoint request on a non-gradient runner must fail")
	}
}

// probeRunner wraps LocalRunner with a switchable gradient capability.
type probeRunner struct {
	inner     LocalRunner
	gradients bool
	gradCalls int
}

func (p *probeRunner) Run(c *circuit.Circuit, opts core.RunOptions) (*core.Result, error) {
	return p.inner.Run(c, opts)
}

func (p *probeRunner) RunBatch(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]*core.Result, error) {
	return p.inner.RunBatch(c, bindings, opts)
}

func (p *probeRunner) SupportsGradients() bool { return p.gradients }

func (p *probeRunner) RunGradient(c *circuit.Circuit, bindings []core.Bindings, opts core.RunOptions) ([]core.GradResult, error) {
	if !p.gradients {
		return nil, fmt.Errorf("probe: gradients disabled")
	}
	p.gradCalls++
	return p.inner.RunGradient(c, bindings, opts)
}
