package workloads

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/statevec"
)

func TestGHZShape(t *testing.T) {
	c := GHZ(8)
	ops := c.CountOps()
	if ops["h"] != 1 || ops["cx"] != 7 || ops["measure"] != 8 {
		t.Fatalf("ops %v", ops)
	}
	if !c.IsClifford() {
		t.Fatal("GHZ must be Clifford")
	}
}

func TestHamSimAndTFIMShapes(t *testing.T) {
	ham := HamSim(6, 1)
	if ham.NQubits != 6 || ham.CountOps()["rzz"] != 5 {
		t.Fatalf("hamsim ops %v", ham.CountOps())
	}
	tfim := TFIM(6, 4, 0.5, 1.0)
	if tfim.CountOps()["rzz"] != 4*5 {
		t.Fatalf("tfim ops %v", tfim.CountOps())
	}
	// TFIM is nearest-neighbour: MPS-friendly per the paper.
	if tfim.InteractionDistance() != 1 {
		t.Fatalf("tfim interaction distance %d", tfim.InteractionDistance())
	}
}

func TestQFTInverseIsIdentity(t *testing.T) {
	n := 4
	c := circuit.New(n)
	// Random product-state prep.
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < n; q++ {
		c.RY(q, circuit.Bound(rng.NormFloat64()))
	}
	ref, _ := statevec.RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	qs := []int{0, 1, 2, 3}
	QFT(c, qs)
	InverseQFT(c, qs)
	got, _ := statevec.RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	var overlap complex128
	for i := range got.Amp {
		overlap += cmplx.Conj(ref.Amp[i]) * got.Amp[i]
	}
	if math.Abs(cmplx.Abs(overlap)-1) > 1e-9 {
		t.Fatalf("QFT·IQFT != I, overlap %g", cmplx.Abs(overlap))
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT of |0..0> is the uniform superposition.
	n := 3
	c := circuit.New(n)
	QFT(c, []int{0, 1, 2})
	s, _ := statevec.RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	want := 1 / math.Sqrt(8)
	for i, a := range s.Amp {
		if math.Abs(cmplx.Abs(a)-want) > 1e-9 {
			t.Fatalf("amp[%d] = %v", i, a)
		}
	}
}

func TestHHLSizes(t *testing.T) {
	for _, total := range []int{5, 7, 9, 11, 13} {
		cfg := HHLSize(total)
		if 1+cfg.NClock+cfg.NB != total {
			t.Fatalf("size %d -> %d+%d+1", total, cfg.NClock, cfg.NB)
		}
		c := HHL(cfg)
		if c.NQubits != total {
			t.Fatalf("HHL width %d, want %d", c.NQubits, total)
		}
	}
}

func TestHHLDepthGrowsWithClock(t *testing.T) {
	d5 := HHL(HHLSize(5)).Depth()
	d9 := HHL(HHLSize(9)).Depth()
	d13 := HHL(HHLSize(13)).Depth()
	if !(d5 < d9 && d9 < d13) {
		t.Fatalf("depth not growing: %d %d %d", d5, d9, d13)
	}
	// Depth should grow super-linearly (controlled-U^{2^j} powers).
	if d13 < 4*d5 {
		t.Fatalf("depth growth too slow: d5=%d d13=%d", d5, d13)
	}
}

func TestHHLRunsAndNormalizes(t *testing.T) {
	c := HHL(HHLSize(5))
	s, _ := statevec.RunCircuit(c.StripMeasurements(), 1, rand.New(rand.NewSource(2)))
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatalf("norm %g", s.Norm())
	}
	// Ancilla must have nonzero |1> probability (solution component).
	var p1 float64
	for i, a := range s.Amp {
		if i&1 == 1 {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if p1 < 1e-6 {
		t.Fatalf("ancilla never rotates: p1=%g", p1)
	}
}

func TestHHLSerializesToQASM(t *testing.T) {
	c := HHL(HHLSize(7))
	qasm, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	back, err := circuit.ParseQASM(qasm)
	if err != nil {
		t.Fatal(err)
	}
	if back.NQubits != 7 || len(back.Gates) != len(c.Gates) {
		t.Fatalf("round trip %d gates vs %d", len(back.Gates), len(c.Gates))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ghz", "ham", "tfim"} {
		c, err := ByName(name, 6)
		if err != nil || c.NQubits != 6 {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if c, err := ByName("hhl", 5); err != nil || c.NQubits != 5 {
		t.Fatalf("hhl: %v", err)
	}
	if _, err := ByName("nope", 4); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestHHLSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even size accepted")
		}
	}()
	HHLSize(6)
}

func TestRingQAOAStructure(t *testing.T) {
	c := RingQAOA(10, 2)
	if c.NQubits != 10 {
		t.Fatalf("nqubits %d", c.NQubits)
	}
	if !c.IsBound() {
		t.Fatalf("ring-QAOA workload must be fully bound")
	}
	ops := c.CountOps()
	if ops["rzz"] != 20 || ops["rx"] != 20 || ops["h"] != 10 {
		t.Fatalf("ops %v", ops)
	}
	// The closing edge makes it non-nearest-neighbour by exactly one edge.
	if d := c.InteractionDistance(); d != 9 {
		t.Fatalf("interaction distance %d, want 9 (closing ring edge)", d)
	}
	if _, err := ByName("qaoa-ring", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("tfim-xl", 48); err != nil {
		t.Fatal(err)
	}
}
