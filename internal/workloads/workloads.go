// Package workloads generates the benchmark circuits of the paper's Table 2:
// SupermarQ-style GHZ state preparation and Hamiltonian simulation, the
// transverse-field Ising model (TFIM) evolution, and the HHL linear solver
// built from quantum phase estimation with controlled Trotterized evolution.
package workloads

import (
	"fmt"
	"math"

	"qfw/internal/circuit"
	"qfw/internal/pauli"
)

// GHZ returns the n-qubit GHZ preparation circuit (SupermarQ's GHZ
// benchmark): H on qubit 0 followed by a CNOT chain, then full measurement.
// Shallow but maximally correlated — the paper's long-range entanglement
// stress test.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = fmt.Sprintf("ghz-%d", n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	c.MeasureAll()
	return c
}

// HamSim returns the SupermarQ Hamiltonian-simulation benchmark: first-order
// Trotterized time evolution of the critical transverse-field Ising model
// (J = h = 1) for total time 1, one Trotter step per time unit by default.
func HamSim(n, steps int) *circuit.Circuit {
	if steps <= 0 {
		steps = 1
	}
	h := pauli.TFIM(n, 1.0, 1.0)
	c := h.TrotterCircuit(1.0, steps)
	c.Name = fmt.Sprintf("hamsim-%d", n)
	c.MeasureAll()
	return c
}

// TFIM returns the deeper transverse-field Ising evolution workload:
// J = 1, transverse field hx, evolution time t over the given Trotter
// steps. The nearest-neighbour structure keeps entanglement low, which is
// why MPS backends dominate it in the paper's Fig. 3c.
func TFIM(n, steps int, hx, t float64) *circuit.Circuit {
	if steps <= 0 {
		steps = 4
	}
	if t == 0 {
		t = 1.0
	}
	if hx == 0 {
		hx = 0.5
	}
	h := pauli.TFIM(n, 1.0, hx)
	c := h.TrotterCircuit(t, steps)
	c.Name = fmt.Sprintf("tfim-%d", n)
	c.MeasureAll()
	return c
}

// RingQAOA returns a bound depth-p QAOA ansatz over a ring cost Hamiltonian
// (uniform ZZ couplings around a cycle, fixed deterministic angles): H
// layer, then p alternating RZZ-ring and RX-mixer layers. All couplings but
// the closing edge (n-1, 0) are nearest-neighbour, so the workload
// exercises exactly one long-range interaction per layer — the MPS engine's
// swap-routing stress case at sizes the dense engines cannot reach.
func RingQAOA(n, p int) *circuit.Circuit {
	if p <= 0 {
		p = 2
	}
	c := circuit.New(n)
	c.Name = fmt.Sprintf("qaoa-ring-%d", n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for layer := 0; layer < p; layer++ {
		gamma := 0.35 + 0.15*float64(layer+1)
		beta := 0.85 - 0.15*float64(layer+1)
		for i := 0; i < n; i++ {
			c.RZZ(i, (i+1)%n, circuit.Bound(gamma))
		}
		for q := 0; q < n; q++ {
			c.RX(q, circuit.Bound(beta))
		}
	}
	c.MeasureAll()
	return c
}

// QFT appends the quantum Fourier transform on the given qubits (qs[0] is
// the most significant) to c.
func QFT(c *circuit.Circuit, qs []int) {
	n := len(qs)
	for i := 0; i < n; i++ {
		c.H(qs[i])
		for j := i + 1; j < n; j++ {
			c.CP(qs[j], qs[i], circuit.Bound(math.Pi/float64(int(1)<<uint(j-i))))
		}
	}
	for i := 0; i < n/2; i++ {
		c.SWAP(qs[i], qs[n-1-i])
	}
}

// InverseQFT appends the inverse QFT on the given qubits.
func InverseQFT(c *circuit.Circuit, qs []int) {
	n := len(qs)
	for i := n/2 - 1; i >= 0; i-- {
		c.SWAP(qs[i], qs[n-1-i])
	}
	for i := n - 1; i >= 0; i-- {
		for j := n - 1; j > i; j-- {
			c.CP(qs[j], qs[i], circuit.Bound(-math.Pi/float64(int(1)<<uint(j-i))))
		}
		c.H(qs[i])
	}
}

// HHLConfig parameterizes the linear-solver circuit.
type HHLConfig struct {
	NB     int     // system register qubits (matrix is 2^NB x 2^NB)
	NClock int     // clock register qubits for phase estimation
	T      float64 // evolution time scale in exp(iAt)
	Hx     float64 // transverse field of the Ising-type matrix A
}

// HHLSize maps the paper's total qubit counts {5,7,...,17} to a config:
// one ancilla, (k-1)/2 clock qubits and (k-1)/2 system qubits.
func HHLSize(total int) HHLConfig {
	if total < 3 || total%2 == 0 {
		panic(fmt.Sprintf("workloads: HHL size %d must be odd and >= 3", total))
	}
	half := (total - 1) / 2
	return HHLConfig{NB: half, NClock: total - 1 - half, T: 2 * math.Pi / float64(int(1)<<uint(total-1-half)), Hx: 0.25}
}

// HHL builds the Harrow-Hassidim-Lloyd linear-solver circuit: uniform state
// preparation of |b>, quantum phase estimation with controlled Trotterized
// evolution of an Ising-type A, eigenvalue-conditioned ancilla rotation,
// inverse phase estimation, and measurement. Qubit layout: [0] ancilla,
// [1..NClock] clock, [NClock+1 ..] system. Depth grows exponentially with
// the clock size through the controlled-U^{2^j} powers, reproducing the
// "deep coherent subroutine" behaviour of the paper's Fig. 3d.
func HHL(cfg HHLConfig) *circuit.Circuit {
	total := 1 + cfg.NClock + cfg.NB
	c := circuit.New(total)
	c.Name = fmt.Sprintf("hhl-%d", total)
	anc := 0
	clock := make([]int, cfg.NClock)
	for i := range clock {
		clock[i] = 1 + i // clock[0] is the most significant clock qubit
	}
	sys := make([]int, cfg.NB)
	for i := range sys {
		sys[i] = 1 + cfg.NClock + i
	}
	// |b> preparation: uniform superposition.
	for _, q := range sys {
		c.H(q)
	}
	// QPE forward: Hadamards then controlled evolutions.
	for _, q := range clock {
		c.H(q)
	}
	a := pauli.TFIM(cfg.NB, 1.0, cfg.Hx)
	for j := 0; j < cfg.NClock; j++ {
		// clock[NClock-1-j] controls U^{2^j}; least significant clock qubit
		// gets the smallest power.
		ctrl := clock[cfg.NClock-1-j]
		power := 1 << uint(j)
		appendControlledTrotter(c, a, sys, ctrl, cfg.T*float64(power), power)
	}
	InverseQFT(c, clock)
	// Eigenvalue-conditioned ancilla rotation (textbook approximation):
	// each clock qubit contributes a controlled Y-rotation scaled by its
	// binary weight.
	for j := 0; j < cfg.NClock; j++ {
		angle := math.Pi / float64(int(1)<<uint(cfg.NClock-1-j))
		c.CRY(clock[j], anc, circuit.Bound(angle))
	}
	// Uncompute: QPE reverse.
	QFT(c, clock)
	for j := cfg.NClock - 1; j >= 0; j-- {
		ctrl := clock[cfg.NClock-1-j]
		power := 1 << uint(j)
		appendControlledTrotter(c, a, sys, ctrl, -cfg.T*float64(power), power)
	}
	for _, q := range clock {
		c.H(q)
	}
	c.MeasureAll()
	return c
}

// appendControlledTrotter appends a controlled first-order Trotterization of
// exp(-i A t) onto the system qubits, controlled by ctrl, using `steps`
// Trotter steps. Weight-1 Z/X terms become CRZ/CRX; ZZ terms use the CX
// ladder with a controlled rotation in the middle.
func appendControlledTrotter(c *circuit.Circuit, a *pauli.Hamiltonian, sys []int, ctrl int, t float64, steps int) {
	if steps < 1 {
		steps = 1
	}
	dt := t / float64(steps)
	for s := 0; s < steps; s++ {
		for _, term := range a.Terms {
			theta := 2 * term.Coeff * dt
			sup := term.Support()
			switch len(sup) {
			case 1:
				q := sys[sup[0]]
				switch term.Ops[sup[0]] {
				case pauli.Z:
					c.CRZ(ctrl, q, circuit.Bound(theta))
				case pauli.X:
					c.CRX(ctrl, q, circuit.Bound(theta))
				case pauli.Y:
					c.CRY(ctrl, q, circuit.Bound(theta))
				}
			case 2:
				q0, q1 := sys[sup[0]], sys[sup[1]]
				// Controlled ZZ rotation: CX ladder + CRZ + CX.
				c.CX(q0, q1)
				c.CRZ(ctrl, q1, circuit.Bound(theta))
				c.CX(q0, q1)
			default:
				panic("workloads: controlled Trotter supports weight <= 2 terms")
			}
		}
	}
}

// ByName builds a Table-2 workload by its paper name.
func ByName(name string, n int) (*circuit.Circuit, error) {
	switch name {
	case "ghz":
		return GHZ(n), nil
	case "ham", "hamsim":
		return HamSim(n, 1), nil
	case "tfim", "tfim-xl":
		return TFIM(n, 4, 0.5, 1.0), nil
	case "qaoa-ring":
		return RingQAOA(n, 2), nil
	case "hhl":
		return HHL(HHLSize(n)), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q (want ghz|ham|tfim|tfim-xl|qaoa-ring|hhl)", name)
	}
}
