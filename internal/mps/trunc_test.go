package mps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/statevec"
)

// overlap2 returns |<a|b>|^2 for unit-normalized b (a is the exact state).
func overlap2(a, b []complex128) float64 {
	var dot complex128
	for i := range a {
		dot += cmplx.Conj(a[i]) * b[i]
	}
	return real(dot)*real(dot) + imag(dot)*imag(dot)
}

// TestTruncationFidelityBound sweeps MaxBond on an entangling random
// circuit and checks the discarded-weight accounting against the exact
// fidelity: the truncated state must satisfy F >= 1 - 2*TruncErr (the
// standard sequential-truncation bound), the multiplicative Fidelity()
// estimate must stay within the same bound band, and raising MaxBond must
// never lose fidelity beyond noise.
func TestTruncationFidelityBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 10
	c := randCircuit(rng, n, 80)
	exact, _ := statevec.RunFused(c, nil, 1, rand.New(rand.NewSource(1)))
	defer exact.Release()

	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	prevF := -1.0
	truncatedSomewhere := false
	for _, maxBond := range []int{2, 4, 8, 16, 32, 64} {
		m, err := cc.Execute(nil, Options{MaxBond: maxBond, Cutoff: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		f := overlap2(exact.Amp, m.Amplitudes())
		bound := 1 - 2*m.TruncErr
		if f < bound-1e-9 {
			t.Fatalf("MaxBond=%d: exact fidelity %g below the discarded-weight bound %g (TruncErr %g)",
				maxBond, f, bound, m.TruncErr)
		}
		if est := m.Fidelity(); est > 1+1e-12 || est < bound-1e-9 {
			t.Fatalf("MaxBond=%d: fidelity estimate %g outside [%g, 1]", maxBond, est, bound)
		}
		if m.TruncErr > 1e-9 {
			truncatedSomewhere = true
		}
		if f < prevF-0.02 {
			t.Fatalf("fidelity regressed from %g to %g when raising MaxBond to %d", prevF, f, maxBond)
		}
		prevF = f
		if bd := m.MaxBondDim(); bd > maxBond {
			t.Fatalf("bond dimension %d exceeds cap %d", bd, maxBond)
		}
		m.Release()
	}
	if !truncatedSomewhere {
		t.Fatalf("sweep never truncated; the circuit is not entangling enough to test the bound")
	}
	if prevF < 1-1e-6 {
		t.Fatalf("MaxBond=64 should be effectively exact at n=10, fidelity %g", prevF)
	}
}

// TestTruncationMonotoneError checks that the cumulative discarded weight
// shrinks as the bond cap grows — the knob users turn for accuracy.
func TestTruncationMonotoneError(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randCircuit(rng, 9, 70)
	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, maxBond := range []int{2, 8, 32} {
		m, err := cc.Execute(nil, Options{MaxBond: maxBond, Cutoff: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		if m.TruncErr > prev+1e-12 {
			t.Fatalf("TruncErr grew from %g to %g when raising MaxBond to %d", prev, m.TruncErr, maxBond)
		}
		prev = m.TruncErr
		m.Release()
	}
}

// TestCutoffControlsRank pins the Cutoff knob: a loose relative cutoff
// truncates harder (smaller bonds, larger reported discarded weight) than a
// tight one on the same circuit.
func TestCutoffControlsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := randCircuit(rng, 10, 200)
	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := cc.Execute(nil, Options{MaxBond: 64, Cutoff: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	defer tight.Release()
	loose, err := cc.Execute(nil, Options{MaxBond: 64, Cutoff: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer loose.Release()
	if loose.PeakBond() >= tight.PeakBond() {
		t.Fatalf("loose cutoff peak bond %d, tight %d — cutoff has no effect", loose.PeakBond(), tight.PeakBond())
	}
	if loose.TruncErr <= tight.TruncErr {
		t.Fatalf("loose cutoff discarded %g, tight %g — accounting inverted", loose.TruncErr, tight.TruncErr)
	}
}
