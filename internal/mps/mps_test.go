package mps

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qfw/internal/circuit"
	"qfw/internal/pauli"
	"qfw/internal/statevec"
)

func TestGHZBondDimension(t *testing.T) {
	c := circuit.New(8)
	c.H(0)
	for i := 0; i+1 < 8; i++ {
		c.CX(i, i+1)
	}
	m := New(8, 0, 0)
	if err := m.Run(c); err != nil {
		t.Fatal(err)
	}
	// GHZ has Schmidt rank 2 across every cut.
	for i, d := range m.BondDims() {
		if d > 2 {
			t.Fatalf("bond %d has dim %d, want <=2", i, d)
		}
	}
	if math.Abs(m.Norm()-1) > 1e-9 {
		t.Fatalf("norm %g", m.Norm())
	}
}

func TestGHZSampling(t *testing.T) {
	c := circuit.New(5)
	c.H(0)
	for i := 0; i+1 < 5; i++ {
		c.CX(i, i+1)
	}
	counts, trunc, err := Simulate(c, 2000, 0, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if trunc > 1e-9 {
		t.Fatalf("GHZ should not truncate, err %g", trunc)
	}
	for key := range counts {
		if key != "00000" && key != "11111" {
			t.Fatalf("GHZ sample %q", key)
		}
	}
	if counts["00000"] < 800 || counts["11111"] < 800 {
		t.Fatalf("GHZ counts skewed %v", counts)
	}
}

func randomCircuit(n, depth int, rng *rand.Rand) *circuit.Circuit {
	kinds := []circuit.Kind{circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindS,
		circuit.KindT, circuit.KindRX, circuit.KindRY, circuit.KindRZ, circuit.KindP,
		circuit.KindCX, circuit.KindCZ, circuit.KindCRZ, circuit.KindSWAP,
		circuit.KindRZZ, circuit.KindRXX, circuit.KindCCX}
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		k := kinds[rng.Intn(len(kinds))]
		if k.NumQubits() > n {
			continue
		}
		qs := rng.Perm(n)[:k.NumQubits()]
		g := circuit.Gate{Kind: k, Qubits: qs}
		for j := 0; j < k.NumParams(); j++ {
			g.Params = append(g.Params, circuit.Bound(rng.NormFloat64()*2))
		}
		c.Append(g)
	}
	return c
}

func TestQuickMatchesStatevector(t *testing.T) {
	// Property: with no truncation, the MPS amplitudes equal the dense state
	// vector up to global phase for arbitrary circuits (incl. long-range
	// gates routed through swaps and CCX via transpile).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		c := randomCircuit(n, 25, rng)
		m := New(n, 1024, 1e-14)
		if err := m.Run(c); err != nil {
			return false
		}
		got := m.Amplitudes()
		s, _ := statevec.RunCircuit(circuit.Transpile(c, MPSGateSet()), 1, rand.New(rand.NewSource(0)))
		var overlap complex128
		for i := range got {
			overlap += cmplx.Conj(s.Amp[i]) * got[i]
		}
		return math.Abs(cmplx.Abs(overlap)-1) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		c := randomCircuit(n, 20, rng)
		m := New(n, 1024, 1e-14)
		if err := m.Run(c); err != nil {
			return false
		}
		return math.Abs(m.Norm()-1) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationTracksError(t *testing.T) {
	// A deep random circuit with tiny max bond must record truncation error
	// but keep the state normalized.
	rng := rand.New(rand.NewSource(4))
	c := randomCircuit(8, 120, rng)
	m := New(8, 4, 1e-12)
	if err := m.Run(c); err != nil {
		t.Fatal(err)
	}
	if m.TruncErr <= 0 {
		t.Fatal("expected nonzero truncation error at bond 4")
	}
	if math.Abs(m.Norm()-1) > 1e-6 {
		t.Fatalf("truncated state should stay normalized, norm %g", m.Norm())
	}
}

func TestExpectationMatchesStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4
	c := randomCircuit(n, 25, rng)
	m := New(n, 1024, 1e-14)
	if err := m.Run(c); err != nil {
		t.Fatal(err)
	}
	s, _ := statevec.RunCircuit(circuit.Transpile(c, MPSGateSet()), 1, rand.New(rand.NewSource(0)))
	h := pauli.TFIM(n, 0.7, 0.9)
	got := m.ExpectationHamiltonian(h)
	want := s.ExpectationHamiltonian(h)
	if math.Abs(got-want) > 1e-7 {
		t.Fatalf("MPS expectation %g vs statevector %g", got, want)
	}
}

func TestLongRangeGateRouting(t *testing.T) {
	// CX(0, 4) on |+0000> must produce a Bell-like state between 0 and 4.
	c := circuit.New(5)
	c.H(0).CX(0, 4)
	m := New(5, 0, 0)
	if err := m.Run(c); err != nil {
		t.Fatal(err)
	}
	amps := m.Amplitudes()
	want := 1 / math.Sqrt2
	if cmplx.Abs(amps[0]-complex(want, 0)) > 1e-9 {
		t.Fatalf("amp[00000] = %v", amps[0])
	}
	if cmplx.Abs(amps[17]-complex(want, 0)) > 1e-9 { // bit0 + bit4 = 17
		t.Fatalf("amp[10001] = %v", amps[17])
	}
}

func TestReversedQubitOrderGate(t *testing.T) {
	// CX with control above target (qubits [3, 1]) must match statevector.
	c := circuit.New(4)
	c.H(3).CX(3, 1)
	m := New(4, 0, 0)
	if err := m.Run(c); err != nil {
		t.Fatal(err)
	}
	got := m.Amplitudes()
	s, _ := statevec.RunCircuit(c, 1, rand.New(rand.NewSource(0)))
	for i := range got {
		if cmplx.Abs(got[i]-s.Amp[i]) > 1e-9 {
			t.Fatalf("amp[%d]: %v vs %v", i, got[i], s.Amp[i])
		}
	}
}

func TestTFIMTrotterBondGrowth(t *testing.T) {
	// Nearest-neighbour TFIM evolution keeps bonds modest — the structural
	// reason Aer-MPS wins the paper's TFIM benchmark.
	h := pauli.TFIM(12, 1.0, 0.5)
	c := h.TrotterCircuit(0.5, 4)
	m := New(12, 0, 1e-10)
	if err := m.Run(c); err != nil {
		t.Fatal(err)
	}
	if bd := m.MaxBondDim(); bd > 32 {
		t.Fatalf("TFIM bond dimension blew up: %d", bd)
	}
	if math.Abs(m.Norm()-1) > 1e-6 {
		t.Fatalf("norm %g", m.Norm())
	}
}

func TestUnboundCircuitRejected(t *testing.T) {
	c := circuit.New(2)
	c.RX(0, circuit.Sym("a", 1))
	if _, _, err := Simulate(c, 10, 0, 0, rand.New(rand.NewSource(6))); err == nil {
		t.Fatal("expected unbound parameter error")
	}
}

func TestSampleDistribution(t *testing.T) {
	c := circuit.New(2)
	c.RY(0, circuit.Bound(2*math.Asin(math.Sqrt(0.3))))
	counts, _, err := Simulate(c, 20000, 0, 0, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(counts["01"]) / 20000
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("P(q0=1) = %g, want 0.3", frac)
	}
}
