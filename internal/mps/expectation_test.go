package mps

import (
	"math"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/pauli"
)

func TestSimulateWithExpectation(t *testing.T) {
	// <Z0> on RY(0.8)|0> ⊗ |0> is cos(0.8); <X1> on H|0> is 1.
	c := circuit.New(2)
	c.RY(0, circuit.Bound(0.8)).H(1)
	h := &pauli.Hamiltonian{NQubits: 2}
	h.Add(1.0, map[int]pauli.Op{0: pauli.Z})
	h.Add(0.5, map[int]pauli.Op{1: pauli.X})
	counts, truncErr, ev, err := SimulateWithExpectation(c, 64, 0, 0, rand.New(rand.NewSource(1)), h)
	if err != nil {
		t.Fatal(err)
	}
	if truncErr != 0 {
		t.Fatalf("trunc err %g", truncErr)
	}
	if len(counts) == 0 {
		t.Fatal("no counts")
	}
	want := math.Cos(0.8) + 0.5
	if ev == nil || math.Abs(*ev-want) > 1e-9 {
		t.Fatalf("<H> = %v, want %g", ev, want)
	}
}

func TestSimulateWithoutObservable(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CX(0, 1)
	_, _, ev, err := SimulateWithExpectation(c, 32, 0, 0, rand.New(rand.NewSource(2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev != nil {
		t.Fatal("expectation returned without request")
	}
}

func TestExpectationAfterSwapRouting(t *testing.T) {
	// Long-range entanglement through swap routing must preserve <Z0 Z4>=1
	// correlations of a GHZ-like pair.
	c := circuit.New(5)
	c.H(0).CX(0, 4)
	h := &pauli.Hamiltonian{NQubits: 5}
	h.Add(1.0, map[int]pauli.Op{0: pauli.Z, 4: pauli.Z})
	_, _, ev, err := SimulateWithExpectation(c, 16, 0, 0, rand.New(rand.NewSource(3)), h)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || math.Abs(*ev-1) > 1e-9 {
		t.Fatalf("<Z0Z4> = %v, want 1", ev)
	}
}
