// Package mps implements a matrix-product-state circuit simulator with a
// maintained orthogonality center, truncated SVD bond compression, swap
// routing for long-range gates, direct sampling, and Pauli expectation
// values. It backs both the Qiskit Aer "matrix_product_state" sub-backend
// and the TN-QVM "exatn-mps" backend in the framework.
//
// MPS excels on structured, low-entanglement circuits (the paper's TFIM
// result) and degrades when long-range gates force swap chains or when
// entanglement saturates the bond dimension.
package mps

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
	"qfw/internal/pauli"
)

// site is a rank-3 tensor [chiL, 2, chiR], row-major: (l*2+s)*chiR + r.
type site struct {
	chiL, chiR int
	data       []complex128
}

func newSite(chiL, chiR int) *site {
	return &site{chiL: chiL, chiR: chiR, data: make([]complex128, chiL*2*chiR)}
}

func (t *site) at(l, s, r int) complex128     { return t.data[(l*2+s)*t.chiR+r] }
func (t *site) set(l, s, r int, v complex128) { t.data[(l*2+s)*t.chiR+r] = v }

// MPS is a matrix product state on N qubits. MaxBond and Cutoff control
// truncation at two-qubit gate splits; TruncErr accumulates the discarded
// probability weight.
type MPS struct {
	N        int
	MaxBond  int
	Cutoff   float64
	TruncErr float64

	sites  []*site
	center int
}

// DefaultMaxBond matches the practical default of production MPS simulators.
const DefaultMaxBond = 64

// New returns |0...0> as an MPS.
func New(n, maxBond int, cutoff float64) *MPS {
	if n < 1 {
		panic("mps: need at least one qubit")
	}
	if maxBond <= 0 {
		maxBond = DefaultMaxBond
	}
	if cutoff <= 0 {
		cutoff = 1e-12
	}
	m := &MPS{N: n, MaxBond: maxBond, Cutoff: cutoff, sites: make([]*site, n)}
	for i := range m.sites {
		t := newSite(1, 1)
		t.set(0, 0, 0, 1)
		m.sites[i] = t
	}
	return m
}

// BondDims returns the current bond dimensions (n-1 values).
func (m *MPS) BondDims() []int {
	out := make([]int, m.N-1)
	for i := 0; i+1 < m.N; i++ {
		out[i] = m.sites[i].chiR
	}
	return out
}

// MaxBondDim returns the largest current bond dimension.
func (m *MPS) MaxBondDim() int {
	mx := 1
	for _, d := range m.BondDims() {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Apply1Q applies a 2x2 matrix to qubit q (gauge-preserving).
func (m *MPS) Apply1Q(g [2][2]complex128, q int) {
	t := m.sites[q]
	for l := 0; l < t.chiL; l++ {
		for r := 0; r < t.chiR; r++ {
			a0 := t.at(l, 0, r)
			a1 := t.at(l, 1, r)
			t.set(l, 0, r, g[0][0]*a0+g[0][1]*a1)
			t.set(l, 1, r, g[1][0]*a0+g[1][1]*a1)
		}
	}
}

// moveCenterTo sweeps the orthogonality center to site j using exact SVDs.
func (m *MPS) moveCenterTo(j int) {
	for m.center < j {
		m.shiftRight()
	}
	for m.center > j {
		m.shiftLeft()
	}
}

func (m *MPS) shiftRight() {
	c := m.center
	t := m.sites[c]
	mat := &linalg.Matrix{Rows: t.chiL * 2, Cols: t.chiR, Data: t.data}
	u, s, v := linalg.SVD(mat)
	k := rankOf(s, 1e-14)
	// A_c <- U (left-canonical).
	nt := newSite(t.chiL, k)
	for row := 0; row < t.chiL*2; row++ {
		for col := 0; col < k; col++ {
			nt.data[row*k+col] = u.At(row, col)
		}
	}
	m.sites[c] = nt
	// Absorb S V^H into the next site.
	next := m.sites[c+1]
	nn := newSite(k, next.chiR)
	for l := 0; l < k; l++ {
		for ss := 0; ss < 2; ss++ {
			for r := 0; r < next.chiR; r++ {
				var acc complex128
				for b := 0; b < next.chiL; b++ {
					// (S V^H)[l][b] = s[l] * conj(v[b][l])
					acc += complex(s[l], 0) * cmplx.Conj(v.At(b, l)) * next.at(b, ss, r)
				}
				nn.set(l, ss, r, acc)
			}
		}
	}
	m.sites[c+1] = nn
	m.center = c + 1
}

func (m *MPS) shiftLeft() {
	c := m.center
	t := m.sites[c]
	mat := &linalg.Matrix{Rows: t.chiL, Cols: 2 * t.chiR, Data: t.data}
	u, s, v := linalg.SVD(mat)
	k := rankOf(s, 1e-14)
	// A_c <- V^H (right-canonical), shape [k, 2, chiR].
	nt := newSite(k, t.chiR)
	for l := 0; l < k; l++ {
		for col := 0; col < 2*t.chiR; col++ {
			nt.data[l*2*t.chiR+col] = cmplx.Conj(v.At(col, l))
		}
	}
	m.sites[c] = nt
	// Absorb U S into the previous site's right bond.
	prev := m.sites[c-1]
	np := newSite(prev.chiL, k)
	for l := 0; l < prev.chiL; l++ {
		for ss := 0; ss < 2; ss++ {
			for r := 0; r < k; r++ {
				var acc complex128
				for b := 0; b < prev.chiR; b++ {
					acc += prev.at(l, ss, b) * u.At(b, r) * complex(s[r], 0)
				}
				np.set(l, ss, r, acc)
			}
		}
	}
	m.sites[c-1] = np
	m.center = c - 1
}

func rankOf(s []float64, tol float64) int {
	if len(s) == 0 {
		return 1
	}
	thresh := s[0] * tol
	k := 0
	for _, sv := range s {
		if sv > thresh && sv > 1e-300 {
			k++
		}
	}
	if k == 0 {
		k = 1
	}
	return k
}

// ApplyTwoAdjacent applies a 4x4 gate to sites (i, i+1). The matrix basis is
// |s_i s_{i+1}> with s_i the most significant bit. Truncation per MaxBond
// and Cutoff happens here.
func (m *MPS) ApplyTwoAdjacent(g *linalg.Matrix, i int) {
	if g.Rows != 4 || g.Cols != 4 {
		panic("mps: ApplyTwoAdjacent needs a 4x4 matrix")
	}
	m.moveCenterTo(i)
	a, b := m.sites[i], m.sites[i+1]
	chiL, chiR := a.chiL, b.chiR
	mid := a.chiR
	// theta[l, sa, sb, r]
	theta := make([]complex128, chiL*2*2*chiR)
	idx := func(l, sa, sb, r int) int { return ((l*2+sa)*2+sb)*chiR + r }
	for l := 0; l < chiL; l++ {
		for sa := 0; sa < 2; sa++ {
			for k := 0; k < mid; k++ {
				av := a.at(l, sa, k)
				if av == 0 {
					continue
				}
				for sb := 0; sb < 2; sb++ {
					for r := 0; r < chiR; r++ {
						theta[idx(l, sa, sb, r)] += av * b.at(k, sb, r)
					}
				}
			}
		}
	}
	// Apply the gate on the physical pair.
	out := make([]complex128, len(theta))
	for l := 0; l < chiL; l++ {
		for r := 0; r < chiR; r++ {
			for sa := 0; sa < 2; sa++ {
				for sb := 0; sb < 2; sb++ {
					var acc complex128
					row := sa*2 + sb
					for ta := 0; ta < 2; ta++ {
						for tb := 0; tb < 2; tb++ {
							gv := g.At(row, ta*2+tb)
							if gv == 0 {
								continue
							}
							acc += gv * theta[idx(l, ta, tb, r)]
						}
					}
					out[idx(l, sa, sb, r)] = acc
				}
			}
		}
	}
	// SVD split with truncation.
	mat := &linalg.Matrix{Rows: chiL * 2, Cols: 2 * chiR, Data: out}
	u, s, v := linalg.SVD(mat)
	k := rankOf(s, m.Cutoff)
	if k > m.MaxBond {
		k = m.MaxBond
	}
	var kept, total float64
	for i2, sv := range s {
		total += sv * sv
		if i2 < k {
			kept += sv * sv
		}
	}
	if total > 0 {
		m.TruncErr += 1 - kept/total
	}
	renorm := 1.0
	if kept > 0 {
		renorm = math.Sqrt(total / kept)
	}
	na := newSite(chiL, k)
	for row := 0; row < chiL*2; row++ {
		for col := 0; col < k; col++ {
			na.data[row*k+col] = u.At(row, col)
		}
	}
	nb := newSite(k, chiR)
	for l := 0; l < k; l++ {
		sv := complex(s[l]*renorm, 0)
		for col := 0; col < 2*chiR; col++ {
			nb.data[l*2*chiR+col] = sv * cmplx.Conj(v.At(col, l))
		}
	}
	m.sites[i] = na
	m.sites[i+1] = nb
	m.center = i + 1
}

// swapAdjacent swaps physical sites i and i+1.
func (m *MPS) swapAdjacent(i int) {
	m.ApplyTwoAdjacent(circuit.Matrix2Q(circuit.KindSWAP, 0), i)
}

// ApplyGate2 applies a 4x4 gate to arbitrary qubits (hi, lo basis |hi lo>),
// routing with swaps when the qubits are not adjacent.
func (m *MPS) ApplyGate2(g *linalg.Matrix, hi, lo int) {
	a, b := hi, lo
	flip := false
	if a > b {
		a, b = b, a
		flip = !flip // gate expects hi first; chain position of hi is now right
	}
	// Move qubit at position a right until adjacent to b.
	for pos := a; pos+1 < b; pos++ {
		m.swapAdjacent(pos)
	}
	left := b - 1
	gate := g
	if flip {
		gate = permute2Q(g)
	}
	m.ApplyTwoAdjacent(gate, left)
	for pos := b - 2; pos >= a; pos-- {
		m.swapAdjacent(pos)
	}
}

// permute2Q swaps the tensor factors of a 4x4 gate matrix: basis |ab> -> |ba>.
func permute2Q(g *linalg.Matrix) *linalg.Matrix {
	out := linalg.New(4, 4)
	perm := [4]int{0, 2, 1, 3}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out.Set(perm[r], perm[c], g.At(r, c))
		}
	}
	return out
}

// MPSGateSet lists the gates the engine executes natively.
func MPSGateSet() circuit.GateSet {
	set := circuit.BasicGateSet()
	set[circuit.KindSWAP] = true
	set[circuit.KindRZZ] = true
	set[circuit.KindRXX] = true
	return set
}

// ApplyGate dispatches a bound gate; >=3-qubit gates must be transpiled away
// before reaching the engine.
func (m *MPS) ApplyGate(g circuit.Gate) error {
	switch g.Kind {
	case circuit.KindBarrier, circuit.KindI, circuit.KindMeasure, circuit.KindReset:
		return nil // terminal measurement handled by sampling
	case circuit.KindUnitary:
		switch len(g.Qubits) {
		case 1:
			m.Apply1Q([2][2]complex128{
				{g.Matrix.At(0, 0), g.Matrix.At(0, 1)},
				{g.Matrix.At(1, 0), g.Matrix.At(1, 1)}}, g.Qubits[0])
			return nil
		case 2:
			m.ApplyGate2(g.Matrix, g.Qubits[0], g.Qubits[1])
			return nil
		}
		return fmt.Errorf("mps: dense unitary on %d qubits not supported; transpile first", len(g.Qubits))
	}
	var theta float64
	if g.Kind.NumParams() == 1 {
		theta = g.Angle()
	}
	switch g.Kind.NumQubits() {
	case 1:
		m.Apply1Q(circuit.Matrix1Q(g.Kind, theta), g.Qubits[0])
		return nil
	case 2:
		m.ApplyGate2(circuit.Matrix2Q(g.Kind, theta), g.Qubits[0], g.Qubits[1])
		return nil
	}
	return fmt.Errorf("mps: unsupported gate %s; transpile first", g.Kind.Name())
}

// Run applies a whole (bound) circuit, transpiling unsupported gates.
func (m *MPS) Run(c *circuit.Circuit) error {
	tc := circuit.Transpile(c, MPSGateSet())
	for _, g := range tc.Gates {
		if err := m.ApplyGate(g); err != nil {
			return err
		}
	}
	return nil
}

// Sample draws shots bitstrings from the MPS distribution. Keys follow the
// Qiskit convention (qubit 0 rightmost).
func (m *MPS) Sample(shots int, rng *rand.Rand) map[string]int {
	m.moveCenterTo(0)
	counts := make(map[string]int, 16)
	key := make([]byte, m.N)
	for shot := 0; shot < shots; shot++ {
		// Conditioned left vector over the running bond.
		left := []complex128{1}
		for i := 0; i < m.N; i++ {
			t := m.sites[i]
			v0 := condVec(left, t, 0)
			v1 := condVec(left, t, 1)
			p0 := norm2(v0)
			p1 := norm2(v1)
			total := p0 + p1
			s := 0
			if total <= 0 {
				s = 0
				v0 = []complex128{1}
			} else if rng.Float64()*total < p1 {
				s = 1
			}
			if s == 0 {
				left = normalize(v0)
				key[m.N-1-i] = '0'
			} else {
				left = normalize(v1)
				key[m.N-1-i] = '1'
			}
		}
		counts[string(key)]++
	}
	return counts
}

func condVec(left []complex128, t *site, s int) []complex128 {
	out := make([]complex128, t.chiR)
	for l := 0; l < t.chiL; l++ {
		lv := left[l]
		if lv == 0 {
			continue
		}
		for r := 0; r < t.chiR; r++ {
			out[r] += lv * t.at(l, s, r)
		}
	}
	return out
}

func norm2(v []complex128) float64 {
	var acc float64
	for _, x := range v {
		acc += real(x)*real(x) + imag(x)*imag(x)
	}
	return acc
}

func normalize(v []complex128) []complex128 {
	n := math.Sqrt(norm2(v))
	if n == 0 {
		return v
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Norm returns ||psi||, computed by a full transfer contraction (gauge-free).
func (m *MPS) Norm() float64 {
	e := m.transfer(nil)
	return math.Sqrt(math.Abs(real(e)))
}

// ExpectationPauliString returns <psi| P |psi>.
func (m *MPS) ExpectationPauliString(p pauli.String) float64 {
	ops := make([]*linalg.Matrix, m.N)
	for q, op := range p.Ops {
		switch op {
		case pauli.X:
			ops[q] = circuit.FromMat2(circuit.Matrix1Q(circuit.KindX, 0))
		case pauli.Y:
			ops[q] = circuit.FromMat2(circuit.Matrix1Q(circuit.KindY, 0))
		case pauli.Z:
			ops[q] = circuit.FromMat2(circuit.Matrix1Q(circuit.KindZ, 0))
		}
	}
	return p.Coeff * real(m.transfer(ops))
}

// ExpectationHamiltonian returns <psi| H |psi>.
func (m *MPS) ExpectationHamiltonian(h *pauli.Hamiltonian) float64 {
	var e float64
	for _, t := range h.Terms {
		e += m.ExpectationPauliString(t)
	}
	return e
}

// transfer contracts <psi| O |psi> where O is a product of per-site 1-qubit
// operators (nil entries mean identity; ops == nil means all identity).
func (m *MPS) transfer(ops []*linalg.Matrix) complex128 {
	// env[l'][l] accumulates the contraction of conj(A) (top) with A (bottom).
	env := []complex128{1} // 1x1
	rows := 1
	for i := 0; i < m.N; i++ {
		t := m.sites[i]
		var op *linalg.Matrix
		if ops != nil {
			op = ops[i]
		}
		nr := t.chiR
		nenv := make([]complex128, nr*nr)
		for lp := 0; lp < t.chiL; lp++ {
			for l := 0; l < t.chiL; l++ {
				ev := env[lp*rows+l]
				if ev == 0 {
					continue
				}
				for sp := 0; sp < 2; sp++ {
					for s := 0; s < 2; s++ {
						var ov complex128
						if op == nil {
							if sp != s {
								continue
							}
							ov = 1
						} else {
							ov = op.At(sp, s)
							if ov == 0 {
								continue
							}
						}
						for rp := 0; rp < nr; rp++ {
							av := cmplx.Conj(t.at(lp, sp, rp))
							if av == 0 {
								continue
							}
							coef := ev * ov * av
							for r := 0; r < nr; r++ {
								nenv[rp*nr+r] += coef * t.at(l, s, r)
							}
						}
					}
				}
			}
		}
		env = nenv
		rows = nr
	}
	return env[0]
}

// Amplitudes materializes the full 2^N state vector (small N only; used by
// tests to cross-check against the state-vector engine). Qubit 0 is the
// least-significant index bit, matching package statevec.
func (m *MPS) Amplitudes() []complex128 {
	if m.N > 20 {
		panic("mps: Amplitudes beyond 20 qubits")
	}
	dim := 1 << uint(m.N)
	out := make([]complex128, dim)
	for idx := 0; idx < dim; idx++ {
		vec := []complex128{1}
		for i := 0; i < m.N; i++ {
			s := (idx >> uint(i)) & 1
			t := m.sites[i]
			nv := make([]complex128, t.chiR)
			for l := 0; l < t.chiL; l++ {
				if vec[l] == 0 {
					continue
				}
				for r := 0; r < t.chiR; r++ {
					nv[r] += vec[l] * t.at(l, s, r)
				}
			}
			vec = nv
		}
		out[idx] = vec[0]
	}
	return out
}

// Simulate is the backend entry point: run the circuit and sample counts.
func Simulate(c *circuit.Circuit, shots, maxBond int, cutoff float64, rng *rand.Rand) (map[string]int, float64, error) {
	counts, truncErr, _, err := SimulateWithExpectation(c, shots, maxBond, cutoff, rng, nil)
	return counts, truncErr, err
}

// SimulateWithExpectation additionally evaluates <H> over the final state
// when a Hamiltonian is supplied (exact transfer-matrix contraction, no
// shot noise).
func SimulateWithExpectation(c *circuit.Circuit, shots, maxBond int, cutoff float64, rng *rand.Rand, h *pauli.Hamiltonian) (map[string]int, float64, *float64, error) {
	if !c.IsBound() {
		return nil, 0, nil, fmt.Errorf("mps: circuit has unbound parameters")
	}
	m := New(c.NQubits, maxBond, cutoff)
	if err := m.Run(c.StripMeasurements()); err != nil {
		return nil, 0, nil, err
	}
	if shots <= 0 {
		shots = 1024
	}
	var expVal *float64
	if h != nil {
		v := m.ExpectationHamiltonian(h)
		expVal = &v
	}
	return m.Sample(shots, rng), m.TruncErr, expVal, nil
}
