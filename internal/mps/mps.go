// Package mps implements a matrix-product-state circuit simulator with a
// maintained orthogonality center, truncated SVD bond compression, swap
// routing for long-range gates, direct sampling, and Pauli expectation
// values. It backs both the Qiskit Aer "matrix_product_state" sub-backend
// and the TN-QVM "exatn-mps" backend in the framework.
//
// The package exposes two execution paths:
//
//   - the per-gate path (Run/ApplyGate/Simulate): one MPS update per source
//     gate with there-and-back swap routing — the seed engine, kept as the
//     ablation baseline;
//   - the compiled path (CompileCircuit/Compiled.Execute/Compiled.RunBatch):
//     a fusion-aware schedule built once per circuit structure from
//     circuit.PlanFusion output, with a persistent-permutation swap route
//     planned once per spec — the production path behind the backends.
//
// MPS excels on structured, low-entanglement circuits (the paper's TFIM
// result) and degrades when long-range gates force swap chains or when
// entanglement saturates the bond dimension.
package mps

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"sync"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
	"qfw/internal/pauli"
	"qfw/internal/statevec"
)

// site is a rank-3 tensor [chiL, 2, chiR], row-major: (l*2+s)*chiR + r.
type site struct {
	chiL, chiR int
	data       []complex128
}

func newSite(chiL, chiR int) *site {
	return &site{chiL: chiL, chiR: chiR, data: getCBuf(chiL * 2 * chiR)}
}

func (t *site) at(l, s, r int) complex128     { return t.data[(l*2+s)*t.chiR+r] }
func (t *site) set(l, s, r int, v complex128) { t.data[(l*2+s)*t.chiR+r] = v }

// Scratch-buffer arena: every two-site update allocates a theta tensor and
// two replacement site tensors, and sampling allocates conditioned bond
// vectors per shot. Buffers recycle through power-of-two size-class pools
// (fetched from the class covering the request, returned to the class
// their capacity fills), so a tiny edge-site tensor can never claim and
// pin a peak-sized theta buffer, and no returned buffer is ever dropped
// for being the wrong size.
var cbufPools [40]sync.Pool

// getCBuf returns a zeroed buffer of length n.
func getCBuf(n int) []complex128 {
	if n == 0 {
		return nil
	}
	class := bits.Len(uint(n - 1)) // smallest c with 2^c >= n
	if class >= len(cbufPools) {
		return make([]complex128, n)
	}
	if v := cbufPools[class].Get(); v != nil {
		b := v.([]complex128)[:n] // any class-c buffer has cap >= 2^c >= n
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]complex128, n, 1<<uint(class))
}

func putCBuf(b []complex128) {
	c := cap(b)
	if c == 0 {
		return
	}
	class := bits.Len(uint(c)) - 1 // largest class with 2^class <= cap
	if class >= len(cbufPools) {
		return
	}
	cbufPools[class].Put(b[:c]) //nolint:staticcheck // slice header allocation is amortized
}

// parallelWork is the flop count above which a two-site kernel fans its
// bond rows across the shared statevec worker pool. Below it the chunk
// handoff costs more than the loop.
const parallelWork = 1 << 14

// MPS is a matrix product state on N qubits. MaxBond and Cutoff control
// truncation at two-qubit gate splits; TruncErr accumulates the discarded
// probability weight and fidelity its multiplicative complement.
type MPS struct {
	N        int
	MaxBond  int
	Cutoff   float64
	TruncErr float64

	// Workers bounds the kernel parallelism of two-site updates (0/1 means
	// serial). Batched executions run elements serially and parallelize
	// across elements instead.
	Workers int

	// QubitOfSite maps chain positions to logical qubits when the compiled
	// engine leaves the chain permuted after routing (nil means identity).
	// Sampling, amplitudes, and expectations consult it.
	QubitOfSite []int

	sites    []*site
	center   int
	fidelity float64
	peakBond int
}

// DefaultMaxBond matches the practical default of production MPS simulators.
const DefaultMaxBond = 64

// New returns |0...0> as an MPS.
func New(n, maxBond int, cutoff float64) *MPS {
	if n < 1 {
		panic("mps: need at least one qubit")
	}
	if maxBond <= 0 {
		maxBond = DefaultMaxBond
	}
	if cutoff <= 0 {
		cutoff = 1e-12
	}
	m := &MPS{N: n, MaxBond: maxBond, Cutoff: cutoff, sites: make([]*site, n), fidelity: 1, peakBond: 1}
	for i := range m.sites {
		t := &site{chiL: 1, chiR: 1, data: make([]complex128, 2)}
		t.set(0, 0, 0, 1)
		m.sites[i] = t
	}
	return m
}

// Release returns the state's tensors to the scratch arena. The MPS is
// unusable afterwards. Releasing is optional — unreleased tensors are
// garbage collected normally.
func (m *MPS) Release() {
	for i, t := range m.sites {
		if t != nil {
			putCBuf(t.data)
			m.sites[i] = nil
		}
	}
	m.sites = nil
}

// BondDims returns the current bond dimensions (n-1 values).
func (m *MPS) BondDims() []int {
	out := make([]int, m.N-1)
	for i := 0; i+1 < m.N; i++ {
		out[i] = m.sites[i].chiR
	}
	return out
}

// MaxBondDim returns the largest current bond dimension.
func (m *MPS) MaxBondDim() int {
	mx := 1
	for _, d := range m.BondDims() {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// PeakBond returns the largest bond dimension reached during execution
// (after truncation), the memory high-water mark of the run.
func (m *MPS) PeakBond() int { return m.peakBond }

// Fidelity returns the multiplicative truncation-fidelity estimate
// Π_i (kept_i / total_i) over every truncated split: the probability weight
// the state retained. 1 means no truncation occurred; the exact state
// fidelity satisfies F >= 1 - 2·TruncErr (see the MaxBond sweep test).
func (m *MPS) Fidelity() float64 { return m.fidelity }

// qubitForSite maps a chain position to its logical qubit.
func (m *MPS) qubitForSite(i int) int {
	if m.QubitOfSite == nil {
		return i
	}
	return m.QubitOfSite[i]
}

// Apply1Q applies a 2x2 matrix to the site at chain position q
// (gauge-preserving).
func (m *MPS) Apply1Q(g [2][2]complex128, q int) {
	t := m.sites[q]
	for l := 0; l < t.chiL; l++ {
		for r := 0; r < t.chiR; r++ {
			a0 := t.at(l, 0, r)
			a1 := t.at(l, 1, r)
			t.set(l, 0, r, g[0][0]*a0+g[0][1]*a1)
			t.set(l, 1, r, g[1][0]*a0+g[1][1]*a1)
		}
	}
}

// ApplyDiag1Q multiplies the site at chain position q by diag(d[0], d[1]) —
// a pure scale, no SVD, no gauge disturbance.
func (m *MPS) ApplyDiag1Q(d [2]complex128, q int) {
	t := m.sites[q]
	for l := 0; l < t.chiL; l++ {
		row0 := (l * 2) * t.chiR
		row1 := row0 + t.chiR
		for r := 0; r < t.chiR; r++ {
			t.data[row0+r] *= d[0]
			t.data[row1+r] *= d[1]
		}
	}
}

// moveCenterTo sweeps the orthogonality center to site j. Gauge moves need
// only an orthonormal factor, so they run on thin QR — one Householder
// triangularization instead of a Gram eigendecomposition per shift.
func (m *MPS) moveCenterTo(j int) {
	for m.center < j {
		m.shiftRight()
	}
	for m.center > j {
		m.shiftLeft()
	}
}

func (m *MPS) shiftRight() {
	c := m.center
	t := m.sites[c]
	mat := &linalg.Matrix{Rows: t.chiL * 2, Cols: t.chiR, Data: t.data}
	q, r := linalg.QR(mat)
	k := q.Cols // min(2*chiL, chiR): the reshape rank bound
	// A_c <- Q (left-canonical).
	nt := newSite(t.chiL, k)
	copy(nt.data, q.Data)
	// Absorb R (upper triangular) into the next site.
	next := m.sites[c+1]
	nn := newSite(k, next.chiR)
	for l := 0; l < k; l++ {
		for ss := 0; ss < 2; ss++ {
			for rr := 0; rr < next.chiR; rr++ {
				var acc complex128
				for b := l; b < next.chiL; b++ {
					acc += r.At(l, b) * next.at(b, ss, rr)
				}
				nn.set(l, ss, rr, acc)
			}
		}
	}
	putCBuf(t.data)
	putCBuf(next.data)
	m.sites[c] = nt
	m.sites[c+1] = nn
	m.center = c + 1
}

func (m *MPS) shiftLeft() {
	c := m.center
	t := m.sites[c]
	mat := &linalg.Matrix{Rows: t.chiL, Cols: 2 * t.chiR, Data: t.data}
	// mat = R† Q† from the QR of mat†: Q† has orthonormal rows
	// (right-canonical), R† is lower triangular and absorbs leftward.
	q, r := linalg.QR(mat.Dagger())
	k := q.Cols // min(2*chiR, chiL): the reshape rank bound
	nt := newSite(k, t.chiR)
	for l := 0; l < k; l++ {
		for col := 0; col < 2*t.chiR; col++ {
			nt.data[l*2*t.chiR+col] = cmplx.Conj(q.At(col, l))
		}
	}
	prev := m.sites[c-1]
	np := newSite(prev.chiL, k)
	for l := 0; l < prev.chiL; l++ {
		for ss := 0; ss < 2; ss++ {
			for rr := 0; rr < k; rr++ {
				var acc complex128
				// R†[b][rr] = conj(R[rr][b]), nonzero for b >= rr.
				for b := rr; b < prev.chiR; b++ {
					acc += prev.at(l, ss, b) * cmplx.Conj(r.At(rr, b))
				}
				np.set(l, ss, rr, acc)
			}
		}
	}
	putCBuf(t.data)
	putCBuf(prev.data)
	m.sites[c] = nt
	m.sites[c-1] = np
	m.center = c - 1
}

func rankOf(s []float64, tol float64) int {
	if len(s) == 0 {
		return 1
	}
	thresh := s[0] * tol
	k := 0
	for _, sv := range s {
		if sv > thresh && sv > 1e-300 {
			k++
		}
	}
	if k == 0 {
		k = 1
	}
	return k
}

// contractPair moves the center to i and contracts sites (i, i+1) into the
// theta tensor [chiL, 2, 2, chiR] (pooled buffer; caller owns it until
// splitPair consumes it).
func (m *MPS) contractPair(i int) (theta []complex128, chiL, chiR int) {
	m.moveCenterTo(i)
	a, b := m.sites[i], m.sites[i+1]
	chiL, chiR = a.chiL, b.chiR
	mid := a.chiR
	theta = getCBuf(chiL * 2 * 2 * chiR)
	body := func(start, end int) {
		for l := start; l < end; l++ {
			for sa := 0; sa < 2; sa++ {
				base := ((l*2+sa)*2)*chiR + 0
				for k := 0; k < mid; k++ {
					av := a.at(l, sa, k)
					if av == 0 {
						continue
					}
					for sb := 0; sb < 2; sb++ {
						brow := (k*2 + sb) * b.chiR
						trow := base + sb*chiR
						for r := 0; r < chiR; r++ {
							theta[trow+r] += av * b.data[brow+r]
						}
					}
				}
			}
		}
	}
	if m.Workers > 1 && chiL*mid*chiR >= parallelWork {
		statevec.ParallelFor(m.Workers, chiL, 2, body)
	} else {
		body(0, chiL)
	}
	return theta, chiL, chiR
}

// splitPair SVD-splits theta back into sites (i, i+1), truncating per
// MaxBond and Cutoff and tracking the discarded weight.
func (m *MPS) splitPair(theta []complex128, i, chiL, chiR int) {
	mat := &linalg.Matrix{Rows: chiL * 2, Cols: 2 * chiR, Data: theta}
	u, s, v := linalg.SVD(mat)
	k := rankOf(s, m.Cutoff)
	if k > m.MaxBond {
		k = m.MaxBond
	}
	var kept, total float64
	for i2, sv := range s {
		total += sv * sv
		if i2 < k {
			kept += sv * sv
		}
	}
	if total > 0 {
		m.TruncErr += 1 - kept/total
		m.fidelity *= kept / total
	}
	renorm := 1.0
	if kept > 0 {
		renorm = math.Sqrt(total / kept)
	}
	na := newSite(chiL, k)
	for row := 0; row < chiL*2; row++ {
		for col := 0; col < k; col++ {
			na.data[row*k+col] = u.At(row, col)
		}
	}
	nb := newSite(k, chiR)
	for l := 0; l < k; l++ {
		sv := complex(s[l]*renorm, 0)
		for col := 0; col < 2*chiR; col++ {
			nb.data[l*2*chiR+col] = sv * cmplx.Conj(v.At(col, l))
		}
	}
	putCBuf(m.sites[i].data)
	putCBuf(m.sites[i+1].data)
	putCBuf(theta)
	m.sites[i] = na
	m.sites[i+1] = nb
	m.center = i + 1
	if k > m.peakBond {
		m.peakBond = k
	}
}

// ApplyTwoAdjacent applies a 4x4 gate to sites (i, i+1). The matrix basis is
// |s_i s_{i+1}> with s_i the most significant bit. Truncation per MaxBond
// and Cutoff happens here.
func (m *MPS) ApplyTwoAdjacent(g *linalg.Matrix, i int) {
	if g.Rows != 4 || g.Cols != 4 {
		panic("mps: ApplyTwoAdjacent needs a 4x4 matrix")
	}
	theta, chiL, chiR := m.contractPair(i)
	var gm [4][4]complex128
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			gm[r][c] = g.At(r, c)
		}
	}
	idx := func(l, sa, sb, r int) int { return ((l*2+sa)*2+sb)*chiR + r }
	body := func(start, end int) {
		for l := start; l < end; l++ {
			for r := 0; r < chiR; r++ {
				t00 := theta[idx(l, 0, 0, r)]
				t01 := theta[idx(l, 0, 1, r)]
				t10 := theta[idx(l, 1, 0, r)]
				t11 := theta[idx(l, 1, 1, r)]
				theta[idx(l, 0, 0, r)] = gm[0][0]*t00 + gm[0][1]*t01 + gm[0][2]*t10 + gm[0][3]*t11
				theta[idx(l, 0, 1, r)] = gm[1][0]*t00 + gm[1][1]*t01 + gm[1][2]*t10 + gm[1][3]*t11
				theta[idx(l, 1, 0, r)] = gm[2][0]*t00 + gm[2][1]*t01 + gm[2][2]*t10 + gm[2][3]*t11
				theta[idx(l, 1, 1, r)] = gm[3][0]*t00 + gm[3][1]*t01 + gm[3][2]*t10 + gm[3][3]*t11
			}
		}
	}
	if m.Workers > 1 && chiL*chiR*16 >= parallelWork {
		statevec.ParallelFor(m.Workers, chiL, 2, body)
	} else {
		body(0, chiL)
	}
	m.splitPair(theta, i, chiL, chiR)
}

// ApplyDiagTwoAdjacent applies a diagonal two-qubit gate diag(d) to sites
// (i, i+1), with d indexed by (s_i << 1) | s_{i+1}. The gate application is
// an elementwise scale; the SVD split (a diagonal pair gate still grows the
// bond) is shared with the dense path.
func (m *MPS) ApplyDiagTwoAdjacent(d [4]complex128, i int) {
	theta, chiL, chiR := m.contractPair(i)
	for l := 0; l < chiL; l++ {
		for v := 0; v < 4; v++ {
			row := (l*4 + v) * chiR
			dv := d[v]
			for r := 0; r < chiR; r++ {
				theta[row+r] *= dv
			}
		}
	}
	m.splitPair(theta, i, chiL, chiR)
}

var swapMatrix = circuit.Matrix2Q(circuit.KindSWAP, 0)

// swapAdjacent swaps chain positions i and i+1.
func (m *MPS) swapAdjacent(i int) {
	m.ApplyTwoAdjacent(swapMatrix, i)
}

// ApplyGate2 applies a 4x4 gate to arbitrary qubits (hi, lo basis |hi lo>),
// routing with there-and-back swaps when the qubits are not adjacent (the
// per-gate path; the compiled path plans a persistent-permutation route
// instead).
func (m *MPS) ApplyGate2(g *linalg.Matrix, hi, lo int) {
	a, b := hi, lo
	flip := false
	if a > b {
		a, b = b, a
		flip = !flip // gate expects hi first; chain position of hi is now right
	}
	// Move qubit at position a right until adjacent to b.
	for pos := a; pos+1 < b; pos++ {
		m.swapAdjacent(pos)
	}
	left := b - 1
	gate := g
	if flip {
		gate = permute2Q(g)
	}
	m.ApplyTwoAdjacent(gate, left)
	for pos := b - 2; pos >= a; pos-- {
		m.swapAdjacent(pos)
	}
}

// permute2Q swaps the tensor factors of a 4x4 gate matrix: basis |ab> -> |ba>.
func permute2Q(g *linalg.Matrix) *linalg.Matrix {
	out := linalg.New(4, 4)
	perm := [4]int{0, 2, 1, 3}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			out.Set(perm[r], perm[c], g.At(r, c))
		}
	}
	return out
}

// MPSGateSet lists the gates the engine executes natively.
func MPSGateSet() circuit.GateSet {
	set := circuit.BasicGateSet()
	set[circuit.KindSWAP] = true
	set[circuit.KindRZZ] = true
	set[circuit.KindRXX] = true
	set[circuit.KindUnitary] = true
	return set
}

// ApplyGate dispatches a bound gate; >=3-qubit gates must be transpiled away
// before reaching the engine.
func (m *MPS) ApplyGate(g circuit.Gate) error {
	switch g.Kind {
	case circuit.KindBarrier, circuit.KindI, circuit.KindMeasure, circuit.KindReset:
		return nil // terminal measurement handled by sampling
	case circuit.KindUnitary:
		switch len(g.Qubits) {
		case 1:
			m.Apply1Q([2][2]complex128{
				{g.Matrix.At(0, 0), g.Matrix.At(0, 1)},
				{g.Matrix.At(1, 0), g.Matrix.At(1, 1)}}, g.Qubits[0])
			return nil
		case 2:
			m.ApplyGate2(g.Matrix, g.Qubits[0], g.Qubits[1])
			return nil
		}
		return fmt.Errorf("mps: dense unitary on %d qubits not supported; transpile first", len(g.Qubits))
	}
	var theta float64
	if g.Kind.NumParams() == 1 {
		theta = g.Angle()
	}
	switch g.Kind.NumQubits() {
	case 1:
		m.Apply1Q(circuit.Matrix1Q(g.Kind, theta), g.Qubits[0])
		return nil
	case 2:
		m.ApplyGate2(circuit.Matrix2Q(g.Kind, theta), g.Qubits[0], g.Qubits[1])
		return nil
	}
	return fmt.Errorf("mps: unsupported gate %s; transpile first", g.Kind.Name())
}

// Run applies a whole (bound) circuit gate by gate, transpiling unsupported
// gates — the seed engine's path, kept as the ablation baseline for the
// compiled schedule.
func (m *MPS) Run(c *circuit.Circuit) error {
	tc := circuit.Transpile(c, MPSGateSet())
	for _, g := range tc.Gates {
		if err := m.ApplyGate(g); err != nil {
			return err
		}
	}
	return nil
}

// Sample draws shots bitstrings from the MPS distribution. Keys follow the
// Qiskit convention (qubit 0 rightmost); a routed chain permutation is
// unwound in the keys, never in the tensors.
func (m *MPS) Sample(shots int, rng *rand.Rand) map[string]int {
	m.moveCenterTo(0)
	maxChi := 1
	for _, t := range m.sites {
		if t.chiR > maxChi {
			maxChi = t.chiR
		}
	}
	left := getCBuf(maxChi)
	v0 := getCBuf(maxChi)
	v1 := getCBuf(maxChi)
	defer func() { putCBuf(left); putCBuf(v0); putCBuf(v1) }()
	counts := make(map[string]int, 16)
	key := make([]byte, m.N)
	for shot := 0; shot < shots; shot++ {
		// Conditioned left vector over the running bond.
		left[0] = 1
		width := 1
		for i := 0; i < m.N; i++ {
			t := m.sites[i]
			condVec(left[:width], t, 0, v0[:t.chiR])
			condVec(left[:width], t, 1, v1[:t.chiR])
			p0 := norm2(v0[:t.chiR])
			p1 := norm2(v1[:t.chiR])
			total := p0 + p1
			s := 0
			src := v0
			if total <= 0 {
				v0[0] = 1
				for j := 1; j < t.chiR; j++ {
					v0[j] = 0
				}
			} else if rng.Float64()*total < p1 {
				s = 1
				src = v1
			}
			normalize(src[:t.chiR])
			copy(left[:t.chiR], src[:t.chiR])
			width = t.chiR
			if s == 0 {
				key[m.N-1-m.qubitForSite(i)] = '0'
			} else {
				key[m.N-1-m.qubitForSite(i)] = '1'
			}
		}
		counts[string(key)]++
	}
	return counts
}

// condVec contracts the running left vector with physical index s of site t
// into dst (len t.chiR).
func condVec(left []complex128, t *site, s int, dst []complex128) {
	for r := range dst {
		dst[r] = 0
	}
	for l := 0; l < t.chiL; l++ {
		lv := left[l]
		if lv == 0 {
			continue
		}
		row := (l*2 + s) * t.chiR
		for r := 0; r < t.chiR; r++ {
			dst[r] += lv * t.data[row+r]
		}
	}
}

func norm2(v []complex128) float64 {
	var acc float64
	for _, x := range v {
		acc += real(x)*real(x) + imag(x)*imag(x)
	}
	return acc
}

func normalize(v []complex128) []complex128 {
	n := math.Sqrt(norm2(v))
	if n == 0 {
		return v
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Norm returns ||psi||, computed by a full transfer contraction (gauge-free).
func (m *MPS) Norm() float64 {
	e := m.transfer(nil)
	return math.Sqrt(math.Abs(real(e)))
}

// ExpectationPauliString returns <psi| P |psi>.
func (m *MPS) ExpectationPauliString(p pauli.String) float64 {
	ops := make([]*linalg.Matrix, m.N)
	for q, op := range p.Ops {
		var mat *linalg.Matrix
		switch op {
		case pauli.X:
			mat = circuit.FromMat2(circuit.Matrix1Q(circuit.KindX, 0))
		case pauli.Y:
			mat = circuit.FromMat2(circuit.Matrix1Q(circuit.KindY, 0))
		case pauli.Z:
			mat = circuit.FromMat2(circuit.Matrix1Q(circuit.KindZ, 0))
		default:
			continue
		}
		// Place the operator on the chain position currently holding qubit q.
		site := q
		if m.QubitOfSite != nil {
			for i, qq := range m.QubitOfSite {
				if qq == q {
					site = i
					break
				}
			}
		}
		ops[site] = mat
	}
	return p.Coeff * real(m.transfer(ops))
}

// ExpectationHamiltonian returns <psi| H |psi>.
func (m *MPS) ExpectationHamiltonian(h *pauli.Hamiltonian) float64 {
	var e float64
	for _, t := range h.Terms {
		e += m.ExpectationPauliString(t)
	}
	return e
}

// transfer contracts <psi| O |psi> where O is a product of per-site 1-qubit
// operators (nil entries mean identity; ops == nil means all identity).
// Operators are indexed by chain position, not logical qubit.
func (m *MPS) transfer(ops []*linalg.Matrix) complex128 {
	// env[l'][l] accumulates the contraction of conj(A) (top) with A (bottom).
	env := []complex128{1} // 1x1
	rows := 1
	for i := 0; i < m.N; i++ {
		t := m.sites[i]
		var op *linalg.Matrix
		if ops != nil {
			op = ops[i]
		}
		nr := t.chiR
		nenv := make([]complex128, nr*nr)
		for lp := 0; lp < t.chiL; lp++ {
			for l := 0; l < t.chiL; l++ {
				ev := env[lp*rows+l]
				if ev == 0 {
					continue
				}
				for sp := 0; sp < 2; sp++ {
					for s := 0; s < 2; s++ {
						var ov complex128
						if op == nil {
							if sp != s {
								continue
							}
							ov = 1
						} else {
							ov = op.At(sp, s)
							if ov == 0 {
								continue
							}
						}
						for rp := 0; rp < nr; rp++ {
							av := cmplx.Conj(t.at(lp, sp, rp))
							if av == 0 {
								continue
							}
							coef := ev * ov * av
							for r := 0; r < nr; r++ {
								nenv[rp*nr+r] += coef * t.at(l, s, r)
							}
						}
					}
				}
			}
		}
		env = nenv
		rows = nr
	}
	return env[0]
}

// Amplitudes materializes the full 2^N state vector (small N only; used by
// tests to cross-check against the state-vector engine). Qubit 0 is the
// least-significant index bit, matching package statevec; a routed chain
// permutation is resolved per index.
func (m *MPS) Amplitudes() []complex128 {
	if m.N > 20 {
		panic("mps: Amplitudes beyond 20 qubits")
	}
	dim := 1 << uint(m.N)
	out := make([]complex128, dim)
	for idx := 0; idx < dim; idx++ {
		vec := []complex128{1}
		for i := 0; i < m.N; i++ {
			s := (idx >> uint(m.qubitForSite(i))) & 1
			t := m.sites[i]
			nv := make([]complex128, t.chiR)
			for l := 0; l < t.chiL; l++ {
				if vec[l] == 0 {
					continue
				}
				for r := 0; r < t.chiR; r++ {
					nv[r] += vec[l] * t.at(l, s, r)
				}
			}
			vec = nv
		}
		out[idx] = vec[0]
	}
	return out
}

// Simulate is the per-gate backend entry point: run the circuit and sample
// counts (the seed path; production backends use the compiled schedule).
func Simulate(c *circuit.Circuit, shots, maxBond int, cutoff float64, rng *rand.Rand) (map[string]int, float64, error) {
	counts, truncErr, _, err := SimulateWithExpectation(c, shots, maxBond, cutoff, rng, nil)
	return counts, truncErr, err
}

// SimulateWithExpectation additionally evaluates <H> over the final state
// when a Hamiltonian is supplied (exact transfer-matrix contraction, no
// shot noise).
func SimulateWithExpectation(c *circuit.Circuit, shots, maxBond int, cutoff float64, rng *rand.Rand, h *pauli.Hamiltonian) (map[string]int, float64, *float64, error) {
	if !c.IsBound() {
		return nil, 0, nil, fmt.Errorf("mps: circuit has unbound parameters")
	}
	m := New(c.NQubits, maxBond, cutoff)
	if err := m.Run(c.StripMeasurements()); err != nil {
		return nil, 0, nil, err
	}
	if shots <= 0 {
		shots = 1024
	}
	var expVal *float64
	if h != nil {
		v := m.ExpectationHamiltonian(h)
		expVal = &v
	}
	counts := m.Sample(shots, rng)
	truncErr := m.TruncErr
	m.Release()
	return counts, truncErr, expVal, nil
}
