package mps

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"reflect"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/linalg"
	"qfw/internal/statevec"
)

// randCircuit builds a seeded random circuit over the full shared gate set,
// long-range two-qubit gates included (they exercise the routed schedule).
func randCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	oneQ := []circuit.Kind{
		circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindZ,
		circuit.KindS, circuit.KindSdg, circuit.KindT, circuit.KindTdg,
		circuit.KindSX, circuit.KindRX, circuit.KindRY, circuit.KindRZ, circuit.KindP,
	}
	twoQ := []circuit.Kind{
		circuit.KindCX, circuit.KindCY, circuit.KindCZ,
		circuit.KindCRX, circuit.KindCRY, circuit.KindCRZ, circuit.KindCP,
		circuit.KindSWAP, circuit.KindRZZ, circuit.KindRXX,
	}
	for i := 0; i < gates; i++ {
		if n >= 2 && rng.Float64() < 0.45 {
			k := twoQ[rng.Intn(len(twoQ))]
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			g := circuit.Gate{Kind: k, Qubits: []int{a, b}}
			if k.NumParams() == 1 {
				g.Params = []circuit.Param{circuit.Bound(2 * math.Pi * rng.Float64())}
			}
			c.Append(g)
		} else {
			k := oneQ[rng.Intn(len(oneQ))]
			g := circuit.Gate{Kind: k, Qubits: []int{rng.Intn(n)}}
			if k.NumParams() == 1 {
				g.Params = []circuit.Param{circuit.Bound(2 * math.Pi * rng.Float64())}
			}
			c.Append(g)
		}
	}
	return c
}

func maxAmpDiff(a, b []complex128) float64 {
	mx := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestCompiledMatchesStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		c := randCircuit(rng, n, 8+rng.Intn(30))
		cc, err := CompileCircuit(c)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		m, err := cc.Execute(nil, Options{Cutoff: 1e-14})
		if err != nil {
			t.Fatalf("trial %d: execute: %v", trial, err)
		}
		s, _ := statevec.RunFused(c, nil, 1, rand.New(rand.NewSource(1)))
		if d := maxAmpDiff(m.Amplitudes(), s.Amp); d > 1e-9 {
			t.Fatalf("trial %d (n=%d): compiled MPS diverges from statevector by %g\n%s", trial, n, d, c)
		}
		s.Release()
		m.Release()
	}
}

func TestCompiledMatchesPerGateEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(6)
		c := randCircuit(rng, n, 25)
		cc, err := CompileCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cc.Execute(nil, Options{Cutoff: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		pg := New(n, 0, 1e-14)
		if err := pg.Run(c); err != nil {
			t.Fatal(err)
		}
		if d := maxAmpDiff(m.Amplitudes(), pg.Amplitudes()); d > 1e-9 {
			t.Fatalf("trial %d: compiled and per-gate engines diverge by %g", trial, d)
		}
		m.Release()
		pg.Release()
	}
}

// TestRingRoutingPersistentPermutation pins the routed-SWAP schedule win:
// the ring's closing edge is routed once and the permutation persists, so
// the schedule plans strictly fewer swaps than the per-gate path's
// there-and-back chains (2*(n-2) per closing-edge occurrence), while the
// final state still matches the dense engine.
func TestRingRoutingPersistentPermutation(t *testing.T) {
	const n, layers = 8, 3
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for l := 0; l < layers; l++ {
		for i := 0; i < n; i++ {
			c.RZZ(i, (i+1)%n, circuit.Bound(0.3+0.1*float64(l)))
		}
		for q := 0; q < n; q++ {
			c.RX(q, circuit.Bound(0.5))
		}
	}
	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	perGateSwaps := layers * 2 * (n - 2)
	if cc.Swaps >= perGateSwaps {
		t.Fatalf("compiled schedule plans %d swaps, want fewer than the per-gate path's %d", cc.Swaps, perGateSwaps)
	}
	if cc.Swaps == 0 {
		t.Fatalf("ring circuit should need routing swaps")
	}
	m, err := cc.Execute(nil, Options{Cutoff: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if m.QubitOfSite == nil {
		t.Fatalf("routed execution should leave a chain permutation")
	}
	s, _ := statevec.RunFused(c, nil, 1, rand.New(rand.NewSource(1)))
	defer s.Release()
	if d := maxAmpDiff(m.Amplitudes(), s.Amp); d > 1e-9 {
		t.Fatalf("routed execution diverges from statevector by %g", d)
	}
}

// TestDiagonalLayerFastPath pins that pure diagonal layers compile to
// diagonal steps (single-qubit factors are SVD-free scales) rather than
// dense two-qubit updates.
func TestDiagonalLayerFastPath(t *testing.T) {
	c := circuit.New(6)
	for q := 0; q < 6; q++ {
		c.RZ(q, circuit.Bound(0.3))
	}
	for i := 0; i+1 < 6; i++ {
		c.RZZ(i, i+1, circuit.Bound(0.7))
	}
	c.CZ(0, 1)
	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	var dense2, diag1, diag2 int
	for _, st := range cc.steps {
		switch st.kind {
		case stepDense2:
			dense2++
		case stepDiag1:
			diag1++
		case stepDiag2:
			diag2++
		}
	}
	if dense2 != 0 {
		t.Fatalf("pure diagonal circuit compiled %d dense two-qubit steps", dense2)
	}
	if diag1 != 6 {
		t.Fatalf("diag1 steps = %d, want 6 (one per RZ qubit)", diag1)
	}
	// RZZ(0,1) and CZ(0,1) coalesce into one pair factor.
	if diag2 != 5 {
		t.Fatalf("diag2 steps = %d, want 5 coalesced pairs", diag2)
	}
	if cc.Swaps != 0 {
		t.Fatalf("nearest-neighbour diagonal run should not route, got %d swaps", cc.Swaps)
	}
}

func TestCompiledParametricBatch(t *testing.T) {
	const n = 6
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for i := 0; i+1 < n; i++ {
		c.RZZ(i, i+1, circuit.Sym("gamma", 2))
	}
	for q := 0; q < n; q++ {
		c.RX(q, circuit.Sym("beta", 2))
	}
	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.Params(); len(got) != 2 {
		t.Fatalf("params = %v", got)
	}
	const K = 6
	bindings := make([]map[string]float64, K)
	for i := range bindings {
		bindings[i] = map[string]float64{"gamma": 0.1 + 0.2*float64(i), "beta": 0.9 - 0.1*float64(i)}
	}
	states, err := cc.RunBatch(bindings, Options{Cutoff: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range states {
		bound := c.Bind(bindings[i])
		s, _ := statevec.RunFused(bound, nil, 1, rand.New(rand.NewSource(1)))
		if d := maxAmpDiff(m.Amplitudes(), s.Amp); d > 1e-9 {
			t.Fatalf("batch element %d diverges from statevector by %g", i, d)
		}
		s.Release()
		m.Release()
	}

	// Partial bindings must fail loudly, not execute half-bound.
	if _, err := cc.Execute(map[string]float64{"gamma": 0.3}, Options{}); err == nil {
		t.Fatalf("partial binding should fail")
	}
}

// TestSampleDeterminism pins the seeded sampling contract: identical seeds
// give identical histograms across repeated runs and across batch elements
// (satellite: seeded Sample determinism).
func TestSampleDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randCircuit(rng, 7, 30)
	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	sample := func() map[string]int {
		m, err := cc.Execute(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Release()
		return m.Sample(512, rand.New(rand.NewSource(99)))
	}
	first := sample()
	for i := 0; i < 3; i++ {
		if got := sample(); !reflect.DeepEqual(got, first) {
			t.Fatalf("repeated run %d sampled differently:\n%v\n%v", i, got, first)
		}
	}
	// Batch elements with identical bindings and seeds agree with the
	// standalone run and with each other.
	states, err := cc.RunBatch(make([]map[string]float64, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range states {
		if got := m.Sample(512, rand.New(rand.NewSource(99))); !reflect.DeepEqual(got, first) {
			t.Fatalf("batch element %d sampled differently", i)
		}
		m.Release()
	}
}

func TestCompiledRejectsWideUnitaries(t *testing.T) {
	c := circuit.New(3)
	c.Unitary(linalg.Identity(8), 0, 1, 2)
	if _, err := CompileCircuit(c); err == nil {
		t.Fatalf("3-qubit dense unitary should be rejected with a transpile hint")
	}
}

func TestLargeNTFIMFidelity(t *testing.T) {
	// The acceptance-scale workload: a 64-qubit TFIM evolution under a
	// bounded bond dimension keeps fidelity >= 0.999. Kept in tier-1 — the
	// whole run is a few hundred milliseconds because the chain stays in
	// the low-entanglement regime MPS is built for.
	c := tfimChain(64, 4, 0.5, 1.0)
	cc, err := CompileCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cc.Execute(nil, Options{MaxBond: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if f := m.Fidelity(); f < 0.999 {
		t.Fatalf("TFIM-64 fidelity %g under MaxBond=32, want >= 0.999", f)
	}
	if n := m.Norm(); math.Abs(n-1) > 1e-6 {
		t.Fatalf("truncated state should stay normalized, norm %g", n)
	}
	counts := m.Sample(64, rand.New(rand.NewSource(3)))
	total := 0
	for key, cnt := range counts {
		if len(key) != 64 {
			t.Fatalf("key length %d", len(key))
		}
		total += cnt
	}
	if total != 64 {
		t.Fatalf("sampled %d shots, want 64", total)
	}
}

// tfimChain builds the same first-order Trotter TFIM evolution the
// workloads package uses, inline to keep the mps package dependency-light.
func tfimChain(n, steps int, hx, tt float64) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = fmt.Sprintf("tfim-%d", n)
	dt := tt / float64(steps)
	for s := 0; s < steps; s++ {
		for i := 0; i+1 < n; i++ {
			c.RZZ(i, i+1, circuit.Bound(2*dt))
		}
		for q := 0; q < n; q++ {
			c.RX(q, circuit.Bound(2*hx*dt))
		}
	}
	return c
}
