package mps

import (
	"fmt"
	"runtime"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/linalg"
)

// The compiled MPS path builds a binding-independent execution schedule
// once per circuit structure and replays it per parameter binding:
//
//   - the circuit is transpiled to the MPS gate set and fusion-planned with
//     circuit.PlanFusion, so runs of single-qubit gates and <=2q blocks
//     apply as single dense updates and whole diagonal layers (the
//     TFIM/QAOA cost sweeps) collapse into coalesced factor tables —
//     single-qubit diagonal factors cost a pure scale, no SVD at all;
//   - non-adjacent two-qubit operations are routed with a
//     persistent-permutation swap schedule planned once per spec: a moved
//     qubit stays where routing left it and later gates (and sampling)
//     consult the permutation, eliminating the per-gate swap-back chains of
//     the seed engine — a ring-QAOA closing edge costs its swap chain once
//     per circuit instead of twice per layer;
//   - per binding, only the numeric payloads (2x2/4x4 blocks and diagonal
//     factor tables) are recomputed; the step stream, routing, and site
//     layout are shared by every element of a batch.

// Options configure one compiled execution.
type Options struct {
	MaxBond int     // bond-dimension cap (0 = DefaultMaxBond)
	Cutoff  float64 // relative singular-value cutoff (0 = 1e-12)
	Workers int     // kernel parallelism within two-site updates
}

type stepKind uint8

const (
	stepDense1 stepKind = iota // dense 2x2 at Site
	stepDense2                 // dense 4x4 at (Site, Site+1)
	stepSwap                   // routing swap at (Site, Site+1)
	stepDiag1                  // diagonal scale at Site
	stepDiag2                  // diagonal pair gate at (Site, Site+1)
)

// step is one executable schedule entry. Two-site payloads are stored with
// the higher-indexed logical qubit as the most significant bit; flip marks
// steps whose left chain position holds the lower qubit instead.
type step struct {
	kind stepKind
	site int
	slot int
	flip bool
}

// Compiled is the reusable MPS execution schedule of one circuit structure.
// It is immutable after CompileCircuit and safe for concurrent Execute
// calls (the batch path runs elements in parallel against one schedule).
type Compiled struct {
	// N is the qubit count; Swaps the number of routed swaps the schedule
	// contains (the per-gate path would pay roughly twice per long-range
	// gate occurrence).
	N     int
	Swaps int

	base    *circuit.Circuit // transpiled body; may carry symbolic params
	params  []string
	segs    []circuit.SegmentInfo
	steps   []step
	qubitAt []int // final chain position -> logical qubit
	n1, n2  int   // dense payload slot counts
	d1, d2  int   // diagonal payload slot counts
}

// CompileCircuit builds the execution schedule of a circuit (bound or
// parametric). Measurements are stripped — sampling happens on the final
// state — and unsupported gates are transpiled to the MPS gate set once,
// here, instead of once per binding.
func CompileCircuit(c *circuit.Circuit) (*Compiled, error) {
	tc := circuit.Transpile(c.StripMeasurements(), MPSGateSet())
	plan := circuit.PlanFusion(tc)
	segs := plan.Segments(tc)
	cc := &Compiled{N: c.NQubits, base: tc, params: tc.ParamNames(), segs: segs}

	siteOf := make([]int, cc.N) // logical qubit -> chain position
	cc.qubitAt = make([]int, cc.N)
	for q := range siteOf {
		siteOf[q] = q
		cc.qubitAt[q] = q
	}
	center := 0 // planned orthogonality-center position after each 2q step
	// ensureAdjacent routes qubits x and y next to each other by swapping
	// the lower chain position upward, returns the left position, and
	// leaves the permutation wherever routing ended.
	ensureAdjacent := func(x, y int) int {
		lo, hi := siteOf[x], siteOf[y]
		if lo > hi {
			lo, hi = hi, lo
		}
		for pos := lo; pos+1 < hi; pos++ {
			cc.steps = append(cc.steps, step{kind: stepSwap, site: pos})
			cc.Swaps++
			a, b := cc.qubitAt[pos], cc.qubitAt[pos+1]
			cc.qubitAt[pos], cc.qubitAt[pos+1] = b, a
			siteOf[a], siteOf[b] = pos+1, pos
		}
		center = hi // each two-site update leaves the center on its right site
		return hi - 1
	}

	for _, seg := range segs {
		switch seg.Kind {
		case circuit.SegDense:
			switch len(seg.Qubits) {
			case 1:
				cc.steps = append(cc.steps, step{kind: stepDense1, site: siteOf[seg.Qubits[0]], slot: cc.n1})
				cc.n1++
			case 2:
				q0, q1 := seg.Qubits[0], seg.Qubits[1] // ascending
				left := ensureAdjacent(q0, q1)
				cc.steps = append(cc.steps, step{
					kind: stepDense2, site: left, slot: cc.n2,
					flip: cc.qubitAt[left] != q1,
				})
				cc.n2++
			default:
				return nil, fmt.Errorf("mps: dense fusion block on %d qubits not executable; transpile first", len(seg.Qubits))
			}
		case circuit.SegDiag:
			singles, pairs := circuit.DiagLayout(tc, seg.Gates)
			for _, q := range singles {
				cc.steps = append(cc.steps, step{kind: stepDiag1, site: siteOf[q], slot: cc.d1})
				cc.d1++
			}
			// Diagonal factors all commute, so the scheduler may apply the
			// run's pairs in any order: route greedily, weighing the swap
			// chain a pair needs (each swap is an SVD) against the gauge
			// walk to reach it (each shift is a cheaper QR). On ring
			// topologies a whole coupling layer rides the permutation the
			// previous layer left behind instead of re-routing the closing
			// edge from scratch; on lines, successive Trotter layers sweep
			// boustrophedon instead of re-walking the center across the
			// chain. Slots stay in DiagLayout order, matching the numeric
			// payload tables.
			remaining := make([]int, len(pairs))
			for i := range remaining {
				remaining[i] = i
			}
			for len(remaining) > 0 {
				best, bestScore := 0, 1<<30
				for ri, pi := range remaining {
					lo, hi := siteOf[pairs[pi][0]], siteOf[pairs[pi][1]]
					if lo > hi {
						lo, hi = hi, lo
					}
					walk := center - lo
					if walk < 0 {
						walk = -walk
					}
					score := 3*(hi-lo-1) + walk
					if score < bestScore {
						best, bestScore = ri, score
					}
				}
				pi := remaining[best]
				remaining = append(remaining[:best], remaining[best+1:]...)
				pr := pairs[pi] // (A, B) with A > B
				left := ensureAdjacent(pr[0], pr[1])
				cc.steps = append(cc.steps, step{
					kind: stepDiag2, site: left, slot: cc.d2 + pi,
					flip: cc.qubitAt[left] != pr[0],
				})
			}
			cc.d2 += len(pairs)
		case circuit.SegPass:
			g := tc.Gates[seg.Gates[0]]
			switch g.Kind {
			case circuit.KindMeasure, circuit.KindBarrier, circuit.KindReset, circuit.KindI:
				// No kernel (measurements were stripped anyway).
			default:
				return nil, fmt.Errorf("mps: unsupported passthrough gate %s on %d qubits; transpile first", g.Kind.Name(), len(g.Qubits))
			}
		}
	}
	return cc, nil
}

// Params returns the schedule's unbound parameter names (sorted).
func (cc *Compiled) Params() []string { return append([]string(nil), cc.params...) }

// NumSteps returns the executable step count of the schedule.
func (cc *Compiled) NumSteps() int { return len(cc.steps) }

// payload holds the numeric content of one binding: matrices and diagonal
// factor tables, indexed by the schedule's slot numbers.
type payload struct {
	m1 [][2][2]complex128
	m2 []*linalg.Matrix
	d1 [][2]complex128
	d2 [][4]complex128
}

// bindPayload walks the segments in schedule order and computes the numeric
// payloads of one bound circuit. Slot order matches CompileCircuit exactly:
// both walk the same segment stream and DiagLayout/SegmentDiagonal share
// their coalescing order.
func (cc *Compiled) bindPayload(bound *circuit.Circuit) *payload {
	pay := &payload{
		m1: make([][2][2]complex128, 0, cc.n1),
		m2: make([]*linalg.Matrix, 0, cc.n2),
		d1: make([][2]complex128, 0, cc.d1),
		d2: make([][4]complex128, 0, cc.d2),
	}
	for _, seg := range cc.segs {
		switch seg.Kind {
		case circuit.SegDense:
			switch len(seg.Qubits) {
			case 1:
				u := circuit.SegmentUnitary(bound, seg.Gates, seg.Qubits)
				pay.m1 = append(pay.m1, [2][2]complex128{
					{u.At(0, 0), u.At(0, 1)},
					{u.At(1, 0), u.At(1, 1)}})
			case 2:
				// Higher qubit as the most significant bit.
				qs := []int{seg.Qubits[1], seg.Qubits[0]}
				pay.m2 = append(pay.m2, circuit.SegmentUnitary(bound, seg.Gates, qs))
			}
		case circuit.SegDiag:
			t1, t2 := circuit.SegmentDiagonal(bound, seg.Gates)
			for _, t := range t1 {
				pay.d1 = append(pay.d1, t.D)
			}
			for _, t := range t2 {
				pay.d2 = append(pay.d2, t.D)
			}
		}
	}
	return pay
}

// Execute runs the schedule under one parameter binding (nil for bound
// circuits) and returns the final state. The returned MPS carries the
// routed chain permutation in QubitOfSite; Sample/Amplitudes/expectations
// resolve it transparently.
func (cc *Compiled) Execute(binding map[string]float64, opt Options) (*MPS, error) {
	bound := cc.base
	if len(cc.params) > 0 {
		bound = cc.base.Bind(binding)
		if !bound.IsBound() {
			return nil, fmt.Errorf("mps: binding leaves params %v unbound", bound.ParamNames())
		}
	}
	pay := cc.bindPayload(bound)
	m := New(cc.N, opt.MaxBond, opt.Cutoff)
	m.Workers = opt.Workers
	for _, st := range cc.steps {
		switch st.kind {
		case stepDense1:
			m.Apply1Q(pay.m1[st.slot], st.site)
		case stepDiag1:
			m.ApplyDiag1Q(pay.d1[st.slot], st.site)
		case stepSwap:
			m.swapAdjacent(st.site)
		case stepDense2:
			g := pay.m2[st.slot]
			if st.flip {
				g = permute2Q(g)
			}
			m.ApplyTwoAdjacent(g, st.site)
		case stepDiag2:
			d := pay.d2[st.slot]
			if st.flip {
				d[1], d[2] = d[2], d[1]
			}
			m.ApplyDiagTwoAdjacent(d, st.site)
		}
	}
	// Copied, never aliased: the schedule is cached and shared across batch
	// elements, so a caller mutating the exported field must not be able to
	// corrupt the routing table of its siblings.
	m.QubitOfSite = append([]int(nil), cc.qubitAt...)
	return m, nil
}

// RunBatch executes the schedule under K bindings, fanning elements across
// a core-bounded worker set. Every element shares the one compiled
// schedule; results come back in element order. Elements run with
// Workers=1 — the parallelism budget goes to the fan-out, matching the
// batch pipeline's behaviour on the state-vector engines.
func (cc *Compiled) RunBatch(bindings []map[string]float64, opt Options) ([]*MPS, error) {
	out := make([]*MPS, len(bindings))
	errs := make([]error, len(bindings))
	elemOpt := opt
	elemOpt.Workers = 1
	core.FanOut(len(bindings), runtime.GOMAXPROCS(0), func(i int) {
		out[i], errs[i] = cc.Execute(bindings[i], elemOpt)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mps: batch element %d: %w", i, err)
		}
	}
	return out, nil
}
