package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"qfw/internal/faults"
	"qfw/internal/trace"
)

// flakyExec fails its first failFirst executions with a transient error,
// then succeeds — the retry envelope's happy-path recovery case.
type flakyExec struct {
	name      string
	failFirst int

	mu    sync.Mutex
	calls int
}

func (f *flakyExec) Name() string { return f.name }
func (f *flakyExec) Capabilities() Capabilities {
	return Capabilities{Backend: f.name, Subbackends: []string{"default"}, CPU: true}
}
func (f *flakyExec) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.failFirst {
		return ExecResult{}, faults.Transient(fmt.Errorf("flake %d", n))
	}
	return ExecResult{Counts: map[string]int{"00": 1}}, nil
}

// TestTaskTimingsReportRetryBreakdown pins the per-task Timings contract
// on the retried path: a task recovered on its second attempt reports
// Attempts=2, separates retry backoff from execution time, and sums its
// components to TotalMS exactly. The QPM metrics and per-attempt executor
// spans must agree with the same story.
func TestTaskTimingsReportRetryBreakdown(t *testing.T) {
	rec := trace.NewRecorder()
	f := &flakyExec{name: "flaky", failFirst: 1}
	q := NewQPM(f, 1, rec)
	defer q.Close()
	q.SetRetryPolicy(faults.Policy{
		MaxAttempts: 3,
		BaseDelay:   2 * time.Millisecond,
		Sleep:       func(time.Duration) {}, // stub: backoff accounted, not slept
	})

	id, err := q.Submit(bell(t), RunOptions{Shots: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Wait(id)
	if err != nil {
		t.Fatal(err)
	}

	tm := res.Timings
	if tm.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (one flake, one success): %+v", tm.Attempts, tm)
	}
	if tm.QueueMS < 0 || tm.ExecMS < 0 || tm.RetryBackoffMS < 0 ||
		tm.CacheLookupMS != 0 || tm.CoalesceWaitMS != 0 {
		t.Fatalf("timing components out of contract: %+v", tm)
	}
	if tm.TotalMS != tm.Sum() {
		t.Fatalf("TotalMS %v != component sum %v (%+v)", tm.TotalMS, tm.Sum(), tm)
	}

	met := rec.Metrics()
	counter := func(base string) int64 {
		return met.Counter(trace.LabeledName(base, "backend", "flaky")).Value()
	}
	if got := counter("qfw_qpm_tasks_total"); got != 1 {
		t.Fatalf("tasks counter %d, want 1", got)
	}
	if got := counter("qfw_qpm_retries_total"); got != 1 {
		t.Fatalf("retries counter %d, want 1", got)
	}
	if got := counter("qfw_qpm_failures_total"); got != 0 {
		t.Fatalf("failures counter %d, want 0 (task recovered)", got)
	}
	for _, h := range []string{"qfw_qpm_queue_ms", "qfw_qpm_exec_ms"} {
		if got := met.Histogram(trace.LabeledName(h, "backend", "flaky")).Count(); got != 1 {
			t.Fatalf("%s observed %d, want 1", h, got)
		}
	}

	attempts := 0
	for _, e := range rec.Events() {
		if strings.HasPrefix(e.Name, "executor:") {
			attempts++
		}
	}
	if attempts != 2 {
		t.Fatalf("recorded %d executor attempt spans, want 2", attempts)
	}
}
