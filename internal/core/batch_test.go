package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/defw"
)

// paramExec is a batch-capable fake executor: it parses specs through its
// own cache (like the real backends) and echoes each element's binding
// value so ordering is observable.
type paramExec struct {
	name  string
	cache *ParseCache

	mu         sync.Mutex
	execCalls  int
	batchCalls int
}

func newParamExec(name string) *paramExec {
	return &paramExec{name: name, cache: NewParseCache()}
}

func (p *paramExec) Name() string { return p.name }
func (p *paramExec) Capabilities() Capabilities {
	return Capabilities{Backend: p.name, Subbackends: []string{"default"}}
}

func (p *paramExec) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	p.mu.Lock()
	p.execCalls++
	p.mu.Unlock()
	c, err := p.cache.Get(spec)
	if err != nil {
		return ExecResult{}, err
	}
	theta := c.Gates[0].Params[0].Const
	return ExecResult{Extra: map[string]float64{"theta": theta, "seed": float64(opts.Seed)}}, nil
}

func (p *paramExec) ExecuteBatch(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]ExecResult, error) {
	p.mu.Lock()
	p.batchCalls++
	p.mu.Unlock()
	base, err := p.cache.Get(spec)
	if err != nil {
		return nil, err
	}
	out := make([]ExecResult, len(bindings))
	for i, b := range bindings {
		bound := base.Bind(b)
		if !bound.IsBound() {
			return nil, fmt.Errorf("paramExec: element %d leaves params %v unbound", i, bound.ParamNames())
		}
		out[i] = ExecResult{Extra: map[string]float64{
			"theta": bound.Gates[0].Params[0].Const,
			"seed":  float64(opts.ForElement(i).Seed),
		}}
	}
	return out, nil
}

// parametricAnsatz builds a tiny symbolic circuit.
func parametricAnsatz(t *testing.T) *circuit.Circuit {
	t.Helper()
	c := circuit.New(1)
	c.Name = "ansatz"
	c.RX(0, circuit.Sym("theta", 1)).MeasureAll()
	return c
}

// countingHandler wraps a defw handler and tallies method calls.
type countingHandler struct {
	inner defw.Handler
	mu    sync.Mutex
	calls map[string]int
}

func (h *countingHandler) Handle(method string, payload []byte) ([]byte, error) {
	h.mu.Lock()
	h.calls[method]++
	h.mu.Unlock()
	return h.inner.Handle(method, payload)
}

func (h *countingHandler) count(method string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls[method]
}

func TestBatchSingleRPCSingleParse(t *testing.T) {
	// The batch acceptance criterion: K bindings over one ansatz issue
	// exactly one submit_batch RPC and parse the QASM exactly once.
	exec := newParamExec("px")
	qpm := NewQPM(exec, 4, nil)
	defer qpm.Close()
	server := defw.NewServer()
	counter := &countingHandler{inner: qpm, calls: map[string]int{}}
	server.Register(ServiceName("px"), counter)
	client := defw.NewPipeClient(server)
	defer func() { client.Close(); server.Close() }()
	front, err := NewFrontend(client, Properties{Backend: "px"})
	if err != nil {
		t.Fatal(err)
	}

	const K = 8
	bindings := make([]Bindings, K)
	for i := range bindings {
		bindings[i] = Bindings{"theta": float64(i) / 10}
	}
	results, err := front.RunBatch(parametricAnsatz(t), bindings, RunOptions{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != K {
		t.Fatalf("got %d results, want %d", len(results), K)
	}
	for i, res := range results {
		if res == nil || res.Extra["theta"] != float64(i)/10 {
			t.Fatalf("element %d out of order: %+v", i, res)
		}
		if res.Extra["seed"] != float64(100+i) {
			t.Fatalf("element %d seed %v, want %d", i, res.Extra["seed"], 100+i)
		}
	}
	if got := counter.count("submit_batch"); got != 1 {
		t.Fatalf("submit_batch RPCs = %d, want 1", got)
	}
	if got := counter.count("submit"); got != 0 {
		t.Fatalf("submit RPCs = %d, want 0", got)
	}
	if got := exec.cache.Parses(); got != 1 {
		t.Fatalf("QASM parses = %d, want 1", got)
	}
}

func TestBatchFallbackForPlainExecutor(t *testing.T) {
	// Executors without native batch support are driven per element through
	// the QPM's own cache: still one QPM-side parse for the whole batch.
	exec := &fakeExec{name: "plain"}
	qpm := NewQPM(exec, 2, nil)
	defer qpm.Close()
	spec, err := SpecFromParametric(func() *circuit.Circuit {
		c := circuit.New(1)
		c.Name = "fb"
		c.RX(0, circuit.Sym("a", 1)).MeasureAll()
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsParametric() || spec.Params[0] != "a" {
		t.Fatalf("spec not parametric: %+v", spec)
	}
	id, err := qpm.SubmitBatch(spec, []Bindings{{"a": 0.1}, {"a": 0.2}, {"a": 0.3}}, RunOptions{Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	results, errs, err := qpm.WaitBatch(id)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != "" {
			t.Fatalf("element %d failed: %s", i, e)
		}
		if results[i] == nil || results[i].Counts["00"] != 5 {
			t.Fatalf("element %d result %+v", i, results[i])
		}
	}
	if exec.callCount() != 3 {
		t.Fatalf("Execute calls = %d, want 3", exec.callCount())
	}
	if qpm.ParseCount() != 1 {
		t.Fatalf("QPM parses = %d, want 1", qpm.ParseCount())
	}
}

func TestBatchElementErrorIsOrdered(t *testing.T) {
	// A binding that leaves a parameter unbound fails its elements with a
	// clean per-element error; the frontend surfaces the first one.
	exec := newParamExec("pe")
	qpm := NewQPM(exec, 1, nil)
	defer qpm.Close()
	server := defw.NewServer()
	server.Register(ServiceName("pe"), qpm)
	client := defw.NewPipeClient(server)
	defer func() { client.Close(); server.Close() }()
	front, _ := NewFrontend(client, Properties{Backend: "pe"})

	_, err := front.RunBatch(parametricAnsatz(t), []Bindings{{"wrong": 1}}, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "element 0") {
		t.Fatalf("err = %v, want element error", err)
	}
}

// blockingExec parks every execution until released.
type blockingExec struct {
	name    string
	started chan struct{}
	release chan struct{}
}

func (b *blockingExec) Name() string { return b.name }
func (b *blockingExec) Capabilities() Capabilities {
	return Capabilities{Backend: b.name}
}
func (b *blockingExec) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	b.started <- struct{}{}
	<-b.release
	return ExecResult{Counts: map[string]int{"0": 1}}, nil
}

func TestQPMRunOnFullQueue(t *testing.T) {
	exec := &blockingExec{name: "full", started: make(chan struct{}, 16), release: make(chan struct{})}
	q := newQPMWithQueueCap(exec, 1, nil, 2)
	defer func() { close(exec.release); q.Close() }()
	spec := bell(t)

	// First task occupies the single worker; the next two fill the queue.
	first, err := q.Submit(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	<-exec.started
	for i := 0; i < 2; i++ {
		if _, err := q.Submit(spec, RunOptions{}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	id, err := q.Create(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Run(id); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("Run on full queue = %v, want queue-full error", err)
	}
}

func TestQPMSubmitAfterClose(t *testing.T) {
	q := NewQPM(&fakeExec{name: "closed"}, 1, nil)
	q.Close()
	if _, err := q.Submit(bell(t), RunOptions{}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Submit after Close = %v, want closed error", err)
	}
	if _, err := q.SubmitBatch(bell(t), []Bindings{{}}, RunOptions{}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("SubmitBatch after Close = %v, want closed error", err)
	}
	// Close must stay idempotent.
	q.Close()
}

func TestQPMDeleteRunningTask(t *testing.T) {
	exec := &blockingExec{name: "busy", started: make(chan struct{}, 1), release: make(chan struct{})}
	q := NewQPM(exec, 1, nil)
	id, err := q.Submit(bell(t), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	<-exec.started // the task is now running
	if err := q.Delete(id); err == nil || !strings.Contains(err.Error(), "running") {
		t.Fatalf("Delete of running task = %v, want running error", err)
	}
	close(exec.release)
	if _, err := q.Wait(id); err != nil {
		t.Fatal(err)
	}
	if err := q.Delete(id); err != nil {
		t.Fatalf("Delete after completion: %v", err)
	}
	q.Close()
}

func TestBatchRPCWireFormat(t *testing.T) {
	// The submit_batch payload must stay JSON-stable: spec once, bindings
	// as an array of name->value maps.
	req := batchSubmitReq{
		Spec:     CircuitSpec{Name: "a", NQubits: 1, QASM: "OPENQASM 2.0;", Params: []string{"t"}},
		Bindings: []Bindings{{"t": 0.5}},
		Opts:     RunOptions{Shots: 4},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back batchSubmitReq
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.Params[0] != "t" || back.Bindings[0]["t"] != 0.5 || back.Opts.Shots != 4 {
		t.Fatalf("round trip %+v", back)
	}
}
