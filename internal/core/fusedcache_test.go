package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"qfw/internal/circuit"
)

func TestParseCacheGetFusedOncePerSpec(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.RZZ(0, 1, circuit.Sym("g", 1))
	c.RZZ(1, 2, circuit.Sym("g", 1))
	c.MeasureAll()
	spec, err := SpecFromParametric(c)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewParseCache()
	var wg sync.WaitGroup
	plans := make([]*circuit.FusionPlan, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, plan, err := pc.GetFused(spec)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = plan
		}(i)
	}
	wg.Wait()
	if pc.Parses() != 1 {
		t.Fatalf("parses = %d, want 1", pc.Parses())
	}
	if pc.Fusions() != 1 {
		t.Fatalf("fusions = %d, want 1: a batch must fuse once per ansatz", pc.Fusions())
	}
	for i := 1; i < 16; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent GetFused returned different plan instances")
		}
	}
	// The cached plan is built against the measurement-stripped circuit.
	base, plan, err := pc.GetFused(spec)
	if err != nil {
		t.Fatal(err)
	}
	bound := base.Bind(map[string]float64{"g": 0.4})
	prog := plan.Compile(bound.StripMeasurements())
	if prog.NQubits != 3 || len(prog.Ops) == 0 {
		t.Fatalf("unexpected compiled program: %+v", prog)
	}
}

func TestParseCacheGetPlainStillWorks(t *testing.T) {
	c := circuit.New(2)
	c.H(0).CX(0, 1)
	spec, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewParseCache()
	if _, err := pc.Get(spec); err != nil {
		t.Fatal(err)
	}
	// Mixing Get and GetFused shares one parse.
	if _, _, err := pc.GetFused(spec); err != nil {
		t.Fatal(err)
	}
	if pc.Parses() != 1 {
		t.Fatalf("parses = %d, want 1 across Get and GetFused", pc.Parses())
	}
}

func TestParseCacheMemoOncePerSpecAndKey(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.RZZ(0, 1, circuit.Sym("g", 1))
	spec, err := SpecFromParametric(c)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewParseCache()
	var builds int32
	var wg sync.WaitGroup
	vals := make([]any, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := pc.Memo(spec, "schedule", func(cc *circuit.Circuit) (any, error) {
				atomic.AddInt32(&builds, 1)
				return cc.NQubits, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if got := atomic.LoadInt32(&builds); got != 1 {
		t.Fatalf("builds = %d, want exactly 1 under concurrent Memo calls", got)
	}
	if pc.Memos() != 1 {
		t.Fatalf("Memos() = %d, want 1", pc.Memos())
	}
	for i, v := range vals {
		if v != 2 {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	// A different key builds independently; the same key never rebuilds.
	if _, err := pc.Memo(spec, "other", func(cc *circuit.Circuit) (any, error) { return "x", nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Memo(spec, "schedule", func(cc *circuit.Circuit) (any, error) {
		t.Fatal("same-key memo must not rebuild")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if pc.Memos() != 2 {
		t.Fatalf("Memos() = %d, want 2 after a second key", pc.Memos())
	}
	if pc.Parses() != 1 {
		t.Fatalf("parses = %d: memoized artifacts must share the single parse", pc.Parses())
	}
}

func TestParseCacheMemoPropagatesBuildError(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	spec, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewParseCache()
	wantErr := errTest
	if _, err := pc.Memo(spec, "k", func(cc *circuit.Circuit) (any, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want the build error", err)
	}
	// The failed build is cached too (single-flight): no rebuild.
	if _, err := pc.Memo(spec, "k", func(cc *circuit.Circuit) (any, error) {
		t.Fatal("failed memo must not rebuild")
		return nil, nil
	}); err != wantErr {
		t.Fatalf("second err = %v", err)
	}
}

var errTest = errors.New("boom")
