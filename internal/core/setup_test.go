package core

import (
	"strings"
	"testing"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/cluster"
)

// registerFake registers a throwaway backend factory for setup tests.
func registerFake(name string) {
	RegisterBackend(name, func(env *Env) (Executor, error) {
		return &fakeExec{name: name}, nil
	})
}

func TestLaunchSessionLifecycle(t *testing.T) {
	registerFake("fake-a")
	registerFake("fake-b")
	s, err := Launch(Config{
		Machine:  cluster.Frontier(3),
		AppNodes: 1,
		QFwNodes: 2,
		Workers:  2,
		Backends: []string{"fake-a", "fake-b"},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Teardown()

	// Het groups: job holds all three nodes, split 1 + 2.
	if len(s.Alloc.Group(0).Nodes) != 1 || len(s.Alloc.Group(1).Nodes) != 2 {
		t.Fatalf("het group sizes %d/%d", len(s.Alloc.Group(0).Nodes), len(s.Alloc.Group(1).Nodes))
	}
	if !strings.HasPrefix(s.DVM.URI, "prte://") {
		t.Fatalf("DVM URI %q", s.DVM.URI)
	}
	// Both backends plus the auto selector are served.
	got := s.Backends()
	if len(got) != 3 || got[0] != "auto" {
		t.Fatalf("backends %v", got)
	}
	// A frontend runs a circuit end to end.
	f, err := s.Frontend(Properties{Backend: "fake-a"})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(2)
	c.H(0).MeasureAll()
	res, err := f.Run(c, RunOptions{Shots: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["00"] != 9 {
		t.Fatalf("counts %v", res.Counts)
	}
	// Unknown backends are rejected at frontend creation.
	if _, err := s.Frontend(Properties{Backend: "nope"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The session's scheduler is exposed and fully allocated.
	if s.Scheduler().FreeNodes() != 0 {
		t.Fatalf("free nodes %d", s.Scheduler().FreeNodes())
	}
}

func TestLaunchTCPAndTeardownReleasesNodes(t *testing.T) {
	registerFake("fake-tcp")
	s, err := Launch(Config{
		Machine:  cluster.Frontier(2),
		Backends: []string{"fake-tcp"},
		UseTCP:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr == "" {
		t.Fatal("no TCP address")
	}
	f, err := s.Frontend(Properties{Backend: "fake-tcp"})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(1)
	c.X(0).MeasureAll()
	if _, err := f.Run(c, RunOptions{Shots: 3}); err != nil {
		t.Fatal(err)
	}
	sched := s.Scheduler()
	s.Teardown()
	if sched.FreeNodes() != 2 {
		t.Fatalf("teardown did not release nodes: %d free", sched.FreeNodes())
	}
	// Teardown is idempotent.
	s.Teardown()
}

func TestLaunchErrors(t *testing.T) {
	if _, err := Launch(Config{Machine: cluster.Frontier(1)}); err == nil {
		t.Fatal("1-node machine cannot host two het groups")
	}
	if _, err := Launch(Config{Machine: cluster.Frontier(2), Backends: []string{"not-registered"}}); err == nil {
		t.Fatal("unregistered backend accepted")
	}
}

func TestLaunchWalltime(t *testing.T) {
	registerFake("fake-wt")
	s, err := Launch(Config{
		Machine:  cluster.Frontier(2),
		Backends: []string{"fake-wt"},
		Walltime: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Teardown()
	select {
	case <-s.Job.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("walltime not enforced on the session job")
	}
}
