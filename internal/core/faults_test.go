package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/cluster"
	"qfw/internal/defw"
	"qfw/internal/faults"
	"qfw/internal/trace"
)

// batchOf builds K bindings over the shared test ansatz.
func batchOf(k int) []Bindings {
	bindings := make([]Bindings, k)
	for i := range bindings {
		bindings[i] = Bindings{"theta": float64(i) / 100}
	}
	return bindings
}

// runFullBatch submits one batch and waits for it.
func runFullBatch(t *testing.T, q *QPM, spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]*Result, []string) {
	t.Helper()
	id, err := q.SubmitBatch(spec, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	results, errs, err := q.WaitBatch(id)
	if err != nil {
		t.Fatal(err)
	}
	return results, errs
}

// TestBatchFaultRecoveryBitIdentical is the acceptance criterion: a 20%
// transient failure schedule over a 64-element batch must recover to
// results bit-identical to a clean run — retries plus element-isolated
// degradation, zero slots lost to chunk aborts.
func TestBatchFaultRecoveryBitIdentical(t *testing.T) {
	spec, err := SpecFromParametric(parametricAnsatz(t))
	if err != nil {
		t.Fatal(err)
	}
	const K = 64
	opts := RunOptions{Seed: 100}

	clean := NewQPM(newParamExec("px"), 4, trace.NewRecorder())
	defer clean.Close()
	cleanRes, cleanErrs := runFullBatch(t, clean, spec, batchOf(K), opts)
	for i, e := range cleanErrs {
		if e != "" {
			t.Fatalf("clean element %d failed: %s", i, e)
		}
	}

	inj := faults.NewInjector(faults.Schedule{Rate: 0.2, Times: 1, Seed: 3})
	faulty := NewQPM(NewFaultyExecutor(newParamExec("px"), inj), 4, trace.NewRecorder())
	defer faulty.Close()
	faultyRes, faultyErrs := runFullBatch(t, faulty, spec, batchOf(K), opts)

	if inj.Injected() == 0 {
		t.Fatal("schedule injected nothing — test exercises no recovery")
	}
	for i, e := range faultyErrs {
		if e != "" {
			t.Fatalf("element %d failed despite retries: %s", i, e)
		}
		if strings.Contains(e, "batch aborted") {
			t.Fatalf("element %d carries a chunk abort: %s", i, e)
		}
		if faultyRes[i] == nil || cleanRes[i] == nil {
			t.Fatalf("element %d missing a result", i)
		}
		for key, want := range cleanRes[i].Extra {
			if got := faultyRes[i].Extra[key]; got != want {
				t.Fatalf("element %d %s: faulted run %v, clean run %v", i, key, got, want)
			}
		}
	}
}

// TestPanicIsolationRecovers: an executor panic becomes a transient error
// inside the worker, the retry succeeds, and the daemon never crashes.
func TestPanicIsolationRecovers(t *testing.T) {
	inj := faults.NewInjector(faults.Schedule{Rate: 1, Times: 1, Mode: "panic"})
	q := NewQPM(NewFaultyExecutor(&fakeExec{name: "fake"}, inj), 2, trace.NewRecorder())
	defer q.Close()
	id, err := q.Submit(bell(t), RunOptions{Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Wait(id)
	if err != nil {
		t.Fatalf("panic not recovered: %v", err)
	}
	if res.Counts["00"] != 5 {
		t.Fatalf("result after recovery: %+v", res)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected %d panics", inj.Injected())
	}
}

// TestPanicIsolationPersistent: a deterministic panic exhausts the retry
// budget into a per-task error — and the QPM keeps serving new work.
func TestPanicIsolationPersistent(t *testing.T) {
	inj := faults.NewInjector(faults.Schedule{Rate: 1, Times: -1, Mode: "panic"})
	fe := NewFaultyExecutor(&fakeExec{name: "fake"}, inj)
	q := NewQPM(fe, 2, trace.NewRecorder())
	defer q.Close()
	id, err := q.Submit(bell(t), RunOptions{Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(id); err == nil || !strings.Contains(err.Error(), "executor panic") {
		t.Fatalf("want executor panic error, got %v", err)
	}
	if got := inj.Injected(); got != int64(DefaultRetryPolicy().MaxAttempts) {
		t.Fatalf("panicked %d times, want one per attempt", got)
	}
	// The worker pool survived: a clean submission still executes.
	inj.Close()
	healthy := NewFaultyExecutor(&fakeExec{name: "fake"}, faults.NewInjector(faults.Schedule{Rate: 0, Nth: 1 << 30}))
	q2 := NewQPM(healthy, 2, trace.NewRecorder())
	defer q2.Close()
	id2, err := q2.Submit(bell(t), RunOptions{Shots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Wait(id2); err != nil {
		t.Fatal(err)
	}
}

// TestHungExecutorDeadline is the second acceptance criterion: a hung
// executor call returns a typed ErrDeadlineExceeded within 2× the
// configured deadline, and the worker slot frees for new work.
func TestHungExecutorDeadline(t *testing.T) {
	// One hang: the abandoned goroutine stays blocked on the consumed
	// fault (released at cleanup) while follow-up work runs clean.
	inj := faults.NewInjector(faults.Schedule{Rate: 1, Times: 1, Mode: "hang"})
	defer inj.Close()
	q := NewQPM(NewFaultyExecutor(&fakeExec{name: "fake"}, inj), 1, trace.NewRecorder())
	defer q.Close()

	const deadlineMS = 50
	start := time.Now()
	id, err := q.Submit(bell(t), RunOptions{Shots: 1, TimeoutMS: deadlineMS})
	if err != nil {
		t.Fatal(err)
	}
	_, err = q.Wait(id)
	elapsed := time.Since(start)
	if err == nil || !IsDeadlineExceeded(err) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	if elapsed > 2*deadlineMS*time.Millisecond {
		t.Fatalf("deadline enforced after %s (limit %dms)", elapsed, 2*deadlineMS)
	}
	// The single worker abandoned the hung call — it must pick up new work
	// even though the first executor goroutine is still blocked.
	id2, err := q.Submit(bell(t), RunOptions{Shots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(id2); err != nil {
		t.Fatalf("worker slot not freed: %v", err)
	}
}

// TestDeadlineSurvivesRPC: the typed error classification must survive the
// DEFw flattening to a string, exactly like ErrOverloaded does.
func TestDeadlineSurvivesRPC(t *testing.T) {
	inj := faults.NewInjector(faults.Schedule{Rate: 1, Times: -1, Mode: "hang"})
	defer inj.Close()
	q := NewQPM(NewFaultyExecutor(&fakeExec{name: "hangy"}, inj), 1, trace.NewRecorder())
	defer q.Close()
	server := defw.NewServer()
	server.Register(ServiceName("hangy"), q)
	client := defw.NewPipeClient(server)
	defer func() { client.Close(); server.Close() }()
	front, err := NewFrontend(client, Properties{Backend: "hangy"})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(2)
	c.H(0).CX(0, 1).MeasureAll()
	_, err = front.Run(c, RunOptions{Shots: 1, TimeoutMS: 40})
	if err == nil || !IsDeadlineExceeded(err) {
		t.Fatalf("flattened error lost deadline classification: %v", err)
	}
}

// TestGradientRetryRecovers: a transient gradient failure re-executes the
// whole gradient work item and succeeds.
func TestGradientRetryRecovers(t *testing.T) {
	inj := faults.NewInjector(faults.Schedule{Rate: 1, Times: 1, Seed: 2})
	inner := &fakeGradExec{fakeExec: fakeExec{name: "fake"}}
	q := NewQPM(NewFaultyExecutor(inner, inj), 2, trace.NewRecorder())
	defer q.Close()
	spec, err := SpecFromParametric(parametricAnsatz(t))
	if err != nil {
		t.Fatal(err)
	}
	id, err := q.SubmitGradient(spec, batchOf(3), RunOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	grads, err := q.WaitGradient(id)
	if err != nil {
		t.Fatalf("gradient retry failed: %v", err)
	}
	if len(grads) != 3 {
		t.Fatalf("got %d gradients", len(grads))
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected %d faults", inj.Injected())
	}
}

// TestWaitCtxCancel: a cancelled context unblocks the wait while the task
// keeps running.
func TestWaitCtxCancel(t *testing.T) {
	exec := &fakeExec{name: "slow", delay: 200 * time.Millisecond}
	q := NewQPM(exec, 1, trace.NewRecorder())
	defer q.Close()
	id, err := q.Submit(bell(t), RunOptions{Shots: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.WaitCtx(ctx, id); err == nil || !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("want context deadline error, got %v", err)
	}
	// The task itself is unaffected: a plain Wait still completes it.
	if _, err := q.Wait(id); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteDeadlineExpired: a running task whose deadline has passed can
// be deleted (no orphaned entry holding the table), while a running task
// within its deadline still refuses.
func TestDeleteDeadlineExpired(t *testing.T) {
	inj := faults.NewInjector(faults.Schedule{Rate: 1, Times: -1, Mode: "hang"})
	defer inj.Close()
	q := NewQPM(NewFaultyExecutor(&fakeExec{name: "fake"}, inj), 1, trace.NewRecorder())
	defer q.Close()
	id, err := q.Submit(bell(t), RunOptions{Shots: 1, TimeoutMS: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the task is actually running, then confirm the refusal
	// window holds before the deadline.
	deadline := time.Now().Add(time.Second)
	for {
		st, err := q.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("task never started (status %s)", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Delete(id); err == nil {
		t.Fatal("running task within deadline deleted")
	}
	if _, err := q.Wait(id); !IsDeadlineExceeded(err) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	if err := q.Delete(id); err != nil {
		t.Fatalf("deadline-expired task refused deletion: %v", err)
	}
	if _, err := q.Status(id); err == nil {
		t.Fatal("deleted task still listed")
	}
}

// TestAutoFallbackReroute: when the chosen engine fails at execution time
// the submission re-routes to the next candidate, annotated in Route.
// WithModel(nil) forces the structural rules so the primary choice is
// deterministic regardless of the CI cost-model mode.
func TestAutoFallbackReroute(t *testing.T) {
	bad := &fakeExec{name: "aer", fail: true}
	good := &fakeExec{name: "nwqsim"}
	a := NewAutoExecutor(map[string]Executor{"aer": bad, "nwqsim": good}).WithModel(nil)
	res, err := a.Execute(bell(t), RunOptions{Shots: 4})
	if err != nil {
		t.Fatalf("fallback did not rescue the submission: %v", err)
	}
	if !strings.HasPrefix(res.Route, "fallback:nwqsim") {
		t.Fatalf("route %q does not record the fallback", res.Route)
	}
	if bad.callCount() == 0 || good.callCount() == 0 {
		t.Fatalf("calls: aer=%d nwqsim=%d", bad.callCount(), good.callCount())
	}

	// With fallback disabled the primary's failure is final.
	b := NewAutoExecutor(map[string]Executor{"aer": &fakeExec{name: "aer", fail: true}, "nwqsim": &fakeExec{name: "nwqsim"}}).
		WithModel(nil).WithFallback(false)
	if _, err := b.Execute(bell(t), RunOptions{Shots: 4}); err == nil {
		t.Fatal("fallback-off execution succeeded through a dead primary")
	}
}

// TestLaunchArmsQFWFaults: an armed QFW_FAULTS schedule wraps every
// launched backend in the injector, and the retry layer still delivers
// results end to end through the RPC surface.
func TestLaunchArmsQFWFaults(t *testing.T) {
	t.Setenv(faults.EnvVar, "rate=1,times=1,seed=4")
	registerFake("fake-ft")
	s, err := Launch(Config{
		Machine:  cluster.Frontier(2),
		Workers:  2,
		Backends: []string{"fake-ft"},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Teardown()
	fe, ok := s.Executor("fake-ft").(*FaultyExecutor)
	if !ok {
		t.Fatalf("executor not wrapped: %T", s.Executor("fake-ft"))
	}
	front, err := s.Frontend(Properties{Backend: "fake-ft"})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(2)
	c.H(0).CX(0, 1).MeasureAll()
	res, err := front.Run(c, RunOptions{Shots: 6})
	if err != nil {
		t.Fatalf("injected fault not retried away: %v", err)
	}
	if res.Counts["00"] != 6 {
		t.Fatalf("result %+v", res)
	}
	if fe.Injector().Injected() == 0 {
		t.Fatal("schedule never fired")
	}
}
