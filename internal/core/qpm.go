package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qfw/internal/trace"
)

// task is one circuit-execution job tracked by a QPM.
type task struct {
	id   string
	spec CircuitSpec
	opts RunOptions

	mu       sync.Mutex
	status   Status
	result   *Result
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

func (t *task) snapshotStatus() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// QPM is a Quantum Platform Manager service instance for one backend: it
// owns the task queue and circuit lifecycle and dispatches work round-robin
// to its QRC worker threads.
type QPM struct {
	backend  string
	exec     Executor
	rec      *trace.Recorder
	queue    chan *task
	nextID   atomic.Int64
	mu       sync.Mutex
	tasks    map[string]*task
	closed   bool
	workers  int
	workerWG sync.WaitGroup
}

// NewQPM starts a QPM with the given number of QRC worker threads (the paper
// uses eight per QPM process).
func NewQPM(exec Executor, workers int, rec *trace.Recorder) *QPM {
	if workers <= 0 {
		workers = 8
	}
	if rec == nil {
		rec = trace.NewRecorder()
	}
	q := &QPM{
		backend: exec.Name(),
		exec:    exec,
		rec:     rec,
		queue:   make(chan *task, 1024),
		tasks:   make(map[string]*task),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		q.workerWG.Add(1)
		go q.qrcWorker(w)
	}
	return q
}

// Backend returns the backend name this QPM serves.
func (q *QPM) Backend() string { return q.backend }

// Recorder exposes the timing instrumentation.
func (q *QPM) Recorder() *trace.Recorder { return q.rec }

// qrcWorker is one Quantum Resource Controller thread: it pulls queued
// tasks and triggers backend executions (MPI runs for local simulators,
// REST calls for cloud backends).
func (q *QPM) qrcWorker(id int) {
	defer q.workerWG.Done()
	worker := fmt.Sprintf("%s/qrc-%d", q.backend, id)
	for t := range q.queue {
		t.mu.Lock()
		t.status = StatusRunning
		t.started = time.Now()
		t.mu.Unlock()

		finish := q.rec.Span("exec:"+t.spec.Name, worker)
		res, err := q.exec.Execute(t.spec, t.opts)
		finish()

		t.mu.Lock()
		t.finished = time.Now()
		if err != nil {
			t.status = StatusFailed
			t.errMsg = err.Error()
		} else {
			t.status = StatusDone
			t.result = &Result{
				TaskID:     t.id,
				Backend:    q.backend,
				Subbackend: t.opts.Subbackend,
				Counts:     res.Counts,
				ExpVal:     res.ExpVal,
				TruncErr:   res.TruncErr,
				Extra:      res.Extra,
				Route:      res.Route,
				Timings: Timings{
					QueueMS: float64(t.started.Sub(t.created)) / float64(time.Millisecond),
					ExecMS:  float64(t.finished.Sub(t.started)) / float64(time.Millisecond),
					TotalMS: float64(t.finished.Sub(t.created)) / float64(time.Millisecond),
				},
			}
		}
		close(t.done)
		t.mu.Unlock()
	}
}

// Close drains the queue and stops the workers.
func (q *QPM) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.queue)
	q.mu.Unlock()
	q.workerWG.Wait()
}

// Create registers a circuit+options as a new task without running it.
func (q *QPM) Create(spec CircuitSpec, opts RunOptions) (string, error) {
	if spec.QASM == "" {
		return "", fmt.Errorf("qpm[%s]: empty circuit spec", q.backend)
	}
	id := fmt.Sprintf("%s-%d", q.backend, q.nextID.Add(1))
	t := &task{
		id:      id,
		spec:    spec,
		opts:    opts,
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", fmt.Errorf("qpm[%s]: closed", q.backend)
	}
	q.tasks[id] = t
	q.mu.Unlock()
	return id, nil
}

// Run enqueues a previously created task.
func (q *QPM) Run(id string) error {
	t, err := q.lookup(id)
	if err != nil {
		return err
	}
	select {
	case q.queue <- t:
		return nil
	default:
		return fmt.Errorf("qpm[%s]: queue full", q.backend)
	}
}

// Submit is Create followed by Run.
func (q *QPM) Submit(spec CircuitSpec, opts RunOptions) (string, error) {
	id, err := q.Create(spec, opts)
	if err != nil {
		return "", err
	}
	return id, q.Run(id)
}

// Status returns the task state.
func (q *QPM) Status(id string) (Status, error) {
	t, err := q.lookup(id)
	if err != nil {
		return "", err
	}
	return t.snapshotStatus(), nil
}

// Wait blocks until the task completes and returns its result.
func (q *QPM) Wait(id string) (*Result, error) {
	t, err := q.lookup(id)
	if err != nil {
		return nil, err
	}
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status == StatusFailed {
		return nil, fmt.Errorf("%s", t.errMsg)
	}
	return t.result, nil
}

// Delete removes a completed (or never-run) task.
func (q *QPM) Delete(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[id]
	if !ok {
		return fmt.Errorf("qpm[%s]: unknown task %s", q.backend, id)
	}
	st := t.snapshotStatus()
	if st == StatusRunning {
		return fmt.Errorf("qpm[%s]: task %s is running", q.backend, id)
	}
	delete(q.tasks, id)
	return nil
}

// List returns all task IDs with their states.
func (q *QPM) List() map[string]Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]Status, len(q.tasks))
	for id, t := range q.tasks {
		out[id] = t.snapshotStatus()
	}
	return out
}

func (q *QPM) lookup(id string) (*task, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[id]
	if !ok {
		return nil, fmt.Errorf("qpm[%s]: unknown task %s", q.backend, id)
	}
	return t, nil
}

// ---- DEFw RPC surface -------------------------------------------------

// submitReq is the payload of "create"/"submit" calls.
type submitReq struct {
	Spec CircuitSpec `json:"spec"`
	Opts RunOptions  `json:"opts"`
}

type idMsg struct {
	ID string `json:"id"`
}

type statusMsg struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

// Handle implements defw.Handler, exposing the QPM API over RPC:
// create, run, submit, status, wait, delete, list, capabilities.
func (q *QPM) Handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "create", "submit":
		var req submitReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("qpm[%s]: bad payload: %w", q.backend, err)
		}
		var id string
		var err error
		if method == "create" {
			id, err = q.Create(req.Spec, req.Opts)
		} else {
			id, err = q.Submit(req.Spec, req.Opts)
		}
		if err != nil {
			return nil, err
		}
		return json.Marshal(idMsg{ID: id})
	case "run":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := q.Run(req.ID); err != nil {
			return nil, err
		}
		return json.Marshal(struct{}{})
	case "status":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		st, err := q.Status(req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(statusMsg{ID: req.ID, Status: st})
	case "wait":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		res, err := q.Wait(req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	case "delete":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := q.Delete(req.ID); err != nil {
			return nil, err
		}
		return json.Marshal(struct{}{})
	case "list":
		return json.Marshal(q.List())
	case "capabilities":
		return json.Marshal(q.exec.Capabilities())
	default:
		return nil, fmt.Errorf("qpm[%s]: unknown method %q", q.backend, method)
	}
}
