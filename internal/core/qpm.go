package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qfw/internal/faults"
	"qfw/internal/trace"
)

// task is one circuit-execution job tracked by a QPM.
type task struct {
	id       string
	spec     CircuitSpec
	opts     RunOptions
	deadline time.Time // zero = none; from RunOptions.TimeoutMS at creation

	mu        sync.Mutex
	status    Status
	cancelled bool
	result    *Result
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

func (t *task) snapshotStatus() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// batchTask is one parametric batch: a single transmitted spec plus K
// parameter bindings, fanned across the QRC workers in contiguous chunks
// and reassembled in order.
type batchTask struct {
	id       string
	spec     CircuitSpec
	bindings []Bindings
	opts     RunOptions
	created  time.Time
	deadline time.Time

	mu        sync.Mutex
	status    Status
	cancelled bool
	results   []*Result
	errs      []string
	pending   int
	done      chan struct{}
}

func (bt *batchTask) snapshotStatus() Status {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return bt.status
}

// gradTask is one gradient batch: a single parametric spec plus K bindings,
// evaluated through the backend's GradientExecutor as one work item (the
// adjoint engine fans bindings across its own worker pool).
type gradTask struct {
	id       string
	created  time.Time
	deadline time.Time

	mu        sync.Mutex
	status    Status
	cancelled bool
	results   []GradResult
	errMsg    string
	done      chan struct{}
}

func (gt *gradTask) snapshotStatus() Status {
	gt.mu.Lock()
	defer gt.mu.Unlock()
	return gt.status
}

// QPM is a Quantum Platform Manager service instance for one backend: it
// owns the task queue and circuit lifecycle and dispatches work round-robin
// to its QRC worker threads. Work items are closures, so single tasks and
// batch chunks share the same queue and worker pool.
type QPM struct {
	backend  string
	exec     Executor
	rec      *trace.Recorder
	cache    *ParseCache
	queue    chan func(worker string)
	queueCap int
	nextID   atomic.Int64
	inflight atomic.Int64 // queued + running work items
	busyNS   atomic.Int64 // cumulative worker busy time (utilization source)
	mu       sync.Mutex
	tasks    map[string]*task
	batches  map[string]*batchTask
	grads    map[string]*gradTask
	closed   bool
	quiesced bool
	workers  int
	workerWG sync.WaitGroup
	retry    faults.Policy // guarded by mu; see SetRetryPolicy

	// Resolved metric handles (shared registry, labeled by backend).
	mTasks, mFails, mRetries *trace.Counter
	hQueue, hExec            *trace.Histogram
}

// defaultQueueCap is the QPM task-queue depth (tests shrink it via
// newQPMWithQueueCap to exercise the queue-full path).
const defaultQueueCap = 1024

// NewQPM starts a QPM with the given number of QRC worker threads (the paper
// uses eight per QPM process).
func NewQPM(exec Executor, workers int, rec *trace.Recorder) *QPM {
	return newQPMWithQueueCap(exec, workers, rec, defaultQueueCap)
}

func newQPMWithQueueCap(exec Executor, workers int, rec *trace.Recorder, queueCap int) *QPM {
	if workers <= 0 {
		workers = 8
	}
	if rec == nil {
		rec = trace.NewRecorder()
	}
	if queueCap <= 0 {
		queueCap = defaultQueueCap
	}
	q := &QPM{
		backend:  exec.Name(),
		exec:     exec,
		rec:      rec,
		cache:    NewParseCache(),
		queue:    make(chan func(worker string), queueCap),
		queueCap: queueCap,
		tasks:    make(map[string]*task),
		batches:  make(map[string]*batchTask),
		grads:    make(map[string]*gradTask),
		workers:  workers,
		retry:    DefaultRetryPolicy(),
	}
	met := rec.Metrics()
	q.mTasks = met.Counter(trace.LabeledName("qfw_qpm_tasks_total", "backend", q.backend))
	q.mFails = met.Counter(trace.LabeledName("qfw_qpm_failures_total", "backend", q.backend))
	q.mRetries = met.Counter(trace.LabeledName("qfw_qpm_retries_total", "backend", q.backend))
	q.hQueue = met.Histogram(trace.LabeledName("qfw_qpm_queue_ms", "backend", q.backend))
	q.hExec = met.Histogram(trace.LabeledName("qfw_qpm_exec_ms", "backend", q.backend))
	for w := 0; w < workers; w++ {
		q.workerWG.Add(1)
		go q.qrcWorker(w)
	}
	return q
}

// Backend returns the backend name this QPM serves.
func (q *QPM) Backend() string { return q.backend }

// Workers returns the number of QRC worker threads.
func (q *QPM) Workers() int { return q.workers }

// Capabilities returns the backing executor's capability row without an RPC
// round trip — the serving layer reads it to decide result-cache soundness.
func (q *QPM) Capabilities() Capabilities { return q.exec.Capabilities() }

// Recorder exposes the timing instrumentation.
func (q *QPM) Recorder() *trace.Recorder { return q.rec }

// BusyNS returns the cumulative busy nanoseconds across the QRC workers —
// the source a trace.UtilSampler turns into the backend's utilization
// time series.
func (q *QPM) BusyNS() int64 { return q.busyNS.Load() }

// ParseCount reports how many QASM parses this QPM's spec cache performed
// (only the fallback path for executors without native batch support parses
// at the QPM; batch-native executors parse in their own caches).
func (q *QPM) ParseCount() int64 { return q.cache.Parses() }

// DefaultRetryPolicy is the QPM's per-execution retry: up to three
// attempts at transient failures with millisecond-scale full-jitter
// backoff. Deadline misses and permanent errors are never retried.
func DefaultRetryPolicy() faults.Policy {
	return faults.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// SetRetryPolicy replaces the executor retry policy (MaxAttempts of 1
// disables retrying). Tests and the fault-injection bench use it to
// toggle the recovery machinery; it applies to work submitted afterwards.
func (q *QPM) SetRetryPolicy(p faults.Policy) {
	q.mu.Lock()
	q.retry = p
	q.mu.Unlock()
}

func (q *QPM) retryPolicy() faults.Policy {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.retry
}

// deadlineFor converts RunOptions.TimeoutMS into an absolute deadline
// anchored at submission, so queue wait counts against the budget.
func deadlineFor(created time.Time, opts RunOptions) time.Time {
	if opts.TimeoutMS <= 0 {
		return time.Time{}
	}
	return created.Add(time.Duration(opts.TimeoutMS) * time.Millisecond)
}

// guarded runs one executor call with panic isolation and an optional
// deadline. The call executes on its own goroutine: a panic is recovered
// into a transient error (one crashing element must never take the worker
// or the daemon down), and a call still running at the deadline is
// abandoned — the worker slot frees immediately and the stray goroutine
// ends whenever the executor returns; its result is discarded. An
// already-expired deadline fails fast without touching the backend.
func guarded[T any](deadline time.Time, what string, call func() (T, error)) (T, error) {
	var zero T
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return zero, fmt.Errorf("%s: %w (expired before execution)", what, ErrDeadlineExceeded)
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				var z T
				// Recovered panics are classified transient: the isolation
				// already contained the blast radius, and a bounded re-attempt
				// on fresh state is exactly the graceful-degradation contract.
				// A deterministic panic still fails after MaxAttempts.
				ch <- outcome{z, fmt.Errorf("%s: %w: executor panic: %v", what, faults.ErrTransient, p)}
			}
		}()
		v, err := call()
		ch <- outcome{v, err}
	}()
	if deadline.IsZero() {
		out := <-ch
		return out.v, out.err
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.v, out.err
	case <-timer.C:
		return zero, fmt.Errorf("%s: %w (executor abandoned)", what, ErrDeadlineExceeded)
	}
}

// execGuarded is one single-circuit execution under the full fault
// envelope: panic isolation, deadline, and transient retry. Each attempt
// records an "executor:" span on the worker's row (nesting under the
// caller's "exec:" span in the Chrome trace), and the returned RetryStats
// separate backoff time from execution time in the Timings breakdown.
func (q *QPM) execGuarded(spec CircuitSpec, opts RunOptions, deadline time.Time, what, worker string) (ExecResult, faults.RetryStats, error) {
	var res ExecResult
	rs, err := q.retryPolicy().DoStats(func(int) error {
		finish := q.rec.Span("executor:"+spec.Name, worker)
		defer finish()
		var err error
		res, err = guarded(deadline, what, func() (ExecResult, error) {
			return q.exec.Execute(spec, opts)
		})
		return err
	})
	if rs.Attempts > 1 {
		q.mRetries.Add(int64(rs.Attempts - 1))
	}
	return res, rs, err
}

// qrcWorker is one Quantum Resource Controller thread: it pulls queued work
// items and triggers backend executions (MPI runs for local simulators,
// REST calls for cloud backends). Busy time accumulates per work item for
// the utilization time series.
func (q *QPM) qrcWorker(id int) {
	defer q.workerWG.Done()
	worker := fmt.Sprintf("%s/qrc-%d", q.backend, id)
	for job := range q.queue {
		start := time.Now()
		job(worker)
		q.busyNS.Add(int64(time.Since(start)))
		q.inflight.Add(-1)
	}
}

// enqueue submits a work item without blocking; it fails when the queue is
// full or the QPM is closed or quiesced. The mutex guards against a
// concurrent Close racing the channel send.
func (q *QPM) enqueue(job func(worker string)) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("qpm[%s]: closed", q.backend)
	}
	if q.quiesced {
		return fmt.Errorf("qpm[%s]: %w", q.backend, ErrDraining)
	}
	select {
	case q.queue <- job:
		q.inflight.Add(1)
		return nil
	default:
		return fmt.Errorf("qpm[%s]: queue full", q.backend)
	}
}

// Quiesce closes admission without stopping the workers: subsequent Create
// and Submit* calls fail with ErrDraining while already-queued work keeps
// executing. It is the first half of a graceful drain.
func (q *QPM) Quiesce() {
	q.mu.Lock()
	q.quiesced = true
	q.mu.Unlock()
}

// Pending reports how many work items are queued or running.
func (q *QPM) Pending() int64 { return q.inflight.Load() }

// Drain quiesces the QPM and waits up to timeout for in-flight work to
// finish, reporting whether the queue fully drained. It does not stop the
// workers — Close still applies afterwards.
func (q *QPM) Drain(timeout time.Duration) bool {
	q.Quiesce()
	deadline := time.Now().Add(timeout)
	for q.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// runTask executes one single-circuit task on a QRC worker.
func (q *QPM) runTask(t *task, worker string) {
	t.mu.Lock()
	if t.cancelled {
		// Deleted while queued: the work item reaches a worker but must not
		// trigger a backend execution.
		t.status = StatusFailed
		t.errMsg = "cancelled"
		close(t.done)
		t.mu.Unlock()
		return
	}
	t.status = StatusRunning
	t.started = time.Now()
	t.mu.Unlock()

	finish := q.rec.Span("exec:"+t.spec.Name, worker)
	res, rs, err := q.execGuarded(t.spec, t.opts, t.deadline, "exec:"+t.spec.Name, worker)
	finish()

	t.mu.Lock()
	t.finished = time.Now()
	if err != nil {
		t.status = StatusFailed
		t.errMsg = err.Error()
		q.mFails.Inc()
	} else {
		t.status = StatusDone
		tm := taskTimings(t.created, t.started, t.finished, rs)
		q.observeTimings(tm)
		t.result = &Result{
			TaskID:     t.id,
			Backend:    q.backend,
			Subbackend: t.opts.Subbackend,
			Counts:     res.Counts,
			ExpVal:     res.ExpVal,
			TruncErr:   res.TruncErr,
			Extra:      res.Extra,
			Route:      res.Route,
			Timings:    tm,
		}
	}
	close(t.done)
	t.mu.Unlock()
}

// taskTimings assembles the breakdown of one executed work item: queue
// wait, execution wall time with retry backoff split out, and the total
// as the exact component sum (so clients can always reconcile the parts
// against the whole).
func taskTimings(created, started, finished time.Time, rs faults.RetryStats) Timings {
	const ms = float64(time.Millisecond)
	queue := float64(started.Sub(created)) / ms
	backoff := float64(rs.Backoff) / ms
	exec := float64(finished.Sub(started))/ms - backoff
	if exec < 0 {
		exec = 0
	}
	tm := Timings{QueueMS: queue, ExecMS: exec, RetryBackoffMS: backoff, Attempts: rs.Attempts}
	tm.TotalMS = tm.Sum()
	return tm
}

// observeTimings feeds one completed work item into the latency
// histograms and task counter.
func (q *QPM) observeTimings(tm Timings) {
	q.mTasks.Inc()
	q.hQueue.Observe(tm.QueueMS)
	q.hExec.Observe(tm.ExecMS)
}

// Close drains the queue and stops the workers.
func (q *QPM) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	close(q.queue)
	q.mu.Unlock()
	q.workerWG.Wait()
}

// Create registers a circuit+options as a new task without running it.
func (q *QPM) Create(spec CircuitSpec, opts RunOptions) (string, error) {
	if spec.QASM == "" {
		return "", fmt.Errorf("qpm[%s]: empty circuit spec", q.backend)
	}
	id := fmt.Sprintf("%s-%d", q.backend, q.nextID.Add(1))
	created := time.Now()
	t := &task{
		id:       id,
		spec:     spec,
		opts:     opts,
		deadline: deadlineFor(created, opts),
		status:   StatusQueued,
		created:  created,
		done:     make(chan struct{}),
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", fmt.Errorf("qpm[%s]: closed", q.backend)
	}
	if q.quiesced {
		q.mu.Unlock()
		return "", fmt.Errorf("qpm[%s]: %w", q.backend, ErrDraining)
	}
	q.tasks[id] = t
	q.mu.Unlock()
	return id, nil
}

// Run enqueues a previously created task.
func (q *QPM) Run(id string) error {
	t, err := q.lookup(id)
	if err != nil {
		return err
	}
	return q.enqueue(func(worker string) { q.runTask(t, worker) })
}

// Submit is Create followed by Run.
func (q *QPM) Submit(spec CircuitSpec, opts RunOptions) (string, error) {
	id, err := q.Create(spec, opts)
	if err != nil {
		return "", err
	}
	return id, q.Run(id)
}

// SubmitBatch registers and enqueues one parametric batch: a single spec
// plus K bindings. Batch-native executors receive the whole batch as one
// work item (so e.g. the cloud backend really maps it onto one REST job
// array and parallelism is the executor's choice); executors without batch
// support are fanned across the QRC workers in contiguous chunks. Results
// come back ordered via WaitBatch. Chunks that cannot be enqueued (queue
// full) fail their elements instead of failing the whole batch.
func (q *QPM) SubmitBatch(spec CircuitSpec, bindings []Bindings, opts RunOptions) (string, error) {
	if spec.QASM == "" {
		return "", fmt.Errorf("qpm[%s]: empty circuit spec", q.backend)
	}
	if len(bindings) == 0 {
		return "", fmt.Errorf("qpm[%s]: empty batch", q.backend)
	}
	id := fmt.Sprintf("%s-batch-%d", q.backend, q.nextID.Add(1))
	k := len(bindings)
	nchunks := 1
	if _, ok := q.exec.(BatchExecutor); !ok {
		nchunks = q.workers
		if nchunks > k {
			nchunks = k
		}
	}
	created := time.Now()
	bt := &batchTask{
		id:       id,
		spec:     spec,
		bindings: bindings,
		opts:     opts,
		created:  created,
		deadline: deadlineFor(created, opts),
		status:   StatusQueued,
		results:  make([]*Result, k),
		errs:     make([]string, k),
		pending:  nchunks,
		done:     make(chan struct{}),
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", fmt.Errorf("qpm[%s]: closed", q.backend)
	}
	if q.quiesced {
		q.mu.Unlock()
		return "", fmt.Errorf("qpm[%s]: %w", q.backend, ErrDraining)
	}
	q.batches[id] = bt
	q.mu.Unlock()
	for w := 0; w < nchunks; w++ {
		lo, hi := w*k/nchunks, (w+1)*k/nchunks
		if err := q.enqueue(func(worker string) { q.runBatchChunk(bt, lo, hi, worker) }); err != nil {
			for i := lo; i < hi; i++ {
				bt.errs[i] = err.Error()
			}
			q.finishChunk(bt)
		}
	}
	return id, nil
}

// runBatchChunk executes bindings[lo:hi] of a batch on one QRC worker:
// batch-native executors get the whole chunk in one call (rebinding into
// their cached parse per element); plain executors fall back to bind →
// serialize → Execute per element through the QPM's own parse cache.
func (q *QPM) runBatchChunk(bt *batchTask, lo, hi int, worker string) {
	bt.mu.Lock()
	if bt.cancelled {
		// The batch was deleted while this chunk sat in the queue: fail its
		// elements without touching the backend.
		for i := lo; i < hi; i++ {
			bt.errs[i] = "cancelled"
		}
		bt.mu.Unlock()
		q.finishChunk(bt)
		return
	}
	if bt.status == StatusQueued {
		bt.status = StatusRunning
	}
	bt.mu.Unlock()
	started := time.Now()
	finish := q.rec.Span(fmt.Sprintf("exec-batch:%s[%d:%d]", bt.spec.Name, lo, hi), worker)
	defer func() {
		finish()
		q.finishChunk(bt)
	}()
	sub := bt.bindings[lo:hi]
	// Element seeds are globally indexed: the chunk base offset keeps seeds
	// identical to a serial loop over the full batch.
	chunkOpts := bt.opts.ForElement(lo)
	if be, ok := q.exec.(BatchExecutor); ok {
		execFinish := q.rec.Span("executor:"+bt.spec.Name, worker)
		results, err := guarded(bt.deadline, fmt.Sprintf("exec-batch:%s[%d:%d]", bt.spec.Name, lo, hi), func() ([]ExecResult, error) {
			return be.ExecuteBatch(bt.spec, sub, chunkOpts)
		})
		execFinish()
		elapsed := time.Since(started)
		if err == nil && len(results) != len(sub) {
			err = fmt.Errorf("qpm[%s]: batch executor returned %d results for %d bindings", q.backend, len(results), len(sub))
		}
		if err != nil {
			// A failing chunk degrades to element-isolated re-execution: each
			// binding retries as its own single-element batch, so one bad
			// element costs only itself instead of aborting every slot.
			q.runElements(bt, be, lo, hi, worker)
			return
		}
		perElem := elapsed / time.Duration(len(sub))
		for i, res := range results {
			bt.results[lo+i] = q.batchResult(bt, lo+i, res, started, perElem, faults.RetryStats{Attempts: 1})
		}
		return
	}
	base, err := q.cache.Get(bt.spec)
	if err != nil {
		for i := range sub {
			bt.errs[lo+i] = err.Error()
		}
		return
	}
	for i, b := range sub {
		bound := base.Bind(b)
		spec, err := SpecFromCircuit(bound)
		if err != nil {
			bt.errs[lo+i] = err.Error()
			continue
		}
		elemStart := time.Now()
		res, rs, err := q.execGuarded(spec, chunkOpts.ForElement(i), bt.deadline, fmt.Sprintf("exec-batch:%s[%d]", bt.spec.Name, lo+i), worker)
		if err != nil {
			bt.errs[lo+i] = err.Error()
			continue
		}
		bt.results[lo+i] = q.batchResult(bt, lo+i, res, elemStart, time.Since(elemStart), rs)
	}
}

// runElements is the degraded path after a batch-native chunk failure:
// bindings[lo:hi] re-execute as single-element batches, each under its own
// retry envelope. Seeds stay globally indexed (ForElement(g) here equals
// base+lo+i on the whole-chunk path), so elements that recover produce
// bit-identical results to a clean run; elements that keep failing record
// only their own error.
func (q *QPM) runElements(bt *batchTask, be BatchExecutor, lo, hi int, worker string) {
	retry := q.retryPolicy()
	for g := lo; g < hi; g++ {
		elemOpts := bt.opts.ForElement(g)
		elemStart := time.Now()
		var res ExecResult
		rs, err := retry.DoStats(func(int) error {
			finish := q.rec.Span("executor:"+bt.spec.Name, worker)
			defer finish()
			results, err := guarded(bt.deadline, fmt.Sprintf("exec-batch:%s[%d]", bt.spec.Name, g), func() ([]ExecResult, error) {
				return be.ExecuteBatch(bt.spec, bt.bindings[g:g+1], elemOpts)
			})
			if err != nil {
				return err
			}
			if len(results) != 1 {
				return fmt.Errorf("qpm[%s]: batch executor returned %d results for 1 binding", q.backend, len(results))
			}
			res = results[0]
			return nil
		})
		if rs.Attempts > 1 {
			q.mRetries.Add(int64(rs.Attempts - 1))
		}
		if err != nil {
			bt.errs[g] = err.Error()
			continue
		}
		bt.results[g] = q.batchResult(bt, g, res, elemStart, time.Since(elemStart), rs)
	}
}

// batchResult marshals one batch element's ExecResult into the unified
// format. ExecMS for batch-native chunks is the chunk mean (elements share
// one executor call); retry backoff is split out of it so TotalMS is the
// exact sum of the reported components.
func (q *QPM) batchResult(bt *batchTask, idx int, res ExecResult, started time.Time, exec time.Duration, rs faults.RetryStats) *Result {
	tm := taskTimings(bt.created, started, started.Add(exec), rs)
	q.observeTimings(tm)
	return &Result{
		TaskID:     fmt.Sprintf("%s#%d", bt.id, idx),
		Backend:    q.backend,
		Subbackend: bt.opts.Subbackend,
		Counts:     res.Counts,
		ExpVal:     res.ExpVal,
		TruncErr:   res.TruncErr,
		Extra:      res.Extra,
		Route:      res.Route,
		Timings:    tm,
	}
}

// SubmitGradient registers and enqueues one gradient batch. The backend
// must implement GradientExecutor — callers probe Capabilities.Gradients
// first; a submit against a non-differentiating backend fails immediately
// rather than queueing doomed work.
func (q *QPM) SubmitGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) (string, error) {
	ge, ok := q.exec.(GradientExecutor)
	if !ok {
		return "", fmt.Errorf("qpm[%s]: backend does not support gradient execution", q.backend)
	}
	if spec.QASM == "" {
		return "", fmt.Errorf("qpm[%s]: empty circuit spec", q.backend)
	}
	if len(bindings) == 0 {
		return "", fmt.Errorf("qpm[%s]: empty gradient batch", q.backend)
	}
	id := fmt.Sprintf("%s-grad-%d", q.backend, q.nextID.Add(1))
	created := time.Now()
	gt := &gradTask{id: id, created: created, deadline: deadlineFor(created, opts), status: StatusQueued, done: make(chan struct{})}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", fmt.Errorf("qpm[%s]: closed", q.backend)
	}
	if q.quiesced {
		q.mu.Unlock()
		return "", fmt.Errorf("qpm[%s]: %w", q.backend, ErrDraining)
	}
	q.grads[id] = gt
	q.mu.Unlock()
	err := q.enqueue(func(worker string) {
		gt.mu.Lock()
		if gt.cancelled {
			gt.status = StatusFailed
			gt.errMsg = "cancelled"
			close(gt.done)
			gt.mu.Unlock()
			return
		}
		gt.status = StatusRunning
		gt.mu.Unlock()
		started := time.Now()
		finish := q.rec.Span("exec-grad:"+spec.Name, worker)
		var results []GradResult
		rs, err := q.retryPolicy().DoStats(func(int) error {
			attemptFinish := q.rec.Span("executor:"+spec.Name, worker)
			defer attemptFinish()
			var err error
			results, err = guarded(gt.deadline, "exec-grad:"+spec.Name, func() ([]GradResult, error) {
				return ge.ExecuteGradient(spec, bindings, opts)
			})
			return err
		})
		finish()
		if rs.Attempts > 1 {
			q.mRetries.Add(int64(rs.Attempts - 1))
		}
		gt.mu.Lock()
		if err != nil {
			gt.status = StatusFailed
			gt.errMsg = err.Error()
			q.mFails.Inc()
		} else {
			gt.status = StatusDone
			gt.results = results
			q.observeTimings(taskTimings(gt.created, started, time.Now(), rs))
		}
		close(gt.done)
		gt.mu.Unlock()
	})
	if err != nil {
		gt.mu.Lock()
		gt.status = StatusFailed
		gt.errMsg = err.Error()
		close(gt.done)
		gt.mu.Unlock()
	}
	return id, nil
}

// WaitGradient blocks until the gradient batch completes and returns the
// ordered per-binding results.
func (q *QPM) WaitGradient(id string) ([]GradResult, error) {
	return q.WaitGradientCtx(context.Background(), id)
}

// WaitGradientCtx is WaitGradient with caller-side cancellation: when ctx
// ends first the wait returns ctx's error while the work item keeps
// running (use Delete on an expired deadline to reclaim the slot).
func (q *QPM) WaitGradientCtx(ctx context.Context, id string) ([]GradResult, error) {
	q.mu.Lock()
	gt, ok := q.grads[id]
	q.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("qpm[%s]: unknown gradient task %s", q.backend, id)
	}
	select {
	case <-gt.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("qpm[%s]: wait %s: %w", q.backend, id, ctx.Err())
	}
	gt.mu.Lock()
	defer gt.mu.Unlock()
	if gt.status == StatusFailed {
		return nil, fmt.Errorf("%s", gt.errMsg)
	}
	return gt.results, nil
}

func (q *QPM) finishChunk(bt *batchTask) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	bt.pending--
	if bt.pending > 0 {
		return
	}
	bt.status = StatusDone
	var failed int64
	for _, e := range bt.errs {
		if e != "" {
			failed++
		}
	}
	if failed > 0 {
		bt.status = StatusFailed
		q.mFails.Add(failed)
	}
	close(bt.done)
}

// WaitBatch blocks until every element of the batch completes and returns
// the ordered results plus per-element error strings ("" for success).
func (q *QPM) WaitBatch(id string) ([]*Result, []string, error) {
	return q.WaitBatchCtx(context.Background(), id)
}

// WaitBatchCtx is WaitBatch with caller-side cancellation.
func (q *QPM) WaitBatchCtx(ctx context.Context, id string) ([]*Result, []string, error) {
	bt, err := q.lookupBatch(id)
	if err != nil {
		return nil, nil, err
	}
	select {
	case <-bt.done:
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("qpm[%s]: wait %s: %w", q.backend, id, ctx.Err())
	}
	return bt.results, bt.errs, nil
}

// Status returns the task (or batch / gradient batch) state.
func (q *QPM) Status(id string) (Status, error) {
	q.mu.Lock()
	t, ok := q.tasks[id]
	bt, bok := q.batches[id]
	gt, gok := q.grads[id]
	q.mu.Unlock()
	switch {
	case ok:
		return t.snapshotStatus(), nil
	case bok:
		return bt.snapshotStatus(), nil
	case gok:
		return gt.snapshotStatus(), nil
	}
	return "", fmt.Errorf("qpm[%s]: unknown task %s", q.backend, id)
}

// Wait blocks until the task completes and returns its result.
func (q *QPM) Wait(id string) (*Result, error) {
	return q.WaitCtx(context.Background(), id)
}

// WaitCtx is Wait with caller-side cancellation.
func (q *QPM) WaitCtx(ctx context.Context, id string) (*Result, error) {
	t, err := q.lookup(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-t.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("qpm[%s]: wait %s: %w", q.backend, id, ctx.Err())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status == StatusFailed {
		return nil, fmt.Errorf("%s", t.errMsg)
	}
	return t.result, nil
}

// deadlinePassed reports whether a work item's deadline exists and has
// expired — the one case where deleting a "running" item is safe: the
// guarded execution has already abandoned the backend call (or is about
// to), so removing the bookkeeping cannot orphan a live result.
func deadlinePassed(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

// Delete removes a completed (or never-run) task or batch. Deleting a
// queued item cancels it: its work items still pass through the QRC queue
// but are dropped at the worker instead of executing. Running items refuse
// deletion — the execution cannot be recalled from the backend — unless
// their deadline has already passed, in which case the executor has been
// abandoned and the entry would otherwise sit orphaned in the task table.
func (q *QPM) Delete(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t, ok := q.tasks[id]; ok {
		t.mu.Lock()
		if t.status == StatusRunning && !deadlinePassed(t.deadline) {
			t.mu.Unlock()
			return fmt.Errorf("qpm[%s]: task %s is running", q.backend, id)
		}
		if t.status == StatusQueued || t.status == StatusRunning {
			t.cancelled = true
		}
		t.mu.Unlock()
		delete(q.tasks, id)
		return nil
	}
	if bt, ok := q.batches[id]; ok {
		bt.mu.Lock()
		if bt.status == StatusRunning && !deadlinePassed(bt.deadline) {
			bt.mu.Unlock()
			return fmt.Errorf("qpm[%s]: batch %s is running", q.backend, id)
		}
		if bt.status == StatusQueued || bt.status == StatusRunning {
			bt.cancelled = true
		}
		bt.mu.Unlock()
		delete(q.batches, id)
		return nil
	}
	if gt, ok := q.grads[id]; ok {
		gt.mu.Lock()
		if gt.status == StatusRunning && !deadlinePassed(gt.deadline) {
			gt.mu.Unlock()
			return fmt.Errorf("qpm[%s]: gradient batch %s is running", q.backend, id)
		}
		if gt.status == StatusQueued || gt.status == StatusRunning {
			gt.cancelled = true
		}
		gt.mu.Unlock()
		delete(q.grads, id)
		return nil
	}
	return fmt.Errorf("qpm[%s]: unknown task %s", q.backend, id)
}

// List returns all task and batch IDs with their states.
func (q *QPM) List() map[string]Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]Status, len(q.tasks)+len(q.batches)+len(q.grads))
	for id, t := range q.tasks {
		out[id] = t.snapshotStatus()
	}
	for id, bt := range q.batches {
		out[id] = bt.snapshotStatus()
	}
	for id, gt := range q.grads {
		out[id] = gt.snapshotStatus()
	}
	return out
}

func (q *QPM) lookup(id string) (*task, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[id]
	if !ok {
		return nil, fmt.Errorf("qpm[%s]: unknown task %s", q.backend, id)
	}
	return t, nil
}

func (q *QPM) lookupBatch(id string) (*batchTask, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	bt, ok := q.batches[id]
	if !ok {
		return nil, fmt.Errorf("qpm[%s]: unknown batch %s", q.backend, id)
	}
	return bt, nil
}

// ---- DEFw RPC surface -------------------------------------------------

// submitReq is the payload of "create"/"submit" calls.
type submitReq struct {
	Spec CircuitSpec `json:"spec"`
	Opts RunOptions  `json:"opts"`
}

// batchSubmitReq is the payload of "submit_batch": one spec, K bindings.
type batchSubmitReq struct {
	Spec     CircuitSpec `json:"spec"`
	Bindings []Bindings  `json:"bindings"`
	Opts     RunOptions  `json:"opts"`
}

// batchWaitResp is the reply of "wait_batch": ordered results with parallel
// per-element error strings ("" for success, nil Result on failure).
type batchWaitResp struct {
	Results []*Result `json:"results"`
	Errs    []string  `json:"errs,omitempty"`
}

// gradWaitResp is the reply of "wait_grad": one GradResult per binding.
type gradWaitResp struct {
	Results []GradResult `json:"results"`
}

type idMsg struct {
	ID string `json:"id"`
}

type statusMsg struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

// Handle implements defw.Handler, exposing the QPM API over RPC: create,
// run, submit, submit_batch, submit_grad, status, wait, wait_batch,
// wait_grad, delete, list, capabilities.
func (q *QPM) Handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "create", "submit":
		var req submitReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("qpm[%s]: bad payload: %w", q.backend, err)
		}
		var id string
		var err error
		if method == "create" {
			id, err = q.Create(req.Spec, req.Opts)
		} else {
			id, err = q.Submit(req.Spec, req.Opts)
		}
		if err != nil {
			return nil, err
		}
		return json.Marshal(idMsg{ID: id})
	case "submit_batch":
		var req batchSubmitReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("qpm[%s]: bad payload: %w", q.backend, err)
		}
		id, err := q.SubmitBatch(req.Spec, req.Bindings, req.Opts)
		if err != nil {
			return nil, err
		}
		return json.Marshal(idMsg{ID: id})
	case "wait_batch":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		results, errs, err := q.WaitBatch(req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(batchWaitResp{Results: results, Errs: errs})
	case "submit_grad":
		var req batchSubmitReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("qpm[%s]: bad payload: %w", q.backend, err)
		}
		id, err := q.SubmitGradient(req.Spec, req.Bindings, req.Opts)
		if err != nil {
			return nil, err
		}
		return json.Marshal(idMsg{ID: id})
	case "wait_grad":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		results, err := q.WaitGradient(req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(gradWaitResp{Results: results})
	case "run":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := q.Run(req.ID); err != nil {
			return nil, err
		}
		return json.Marshal(struct{}{})
	case "status":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		st, err := q.Status(req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(statusMsg{ID: req.ID, Status: st})
	case "wait":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		res, err := q.Wait(req.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	case "delete":
		var req idMsg
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		if err := q.Delete(req.ID); err != nil {
			return nil, err
		}
		return json.Marshal(struct{}{})
	case "list":
		return json.Marshal(q.List())
	case "capabilities":
		return json.Marshal(q.exec.Capabilities())
	default:
		return nil, fmt.Errorf("qpm[%s]: unknown method %q", q.backend, method)
	}
}
