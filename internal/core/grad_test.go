package core

import (
	"strings"
	"sync"
	"testing"

	"qfw/internal/circuit"
)

// gradExec extends the batch fake with a gradient capability: the
// "gradient" of the 1-parameter test ansatz is just the binding value
// echoed back, which makes ordering and plumbing observable.
type gradExec struct {
	*paramExec
	mu        sync.Mutex
	gradCalls int
}

func newGradExec(name string) *gradExec { return &gradExec{paramExec: newParamExec(name)} }

func (g *gradExec) Capabilities() Capabilities {
	return Capabilities{Backend: g.name, Subbackends: []string{"default"}, Gradients: true}
}

func (g *gradExec) ExecuteGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]GradResult, error) {
	g.mu.Lock()
	g.gradCalls++
	g.mu.Unlock()
	base, gplan, err := g.cache.GetGrad(spec)
	if err != nil {
		return nil, err
	}
	_ = base
	out := make([]GradResult, len(bindings))
	for i, b := range bindings {
		grad := make([]float64, len(gplan.Params()))
		for j, name := range gplan.Params() {
			grad[j] = 2 * b[name]
		}
		out[i] = GradResult{Value: b[gplan.Params()[0]], Grad: grad}
	}
	return out, nil
}

func TestQPMGradientRPC(t *testing.T) {
	exec := newGradExec("gradback")
	qpm := NewQPM(exec, 2, nil)
	defer qpm.Close()
	spec, err := SpecFromParametric(parametricAnsatz(t))
	if err != nil {
		t.Fatal(err)
	}
	bindings := []Bindings{{"theta": 0.25}, {"theta": -1.5}}
	id, err := qpm.SubmitGradient(spec, bindings, RunOptions{Observable: &Observable{Fields: []float64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := qpm.WaitGradient(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d, want 2", len(results))
	}
	if results[0].Value != 0.25 || results[1].Value != -1.5 {
		t.Fatalf("order lost: %+v", results)
	}
	if results[1].Grad[0] != -3 {
		t.Fatalf("gradient plumbing lost: %+v", results[1])
	}
	// Lifecycle integration: the gradient task is visible and deletable.
	if st, err := qpm.Status(id); err != nil || st != StatusDone {
		t.Fatalf("status %v %v", st, err)
	}
	if _, ok := qpm.List()[id]; !ok {
		t.Fatal("gradient task missing from List")
	}
	if err := qpm.Delete(id); err != nil {
		t.Fatal(err)
	}
}

func TestQPMGradientRejectsNonGradientBackend(t *testing.T) {
	qpm := NewQPM(newParamExec("plain"), 1, nil)
	defer qpm.Close()
	spec, _ := SpecFromParametric(parametricAnsatz(t))
	_, err := qpm.SubmitGradient(spec, []Bindings{{"theta": 1}}, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "gradient") {
		t.Fatalf("expected gradient-unsupported error, got %v", err)
	}
}

func TestParseCacheGetGradSingleFlight(t *testing.T) {
	pc := NewParseCache()
	c := circuit.New(2)
	c.RX(0, circuit.Sym("a", 1)).CX(0, 1).MeasureAll()
	spec, err := SpecFromParametric(c)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := pc.GetGrad(spec); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if pc.Grads() != 1 {
		t.Fatalf("gradient plans built %d, want 1", pc.Grads())
	}
	if pc.Parses() != 1 {
		t.Fatalf("parses %d, want 1", pc.Parses())
	}
	// The gradient plan coexists with the ordinary fused plan on one entry.
	if _, _, err := pc.GetFused(spec); err != nil {
		t.Fatal(err)
	}
	if pc.Len() != 1 {
		t.Fatalf("cache entries %d, want 1", pc.Len())
	}
}

func TestCapabilitiesGradientSubScoping(t *testing.T) {
	caps := Capabilities{Gradients: true, GradientSubs: []string{"statevector", "automatic"}}
	for sub, want := range map[string]bool{
		"":                     true,
		"statevector":          true,
		"Automatic":            true,
		"matrix_product_state": false,
	} {
		if got := caps.SupportsGradientSub(sub); got != want {
			t.Errorf("sub %q: got %v want %v", sub, got, want)
		}
	}
	if (Capabilities{}).SupportsGradientSub("") {
		t.Error("gradient-less capability row must report false")
	}
	all := Capabilities{Gradients: true}
	if !all.SupportsGradientSub("anything") {
		t.Error("empty GradientSubs must cover every sub-backend")
	}
}
