package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/defw"
	"qfw/internal/trace"
)

// fakeExec counts executions and can be told to fail, stall, or echo.
type fakeExec struct {
	name  string
	mu    sync.Mutex
	calls int
	delay time.Duration
	fail  bool
}

func (f *fakeExec) Name() string { return f.name }
func (f *fakeExec) Capabilities() Capabilities {
	return Capabilities{Backend: f.name, Subbackends: []string{"default"}, CPU: true}
}
func (f *fakeExec) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.fail {
		return ExecResult{}, fmt.Errorf("fake failure")
	}
	return ExecResult{Counts: map[string]int{"00": opts.Shots}}, nil
}
func (f *fakeExec) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func bell(t *testing.T) CircuitSpec {
	t.Helper()
	c := circuit.New(2)
	c.H(0).CX(0, 1).MeasureAll()
	c.Name = "bell"
	spec, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSpecRoundTrip(t *testing.T) {
	spec := bell(t)
	c, err := spec.Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 2 || len(c.Gates) != 4 {
		t.Fatalf("round trip wrong: %d qubits %d gates", c.NQubits, len(c.Gates))
	}
	if c.Name != "bell" {
		t.Fatalf("name lost: %q", c.Name)
	}
}

func TestQPMLifecycle(t *testing.T) {
	exec := &fakeExec{name: "fake"}
	q := NewQPM(exec, 2, trace.NewRecorder())
	defer q.Close()
	spec := bell(t)

	id, err := q.Create(spec, RunOptions{Shots: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := q.Status(id); st != StatusQueued {
		t.Fatalf("status %s, want queued", st)
	}
	if err := q.Run(id); err != nil {
		t.Fatal(err)
	}
	res, err := q.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["00"] != 7 || res.Backend != "fake" {
		t.Fatalf("result %+v", res)
	}
	if res.Timings.TotalMS < 0 || res.Timings.ExecMS < 0 {
		t.Fatalf("timings %+v", res.Timings)
	}
	if st, _ := q.Status(id); st != StatusDone {
		t.Fatalf("status %s, want done", st)
	}
	if err := q.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Status(id); err == nil {
		t.Fatal("deleted task still visible")
	}
}

func TestQPMFailurePropagates(t *testing.T) {
	q := NewQPM(&fakeExec{name: "bad", fail: true}, 1, nil)
	defer q.Close()
	id, err := q.Submit(bell(t), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Wait(id); err == nil || !strings.Contains(err.Error(), "fake failure") {
		t.Fatalf("err = %v", err)
	}
	if st, _ := q.Status(id); st != StatusFailed {
		t.Fatalf("status %s", st)
	}
}

func TestQPMConcurrentWorkers(t *testing.T) {
	exec := &fakeExec{name: "slow", delay: 30 * time.Millisecond}
	q := NewQPM(exec, 8, nil)
	defer q.Close()
	spec := bell(t)
	start := time.Now()
	var ids []string
	for i := 0; i < 8; i++ {
		id, err := q.Submit(spec, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := q.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("8 tasks on 8 workers took %v (serialized?)", el)
	}
	if exec.callCount() != 8 {
		t.Fatalf("calls %d", exec.callCount())
	}
}

func TestQPMOverRPC(t *testing.T) {
	q := NewQPM(&fakeExec{name: "rpc"}, 2, nil)
	defer q.Close()
	server := defw.NewServer()
	server.Register(ServiceName("rpc"), q)
	client := defw.NewPipeClient(server)
	defer func() { client.Close(); server.Close() }()

	f, err := NewFrontend(client, Properties{Backend: "rpc", Subbackend: "default"})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(2)
	c.H(0).CX(0, 1).MeasureAll()
	res, err := f.Run(c, RunOptions{Shots: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["00"] != 11 {
		t.Fatalf("counts %v", res.Counts)
	}
	if res.Subbackend != "default" {
		t.Fatalf("subbackend not forwarded from properties: %q", res.Subbackend)
	}
	caps, err := f.Capabilities()
	if err != nil {
		t.Fatal(err)
	}
	if caps.Backend != "rpc" {
		t.Fatalf("caps %+v", caps)
	}
	list, err := f.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("list %v", list)
	}
}

func TestAsyncPendingStatus(t *testing.T) {
	q := NewQPM(&fakeExec{name: "async", delay: 50 * time.Millisecond}, 1, nil)
	defer q.Close()
	server := defw.NewServer()
	server.Register(ServiceName("async"), q)
	client := defw.NewPipeClient(server)
	defer func() { client.Close(); server.Close() }()
	f, _ := NewFrontend(client, Properties{Backend: "async"})
	c := circuit.New(1)
	c.H(0).MeasureAll()
	p, err := f.RunAsync(c, RunOptions{Shots: 3})
	if err != nil {
		t.Fatal(err)
	}
	// While running, status should be queued or running, not done.
	st, err := p.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st == StatusDone {
		t.Fatal("task done implausibly fast")
	}
	res, err := p.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts["00"] != 3 {
		t.Fatalf("counts %v", res.Counts)
	}
}

func TestInfeasibleDetection(t *testing.T) {
	err := Infeasible("state vector of %d qubits", 40)
	if !IsInfeasible(err) {
		t.Fatal("direct detection failed")
	}
	// After crossing an RPC boundary the error is a plain string.
	flat := fmt.Errorf("%s", err.Error())
	if !IsInfeasible(flat) {
		t.Fatal("string detection failed")
	}
	if IsInfeasible(nil) || IsInfeasible(fmt.Errorf("other")) {
		t.Fatal("false positive")
	}
}

func TestUnknownMethodAndBadPayload(t *testing.T) {
	q := NewQPM(&fakeExec{name: "x"}, 1, nil)
	defer q.Close()
	if _, err := q.Handle("nope", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := q.Handle("submit", []byte("not json")); err == nil {
		t.Fatal("bad payload accepted")
	}
	if _, err := q.Create(CircuitSpec{}, RunOptions{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestFrontendRequiresBackend(t *testing.T) {
	if _, err := NewFrontend(nil, Properties{}); err == nil {
		t.Fatal("empty backend accepted")
	}
}
