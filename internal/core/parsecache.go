package core

import (
	"sync"
	"sync/atomic"

	"qfw/internal/circuit"
)

// maxCachedSpecs bounds a ParseCache; a variational workload keeps a
// handful of distinct ansätze alive, so the bound is generous and the
// eviction policy (drop everything) trivially correct.
const maxCachedSpecs = 256

// ParseCache deduplicates QASM parsing by spec hash. Concurrent Get calls
// for the same spec are single-flighted: exactly one parse runs, everyone
// shares the result — the property the batch pipeline's "parse once per
// ansatz" guarantee rests on. Callers must treat the returned circuit as
// immutable (Bind copies, so rebinding batch elements is safe).
type ParseCache struct {
	mu      sync.Mutex
	entries map[string]*parseEntry
	parses  atomic.Int64
}

type parseEntry struct {
	once sync.Once
	c    *circuit.Circuit
	err  error
}

// NewParseCache returns an empty cache.
func NewParseCache() *ParseCache {
	return &ParseCache{entries: make(map[string]*parseEntry)}
}

// Get returns the parsed circuit of the spec, parsing at most once per
// distinct spec content.
func (pc *ParseCache) Get(spec CircuitSpec) (*circuit.Circuit, error) {
	key := spec.Hash()
	pc.mu.Lock()
	e, ok := pc.entries[key]
	if !ok {
		if len(pc.entries) >= maxCachedSpecs {
			pc.entries = make(map[string]*parseEntry)
		}
		e = &parseEntry{}
		pc.entries[key] = e
	}
	pc.mu.Unlock()
	e.once.Do(func() {
		pc.parses.Add(1)
		e.c, e.err = spec.Circuit()
	})
	return e.c, e.err
}

// Parses returns how many real QASM parses the cache has performed — the
// counter the batch acceptance tests assert on.
func (pc *ParseCache) Parses() int64 { return pc.parses.Load() }

// Len returns the number of cached specs.
func (pc *ParseCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}
