package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qfw/internal/circuit"
	"qfw/internal/cost"
)

// maxCachedSpecs bounds a ParseCache; a variational workload keeps a
// handful of distinct ansätze alive, so the bound is generous and the
// eviction policy (drop everything) trivially correct.
const maxCachedSpecs = 256

// ParseCache deduplicates QASM parsing by spec hash. Concurrent Get calls
// for the same spec are single-flighted: exactly one parse runs, everyone
// shares the result — the property the batch pipeline's "parse once per
// ansatz" guarantee rests on. Callers must treat the returned circuit as
// immutable (Bind copies, so rebinding batch elements is safe).
type ParseCache struct {
	mu      sync.Mutex
	entries map[string]*parseEntry
	parses  atomic.Int64
	fusions atomic.Int64
	grads   atomic.Int64
	memos   atomic.Int64
}

type parseEntry struct {
	once sync.Once
	c    *circuit.Circuit
	err  error

	fuseOnce sync.Once
	plan     *circuit.FusionPlan

	gradOnce sync.Once
	gplan    *circuit.GradPlan

	memoMu sync.Mutex
	memos  map[string]*memoEntry
}

// memoEntry is one derived artifact slot of a cached spec; the build is
// single-flighted like the parse itself.
type memoEntry struct {
	once sync.Once
	v    any
	err  error
}

// NewParseCache returns an empty cache.
func NewParseCache() *ParseCache {
	return &ParseCache{entries: make(map[string]*parseEntry)}
}

// entry returns the (possibly fresh) cache slot of the spec with its parse
// completed — the shared core of Get and GetFused.
func (pc *ParseCache) entry(spec CircuitSpec) *parseEntry {
	key := spec.Hash()
	pc.mu.Lock()
	e, ok := pc.entries[key]
	if !ok {
		if len(pc.entries) >= maxCachedSpecs {
			pc.entries = make(map[string]*parseEntry)
		}
		e = &parseEntry{}
		pc.entries[key] = e
	}
	pc.mu.Unlock()
	e.once.Do(func() {
		pc.parses.Add(1)
		e.c, e.err = spec.Circuit()
	})
	return e
}

// Get returns the parsed circuit of the spec, parsing at most once per
// distinct spec content.
func (pc *ParseCache) Get(spec CircuitSpec) (*circuit.Circuit, error) {
	e := pc.entry(spec)
	return e.c, e.err
}

// GetFused returns the parsed circuit plus the gate-fusion plan of its
// measurement-stripped body. The plan depends only on circuit structure, so
// one plan serves every binding of a parametric ansatz: a whole batch fuses
// once. The plan is built against spec.Circuit().StripMeasurements() — the
// exact circuit the state-vector sampling path executes.
func (pc *ParseCache) GetFused(spec CircuitSpec) (*circuit.Circuit, *circuit.FusionPlan, error) {
	e := pc.entry(spec)
	if e.err != nil {
		return nil, nil, e.err
	}
	e.fuseOnce.Do(func() {
		pc.fusions.Add(1)
		e.plan = circuit.PlanFusion(e.c.StripMeasurements())
	})
	return e.c, e.plan, nil
}

// GetStaged returns the parsed circuit, its fusion plan, and the
// cache-blocked tile schedule of the measurement-stripped body at the given
// tile granularity — the staged engine's analog of GetFused, so a batch of
// bindings partitions its stages once per ansatz. A nil schedule (with nil
// error) means the structure cannot be tiled at this granularity (an op
// wider than a tile); callers run the per-op fused path instead. The
// negative result is memoized too: an untileable ansatz is not re-planned
// per batch.
func (pc *ParseCache) GetStaged(spec CircuitSpec, tileBits int) (*circuit.Circuit, *circuit.FusionPlan, *circuit.DistSchedule, error) {
	c, plan, err := pc.GetFused(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	v, err := pc.Memo(spec, fmt.Sprintf("tile-stages-%d", tileBits), func(c *circuit.Circuit) (any, error) {
		sched, err := circuit.PlanTileStages(plan, c.StripMeasurements(), tileBits)
		if err != nil {
			return (*circuit.DistSchedule)(nil), nil
		}
		return sched, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c, plan, v.(*circuit.DistSchedule), nil
}

// GetGrad returns the parsed circuit plus the gradient-aware fusion plan of
// its measurement-stripped body: parametric gates stay differentiable
// boundaries, everything between them fuses. Like the ordinary plan it
// depends only on circuit structure, so one gradient plan serves every
// binding — a whole gradient batch plans once per ansatz.
func (pc *ParseCache) GetGrad(spec CircuitSpec) (*circuit.Circuit, *circuit.GradPlan, error) {
	e := pc.entry(spec)
	if e.err != nil {
		return nil, nil, e.err
	}
	e.gradOnce.Do(func() {
		pc.grads.Add(1)
		e.gplan = circuit.PlanFusionGrad(e.c)
	})
	return e.c, e.gplan, nil
}

// Memo returns (building at most once per distinct spec content) a derived
// artifact of the parsed circuit, keyed by an engine-chosen name. It is the
// extension point for backend-specific compiled forms that core cannot know
// about — the MPS engine caches its routed execution schedule here, so a
// batch of K bindings shares one compiled schedule exactly like the fusion
// plan. Build results must be treated as immutable by callers.
func (pc *ParseCache) Memo(spec CircuitSpec, key string, build func(c *circuit.Circuit) (any, error)) (any, error) {
	e := pc.entry(spec)
	if e.err != nil {
		return nil, e.err
	}
	e.memoMu.Lock()
	if e.memos == nil {
		e.memos = make(map[string]*memoEntry)
	}
	m, ok := e.memos[key]
	if !ok {
		m = &memoEntry{}
		e.memos[key] = m
	}
	e.memoMu.Unlock()
	m.once.Do(func() {
		pc.memos.Add(1)
		m.v, m.err = build(e.c)
	})
	return m.v, m.err
}

// GetFeatures returns the cost-model features of the spec's
// measurement-stripped body, extracted from the cached fusion plan and
// memoized per spec hash — a batched submission computes its routing
// features exactly once, like the parse and the plan.
func (pc *ParseCache) GetFeatures(spec CircuitSpec) (*cost.Features, error) {
	_, plan, err := pc.GetFused(spec)
	if err != nil {
		return nil, err
	}
	v, err := pc.Memo(spec, "cost-features", func(c *circuit.Circuit) (any, error) {
		return cost.Extract(c.StripMeasurements(), plan), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cost.Features), nil
}

// Memos returns how many memoized artifacts the cache has built — asserted
// on by the compile-once-per-batch MPS tests.
func (pc *ParseCache) Memos() int64 { return pc.memos.Load() }

// Parses returns how many real QASM parses the cache has performed — the
// counter the batch acceptance tests assert on.
func (pc *ParseCache) Parses() int64 { return pc.parses.Load() }

// Fusions returns how many fusion plans the cache has built — the fused
// analog of Parses, asserted on by the fuse-once-per-batch tests.
func (pc *ParseCache) Fusions() int64 { return pc.fusions.Load() }

// Grads returns how many gradient plans the cache has built — asserted on
// by the plan-once-per-batch gradient tests.
func (pc *ParseCache) Grads() int64 { return pc.grads.Load() }

// Len returns the number of cached specs.
func (pc *ParseCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}
