// Package core implements the Quantum Framework's orchestration layer — the
// paper's primary contribution. It contains:
//
//   - the standardized circuit/task descriptions exchanged between frontends
//     and backends (CircuitSpec, RunOptions, Result),
//   - the Quantum Platform Manager (QPM): the central dispatcher owning task
//     queues and circuit lifecycle (create / run / status / result / delete),
//   - the Quantum Resource Controller (QRC): the worker threads that launch
//     backend executions across the allocation,
//   - the QFwBackend frontend used by applications, speaking to QPMs over
//     the DEFw RPC layer with synchronous and asynchronous calls,
//   - the batched parametric pipeline (CircuitSpec.Params + Bindings,
//     Frontend.RunBatch, QPM submit_batch/wait_batch, BatchExecutor): one
//     symbolic ansatz ships per optimizer iteration instead of N bound
//     copies, fanned across the QRC workers and parsed once per ansatz via
//     ParseCache,
//   - the deployment bootstrap (Launch) that reproduces the paper's Fig. 1
//     flow: SLURM heterogeneous job → DVM → QPM services → teardown.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"qfw/internal/circuit"
)

// CircuitSpec is the standardized circuit description every backend QPM
// accepts: OpenQASM 2.0 text plus metadata. Using a serialized exchange
// format (rather than in-memory pointers) keeps the frontend and backends
// decoupled exactly as in the paper.
//
// A spec may be parametric: the QASM then contains symbolic gate angles
// (the affine "coeff*name±const" form) and Params lists their names. A
// parametric spec is shipped once per batch and each execution element
// supplies one Bindings assignment — the optimizer iteration transmits the
// ansatz once instead of N bound copies.
type CircuitSpec struct {
	Name    string   `json:"name,omitempty"`
	NQubits int      `json:"nqubits"`
	QASM    string   `json:"qasm"`
	Params  []string `json:"params,omitempty"`
}

// Bindings assigns concrete values to a parametric spec's symbolic
// parameters; one Bindings per batch element.
type Bindings map[string]float64

// SpecFromCircuit serializes a bound circuit.
func SpecFromCircuit(c *circuit.Circuit) (CircuitSpec, error) {
	qasm, err := c.ToQASM()
	if err != nil {
		return CircuitSpec{}, err
	}
	return CircuitSpec{Name: c.Name, NQubits: c.NQubits, QASM: qasm}, nil
}

// SpecFromParametric serializes a circuit keeping symbolic parameters
// unbound — the wire form of batched execution. Bound circuits are accepted
// too and yield an ordinary (non-parametric) spec.
func SpecFromParametric(c *circuit.Circuit) (CircuitSpec, error) {
	qasm, err := c.ToSymbolicQASM()
	if err != nil {
		return CircuitSpec{}, err
	}
	return CircuitSpec{Name: c.Name, NQubits: c.NQubits, QASM: qasm, Params: c.ParamNames()}, nil
}

// IsParametric reports whether the spec carries unbound symbolic parameters.
func (s CircuitSpec) IsParametric() bool { return len(s.Params) > 0 }

// Hash returns a content digest of the spec, the key of the parsed-circuit
// caches: one ansatz hashes identically across every evaluation that ships
// it, so its QASM parse cost is paid once per ansatz rather than once per
// parameter binding.
func (s CircuitSpec) Hash() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d\x00%s", s.NQubits, s.QASM)))
	return hex.EncodeToString(h[:16])
}

// Circuit parses the spec back into the IR.
func (s CircuitSpec) Circuit() (*circuit.Circuit, error) {
	c, err := circuit.ParseQASM(s.QASM)
	if err != nil {
		return nil, err
	}
	c.Name = s.Name
	return c, nil
}

// RunOptions configure one execution request.
type RunOptions struct {
	Shots      int    `json:"shots,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Subbackend string `json:"subbackend,omitempty"`

	// Placement is the (#N, #P) layout from the paper's secondary x-axes.
	Nodes        int `json:"nodes,omitempty"`
	ProcsPerNode int `json:"procs_per_node,omitempty"`

	// MPS/TN engine knobs.
	MaxBond int     `json:"max_bond,omitempty"`
	Cutoff  float64 `json:"cutoff,omitempty"`

	// Observable, when set, asks the backend to also return the expectation
	// value of this diagonal operator over the final state.
	Observable *Observable `json:"observable,omitempty"`

	// TimeoutMS, when positive, is the per-task deadline in milliseconds,
	// counted from submission (queue wait included). A task that misses it
	// fails with ErrDeadlineExceeded; a hung executor is abandoned and its
	// worker slot freed. Riding RunOptions, the deadline crosses the DEFw
	// RPC boundary with every submission.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ForElement derives the options of one batch element: element i of a batch
// gets a distinct deterministic seed, matching the seed schedule a serial
// loop over the same evaluations would have produced.
func (o RunOptions) ForElement(i int) RunOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Seed += int64(i)
	return o
}

// Timings carries the per-task timing instrumentation QFw unifies across
// backends (milliseconds): the full breakdown of where a request's time
// went, populated layer by layer (serving layer, QPM, retry envelope) and
// carried through the DEFw RPCs so clients see it. TotalMS is maintained
// as the exact sum of the component fields (see Sum), so a breakdown
// always accounts for the whole reported latency.
type Timings struct {
	// CacheLookupMS is the serving layer's content-addressed cache probe.
	CacheLookupMS float64 `json:"cache_lookup_ms,omitempty"`
	// CoalesceWaitMS is time spent in the serving layer's admission window
	// and fair-share queue before the element's unit dispatched.
	CoalesceWaitMS float64 `json:"coalesce_wait_ms,omitempty"`
	// QueueMS is time waiting in the QPM queue for a QRC worker.
	QueueMS float64 `json:"queue_ms"`
	// ExecMS is backend execution time (retry backoff excluded; for
	// batch-native chunks it is the chunk mean, elements share one call).
	ExecMS float64 `json:"exec_ms"`
	// RetryBackoffMS is the total backoff slept between retry attempts.
	RetryBackoffMS float64 `json:"retry_backoff_ms,omitempty"`
	// Attempts counts executor attempts (1 = first try succeeded).
	Attempts int `json:"attempts,omitempty"`
	// CacheHit marks results replayed from the serving layer's result
	// cache or deduplicated onto an identical in-flight execution.
	CacheHit bool    `json:"cache_hit,omitempty"`
	TotalMS  float64 `json:"total_ms"`
}

// Sum returns the component total of the breakdown; the layers populating
// Timings set TotalMS to exactly this, so Sum() == TotalMS holds for every
// served result.
func (t Timings) Sum() float64 {
	return t.CacheLookupMS + t.CoalesceWaitMS + t.QueueMS + t.ExecMS + t.RetryBackoffMS
}

// Result is QFw's unified return format.
type Result struct {
	TaskID     string             `json:"task_id"`
	Backend    string             `json:"backend"`
	Subbackend string             `json:"subbackend,omitempty"`
	Counts     map[string]int     `json:"counts,omitempty"`
	ExpVal     *float64           `json:"expval,omitempty"` // set when an Observable was requested
	TruncErr   float64            `json:"trunc_err,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
	Route      string             `json:"route,omitempty"` // "backend/sub (rule)" when auto-routed
	Timings    Timings            `json:"timings"`
}

// Status is the lifecycle state of a QPM task.
type Status string

// Task states.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// ErrInfeasible marks configurations that exceed the platform budget
// (memory, size caps, walltime). The benchmark harness renders these as the
// paper's red-X missing points rather than failures.
var ErrInfeasible = errors.New("infeasible")

// Infeasible wraps a formatted message with ErrInfeasible.
func Infeasible(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInfeasible, fmt.Sprintf(format, args...))
}

// IsInfeasible detects ErrInfeasible even after the error has crossed an
// RPC boundary and been flattened to a string.
func IsInfeasible(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInfeasible) {
		return true
	}
	return strings.Contains(err.Error(), ErrInfeasible.Error())
}

// ErrDraining marks submissions rejected because the service is shutting
// down gracefully: admission is closed while in-flight work finishes.
var ErrDraining = errors.New("draining: admission closed")

// IsDraining detects ErrDraining even after the error has crossed an RPC
// boundary and been flattened to a string.
func IsDraining(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDraining) {
		return true
	}
	return strings.Contains(err.Error(), ErrDraining.Error())
}

// ErrDeadlineExceeded marks tasks that missed their RunOptions.TimeoutMS
// deadline — while queued, mid-execution, or hung in a backend. It is
// permanent by construction: the retry policy never re-attempts it.
var ErrDeadlineExceeded = errors.New("deadline exceeded")

// IsDeadlineExceeded detects ErrDeadlineExceeded even after the error has
// crossed an RPC boundary and been flattened to a string.
func IsDeadlineExceeded(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		return true
	}
	return strings.Contains(err.Error(), ErrDeadlineExceeded.Error())
}

// ErrPending marks sub-backends that are integrated but blocked (Table 1's
// "TTN pending" entry); ErrPlanned marks announced-but-unimplemented ones.
var (
	ErrPending = errors.New("sub-backend pending")
	ErrPlanned = errors.New("sub-backend planned")
)

// ExecResult is what a backend executor returns to the QPM, which then
// marshals it into the unified Result.
type ExecResult struct {
	Counts   map[string]int
	ExpVal   *float64
	TruncErr float64
	Extra    map[string]float64
	Route    string
}

// Coupling is one quadratic term of a diagonal observable.
type Coupling struct {
	I int     `json:"i"`
	J int     `json:"j"`
	V float64 `json:"v"`
}

// PauliTerm is one general Pauli-string term: Coeff * P(Ops), with Ops[q]
// in {'I','X','Y','Z'} for qubit q.
type PauliTerm struct {
	Coeff float64 `json:"coeff"`
	Ops   string  `json:"ops"`
}

// Observable is an observable attached to a run request:
// H = Σ Fields[i] Z_i + Σ Couplings V Z_i Z_j + Σ Paulis Coeff·P.
// Diagonal observables (no Paulis) are evaluable on every backend (exactly
// on local simulators, from counts on the cloud path); general Pauli terms
// need a local simulator backend.
type Observable struct {
	Fields    []float64   `json:"fields"`
	Couplings []Coupling  `json:"couplings,omitempty"`
	Paulis    []PauliTerm `json:"paulis,omitempty"`
}

// IsDiagonal reports whether the observable is computational-basis diagonal
// (evaluable from measurement counts alone). Pauli terms containing only I
// and Z still count as diagonal.
func (o *Observable) IsDiagonal() bool {
	for _, t := range o.Paulis {
		for i := 0; i < len(t.Ops); i++ {
			if t.Ops[i] == 'X' || t.Ops[i] == 'Y' {
				return false
			}
		}
	}
	return true
}

// FromCounts estimates <H> from a measurement histogram (the only option
// for hardware and cloud backends).
func (o *Observable) FromCounts(counts map[string]int) float64 {
	var total int
	var acc float64
	for key, n := range counts {
		acc += float64(n) * o.EnergyOfKey(key)
		total += n
	}
	if total == 0 {
		return 0
	}
	return acc / float64(total)
}

// EnergyOfKey evaluates a diagonal observable on one bitstring key (qubit 0
// is the rightmost character; Z|0> = +|0>). Panics on X/Y Pauli terms —
// callers must check IsDiagonal first.
func (o *Observable) EnergyOfKey(key string) float64 {
	return o.diagonalEnergy(func(q int) float64 {
		if key[len(key)-1-q] == '1' {
			return -1
		}
		return 1
	})
}

// EnergyOfIndex evaluates a diagonal observable on a basis-state index
// (bit q of idx is qubit q).
func (o *Observable) EnergyOfIndex(idx int) float64 {
	return o.diagonalEnergy(func(q int) float64 {
		if idx&(1<<uint(q)) != 0 {
			return -1
		}
		return 1
	})
}

func (o *Observable) diagonalEnergy(z func(q int) float64) float64 {
	var e float64
	for i, f := range o.Fields {
		if f != 0 {
			e += f * z(i)
		}
	}
	for _, c := range o.Couplings {
		e += c.V * z(c.I) * z(c.J)
	}
	for _, t := range o.Paulis {
		v := t.Coeff
		for q := 0; q < len(t.Ops); q++ {
			switch t.Ops[q] {
			case 'Z':
				v *= z(q)
			case 'I':
			default:
				panic("core: non-diagonal Pauli term in diagonal evaluation")
			}
		}
		e += v
	}
	return e
}

// Capabilities describes a backend for Table 1.
type Capabilities struct {
	Backend     string   `json:"backend"`
	Subbackends []string `json:"subbackends"`
	CPU         bool     `json:"cpu"`
	GPU         bool     `json:"gpu"`
	NativeMPI   bool     `json:"native_mpi"`
	Gradients   bool     `json:"gradients,omitempty"` // analytic adjoint gradients available
	// GradientSubs lists the sub-backends the gradient capability covers
	// (empty means every sub-backend). Adjoint differentiation needs dense
	// amplitude access, so e.g. aer differentiates on statevector but not
	// on matrix_product_state or stabilizer.
	GradientSubs []string `json:"gradient_subs,omitempty"`
	// DeterministicSeeded declares that an execution with an explicit
	// RunOptions.Seed is a pure function of (spec, bindings, options): the
	// serving layer's exact-hit result cache is only sound on backends that
	// set it. Local simulators qualify; the cloud path does not (its
	// service-side RNG stream is shared across jobs, so counts depend on
	// global submission order, not the request seed).
	DeterministicSeeded bool   `json:"deterministic_seeded,omitempty"`
	Notes               string `json:"notes"`
}

// SupportsGradientSub reports whether the capability row covers analytic
// gradients on the given sub-backend selection ("" means the backend
// default, which gradient-capable backends always honor).
func (c Capabilities) SupportsGradientSub(sub string) bool {
	if !c.Gradients {
		return false
	}
	if len(c.GradientSubs) == 0 || sub == "" {
		return true
	}
	sub = strings.ToLower(strings.TrimSpace(sub))
	for _, s := range c.GradientSubs {
		if s == sub {
			return true
		}
	}
	return false
}

// Executor is the interface a backend QPM implementation provides: accept a
// standardized circuit description with runtime parameters, execute (via
// PRTE/MPI locally or REST remotely), and marshal results into the unified
// format.
type Executor interface {
	Name() string
	Capabilities() Capabilities
	Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error)
}

// BatchExecutor is the optional batch-native extension of Executor: execute
// one parametric spec under a list of parameter bindings and return ordered
// per-element results. Implementations rebind each element into a cached
// parse of the spec, so the QASM parse cost is paid once per ansatz. The
// QPM probes for this interface and falls back to per-element Execute calls
// when a backend does not provide it.
type BatchExecutor interface {
	Executor
	ExecuteBatch(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]ExecResult, error)
}

// GradResult is the unified return of one gradient evaluation: the exact
// expectation value of the attached observable and its partial derivatives
// ordered by the spec's sorted parameter names.
type GradResult struct {
	Value float64   `json:"value"`
	Grad  []float64 `json:"grad"`
}

// GradientExecutor is the optional differentiation extension of Executor:
// evaluate the observable in opts.Observable and its analytic gradient for
// each binding of a parametric spec. Local state-vector backends implement
// it with the adjoint engine (O(gates) per binding, independent of the
// parameter count); backends without simulator-state access advertise
// Capabilities.Gradients=false and clients fall back to parameter-shift
// batches or derivative-free optimization.
type GradientExecutor interface {
	Executor
	ExecuteGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]GradResult, error)
}
