package core

import (
	"fmt"
	"io"

	"qfw/internal/faults"
)

// FaultyExecutor wraps any executor in a deterministic fault injector —
// the harness the robustness tests and the ablation-faults bench drive
// real execution paths through. Every execution probes the injector with
// a stable per-element key (spec hash + effective seed) before touching
// the wrapped backend, so which elements fail is a pure function of the
// schedule, not of worker interleaving, and a faulted run recovering
// through retries must reproduce the clean run bit for bit.
//
// Launch arms one per backend when the QFW_FAULTS environment schedule is
// set; tests construct them directly around fakes or live executors.
type FaultyExecutor struct {
	inner Executor
	inj   *faults.Injector
	name  string
	cache *ParseCache // per-element fallback when inner lacks batch support
}

// NewFaultyExecutor wraps inner with the injector. The wrapper keeps the
// inner executor's name (WithName overrides it) and capability row.
func NewFaultyExecutor(inner Executor, inj *faults.Injector) *FaultyExecutor {
	return &FaultyExecutor{inner: inner, inj: inj, name: inner.Name(), cache: NewParseCache()}
}

// WithName renames the wrapper (the registrable "faulty" test backend)
// and returns it.
func (f *FaultyExecutor) WithName(name string) *FaultyExecutor {
	f.name = name
	return f
}

// Injector exposes the armed injector (tests read its counters).
func (f *FaultyExecutor) Injector() *faults.Injector { return f.inj }

// Inner exposes the wrapped executor.
func (f *FaultyExecutor) Inner() Executor { return f.inner }

// Name implements Executor.
func (f *FaultyExecutor) Name() string { return f.name }

// Capabilities implements Executor: the inner row under the wrapper's name.
func (f *FaultyExecutor) Capabilities() Capabilities {
	caps := f.inner.Capabilities()
	caps.Backend = f.name
	return caps
}

// Close releases hung injections and closes the inner executor when it
// holds resources (the cloud backend's embedded service).
func (f *FaultyExecutor) Close() error {
	f.inj.Close()
	if closer, ok := f.inner.(io.Closer); ok {
		return closer.Close()
	}
	return nil
}

// elemKey is the stable injection key of one execution element. Seeds are
// normalized through ForElement(0) so an implicit zero seed and its
// explicit default hash identically.
func elemKey(spec CircuitSpec, opts RunOptions, kind string) string {
	return fmt.Sprintf("%s:%s:%d", spec.Hash(), kind, opts.ForElement(0).Seed)
}

// Execute implements Executor.
func (f *FaultyExecutor) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	if err := f.inj.Before(elemKey(spec, opts, "x")); err != nil {
		return ExecResult{}, err
	}
	return f.inner.Execute(spec, opts)
}

// ExecuteBatch implements BatchExecutor. Elements are probed in order and
// the first selected element consumes its injected failure and fails the
// whole chunk — the batch-native failure shape the QPM's element-isolated
// degradation exists for. Re-executed as single-element chunks, the
// already-consumed element passes while untouched marked elements fail
// once more and then recover, so degradation always terminates.
func (f *FaultyExecutor) ExecuteBatch(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]ExecResult, error) {
	for i := range bindings {
		if err := f.inj.Before(elemKey(spec, opts.ForElement(i), "x")); err != nil {
			return nil, fmt.Errorf("batch element %d: %w", i, err)
		}
	}
	if be, ok := f.inner.(BatchExecutor); ok {
		return be.ExecuteBatch(spec, bindings, opts)
	}
	// Inner has no native batch support: replicate the QPM's bind-and-run
	// fallback so the wrapper still satisfies BatchExecutor faithfully.
	base, err := f.cache.Get(spec)
	if err != nil {
		return nil, err
	}
	out := make([]ExecResult, len(bindings))
	for i, b := range bindings {
		bound := base.Bind(b)
		elemSpec, err := SpecFromCircuit(bound)
		if err != nil {
			return nil, fmt.Errorf("batch element %d: %w", i, err)
		}
		if out[i], err = f.inner.Execute(elemSpec, opts.ForElement(i)); err != nil {
			return nil, fmt.Errorf("batch element %d: %w", i, err)
		}
	}
	return out, nil
}

// ExecuteGradient implements GradientExecutor when the inner executor
// does; gradients are one work item, so the batch probes a single key.
func (f *FaultyExecutor) ExecuteGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]GradResult, error) {
	ge, ok := f.inner.(GradientExecutor)
	if !ok {
		return nil, fmt.Errorf("faulty[%s]: inner backend does not support gradient execution", f.name)
	}
	if err := f.inj.Before(elemKey(spec, opts, "grad")); err != nil {
		return nil, err
	}
	return ge.ExecuteGradient(spec, bindings, opts)
}
