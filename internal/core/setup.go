package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"qfw/internal/cluster"
	"qfw/internal/defw"
	"qfw/internal/faults"
	"qfw/internal/prte"
	"qfw/internal/slurm"
	"qfw/internal/trace"
)

// Env is what backend factories receive: the hetgroup-1 resources the QPMs
// execute on.
type Env struct {
	Machine *cluster.Machine
	DVM     *prte.DVM
	Nodes   []*cluster.Node
	Rec     *trace.Recorder

	// MemBudgetBytes caps state-vector style allocations per execution;
	// configurations over budget return ErrInfeasible (the paper's red X).
	MemBudgetBytes int64

	// Cloud knobs for the remote (IonQ) backend.
	CloudLatency     time.Duration
	CloudJitter      time.Duration
	CloudConcurrency int
	Seed             int64
}

// Factory builds one backend executor against the environment.
type Factory func(env *Env) (Executor, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// RegisterBackend adds a backend factory to the global registry; backend
// packages call this from init, and Launch instantiates every registered
// backend (or the subset named in Config.Backends).
func RegisterBackend(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

// RegisteredBackends lists registered backend names, sorted.
func RegisteredBackends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Config describes a full-stack deployment.
type Config struct {
	Machine  *cluster.Machine // default: cluster.Frontier(4)
	AppNodes int              // hetgroup-0 size, default 1
	QFwNodes int              // hetgroup-1 size, default remaining nodes
	Workers  int              // QRC threads per QPM, default 8 (paper)
	Walltime time.Duration    // 0 = unlimited
	Backends []string         // default: every registered backend
	UseTCP   bool             // RPC over TCP loopback instead of in-proc pipes

	MemBudgetBytes   int64 // default 1 GiB
	CloudLatency     time.Duration
	CloudJitter      time.Duration
	CloudConcurrency int
	Seed             int64

	// TraceCap bounds the span recorder's event ring (0 selects
	// trace.DefaultCapacity); older spans are overwritten once full.
	TraceCap int
}

// Session is a running QFw deployment: SLURM job, DVM, QPM services, and
// the RPC endpoint applications connect to.
type Session struct {
	Job   *slurm.Job
	Alloc *slurm.Allocation
	DVM   *prte.DVM
	Rec   *trace.Recorder
	Addr  string // TCP address when UseTCP, "" for pipe transport

	server  *defw.Server
	qpms    []*QPM
	execs   []Executor
	auto    *AutoExecutor
	mu      sync.Mutex
	clients []*defw.Client
	sched   *slurm.Scheduler
	useTCP  bool
	sampler *trace.UtilSampler
}

// Auto returns the session's workload-driven selector (nil when no local
// backend was registered) — tooling uses it to inspect routing decisions
// without going through the RPC layer.
func (s *Session) Auto() *AutoExecutor { return s.auto }

// Launch boots the full stack following the paper's execution flow:
// a SLURM job with two heterogeneous groups is submitted (step 1), the DVM
// and QPM services come up on hetgroup-1 (step 2), and the returned session
// hands out frontends for the application in hetgroup-0 (steps 3-5).
func Launch(cfg Config) (*Session, error) {
	machine := cfg.Machine
	if machine == nil {
		machine = cluster.Frontier(4)
	}
	appNodes := cfg.AppNodes
	if appNodes <= 0 {
		appNodes = 1
	}
	qfwNodes := cfg.QFwNodes
	if qfwNodes <= 0 {
		qfwNodes = len(machine.Nodes) - appNodes
	}
	if qfwNodes <= 0 {
		return nil, fmt.Errorf("core: machine too small for het groups (%d nodes)", len(machine.Nodes))
	}
	sched := slurm.NewScheduler(machine)
	job, err := sched.Submit(slurm.JobReq{
		Name: "qfw",
		HetGroups: []slurm.GroupReq{
			{Name: "hetgroup-0", Nodes: appNodes},
			{Name: "hetgroup-1", Nodes: qfwNodes},
		},
		Walltime: cfg.Walltime,
	})
	if err != nil {
		return nil, err
	}
	alloc, err := job.WaitStart()
	if err != nil {
		return nil, err
	}
	dvm, err := prte.Start(machine, alloc.Group(1))
	if err != nil {
		job.Cancel()
		return nil, err
	}
	traceCap := cfg.TraceCap
	if traceCap <= 0 {
		traceCap = trace.DefaultCapacity
	}
	rec := trace.NewRecorderCap(traceCap)
	memBudget := cfg.MemBudgetBytes
	if memBudget <= 0 {
		memBudget = 1 << 30
	}
	env := &Env{
		Machine:          machine,
		DVM:              dvm,
		Nodes:            alloc.Group(1).Nodes,
		Rec:              rec,
		MemBudgetBytes:   memBudget,
		CloudLatency:     cfg.CloudLatency,
		CloudJitter:      cfg.CloudJitter,
		CloudConcurrency: cfg.CloudConcurrency,
		Seed:             cfg.Seed,
	}
	names := cfg.Backends
	if len(names) == 0 {
		names = RegisteredBackends()
	}
	s := &Session{Job: job, Alloc: alloc, DVM: dvm, Rec: rec, server: defw.NewServer(), sched: sched, useTCP: cfg.UseTCP}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	byName := make(map[string]Executor, len(names))
	for _, name := range names {
		registryMu.RLock()
		factory, ok := registry[name]
		registryMu.RUnlock()
		if !ok {
			s.Teardown()
			return nil, fmt.Errorf("core: backend %q is not registered (have %v)", name, RegisteredBackends())
		}
		exec, err := factory(env)
		if err != nil {
			s.Teardown()
			return nil, fmt.Errorf("core: backend %q failed to start: %w", name, err)
		}
		// An armed QFW_FAULTS schedule wraps every executor in the
		// deterministic injector (unless the factory already did).
		if sched := faults.FromEnv(); sched != nil {
			if _, wrapped := exec.(*FaultyExecutor); !wrapped {
				exec = NewFaultyExecutor(exec, faults.NewInjector(*sched))
			}
		}
		byName[name] = exec
		qpm := NewQPM(exec, workers, rec)
		s.execs = append(s.execs, exec)
		s.qpms = append(s.qpms, qpm)
		s.server.Register(ServiceName(name), qpm)
	}
	// The workload-driven selector (paper future work) fronts the live
	// executors under the reserved name "auto".
	if len(byName) > 0 {
		auto := NewAutoExecutor(byName).WithMemBudget(memBudget)
		s.auto = auto
		qpm := NewQPM(auto, workers, rec)
		s.qpms = append(s.qpms, qpm)
		s.server.Register(ServiceName("auto"), qpm)
	}
	// The recorder doubles as the session's telemetry endpoint: metrics,
	// Chrome-trace dumps, and ring stats are scrapable over the same RPC
	// connection the application already holds.
	s.server.Register(trace.ServiceName, &trace.Service{Rec: rec})
	if cfg.UseTCP {
		addr, err := s.server.ListenTCP("127.0.0.1:0")
		if err != nil {
			s.Teardown()
			return nil, err
		}
		s.Addr = addr
	}
	return s, nil
}

// StartUtilizationSampler begins recording per-backend device-utilization
// time series (gauge qfw_utilization{backend=...}, busy fraction across
// each QPM's QRC workers per window). It returns the sampler so callers
// can add further sources (e.g. serve-layer dispatch lanes); Teardown
// stops it. A second call returns the already-running sampler.
func (s *Session) StartUtilizationSampler(window time.Duration) *trace.UtilSampler {
	s.mu.Lock()
	if s.sampler != nil {
		u := s.sampler
		s.mu.Unlock()
		return u
	}
	u := trace.NewUtilSampler(s.Rec.Metrics(), window)
	s.sampler = u
	s.mu.Unlock()
	for _, q := range s.qpms {
		q := q
		u.Watch(trace.LabeledName("qfw_utilization", "backend", q.Backend()), q.Workers(), q.BusyNS)
	}
	u.Start()
	return u
}

// Scheduler exposes the session's SLURM scheduler (for submitting
// additional jobs in tests and examples).
func (s *Session) Scheduler() *slurm.Scheduler { return s.sched }

// RegisterService exposes an additional handler on the session's DEFw
// endpoint — the hook layers above core (e.g. the multi-tenant serving
// layer) use to register themselves without core importing them.
func (s *Session) RegisterService(name string, h defw.Handler) {
	s.server.Register(name, h)
}

// QPM returns the session's QPM for a backend (nil when absent) so layers
// above core can wrap its queue directly.
func (s *Session) QPM(backend string) *QPM {
	for _, q := range s.qpms {
		if q.Backend() == backend {
			return q
		}
	}
	return nil
}

// Executor returns the live executor behind a backend's QPM (nil when
// absent) — the fault-injection bench wraps it without re-running the
// backend factory.
func (s *Session) Executor(backend string) Executor {
	if q := s.QPM(backend); q != nil {
		return q.exec
	}
	return nil
}

// Drain performs the admission half of a graceful shutdown: every QPM stops
// accepting work immediately, then in-flight tasks get up to timeout to
// finish. It reports whether all queues fully drained; Teardown still
// applies afterwards either way.
func (s *Session) Drain(timeout time.Duration) bool {
	for _, q := range s.qpms {
		q.Quiesce()
	}
	deadline := time.Now().Add(timeout)
	drained := true
	for _, q := range s.qpms {
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		if !q.Drain(remaining) {
			drained = false
		}
	}
	return drained
}

// Backends lists the backends this session serves.
func (s *Session) Backends() []string {
	var names []string
	for _, q := range s.qpms {
		names = append(names, q.Backend())
	}
	sort.Strings(names)
	return names
}

// Connect opens a new DEFw client to the session's services.
func (s *Session) Connect() (*defw.Client, error) {
	var c *defw.Client
	var err error
	if s.useTCP {
		c, err = defw.Dial(s.Addr)
		if err != nil {
			return nil, err
		}
	} else {
		c = defw.NewPipeClient(s.server)
	}
	s.mu.Lock()
	s.clients = append(s.clients, c)
	s.mu.Unlock()
	return c, nil
}

// Frontend connects and wraps a client for the selected backend.
func (s *Session) Frontend(props Properties) (*Frontend, error) {
	found := false
	for _, q := range s.qpms {
		if q.Backend() == props.Backend {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: session has no backend %q (have %v)", props.Backend, s.Backends())
	}
	client, err := s.Connect()
	if err != nil {
		return nil, err
	}
	return NewFrontend(client, props)
}

// Teardown performs the controlled shutdown of Fig. 1 steps 13-14: RPC
// services stop, worker allocations drain, the DVM shuts down, and the
// SLURM job completes.
func (s *Session) Teardown() {
	s.mu.Lock()
	clients := s.clients
	s.clients = nil
	sampler := s.sampler
	s.sampler = nil
	s.mu.Unlock()
	if sampler != nil {
		sampler.Stop()
	}
	for _, c := range clients {
		c.Close()
	}
	if s.server != nil {
		s.server.Close()
	}
	for _, q := range s.qpms {
		q.Close()
	}
	for _, e := range s.execs {
		if closer, ok := e.(io.Closer); ok {
			closer.Close()
		}
	}
	if s.DVM != nil {
		s.DVM.Shutdown()
	}
	if s.Job != nil {
		s.Job.Complete()
	}
}
