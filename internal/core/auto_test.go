package core

import (
	"math"
	"strings"
	"sync"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/cost"
)

// routeSpec builds a spec from a circuit for routing tests.
func routeSpec(t *testing.T, c *circuit.Circuit) CircuitSpec {
	t.Helper()
	spec, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func allFakeExecs() map[string]Executor {
	return map[string]Executor{
		"aer":     &fakeExec{name: "aer"},
		"nwqsim":  &fakeExec{name: "nwqsim"},
		"qtensor": &fakeExec{name: "qtensor"},
		"tnqvm":   &fakeExec{name: "tnqvm"},
		"ionq":    &fakeExec{name: "ionq"},
	}
}

func TestAutoRoutesClifford(t *testing.T) {
	a := NewAutoExecutor(allFakeExecs())
	c := circuit.New(4)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	backend, sub, rule, err := a.RouteFor(routeSpec(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "aer" || sub != "stabilizer" || rule != "clifford" {
		t.Fatalf("routed to %s/%s (%s)", backend, sub, rule)
	}
}

func TestAutoRoutesNearestNeighbour(t *testing.T) {
	a := NewAutoExecutor(allFakeExecs())
	c := circuit.New(14)
	for i := 0; i+1 < 14; i++ {
		c.RZZ(i, i+1, circuit.Bound(0.3))
		c.RX(i, circuit.Bound(0.2))
	}
	backend, sub, _, err := a.RouteFor(routeSpec(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "aer" || sub != "matrix_product_state" {
		t.Fatalf("routed to %s/%s", backend, sub)
	}
	// Without aer, tnqvm's MPS takes the rule.
	execs := allFakeExecs()
	delete(execs, "aer")
	a2 := NewAutoExecutor(execs)
	backend, sub, _, err = a2.RouteFor(routeSpec(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "tnqvm" || sub != "exatn-mps" {
		t.Fatalf("fallback routed to %s/%s", backend, sub)
	}
}

// largeDenseCircuit is a dense long-range non-Clifford circuit, deep enough
// to skip the shallow rule and entangling enough to saturate the bond bound.
func largeDenseCircuit() *circuit.Circuit {
	c := circuit.New(22)
	for d := 0; d < 4; d++ {
		for i := 0; i < 22; i++ {
			c.T(i)
			c.CX(i, (i+7)%22)
		}
	}
	return c
}

func TestAutoRoutesLargeDenseToStatevector(t *testing.T) {
	// Under the cost model a volume-law circuit must land on a dense
	// statevector engine: the MPS candidates are withdrawn because their
	// truncated runtime cannot back the fidelity.
	a := NewAutoExecutor(allFakeExecs())
	backend, sub, rule, err := a.RouteFor(routeSpec(t, largeDenseCircuit()))
	if err != nil {
		t.Fatal(err)
	}
	if rule != "cost-model" {
		t.Fatalf("routed by rule %q", rule)
	}
	if sub == "matrix_product_state" || sub == "exatn-mps" || sub == "stabilizer" {
		t.Fatalf("volume-law circuit routed to %s/%s", backend, sub)
	}
}

func TestAutoRoutesLargeDenseToNWQSimStructurally(t *testing.T) {
	// Without a calibration the structural rules send large dense circuits
	// to the distributed engine.
	a := NewAutoExecutor(allFakeExecs()).WithModel(nil)
	backend, sub, rule, err := a.RouteFor(routeSpec(t, largeDenseCircuit()))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "nwqsim" || sub != "mpi" || rule != "large-dense" {
		t.Fatalf("routed to %s/%s (%s)", backend, sub, rule)
	}
}

func TestAutoNeverRoutesToCloud(t *testing.T) {
	execs := map[string]Executor{"ionq": &fakeExec{name: "ionq"}}
	a := NewAutoExecutor(execs)
	c := circuit.New(4)
	c.T(0)
	if _, _, _, err := a.RouteFor(routeSpec(t, c)); err == nil {
		t.Fatal("auto routed to the cloud with no local backend")
	}
}

func TestAutoExecuteAnnotatesRoute(t *testing.T) {
	a := NewAutoExecutor(allFakeExecs())
	c := circuit.New(3)
	c.H(0).CX(0, 1).MeasureAll()
	spec := routeSpec(t, c)
	res, err := a.Execute(spec, RunOptions{Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Route, "aer/stabilizer") {
		t.Fatalf("route %q", res.Route)
	}
	if res.Extra["auto_routed"] != 1 {
		t.Fatalf("extra %v", res.Extra)
	}
}

func TestObservableEnergy(t *testing.T) {
	obs := &Observable{
		Fields:    []float64{1, -0.5},
		Couplings: []Coupling{{I: 0, J: 1, V: 2}},
	}
	// |00>: z=(+1,+1): 1 - 0.5 + 2 = 2.5
	if e := obs.EnergyOfIndex(0); math.Abs(e-2.5) > 1e-12 {
		t.Fatalf("E(00)=%g", e)
	}
	// |01> (qubit0=1): -1 - 0.5 - 2 = -3.5
	if e := obs.EnergyOfIndex(1); math.Abs(e+3.5) > 1e-12 {
		t.Fatalf("E(01)=%g", e)
	}
	if e := obs.EnergyOfKey("01"); math.Abs(e+3.5) > 1e-12 {
		t.Fatalf("key E(01)=%g", e)
	}
	counts := map[string]int{"00": 3, "01": 1}
	want := (3*2.5 + 1*(-3.5)) / 4
	if e := obs.FromCounts(counts); math.Abs(e-want) > 1e-12 {
		t.Fatalf("FromCounts=%g want %g", e, want)
	}
	if e := obs.FromCounts(nil); e != 0 {
		t.Fatalf("empty counts %g", e)
	}
}

// capExec is a fakeExec advertising custom hardware capabilities.
type capExec struct {
	fakeExec
	caps Capabilities
}

func (c *capExec) Capabilities() Capabilities { return c.caps }

// fakeBatchExec records each sub-batch it receives (element count and base
// seed) so split tests can assert how the selector divided the work.
type fakeBatchExec struct {
	fakeExec
	mu      sync.Mutex
	batches []int
	seeds   []int64
}

func (f *fakeBatchExec) ExecuteBatch(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]ExecResult, error) {
	f.mu.Lock()
	f.batches = append(f.batches, len(bindings))
	f.seeds = append(f.seeds, opts.Seed)
	f.mu.Unlock()
	out := make([]ExecResult, len(bindings))
	for i := range out {
		out[i] = ExecResult{Counts: map[string]int{"0": 1}}
	}
	return out, nil
}

// fakeGradExec is a gradient-capable fake.
type fakeGradExec struct {
	fakeExec
	mu    sync.Mutex
	grads int
}

func (f *fakeGradExec) ExecuteGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]GradResult, error) {
	f.mu.Lock()
	f.grads++
	f.mu.Unlock()
	out := make([]GradResult, len(bindings))
	return out, nil
}

func TestAutoCapabilitiesUnion(t *testing.T) {
	// CPU-only registered executors: auto must not advertise hardware no
	// routable backend has. The cloud backend never contributes, whatever
	// it claims.
	a := NewAutoExecutor(map[string]Executor{
		"aer":    &fakeExec{name: "aer"},
		"nwqsim": &fakeExec{name: "nwqsim"},
		"ionq":   &capExec{fakeExec: fakeExec{name: "ionq"}, caps: Capabilities{Backend: "ionq", GPU: true, NativeMPI: true}},
	})
	caps := a.Capabilities()
	if !caps.CPU || caps.GPU || caps.NativeMPI {
		t.Fatalf("CPU-only subset advertised %+v", caps)
	}
	// A GPU+MPI executor joins: the union picks both up.
	b := NewAutoExecutor(map[string]Executor{
		"aer":    &fakeExec{name: "aer"},
		"nwqsim": &capExec{fakeExec: fakeExec{name: "nwqsim"}, caps: Capabilities{Backend: "nwqsim", CPU: true, GPU: true, NativeMPI: true}},
	})
	caps = b.Capabilities()
	if !caps.CPU || !caps.GPU || !caps.NativeMPI {
		t.Fatalf("union missed capabilities: %+v", caps)
	}
}

// evenCal builds a calibration where the two dense engines are exactly as
// fast, so a batch split always wins under the default penalty.
func evenCal() *cost.Calibration {
	cv := cost.Curve{Base: 1, Slope: 1, Knee: 10, Slope2: 1}
	return &cost.Calibration{
		Version: 1, Source: "test", SplitPenalty: 1.5,
		Curves: map[string]cost.Curve{
			cost.AerSV:     cv,
			cost.NWQOpenMP: cv,
		},
	}
}

// denseSpec returns a small dense non-Clifford circuit spec.
func denseSpec(t *testing.T) CircuitSpec {
	t.Helper()
	c := circuit.New(6)
	for i := 0; i < 6; i++ {
		c.T(i)
		c.CX(i, (i+2)%6)
	}
	return routeSpec(t, c)
}

func TestAutoSplitsBatchAcrossEngines(t *testing.T) {
	aer := &fakeBatchExec{fakeExec: fakeExec{name: "aer"}}
	nwq := &fakeBatchExec{fakeExec: fakeExec{name: "nwqsim"}}
	a := NewAutoExecutor(map[string]Executor{"aer": aer, "nwqsim": nwq}).
		WithModel(cost.NewModel(evenCal()))
	spec := denseSpec(t)
	bindings := make([]Bindings, 8)
	results, err := a.ExecuteBatch(spec, bindings, RunOptions{Shots: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	if len(aer.batches) != 1 || len(nwq.batches) != 1 {
		t.Fatalf("batch counts aer=%v nwqsim=%v", aer.batches, nwq.batches)
	}
	if aer.batches[0]+nwq.batches[0] != 8 || aer.batches[0] == 0 || nwq.batches[0] == 0 {
		t.Fatalf("split sizes aer=%d nwqsim=%d", aer.batches[0], nwq.batches[0])
	}
	// The tail's base seed is offset by the head size, so every element
	// keeps the seed it would have had unsplit (ForElement semantics).
	var head, tailSeed int64
	if aer.seeds[0] == 7 {
		head, tailSeed = int64(aer.batches[0]), nwq.seeds[0]
	} else {
		head, tailSeed = int64(nwq.batches[0]), aer.seeds[0]
	}
	if tailSeed != 7+head {
		t.Fatalf("tail seed %d, want %d", tailSeed, 7+head)
	}
	for _, r := range results {
		if r.Extra["auto_split"] != 1 {
			t.Fatalf("missing split annotation: %v", r.Extra)
		}
		if !strings.Contains(r.Route, "+") || !strings.Contains(r.Route, "cost-split") {
			t.Fatalf("route %q", r.Route)
		}
		if r.Extra["auto_predicted_ms"] <= 0 {
			t.Fatalf("missing prediction: %v", r.Extra)
		}
	}
}

func TestAutoBatchKeepsSingleEngineWhenSmall(t *testing.T) {
	// K<4 never splits: the contention penalty cannot amortize.
	aer := &fakeBatchExec{fakeExec: fakeExec{name: "aer"}}
	nwq := &fakeBatchExec{fakeExec: fakeExec{name: "nwqsim"}}
	a := NewAutoExecutor(map[string]Executor{"aer": aer, "nwqsim": nwq}).
		WithModel(cost.NewModel(evenCal()))
	results, err := a.ExecuteBatch(denseSpec(t), make([]Bindings, 2), RunOptions{Shots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if len(aer.batches)+len(nwq.batches) != 1 {
		t.Fatalf("small batch was split: aer=%v nwqsim=%v", aer.batches, nwq.batches)
	}
}

func TestAutoFeaturesExtractedOncePerBatch(t *testing.T) {
	aer := &fakeBatchExec{fakeExec: fakeExec{name: "aer"}}
	a := NewAutoExecutor(map[string]Executor{"aer": aer}).
		WithModel(cost.NewModel(evenCal()))
	spec := denseSpec(t)
	if _, err := a.ExecuteBatch(spec, make([]Bindings, 6), RunOptions{Shots: 1}); err != nil {
		t.Fatal(err)
	}
	if got := a.cache.Memos(); got != 1 {
		t.Fatalf("feature extractions after batch: %d, want 1", got)
	}
	// A second submission of the same spec reuses the memoized features.
	if _, err := a.Execute(spec, RunOptions{Shots: 1}); err != nil {
		t.Fatal(err)
	}
	if got := a.cache.Memos(); got != 1 {
		t.Fatalf("feature extractions after resubmit: %d, want 1", got)
	}
}

func TestAutoGradientRoutesByPredictedCost(t *testing.T) {
	// nwqsim's curve is far cheaper: the gradient must leave the fixed
	// aer-first order and follow the model.
	aer := &fakeGradExec{fakeExec: fakeExec{name: "aer"}}
	nwq := &fakeGradExec{fakeExec: fakeExec{name: "nwqsim"}}
	cal := evenCal()
	cv := cal.Curves[cost.NWQOpenMP]
	cv.Base -= 10 // 1024x faster
	cal.Curves[cost.NWQOpenMP] = cv
	a := NewAutoExecutor(map[string]Executor{"aer": aer, "nwqsim": nwq}).
		WithModel(cost.NewModel(cal))
	if _, err := a.ExecuteGradient(denseSpec(t), make([]Bindings, 2), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if nwq.grads != 1 || aer.grads != 0 {
		t.Fatalf("gradient calls aer=%d nwqsim=%d", aer.grads, nwq.grads)
	}
	// Without a model the fixed preference order applies: aer first.
	a2 := NewAutoExecutor(map[string]Executor{"aer": aer, "nwqsim": nwq}).WithModel(nil)
	if _, err := a2.ExecuteGradient(denseSpec(t), make([]Bindings, 2), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if aer.grads != 1 {
		t.Fatalf("structural gradient calls aer=%d nwqsim=%d", aer.grads, nwq.grads)
	}
}
