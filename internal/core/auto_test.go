package core

import (
	"math"
	"strings"
	"testing"

	"qfw/internal/circuit"
)

// routeSpec builds a spec from a circuit for routing tests.
func routeSpec(t *testing.T, c *circuit.Circuit) CircuitSpec {
	t.Helper()
	spec, err := SpecFromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func allFakeExecs() map[string]Executor {
	return map[string]Executor{
		"aer":     &fakeExec{name: "aer"},
		"nwqsim":  &fakeExec{name: "nwqsim"},
		"qtensor": &fakeExec{name: "qtensor"},
		"tnqvm":   &fakeExec{name: "tnqvm"},
		"ionq":    &fakeExec{name: "ionq"},
	}
}

func TestAutoRoutesClifford(t *testing.T) {
	a := NewAutoExecutor(allFakeExecs())
	c := circuit.New(4)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	backend, sub, rule, err := a.RouteFor(routeSpec(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "aer" || sub != "stabilizer" || rule != "clifford" {
		t.Fatalf("routed to %s/%s (%s)", backend, sub, rule)
	}
}

func TestAutoRoutesNearestNeighbour(t *testing.T) {
	a := NewAutoExecutor(allFakeExecs())
	c := circuit.New(14)
	for i := 0; i+1 < 14; i++ {
		c.RZZ(i, i+1, circuit.Bound(0.3))
		c.RX(i, circuit.Bound(0.2))
	}
	backend, sub, _, err := a.RouteFor(routeSpec(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "aer" || sub != "matrix_product_state" {
		t.Fatalf("routed to %s/%s", backend, sub)
	}
	// Without aer, tnqvm's MPS takes the rule.
	execs := allFakeExecs()
	delete(execs, "aer")
	a2 := NewAutoExecutor(execs)
	backend, sub, _, err = a2.RouteFor(routeSpec(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "tnqvm" || sub != "exatn-mps" {
		t.Fatalf("fallback routed to %s/%s", backend, sub)
	}
}

func TestAutoRoutesLargeDenseToNWQSim(t *testing.T) {
	a := NewAutoExecutor(allFakeExecs())
	c := circuit.New(22)
	// Dense long-range non-Clifford circuit, deep enough to skip qtensor.
	for d := 0; d < 4; d++ {
		for i := 0; i < 22; i++ {
			c.T(i)
			c.CX(i, (i+7)%22)
		}
	}
	backend, sub, rule, err := a.RouteFor(routeSpec(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if backend != "nwqsim" || sub != "mpi" || rule != "large-dense" {
		t.Fatalf("routed to %s/%s (%s)", backend, sub, rule)
	}
}

func TestAutoNeverRoutesToCloud(t *testing.T) {
	execs := map[string]Executor{"ionq": &fakeExec{name: "ionq"}}
	a := NewAutoExecutor(execs)
	c := circuit.New(4)
	c.T(0)
	if _, _, _, err := a.RouteFor(routeSpec(t, c)); err == nil {
		t.Fatal("auto routed to the cloud with no local backend")
	}
}

func TestAutoExecuteAnnotatesRoute(t *testing.T) {
	a := NewAutoExecutor(allFakeExecs())
	c := circuit.New(3)
	c.H(0).CX(0, 1).MeasureAll()
	spec := routeSpec(t, c)
	res, err := a.Execute(spec, RunOptions{Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Route, "aer/stabilizer") {
		t.Fatalf("route %q", res.Route)
	}
	if res.Extra["auto_routed"] != 1 {
		t.Fatalf("extra %v", res.Extra)
	}
}

func TestObservableEnergy(t *testing.T) {
	obs := &Observable{
		Fields:    []float64{1, -0.5},
		Couplings: []Coupling{{I: 0, J: 1, V: 2}},
	}
	// |00>: z=(+1,+1): 1 - 0.5 + 2 = 2.5
	if e := obs.EnergyOfIndex(0); math.Abs(e-2.5) > 1e-12 {
		t.Fatalf("E(00)=%g", e)
	}
	// |01> (qubit0=1): -1 - 0.5 - 2 = -3.5
	if e := obs.EnergyOfIndex(1); math.Abs(e+3.5) > 1e-12 {
		t.Fatalf("E(01)=%g", e)
	}
	if e := obs.EnergyOfKey("01"); math.Abs(e+3.5) > 1e-12 {
		t.Fatalf("key E(01)=%g", e)
	}
	counts := map[string]int{"00": 3, "01": 1}
	want := (3*2.5 + 1*(-3.5)) / 4
	if e := obs.FromCounts(counts); math.Abs(e-want) > 1e-12 {
		t.Fatalf("FromCounts=%g want %g", e, want)
	}
	if e := obs.FromCounts(nil); e != 0 {
		t.Fatalf("empty counts %g", e)
	}
}
