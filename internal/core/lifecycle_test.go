package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"qfw/internal/trace"
)

// gatedExec blocks every execution until open() is called, so tests can
// pin tasks in the Queued/Running states and exercise the lifecycle edges.
type gatedExec struct {
	gate      chan struct{}
	once      sync.Once
	mu        sync.Mutex
	execCalls int
	gradCalls int
}

func newGatedExec() *gatedExec { return &gatedExec{gate: make(chan struct{})} }

func (g *gatedExec) open() { g.once.Do(func() { close(g.gate) }) }

func (g *gatedExec) Name() string { return "gated" }
func (g *gatedExec) Capabilities() Capabilities {
	return Capabilities{Backend: "gated", CPU: true, Gradients: true}
}

func (g *gatedExec) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	g.mu.Lock()
	g.execCalls++
	g.mu.Unlock()
	<-g.gate
	return ExecResult{Counts: map[string]int{"00": 1}}, nil
}

func (g *gatedExec) ExecuteGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]GradResult, error) {
	g.mu.Lock()
	g.gradCalls++
	g.mu.Unlock()
	<-g.gate
	out := make([]GradResult, len(bindings))
	return out, nil
}

func (g *gatedExec) counts() (int, int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.execCalls, g.gradCalls
}

// blockWorker submits a task that pins the QPM's single worker until the
// gate opens, so everything submitted after it stays queued.
func blockWorker(t *testing.T, q *QPM, spec CircuitSpec) string {
	t.Helper()
	id, err := q.Submit(spec, RunOptions{Shots: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := q.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st == StatusRunning {
			return id
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocker never started (status %s)", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeleteQueuedBatchCancelsUnstartedChunks(t *testing.T) {
	g := newGatedExec()
	q := NewQPM(g, 1, trace.NewRecorder())
	defer q.Close()
	defer g.open()
	spec := bell(t)
	blockWorker(t, q, spec)

	id, err := q.SubmitBatch(spec, []Bindings{nil, nil, nil}, RunOptions{Shots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := q.Status(id); st != StatusQueued {
		t.Fatalf("batch status %s, want queued behind the blocker", st)
	}
	if err := q.Delete(id); err != nil {
		t.Fatalf("delete queued batch: %v", err)
	}
	if _, err := q.Status(id); err == nil {
		t.Fatal("deleted batch still listed")
	}

	g.open()
	deadline := time.Now().Add(5 * time.Second)
	for q.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	// The cancelled chunks passed through the queue without touching the
	// backend: only the blocker executed.
	if execs, _ := g.counts(); execs != 1 {
		t.Fatalf("backend executed %d times, want 1 (cancelled batch must not run)", execs)
	}
}

func TestDeleteRunningBatchRefused(t *testing.T) {
	g := newGatedExec()
	q := NewQPM(g, 1, trace.NewRecorder())
	defer q.Close()
	defer g.open()
	spec := bell(t)

	id, err := q.SubmitBatch(spec, []Bindings{nil, nil}, RunOptions{Shots: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := q.Status(id)
		if st == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never started (status %s)", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Delete(id); err == nil || !strings.Contains(err.Error(), "running") {
		t.Fatalf("deleting a running batch returned %v, want running refusal", err)
	}
	g.open()
	if _, _, err := q.WaitBatch(id); err != nil {
		t.Fatal(err)
	}
	if err := q.Delete(id); err != nil {
		t.Fatalf("delete finished batch: %v", err)
	}
}

func TestDeleteQueuedGradientCancels(t *testing.T) {
	g := newGatedExec()
	q := NewQPM(g, 1, trace.NewRecorder())
	defer q.Close()
	defer g.open()
	spec := bell(t)
	blockWorker(t, q, spec)

	id, err := q.SubmitGradient(spec, []Bindings{{"t": 0.1}}, RunOptions{Observable: &Observable{Fields: []float64{1, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := q.Status(id); st != StatusQueued {
		t.Fatalf("gradient status %s, want queued", st)
	}
	if err := q.Delete(id); err != nil {
		t.Fatalf("delete queued gradient: %v", err)
	}

	g.open()
	deadline := time.Now().Add(5 * time.Second)
	for q.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if _, grads := g.counts(); grads != 0 {
		t.Fatalf("backend ran %d gradient batches, want 0 (cancelled)", grads)
	}
	if _, err := q.WaitGradient(id); err == nil {
		t.Fatal("deleted gradient still waitable")
	}
}

func TestListReportsBatchAndGradientStatuses(t *testing.T) {
	g := newGatedExec()
	q := NewQPM(g, 1, trace.NewRecorder())
	defer q.Close()
	defer g.open()
	spec := bell(t)

	blocker := blockWorker(t, q, spec)
	batchID, err := q.SubmitBatch(spec, []Bindings{nil, nil}, RunOptions{Shots: 1})
	if err != nil {
		t.Fatal(err)
	}
	gradID, err := q.SubmitGradient(spec, []Bindings{{"t": 0.2}}, RunOptions{Observable: &Observable{Fields: []float64{1, 0}}})
	if err != nil {
		t.Fatal(err)
	}

	list := q.List()
	if list[blocker] != StatusRunning {
		t.Fatalf("blocker listed as %s, want running", list[blocker])
	}
	if list[batchID] != StatusQueued {
		t.Fatalf("batch listed as %s, want queued", list[batchID])
	}
	if list[gradID] != StatusQueued {
		t.Fatalf("gradient listed as %s, want queued", list[gradID])
	}

	g.open()
	if _, _, err := q.WaitBatch(batchID); err != nil {
		t.Fatal(err)
	}
	if _, err := q.WaitGradient(gradID); err != nil {
		t.Fatal(err)
	}
	list = q.List()
	if list[batchID] != StatusDone || list[gradID] != StatusDone {
		t.Fatalf("after completion batch=%s grad=%s, want done/done", list[batchID], list[gradID])
	}
}

func TestQuiesceClosesAdmissionAndDrainWaits(t *testing.T) {
	g := newGatedExec()
	q := NewQPM(g, 1, trace.NewRecorder())
	defer q.Close()
	defer g.open()
	spec := bell(t)
	blockWorker(t, q, spec)

	if q.Drain(10 * time.Millisecond) {
		t.Fatal("drain reported success with a blocked task in flight")
	}
	if _, err := q.Submit(spec, RunOptions{Shots: 1}); !IsDraining(err) {
		t.Fatalf("post-quiesce submit returned %v, want ErrDraining", err)
	}
	if _, err := q.SubmitBatch(spec, []Bindings{nil}, RunOptions{Shots: 1}); !IsDraining(err) {
		t.Fatalf("post-quiesce batch returned %v, want ErrDraining", err)
	}
	if _, err := q.SubmitGradient(spec, []Bindings{{"t": 0.1}}, RunOptions{Observable: &Observable{Fields: []float64{1, 0}}}); !IsDraining(err) {
		t.Fatalf("post-quiesce gradient returned %v, want ErrDraining", err)
	}
	if _, err := q.Create(spec, RunOptions{Shots: 1}); !IsDraining(err) {
		t.Fatalf("post-quiesce create returned %v, want ErrDraining", err)
	}

	g.open()
	if !q.Drain(5 * time.Second) {
		t.Fatal("drain did not complete after the gate opened")
	}
	if q.Pending() != 0 {
		t.Fatalf("pending %d after drain", q.Pending())
	}
}
