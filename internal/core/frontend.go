package core

import (
	"encoding/json"
	"fmt"
	"sync"

	"qfw/internal/circuit"
	"qfw/internal/defw"
)

// Properties selects a backend and sub-backend, mirroring the paper's
// runtime-property mechanism:
//
//	backend := session.Frontend(core.Properties{Backend: "nwqsim", Subbackend: "MPI"})
type Properties struct {
	Backend    string `json:"backend"`
	Subbackend string `json:"subbackend,omitempty"`
}

// ServiceName returns the DEFw service a backend's QPM registers under.
func ServiceName(backend string) string { return "qpm." + backend }

// Frontend is the application-side handle (the QFwBackend analog): it
// serializes circuits, issues RPCs to the selected QPM, and unmarshals the
// unified results. It is safe for concurrent use.
type Frontend struct {
	client *defw.Client
	props  Properties

	capsMu sync.Mutex
	caps   Capabilities
	capsOK bool
}

// NewFrontend builds a frontend over an existing DEFw client connection.
func NewFrontend(client *defw.Client, props Properties) (*Frontend, error) {
	if props.Backend == "" {
		return nil, fmt.Errorf("core: Properties.Backend is required")
	}
	return &Frontend{client: client, props: props}, nil
}

// Properties returns the frontend's backend selection.
func (f *Frontend) Properties() Properties { return f.props }

func (f *Frontend) prepare(c *circuit.Circuit, opts RunOptions) ([]byte, error) {
	spec, err := SpecFromCircuit(c)
	if err != nil {
		return nil, err
	}
	if opts.Subbackend == "" {
		opts.Subbackend = f.props.Subbackend
	}
	return json.Marshal(submitReq{Spec: spec, Opts: opts})
}

// Run executes a circuit synchronously and returns the unified result.
func (f *Frontend) Run(c *circuit.Circuit, opts RunOptions) (*Result, error) {
	pending, err := f.RunAsync(c, opts)
	if err != nil {
		return nil, err
	}
	return pending.Result()
}

// Pending is an in-flight asynchronous execution.
type Pending struct {
	front  *Frontend
	TaskID string
}

// Result blocks until the task finishes and returns the unified result.
func (p *Pending) Result() (*Result, error) {
	payload, err := json.Marshal(idMsg{ID: p.TaskID})
	if err != nil {
		return nil, err
	}
	out, err := p.front.client.Call(ServiceName(p.front.props.Backend), "wait", payload)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Status polls the task state without blocking.
func (p *Pending) Status() (Status, error) {
	payload, _ := json.Marshal(idMsg{ID: p.TaskID})
	out, err := p.front.client.Call(ServiceName(p.front.props.Backend), "status", payload)
	if err != nil {
		return "", err
	}
	var st statusMsg
	if err := json.Unmarshal(out, &st); err != nil {
		return "", err
	}
	return st.Status, nil
}

// RunAsync submits a circuit and returns immediately with a handle — the
// non-blocking path variational workloads use to keep many circuit
// evaluations in flight per optimizer iteration.
func (f *Frontend) RunAsync(c *circuit.Circuit, opts RunOptions) (*Pending, error) {
	payload, err := f.prepare(c, opts)
	if err != nil {
		return nil, err
	}
	out, err := f.client.Call(ServiceName(f.props.Backend), "submit", payload)
	if err != nil {
		return nil, err
	}
	var id idMsg
	if err := json.Unmarshal(out, &id); err != nil {
		return nil, err
	}
	return &Pending{front: f, TaskID: id.ID}, nil
}

// PendingBatch is an in-flight asynchronous batch execution.
type PendingBatch struct {
	front   *Frontend
	BatchID string
	N       int
}

// RunBatchAsync ships the (possibly parametric) circuit once plus the
// binding list in a single submit_batch RPC and returns immediately — the
// batched analog of RunAsync. One optimizer iteration's candidate set costs
// one round trip instead of K.
func (f *Frontend) RunBatchAsync(c *circuit.Circuit, bindings []Bindings, opts RunOptions) (*PendingBatch, error) {
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	spec, err := SpecFromParametric(c)
	if err != nil {
		return nil, err
	}
	if opts.Subbackend == "" {
		opts.Subbackend = f.props.Subbackend
	}
	payload, err := json.Marshal(batchSubmitReq{Spec: spec, Bindings: bindings, Opts: opts})
	if err != nil {
		return nil, err
	}
	out, err := f.client.Call(ServiceName(f.props.Backend), "submit_batch", payload)
	if err != nil {
		return nil, err
	}
	var id idMsg
	if err := json.Unmarshal(out, &id); err != nil {
		return nil, err
	}
	return &PendingBatch{front: f, BatchID: id.ID, N: len(bindings)}, nil
}

// Results blocks until every element finishes and returns the ordered
// results. On element failures it returns the partial results (nil at the
// failed slots) together with the first element error.
func (p *PendingBatch) Results() ([]*Result, error) {
	payload, err := json.Marshal(idMsg{ID: p.BatchID})
	if err != nil {
		return nil, err
	}
	out, err := p.front.client.Call(ServiceName(p.front.props.Backend), "wait_batch", payload)
	if err != nil {
		return nil, err
	}
	var resp batchWaitResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, err
	}
	for i, e := range resp.Errs {
		if e != "" {
			return resp.Results, fmt.Errorf("core: batch element %d: %s", i, e)
		}
	}
	return resp.Results, nil
}

// Status polls the batch state without blocking.
func (p *PendingBatch) Status() (Status, error) {
	payload, _ := json.Marshal(idMsg{ID: p.BatchID})
	out, err := p.front.client.Call(ServiceName(p.front.props.Backend), "status", payload)
	if err != nil {
		return "", err
	}
	var st statusMsg
	if err := json.Unmarshal(out, &st); err != nil {
		return "", err
	}
	return st.Status, nil
}

// RunBatch executes K parameter bindings of one circuit synchronously
// through a single submit_batch RPC and returns the ordered results.
func (f *Frontend) RunBatch(c *circuit.Circuit, bindings []Bindings, opts RunOptions) ([]*Result, error) {
	pending, err := f.RunBatchAsync(c, bindings, opts)
	if err != nil {
		return nil, err
	}
	return pending.Results()
}

// Capabilities fetches the backend's Table-1 capability row.
func (f *Frontend) Capabilities() (Capabilities, error) {
	out, err := f.client.Call(ServiceName(f.props.Backend), "capabilities", nil)
	if err != nil {
		return Capabilities{}, err
	}
	var caps Capabilities
	if err := json.Unmarshal(out, &caps); err != nil {
		return Capabilities{}, err
	}
	return caps, nil
}

// SupportsGradients reports whether the selected backend advertises the
// analytic-gradient capability on this frontend's sub-backend selection.
// The capability row is cached on first success — the variational loops
// probe this per solve, not per iteration — while a transient RPC failure
// answers false for this call only and is retried on the next, so one
// dropped capabilities exchange cannot silently pin the frontend to
// derivative-free optimization for its lifetime.
func (f *Frontend) SupportsGradients() bool {
	f.capsMu.Lock()
	defer f.capsMu.Unlock()
	if !f.capsOK {
		caps, err := f.Capabilities()
		if err != nil {
			return false
		}
		f.caps = caps
		f.capsOK = true
	}
	return f.caps.SupportsGradientSub(f.props.Subbackend)
}

// RunGradient evaluates opts.Observable and its analytic gradient for K
// parameter bindings of one symbolic circuit through a single submit_grad
// RPC. Per-binding gradients come back ordered, each over the circuit's
// sorted parameter names. The backend must advertise the gradient
// capability (see SupportsGradients).
func (f *Frontend) RunGradient(c *circuit.Circuit, bindings []Bindings, opts RunOptions) ([]GradResult, error) {
	if len(bindings) == 0 {
		return nil, fmt.Errorf("core: empty gradient batch")
	}
	if opts.Observable == nil {
		return nil, fmt.Errorf("core: gradient execution requires an observable")
	}
	spec, err := SpecFromParametric(c)
	if err != nil {
		return nil, err
	}
	if opts.Subbackend == "" {
		opts.Subbackend = f.props.Subbackend
	}
	payload, err := json.Marshal(batchSubmitReq{Spec: spec, Bindings: bindings, Opts: opts})
	if err != nil {
		return nil, err
	}
	out, err := f.client.Call(ServiceName(f.props.Backend), "submit_grad", payload)
	if err != nil {
		return nil, err
	}
	var id idMsg
	if err := json.Unmarshal(out, &id); err != nil {
		return nil, err
	}
	payload, err = json.Marshal(idMsg{ID: id.ID})
	if err != nil {
		return nil, err
	}
	out, err = f.client.Call(ServiceName(f.props.Backend), "wait_grad", payload)
	if err != nil {
		return nil, err
	}
	var resp gradWaitResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(bindings) {
		return nil, fmt.Errorf("core: gradient batch returned %d results for %d bindings", len(resp.Results), len(bindings))
	}
	return resp.Results, nil
}

// Delete removes a finished task from the QPM.
func (f *Frontend) Delete(taskID string) error {
	payload, _ := json.Marshal(idMsg{ID: taskID})
	_, err := f.client.Call(ServiceName(f.props.Backend), "delete", payload)
	return err
}

// List fetches the QPM's task table.
func (f *Frontend) List() (map[string]Status, error) {
	out, err := f.client.Call(ServiceName(f.props.Backend), "list", nil)
	if err != nil {
		return nil, err
	}
	var m map[string]Status
	if err := json.Unmarshal(out, &m); err != nil {
		return nil, err
	}
	return m, nil
}
