package core

import (
	"encoding/json"
	"fmt"

	"qfw/internal/circuit"
	"qfw/internal/defw"
)

// Properties selects a backend and sub-backend, mirroring the paper's
// runtime-property mechanism:
//
//	backend := session.Frontend(core.Properties{Backend: "nwqsim", Subbackend: "MPI"})
type Properties struct {
	Backend    string `json:"backend"`
	Subbackend string `json:"subbackend,omitempty"`
}

// ServiceName returns the DEFw service a backend's QPM registers under.
func ServiceName(backend string) string { return "qpm." + backend }

// Frontend is the application-side handle (the QFwBackend analog): it
// serializes circuits, issues RPCs to the selected QPM, and unmarshals the
// unified results. It is safe for concurrent use.
type Frontend struct {
	client *defw.Client
	props  Properties
}

// NewFrontend builds a frontend over an existing DEFw client connection.
func NewFrontend(client *defw.Client, props Properties) (*Frontend, error) {
	if props.Backend == "" {
		return nil, fmt.Errorf("core: Properties.Backend is required")
	}
	return &Frontend{client: client, props: props}, nil
}

// Properties returns the frontend's backend selection.
func (f *Frontend) Properties() Properties { return f.props }

func (f *Frontend) prepare(c *circuit.Circuit, opts RunOptions) ([]byte, error) {
	spec, err := SpecFromCircuit(c)
	if err != nil {
		return nil, err
	}
	if opts.Subbackend == "" {
		opts.Subbackend = f.props.Subbackend
	}
	return json.Marshal(submitReq{Spec: spec, Opts: opts})
}

// Run executes a circuit synchronously and returns the unified result.
func (f *Frontend) Run(c *circuit.Circuit, opts RunOptions) (*Result, error) {
	pending, err := f.RunAsync(c, opts)
	if err != nil {
		return nil, err
	}
	return pending.Result()
}

// Pending is an in-flight asynchronous execution.
type Pending struct {
	front  *Frontend
	TaskID string
}

// Result blocks until the task finishes and returns the unified result.
func (p *Pending) Result() (*Result, error) {
	payload, err := json.Marshal(idMsg{ID: p.TaskID})
	if err != nil {
		return nil, err
	}
	out, err := p.front.client.Call(ServiceName(p.front.props.Backend), "wait", payload)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Status polls the task state without blocking.
func (p *Pending) Status() (Status, error) {
	payload, _ := json.Marshal(idMsg{ID: p.TaskID})
	out, err := p.front.client.Call(ServiceName(p.front.props.Backend), "status", payload)
	if err != nil {
		return "", err
	}
	var st statusMsg
	if err := json.Unmarshal(out, &st); err != nil {
		return "", err
	}
	return st.Status, nil
}

// RunAsync submits a circuit and returns immediately with a handle — the
// non-blocking path variational workloads use to keep many circuit
// evaluations in flight per optimizer iteration.
func (f *Frontend) RunAsync(c *circuit.Circuit, opts RunOptions) (*Pending, error) {
	payload, err := f.prepare(c, opts)
	if err != nil {
		return nil, err
	}
	out, err := f.client.Call(ServiceName(f.props.Backend), "submit", payload)
	if err != nil {
		return nil, err
	}
	var id idMsg
	if err := json.Unmarshal(out, &id); err != nil {
		return nil, err
	}
	return &Pending{front: f, TaskID: id.ID}, nil
}

// Capabilities fetches the backend's Table-1 capability row.
func (f *Frontend) Capabilities() (Capabilities, error) {
	out, err := f.client.Call(ServiceName(f.props.Backend), "capabilities", nil)
	if err != nil {
		return Capabilities{}, err
	}
	var caps Capabilities
	if err := json.Unmarshal(out, &caps); err != nil {
		return Capabilities{}, err
	}
	return caps, nil
}

// Delete removes a finished task from the QPM.
func (f *Frontend) Delete(taskID string) error {
	payload, _ := json.Marshal(idMsg{ID: taskID})
	_, err := f.client.Call(ServiceName(f.props.Backend), "delete", payload)
	return err
}

// List fetches the QPM's task table.
func (f *Frontend) List() (map[string]Status, error) {
	out, err := f.client.Call(ServiceName(f.props.Backend), "list", nil)
	if err != nil {
		return nil, err
	}
	var m map[string]Status
	if err := json.Unmarshal(out, &m); err != nil {
		return nil, err
	}
	return m, nil
}
