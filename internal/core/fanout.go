package core

import "sync"

// FanOut runs fn(i) for every i in [0, n) on at most pool concurrent
// goroutines and blocks until all complete. It is the shared element
// fan-out of the batch and gradient execution paths (local runners and
// backend executors alike): a K-element batch costs at most pool live
// executions — and their amplitude arenas — instead of K. n <= 0 returns
// immediately; pool is clamped to [1, n].
func FanOut(n, pool int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if pool > n {
		pool = n
	}
	if pool < 1 {
		pool = 1
	}
	sem := make(chan struct{}, pool)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
