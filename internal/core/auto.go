package core

import (
	"fmt"
	"sort"
	"strings"
)

// AutoExecutor implements the paper's stated future-work extension:
// automated workload-driven backend selection. It inspects the submitted
// circuit's structure and routes it to the most suitable registered backend:
//
//   - Clifford-only circuits      → aer/stabilizer (polynomial simulation),
//   - nearest-neighbour circuits  → aer/matrix_product_state (low
//     entanglement growth; the paper's TFIM observation),
//   - shallow circuits            → qtensor/numpy (cheap TN contraction),
//   - small dense circuits        → aer/statevector (single-node dominance),
//   - everything else             → nwqsim/mpi (distributed state vector).
//
// Rules consult only the routed backends that are actually present, so the
// selector works on sessions launched with a backend subset.
type AutoExecutor struct {
	execs map[string]Executor
	cache *ParseCache
}

// NewAutoExecutor wraps the live executors of a session.
func NewAutoExecutor(execs map[string]Executor) *AutoExecutor {
	return &AutoExecutor{execs: execs, cache: NewParseCache()}
}

// Name implements Executor.
func (a *AutoExecutor) Name() string { return "auto" }

// Capabilities implements Executor.
func (a *AutoExecutor) Capabilities() Capabilities {
	var targets []string
	for name := range a.execs {
		targets = append(targets, name)
	}
	sort.Strings(targets)
	_, _, grads := a.gradientTarget()
	return Capabilities{
		Backend:     "auto",
		Subbackends: []string{"workload-driven"},
		CPU:         true,
		GPU:         true,
		NativeMPI:   true,
		Gradients:   grads,
		Notes: fmt.Sprintf("Workload-driven backend selection (paper future work): routes by circuit structure across %v.",
			targets),
	}
}

// routing is a selected (backend, sub-backend) pair plus the rule that fired.
type routing struct {
	backend string
	sub     string
	rule    string
}

// selectRoute applies the structural rules against the available executors.
// The parse goes through the selector's cache, so batched evaluations of
// one ansatz pay the routing-inspection parse once.
func (a *AutoExecutor) selectRoute(spec CircuitSpec) (routing, error) {
	c, err := a.cache.Get(spec)
	if err != nil {
		return routing{}, err
	}
	has := func(name string) bool {
		_, ok := a.execs[name]
		return ok
	}
	n := c.NQubits
	depth := c.Depth()
	switch {
	case c.IsClifford() && has("aer"):
		return routing{"aer", "stabilizer", "clifford"}, nil
	case c.InteractionDistance() <= 1 && n >= 12 && has("aer"):
		return routing{"aer", "matrix_product_state", "nearest-neighbour"}, nil
	case c.InteractionDistance() <= 1 && n >= 12 && has("tnqvm"):
		return routing{"tnqvm", "exatn-mps", "nearest-neighbour"}, nil
	case depth <= 8 && n <= 16 && has("qtensor"):
		return routing{"qtensor", "numpy", "shallow"}, nil
	case n <= 18 && has("aer"):
		return routing{"aer", "statevector", "small-dense"}, nil
	case has("nwqsim"):
		return routing{"nwqsim", "mpi", "large-dense"}, nil
	}
	// Fall back to any local executor, preferring deterministic order.
	var names []string
	for name := range a.execs {
		if name != "ionq" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return routing{}, fmt.Errorf("auto: no local backend available to route to")
	}
	return routing{names[0], "", "fallback"}, nil
}

// Execute implements Executor: select, delegate, and annotate the result
// path in Extra/notes via the error or the delegated executor's output.
func (a *AutoExecutor) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	route, err := a.selectRoute(spec)
	if err != nil {
		return ExecResult{}, err
	}
	target, ok := a.execs[route.backend]
	if !ok {
		return ExecResult{}, fmt.Errorf("auto: selected backend %q not available", route.backend)
	}
	opts.Subbackend = route.sub
	res, err := target.Execute(spec, opts)
	if err != nil {
		return res, fmt.Errorf("auto[%s->%s/%s]: %w", route.rule, route.backend, route.sub, err)
	}
	if res.Extra == nil {
		res.Extra = map[string]float64{}
	}
	res.Extra["auto_routed"] = 1
	res.Route = strings.TrimSpace(fmt.Sprintf("%s/%s (%s)", route.backend, route.sub, route.rule))
	return res, nil
}

// ExecuteBatch implements BatchExecutor: the route is selected once per
// batch from the shared spec, then the whole batch is delegated — natively
// when the target backend supports batches, otherwise by rebinding each
// element through the selector's parse cache.
func (a *AutoExecutor) ExecuteBatch(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]ExecResult, error) {
	route, err := a.selectRoute(spec)
	if err != nil {
		return nil, err
	}
	target, ok := a.execs[route.backend]
	if !ok {
		return nil, fmt.Errorf("auto: selected backend %q not available", route.backend)
	}
	opts.Subbackend = route.sub
	var results []ExecResult
	if be, ok := target.(BatchExecutor); ok {
		results, err = be.ExecuteBatch(spec, bindings, opts)
	} else {
		base, cerr := a.cache.Get(spec)
		if cerr != nil {
			return nil, cerr
		}
		results = make([]ExecResult, len(bindings))
		for i, b := range bindings {
			bound := base.Bind(b)
			elemSpec, serr := SpecFromCircuit(bound)
			if serr != nil {
				err = serr
				break
			}
			results[i], err = target.Execute(elemSpec, opts.ForElement(i))
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("auto[%s->%s/%s]: %w", route.rule, route.backend, route.sub, err)
	}
	for i := range results {
		if results[i].Extra == nil {
			results[i].Extra = map[string]float64{}
		}
		results[i].Extra["auto_routed"] = 1
		results[i].Route = strings.TrimSpace(fmt.Sprintf("%s/%s (%s)", route.backend, route.sub, route.rule))
	}
	return results, nil
}

// gradientTarget is the single discovery point for gradient delegation:
// Capabilities and ExecuteGradient both consult it, so the advertised
// capability can never disagree with the dispatch. Known adjoint engines
// are preferred in a fixed order, then any other GradientExecutor in
// sorted-name order for determinism.
func (a *AutoExecutor) gradientTarget() (string, GradientExecutor, bool) {
	names := []string{"aer", "nwqsim"}
	var rest []string
	for name := range a.execs {
		if name != "aer" && name != "nwqsim" {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range append(names, rest...) {
		if ge, ok := a.execs[name].(GradientExecutor); ok {
			return name, ge, true
		}
	}
	return "", nil, false
}

// ExecuteGradient implements GradientExecutor by delegating to the first
// gradient-capable local backend. Gradient evaluation needs dense simulator
// state, so the structural routing rules do not apply — the adjoint engines
// behind aer and nwqsim are interchangeable here and the sub-backend is
// left to the target's default.
func (a *AutoExecutor) ExecuteGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]GradResult, error) {
	name, ge, ok := a.gradientTarget()
	if !ok {
		return nil, fmt.Errorf("auto: no gradient-capable backend available")
	}
	opts.Subbackend = ""
	res, err := ge.ExecuteGradient(spec, bindings, opts)
	if err != nil {
		return nil, fmt.Errorf("auto[gradient->%s]: %w", name, err)
	}
	return res, nil
}

// RouteFor exposes the selection decision for inspection (tests, tooling).
func (a *AutoExecutor) RouteFor(spec CircuitSpec) (backend, sub, rule string, err error) {
	r, err := a.selectRoute(spec)
	return r.backend, r.sub, r.rule, err
}
